// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI). Each BenchmarkTableN / BenchmarkFigureN target measures the code
// path that produces the corresponding artefact; `go run ./cmd/gecco-bench`
// prints the full side-by-side comparison against the paper's numbers.
// Benchmarks use bounded budgets so a full `go test -bench=.` stays
// laptop-scale; the ablation benches cover the design choices DESIGN.md
// calls out.
package gecco_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gecco"
	"gecco/internal/baselines"
	"gecco/internal/candidates"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/cover"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
	"gecco/internal/experiments"
	"gecco/internal/instances"
	"gecco/internal/mip"
	"gecco/internal/procgen"
)

// benchLogs caches the subset of the synthetic collection used by the
// table benches (small/medium logs; the full set runs via cmd/gecco-bench).
var benchLogs []*eventlog.Log

func collection(b *testing.B) []*eventlog.Log {
	b.Helper()
	if benchLogs == nil {
		specs := procgen.CollectionSpecs()
		for _, i := range []int{0, 3, 6, 8, 10} {
			benchLogs = append(benchLogs, procgen.BuildLog(specs[i]))
		}
	}
	return benchLogs
}

func benchOpts(logs []*eventlog.Log) experiments.Options {
	return experiments.Options{Logs: logs, MaxChecks: 4000, SolverTimeout: 2 * time.Second}
}

// BenchmarkFigure2RunningExampleDFG builds the running example's DFG
// (Figure 2).
func BenchmarkFigure2RunningExampleDFG(b *testing.B) {
	log := procgen.RunningExampleTable1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gecco.DFGDot(log, 1)
	}
}

// BenchmarkFigure3AbstractedDFG runs the full pipeline on the running
// example with the §II role constraint and renders the abstracted DFG
// (Figure 3; the grouping is Figure 7's optimum with dist 3.08).
func BenchmarkFigure3AbstractedDFG(b *testing.B) {
	log := procgen.RunningExampleTable1()
	for i := 0; i < b.N; i++ {
		res, err := gecco.Abstract(log, "distinct(role) <= 1",
			gecco.Config{Mode: gecco.ModeDFGUnbounded, NamePrefix: "clrk"})
		if err != nil || !res.Feasible {
			b.Fatal("pipeline failed")
		}
		_ = gecco.DFGDot(res.Abstracted, 1)
	}
}

// BenchmarkTable3LogCollection generates the 13 synthetic evaluation logs
// and computes their Table III statistics.
func BenchmarkTable3LogCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logs := procgen.Collection()
		for _, log := range logs {
			_ = log.ComputeStats()
		}
	}
}

// BenchmarkTable4ConstraintSets parses and classifies all Table IV
// constraint sets against a log index.
func BenchmarkTable4ConstraintSets(b *testing.B) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	for i := 0; i < b.N; i++ {
		for _, id := range experiments.AllSets() {
			if set, ok := experiments.BuildSet(id, x); ok {
				_ = set.CheckingMode()
			}
		}
	}
}

// BenchmarkTable5ExhaustivePerConstraintSet regenerates Table V (Exh per
// constraint set) on the bench subset of the collection.
func BenchmarkTable5ExhaustivePerConstraintSet(b *testing.B) {
	logs := collection(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table5(context.Background(), benchOpts(logs))
	}
}

// BenchmarkTable6Configurations regenerates Table VI (Exh vs DFG∞ vs DFGk).
func BenchmarkTable6Configurations(b *testing.B) {
	logs := collection(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table6(context.Background(), benchOpts(logs))
	}
}

// BenchmarkTable7Baselines regenerates Table VII (BL_Q, BL_P, BL_G
// comparisons).
func BenchmarkTable7Baselines(b *testing.B) {
	logs := collection(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table7(context.Background(), benchOpts(logs))
	}
}

// BenchmarkFigure1SpaghettiDFG builds the loan log's 80/20 DFG (Figure 1).
func BenchmarkFigure1SpaghettiDFG(b *testing.B) {
	loan := procgen.LoanLog(500, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gecco.DFGDot(loan, 0.8)
	}
}

// BenchmarkFigure8CaseStudyDFG runs the §VI-D case study: origin-system
// constraint on the loan log, 80/20 DFG of the abstraction (Figure 8).
func BenchmarkFigure8CaseStudyDFG(b *testing.B) {
	loan := procgen.LoanLog(500, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := gecco.Abstract(loan, "distinct(class.org) <= 1\n|g| <= 8",
			gecco.Config{Mode: gecco.ModeDFGUnbounded, NameByClassAttr: "org"})
		if err != nil || !res.Feasible {
			b.Fatal("case study failed")
		}
		_ = gecco.DFGDot(res.Abstracted, 0.8)
	}
}

// BenchmarkParallelCandidates measures exhaustive enumeration (Algorithm 1)
// with one worker versus one per CPU on medium synthetic logs under an
// instance-based constraint set (the per-check log passes are the paper's
// Step 1 bottleneck). The sub-benchmarks additionally assert that the
// parallel run returns the exact candidate list of the sequential run.
func BenchmarkParallelCandidates(b *testing.B) {
	logs := collection(b)
	medium := logs[1:3] // the medium logs of the bench subset
	type problem struct {
		x   *eventlog.Index
		set *constraints.Set
	}
	var problems []problem
	for _, log := range medium {
		x := eventlog.NewIndex(log)
		set, ok := experiments.BuildSet(experiments.SetA, x)
		if !ok {
			b.Fatal("constraint set inapplicable")
		}
		problems = append(problems, problem{x, set})
	}
	budget := candidates.Budget{MaxChecks: 8000}
	run := func(workers int) []candidates.Result {
		var out []candidates.Result
		for _, p := range problems {
			ev := constraints.NewEvaluator(p.x, p.set, instances.SplitOnRepeat)
			out = append(out, candidates.Exhaustive(p.x, ev, budget, workers))
		}
		return out
	}
	baseline := run(1)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got := run(workers)
				for pi := range got {
					if len(got[pi].Groups) != len(baseline[pi].Groups) || got[pi].Checks != baseline[pi].Checks {
						b.Fatalf("workers=%d: output diverged from sequential run", workers)
					}
					for gi := range got[pi].Groups {
						if !got[pi].Groups[gi].Equal(baseline[pi].Groups[gi]) {
							b.Fatalf("workers=%d: group %d differs", workers, gi)
						}
					}
				}
			}
		})
	}
}

// BenchmarkStep2MIPShare isolates Step 2 (the paper's §V-C claim that the
// MIP solve contributes marginally to overall runtime): candidate
// computation plus both solvers on the same instance.
func BenchmarkStep2MIPShare(b *testing.B) {
	log := procgen.RunningExample(300, 7)
	set := constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
	x := eventlog.NewIndex(log)
	ev := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
	dc := distance.NewCalc(x, instances.SplitOnRepeat)
	cr := candidates.Exhaustive(x, ev, candidates.Budget{MaxChecks: 4000}, 1)
	prob := &cover.Problem{NumClasses: x.NumClasses(), Candidates: cr.Groups, MaxGroups: -1}
	for _, g := range cr.Groups {
		prob.Costs = append(prob.Costs, dc.Group(g))
	}
	b.Run("SolverBB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := cover.SolveBB(prob); !r.Feasible {
				b.Fatal("infeasible")
			}
		}
	})
	b.Run("SolverMIP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r, st := cover.SolveMIP(prob, mip.Options{}); !r.Feasible || st != mip.Optimal {
				b.Fatal("infeasible")
			}
		}
	})
}

// BenchmarkAblationExclusiveMerge measures Algorithm 3 on versus off
// (design choice 1 of DESIGN.md §5).
func BenchmarkAblationExclusiveMerge(b *testing.B) {
	log := procgen.RunningExample(300, 11)
	for _, skip := range []bool{false, true} {
		name := "with-merge"
		if skip {
			name = "without-merge"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := gecco.Abstract(log, "distinct(role) <= 1",
					gecco.Config{Mode: gecco.ModeDFGUnbounded, SkipExclusiveMerge: skip})
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}

// BenchmarkAblationBeamWidth sweeps the beam width (design choice 2).
func BenchmarkAblationBeamWidth(b *testing.B) {
	log := procgen.RunningExample(300, 13)
	for _, k := range []int{1, 8, 40, -1} {
		name := "k=inf"
		if k > 0 {
			name = "k=" + itoa(k)
		}
		mode := gecco.ModeDFGBeam
		if k < 0 {
			mode = gecco.ModeDFGUnbounded
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gecco.Abstract(log, "distinct(role) <= 1",
					gecco.Config{Mode: mode, BeamWidth: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInstancePolicy compares split-on-repeat against
// whole-trace instance segmentation (design choice 4).
func BenchmarkAblationInstancePolicy(b *testing.B) {
	log := procgen.RunningExample(300, 19)
	for _, p := range []struct {
		name   string
		policy instances.Policy
	}{{"split-on-repeat", instances.SplitOnRepeat}, {"whole-trace", instances.WholeTrace}} {
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gecco.AbstractSet(log,
					constraints.NewSet(constraints.MustParse("distinct(role) <= 1")),
					gecco.Config{Mode: gecco.ModeDFGUnbounded, Policy: p.policy}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselines measures each baseline end to end on one log.
func BenchmarkBaselines(b *testing.B) {
	ctx := context.Background()
	log := procgen.RunningExample(300, 23)
	x := eventlog.NewIndex(log)
	set := constraints.NewSet(constraints.MustParse("|g| <= 5"))
	b.Run("BLQ", func(b *testing.B) {
		sess, err := core.NewSession(log)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := baselines.BLQ(ctx, sess, set, core.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BLP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baselines.BLP(ctx, x, 4, instances.SplitOnRepeat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BLG", func(b *testing.B) {
		set := constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
		for i := 0; i < b.N; i++ {
			if _, err := baselines.BLG(ctx, x, set, instances.SplitOnRepeat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

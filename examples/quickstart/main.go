// Quickstart: abstract the paper's running example (Table I) under the
// role constraint of §II and print the resulting grouping, the abstracted
// traces, and the before/after directly-follows graphs (Figures 2 and 3).
package main

import (
	"fmt"
	"strings"

	"gecco"
	"gecco/internal/procgen"
)

func main() {
	// The four traces of Table I, with role attributes (clerk/manager).
	log := procgen.RunningExampleTable1()
	fmt.Println("original traces:")
	for _, tr := range log.Traces {
		fmt.Printf("  %-8s %s\n", tr.ID, tr.Variant())
	}

	// "Each activity comprises only events performed by one role."
	res, err := gecco.Abstract(log, "distinct(role) <= 1",
		gecco.Config{Mode: gecco.ModeDFGUnbounded, NamePrefix: "clrk"})
	if err != nil {
		panic(err)
	}
	if !res.Feasible {
		panic("unexpectedly infeasible: " + res.Diagnostics.String())
	}

	fmt.Printf("\ngrouping (distance %.2f — the paper's Figure 7 reports 3.08):\n", res.Distance)
	for i, name := range res.Grouping.Names {
		fmt.Printf("  %-8s <- {%s}\n", name, strings.Join(res.GroupClasses[i], ", "))
	}

	fmt.Println("\nabstracted traces:")
	for _, tr := range res.Abstracted.Traces {
		fmt.Printf("  %-8s %s\n", tr.ID, tr.Variant())
	}

	fmt.Println("\nFigure 2 (original DFG, DOT):")
	fmt.Println(gecco.DFGDot(log, 1))
	fmt.Println("Figure 3 (abstracted DFG, DOT):")
	fmt.Println(gecco.DFGDot(res.Abstracted, 1))
}

// Sessions — interactive constraint exploration on one log. GECCO's
// distance measure depends only on the log, never on the constraints, so a
// gecco.Session freezes the log's index, DFG, and distance memo once and
// solves constraint set after constraint set on top of them. The example
// tightens a constraint step by step, as an analyst exploring abstraction
// alternatives would, and compares the warm solves against what one-shot
// runs would cost.
package main

import (
	"fmt"
	"strings"
	"time"

	"gecco"
	"gecco/internal/procgen"
)

func main() {
	log := procgen.LoanLog(400, 17)
	st := gecco.Stats(log)
	fmt.Printf("loan log: %d classes, %d traces, %d variants\n\n", st.NumClasses, st.NumTraces, st.NumVariants)

	// One session: the log is indexed exactly once, here.
	sess, err := gecco.NewSession(log)
	if err != nil {
		panic(err)
	}
	cfg := gecco.Config{Mode: gecco.ModeDFGUnbounded}

	// The exploration: start from the §VI-D case-study constraint (one
	// origin system per activity) and tighten the group-size bound, as an
	// analyst comparing abstraction granularities would.
	alternatives := []string{
		"distinct(class.org) <= 1",
		"distinct(class.org) <= 1\n|g| <= 8",
		"distinct(class.org) <= 1\n|g| <= 6",
		"distinct(class.org) <= 1\n|g| <= 4",
	}
	var warm time.Duration
	for _, rules := range alternatives {
		t0 := time.Now()
		res, err := sess.Solve(rules, cfg)
		if err != nil {
			panic(err)
		}
		dt := time.Since(t0)
		warm += dt
		oneLine := strings.ReplaceAll(rules, "\n", " AND ")
		if !res.Feasible {
			fmt.Printf("%-42s -> infeasible (%s) in %v\n", oneLine, res.Diagnostics, dt.Round(time.Millisecond))
			continue
		}
		fmt.Printf("%-42s -> %d activities, distance %.2f, in %v\n",
			oneLine, len(res.Grouping.Names), res.Distance, dt.Round(time.Millisecond))
	}

	// The same exploration without a session pays the full pipeline per set.
	t0 := time.Now()
	for _, rules := range alternatives {
		if _, err := gecco.Abstract(log, rules, cfg); err != nil {
			panic(err)
		}
	}
	cold := time.Since(t0)
	fmt.Printf("\nwarm session solves: %v total; one-shot runs of the same sets: %v (%.1fx)\n",
		warm.Round(time.Millisecond), cold.Round(time.Millisecond), float64(cold)/float64(warm))
}

// Loan application — the §VI-D case study. A synthetic loan-application
// log shaped like BPI-2017 (24 classes across three IT systems: application
// handling A, offers O, workflow W) is abstracted under the constraint that
// no activity mixes events from different systems (|g.org| <= 1). The
// program prints the before/after statistics and the 80/20 DFGs of
// Figures 1 and 8, and shows what happens without the constraint.
package main

import (
	"fmt"
	"strings"

	"gecco"
	"gecco/internal/procgen"
)

func main() {
	log := procgen.LoanLog(1000, 17)
	st := gecco.Stats(log)
	fmt.Printf("loan log: %d classes, %d traces, %d variants, %d DFG edges, avg trace length %.1f\n",
		st.NumClasses, st.NumTraces, st.NumVariants, st.NumDFGEdges, st.AvgTraceLen)

	// The case-study constraint: one origin system per activity.
	res, err := gecco.Abstract(log, "distinct(class.org) <= 1\n|g| <= 8",
		gecco.Config{Mode: gecco.ModeDFGUnbounded, NameByClassAttr: "org"})
	if err != nil {
		panic(err)
	}
	if !res.Feasible {
		panic("case study infeasible: " + res.Diagnostics.String())
	}
	ast := gecco.Stats(res.Abstracted)
	fmt.Printf("\nabstracted (|g.org| <= 1): %d activities, %d DFG edges\n", ast.NumClasses, ast.NumDFGEdges)
	for i, name := range res.Grouping.Names {
		fmt.Printf("  %-16s <- {%s}\n", name, strings.Join(res.GroupClasses[i], ", "))
	}

	// §VI-D's closing observation: without the constraint, activities mix
	// events from all three systems, obscuring the inter-system flow.
	free, err := gecco.Abstract(log, "|g| <= 8", gecco.Config{Mode: gecco.ModeDFGUnbounded})
	if err != nil {
		panic(err)
	}
	mixed := 0
	if free.Feasible {
		for _, gc := range free.GroupClasses {
			systems := map[byte]bool{}
			for _, c := range gc {
				systems[c[0]] = true
			}
			if len(systems) > 1 {
				mixed++
			}
		}
		fmt.Printf("\nwithout the constraint: %d of %d activities mix origin systems\n",
			mixed, len(free.GroupClasses))
	}

	fmt.Println("\nFigure 1 (original 80/20 DFG, DOT):")
	fmt.Println(gecco.DFGDot(log, 0.8))
	fmt.Println("Figure 8 (abstracted 80/20 DFG, DOT):")
	fmt.Println(gecco.DFGDot(res.Abstracted, 0.8))
}

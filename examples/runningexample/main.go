// Running example — the full §II / §V walk-through on the exact Table I
// log: candidate computation in all three configurations, the exclusive-
// alternative merge of Algorithm 3, the optimal grouping of Figure 7 with
// its distance 3.08, both Step 2 solvers, and both abstraction strategies.
package main

import (
	"fmt"
	"strings"

	"gecco"
	"gecco/internal/procgen"
)

func main() {
	log := procgen.RunningExampleTable1()
	constraint := "distinct(role) <= 1"

	fmt.Println("=== configurations (§VI-A) ===")
	for _, cfg := range []struct {
		name string
		c    gecco.Config
	}{
		{"Exh ", gecco.Config{Mode: gecco.ModeExhaustive}},
		{"DFG∞", gecco.Config{Mode: gecco.ModeDFGUnbounded}},
		{"DFGk", gecco.Config{Mode: gecco.ModeDFGBeam, BeamWidth: 5}},
	} {
		res, err := gecco.Abstract(log, constraint, cfg.c)
		if err != nil {
			panic(err)
		}
		var parts []string
		for _, gc := range res.GroupClasses {
			parts = append(parts, "{"+strings.Join(gc, ",")+"}")
		}
		fmt.Printf("%s  %d candidates, distance %.4f: %s\n",
			cfg.name, res.NumCandidates, res.Distance, strings.Join(parts, " "))
	}
	fmt.Println("\nDFG∞ reproduces Figure 7: {rcp,ckc,ckt} {acc} {rej} {prio,inf,arv}, dist 3.08.")
	fmt.Println("Exh additionally finds candidates no DFG path generates ({acc,rej}, the")
	fmt.Println("all-clerk group) and reaches a lower distance — the 'not meaningful'")
	fmt.Println("grouping §II warns about, avoided by the DFG-based instantiation.")

	fmt.Println("\n=== Algorithm 3: exclusive behavioural alternatives ===")
	with, _ := gecco.Abstract(log, constraint, gecco.Config{Mode: gecco.ModeDFGUnbounded})
	without, _ := gecco.Abstract(log, constraint, gecco.Config{Mode: gecco.ModeDFGUnbounded, SkipExclusiveMerge: true})
	fmt.Printf("with merge:    %d candidates, distance %.4f\n", with.NumCandidates, with.Distance)
	fmt.Printf("without merge: %d candidates, distance %.4f\n", without.NumCandidates, without.Distance)
	fmt.Println("(ckc/ckt never follow each other, so only the merge finds {rcp,ckc,ckt})")

	fmt.Println("\n=== Step 2 solvers agree ===")
	bb, _ := gecco.Abstract(log, constraint, gecco.Config{Mode: gecco.ModeDFGUnbounded, Solver: gecco.SolverBranchAndBound})
	mip, _ := gecco.Abstract(log, constraint, gecco.Config{Mode: gecco.ModeDFGUnbounded, Solver: gecco.SolverMIP})
	fmt.Printf("branch&bound: %.4f   MIP (Eq. 3-5 on own simplex): %.4f\n", bb.Distance, mip.Distance)

	fmt.Println("\n=== abstraction strategies (§V-D) ===")
	sigma5 := &gecco.Log{Traces: []gecco.Trace{{ID: "sigma5", Events: []gecco.Event{
		{Class: "rcp"}, {Class: "ckc"}, {Class: "prio"}, {Class: "acc"}, {Class: "inf"}, {Class: "arv"},
	}}}}
	for i := range sigma5.Traces[0].Events {
		sigma5.Traces[0].Events[i].SetAttr("role", gecco.Value{Kind: 1, Str: roleOf(sigma5.Traces[0].Events[i].Class)})
	}
	co, _ := gecco.Abstract(sigma5, constraint, gecco.Config{Mode: gecco.ModeDFGUnbounded, NamePrefix: "clrk", Strategy: gecco.StrategyCompletionOnly})
	sc, _ := gecco.Abstract(sigma5, constraint, gecco.Config{Mode: gecco.ModeDFGUnbounded, NamePrefix: "clrk", Strategy: gecco.StrategyStartComplete})
	fmt.Printf("σ5 completion-only:  %s\n", co.Abstracted.Traces[0].Variant())
	fmt.Printf("σ5 start+complete:   %s   (interleaving of clrk2 and acc preserved)\n", sc.Abstracted.Traces[0].Variant())
}

func roleOf(class string) string {
	if class == "acc" || class == "rej" {
		return "manager"
	}
	return "clerk"
}

// Staged pipeline: the running example driven through the engine behind
// POST /pipeline and gecco -pipeline — filter the log, suggest constraints
// when the user supplies none, abstract, discover a model of the abstracted
// log, and evaluate its conformance. The program then re-runs the pipeline
// through a stage cache with only the tail stage changed, showing how the
// chain keys let every upstream stage (including the expensive abstraction)
// be adopted instead of re-executed.
package main

import (
	"context"
	"fmt"
	"strings"

	"gecco/internal/constraints"
	"gecco/internal/eventlog"
	"gecco/internal/pipeline"
	"gecco/internal/procgen"
)

// memCache is the smallest possible pipeline.StageCache: a map from chain
// key to the state the stage produced. The service wraps the same interface
// around an LRU with hit/miss counters.
type memCache map[string]*pipeline.State

func (c memCache) Get(stage, key string) (*pipeline.State, bool) { st, ok := c[key]; return st, ok }
func (c memCache) Put(stage, key string, st *pipeline.State)     { c[key] = st }

func main() {
	ctx := context.Background()
	log := procgen.RunningExample(500, 99)
	set := constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))

	// The stage list mirrors the JSON spec a client would POST:
	// [{"stage":"filter","topVariants":0.9},{"stage":"suggest"},...]
	stages := func(details bool) []pipeline.Stage {
		return []pipeline.Stage{
			pipeline.FilterStage{TopVariants: 0.9},
			pipeline.SuggestStage{},
			pipeline.AbstractStage{},
			pipeline.DiscoverStage{},
			pipeline.ConformStage{Details: details},
		}
	}
	base := func() *pipeline.State {
		return &pipeline.State{
			Index:       eventlog.NewIndex(log),
			IndexKey:    "example/running",
			Constraints: set,
		}
	}
	baseKey := pipeline.BaseKey("example/running", set.String())
	cache := make(memCache)
	env := &pipeline.Env{Cache: cache}

	fmt.Printf("running example: %d traces, %d classes; constraint %s\n\n",
		len(log.Traces), eventlog.NewIndex(log).NumClasses(), set)

	res, err := pipeline.Run(ctx, stages(false), base(), baseKey, env)
	if err != nil {
		panic(err)
	}
	fmt.Println("first run (every stage executes):")
	report(res)

	// Only the conform stage's config changes; its chain key changes, every
	// upstream key is identical, so filter/suggest/abstract/discover are
	// adopted from the cache and only conform re-executes.
	res, err = pipeline.Run(ctx, stages(true), base(), baseKey, env)
	if err != nil {
		panic(err)
	}
	fmt.Println("tail-only change (conform now wants per-edge misfits):")
	report(res)
	if c := res.State.Conformance; len(c.Misfits) > 0 {
		fmt.Printf("  top misfit: %s → %s (%d instances)\n",
			c.Misfits[0].From, c.Misfits[0].To, c.Misfits[0].Count)
	}
}

func report(res *pipeline.Result) {
	for _, st := range res.Stages {
		mark := "ran"
		if st.Cached {
			mark = "cached"
		}
		fmt.Printf("  %-10s %-7s key %s…\n", st.Stage, mark, st.Key[:12])
	}
	state := res.State
	var groups []string
	for _, gc := range state.Abstraction.GroupClasses {
		groups = append(groups, "{"+strings.Join(gc, ",")+"}")
	}
	fmt.Printf("  abstraction: %d groups, distance %.2f: %s\n",
		len(state.Abstraction.GroupClasses), state.Abstraction.Distance, strings.Join(groups, " "))
	fmt.Printf("  model: %d activities, %d edges, CFC %.1f\n",
		len(state.Model.Labels), state.Model.Graph.NumEdges(), state.Model.CFC())
	fmt.Printf("  conformance: fitness %.3f, precision %.3f\n\n",
		state.Conformance.Fitness, state.Conformance.Precision)
}

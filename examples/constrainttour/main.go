// Constraint tour: every constraint category of Table II exercised on one
// simulated log, showing how each shapes the resulting grouping — and how
// GECCO diagnoses infeasible combinations. All constraint sets solve on one
// gecco.Session, so the log is indexed once and the distance memo stays
// warm across the whole tour.
package main

import (
	"fmt"
	"strings"

	"gecco"
	"gecco/internal/procgen"
)

func main() {
	log := procgen.RunningExample(500, 99)
	st := gecco.Stats(log)
	fmt.Printf("simulated running-example log: %d classes, %d traces, %d variants\n\n",
		st.NumClasses, st.NumTraces, st.NumVariants)

	sess, err := gecco.NewSession(log)
	if err != nil {
		panic(err)
	}
	show := func(title, constraintText string) {
		fmt.Printf("--- %s\n    %s\n", title, strings.ReplaceAll(constraintText, "\n", " AND "))
		res, err := sess.Solve(constraintText, gecco.Config{Mode: gecco.ModeDFGUnbounded})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		if !res.Feasible {
			fmt.Printf("    infeasible: %s\n", res.Diagnostics)
			for _, s := range res.Diagnostics.SharesSorted() {
				fmt.Printf("      %-35s rejects %.0f%% of singletons\n", s.Constraint, 100*s.Fraction)
			}
			fmt.Println()
			return
		}
		var parts []string
		for _, gc := range res.GroupClasses {
			parts = append(parts, "{"+strings.Join(gc, ",")+"}")
		}
		fmt.Printf("    %d groups, distance %.2f: %s\n\n", len(res.GroupClasses), res.Distance, strings.Join(parts, " "))
	}

	// Grouping constraints (R_G).
	show("grouping: at most 4 activities", "|G| <= 4")
	show("grouping: at least 6 activities", "|G| >= 6")

	// Class-based constraints (R_C).
	show("class: at most 2 classes per group", "|g| <= 2")
	show("class: must-link and cannot-link",
		"mustlink(inf, arv)\ncannotlink(rcp, prio)")

	// Instance-based constraints (R_I).
	show("instance: one role per activity instance", "distinct(role) <= 1")
	show("instance: gap between events at most 30 min", "gap <= 1800\ndistinct(role) <= 1")
	show("instance: at most one event per class", "eventsperclass <= 1")
	show("instance: loosened cost bound (95% of instances)",
		"pct(0.95, sum(cost) <= 120)")

	// A deliberately infeasible combination, to show diagnostics.
	show("infeasible: 8 singleton classes cannot form 2 groups of size <= 2",
		"|g| <= 2\n|G| <= 2")
}

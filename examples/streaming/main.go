// Streaming — the online-abstraction extension sketched as future work in
// §VIII of the paper. Traces arrive one at a time; the grouping adapts via
// a drift detector over the directly-follows relation. The example streams
// the running-example process, then switches to a structurally different
// process and shows the abstractor regrouping.
package main

import (
	"fmt"
	"strings"

	"gecco"
	"gecco/internal/constraints"
	"gecco/internal/procgen"
	"gecco/internal/stream"
)

func main() {
	set := constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
	a := stream.New(set, stream.Config{WindowSize: 80, RefreshEvery: 60, DriftThreshold: 0.3})

	fmt.Println("phase 1: streaming the request-handling process...")
	for _, tr := range procgen.RunningExample(150, 21).Traces {
		if _, err := a.Push(tr); err != nil {
			panic(err)
		}
	}
	report(a)

	fmt.Println("\nphase 2: the process changes (new activities, new role)...")
	phase2 := phase2Traces(150)
	for _, tr := range phase2 {
		if _, err := a.Push(tr); err != nil {
			panic(err)
		}
	}
	report(a)

	out, _ := a.Push(phase2[0])
	fmt.Printf("\na phase-2 trace now abstracts to: %s\n", out.Variant())
}

func report(a *stream.Abstractor) {
	fmt.Printf("  regroupings: %d (of which drift-triggered: %d)\n", a.Regroupings, a.Drifts)
	for _, classes := range a.Grouping() {
		fmt.Printf("    activity <- {%s}\n", strings.Join(classes, ", "))
	}
}

func phase2Traces(n int) []gecco.Trace {
	var out []gecco.Trace
	for i := 0; i < n; i++ {
		tr := gecco.Trace{ID: fmt.Sprintf("p2-%d", i)}
		seq := []string{"intake", "triage", "resolve", "close"}
		if i%3 == 0 {
			seq = []string{"intake", "triage", "escalate", "resolve", "close"}
		}
		for _, c := range seq {
			ev := gecco.Event{Class: c}
			ev.SetAttr("role", gecco.Value{Kind: 1, Str: "support"})
			tr.Events = append(tr.Events, ev)
		}
		out = append(out, tr)
	}
	return out
}

# Single source of truth for build/test/bench commands: CI invokes these
# targets, so local runs reproduce CI exactly.

GO        ?= go
BENCH_PR  ?= BENCH_pr.json
BASELINE  ?= BENCH_baseline.json
MAX_REGRESS ?= 0.25
# The one definition of the gate's measurement configs: bench, bench-gate and
# bench-baseline all expand it, so the checked-in baseline cannot drift from
# what the gate measures. -stream-bench adds the online abstractor's
# per-arrival rows, so the gate also guards streaming cost regressions;
# -index-bench adds columnar index build-throughput and bytes/event rows plus
# the restart cost rows (IndexCold = re-parse+build, IndexOpen = OpenIndex on
# the persistent file, with a hard >= 5x open-vs-cold floor), so it guards
# both the event-log core's memory layout and the persistent format's point;
# -pipeline-bench adds the staged engine's end-to-end rows (cold, fully
# cached warm, and tail-only change) so the /pipeline serving path and its
# stage cache are guarded too; -shard-bench adds cluster throughput at 1, 2
# and 4 shards through the digest router (with a hard >= 2.5x 4-shard-vs-1
# floor), so the gate also guards the scale-out claim of the sharded
# serving layer.
BENCH_FLAGS = -table 6 -quick -stream-bench -index-bench -eval-bench -pipeline-bench -shard-bench
# Where `make serve` keeps the warm tier (spilled session indexes, persisted
# results); `make clean-data` wipes it.
DATA_DIR ?= gecco-data

.PHONY: build test race vet lint staticcheck fmt-check bench bench-gate bench-baseline shard-bench serve examples clean-data all

all: build vet lint fmt-check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/ ./internal/candidates/ ./internal/distance/ ./internal/constraints/ ./internal/core/ ./internal/service/ ./internal/shard/ ./internal/stream/ ./internal/eventlog/ ./internal/experiments/ .

vet:
	$(GO) vet ./...

# The repository's own multichecker (internal/analysis): five analyzers
# enforcing the determinism, wall-clock, context-flow, sync.Once, and
# hot-path invariants. Built from source — no network-installed tools.
lint:
	$(GO) run ./cmd/gecco-vet ./...

# Static analysis beyond vet. CI installs the pinned version below; locally
# the target uses whatever staticcheck is on PATH and tells you how to get
# one if none is found (it does not download anything itself, so offline
# builds stay offline).
STATICCHECK         ?= staticcheck
STATICCHECK_VERSION ?= 2024.1.1
staticcheck:
	@command -v $(STATICCHECK) >/dev/null 2>&1 || { \
		echo "staticcheck not found; install with:" >&2; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)" >&2; \
		exit 1; }
	$(STATICCHECK) ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

# Quick Table VI run with a machine-readable report (the CI artifact).
bench:
	$(GO) run ./cmd/gecco-bench $(BENCH_FLAGS) -json $(BENCH_PR)

# Bench + fail on >MAX_REGRESS wall-time regression vs the checked-in baseline.
bench-gate:
	$(GO) run ./cmd/gecco-bench $(BENCH_FLAGS) -json $(BENCH_PR) -baseline $(BASELINE) -max-regress $(MAX_REGRESS)

# Regenerate the checked-in baseline with exactly the gate's configs (run on
# the reference machine, commit the result).
bench-baseline:
	$(GO) run ./cmd/gecco-bench $(BENCH_FLAGS) -json $(BASELINE)

# Just the scale-out measurement: 1/2/4-shard cluster throughput through the
# digest router, with the hard >= 2.5x 4-shard floor. Fast enough to run on
# its own while touching the router or the ring.
shard-bench:
	$(GO) run ./cmd/gecco-bench -table none -shard-bench

# Build and smoke-run every example program, so example drift fails CI
# instead of rotting silently.
examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d > /dev/null; \
	done

serve:
	$(GO) run ./cmd/gecco-serve -addr :8080 -data-dir $(DATA_DIR)

# Wipe the warm tier. Safe at any time: it holds only derived data (spilled
# indexes, persisted results) that the next run rebuilds on demand.
clean-data:
	rm -rf $(DATA_DIR)

// Command gecco-bench regenerates the paper's evaluation (§VI): Table III
// (log collection), Table V (Exh per constraint set), Table VI (the three
// configurations), Table VII (baselines), and the DOT sources of Figures 1,
// 2, 3 and 8. Measured values print next to the paper's reported numbers.
//
// Usage:
//
//	gecco-bench -table all          # everything (minutes)
//	gecco-bench -table 5 -quick     # Table V on a subset, small budgets
//	gecco-bench -figures -out figs/ # DOT files for the figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gecco"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/experiments"
	"gecco/internal/procgen"
)

func main() {
	var (
		table   = flag.String("table", "all", "which table to run: 3 | 5 | 6 | 7 | all | none")
		figures = flag.Bool("figures", false, "emit Figures 1, 2, 3, 8 as DOT files")
		outDir  = flag.String("out", "figures", "output directory for -figures")
		quick   = flag.Bool("quick", false, "small budgets and a log subset (for CI/smoke)")
		detail  = flag.Bool("detail", false, "print the per-problem breakdown (DFGk) and the solved matrix")
		budget  = flag.Int("budget", 0, "candidate checks per problem (0 = default)")
		timeout = flag.Duration("solver-timeout", 0, "Step 2 limit per problem (0 = default)")
		workers = flag.Int("workers", 0, "worker threads per problem (0 = all cores, 1 = the paper's sequential runs)")
	)
	flag.Parse()

	fmt.Println("generating the synthetic log collection (Table III substitutes)...")
	start := time.Now()
	logs := procgen.Collection()
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	opts := experiments.Options{Logs: logs, MaxChecks: *budget, SolverTimeout: *timeout, Workers: *workers}
	if *quick {
		opts.Logs = []*eventlog.Log{logs[0], logs[3], logs[6], logs[8], logs[10]}
		if opts.MaxChecks == 0 {
			opts.MaxChecks = 5000
		}
		if opts.SolverTimeout == 0 {
			opts.SolverTimeout = 3 * time.Second
		}
	}

	if *table == "3" || *table == "all" {
		experiments.PrintTable3(os.Stdout, logs)
	}
	if *table == "5" || *table == "all" {
		run("Table V — Exh per constraint set", func() {
			experiments.PrintRows(os.Stdout, "Table V", experiments.Table5(opts), experiments.PaperTable5)
		})
	}
	if *table == "6" || *table == "all" {
		run("Table VI — configurations", func() {
			experiments.PrintRows(os.Stdout, "Table VI", experiments.Table6(opts), experiments.PaperTable6)
		})
	}
	if *table == "7" || *table == "all" {
		run("Table VII — baselines", func() {
			experiments.PrintRows(os.Stdout, "Table VII", experiments.Table7(opts), experiments.PaperTable7)
		})
	}
	if *detail {
		run("per-problem detail (DFGk)", func() {
			details := experiments.DetailTable(core.DFGBeam, opts)
			experiments.PrintDetails(os.Stdout, details)
			fmt.Println()
			fmt.Print(experiments.SolvedMatrix(details))
		})
	}
	if *figures {
		if err := emitFigures(*outDir); err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
	}
}

func run(title string, fn func()) {
	fmt.Printf("running %s...\n", title)
	start := time.Now()
	fn()
	fmt.Printf("(%s in %v)\n\n", title, time.Since(start).Round(time.Millisecond))
}

func emitFigures(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, dot string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(dot), 0o644)
	}
	// Figure 2: full DFG of the running example.
	running := procgen.RunningExampleTable1()
	if err := write("figure2_running_example_dfg.dot", gecco.DFGDot(running, 1)); err != nil {
		return err
	}
	// Figure 3: DFG after abstraction with the role constraint.
	res, err := gecco.Abstract(running, "distinct(role) <= 1", gecco.Config{Mode: gecco.ModeDFGUnbounded, NamePrefix: "clrk"})
	if err != nil {
		return err
	}
	if err := write("figure3_abstracted_dfg.dot", gecco.DFGDot(res.Abstracted, 1)); err != nil {
		return err
	}
	// Figure 1: 80/20 DFG of the (synthetic) loan log.
	loan := procgen.LoanLog(1000, 17)
	if err := write("figure1_loan_8020_dfg.dot", gecco.DFGDot(loan, 0.8)); err != nil {
		return err
	}
	// Figure 8: 80/20 DFG of the loan log abstracted under the
	// origin-system constraint (§VI-D).
	caseRes, err := gecco.Abstract(loan, "distinct(class.org) <= 1\n|g| <= 8",
		gecco.Config{Mode: gecco.ModeDFGUnbounded, NameByClassAttr: "org"})
	if err != nil {
		return err
	}
	if !caseRes.Feasible {
		return fmt.Errorf("case study infeasible: %s", caseRes.Diagnostics)
	}
	if err := write("figure8_case_study_dfg.dot", gecco.DFGDot(caseRes.Abstracted, 0.8)); err != nil {
		return err
	}
	fmt.Printf("figures written to %s/\n", dir)
	return nil
}

// Command gecco-bench regenerates the paper's evaluation (§VI): Table III
// (log collection), Table V (Exh per constraint set), Table VI (the three
// configurations), Table VII (baselines), and the DOT sources of Figures 1,
// 2, 3 and 8. Measured values print next to the paper's reported numbers.
//
// Usage:
//
//	gecco-bench -table all          # everything (minutes)
//	gecco-bench -table 5 -quick     # Table V on a subset, small budgets
//	gecco-bench -figures -out figs/ # DOT files for the figures
//	gecco-bench -table none -session-bench
//	                                # cold vs warm constraint sweep (session reuse)
//	gecco-bench -table none -stream-bench
//	                                # online per-arrival cost, flat in window size
//
// CI benchmark gate:
//
//	gecco-bench -table 6 -quick -stream-bench -json BENCH_pr.json -baseline BENCH_baseline.json
//
// -json writes the measured rows (per-config wall-time and distance) in a
// machine-readable report; -baseline compares them against a checked-in
// report and exits non-zero when any configuration's wall-time regresses by
// more than -max-regress (default 25%).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"time"

	"gecco"
	"gecco/internal/bitset"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
	"gecco/internal/experiments"
	"gecco/internal/instances"
	"gecco/internal/procgen"
	"gecco/internal/stream"
	"gecco/internal/xes"
)

// benchReport is the machine-readable format of -json; rows are keyed by
// configuration label (Exh, DFG∞, DFGk).
type benchReport struct {
	Table    string            `json:"table"`
	Quick    bool              `json:"quick"`
	Budget   int               `json:"budget"`
	Stream   bool              `json:"streamBench"`
	Index    bool              `json:"indexBench"`
	Eval     bool              `json:"evalBench"`
	Pipeline bool              `json:"pipelineBench"`
	Shard    bool              `json:"shardBench"`
	GOOS     string            `json:"goos"`
	GOARCH   string            `json:"goarch"`
	NumCPU   int               `json:"numCPU"`
	Workers  int               `json:"workers"`
	Rows     []experiments.Row `json:"rows"`
}

func main() {
	var (
		table      = flag.String("table", "all", "which table to run: 3 | 5 | 6 | 7 | all | none")
		figures    = flag.Bool("figures", false, "emit Figures 1, 2, 3, 8 as DOT files")
		outDir     = flag.String("out", "figures", "output directory for -figures")
		quick      = flag.Bool("quick", false, "small budgets and a log subset (for CI/smoke)")
		detail     = flag.Bool("detail", false, "print the per-problem breakdown (DFGk) and the solved matrix")
		budget     = flag.Int("budget", 0, "candidate checks per problem (0 = default)")
		timeout    = flag.Duration("solver-timeout", 0, "Step 2 limit per problem (0 = default)")
		workers    = flag.Int("workers", 0, "worker threads per problem (0 = all cores, 1 = the paper's sequential runs)")
		sessions   = flag.Bool("session-bench", false, "measure the fixed loan-log refinement sweep: cold (pipeline per set) vs warm (one session)")
		streams    = flag.Bool("stream-bench", false, "measure the online abstractor's per-arrival cost at window sizes 200 and 2000 (rows feed -json/-baseline; fails if the cost is not flat in the window)")
		evals      = flag.Bool("eval-bench", false, "measure the solver kernels in isolation: screened HoldsInstance checks/s, exact Eq. 1 distance evals/s on a cold memo, and the beam frontier prune rate of the admissible lower bound (rows feed -json/-baseline; fails if screening or pruning never fires)")
		pipelines  = flag.Bool("pipeline-bench", false, "measure the staged pipeline engine end to end on the loan-application case study: the cold filter→abstract→discover→conform run, the fully cached warm re-run (bounding the engine's per-request overhead), and a tail-only change that must adopt the cached abstract stage (rows feed -json/-baseline; fails if any cached stage re-executes)")
		shardsB    = flag.Bool("shard-bench", false, "measure cluster throughput through the digest router at 1, 2, and 4 in-process shards on the Table VI workload (rows feed -json/-baseline; fails unless 4-shard throughput is >= 2.5x single-shard)")
		indexes    = flag.Bool("index-bench", false, "measure the columnar index: build throughput (events/s), estimated bytes/event vs the pointer-heavy *Log, and restart cost (re-parse+build vs OpenIndex on the persistent file); fails unless the index is >= 2x smaller and OpenIndex >= 5x faster")
		jsonOut    = flag.String("json", "", "write the measured rows as a JSON bench report to this file")
		baseline   = flag.String("baseline", "", "compare the measured rows against this JSON bench report and fail on regression")
		maxRegress = flag.Float64("max-regress", 0.25, "maximum tolerated per-config wall-time regression vs -baseline (0.25 = +25%)")
	)
	flag.Parse()

	// One root context for every table run: Ctrl-C aborts the in-flight
	// solve instead of leaving a long Exh sweep running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("generating the synthetic log collection (Table III substitutes)...")
	start := time.Now()
	logs := procgen.Collection()
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	opts := experiments.Options{Logs: logs, MaxChecks: *budget, SolverTimeout: *timeout, Workers: *workers}
	if *quick {
		opts.Logs = []*eventlog.Log{logs[0], logs[3], logs[6], logs[8], logs[10]}
		if opts.MaxChecks == 0 {
			opts.MaxChecks = 5000
		}
		if opts.SolverTimeout == 0 {
			opts.SolverTimeout = 3 * time.Second
		}
	}

	if *table == "3" || *table == "all" {
		experiments.PrintTable3(os.Stdout, logs)
	}
	// measured collects the rows of every table that ran, for -json/-baseline.
	var measured []experiments.Row
	if *table == "5" || *table == "all" {
		run("Table V — Exh per constraint set", func() {
			rows := experiments.Table5(ctx, opts)
			measured = append(measured, rows...)
			experiments.PrintRows(os.Stdout, "Table V", rows, experiments.PaperTable5)
		})
	}
	if *table == "6" || *table == "all" {
		run("Table VI — configurations", func() {
			rows := experiments.Table6(ctx, opts)
			measured = append(measured, rows...)
			experiments.PrintRows(os.Stdout, "Table VI", rows, experiments.PaperTable6)
		})
	}
	if *table == "7" || *table == "all" {
		run("Table VII — baselines", func() {
			rows := experiments.Table7(ctx, opts)
			measured = append(measured, rows...)
			experiments.PrintRows(os.Stdout, "Table VII", rows, experiments.PaperTable7)
		})
	}
	if *streams {
		rows, err := streamBench(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
		measured = append(measured, rows...)
	}
	if *indexes {
		rows, err := indexBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
		measured = append(measured, rows...)
	}
	if *evals {
		rows, err := evalBench(ctx, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
		measured = append(measured, rows...)
	}
	if *pipelines {
		rows, err := experiments.PipelineBench(ctx, os.Stdout, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
		measured = append(measured, rows...)
	}
	if *shardsB {
		rows, err := experiments.ShardBench(ctx, os.Stdout, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
		measured = append(measured, rows...)
	}
	if *jsonOut != "" {
		report := benchReport{
			Table:    *table,
			Quick:    *quick,
			Budget:   opts.MaxChecks,
			Stream:   *streams,
			Index:    *indexes,
			Eval:     *evals,
			Pipeline: *pipelines,
			Shard:    *shardsB,
			GOOS:     runtime.GOOS,
			GOARCH:   runtime.GOARCH,
			NumCPU:   runtime.NumCPU(),
			Workers:  *workers,
			Rows:     measured,
		}
		if err := writeReport(*jsonOut, report); err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("bench report written to %s\n", *jsonOut)
	}
	if *baseline != "" {
		current := benchReport{Table: *table, Quick: *quick, Budget: opts.MaxChecks, Stream: *streams, Index: *indexes, Eval: *evals, Pipeline: *pipelines, Shard: *shardsB, Workers: *workers}
		if err := gate(*baseline, current, measured, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench: REGRESSION GATE FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("regression gate passed (max tolerated wall-time regression %.0f%%)\n", *maxRegress*100)
	}
	if *sessions {
		if err := sessionBench(opts); err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
	}
	if *detail {
		run("per-problem detail (DFGk)", func() {
			details := experiments.DetailTable(ctx, core.DFGBeam, opts)
			experiments.PrintDetails(os.Stdout, details)
			fmt.Println()
			fmt.Print(experiments.SolvedMatrix(details))
		})
	}
	if *figures {
		if err := emitFigures(*outDir); err != nil {
			fmt.Fprintln(os.Stderr, "gecco-bench:", err)
			os.Exit(1)
		}
	}
}

func writeReport(path string, report benchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gateAbsSlackSeconds is an absolute slack added on top of the relative
// threshold. Quick-run rows are sub-second, where scheduler jitter alone
// exceeds 25%; the floor keeps the gate meaningful (a real 2× regression on
// any non-trivial row still trips it) without false-failing on noise.
const gateAbsSlackSeconds = 0.25

// gate compares measured rows against the baseline report: any
// configuration whose mean wall-time grew by more than maxRegress (plus a
// small absolute slack absorbing sub-second jitter) fails the gate.
// Distance drift is reported as a warning — quick runs are deterministic,
// so a drift means the pipeline's output changed, which may be intentional
// (then the baseline needs regenerating) but is worth eyes.
func gate(baselinePath string, current benchReport, measured []experiments.Row, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	// A run with different table/quick/budget/workers settings measures
	// different work (or the same work at a different parallelism);
	// wall-times are incomparable and the gate refuses rather than
	// reporting a spurious verdict.
	if base.Table != current.Table || base.Quick != current.Quick ||
		base.Budget != current.Budget || base.Workers != current.Workers ||
		base.Stream != current.Stream || base.Index != current.Index ||
		base.Eval != current.Eval || base.Pipeline != current.Pipeline ||
		base.Shard != current.Shard {
		return fmt.Errorf("run settings (table=%s quick=%t budget=%d workers=%d stream=%t index=%t eval=%t pipeline=%t shard=%t) do not match baseline (table=%s quick=%t budget=%d workers=%d stream=%t index=%t eval=%t pipeline=%t shard=%t); rerun with the baseline's flags or regenerate it",
			current.Table, current.Quick, current.Budget, current.Workers, current.Stream, current.Index, current.Eval, current.Pipeline, current.Shard,
			base.Table, base.Quick, base.Budget, base.Workers, base.Stream, base.Index, base.Eval, base.Pipeline, base.Shard)
	}
	if base.GOOS != runtime.GOOS || base.GOARCH != runtime.GOARCH || base.NumCPU != runtime.NumCPU() {
		fmt.Printf("gate WARNING: baseline recorded on %s/%s numCPU=%d, this run is %s/%s numCPU=%d — wall-times are only roughly comparable\n",
			base.GOOS, base.GOARCH, base.NumCPU, runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
	}
	byLabel := make(map[string]experiments.Row, len(measured))
	for _, r := range measured {
		byLabel[r.Label] = r
	}
	// offender captures one failing row with both sides of the comparison,
	// so the failure output can print them side by side.
	type offender struct {
		label      string
		metric     string
		baseVal    float64
		gotVal     float64
		allowedVal float64
	}
	var offenders []offender
	var missing []string
	compared := 0
	for _, b := range base.Rows {
		got, ok := byLabel[b.Label]
		if !ok {
			// A configuration that vanished or was renamed is itself a
			// gate failure — otherwise dropping a slow config "fixes" it.
			missing = append(missing, b.Label)
			continue
		}
		if b.Seconds <= 0 {
			continue
		}
		compared++
		allowed := b.Seconds*(1+maxRegress) + gateAbsSlackSeconds
		ratio := got.Seconds / b.Seconds
		status := "ok"
		if got.Seconds > allowed {
			status = "REGRESSED"
			offenders = append(offenders, offender{b.Label, "wall-time (s)", b.Seconds, got.Seconds, allowed})
		}
		fmt.Printf("gate %-14s %8.2fs vs baseline %8.2fs (%+.0f%%, allowed %.2fs) %s\n",
			b.Label, got.Seconds, b.Seconds, (ratio-1)*100, allowed, status)
		if math.Abs(got.Dist-b.Dist) > 1e-6 {
			fmt.Printf("gate %-14s WARNING: mean distance %.6f differs from baseline %.6f — pipeline output changed\n",
				b.Label, got.Dist, b.Dist)
		}
		// Memory gate: index-bench rows also carry bytes/event. Unlike
		// wall-time it is deterministic, so no absolute slack is needed.
		if b.BytesPerEvent > 0 && got.BytesPerEvent > b.BytesPerEvent*(1+maxRegress) {
			offenders = append(offenders, offender{b.Label, "bytes/event", b.BytesPerEvent, got.BytesPerEvent, b.BytesPerEvent * (1 + maxRegress)})
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("baseline configuration(s) %v produced no measurement in this run (renamed or dropped? regenerate the baseline if intentional)", missing)
	}
	if compared == 0 {
		return fmt.Errorf("no comparable rows between this run and %s", baselinePath)
	}
	if len(offenders) > 0 {
		// Side-by-side detail of every offending row: the error line below
		// is what CI greps, this block is what a human reads.
		fmt.Printf("\ngate FAILED — offending row(s), baseline vs current:\n")
		fmt.Printf("  %-16s %-14s %12s %12s %12s %8s\n", "row", "metric", "baseline", "current", "allowed", "over")
		var labels []string
		for _, o := range offenders {
			fmt.Printf("  %-16s %-14s %12.3f %12.3f %12.3f %+7.0f%%\n",
				o.label, o.metric, o.baseVal, o.gotVal, o.allowedVal, (o.gotVal/o.baseVal-1)*100)
			labels = append(labels, o.label)
		}
		return fmt.Errorf("%d measurement(s) regressed beyond the allowed threshold: %v", len(offenders), labels)
	}
	return nil
}

// sessionBench measures the workload the session engine targets: an
// interactive refinement sweep re-abstracting one log under progressively
// tightened constraint sets (the §VI-D case-study constraint with shrinking
// group-size bounds — exactly what an analyst comparing granularities
// runs). Cold runs the full pipeline per set; warm builds one core.Session
// and solves the same sets on it, so sets 2..N start with the index, DFG,
// and a warm distance memo. Results must match exactly — the speedup is
// free, not bought with approximation — so any divergence is a hard error.
func sessionBench(opts experiments.Options) error {
	log := procgen.LoanLog(1000, 17)
	sweep := []string{
		"distinct(class.org) <= 1",
		"distinct(class.org) <= 1\n|g| <= 8",
		"distinct(class.org) <= 1\n|g| <= 6",
		"distinct(class.org) <= 1\n|g| <= 4",
	}
	cfg := core.Config{
		Mode:    core.DFGUnbounded,
		Workers: opts.Workers,
	}
	if opts.MaxChecks > 0 {
		cfg.Budget.MaxChecks = opts.MaxChecks
	}
	sets := make([]*gecco.ConstraintSet, len(sweep))
	for i, text := range sweep {
		set, err := gecco.ParseConstraints(text)
		if err != nil {
			return err
		}
		sets[i] = set
	}

	fmt.Printf("session reuse — refinement sweep of %d constraint sets on %s (%d traces):\n",
		len(sets), log.Name, len(log.Traces))
	coldTimes := make([]time.Duration, len(sets))
	cold := make([]*core.Result, len(sets))
	t0 := time.Now()
	for i, set := range sets {
		t := time.Now()
		res, err := core.Run(log, set, cfg)
		if err != nil {
			return err
		}
		cold[i], coldTimes[i] = res, time.Since(t)
	}
	coldTotal := time.Since(t0)

	t1 := time.Now()
	sess, err := core.NewSession(log)
	if err != nil {
		return err
	}
	build := time.Since(t1)
	warmTimes := make([]time.Duration, len(sets))
	warm := make([]*core.Result, len(sets))
	t2 := time.Now()
	for i, set := range sets {
		t := time.Now()
		res, err := sess.Solve(context.Background(), set, cfg)
		if err != nil {
			return err
		}
		warm[i], warmTimes[i] = res, time.Since(t)
	}
	warmTotal := time.Since(t2)

	for i := range sets {
		if cold[i].Feasible != warm[i].Feasible || cold[i].Distance != warm[i].Distance ||
			cold[i].NumCandidates != warm[i].NumCandidates {
			return fmt.Errorf("session bench: set %d diverged between cold and warm runs (dist %v vs %v)",
				i+1, cold[i].Distance, warm[i].Distance)
		}
		fmt.Printf("  set %d: cold %8v   warm %8v\n",
			i+1, coldTimes[i].Round(time.Millisecond), warmTimes[i].Round(time.Millisecond))
	}
	fmt.Printf("  total: cold %v, warm %v (+ %v one-time session build)\n",
		coldTotal.Round(time.Millisecond), warmTotal.Round(time.Millisecond), build.Round(time.Millisecond))
	if warmTotal > 0 {
		fmt.Printf("  sweep speedup %.2fx; warm solves after the first: %.2fx (results identical)\n",
			float64(coldTotal)/float64(warmTotal),
			float64(coldTotal-coldTimes[0])/float64(warmTotal-warmTimes[0]))
	}
	return nil
}

// streamBench measures the online abstractor's steady-state per-arrival
// cost at two window sizes an order of magnitude apart, on the same trace
// stream. Drift detection is disabled and the refresh cadence pushed out of
// reach so the measurement isolates the arrival path — ring-buffer
// insertion, edge-refcount maintenance, the O(1) drift check, and the
// per-trace rewrite — which must be O(|trace|), independent of the window.
// The two rows feed the -json report and the -baseline gate; a per-arrival
// cost that grows with the window (the pre-incremental implementation
// rescanned the whole window per Push, ~10× here) fails immediately.
func streamBench(opts experiments.Options) ([]experiments.Row, error) {
	const (
		warmup   = 2000 // fills the larger window before timing starts
		arrivals = 6000 // timed steady-state arrivals, same for both windows
	)
	set := constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
	traces := procgen.RunningExample(warmup+arrivals, 41).Traces

	fmt.Printf("online abstractor — steady-state per-arrival cost over %d arrivals:\n", arrivals)
	rows := make([]experiments.Row, 0, 2)
	perArrival := make([]float64, 0, 2)
	for _, window := range []int{200, 2000} {
		a := stream.New(set, stream.Config{
			WindowSize:     window,
			RefreshEvery:   1 << 30,
			DriftThreshold: -1, // sentinel: drift detection off
			Pipeline:       core.Config{Mode: core.DFGUnbounded, Workers: opts.Workers},
		})
		for _, tr := range traces[:warmup] {
			if _, err := a.Push(tr); err != nil {
				return nil, fmt.Errorf("stream bench warmup (W=%d): %w", window, err)
			}
		}
		start := time.Now()
		for _, tr := range traces[warmup:] {
			if _, err := a.Push(tr); err != nil {
				return nil, fmt.Errorf("stream bench (W=%d): %w", window, err)
			}
		}
		elapsed := time.Since(start)
		per := elapsed.Seconds() / arrivals
		perArrival = append(perArrival, per)
		rows = append(rows, experiments.Row{
			Label:   fmt.Sprintf("Stream/W=%d", window),
			Seconds: elapsed.Seconds(),
			N:       arrivals,
		})
		fmt.Printf("  W=%-5d %8.2f µs/arrival (%v total, %d regroupings)\n",
			window, per*1e6, elapsed.Round(time.Millisecond), a.Regroupings)
	}
	ratio := perArrival[1] / perArrival[0]
	fmt.Printf("  per-arrival cost ratio W=2000 / W=200: %.2fx (flat within noise expected)\n", ratio)
	// A generous bound: genuine O(|trace|) arrivals stay near 1× with
	// scheduler jitter; the old per-Push window rescan sat near the window
	// ratio (10×).
	if ratio > 3 {
		return nil, fmt.Errorf("per-arrival cost is not flat in the window size: %.2fx at 10x the window", ratio)
	}
	return rows, nil
}

// indexBench measures the columnar event-log core: how fast NewIndex turns
// a parsed *Log into the arena-plus-columns layout (events/second), and how
// much smaller that layout is than the pointer-heavy Log it replaces
// (estimated bytes/event, same allocation model on both sides — see
// eventlog.EstimateLogBytes). The rows feed the -json report and the
// -baseline gate; the ≥2x size improvement the columnar refactor exists for
// is asserted here directly, so a layout regression fails even before a
// baseline comparison.
func indexBench() ([]experiments.Row, error) {
	const reps = 5
	benchLogs := []*eventlog.Log{
		procgen.LoanLog(1000, 17),
		procgen.RunningExample(2000, 7),
	}
	tmp, err := os.MkdirTemp("", "gecco-index-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	fmt.Println("columnar index — build throughput, footprint, and cold start vs open:")
	rows := make([]experiments.Row, 0, 3*len(benchLogs))
	for _, log := range benchLogs {
		events := log.NumEvents()
		start := time.Now()
		var x *eventlog.Index
		for r := 0; r < reps; r++ {
			x = eventlog.NewIndex(log)
		}
		elapsed := time.Since(start)
		idxBytes := x.EstimatedBytes()
		logBytes := eventlog.EstimateLogBytes(log)
		perEvent := float64(idxBytes) / float64(events)
		naivePerEvent := float64(logBytes) / float64(events)
		evPerSec := float64(reps*events) / elapsed.Seconds()
		fmt.Printf("  %-22s %8.2f Mevents/s build   %6.1f bytes/event (log: %6.1f, %4.1fx smaller)\n",
			log.Name, evPerSec/1e6, perEvent, naivePerEvent, naivePerEvent/perEvent)
		if float64(idxBytes)*2 > float64(logBytes) {
			return nil, fmt.Errorf("index of %s is only %.2fx smaller than the log (%d vs %d bytes); the columnar layout must stay >= 2x smaller",
				log.Name, naivePerEvent/perEvent, idxBytes, logBytes)
		}
		rows = append(rows, experiments.Row{
			Label:         "Index/" + log.Name,
			Seconds:       elapsed.Seconds(),
			N:             reps * events,
			BytesPerEvent: perEvent,
		})

		// Cold start vs warm open: what a server restart pays per log without
		// and with the persistent index. Cold is the full pipeline a cache
		// miss runs (parse the XES text, build the index); open is
		// eventlog.OpenIndex on the spilled file.
		var xesText bytes.Buffer
		if err := xes.Write(&xesText, log); err != nil {
			return nil, err
		}
		coldStart := time.Now()
		for r := 0; r < reps; r++ {
			parsed, err := xes.Read(bytes.NewReader(xesText.Bytes()))
			if err != nil {
				return nil, err
			}
			eventlog.NewIndex(parsed)
		}
		cold := time.Since(coldStart)

		path := filepath.Join(tmp, log.Name+".gidx")
		if err := eventlog.WriteIndexFile(path, x); err != nil {
			return nil, err
		}
		openStart := time.Now()
		for r := 0; r < reps; r++ {
			opened, err := eventlog.OpenIndex(path)
			if err != nil {
				return nil, err
			}
			opened.Close()
		}
		open := time.Since(openStart)

		speedup := cold.Seconds() / open.Seconds()
		fmt.Printf("  %-22s cold %8.2fms (parse+build)   open %8.2fms   %5.1fx faster\n",
			log.Name, cold.Seconds()*1e3/reps, open.Seconds()*1e3/reps, speedup)
		if speedup < 5 {
			return nil, fmt.Errorf("OpenIndex on %s is only %.1fx faster than re-parse+build (%.2fms vs %.2fms per rep); the persistent format must stay >= 5x faster",
				log.Name, speedup, open.Seconds()*1e3/reps, cold.Seconds()*1e3/reps)
		}
		rows = append(rows,
			experiments.Row{Label: "IndexCold/" + log.Name, Seconds: cold.Seconds(), N: reps * events},
			experiments.Row{Label: "IndexOpen/" + log.Name, Seconds: open.Seconds(), N: reps * events},
		)
	}
	return rows, nil
}

// evalBench measures the solver kernels in isolation, the micro-counterpart
// of the Table VI end-to-end rows:
//
//   - Eval/HoldsInstance: screened instance-constraint verdicts over an
//     exhaustive pair+triple group enumeration (checks/s); the screened
//     share prints alongside, since the speedup comes from verdicts decided
//     without materialising instances.
//   - Eval/Distance: exact Eq. 1 evaluations on a cold memo over the same
//     enumeration (evals/s), exercising the streaming variantTerm path.
//   - Eval/BeamPrune: a DFG beam run with a tight width, timed end to end;
//     N records the frontier nodes the admissible lower bound discharged,
//     and the prune rate (pruned / (pruned + exact evals)) prints.
//
// Rows feed -json/-baseline like every other section. Screening or pruning
// never firing is a hard error: it means the kernels degenerated to the
// scan/full-sort fallbacks and the micro numbers are measuring nothing.
func evalBench(ctx context.Context, opts experiments.Options) ([]experiments.Row, error) {
	log := procgen.LoanLog(1000, 17)
	x := eventlog.NewIndex(log)
	set := constraints.NewSet(
		constraints.MustParse("distinct(role) <= 2"),
		constraints.MustParse("max(cost) <= 400"),
		constraints.MustParse("gap <= 3600"),
	)
	nc := x.NumClasses()
	var groups []bitset.Set
	for a := 0; a < nc; a++ {
		for b := a + 1; b < nc; b++ {
			g := bitset.New(nc)
			g.Add(a)
			g.Add(b)
			groups = append(groups, g)
			for c := b + 1; c < nc; c++ {
				g3 := bitset.New(nc)
				g3.Add(a)
				g3.Add(b)
				g3.Add(c)
				groups = append(groups, g3)
			}
		}
	}
	fmt.Printf("solver kernels — %d classes, %d pair/triple groups on %s:\n", nc, len(groups), log.Name)

	const reps = 5
	rows := make([]experiments.Row, 0, 3)

	// Screened instance evaluation. A fresh evaluator per rep keeps the
	// counters per-rep comparable; the attribute cache warms on rep one,
	// which is exactly the amortisation a solve run sees.
	attrs := constraints.NewAttrCache(x)
	var ev *constraints.Evaluator
	start := time.Now()
	for r := 0; r < reps; r++ {
		ev = constraints.NewEvaluatorCached(x, set, instances.SplitOnRepeat, attrs)
		for _, g := range groups {
			ev.HoldsInstance(g)
		}
	}
	holdElapsed := time.Since(start)
	holdN := reps * len(groups)
	screened := ev.ScreenHits()
	if screened == 0 {
		return nil, fmt.Errorf("eval bench: screens never decided a verdict across %d checks", len(groups))
	}
	fmt.Printf("  HoldsInstance  %10.0f checks/s   (%d/%d verdicts screened without a log pass)\n",
		float64(holdN)/holdElapsed.Seconds(), screened, len(groups)*len(set.Instance))
	rows = append(rows, experiments.Row{Label: "Eval/HoldsInstance", Seconds: holdElapsed.Seconds(), N: holdN})

	// Exact Eq. 1 on a cold memo: a fresh Calc per rep, so every Group call
	// is a real streaming evaluation rather than a memo hit.
	start = time.Now()
	for r := 0; r < reps; r++ {
		dc := distance.NewCalc(x, instances.SplitOnRepeat)
		for _, g := range groups {
			dc.Group(g)
		}
	}
	distElapsed := time.Since(start)
	distN := reps * len(groups)
	fmt.Printf("  Distance       %10.0f evals/s\n", float64(distN)/distElapsed.Seconds())
	rows = append(rows, experiments.Row{Label: "Eval/Distance", Seconds: distElapsed.Seconds(), N: distN})

	// Beam frontier pruning: a tight beam forces the LB-gated sort to gate,
	// and the session surfaces both counters on the Result. The bound only
	// separates paths whose class sets the log hosts with different degrees
	// of partial coverage, so this section runs on the collection's
	// second log (40 classes, noisy variants); on the loan log nearly every
	// class co-occurs with every other and the bounds barely spread.
	beamLog := procgen.BuildLog(procgen.CollectionSpecs()[1])
	sess, err := core.NewSession(beamLog)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Mode: core.DFGBeam, BeamWidth: 4, Workers: opts.Workers}
	if opts.MaxChecks > 0 {
		cfg.Budget.MaxChecks = opts.MaxChecks
	}
	start = time.Now()
	res, err := sess.Solve(ctx, set, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval bench: beam run: %w", err)
	}
	beamElapsed := time.Since(start)
	exact := sess.Calc(cfg.Policy).Evals()
	if res.LBPruned == 0 {
		return nil, fmt.Errorf("eval bench: the lower bound pruned no frontier nodes (beam width %d, %d exact evals)", cfg.BeamWidth, exact)
	}
	rate := float64(res.LBPruned) / float64(res.LBPruned+exact)
	fmt.Printf("  BeamPrune      %10.2fms solve   %d nodes pruned, %d exact evals (%.0f%% of the frontier discharged by bounds)\n",
		beamElapsed.Seconds()*1e3, res.LBPruned, exact, rate*100)
	rows = append(rows, experiments.Row{Label: "Eval/BeamPrune", Seconds: beamElapsed.Seconds(), N: res.LBPruned})
	return rows, nil
}

func run(title string, fn func()) {
	fmt.Printf("running %s...\n", title)
	start := time.Now()
	fn()
	fmt.Printf("(%s in %v)\n\n", title, time.Since(start).Round(time.Millisecond))
}

func emitFigures(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, dot string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(dot), 0o644)
	}
	// Figure 2: full DFG of the running example.
	running := procgen.RunningExampleTable1()
	if err := write("figure2_running_example_dfg.dot", gecco.DFGDot(running, 1)); err != nil {
		return err
	}
	// Figure 3: DFG after abstraction with the role constraint.
	res, err := gecco.Abstract(running, "distinct(role) <= 1", gecco.Config{Mode: gecco.ModeDFGUnbounded, NamePrefix: "clrk"})
	if err != nil {
		return err
	}
	if err := write("figure3_abstracted_dfg.dot", gecco.DFGDot(res.Abstracted, 1)); err != nil {
		return err
	}
	// Figure 1: 80/20 DFG of the (synthetic) loan log.
	loan := procgen.LoanLog(1000, 17)
	if err := write("figure1_loan_8020_dfg.dot", gecco.DFGDot(loan, 0.8)); err != nil {
		return err
	}
	// Figure 8: 80/20 DFG of the loan log abstracted under the
	// origin-system constraint (§VI-D).
	caseRes, err := gecco.Abstract(loan, "distinct(class.org) <= 1\n|g| <= 8",
		gecco.Config{Mode: gecco.ModeDFGUnbounded, NameByClassAttr: "org"})
	if err != nil {
		return err
	}
	if !caseRes.Feasible {
		return fmt.Errorf("case study infeasible: %s", caseRes.Diagnostics)
	}
	if err := write("figure8_case_study_dfg.dot", gecco.DFGDot(caseRes.Abstracted, 0.8)); err != nil {
		return err
	}
	fmt.Printf("figures written to %s/\n", dir)
	return nil
}

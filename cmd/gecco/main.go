// Command gecco abstracts an event log under user constraints.
//
// Usage:
//
//	gecco -log events.xes -constraints rules.txt -out abstracted.xes
//	gecco -log events.csv -constraint 'distinct(role) <= 1' -mode dfg -dot out.dot
//	gecco -log events.xes -sweep alternatives.txt
//
// The constraint file holds one constraint per line ('#' comments allowed);
// -constraint adds single constraints on the command line (repeatable).
// Output formats follow the file extensions (.xes or .csv).
//
// -sweep explores several constraint sets interactively: the sweep file
// holds multiple sets separated by lines containing only "---", and all of
// them are solved on one session — the log is indexed once and the distance
// memo stays warm across sets — printing a per-set comparison instead of a
// single grouping. Constraints given via -constraints/-constraint are
// prepended to every set as a shared base.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gecco"
	"gecco/internal/candidates"
	"gecco/internal/eventlog"
	"gecco/internal/pipeline"
	"gecco/internal/service"
)

type constraintList []string

func (c *constraintList) String() string { return strings.Join(*c, "; ") }

func (c *constraintList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	var (
		logPath     = flag.String("log", "", "input event log (.xes or .csv)")
		consFile    = flag.String("constraints", "", "file with one constraint per line")
		outPath     = flag.String("out", "", "output path for the abstracted log (.xes or .csv)")
		dotPath     = flag.String("dot", "", "write the abstracted log's DFG as Graphviz DOT")
		dotFrac     = flag.Float64("dotfrac", 0.8, "edge-frequency fraction for the DOT view (1 = all edges)")
		mode        = flag.String("mode", "dfg", "candidate computation: exh | dfg | beam")
		beamWidth   = flag.Int("k", 0, "beam width for -mode beam (0 = 5*|classes|)")
		strategy    = flag.String("strategy", "complete", "abstraction strategy: complete | startcomplete")
		maxChecks   = flag.Int("budget", 0, "max candidate checks (0 = unlimited)")
		workers     = flag.Int("workers", 0, "worker threads for candidate and distance evaluation (0 = all cores)")
		solverLimit = flag.Duration("solver-timeout", 30*time.Second, "Step 2 time limit")
		nameAttr    = flag.String("name-attr", "", "prefix activity names by this class attribute (e.g. org)")
		useMIP      = flag.Bool("mip", false, "use the MIP formulation for Step 2 instead of branch and bound")
		quiet       = flag.Bool("q", false, "suppress the grouping report")
		suggestOnly = flag.Bool("suggest", false, "profile the log and print constraint suggestions, then exit")
		sweepFile   = flag.String("sweep", "", "file with constraint sets separated by '---' lines; solve all on one session and compare")
		pipelineArg = flag.String("pipeline", "", "run a staged pipeline: 'default' or a JSON stage-list file (stages: filter, suggest, abstract, discover, conform)")
	)
	var extra constraintList
	flag.Var(&extra, "constraint", "single constraint (repeatable)")
	flag.Parse()

	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "gecco: -log is required")
		flag.Usage()
		os.Exit(2)
	}
	log, err := readLog(*logPath)
	fatal(err)

	if *suggestOnly {
		fmt.Println("suggested constraints (singleton pass rate | constraint | rationale):")
		for _, s := range gecco.SuggestConstraints(log) {
			fmt.Printf("  %5.0f%%  %-34s  # %s\n", 100*s.SingletonPass, s.Constraint, s.Rationale)
		}
		return
	}

	text := ""
	if *consFile != "" {
		b, err := os.ReadFile(*consFile)
		fatal(err)
		text = string(b)
	}
	for _, c := range extra {
		text += "\n" + c
	}
	set, err := gecco.ParseConstraints(text)
	fatal(err)
	if set.Len() == 0 && *sweepFile == "" {
		fmt.Fprintln(os.Stderr, "gecco: warning: no constraints given; distance alone drives the grouping")
	}

	cfg := gecco.Config{
		BeamWidth:       *beamWidth,
		Workers:         *workers,
		Budget:          candidates.Budget{MaxChecks: *maxChecks},
		SolverTimeout:   *solverLimit,
		NameByClassAttr: *nameAttr,
	}
	switch *mode {
	case "exh":
		cfg.Mode = gecco.ModeExhaustive
	case "dfg":
		cfg.Mode = gecco.ModeDFGUnbounded
	case "beam":
		cfg.Mode = gecco.ModeDFGBeam
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	switch *strategy {
	case "complete":
		cfg.Strategy = gecco.StrategyCompletionOnly
	case "startcomplete":
		cfg.Strategy = gecco.StrategyStartComplete
	default:
		fatal(fmt.Errorf("unknown -strategy %q", *strategy))
	}
	if *useMIP {
		cfg.Solver = gecco.SolverMIP
	}

	if *pipelineArg != "" {
		fatal(runPipeline(log, *pipelineArg, set, *outPath))
		return
	}

	if *sweepFile != "" {
		fatal(runSweep(log, *sweepFile, text, cfg))
		return
	}

	res, err := gecco.AbstractSet(log, set, cfg)
	fatal(err)

	if !res.Feasible {
		fmt.Fprintf(os.Stderr, "gecco: no grouping satisfies the constraints: %s\n", res.Diagnostics)
		for _, s := range res.Diagnostics.SharesSorted() {
			fmt.Fprintf(os.Stderr, "  %-40s rejects %.0f%% of singleton groups\n", s.Constraint, 100*s.Fraction)
		}
		os.Exit(1)
	}
	if !*quiet {
		st, ast := gecco.Stats(log), gecco.Stats(res.Abstracted)
		fmt.Printf("grouping (distance %.4f, %d candidates, %v):\n", res.Distance, res.NumCandidates, res.Timings.Total().Round(time.Millisecond))
		for i, name := range res.Grouping.Names {
			fmt.Printf("  %-20s <- %s\n", name, strings.Join(res.GroupClasses[i], ", "))
		}
		fmt.Printf("classes %d -> %d, DFG edges %d -> %d\n", st.NumClasses, ast.NumClasses, st.NumDFGEdges, ast.NumDFGEdges)
	}
	if *outPath != "" {
		fatal(writeLog(*outPath, res.Abstracted))
	}
	if *dotPath != "" {
		fatal(os.WriteFile(*dotPath, []byte(gecco.DFGDot(res.Abstracted, *dotFrac)), 0o644))
	}
}

// runPipeline runs the staged engine offline: no per-stage cache, no
// session LRU — every stage executes. specArg is "default" for the standard
// suggest → abstract → discover → conform pipeline, or a JSON stage-list
// file in the POST /pipeline wire format.
func runPipeline(log *gecco.Log, specArg string, set *gecco.ConstraintSet, outPath string) error {
	text := ""
	if specArg != "default" {
		b, err := os.ReadFile(specArg)
		if err != nil {
			return err
		}
		text = string(b)
	}
	specs, err := pipeline.ParseSpecs(text)
	if err != nil {
		return err
	}
	stages, err := pipeline.BuildStages(specs)
	if err != nil {
		return err
	}
	digest := service.LogDigest(log)
	base := &pipeline.State{Index: eventlog.NewIndex(log), IndexKey: digest}
	if set.Len() > 0 {
		base.Constraints = set
	}
	start := time.Now()
	res, err := pipeline.Run(context.Background(), stages, base, pipeline.BaseKey(digest, set.String()), nil)
	if err != nil {
		return err
	}
	fmt.Printf("pipeline on %s (%d stages):\n", log.Name, len(res.Stages))
	for _, st := range res.Stages {
		fmt.Printf("  %-10s %9s  key %s\n", st.Stage, st.Duration.Round(time.Millisecond), st.Key[:12])
	}
	state := res.State
	if len(state.Suggestions) > 0 && state.Constraints != nil {
		fmt.Println("adopted constraints:")
		for _, c := range state.Constraints.All() {
			fmt.Printf("  %s\n", c)
		}
	}
	if a := state.Abstraction; a != nil {
		if a.Feasible {
			fmt.Printf("abstraction: distance %.4f, %d activities\n", a.Distance, len(a.Grouping.Names))
			for i, name := range a.Grouping.Names {
				fmt.Printf("  %-20s <- %s\n", name, strings.Join(a.GroupClasses[i], ", "))
			}
		} else {
			fmt.Printf("abstraction: infeasible (%s); downstream stages used the input log\n", a.Diagnostics)
		}
	}
	if m := state.Model; m != nil {
		fmt.Printf("model: %d activities, %d edges, CFC %.1f, size %d\n",
			len(m.Labels), m.Graph.NumEdges(), m.CFC(), m.Size())
	}
	if c := state.Conformance; c != nil {
		fmt.Printf("conformance: fitness %.4f, precision %.4f\n", c.Fitness, c.Precision)
		for _, mf := range c.Misfits {
			fmt.Printf("  misfit %s -> %s (%d)\n", mf.From, mf.To, mf.Count)
		}
	}
	fmt.Printf("pipeline total: %s\n", time.Since(start).Round(time.Millisecond))
	if outPath != "" && state.Abstraction != nil && state.Abstraction.Feasible {
		return writeLog(outPath, state.Abstraction.Abstracted)
	}
	return nil
}

// runSweep solves every constraint set of the sweep file on one session and
// prints a per-set comparison. base (the -constraints/-constraint text) is
// prepended to each set.
func runSweep(log *gecco.Log, path, base string, cfg gecco.Config) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	texts := splitSets(string(b))
	if len(texts) == 0 {
		return fmt.Errorf("sweep file %s holds no constraint sets", path)
	}
	sess, err := gecco.NewSession(log)
	if err != nil {
		return err
	}
	start := time.Now()
	fmt.Printf("sweeping %d constraint sets on %s (one session, warm distance memo):\n",
		len(texts), log.Name)
	fmt.Printf("  %-4s %-8s %7s %10s %11s %9s  %s\n",
		"set", "feasible", "groups", "distance", "candidates", "time", "constraints")
	for i, t := range texts {
		full := base + "\n" + t
		t0 := time.Now()
		res, err := sess.Solve(full, cfg)
		if err != nil {
			return fmt.Errorf("set %d: %w", i+1, err)
		}
		oneLine := strings.Join(strings.Fields(t), " ")
		if res.Feasible {
			fmt.Printf("  #%-3d %-8s %7d %10.4f %11d %9s  %s\n",
				i+1, "yes", len(res.Grouping.Names), res.Distance, res.NumCandidates,
				time.Since(t0).Round(time.Millisecond), oneLine)
		} else {
			fmt.Printf("  #%-3d %-8s %7s %10s %11d %9s  %s (%s)\n",
				i+1, "no", "-", "-", res.NumCandidates,
				time.Since(t0).Round(time.Millisecond), oneLine, res.Diagnostics)
		}
	}
	fmt.Printf("sweep total: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// splitSets splits a sweep file into constraint sets on lines containing
// only "---"; empty sets (e.g. a trailing separator) are dropped.
func splitSets(text string) []string {
	var out []string
	cur := ""
	flush := func() {
		if strings.TrimSpace(cur) != "" {
			out = append(out, cur)
		}
		cur = ""
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) == "---" {
			flush()
			continue
		}
		cur += line + "\n"
	}
	flush()
	return out
}

func readLog(path string) (*gecco.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".xes":
		return gecco.ReadXES(f)
	case ".csv":
		return gecco.ReadCSV(f, gecco.CSVOptions{})
	}
	return nil, fmt.Errorf("unsupported log format %q (want .xes or .csv)", filepath.Ext(path))
}

func writeLog(path string, log *gecco.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".xes":
		return gecco.WriteXES(f, log)
	case ".csv":
		return gecco.WriteCSV(f, log)
	}
	return fmt.Errorf("unsupported output format %q (want .xes or .csv)", filepath.Ext(path))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gecco:", err)
		os.Exit(1)
	}
}

// Command gecco-vet is the repository's multichecker: it runs the five
// internal/analysis analyzers (detmap, wallclock, ctxflow, oncesafe,
// hotpath) over the module and exits non-zero on any finding. It is built
// from source by `make lint` — no network-installed tools — and understands
// the //lint:gecco-allow(<analyzer>): <justification> suppression directive
// and the //gecco:hotpath function marker.
//
// Usage:
//
//	gecco-vet [-root dir] [-only name,name] [-verbose] [./...]
//
// The ./... argument is accepted for muscle-memory compatibility with go
// vet; the tool always analyses the whole module under -root.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gecco/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root to analyse (directory containing go.mod)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	verbose := flag.Bool("verbose", false, "also print per-package type-check errors (findings are unaffected)")
	flag.Parse()

	modPath, err := analysis.ModulePathFromGoMod(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gecco-vet: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(*root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gecco-vet: loading packages: %v\n", err)
		os.Exit(2)
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			byName[strings.TrimSpace(name)] = true
		}
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			if byName[a.Name] {
				keep = append(keep, a)
			}
		}
		if len(keep) == 0 {
			fmt.Fprintf(os.Stderr, "gecco-vet: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = keep
	}

	if *verbose {
		for _, pkg := range pkgs {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "gecco-vet: typecheck %s: %v\n", pkg.Path, e)
			}
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gecco-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// Command gecco-serve exposes the GECCO pipeline as a concurrent HTTP
// service with a sharded result cache and cooperative cancellation: a
// disconnected client or a shutdown signal stops in-flight pipeline runs
// mid-frontier. POST /stream serves the online workload: NDJSON traces in,
// abstracted NDJSON out, with named per-stream abstractor state kept in a
// bounded LRU across requests. With -data-dir set, evicted session indexes
// spill to disk as .gidx files and feasible results persist across
// restarts (see the README's Persistence section and docs/FORMAT.md).
//
// Usage:
//
//	gecco-serve -addr :8080 -max-jobs 4 -cache-size 256 -max-streams 64 -data-dir gecco-data
//
//	curl -s "localhost:8080/abstract?constraints=distinct(role)%20%3C%3D%201" \
//	     -X POST --data-binary @events.xes
//	curl -sN "localhost:8080/stream?stream=orders&constraints=distinct(role)%20%3C%3D%201" \
//	     -X POST --data-binary @traces.ndjson
//	curl -s localhost:8080/stats
//
// See the README's Serving and Streaming sections for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gecco/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		maxJobs   = flag.Int("max-jobs", 0, "maximum concurrent pipeline runs (0 = one per CPU)")
		cacheSize = flag.Int("cache-size", 256, "result cache capacity in entries (0 = disable)")
		sessions  = flag.Int("session-cache", 16, "live per-log sessions kept for cross-request reuse (0 = disable)")
		streams   = flag.Int("max-streams", 64, "named online streams kept live for POST /stream (0 = disable streaming)")
		workers   = flag.Int("workers", 0, "default worker threads per job (0 = all cores)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown window before in-flight jobs are cut")
		dataDir   = flag.String("data-dir", "", "directory for the warm tier: spilled session indexes and persisted results survive restarts (empty = in-memory only)")
	)
	flag.Parse()

	if *dataDir != "" {
		// Fail loudly at startup rather than degrading silently mid-flight:
		// an unusable data dir is an operator error, not a runtime condition.
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gecco-serve: -data-dir:", err)
			os.Exit(1)
		}
	}

	svc := service.New(service.Options{
		MaxConcurrent:   *maxJobs,
		CacheCapacity:   *cacheSize,
		NoCache:         *cacheSize <= 0,
		SessionCapacity: *sessions,
		NoSessions:      *sessions <= 0,
		MaxStreams:      *streams,
		NoStreams:       *streams <= 0,
		DefaultWorkers:  *workers,
		DataDir:         *dataDir,
	})
	srv := &http.Server{Addr: *addr, Handler: service.Handler(svc)}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("gecco-serve listening on %s (max-jobs=%d cache-size=%d max-streams=%d)\n", *addr, *maxJobs, *cacheSize, *streams)
	if *dataDir != "" {
		fmt.Printf("gecco-serve persisting to %s\n", *dataDir)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("gecco-serve: %v, draining for up to %v...\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gecco-serve: shutdown:", err)
		}
		cancel()
		// Cancel whatever is still running mid-frontier and wait for it.
		svc.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "gecco-serve:", err)
			os.Exit(1)
		}
	}
}

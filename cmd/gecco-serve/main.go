// Command gecco-serve exposes the GECCO pipeline as a concurrent HTTP
// service with a sharded result cache and cooperative cancellation: a
// disconnected client or a shutdown signal stops in-flight pipeline runs
// mid-frontier. POST /stream serves the online workload: NDJSON traces in,
// abstracted NDJSON out, with named per-stream abstractor state kept in a
// bounded LRU across requests. With -data-dir set, evicted session indexes
// spill to disk as .gidx files and feasible results persist across
// restarts (see the README's Persistence section and docs/FORMAT.md).
//
// Scale-out (see the README's Sharding section and docs/ARCHITECTURE.md):
//
//   - -shards N boots a single-box cluster: N worker services on
//     consecutive loopback ports behind a pure-coordinator router on -addr,
//     each owning a consistent-hash range of the log-digest space.
//   - -peers/-advertise joins a multi-process cluster: every node runs the
//     same embedded router over the shared peer list and serves or forwards
//     by ring ownership, so any node is a valid entry point.
//
// Usage:
//
//	gecco-serve -addr :8080 -max-jobs 4 -cache-size 256 -max-streams 64 -data-dir gecco-data
//	gecco-serve -addr :8080 -shards 2 -data-dir gecco-data
//	gecco-serve -addr :8081 -advertise http://10.0.0.1:8081 \
//	    -peers http://10.0.0.1:8081,http://10.0.0.2:8081
//
//	curl -s "localhost:8080/abstract?constraints=distinct(role)%20%3C%3D%201" \
//	     -X POST --data-binary @events.xes
//	curl -sN "localhost:8080/stream?stream=orders&constraints=distinct(role)%20%3C%3D%201" \
//	     -X POST --data-binary @traces.ndjson
//	curl -s localhost:8080/stats
//
// See the README's Serving and Streaming sections for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gecco/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		maxJobs   = flag.Int("max-jobs", 0, "maximum concurrent pipeline runs (0 = one per CPU)")
		cacheSize = flag.Int("cache-size", 256, "result cache capacity in entries (0 = disable)")
		sessions  = flag.Int("session-cache", 16, "live per-log sessions kept for cross-request reuse (0 = disable)")
		streams   = flag.Int("max-streams", 64, "named online streams kept live for POST /stream (0 = disable streaming)")
		workers   = flag.Int("workers", 0, "default worker threads per job (0 = all cores)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown window before in-flight jobs are cut")
		dataDir   = flag.String("data-dir", "", "directory for the warm tier: spilled session indexes and persisted results survive restarts (empty = in-memory only)")
		shards    = flag.Int("shards", 0, "boot a single-box cluster: N worker shards on consecutive loopback ports behind a coordinator on -addr")
		peers     = flag.String("peers", "", "comma-separated base URLs of every shard in the cluster, in the same order on every node (multi-process mode)")
		advertise = flag.String("advertise", "", "this node's own base URL exactly as it appears in -peers")
	)
	flag.Parse()

	if *dataDir != "" {
		// Fail loudly at startup rather than degrading silently mid-flight:
		// an unusable data dir is an operator error, not a runtime condition.
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gecco-serve: -data-dir:", err)
			os.Exit(1)
		}
	}
	if *shards > 0 && *peers != "" {
		fmt.Fprintln(os.Stderr, "gecco-serve: -shards (single-box) and -peers (multi-process) are mutually exclusive")
		os.Exit(1)
	}

	opts := service.Options{
		MaxConcurrent:   *maxJobs,
		CacheCapacity:   *cacheSize,
		NoCache:         *cacheSize <= 0,
		SessionCapacity: *sessions,
		NoSessions:      *sessions <= 0,
		MaxStreams:      *streams,
		NoStreams:       *streams <= 0,
		DefaultWorkers:  *workers,
		DataDir:         *dataDir,
	}

	var (
		svcs    []*service.Service
		servers []*http.Server
	)
	switch {
	case *shards > 0:
		// Single-box cluster: shard i serves on loopback port base+1+i with a
		// plain handler (all routing happens at the front door); the
		// coordinator router owns -addr. Shards share the warm tier, so a
		// drained shard's spilled sessions are warm-opened by its successor.
		basePort, err := listenPort(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gecco-serve: -addr:", err)
			os.Exit(1)
		}
		peerURLs := make([]string, *shards)
		memberIDs := make([]string, *shards)
		for i := 0; i < *shards; i++ {
			peerURLs[i] = fmt.Sprintf("http://127.0.0.1:%d", basePort+1+i)
			memberIDs[i] = fmt.Sprintf("shard-%d", i)
		}
		for i := 0; i < *shards; i++ {
			o := opts
			o.JobIDPrefix = fmt.Sprintf("s%d-", i)
			svc := service.New(o)
			svcs = append(svcs, svc)
			servers = append(servers, &http.Server{
				Addr:    fmt.Sprintf("127.0.0.1:%d", basePort+1+i),
				Handler: service.Handler(svc),
			})
		}
		coord, err := service.NewRouter(nil, service.ShardOptions{
			Peers: peerURLs, MemberIDs: memberIDs, Self: -1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gecco-serve:", err)
			os.Exit(1)
		}
		servers = append(servers, &http.Server{Addr: *addr, Handler: coord})
		fmt.Printf("gecco-serve coordinator on %s fronting %d shards (ports %d-%d)\n",
			*addr, *shards, basePort+1, basePort+*shards)

	case *peers != "":
		list := splitPeers(*peers)
		self := -1
		memberIDs := make([]string, len(list))
		for i, p := range list {
			memberIDs[i] = fmt.Sprintf("shard-%d", i)
			if p == strings.TrimSuffix(*advertise, "/") {
				self = i
			}
		}
		if self < 0 {
			fmt.Fprintf(os.Stderr, "gecco-serve: -advertise %q is not in -peers %v\n", *advertise, list)
			os.Exit(1)
		}
		o := opts
		o.JobIDPrefix = fmt.Sprintf("s%d-", self)
		svc := service.New(o)
		svcs = append(svcs, svc)
		router, err := service.NewRouter(svc, service.ShardOptions{
			Peers: list, MemberIDs: memberIDs, Self: self,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gecco-serve:", err)
			os.Exit(1)
		}
		servers = append(servers, &http.Server{Addr: *addr, Handler: router})
		fmt.Printf("gecco-serve shard %d/%d on %s (advertised %s)\n", self, len(list), *addr, *advertise)

	default:
		svc := service.New(opts)
		svcs = append(svcs, svc)
		servers = append(servers, &http.Server{Addr: *addr, Handler: service.Handler(svc)})
		fmt.Printf("gecco-serve listening on %s (max-jobs=%d cache-size=%d max-streams=%d)\n", *addr, *maxJobs, *cacheSize, *streams)
	}
	if *dataDir != "" {
		fmt.Printf("gecco-serve persisting to %s\n", *dataDir)
	}

	errc := make(chan error, len(servers))
	for _, srv := range servers {
		srv := srv
		go func() { errc <- srv.ListenAndServe() }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("gecco-serve: %v, draining for up to %v...\n", sig, *drain)
		// Readiness goes 503 first so routers and load balancers stop
		// sending new work, then the listeners drain in-flight requests,
		// then Close cancels stragglers and spills sessions to the warm
		// tier for the ring successors to warm-open.
		for _, svc := range svcs {
			svc.StartDrain()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		for _, srv := range servers {
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "gecco-serve: shutdown:", err)
			}
		}
		cancel()
		for _, svc := range svcs {
			svc.Close()
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "gecco-serve:", err)
			os.Exit(1)
		}
	}
}

// listenPort extracts the numeric port of a listen address like ":8080" or
// "0.0.0.0:8080"; shard ports are allocated consecutively after it.
func listenPort(addr string) (int, error) {
	_, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return 0, err
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return 0, fmt.Errorf("port %q is not numeric (the -shards coordinator derives shard ports from it)", portStr)
	}
	return port, nil
}

// splitPeers parses the -peers list, trimming whitespace and trailing
// slashes so every node normalises the shared order identically.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSuffix(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Command loggen generates the 13 synthetic evaluation logs substituting
// the paper's Table III collection, writes them as XES files, and prints
// their measured characteristics next to the paper's.
//
// Usage:
//
//	loggen -out logs/         # write synthetic-[14].xes ... and print Table III
//	loggen -table             # print Table III only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gecco"
	"gecco/internal/experiments"
	"gecco/internal/procgen"
)

func main() {
	var (
		outDir    = flag.String("out", "", "directory to write XES files into (empty = don't write)")
		tableOnly = flag.Bool("table", false, "print the Table III comparison only")
	)
	flag.Parse()

	logs := procgen.Collection()
	experiments.PrintTable3(os.Stdout, logs)
	if *tableOnly || *outDir == "" {
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, log := range logs {
		name := strings.NewReplacer("[", "", "]", "").Replace(log.Name) + ".xes"
		path := filepath.Join(*outDir, name)
		if err := gecco.WriteXESFile(path, log); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loggen:", err)
	os.Exit(1)
}

// Package gecco is a Go implementation of GECCO — Constraint-driven
// Abstraction of Low-level Event Logs (Rebmann, Weidlich, van der Aa,
// ICDE 2022). It groups the event classes of a log into higher-level
// activities such that user-declared constraints hold and a behavioural
// distance to the original log is minimal, then rewrites the log in terms
// of the found activities.
//
// # Quick start
//
//	log, _ := gecco.ReadXESFile("events.xes")
//	res, err := gecco.Abstract(log, "distinct(role) <= 1\n|g| <= 8", gecco.Config{Mode: gecco.ModeDFGUnbounded})
//	if err != nil { ... }
//	if res.Feasible {
//	    gecco.WriteXESFile("abstracted.xes", res.Abstracted)
//	}
//
// Constraints are declared in a small textual language; see
// internal/constraints.Parse for the full grammar. Three pipeline
// configurations mirror the paper: exhaustive candidate computation
// (ModeExhaustive), DFG-guided search (ModeDFGUnbounded), and beam-pruned
// DFG search (ModeDFGBeam, the paper's DFGk with k = 5·|C_L| by default).
//
// Candidate computation and distance evaluation run on a worker pool sized
// by Config.Workers (default: one worker per CPU). Parallel runs are
// deterministic — without a wall-clock Budget.TimeLimit, any worker count
// produces byte-identical results; set Workers to 1 for the paper's
// sequential execution.
//
// # Interactive sessions
//
// Abstract rebuilds the log's index, DFG, and distance memo on every call,
// yet none of those depend on the constraints. NewSession builds them once;
// Session.Solve then explores constraint set after constraint set on the
// frozen artifacts with a warm distance memo, byte-identical to the
// one-shot path:
//
//	sess, _ := gecco.NewSession(log)
//	for _, rules := range alternatives {
//	    res, _ := sess.Solve(rules, cfg)
//	    ...
//	}
//
// # Cancellation
//
// AbstractContext and AbstractSetContext are the context-aware entry points
// for long-running or served workloads. Cancelling the context — a
// disconnected HTTP client, a server shutdown, a caller-side timeout —
// stops the pipeline mid-frontier and mid-solve and returns an error
// wrapping context.Canceled or context.DeadlineExceeded. A context deadline
// composes with Config.Budget.TimeLimit: whichever expires first cuts the
// candidate frontier, but only the context's own expiry becomes an error
// (TimeLimit expiry returns the partial result, as in the paper's 5-hour
// budget). With a context that is never cancelled, results are
// byte-identical to Abstract/AbstractSet. The gecco-serve command exposes
// these entry points over HTTP with a sharded result cache; see
// internal/service.
package gecco

import (
	"context"
	"fmt"
	"io"
	"os"

	"gecco/internal/abstraction"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/csvlog"
	"gecco/internal/dfg"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/logfilter"
	"gecco/internal/suggest"
	"gecco/internal/xes"
)

// Re-exported data model types. A Log is a set of traces; each Trace is a
// sequence of Events with a class and typed attributes.
type (
	Log   = eventlog.Log
	Trace = eventlog.Trace
	Event = eventlog.Event
	Value = eventlog.Value

	// Config tunes the pipeline; its zero value runs exhaustive candidate
	// computation with unlimited budget and completion-only abstraction.
	Config = core.Config
	// Result is the pipeline outcome: the grouping, its distance, the
	// abstracted log, timings, and infeasibility diagnostics.
	Result = core.Result
	// ConstraintSet is a parsed, categorised set of constraints.
	ConstraintSet = constraints.Set
)

// Pipeline configurations (§VI-A of the paper).
const (
	ModeExhaustive   = core.Exhaustive
	ModeDFGUnbounded = core.DFGUnbounded
	ModeDFGBeam      = core.DFGBeam
)

// Abstraction strategies (§V-D).
const (
	StrategyCompletionOnly = abstraction.CompletionOnly
	StrategyStartComplete  = abstraction.StartComplete
)

// Step 2 solvers.
const (
	SolverBranchAndBound = core.SolverBB
	SolverMIP            = core.SolverMIP
)

// ParseConstraints parses newline-separated constraint declarations; blank
// lines and '#' comments are skipped.
func ParseConstraints(text string) (*ConstraintSet, error) {
	return constraints.ParseSet(text)
}

// Abstract runs the GECCO pipeline on the log under textual constraints.
func Abstract(log *Log, constraintText string, cfg Config) (*Result, error) {
	//lint:gecco-allow(ctxflow): convenience wrapper; AbstractContext is the cancellable variant
	return AbstractContext(context.Background(), log, constraintText, cfg)
}

// AbstractContext is Abstract under a context; see the package
// documentation for the cancellation and deadline-composition semantics.
func AbstractContext(ctx context.Context, log *Log, constraintText string, cfg Config) (*Result, error) {
	set, err := ParseConstraints(constraintText)
	if err != nil {
		return nil, fmt.Errorf("gecco: %w", err)
	}
	return AbstractSetContext(ctx, log, set, cfg)
}

// AbstractSet runs the GECCO pipeline with an already-built constraint set.
func AbstractSet(log *Log, set *ConstraintSet, cfg Config) (*Result, error) {
	return core.Run(log, set, cfg)
}

// AbstractSetContext is AbstractSet under a context; cancellation stops the
// pipeline mid-frontier and returns an error wrapping ctx.Err().
func AbstractSetContext(ctx context.Context, log *Log, set *ConstraintSet, cfg Config) (*Result, error) {
	return core.RunContext(ctx, log, set, cfg)
}

// Session binds GECCO's constraint-independent analysis state to one log:
// the interned index, the directly-follows graph, class-level attribute
// extraction, and the distance memo of Eq. 1 — none of which depend on the
// declared constraints. Build a Session once, then Solve repeatedly with
// different constraint sets; every solve after the first skips the indexing
// work and starts with a warm distance memo, which is the dominant cost of
// re-abstracting a known log. Results are byte-identical to Abstract with
// the same inputs, and a Session is safe for concurrent Solve calls.
//
//	sess, _ := gecco.NewSession(log)
//	loose, _ := sess.Solve("distinct(role) <= 1", cfg)
//	tight, _ := sess.Solve("distinct(role) <= 1\n|g| <= 4", cfg)
type Session struct {
	s *core.Session
}

// NewSession indexes the log and freezes the constraint-independent
// artifacts into a self-contained columnar store. The session keeps no
// reference to the log: callers may release (or mutate) it once NewSession
// returns — later mutations are not reflected in the session.
func NewSession(log *Log) (*Session, error) {
	s, err := core.NewSession(log)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Log returns a log equivalent to the one the session was built from (same
// name, trace ids, event order and attribute values, serialising
// byte-identically) — not the original *Log pointer, which the session
// releases at construction. The copy is materialised from the columnar
// index on first use and cached for the session's lifetime.
func (s *Session) Log() *Log { return s.s.Log() }

// Solve runs the pipeline on the session's log under textual constraints.
func (s *Session) Solve(constraintText string, cfg Config) (*Result, error) {
	//lint:gecco-allow(ctxflow): convenience wrapper; SolveContext is the cancellable variant
	return s.SolveContext(context.Background(), constraintText, cfg)
}

// SolveContext is Solve under a context, with the same cancellation and
// deadline-composition semantics as AbstractContext.
func (s *Session) SolveContext(ctx context.Context, constraintText string, cfg Config) (*Result, error) {
	set, err := ParseConstraints(constraintText)
	if err != nil {
		return nil, fmt.Errorf("gecco: %w", err)
	}
	return s.s.Solve(ctx, set, cfg)
}

// SolveSet runs the pipeline with an already-built constraint set.
func (s *Session) SolveSet(set *ConstraintSet, cfg Config) (*Result, error) {
	//lint:gecco-allow(ctxflow): convenience wrapper; SolveSetContext is the cancellable variant
	return s.s.Solve(context.Background(), set, cfg)
}

// SolveSetContext is SolveSet under a context.
func (s *Session) SolveSetContext(ctx context.Context, set *ConstraintSet, cfg Config) (*Result, error) {
	return s.s.Solve(ctx, set, cfg)
}

// ReadXES parses an event log in IEEE XES format.
func ReadXES(r io.Reader) (*Log, error) { return xes.Read(r) }

// WriteXES serialises an event log in IEEE XES format.
func WriteXES(w io.Writer, log *Log) error { return xes.Write(w, log) }

// ReadXESFile reads an XES file.
func ReadXESFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xes.Read(f)
}

// WriteXESFile writes an XES file.
func WriteXESFile(path string, log *Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := xes.Write(f, log); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CSVOptions configures CSV import; zero value expects columns "case",
// "activity" and optionally "time".
type CSVOptions = csvlog.Options

// ReadCSV parses an event log from CSV (one event per row).
func ReadCSV(r io.Reader, opts CSVOptions) (*Log, error) { return csvlog.Read(r, opts) }

// WriteCSV serialises an event log as CSV.
func WriteCSV(w io.Writer, log *Log) error { return csvlog.Write(w, log) }

// DFGDot renders the log's directly-follows graph in Graphviz DOT format.
// fraction < 1 keeps only the most frequent edges covering that share of
// total edge frequency (e.g. 0.8 for the paper's "80/20" views); pass 1 for
// the full graph.
func DFGDot(log *Log, fraction float64) string {
	g := dfg.Build(eventlog.NewIndex(log))
	if fraction < 1 {
		g = g.FilterTopEdges(fraction)
	}
	return g.DOT(log.Name)
}

// Stats summarises a log (classes, traces, variants, DFG edges, average
// trace length) in the shape of the paper's Table III.
func Stats(log *Log) eventlog.Stats { return log.ComputeStats() }

// InstancePolicies control how group instances are segmented (§IV-A).
const (
	PolicySplitOnRepeat = instances.SplitOnRepeat
	PolicyWholeTrace    = instances.WholeTrace
)

// Log preprocessing helpers (see internal/logfilter for the full set).
// These wrappers keep the package-level *Log convenience API; the
// underlying operations run on the columnar index and cannot fail on an
// uncancelled context, so errors reduce to panics on impossible states.

// FilterTopVariants keeps the traces of the most frequent variants covering
// the given fraction of the log (e.g. 0.8).
func FilterTopVariants(log *Log, fraction float64) *Log {
	//lint:gecco-allow(ctxflow): convenience wrapper; use internal/logfilter for cancellation
	x, err := logfilter.TopVariants(context.Background(), eventlog.NewIndex(log), fraction)
	return mustLog(x, err)
}

// FilterSample keeps each trace with probability p, deterministically.
func FilterSample(log *Log, p float64, seed int64) *Log {
	//lint:gecco-allow(ctxflow): convenience wrapper; use internal/logfilter for cancellation
	x, err := logfilter.Sample(context.Background(), eventlog.NewIndex(log), p, seed)
	return mustLog(x, err)
}

// FilterProjectClasses keeps only events of the given classes.
func FilterProjectClasses(log *Log, classes []string) *Log {
	//lint:gecco-allow(ctxflow): convenience wrapper; use internal/logfilter for cancellation
	x, err := logfilter.ProjectClasses(context.Background(), eventlog.NewIndex(log), classes)
	return mustLog(x, err)
}

// SuggestConstraints profiles the log and returns ranked constraint
// proposals (§VIII future work; see internal/suggest).
func SuggestConstraints(log *Log) []suggest.Suggestion {
	//lint:gecco-allow(ctxflow): convenience wrapper; use internal/suggest for cancellation
	sugs, err := suggest.Suggest(context.Background(), eventlog.NewIndex(log))
	if err != nil {
		panic("gecco: " + err.Error()) // unreachable: Background is never cancelled
	}
	return sugs
}

func mustLog(x *eventlog.Index, err error) *Log {
	if err != nil {
		panic("gecco: " + err.Error()) // unreachable: Background is never cancelled
	}
	return x.ReconstructLog()
}

package gecco_test

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"gecco"
	"gecco/internal/procgen"
)

// determinismCases pair the example logs with constraint sets covering
// class-based, instance-based and grouping constraints.
var determinismCases = []struct {
	name        string
	log         func() *gecco.Log
	constraints string
}{
	{"running-example-roles", procgen.RunningExampleTable1, "distinct(role) <= 1"},
	{"running-example-large", func() *gecco.Log { return procgen.RunningExample(150, 7) },
		"distinct(role) <= 1\nsum(duration) >= 0\n|g| <= 6"},
	{"loan-org", func() *gecco.Log { return procgen.LoanLog(150, 17) },
		"distinct(class.org) <= 1\n|g| <= 8"},
}

// TestWorkersByteIdenticalResults asserts the parallelisation contract of
// Config.Workers: for every pipeline mode, a run with N workers produces
// byte-identical groups, activity names, distance, and abstracted log to
// the sequential run.
func TestWorkersByteIdenticalResults(t *testing.T) {
	modes := []struct {
		name string
		mode gecco.Config
	}{
		{"exh", gecco.Config{Mode: gecco.ModeExhaustive}},
		{"dfg", gecco.Config{Mode: gecco.ModeDFGUnbounded}},
		{"beam", gecco.Config{Mode: gecco.ModeDFGBeam}},
	}
	for _, tc := range determinismCases {
		log := tc.log()
		for _, m := range modes {
			t.Run(tc.name+"/"+m.name, func(t *testing.T) {
				cfg := m.mode
				cfg.Workers = 1
				seq, err := gecco.Abstract(log, tc.constraints, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !seq.Feasible {
					t.Fatalf("sequential run infeasible: %s", seq.Diagnostics)
				}
				var seqXES bytes.Buffer
				if err := gecco.WriteXES(&seqXES, seq.Abstracted); err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{2, runtime.NumCPU()} {
					cfg.Workers = w
					par, err := gecco.Abstract(log, tc.constraints, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !par.Feasible {
						t.Fatalf("workers=%d infeasible", w)
					}
					if !reflect.DeepEqual(par.GroupClasses, seq.GroupClasses) {
						t.Fatalf("workers=%d: groups %v, want %v", w, par.GroupClasses, seq.GroupClasses)
					}
					if !reflect.DeepEqual(par.Grouping.Names, seq.Grouping.Names) {
						t.Fatalf("workers=%d: names %v, want %v", w, par.Grouping.Names, seq.Grouping.Names)
					}
					if par.Distance != seq.Distance {
						t.Fatalf("workers=%d: distance %v, want %v", w, par.Distance, seq.Distance)
					}
					if par.NumCandidates != seq.NumCandidates || par.ConstraintChecks != seq.ConstraintChecks {
						t.Fatalf("workers=%d: candidates/checks %d/%d, want %d/%d",
							w, par.NumCandidates, par.ConstraintChecks, seq.NumCandidates, seq.ConstraintChecks)
					}
					var parXES bytes.Buffer
					if err := gecco.WriteXES(&parXES, par.Abstracted); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(parXES.Bytes(), seqXES.Bytes()) {
						t.Fatalf("workers=%d: abstracted XES differs from sequential run", w)
					}
				}
			})
		}
	}
}

// TestSessionByteIdenticalResults asserts the session-engine contract: for
// every pipeline mode, Session.Solve — on a session deliberately warmed by
// solving *other* constraint sets first, so the shared distance and
// attribute memos are populated — produces byte-identical groups, names,
// distance, accounting, and abstracted XES to the one-shot Abstract path.
func TestSessionByteIdenticalResults(t *testing.T) {
	// Warm-up sets chosen to overlap the cases' groups without equalling
	// any case's constraints.
	warmups := []string{"|g| <= 3", "|g| <= 5"}
	modes := []struct {
		name string
		mode gecco.Config
	}{
		{"exh", gecco.Config{Mode: gecco.ModeExhaustive}},
		{"dfg", gecco.Config{Mode: gecco.ModeDFGUnbounded}},
		{"beam", gecco.Config{Mode: gecco.ModeDFGBeam}},
	}
	for _, tc := range determinismCases {
		log := tc.log()
		sess, err := gecco.NewSession(log)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			t.Run(tc.name+"/"+m.name, func(t *testing.T) {
				oneShot, err := gecco.Abstract(log, tc.constraints, m.mode)
				if err != nil {
					t.Fatal(err)
				}
				if !oneShot.Feasible {
					t.Fatalf("one-shot run infeasible: %s", oneShot.Diagnostics)
				}
				var oneShotXES bytes.Buffer
				if err := gecco.WriteXES(&oneShotXES, oneShot.Abstracted); err != nil {
					t.Fatal(err)
				}
				// Warm-ups run in DFG mode regardless of the case's mode:
				// what they exist for is populating the session's shared
				// distance and attribute memos, and doing that through
				// exhaustive enumeration on loosely-constrained sets would
				// dominate the test's runtime for no extra coverage.
				for _, w := range warmups {
					if _, err := sess.Solve(w, gecco.Config{Mode: gecco.ModeDFGUnbounded}); err != nil {
						t.Fatalf("warm-up solve: %v", err)
					}
				}
				warm, err := sess.Solve(tc.constraints, m.mode)
				if err != nil {
					t.Fatal(err)
				}
				if !warm.Feasible {
					t.Fatal("session solve infeasible")
				}
				if !reflect.DeepEqual(warm.GroupClasses, oneShot.GroupClasses) {
					t.Fatalf("session groups %v, want %v", warm.GroupClasses, oneShot.GroupClasses)
				}
				if !reflect.DeepEqual(warm.Grouping.Names, oneShot.Grouping.Names) {
					t.Fatalf("session names %v, want %v", warm.Grouping.Names, oneShot.Grouping.Names)
				}
				if warm.Distance != oneShot.Distance {
					t.Fatalf("session distance %v, want %v", warm.Distance, oneShot.Distance)
				}
				if warm.NumCandidates != oneShot.NumCandidates || warm.ConstraintChecks != oneShot.ConstraintChecks {
					t.Fatalf("session candidates/checks %d/%d, want %d/%d",
						warm.NumCandidates, warm.ConstraintChecks, oneShot.NumCandidates, oneShot.ConstraintChecks)
				}
				var warmXES bytes.Buffer
				if err := gecco.WriteXES(&warmXES, warm.Abstracted); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(warmXES.Bytes(), oneShotXES.Bytes()) {
					t.Fatal("session abstracted XES differs from one-shot Abstract")
				}
			})
		}
	}
}

// TestWorkersDefaultIsParallel pins the Config contract: Workers <= 0 means
// one worker per CPU, and the zero-value Config must still be feasible on
// the running example (i.e. parallel-by-default does not change behaviour).
func TestWorkersDefaultIsParallel(t *testing.T) {
	res, err := gecco.Abstract(procgen.RunningExampleTable1(), "distinct(role) <= 1", gecco.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("zero-value config infeasible: %s", res.Diagnostics)
	}
}

module gecco

go 1.22

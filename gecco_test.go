package gecco_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gecco"
	"gecco/internal/procgen"
)

// End-to-end through the public API: the paper's headline example.
func TestPublicAPIPipeline(t *testing.T) {
	log := procgen.RunningExampleTable1()
	res, err := gecco.Abstract(log, "distinct(role) <= 1",
		gecco.Config{Mode: gecco.ModeDFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	if math.Abs(res.Distance-3.0833333) > 1e-5 {
		t.Fatalf("distance %f, want 3.0833", res.Distance)
	}
	if len(res.Grouping.Names) != 4 {
		t.Fatalf("got %d activities, want 4", len(res.Grouping.Names))
	}
}

// The session API end to end: repeated solves on one log, including the
// set/context variants and the parse-error path.
func TestPublicAPISession(t *testing.T) {
	log := procgen.RunningExampleTable1()
	sess, err := gecco.NewSession(log)
	if err != nil {
		t.Fatal(err)
	}
	// The session releases the parsed log at construction; Log() materialises
	// an equivalent one that must serialise byte-identically.
	var orig, materialised bytes.Buffer
	if err := gecco.WriteXES(&orig, log); err != nil {
		t.Fatal(err)
	}
	if err := gecco.WriteXES(&materialised, sess.Log()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), materialised.Bytes()) {
		t.Fatal("Log() must serialise identically to the log the session was built from")
	}
	cfg := gecco.Config{Mode: gecco.ModeDFGUnbounded}
	first, err := sess.Solve("distinct(role) <= 1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Feasible || math.Abs(first.Distance-3.0833333) > 1e-5 {
		t.Fatalf("first solve: feasible=%v distance=%f", first.Feasible, first.Distance)
	}
	set, err := gecco.ParseConstraints("distinct(role) <= 1\n|g| <= 2")
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.SolveSet(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := gecco.AbstractSet(log, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Distance != ref.Distance || len(second.Grouping.Names) != len(ref.Grouping.Names) {
		t.Fatalf("session solve diverged from AbstractSet: %f vs %f", second.Distance, ref.Distance)
	}
	if _, err := sess.Solve("not a constraint", cfg); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := gecco.NewSession(&gecco.Log{}); err == nil {
		t.Fatal("expected empty-log error")
	}
}

func TestPublicAPIParseError(t *testing.T) {
	log := procgen.RunningExampleTable1()
	if _, err := gecco.Abstract(log, "not a constraint", gecco.Config{}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPublicAPIXESRoundTrip(t *testing.T) {
	log := procgen.RunningExampleTable1()
	var buf bytes.Buffer
	if err := gecco.WriteXES(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := gecco.ReadXES(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gecco.Stats(back).NumClasses != 8 {
		t.Fatal("round trip lost classes")
	}
}

func TestPublicAPICSV(t *testing.T) {
	csv := "case,activity\n1,a\n1,b\n2,a\n"
	log, err := gecco.ReadCSV(strings.NewReader(csv), gecco.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Traces) != 2 {
		t.Fatalf("traces = %d", len(log.Traces))
	}
	var buf bytes.Buffer
	if err := gecco.WriteCSV(&buf, log); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "case,activity") {
		t.Fatal("CSV header missing")
	}
}

func TestPublicAPIDFGDot(t *testing.T) {
	log := procgen.RunningExampleTable1()
	full := gecco.DFGDot(log, 1)
	if !strings.Contains(full, "digraph") {
		t.Fatal("not DOT output")
	}
	filtered := gecco.DFGDot(procgen.RunningExample(300, 3), 0.5)
	if strings.Count(filtered, "->") >= strings.Count(gecco.DFGDot(procgen.RunningExample(300, 3), 1), "->") {
		t.Fatal("filtering did not reduce edges")
	}
}

func TestPublicAPIStats(t *testing.T) {
	st := gecco.Stats(procgen.RunningExampleTable1())
	if st.NumClasses != 8 || st.NumTraces != 4 || st.NumVariants != 4 {
		t.Fatalf("stats %+v", st)
	}
}

// The start+complete strategy surfaces through the public API.
func TestPublicAPIStrategies(t *testing.T) {
	log := procgen.RunningExampleTable1()
	res, err := gecco.Abstract(log, "distinct(role) <= 1",
		gecco.Config{Mode: gecco.ModeDFGUnbounded, Strategy: gecco.StrategyStartComplete, NamePrefix: "clrk"})
	if err != nil || !res.Feasible {
		t.Fatal("pipeline failed")
	}
	found := false
	for _, tr := range res.Abstracted.Traces {
		if strings.Contains(tr.Variant(), "+start") {
			found = true
		}
	}
	if !found {
		t.Fatal("start markers missing from start+complete abstraction")
	}
}

func TestXESFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/log.xes"
	orig := procgen.RunningExampleTable1()
	if err := gecco.WriteXESFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := gecco.ReadXESFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != 4 {
		t.Fatalf("traces = %d", len(back.Traces))
	}
	if _, err := gecco.ReadXESFile(dir + "/missing.xes"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestParseConstraintsHelper(t *testing.T) {
	set, err := gecco.ParseConstraints("|g| <= 8\n# comment\ndistinct(role) <= 1")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("set has %d constraints", set.Len())
	}
	if _, err := gecco.ParseConstraints("garbage"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestFilterHelpers(t *testing.T) {
	log := procgen.RunningExample(200, 5)
	top := gecco.FilterTopVariants(log, 0.5)
	if len(top.Traces) == 0 || len(top.Traces) >= len(log.Traces) {
		t.Fatalf("top-variant filter kept %d of %d", len(top.Traces), len(log.Traces))
	}
	sample := gecco.FilterSample(log, 0.3, 7)
	if len(sample.Traces) == 0 || len(sample.Traces) >= len(log.Traces) {
		t.Fatalf("sample kept %d of %d", len(sample.Traces), len(log.Traces))
	}
	proj := gecco.FilterProjectClasses(log, []string{"rcp", "acc"})
	if got := gecco.Stats(proj).NumClasses; got != 2 {
		t.Fatalf("projection has %d classes, want 2", got)
	}
}

func TestSuggestHelper(t *testing.T) {
	sugs := gecco.SuggestConstraints(procgen.RunningExampleTable1())
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	// Suggested constraints are usable end to end.
	res, err := gecco.Abstract(procgen.RunningExampleTable1(), sugs[0].Constraint.String(),
		gecco.Config{Mode: gecco.ModeDFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

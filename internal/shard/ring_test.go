package shard

import (
	"fmt"
	"reflect"
	"testing"
)

var pinMembers = []string{"shard-0", "shard-1", "shard-2", "shard-3"}

// TestDeterministicPlacementPinned pins the exact owner of a fixed key set
// on a fixed four-member ring. These values are a wire-compatibility
// contract: two routers with the same member list must agree on every key,
// including routers running different builds during a rolling upgrade. If
// this test fails, the hash or point layout changed — every deployed
// cluster would re-shuffle its whole keyspace — so the change must be
// deliberate and called out, not incidental.
func TestDeterministicPlacementPinned(t *testing.T) {
	r := New(pinMembers, 0)
	want := map[string]string{
		"alpha":           "shard-2",
		"bravo":           "shard-2",
		"charlie":         "shard-2",
		"delta":           "shard-0",
		"echo":            "shard-0",
		"foxtrot":         "shard-2",
		"golf":            "shard-0",
		"hotel":           "shard-3",
		"stream:orders":   "shard-1",
		"stream:payments": "shard-0",
	}
	for key, owner := range want {
		if got := r.Owner(key); got != owner {
			t.Errorf("Owner(%q) = %q, want pinned %q", key, got, owner)
		}
	}
	wantSeq := map[string][]string{
		"alpha":         {"shard-2", "shard-1", "shard-3", "shard-0"},
		"stream:orders": {"shard-1", "shard-2", "shard-0", "shard-3"},
	}
	for key, seq := range wantSeq {
		if got := r.Sequence(key); !reflect.DeepEqual(got, seq) {
			t.Errorf("Sequence(%q) = %v, want pinned %v", key, got, seq)
		}
	}
}

// TestMemberOrderIrrelevant verifies that listing peers in a different
// order yields identical placement — routers must agree without
// coordinating on list order.
func TestMemberOrderIrrelevant(t *testing.T) {
	a := New([]string{"s0", "s1", "s2"}, 64)
	b := New([]string{"s2", "s0", "s1"}, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs by member list order (%q vs %q)", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestBalance checks virtual nodes spread load within sane bounds: no
// member of a four-way ring should own less than half or more than double
// its fair share over a large uniform key set.
func TestBalance(t *testing.T) {
	r := New(pinMembers, 0)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := n / len(pinMembers)
	for _, m := range pinMembers {
		if counts[m] < fair/2 || counts[m] > fair*2 {
			t.Errorf("member %s owns %d of %d keys (fair share %d): imbalance beyond 2x", m, counts[m], n, fair)
		}
	}
}

// TestRemovalMovesOnlyDepartedRange is consistent hashing's defining
// property: dropping one member reassigns only the keys that member owned —
// every other key keeps its owner, so surviving shards keep their sessions
// and warm tiers intact through a departure.
func TestRemovalMovesOnlyDepartedRange(t *testing.T) {
	full := New(pinMembers, 0)
	const departed = "shard-1"
	healed := full.Without(departed)
	if healed.Len() != len(pinMembers)-1 {
		t.Fatalf("healed ring has %d members, want %d", healed.Len(), len(pinMembers)-1)
	}
	moved := 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), healed.Owner(key)
		if before != departed {
			if before != after {
				t.Fatalf("key %q moved %q -> %q although its owner did not depart", key, before, after)
			}
			continue
		}
		moved++
		// The departed range lands on each key's ring successor: the first
		// live member of the original preference order.
		seq := full.Sequence(key)
		if len(seq) < 2 || after != seq[1] {
			t.Fatalf("key %q healed to %q, want ring successor %q", key, after, seq[1])
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the departed member; test is vacuous")
	}
}

// TestDegenerateRings covers the edge shapes the router can hand us.
func TestDegenerateRings(t *testing.T) {
	if got := New(nil, 0).Owner("x"); got != "" {
		t.Errorf("empty ring Owner = %q, want \"\"", got)
	}
	if got := New(nil, 0).Sequence("x"); got != nil {
		t.Errorf("empty ring Sequence = %v, want nil", got)
	}
	single := New([]string{"only"}, 4)
	if got := single.Owner("anything"); got != "only" {
		t.Errorf("single-member ring Owner = %q, want \"only\"", got)
	}
	dup := New([]string{"a", "a", "", "b"}, 8)
	if dup.Len() != 2 {
		t.Errorf("duplicate/empty members not collapsed: Len = %d, want 2", dup.Len())
	}
}

// Package shard implements the consistent-hash ring that assigns GECCO's
// per-log artifacts to gecco-serve replicas. Every serving-layer artifact —
// frozen index, live session, stream window, pipeline stage state — is keyed
// by a log digest (or a stream name), so placing the *digest* places the
// whole artifact family: a request routed by ring ownership always finds the
// shard that holds (or will build) its session, preserving the single-flight
// and memo-sharing wins of the session engine while capacity scales with the
// member count.
//
// Placement is deterministic: member IDs and the virtual-node count fully
// determine the ring, so two routers configured with the same member list
// agree on every key without coordination, across processes and restarts.
// The exact placement is pinned by test — changing the hash or the point
// layout is a breaking change for rolling upgrades and must be deliberate.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual-node count used when a Ring
// is built with vnodes <= 0. 128 points per member keeps the expected
// per-member load within a few percent of uniform for small clusters.
const DefaultVirtualNodes = 128

// point is one virtual node: a position on the 64-bit ring owned by a
// member.
type point struct {
	hash   uint64
	member int32 // index into members
}

// Ring is an immutable consistent-hash ring over member IDs. Build with
// New; derive smaller rings with Without. All methods are safe for
// concurrent use (the ring is never mutated after construction).
type Ring struct {
	members []string
	points  []point // sorted by hash
}

// hash64 maps a string to a ring position. SHA-256 truncated to 64 bits:
// deterministic across platforms and Go versions (unlike maphash), uniform
// enough that virtual nodes spread evenly, and already the digest family the
// serving layer uses for log identity.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// New builds a ring over the given member IDs with vnodes virtual nodes per
// member (<= 0 means DefaultVirtualNodes). Member IDs must be non-empty and
// unique; duplicates are collapsed. Order of the input does not affect
// placement — only the ID strings do — so routers may list peers in any
// order and still agree.
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	// Canonical member order: placement must not depend on how the operator
	// listed the peers, so points reference members through a sorted table.
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			// The separator byte cannot occur in a printable member ID, so
			// distinct (member, vnode) pairs cannot collide on input bytes.
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s\x00%d", m, v)), member: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Members returns the ring's member IDs in canonical (sorted) order. The
// slice is shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning the key: the first virtual node at or
// clockwise after the key's position. An empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.members) == 0 {
		return ""
	}
	return r.members[r.points[r.search(key)].member]
}

// search returns the index of the first point at or after the key's hash,
// wrapping to 0 past the last point.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Sequence returns all members in the key's preference order: the owner
// first, then each distinct member encountered walking the ring clockwise.
// This is the heal order — when the owner is unreachable, the next member in
// the sequence inherits the key, which is exactly the member that would own
// it if the ring were rebuilt without the failed one. The returned slice is
// freshly allocated.
func (r *Ring) Sequence(key string) []string {
	if len(r.members) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[int32]bool, len(r.members))
	for i, start := 0, r.search(key); len(out) < len(r.members) && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Without returns a ring over the members minus the given one — the healed
// ring after a departure. Keys owned by other members keep their owner
// (consistent hashing's point); the departed member's range is absorbed by
// each key's successor.
func (r *Ring) Without(member string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	// Reconstruct rather than filter points: vnodes per member is implied by
	// the point count and stays identical, so surviving placements match.
	vnodes := 0
	if len(r.members) > 0 {
		vnodes = len(r.points) / len(r.members)
	}
	return New(kept, vnodes)
}

package candidates

import (
	"context"
	"runtime"
	"testing"
	"time"

	"gecco/internal/constraints"
	"gecco/internal/dfg"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/par"
	"gecco/internal/procgen"
)

// TestBudgetDeadlineTestedOnFirstCheck guards the fix for the sampling bug:
// the old budget consulted the wall clock only when used&63 == 0, so the
// first 63 checks — each potentially a slow constraint evaluation — could
// overshoot TimeLimit arbitrarily. The deadline must now fail the very
// first tick after start() when it has already passed, and the refused item
// must not be counted as evaluated.
func TestBudgetDeadlineTestedOnFirstCheck(t *testing.T) {
	bs := &budgetState{Budget: Budget{TimeLimit: time.Nanosecond}}
	bs.start(context.Background())
	time.Sleep(time.Millisecond)
	if got := bs.grant(1); got != 1 {
		t.Fatalf("grant(1) = %d, want 1 (no MaxChecks limit)", got)
	}
	if bs.tick() {
		t.Fatal("first tick after an expired deadline succeeded")
	}
	if !bs.exceeded() {
		t.Fatal("budget not marked exceeded")
	}
	if bs.checks() != 0 {
		t.Fatalf("checks = %d, want 0 (refused item must not count)", bs.checks())
	}
}

func TestBudgetNoDeadlineUnlimited(t *testing.T) {
	bs := &budgetState{}
	bs.start(context.Background())
	if got := bs.grant(1000); got != 1000 {
		t.Fatalf("grant(1000) = %d, want 1000", got)
	}
	for i := 0; i < 1000; i++ {
		if !bs.tick() {
			t.Fatal("unlimited budget refused work")
		}
	}
	if bs.checks() != 1000 {
		t.Fatalf("checks = %d, want 1000", bs.checks())
	}
}

// TestBudgetGrantDeterministicCut checks that batch reservation cuts at the
// exact MaxChecks boundary, which is what makes budgeted parallel runs
// reproduce budgeted sequential runs — and that a short grant still lets
// the granted items run (only further grants are refused).
func TestBudgetGrantDeterministicCut(t *testing.T) {
	bs := &budgetState{Budget: Budget{MaxChecks: 10}}
	bs.start(context.Background())
	if got := bs.grant(7); got != 7 {
		t.Fatalf("grant(7) = %d, want 7", got)
	}
	if got := bs.grant(7); got != 3 {
		t.Fatalf("grant(7) = %d, want remaining 3", got)
	}
	if !bs.maxedOut.Load() {
		t.Fatal("short grant must mark MaxChecks exhausted")
	}
	if !bs.tick() {
		t.Fatal("granted items must still be evaluable after MaxChecks exhaustion")
	}
	if got := bs.grant(1); got != 0 {
		t.Fatalf("grant after exhaustion = %d, want 0", got)
	}
}

// TestBudgetConcurrentTicks hammers the budget from many goroutines; run
// under -race this exercises the atomic counters.
func TestBudgetConcurrentTicks(t *testing.T) {
	bs := &budgetState{Budget: Budget{MaxChecks: 500}}
	bs.start(context.Background())
	granted := 0
	for i := 0; i < 10; i++ {
		granted += bs.grant(100)
	}
	if granted != 500 {
		t.Fatalf("granted = %d, want 500", granted)
	}
	par.For(8, 1000, func(int) { bs.tick() })
	if bs.reserved.Load() != 500 {
		t.Fatalf("reserved = %d, want 500 (ticks must not consume checks)", bs.reserved.Load())
	}
	if bs.checks() != 1000 {
		t.Fatalf("checks = %d, want 1000", bs.checks())
	}
}

func exhaustiveFixture(t testing.TB) (*eventlog.Index, *constraints.Set) {
	t.Helper()
	log := procgen.RunningExample(120, 7)
	x := eventlog.NewIndex(log)
	set := constraints.NewSet(
		constraints.MustParse("|g| <= 6"),
		constraints.MustParse("distinct(role) <= 1"),
		constraints.MustParse("sum(duration) >= 0"),
	)
	return x, set
}

// TestExhaustiveParallelDeterminism asserts the tentpole guarantee: any
// worker count yields the exact candidate list (same groups, same order)
// and the same accounting as the sequential run, with and without a
// MaxChecks cut.
func TestExhaustiveParallelDeterminism(t *testing.T) {
	x, set := exhaustiveFixture(t)
	for _, budget := range []Budget{{}, {MaxChecks: 60}} {
		evSeq := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
		seq := Exhaustive(x, evSeq, budget, 1)
		for _, w := range []int{2, 4, runtime.NumCPU()} {
			ev := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
			got := Exhaustive(x, ev, budget, w)
			if got.Checks != seq.Checks || got.TimedOut != seq.TimedOut {
				t.Fatalf("budget %+v workers %d: checks/timeout = %d/%v, want %d/%v",
					budget, w, got.Checks, got.TimedOut, seq.Checks, seq.TimedOut)
			}
			if len(got.Groups) != len(seq.Groups) {
				t.Fatalf("budget %+v workers %d: %d groups, want %d", budget, w, len(got.Groups), len(seq.Groups))
			}
			for i := range got.Groups {
				if !got.Groups[i].Equal(seq.Groups[i]) {
					t.Fatalf("budget %+v workers %d: group %d = %v, want %v",
						budget, w, i, got.Groups[i], seq.Groups[i])
				}
			}
			if ev.Checks() != evSeq.Checks() {
				t.Fatalf("budget %+v workers %d: evaluator checks %d, want %d",
					budget, w, ev.Checks(), evSeq.Checks())
			}
		}
	}
}

// TestDFGBasedParallelDeterminism does the same for Algorithm 2, covering
// both the unbounded and the beam-pruned search.
func TestDFGBasedParallelDeterminism(t *testing.T) {
	x, set := exhaustiveFixture(t)
	g := dfg.Build(x)
	for _, beam := range []int{-1, 3} {
		evSeq := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
		dcSeq := distance.NewCalc(x, instances.SplitOnRepeat)
		seq := DFGBased(x, evSeq, dcSeq, g, beam, Budget{}, 1)
		for _, w := range []int{2, runtime.NumCPU()} {
			ev := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
			dc := distance.NewCalc(x, instances.SplitOnRepeat)
			got := DFGBased(x, ev, dc, g, beam, Budget{}, w)
			if got.Checks != seq.Checks {
				t.Fatalf("beam %d workers %d: checks = %d, want %d", beam, w, got.Checks, seq.Checks)
			}
			if len(got.Groups) != len(seq.Groups) {
				t.Fatalf("beam %d workers %d: %d groups, want %d", beam, w, len(got.Groups), len(seq.Groups))
			}
			for i := range got.Groups {
				if !got.Groups[i].Equal(seq.Groups[i]) {
					t.Fatalf("beam %d workers %d: group %d differs", beam, w, i)
				}
			}
			if dc.Evals() != dcSeq.Evals() {
				t.Fatalf("beam %d workers %d: distance evals %d, want %d", beam, w, dc.Evals(), dcSeq.Evals())
			}
		}
	}
}

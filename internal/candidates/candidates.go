// Package candidates implements Step 1 of GECCO (§V-B): the computation of
// candidate groups of event classes that satisfy the user constraints.
// Three procedures are provided, mirroring the paper: exhaustive lattice
// enumeration (Algorithm 1), DFG-guided beam search (Algorithm 2), and the
// merging of exclusive behavioural alternatives (Algorithm 3). All honour a
// budget: like the paper's 5-hour timeout, on exhaustion the candidates
// found so far are returned and the pipeline continues.
//
// Both enumeration procedures evaluate their frontiers in parallel across a
// worker pool while staying deterministic: the items of a frontier are
// scored concurrently into an index-aligned verdict array and merged
// sequentially in frontier order, so the candidate set — and therefore every
// downstream result — is identical for any worker count. Frontier items all
// have the same group size, so the monotonicity shortcut (which consults the
// candidates of strictly smaller sizes) reads only frozen state during the
// parallel phase.
package candidates

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"gecco/internal/bitset"
	"gecco/internal/constraints"
	"gecco/internal/dfg"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
	"gecco/internal/par"
)

// Budget caps candidate computation. Zero values mean "unlimited".
type Budget struct {
	MaxChecks int           // maximum groups/paths assessed
	TimeLimit time.Duration // wall-clock limit
}

// deadlineSampleInterval is how often (in checks) the wall clock is
// consulted against TimeLimit. The deadline is also tested on the very
// first check after start(), so a budget that is already expired — or a
// single slow constraint evaluation right at the start — cannot run an
// entire sampling window past the limit. Between samples the overshoot is
// bounded by the cost of deadlineSampleInterval constraint checks.
const deadlineSampleInterval = 64

// budgetState tracks budget consumption. It is safe for concurrent use:
// reservations and work counts are atomic, so frontier workers can consume
// the budget concurrently. Consumption is two-phase: grant reserves a whole
// frontier against MaxChecks up front (making the MaxChecks cut
// deterministic for any worker count), then each worker calls tick per item
// it actually evaluates (counting real work and sampling the deadline).
// MaxChecks exhaustion and deadline expiry are tracked separately: a short
// grant must not stop workers from evaluating the items already granted —
// that is what reproduces the sequential semantics of "assess exactly
// MaxChecks groups, then stop".
//
// The state also composes the caller's context with TimeLimit: the earlier
// of the two deadlines cuts the frontier, and cancellation is sampled at
// the same points as the deadline, so a cancelled context stops the
// enumeration mid-frontier within deadlineSampleInterval evaluations.
type budgetState struct {
	Budget
	ctx       context.Context
	deadline  time.Time
	reserved  atomic.Int64 // checks reserved against MaxChecks
	ticks     atomic.Int64 // items actually evaluated (Checks reporting, deadline sampling)
	maxedOut  atomic.Bool  // MaxChecks exhausted
	timedOut  atomic.Bool  // deadline passed
	cancelled atomic.Bool  // ctx cancelled
}

func (b *budgetState) start(ctx context.Context) {
	b.ctx = ctx
	if b.TimeLimit > 0 {
		//lint:gecco-allow(wallclock): opt-in Budget.TimeLimit deadline; solvers are deterministic when no time limit is set
		b.deadline = time.Now().Add(b.TimeLimit)
	}
	// Whichever of Budget.TimeLimit and the context deadline expires first
	// cuts the frontier.
	if cd, ok := ctx.Deadline(); ok && (b.deadline.IsZero() || cd.Before(b.deadline)) {
		b.deadline = cd
	}
	if ctx.Err() != nil {
		b.cancelled.Store(true)
	}
}

// exceeded reports whether any budget dimension is exhausted.
func (b *budgetState) exceeded() bool {
	return b.maxedOut.Load() || b.timedOut.Load() || b.cancelled.Load()
}

// tick records one evaluated item and reports whether the deadline still
// holds and the context is still live; on expiry or cancellation the item
// must not be evaluated. The wall clock and the context are sampled on the
// first tick and every deadlineSampleInterval-th thereafter.
func (b *budgetState) tick() bool {
	if b.timedOut.Load() || b.cancelled.Load() {
		return false
	}
	t := b.ticks.Add(1)
	sample := t == 1 || t%deadlineSampleInterval == 0
	if sample && b.ctx != nil && b.ctx.Err() != nil {
		b.cancelled.Store(true)
		b.ticks.Add(-1) // the cancelled item is not evaluated
		return false
	}
	if b.deadline.IsZero() {
		return true
	}
	//lint:gecco-allow(wallclock): sampled deadline probe behind the same opt-in TimeLimit; sampling keeps the hot loop clock-free
	if sample && time.Now().After(b.deadline) {
		b.timedOut.Store(true)
		b.ticks.Add(-1) // the expired item is not evaluated
		return false
	}
	return true
}

// grant atomically reserves up to n checks against MaxChecks and returns
// how many were granted. A short grant marks MaxChecks exhausted; the
// granted items are still evaluated.
func (b *budgetState) grant(n int) int {
	if n <= 0 || b.exceeded() {
		return 0
	}
	if b.MaxChecks <= 0 {
		b.reserved.Add(int64(n))
		return n
	}
	for {
		cur := b.reserved.Load()
		rem := int64(b.MaxChecks) - cur
		if rem <= 0 {
			b.maxedOut.Store(true)
			return 0
		}
		g := int64(n)
		if g > rem {
			g = rem
		}
		if b.reserved.CompareAndSwap(cur, cur+g) {
			if g < int64(n) {
				b.maxedOut.Store(true)
			}
			return int(g)
		}
	}
}

// checks reports the number of items actually evaluated — unlike the
// reservation count, this stays accurate when a deadline expires after a
// frontier was granted but before all its items ran.
func (b *budgetState) checks() int { return int(b.ticks.Load()) }

// Result is the output of a candidate computation.
type Result struct {
	Groups   []bitset.Set
	TimedOut bool // budget exhausted; Groups holds what was found so far
	Checks   int  // groups/paths assessed
}

// set tracks candidate groups with key-based deduplication. It is only
// mutated from the sequential merge phases; workers read it concurrently
// through contains/hasSatisfyingSubset, which is safe because no writer is
// active during a parallel frontier evaluation.
type set struct {
	keys   map[string]struct{}
	groups []bitset.Set
}

func newSet() *set { return &set{keys: make(map[string]struct{})} }

func (s *set) add(g bitset.Set) bool {
	k := g.Key()
	if _, ok := s.keys[k]; ok {
		return false
	}
	s.keys[k] = struct{}{}
	s.groups = append(s.groups, g)
	return true
}

func (s *set) contains(g bitset.Set) bool {
	_, ok := s.keys[g.Key()]
	return ok
}

// hasSatisfyingSubset reports whether some size-(|g|-1) subset of g is a
// known candidate. In the monotonic mode this implies (by induction over
// the lattice walk) that g satisfies all monotonic constraints.
func (s *set) hasSatisfyingSubset(g bitset.Set, universe int) bool {
	found := false
	g.ForEach(func(c int) bool {
		sub := g.Clone()
		sub.Remove(c)
		if !sub.IsEmpty() && s.contains(sub) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Exhaustive implements Algorithm 1: iterative enumeration of co-occurring
// groups of increasing size with monotonicity-based pruning. The frontier of
// each lattice level is evaluated in parallel across workers (<= 0 means one
// per CPU); results are merged in frontier order, so the output is identical
// for any worker count.
func Exhaustive(x *eventlog.Index, ev *constraints.Evaluator, budget Budget, workers int) Result {
	//lint:gecco-allow(ctxflow): convenience wrapper; ExhaustiveCtx is the cancellable variant
	return ExhaustiveCtx(context.Background(), x, ev, budget, workers)
}

// ExhaustiveCtx is Exhaustive under a context: the enumeration stops
// mid-frontier when ctx is cancelled or its deadline (composed with
// Budget.TimeLimit, whichever is earlier) expires, returning the candidates
// found so far with TimedOut set. With a never-cancelled context the result
// is byte-identical to Exhaustive.
func ExhaustiveCtx(ctx context.Context, x *eventlog.Index, ev *constraints.Evaluator, budget Budget, workers int) Result {
	w := par.Workers(workers)
	mode := ev.Set.CheckingMode()
	n := x.NumClasses()
	bs := &budgetState{Budget: budget}
	bs.start(ctx)

	cands := newSet()
	queued := make(map[string]struct{}) // every group ever placed in toCheck

	var toCheck []bitset.Set
	for c := 0; c < n; c++ {
		g := bitset.New(n)
		g.Add(c)
		toCheck = append(toCheck, g)
		queued[g.Key()] = struct{}{}
	}

	for len(toCheck) > 0 && !bs.exceeded() {
		limit := bs.grant(len(toCheck))
		verdicts := make([]bool, limit)
		par.For(w, limit, func(i int) {
			if !bs.tick() {
				return
			}
			g := toCheck[i]
			if mode == constraints.ModeMono && cands.hasSatisfyingSubset(g, n) {
				verdicts[i] = true
			} else {
				verdicts[i] = ev.Holds(g)
			}
		})
		for i := 0; i < limit; i++ {
			if verdicts[i] {
				cands.add(toCheck[i])
			}
		}
		if bs.exceeded() {
			break
		}
		// Group expansion (lines 9–13). In the anti-monotonic mode only
		// groups whose anti-monotonic constraints hold are expandable:
		// growing a group can never repair such a violation, but a group
		// failing only a non-monotonic constraint (e.g. an incomplete
		// must-link pair) may still have satisfying supergroups.
		expandFrom := toCheck
		if mode == constraints.ModeAnti {
			antiOK := make([]bool, len(toCheck))
			par.For(w, len(toCheck), func(i int) {
				// A fully satisfying group satisfies its anti-monotonic
				// subset a fortiori — reuse the verdict instead of
				// re-evaluating (i is always < limit here when the loop
				// reaches expansion, but guard for granted-short frontiers).
				antiOK[i] = (i < limit && verdicts[i]) || ev.HoldsAnti(toCheck[i])
			})
			expandFrom = expandFrom[:0]
			for i, g := range toCheck {
				if antiOK[i] {
					expandFrom = append(expandFrom, g)
				}
			}
		}
		toCheck = expand(x, expandFrom, n, queued)
	}
	return Result{Groups: cands.groups, TimedOut: bs.exceeded(), Checks: bs.checks()}
}

// expand creates all one-class-larger groups from base groups, keeping only
// unseen groups whose classes co-occur in at least one trace.
func expand(x *eventlog.Index, base []bitset.Set, n int, queued map[string]struct{}) []bitset.Set {
	var out []bitset.Set
	for _, g := range base {
		// Only classes co-occurring with all of g can pass occurs(); use the
		// co-trace set to test cheaply per extension class.
		co := x.CoTraces(g)
		if co.IsEmpty() {
			continue
		}
		for c := 0; c < n; c++ {
			if g.Contains(c) {
				continue
			}
			if !co.Intersects(x.ClassTraces[c]) {
				continue // occurs(g ∪ {c}, L) fails
			}
			ng := g.With(c)
			k := ng.Key()
			if _, seen := queued[k]; seen {
				continue
			}
			queued[k] = struct{}{}
			out = append(out, ng)
		}
	}
	return out
}

// path is a DFG path; its nodes form the candidate group.
type path struct {
	nodes []int
	group bitset.Set
}

// appendPathKey appends the 4-byte little-endian encoding of the node
// sequence to buf and returns it. Keys encode the path *sequence*, not the
// sorted node set: Algorithm 2 deduplicates paths, and two different
// traversal orders of the same classes expand differently, so collapsing
// them would change the search. Callers reuse one buffer across a frontier
// — map probes via string(buf) compile to allocation-free lookups, and only
// a first-seen insert materialises the key.
func appendPathKey(buf []byte, nodes []int) []byte {
	for _, n := range nodes {
		buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return buf
}

// DFGBased implements Algorithm 2: beam search over DFG paths, prioritising
// paths whose node sets have the lowest distance. A beamWidth k <= 0 means
// unlimited (the DFG∞ configuration). Path scoring and constraint
// evaluation of each frontier fan out across workers (<= 0 means one per
// CPU) with a sequential in-order merge, so the search — including the beam
// cut — is deterministic for any worker count.
func DFGBased(x *eventlog.Index, ev *constraints.Evaluator, dc *distance.Calc, g *dfg.Graph, beamWidth int, budget Budget, workers int) Result {
	//lint:gecco-allow(ctxflow): convenience wrapper; DFGBasedCtx is the cancellable variant
	return DFGBasedCtx(context.Background(), x, ev, dc, g, beamWidth, budget, workers)
}

// DFGBasedCtx is DFGBased under a context; see ExhaustiveCtx for the
// cancellation and deadline-composition semantics.
func DFGBasedCtx(ctx context.Context, x *eventlog.Index, ev *constraints.Evaluator, dc *distance.Calc, g *dfg.Graph, beamWidth int, budget Budget, workers int) Result {
	w := par.Workers(workers)
	mode := ev.Set.CheckingMode()
	bs := &budgetState{Budget: budget}
	bs.start(ctx)

	cands := newSet()
	seenPaths := make(map[string]struct{})
	var keyBuf []byte

	var toCheck []path
	for v := 0; v < g.N; v++ {
		p := path{nodes: []int{v}, group: bitset.FromSlice(g.N, []int{v})}
		toCheck = append(toCheck, p)
		keyBuf = appendPathKey(keyBuf[:0], p.nodes)
		seenPaths[string(keyBuf)] = struct{}{}
	}

	firstFrontier := true
	for len(toCheck) > 0 && !bs.exceeded() {
		// Sort by group distance, lowest first (line 5), computing exact
		// distances only as far as the beam cut requires: admissible lower
		// bounds order the tail (see sortPathsByDist). The first frontier
		// (all singletons) is never beam-pruned: a dropped singleton could
		// make the exact cover of Step 2 infeasible even though the class
		// is trivially coverable.
		cut := len(toCheck)
		if beamWidth > 0 && beamWidth < cut && !firstFrontier {
			cut = beamWidth
		}
		sortPathsByDist(toCheck, dc, w, cut)
		limit := cut
		firstFrontier = false
		limit = bs.grant(limit)
		type verdict struct{ holds, anti bool }
		verdicts := make([]verdict, limit)
		par.For(w, limit, func(i int) {
			if !bs.tick() {
				return
			}
			grp := toCheck[i].group
			switch mode {
			case constraints.ModeMono:
				verdicts[i].holds = cands.hasSatisfyingSubset(grp, g.N) || ev.Holds(grp)
			case constraints.ModeAnti:
				verdicts[i].holds = ev.Holds(grp)
				if !verdicts[i].holds {
					verdicts[i].anti = ev.HoldsAnti(grp)
				}
			default: // non-monotonic
				verdicts[i].holds = ev.Holds(grp)
			}
		})
		var toExpand []path
		for i := 0; i < limit; i++ {
			p := toCheck[i]
			switch mode {
			case constraints.ModeMono:
				if verdicts[i].holds {
					cands.add(p.group)
				}
				toExpand = append(toExpand, p) // mono mode always expands
			case constraints.ModeAnti:
				if verdicts[i].holds {
					cands.add(p.group)
					toExpand = append(toExpand, p)
				} else if verdicts[i].anti {
					// Violates only non-monotonic constraints: larger
					// paths may still satisfy them.
					toExpand = append(toExpand, p)
				}
			default:
				if verdicts[i].holds {
					cands.add(p.group)
				}
				toExpand = append(toExpand, p)
			}
		}
		if bs.exceeded() {
			break
		}
		// Path expansion (lines 21–29).
		toCheck = toCheck[:0]
		for _, p := range toExpand {
			last := p.nodes[len(p.nodes)-1]
			for _, succ := range g.Out(last) {
				if p.group.Contains(succ) {
					continue
				}
				nn := append(append([]int(nil), p.nodes...), succ)
				keyBuf = addPath(x, nn, p.group.With(succ), &toCheck, seenPaths, keyBuf)
			}
			first := p.nodes[0]
			for _, pred := range g.In(first) {
				if p.group.Contains(pred) {
					continue
				}
				nn := append([]int{pred}, p.nodes...)
				keyBuf = addPath(x, nn, p.group.With(pred), &toCheck, seenPaths, keyBuf)
			}
		}
	}
	return Result{Groups: cands.groups, TimedOut: bs.exceeded(), Checks: bs.checks()}
}

func addPath(x *eventlog.Index, nodes []int, group bitset.Set, out *[]path, seen map[string]struct{}, keyBuf []byte) []byte {
	keyBuf = appendPathKey(keyBuf[:0], nodes)
	if _, ok := seen[string(keyBuf)]; ok {
		return keyBuf
	}
	seen[string(keyBuf)] = struct{}{}
	if !x.Occurs(group) {
		return keyBuf // line 29: retain only paths whose groups occur in the log
	}
	*out = append(*out, path{nodes: nodes, group: group})
	return keyBuf
}

// sortPathsByDist orders ps so that positions [0, cut) hold the cut paths
// with the smallest group distance — stably, ties keeping insertion order —
// exactly as a full stable sort by exact distance would. Exact Eq. 1
// evaluations run only until admissible lower bounds (distance.Calc.GroupLB)
// prove the remainder cannot enter the beam: paths are evaluated in
// ascending (bound, insertion-index) order, and once the next unevaluated
// path's bound strictly exceeds the cut-th smallest exact distance, every
// unevaluated path has an exact distance strictly above it (bound <= exact),
// so it can neither enter the top cut nor tie into it. Pruned paths land
// after position cut in bound order; callers never read past the beam cut.
// The selection is a deterministic function of bounds and exact values, so
// results are identical for any worker count.
func sortPathsByDist(ps []path, dc *distance.Calc, workers, cut int) {
	n := len(ps)
	type scoredPath struct {
		d float64
		p path
	}
	if cut <= 0 || cut >= n {
		// Full sort: every exact distance is needed.
		tmp := make([]scoredPath, n)
		par.For(workers, n, func(i int) {
			tmp[i] = scoredPath{dc.Group(ps[i].group), ps[i]}
		})
		sort.SliceStable(tmp, func(i, j int) bool { return tmp[i].d < tmp[j].d })
		for i := range tmp {
			ps[i] = tmp[i].p
		}
		return
	}

	lbs := make([]float64, n)
	par.For(workers, n, func(i int) {
		lbs[i] = dc.GroupLB(ps[i].group)
	})
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	// Stable: equal bounds keep insertion order.
	sort.SliceStable(ord, func(a, b int) bool { return lbs[ord[a]] < lbs[ord[b]] })

	ds := make([]float64, n)
	evaluated := 0
	for evaluated < n {
		batch := cut - evaluated
		if batch <= 0 {
			// Grow in beam-sized steps past the initial cut.
			batch = cut
		}
		if evaluated+batch > n {
			batch = n - evaluated
		}
		base := evaluated
		par.For(workers, batch, func(j int) {
			i := ord[base+j]
			ds[i] = dc.Group(ps[i].group)
		})
		evaluated += batch
		if evaluated >= n {
			break
		}
		// kth = the cut-th smallest exact distance among evaluated paths
		// (ties by insertion index, matching the stable sort).
		kth := kthSmallest(ds, ord[:evaluated], cut)
		if lbs[ord[evaluated]] > kth {
			dc.NotePruned(n - evaluated)
			break
		}
	}

	// Evaluated paths, stably sorted by exact distance with ties in
	// insertion order (the full-sort tie rule), form the prefix; among them
	// the first cut are exactly the full-sort beam. Unevaluated paths follow
	// in bound order (never read by the caller).
	evalIdx := append([]int(nil), ord[:evaluated]...)
	sort.Ints(evalIdx)
	sel := make([]scoredPath, 0, evaluated)
	for _, i := range evalIdx {
		sel = append(sel, scoredPath{ds[i], ps[i]})
	}
	sort.SliceStable(sel, func(a, b int) bool { return sel[a].d < sel[b].d })
	rest := make([]path, 0, n-evaluated)
	for _, i := range ord[evaluated:] {
		rest = append(rest, ps[i])
	}
	for i := range sel {
		ps[i] = sel[i].p
	}
	copy(ps[evaluated:], rest)
}

// kthSmallest returns the k-th smallest (1-indexed by k... it returns the
// value at rank k-1) of ds over the given indexes, ties irrelevant because
// only the value is compared against strictly larger bounds.
func kthSmallest(ds []float64, idx []int, k int) float64 {
	vals := make([]float64, len(idx))
	for j, i := range idx {
		vals[j] = ds[i]
	}
	sort.Float64s(vals)
	return vals[k-1]
}

// ExclusiveMerge implements Algorithm 3: extending the candidate set with
// merged groups of exclusive behavioural alternatives — candidates sharing
// identical DFG pre- and post-sets with no edges between them. Only
// class-based constraints need re-checking on merges (instance-based
// constraints cannot be newly violated by merging exclusive groups).
func ExclusiveMerge(x *eventlog.Index, ev *constraints.Evaluator, g *dfg.Graph, current []bitset.Set) []bitset.Set {
	cands := newSet()
	for _, c := range current {
		cands.add(c)
	}
	// Iterated pairing of exclusive alternatives can in principle generate
	// exponentially many unions on xor-heavy logs; cap the additions at
	// |current| (the same order as Step 1's own output), after which the
	// candidate set is already rich enough for Step 2.
	maxAdditions := len(current)
	if maxAdditions < 64 {
		maxAdditions = 64
	}
	additions := 0
	type prePost struct{ pre, post string }
	sig := func(grp bitset.Set) prePost {
		return prePost{g.PreSet(grp).Key(), g.PostSet(grp).Key()}
	}
	// Bucket the original candidates by pre/post signature.
	buckets := make(map[prePost][]bitset.Set)
	for _, c := range current {
		s := sig(c)
		buckets[s] = append(buckets[s], c)
	}
	seenBucket := make(map[prePost]bool)
	for _, c := range current {
		s := sig(c)
		if seenBucket[s] {
			continue
		}
		seenBucket[s] = true
		equiv := append([]bitset.Set(nil), buckets[s]...)
		if len(equiv) < 2 {
			continue
		}
		type pair struct{ i, j int }
		var stack []pair
		pushedPairs := make(map[[2]string]bool)
		push := func(i, j int) {
			ki, kj := equiv[i].Key(), equiv[j].Key()
			if ki > kj {
				ki, kj = kj, ki
			}
			k := [2]string{ki, kj}
			if !pushedPairs[k] {
				pushedPairs[k] = true
				stack = append(stack, pair{i, j})
			}
		}
		for i := 0; i < len(equiv); i++ {
			for j := i + 1; j < len(equiv); j++ {
				push(i, j)
			}
		}
		for len(stack) > 0 {
			pr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			gi, gj := equiv[pr.i], equiv[pr.j]
			if gi.Intersects(gj) {
				continue
			}
			gij := gi.Union(gj)
			if !g.Exclusive(gi, gj) || !ev.HoldsClass(gij) {
				continue
			}
			if additions >= maxAdditions {
				return cands.groups
			}
			if !cands.add(gij) {
				continue // already known
			}
			additions++
			// Try combining the merge with its pre/post context (lines
			// 13–19): only if both constituents already combined with it.
			pre, post := g.PreSet(gi), g.PostSet(gi)
			prePostU := pre.Union(post)
			switch {
			case cands.contains(prePostU.Union(gi)) && cands.contains(prePostU.Union(gj)):
				addIfHolds(cands, ev, prePostU.Union(gij))
			case cands.contains(pre.Union(gi)) && cands.contains(pre.Union(gj)):
				addIfHolds(cands, ev, pre.Union(gij))
			case cands.contains(post.Union(gi)) && cands.contains(post.Union(gj)):
				addIfHolds(cands, ev, post.Union(gij))
			}
			// Iteratively pair the merge with the remaining equivalents.
			equiv = append(equiv, gij)
			self := len(equiv) - 1
			for k := 0; k < self; k++ {
				if k != pr.i && k != pr.j {
					push(self, k)
				}
			}
		}
	}
	return cands.groups
}

func addIfHolds(cands *set, ev *constraints.Evaluator, g bitset.Set) {
	if ev.HoldsClass(g) {
		cands.add(g)
	}
}

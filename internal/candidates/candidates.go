// Package candidates implements Step 1 of GECCO (§V-B): the computation of
// candidate groups of event classes that satisfy the user constraints.
// Three procedures are provided, mirroring the paper: exhaustive lattice
// enumeration (Algorithm 1), DFG-guided beam search (Algorithm 2), and the
// merging of exclusive behavioural alternatives (Algorithm 3). All honour a
// budget: like the paper's 5-hour timeout, on exhaustion the candidates
// found so far are returned and the pipeline continues.
package candidates

import (
	"sort"
	"time"

	"gecco/internal/bitset"
	"gecco/internal/constraints"
	"gecco/internal/dfg"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
)

// Budget caps candidate computation. Zero values mean "unlimited".
type Budget struct {
	MaxChecks int           // maximum groups/paths assessed
	TimeLimit time.Duration // wall-clock limit
}

type budgetState struct {
	Budget
	deadline time.Time
	used     int
	exceeded bool
}

func (b *budgetState) start() {
	if b.TimeLimit > 0 {
		b.deadline = time.Now().Add(b.TimeLimit)
	}
}

// spend consumes one unit and reports whether the budget still allows work.
func (b *budgetState) spend() bool {
	if b.exceeded {
		return false
	}
	b.used++
	if b.MaxChecks > 0 && b.used > b.MaxChecks {
		b.exceeded = true
		return false
	}
	if !b.deadline.IsZero() && b.used&63 == 0 && time.Now().After(b.deadline) {
		b.exceeded = true
		return false
	}
	return true
}

// Result is the output of a candidate computation.
type Result struct {
	Groups   []bitset.Set
	TimedOut bool // budget exhausted; Groups holds what was found so far
	Checks   int  // groups/paths assessed
}

// set tracks candidate groups with key-based deduplication.
type set struct {
	keys   map[string]struct{}
	groups []bitset.Set
}

func newSet() *set { return &set{keys: make(map[string]struct{})} }

func (s *set) add(g bitset.Set) bool {
	k := g.Key()
	if _, ok := s.keys[k]; ok {
		return false
	}
	s.keys[k] = struct{}{}
	s.groups = append(s.groups, g)
	return true
}

func (s *set) contains(g bitset.Set) bool {
	_, ok := s.keys[g.Key()]
	return ok
}

// hasSatisfyingSubset reports whether some size-(|g|-1) subset of g is a
// known candidate. In the monotonic mode this implies (by induction over
// the lattice walk) that g satisfies all monotonic constraints.
func (s *set) hasSatisfyingSubset(g bitset.Set, universe int) bool {
	found := false
	g.ForEach(func(c int) bool {
		sub := g.Clone()
		sub.Remove(c)
		if !sub.IsEmpty() && s.contains(sub) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Exhaustive implements Algorithm 1: iterative enumeration of co-occurring
// groups of increasing size with monotonicity-based pruning.
func Exhaustive(x *eventlog.Index, ev *constraints.Evaluator, budget Budget) Result {
	mode := ev.Set.CheckingMode()
	n := x.NumClasses()
	bs := &budgetState{Budget: budget}
	bs.start()

	cands := newSet()
	queued := make(map[string]struct{}) // every group ever placed in toCheck

	var toCheck []bitset.Set
	for c := 0; c < n; c++ {
		g := bitset.New(n)
		g.Add(c)
		toCheck = append(toCheck, g)
		queued[g.Key()] = struct{}{}
	}

	for len(toCheck) > 0 && !bs.exceeded {
		var newCands []bitset.Set
		for _, g := range toCheck {
			if !bs.spend() {
				break
			}
			ok := false
			if mode == constraints.ModeMono && cands.hasSatisfyingSubset(g, n) {
				ok = true
			} else {
				ok = ev.Holds(g)
			}
			if ok {
				if cands.add(g) {
					newCands = append(newCands, g)
				}
			}
		}
		if bs.exceeded {
			break
		}
		// Group expansion (lines 9–13). In the anti-monotonic mode only
		// groups whose anti-monotonic constraints hold are expandable:
		// growing a group can never repair such a violation, but a group
		// failing only a non-monotonic constraint (e.g. an incomplete
		// must-link pair) may still have satisfying supergroups.
		expandFrom := toCheck
		if mode == constraints.ModeAnti {
			expandFrom = expandFrom[:0]
			for _, g := range toCheck {
				if ev.HoldsAnti(g) {
					expandFrom = append(expandFrom, g)
				}
			}
		}
		toCheck = expand(x, expandFrom, n, queued)
	}
	return Result{Groups: cands.groups, TimedOut: bs.exceeded, Checks: bs.used}
}

// expand creates all one-class-larger groups from base groups, keeping only
// unseen groups whose classes co-occur in at least one trace.
func expand(x *eventlog.Index, base []bitset.Set, n int, queued map[string]struct{}) []bitset.Set {
	var out []bitset.Set
	for _, g := range base {
		// Only classes co-occurring with all of g can pass occurs(); use the
		// co-trace set to test cheaply per extension class.
		co := x.CoTraces(g)
		if co.IsEmpty() {
			continue
		}
		for c := 0; c < n; c++ {
			if g.Contains(c) {
				continue
			}
			if !co.Intersects(x.ClassTraces[c]) {
				continue // occurs(g ∪ {c}, L) fails
			}
			ng := g.With(c)
			k := ng.Key()
			if _, seen := queued[k]; seen {
				continue
			}
			queued[k] = struct{}{}
			out = append(out, ng)
		}
	}
	return out
}

// path is a DFG path; its nodes form the candidate group.
type path struct {
	nodes []int
	group bitset.Set
}

func pathKey(nodes []int) string {
	b := make([]byte, 0, len(nodes)*2)
	for _, n := range nodes {
		b = append(b, byte(n), byte(n>>8))
	}
	return string(b)
}

// DFGBased implements Algorithm 2: beam search over DFG paths, prioritising
// paths whose node sets have the lowest distance. A beamWidth k <= 0 means
// unlimited (the DFG∞ configuration).
func DFGBased(x *eventlog.Index, ev *constraints.Evaluator, dc *distance.Calc, g *dfg.Graph, beamWidth int, budget Budget) Result {
	mode := ev.Set.CheckingMode()
	bs := &budgetState{Budget: budget}
	bs.start()

	cands := newSet()
	seenPaths := make(map[string]struct{})

	var toCheck []path
	for v := 0; v < g.N; v++ {
		p := path{nodes: []int{v}, group: bitset.FromSlice(g.N, []int{v})}
		toCheck = append(toCheck, p)
		seenPaths[pathKey(p.nodes)] = struct{}{}
	}

	firstFrontier := true
	for len(toCheck) > 0 && !bs.exceeded {
		// Sort by group distance, lowest first (line 5).
		sortPathsByDist(toCheck, dc)
		limit := len(toCheck)
		if beamWidth > 0 && beamWidth < limit && !firstFrontier {
			limit = beamWidth
		}
		// The first frontier (all singletons) is never beam-pruned: a
		// dropped singleton could make the exact cover of Step 2
		// infeasible even though the class is trivially coverable.
		firstFrontier = false
		var toExpand []path
		for i := 0; i < limit; i++ {
			if !bs.spend() {
				break
			}
			p := toCheck[i]
			switch mode {
			case constraints.ModeMono:
				if cands.hasSatisfyingSubset(p.group, g.N) || ev.Holds(p.group) {
					cands.add(p.group)
				}
				toExpand = append(toExpand, p) // mono mode always expands
			case constraints.ModeAnti:
				if ev.Holds(p.group) {
					cands.add(p.group)
					toExpand = append(toExpand, p)
				} else if ev.HoldsAnti(p.group) {
					// Violates only non-monotonic constraints: larger
					// paths may still satisfy them.
					toExpand = append(toExpand, p)
				}
			default: // non-monotonic
				if ev.Holds(p.group) {
					cands.add(p.group)
				}
				toExpand = append(toExpand, p)
			}
		}
		if bs.exceeded {
			break
		}
		// Path expansion (lines 21–29).
		toCheck = toCheck[:0]
		for _, p := range toExpand {
			last := p.nodes[len(p.nodes)-1]
			for _, succ := range g.Out(last) {
				if p.group.Contains(succ) {
					continue
				}
				nn := append(append([]int(nil), p.nodes...), succ)
				addPath(x, nn, p.group.With(succ), &toCheck, seenPaths)
			}
			first := p.nodes[0]
			for _, pred := range g.In(first) {
				if p.group.Contains(pred) {
					continue
				}
				nn := append([]int{pred}, p.nodes...)
				addPath(x, nn, p.group.With(pred), &toCheck, seenPaths)
			}
		}
	}
	return Result{Groups: cands.groups, TimedOut: bs.exceeded, Checks: bs.used}
}

func addPath(x *eventlog.Index, nodes []int, group bitset.Set, out *[]path, seen map[string]struct{}) {
	k := pathKey(nodes)
	if _, ok := seen[k]; ok {
		return
	}
	seen[k] = struct{}{}
	if !x.Occurs(group) {
		return // line 29: retain only paths whose groups occur in the log
	}
	*out = append(*out, path{nodes: nodes, group: group})
}

func sortPathsByDist(ps []path, dc *distance.Calc) {
	type scoredPath struct {
		d float64
		p path
	}
	tmp := make([]scoredPath, len(ps))
	for i := range ps {
		tmp[i] = scoredPath{dc.Group(ps[i].group), ps[i]}
	}
	// Stable so that ties keep insertion order, which keeps the beam
	// deterministic across runs.
	sort.SliceStable(tmp, func(i, j int) bool { return tmp[i].d < tmp[j].d })
	for i := range tmp {
		ps[i] = tmp[i].p
	}
}

// ExclusiveMerge implements Algorithm 3: extending the candidate set with
// merged groups of exclusive behavioural alternatives — candidates sharing
// identical DFG pre- and post-sets with no edges between them. Only
// class-based constraints need re-checking on merges (instance-based
// constraints cannot be newly violated by merging exclusive groups).
func ExclusiveMerge(x *eventlog.Index, ev *constraints.Evaluator, g *dfg.Graph, current []bitset.Set) []bitset.Set {
	cands := newSet()
	for _, c := range current {
		cands.add(c)
	}
	// Iterated pairing of exclusive alternatives can in principle generate
	// exponentially many unions on xor-heavy logs; cap the additions at
	// |current| (the same order as Step 1's own output), after which the
	// candidate set is already rich enough for Step 2.
	maxAdditions := len(current)
	if maxAdditions < 64 {
		maxAdditions = 64
	}
	additions := 0
	type prePost struct{ pre, post string }
	sig := func(grp bitset.Set) prePost {
		return prePost{g.PreSet(grp).Key(), g.PostSet(grp).Key()}
	}
	// Bucket the original candidates by pre/post signature.
	buckets := make(map[prePost][]bitset.Set)
	for _, c := range current {
		s := sig(c)
		buckets[s] = append(buckets[s], c)
	}
	seenBucket := make(map[prePost]bool)
	for _, c := range current {
		s := sig(c)
		if seenBucket[s] {
			continue
		}
		seenBucket[s] = true
		equiv := append([]bitset.Set(nil), buckets[s]...)
		if len(equiv) < 2 {
			continue
		}
		type pair struct{ i, j int }
		var stack []pair
		pushedPairs := make(map[[2]string]bool)
		push := func(i, j int) {
			ki, kj := equiv[i].Key(), equiv[j].Key()
			if ki > kj {
				ki, kj = kj, ki
			}
			k := [2]string{ki, kj}
			if !pushedPairs[k] {
				pushedPairs[k] = true
				stack = append(stack, pair{i, j})
			}
		}
		for i := 0; i < len(equiv); i++ {
			for j := i + 1; j < len(equiv); j++ {
				push(i, j)
			}
		}
		for len(stack) > 0 {
			pr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			gi, gj := equiv[pr.i], equiv[pr.j]
			if gi.Intersects(gj) {
				continue
			}
			gij := gi.Union(gj)
			if !g.Exclusive(gi, gj) || !ev.HoldsClass(gij) {
				continue
			}
			if additions >= maxAdditions {
				return cands.groups
			}
			if !cands.add(gij) {
				continue // already known
			}
			additions++
			// Try combining the merge with its pre/post context (lines
			// 13–19): only if both constituents already combined with it.
			pre, post := g.PreSet(gi), g.PostSet(gi)
			prePostU := pre.Union(post)
			switch {
			case cands.contains(prePostU.Union(gi)) && cands.contains(prePostU.Union(gj)):
				addIfHolds(cands, ev, prePostU.Union(gij))
			case cands.contains(pre.Union(gi)) && cands.contains(pre.Union(gj)):
				addIfHolds(cands, ev, pre.Union(gij))
			case cands.contains(post.Union(gi)) && cands.contains(post.Union(gj)):
				addIfHolds(cands, ev, post.Union(gij))
			}
			// Iteratively pair the merge with the remaining equivalents.
			equiv = append(equiv, gij)
			self := len(equiv) - 1
			for k := 0; k < self; k++ {
				if k != pr.i && k != pr.j {
					push(self, k)
				}
			}
		}
	}
	return cands.groups
}

func addIfHolds(cands *set, ev *constraints.Evaluator, g bitset.Set) {
	if ev.HoldsClass(g) {
		cands.add(g)
	}
}

package candidates

import (
	"context"
	"testing"
	"time"
)

// The context deadline composes with Budget.TimeLimit: whichever is earlier
// cuts the frontier.
func TestBudgetComposesContextDeadline(t *testing.T) {
	// Context deadline far earlier than TimeLimit wins...
	d := time.Now().Add(50 * time.Millisecond)
	ctx, cancel := context.WithDeadline(context.Background(), d)
	defer cancel()
	bs := &budgetState{Budget: Budget{TimeLimit: time.Hour}}
	bs.start(ctx)
	if bs.deadline.After(d) {
		t.Fatalf("effective deadline %v, want the earlier context deadline %v", bs.deadline, d)
	}
	// ...and an earlier TimeLimit wins over a later context deadline.
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel2()
	bs2 := &budgetState{Budget: Budget{TimeLimit: time.Millisecond}}
	bs2.start(ctx2)
	if bs2.deadline.After(time.Now().Add(time.Minute)) {
		t.Fatalf("effective deadline %v, want the earlier TimeLimit cut", bs2.deadline)
	}
}

// An already-expired context refuses all work from the first grant on, so
// an entire frontier is never reserved, let alone evaluated.
func TestBudgetPreExpiredContextRefusesWork(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	bs := &budgetState{Budget: Budget{TimeLimit: time.Hour}}
	bs.start(ctx)
	if !bs.exceeded() {
		t.Fatal("budget not marked exceeded under a pre-expired context")
	}
	if got := bs.grant(10); got != 0 {
		t.Fatalf("grant(10) = %d, want 0", got)
	}
	if bs.checks() != 0 {
		t.Fatalf("checks = %d, want 0", bs.checks())
	}
}

// Cancellation is sampled at the same points as the deadline, so a context
// cancelled between frontiers stops the next sampled tick.
func TestBudgetObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	bs := &budgetState{}
	bs.start(ctx)
	bs.grant(deadlineSampleInterval * 2)
	if !bs.tick() {
		t.Fatal("tick refused work under a live context")
	}
	cancel()
	ok := true
	for i := 0; i < deadlineSampleInterval+1; i++ {
		if !bs.tick() {
			ok = false
			break
		}
	}
	if ok {
		t.Fatal("a full sampling interval of ticks ran after cancellation")
	}
	if !bs.exceeded() {
		t.Fatal("budget not marked exceeded after cancellation")
	}
}

package candidates

import (
	"math/rand"
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

// The LB-gated beam sort must produce the exact same first `cut` paths, in
// the same order, as the full stable sort — the rest of the slice is never
// read by DFGBasedCtx. Ties (duplicate groups included) must keep insertion
// order. The lower bound must actually prune: skipping exact Eq. 1
// evaluations is the whole point.
func TestSortPathsByDistLBGatedMatchesFullSort(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExample(150, 3))
	r := rand.New(rand.NewSource(5))
	var base []path
	for i := 0; i < 40; i++ {
		g := bitset.New(x.NumClasses())
		for cl := 0; cl < x.NumClasses(); cl++ {
			if r.Intn(3) == 0 {
				g.Add(cl)
			}
		}
		if g.IsEmpty() {
			g.Add(r.Intn(x.NumClasses()))
		}
		base = append(base, path{group: g})
	}
	// Force duplicate groups so the tie rule is actually exercised.
	base = append(base, path{group: base[0].group.Clone()}, path{group: base[7].group.Clone()})

	totalPruned := 0
	for _, workers := range []int{1, 4} {
		for _, cut := range []int{1, 3, 8, 17} {
			oracle := append([]path(nil), base...)
			dcO := distance.NewCalc(x, instances.SplitOnRepeat)
			dcO.SetWorkers(workers)
			sortPathsByDist(oracle, dcO, workers, 0) // cut <= 0: full sort

			gated := append([]path(nil), base...)
			dcG := distance.NewCalc(x, instances.SplitOnRepeat)
			dcG.SetWorkers(workers)
			sortPathsByDist(gated, dcG, workers, cut)

			for i := 0; i < cut; i++ {
				if !gated[i].group.Equal(oracle[i].group) {
					t.Fatalf("workers=%d cut=%d: beam position %d differs: gated %v, full sort %v",
						workers, cut, i, gated[i].group, oracle[i].group)
				}
			}
			totalPruned += dcG.LBPruned()
			if dcG.Evals() > dcO.Evals() {
				t.Fatalf("workers=%d cut=%d: gated sort evaluated %d groups, full sort only %d",
					workers, cut, dcG.Evals(), dcO.Evals())
			}
		}
	}
	if totalPruned == 0 {
		t.Fatal("LBPruned stayed zero across every cut — the bound never gated an evaluation")
	}
}

package candidates

import (
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/constraints"
	"gecco/internal/dfg"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

func setup(t *testing.T, srcs ...string) (*eventlog.Index, *constraints.Evaluator, *distance.Calc, *dfg.Graph) {
	t.Helper()
	log := procgen.RunningExampleTable1()
	x := eventlog.NewIndex(log)
	set := &constraints.Set{}
	for _, s := range srcs {
		set.Add(constraints.MustParse(s))
	}
	ev := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
	dc := distance.NewCalc(x, instances.SplitOnRepeat)
	return x, ev, dc, dfg.Build(x)
}

func names(x *eventlog.Index, g bitset.Set) string {
	ns := x.GroupNames(g)
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

func asKeySet(x *eventlog.Index, groups []bitset.Set) map[string]bool {
	out := make(map[string]bool, len(groups))
	for _, g := range groups {
		out[names(x, g)] = true
	}
	return out
}

// Under the role constraint, the exhaustive search must find all
// co-occurring same-role groups, including {rcp,ckc,ckt} is NOT co-occurring
// as ckc and ckt never share a trace... wait, σ4 contains both. It does
// co-occur. The key §II candidates must be present.
func TestExhaustiveRoleConstraint(t *testing.T) {
	x, ev, _, _ := setup(t, "distinct(role) <= 1")
	res := Exhaustive(x, ev, Budget{}, 1)
	if res.TimedOut {
		t.Fatal("unexpected timeout")
	}
	got := asKeySet(x, res.Groups)
	for _, want := range []string{
		"rcp", "ckc", "ckt", "acc", "rej", "prio", "inf", "arv",
		"ckc,rcp", "ckt,rcp", "inf,prio", "arv,prio", "arv,inf",
		"arv,inf,prio", "ckc,ckt,rcp",
	} {
		if !got[want] {
			t.Errorf("missing candidate {%s}", want)
		}
	}
	// Mixed-role groups must be absent. Note {acc,rej} (both manager,
	// co-occurring in σ4) IS a valid exhaustive candidate — only the
	// DFG-based approach excludes it, since no DFG path connects them.
	for _, bad := range []string{"acc,ckc", "inf,rej", "acc,prio"} {
		if got[bad] {
			t.Errorf("constraint-violating candidate {%s} present", bad)
		}
	}
	if !got["acc,rej"] {
		t.Error("{acc,rej} co-occurs in σ4 and satisfies the role constraint")
	}
}

// Co-occurrence pruning: groups of classes that never share a trace are
// not candidates (checked via a log where b and c are exclusive).
func TestExhaustiveOccursFilter(t *testing.T) {
	log := &eventlog.Log{Traces: []eventlog.Trace{
		{ID: "1", Events: []eventlog.Event{{Class: "a"}, {Class: "b"}}},
		{ID: "2", Events: []eventlog.Event{{Class: "a"}, {Class: "c"}}},
	}}
	x := eventlog.NewIndex(log)
	ev := constraints.NewEvaluator(x, &constraints.Set{}, instances.SplitOnRepeat)
	res := Exhaustive(x, ev, Budget{}, 1)
	got := asKeySet(x, res.Groups)
	if got["b,c"] {
		t.Error("non-co-occurring group {b,c} must be pruned")
	}
	if !got["a,b"] || !got["a,c"] {
		t.Error("co-occurring pairs missing")
	}
}

// Anti-monotonic pruning: with |g| <= 2 no group of size 3 may be checked,
// and the candidate set has exactly the occurring groups of size <= 2.
func TestExhaustiveAntiMonotonicPruning(t *testing.T) {
	x, ev, _, _ := setup(t, "|g| <= 2")
	res := Exhaustive(x, ev, Budget{}, 1)
	for _, g := range res.Groups {
		if g.Len() > 2 {
			t.Fatalf("candidate %s exceeds size bound", names(x, g))
		}
	}
	// Budget-free run with only an anti-monotonic constraint explores a
	// bounded frontier: checks should be well under the full 2^8 lattice
	// extended by duplicates.
	if res.Checks > 8+8*7+8*7*6 {
		t.Fatalf("checks = %d, pruning ineffective", res.Checks)
	}
}

// Monotonic mode: supergroups of satisfying groups are admitted without
// re-validation (the paper's pruning rule). The rule is a heuristic: a
// superset can gain *new instances* in traces where the subset was vacuous
// (e.g. {ckc,acc} holds but {ckc,acc,arv} fails via σ2's lone arv), so we
// assert the pruning-rule invariant — every candidate either satisfies the
// constraints or has a satisfying proper-subset candidate — and rely on
// core.Run's verification pass for the end-to-end guarantee.
func TestExhaustiveMonotonic(t *testing.T) {
	x, ev, _, _ := setup(t, "sum(duration) >= 101")
	res := Exhaustive(x, ev, Budget{}, 1)
	keys := make(map[string]bool, len(res.Groups))
	for _, g := range res.Groups {
		keys[g.Key()] = true
	}
	for _, g := range res.Groups {
		if ev.HoldsInstance(g) {
			continue
		}
		ok := false
		g.ForEach(func(c int) bool {
			sub := g.Clone()
			sub.Remove(c)
			if keys[sub.Key()] {
				ok = true
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("candidate %s neither satisfies the constraint nor has a candidate subset", names(x, g))
		}
	}
	got := asKeySet(x, res.Groups)
	// Two 60s events per instance satisfy sum >= 101 (120 >= 101), e.g.
	// {inf, arv}; singletons (60s) never do.
	if !got["arv,inf"] {
		t.Error("{inf,arv} should be a candidate")
	}
	for _, bad := range []string{"rcp", "inf", "arv"} {
		if got[bad] {
			t.Errorf("singleton {%s} cannot satisfy sum >= 101", bad)
		}
	}
}

func TestExhaustiveBudget(t *testing.T) {
	x, ev, _, _ := setup(t)
	res := Exhaustive(x, ev, Budget{MaxChecks: 10}, 1)
	if !res.TimedOut {
		t.Fatal("expected budget exhaustion")
	}
	if res.Checks > 11 {
		t.Fatalf("checks = %d, budget ignored", res.Checks)
	}
}

// DFG-based candidates follow graph paths only: every multi-class candidate
// must induce a weakly connected subgraph of the DFG.
func TestDFGBasedConnected(t *testing.T) {
	x, ev, dc, g := setup(t, "distinct(role) <= 1")
	res := DFGBased(x, ev, dc, g, -1, Budget{}, 1)
	for _, grp := range res.Groups {
		if grp.Len() < 2 {
			continue
		}
		if !weaklyConnected(g, grp) {
			t.Errorf("candidate %s not connected in DFG", names(x, grp))
		}
	}
	got := asKeySet(x, res.Groups)
	for _, want := range []string{"inf,prio", "arv,inf,prio", "ckc,rcp", "ckt,rcp"} {
		if !got[want] {
			t.Errorf("missing path candidate {%s}", want)
		}
	}
	// {rcp, arv} are far apart in the DFG: never on a short path together
	// under the role-only constraint they could appear via long paths, but
	// the group must at least occur; check the §V-B claim that the pair
	// alone (non-adjacent) is not generated as a 2-element path.
	if got["arv,rcp"] {
		t.Error("{rcp,arv} is not DFG-adjacent and must not arise from length-2 paths")
	}
}

func weaklyConnected(g *dfg.Graph, grp bitset.Set) bool {
	elems := grp.Elems()
	if len(elems) <= 1 {
		return true
	}
	visited := map[int]bool{elems[0]: true}
	queue := []int{elems[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range append(append([]int{}, g.Out(v)...), g.In(v)...) {
			if grp.Contains(w) && !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(visited) == len(elems)
}

// Beam pruning yields a subset of the unbounded DFG candidates.
func TestDFGBeamSubset(t *testing.T) {
	x, ev, dc, g := setup(t, "distinct(role) <= 1")
	full := DFGBased(x, ev, dc, g, -1, Budget{}, 1)
	ev2 := constraints.NewEvaluator(x, ev.Set, instances.SplitOnRepeat)
	dc2 := distance.NewCalc(x, instances.SplitOnRepeat)
	beam := DFGBased(x, ev2, dc2, g, 3, Budget{}, 1)
	fullSet := asKeySet(x, full.Groups)
	for _, grp := range beam.Groups {
		if !fullSet[names(x, grp)] {
			t.Errorf("beam candidate %s absent from unbounded run", names(x, grp))
		}
	}
	if len(beam.Groups) > len(full.Groups) {
		t.Error("beam produced more candidates than unbounded search")
	}
}

// Algorithm 3 on the running example must merge the behavioural
// alternatives {ckc, ckt} (and extend with the shared pre-set rcp when the
// parts are candidates), but must NOT merge {acc, rej}, whose postsets
// differ (Figure 6).
func TestExclusiveMergeRunningExample(t *testing.T) {
	x, ev, dc, g := setup(t, "distinct(role) <= 1")
	res := DFGBased(x, ev, dc, g, -1, Budget{}, 1)
	merged := ExclusiveMerge(x, ev, g, res.Groups)
	got := asKeySet(x, merged)
	if !got["ckc,ckt"] {
		t.Error("behavioural alternatives {ckc,ckt} not merged")
	}
	if !got["ckc,ckt,rcp"] {
		t.Error("pre-set extension {rcp,ckc,ckt} not generated")
	}
	if got["acc,rej"] {
		t.Error("{acc,rej} must not merge: their postsets differ")
	}
	// Merging preserves the original candidates.
	orig := asKeySet(x, res.Groups)
	for k := range orig {
		if !got[k] {
			t.Errorf("original candidate {%s} lost in merge", k)
		}
	}
}

// The merged exclusive group must respect class-based constraints.
func TestExclusiveMergeRespectsClassConstraints(t *testing.T) {
	x, ev, dc, g := setup(t, "cannotlink(ckc, ckt)")
	res := DFGBased(x, ev, dc, g, -1, Budget{}, 1)
	merged := ExclusiveMerge(x, ev, g, res.Groups)
	got := asKeySet(x, merged)
	if got["ckc,ckt"] {
		t.Error("cannot-link violated by exclusive merge")
	}
}

func TestDFGBudget(t *testing.T) {
	x, ev, dc, g := setup(t)
	res := DFGBased(x, ev, dc, g, -1, Budget{MaxChecks: 5}, 1)
	if !res.TimedOut {
		t.Fatal("expected budget exhaustion")
	}
	if res.Checks > 6 {
		t.Fatalf("checks = %d", res.Checks)
	}
}

// The first beam frontier is never pruned: even beam width 1 must yield
// every satisfying singleton as a candidate, keeping Step 2 feasible.
func TestBeamKeepsSingletons(t *testing.T) {
	x, ev, dc, g := setup(t)
	res := DFGBased(x, ev, dc, g, 1, Budget{}, 1)
	singles := 0
	for _, grp := range res.Groups {
		if grp.Len() == 1 {
			singles++
		}
	}
	if singles != 8 {
		t.Fatalf("got %d singleton candidates, want all 8", singles)
	}
}

// The exclusive-merge addition cap bounds the output size.
func TestExclusiveMergeBounded(t *testing.T) {
	// A log with many mutually exclusive alternatives sharing pre/post:
	// s, xi, e for i in 0..11 — all xi are behavioural alternatives.
	log := &eventlog.Log{}
	for i := 0; i < 12; i++ {
		log.Traces = append(log.Traces, eventlog.Trace{ID: "t", Events: []eventlog.Event{
			{Class: "s"}, {Class: string(rune('A' + i))}, {Class: "e"},
		}})
	}
	x := eventlog.NewIndex(log)
	ev := constraints.NewEvaluator(x, &constraints.Set{}, instances.SplitOnRepeat)
	g := dfg.Build(x)
	var singles []bitset.Set
	for c := 0; c < x.NumClasses(); c++ {
		s := bitset.New(x.NumClasses())
		s.Add(c)
		singles = append(singles, s)
	}
	merged := ExclusiveMerge(x, ev, g, singles)
	// Unbounded merging would produce 2^12 unions of alternatives; the cap
	// keeps it linear in the input.
	if len(merged) > len(singles)+max(len(singles), 64)+1 {
		t.Fatalf("merge produced %d candidates from %d", len(merged), len(singles))
	}
	// And the pairwise alternatives are still found.
	found := false
	for _, m := range merged {
		if m.Len() == 2 && !m.Contains(x.ClassID["s"]) && !m.Contains(x.ClassID["e"]) {
			found = true
		}
	}
	if !found {
		t.Fatal("no merged alternative pair found")
	}
}

// Package dfg builds and manipulates directly-follows graphs (§III-A of the
// paper): directed graphs over event classes with an edge a→b whenever b
// immediately succeeds a in some trace. Edge frequencies are retained for
// filtering (the "80/20" views of Figures 1 and 8) and for the spectral
// partitioning baseline.
package dfg

import (
	"fmt"
	"sort"
	"strings"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
)

// Graph is a directly-follows graph over the class universe of an Index.
// Vertices are class ids 0..N-1; Freq[a][b] > 0 iff a >L b.
type Graph struct {
	N      int
	Labels []string // class names, index-aligned with vertex ids
	Freq   [][]int  // Freq[a][b] = number of direct successions a→b

	// StartFreq / EndFreq count how often a class starts / ends a trace.
	StartFreq []int
	EndFreq   []int

	out [][]int // adjacency: successors of each vertex, sorted
	in  [][]int // adjacency: predecessors of each vertex, sorted
}

// Build constructs the DFG of the indexed log.
func Build(x *eventlog.Index) *Graph {
	n := x.NumClasses()
	g := &Graph{
		N:         n,
		Labels:    x.Classes,
		Freq:      make([][]int, n),
		StartFreq: make([]int, n),
		EndFreq:   make([]int, n),
	}
	for a := range g.Freq {
		g.Freq[a] = make([]int, n)
	}
	for t := 0; t < x.NumTraces(); t++ {
		seq := x.Seq(t)
		if len(seq) == 0 {
			continue
		}
		g.StartFreq[seq[0]]++
		g.EndFreq[seq[len(seq)-1]]++
		for j := 0; j+1 < len(seq); j++ {
			g.Freq[seq[j]][seq[j+1]]++
		}
	}
	g.rebuildAdj()
	return g
}

// FromFreq builds a graph from an explicit frequency matrix. The slices are
// retained, not copied; callers must not mutate them afterwards.
func FromFreq(labels []string, freq [][]int, startFreq, endFreq []int) *Graph {
	g := &Graph{
		N:         len(labels),
		Labels:    labels,
		Freq:      freq,
		StartFreq: startFreq,
		EndFreq:   endFreq,
	}
	g.rebuildAdj()
	return g
}

func (g *Graph) rebuildAdj() {
	g.out = make([][]int, g.N)
	g.in = make([][]int, g.N)
	for a := 0; a < g.N; a++ {
		for b := 0; b < g.N; b++ {
			if g.Freq[a][b] > 0 {
				g.out[a] = append(g.out[a], b)
				g.in[b] = append(g.in[b], a)
			}
		}
	}
}

// Has reports whether edge a→b exists.
func (g *Graph) Has(a, b int) bool { return g.Freq[a][b] > 0 }

// Out returns the successors of a (sorted ascending). The slice is shared;
// callers must not modify it.
func (g *Graph) Out(a int) []int { return g.out[a] }

// In returns the predecessors of a (sorted ascending). The slice is shared;
// callers must not modify it.
func (g *Graph) In(a int) []int { return g.in[a] }

// NumEdges returns the number of directly-follows edges.
func (g *Graph) NumEdges() int {
	n := 0
	for a := range g.out {
		n += len(g.out[a])
	}
	return n
}

// PreSet returns the classes with an edge into any member of group, members
// excluded (the DFG.pre(g) of Algorithm 3).
func (g *Graph) PreSet(group bitset.Set) bitset.Set {
	pre := bitset.New(g.N)
	group.ForEach(func(b int) bool {
		for _, a := range g.in[b] {
			if !group.Contains(a) {
				pre.Add(a)
			}
		}
		return true
	})
	return pre
}

// PostSet returns the classes reachable by one edge from any member of
// group, members excluded (the DFG.post(g) of Algorithm 3).
func (g *Graph) PostSet(group bitset.Set) bitset.Set {
	post := bitset.New(g.N)
	group.ForEach(func(a int) bool {
		for _, b := range g.out[a] {
			if !group.Contains(b) {
				post.Add(b)
			}
		}
		return true
	})
	return post
}

// Exclusive reports whether no DFG edge connects gi and gj in either
// direction (the exclusive(gi, gj) predicate of Algorithm 3).
func (g *Graph) Exclusive(gi, gj bitset.Set) bool {
	ok := true
	gi.ForEach(func(a int) bool {
		for _, b := range g.out[a] {
			if gj.Contains(b) {
				ok = false
				return false
			}
		}
		for _, b := range g.in[a] {
			if gj.Contains(b) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// FilterTopEdges returns a copy of the graph retaining only the
// highest-frequency edges whose cumulative frequency reaches the given
// fraction of the total (e.g. 0.8 for the paper's "80/20" views). Every
// vertex keeps at least its single most frequent incoming and outgoing edge
// so the view stays connected in the usual process-map sense.
func (g *Graph) FilterTopEdges(fraction float64) *Graph {
	type edge struct{ a, b, f int }
	var edges []edge
	total := 0
	for a := 0; a < g.N; a++ {
		for _, b := range g.out[a] {
			edges = append(edges, edge{a, b, g.Freq[a][b]})
			total += g.Freq[a][b]
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].f > edges[j].f })
	keep := make(map[[2]int]bool)
	cum := 0
	for _, e := range edges {
		if float64(cum) >= fraction*float64(total) {
			break
		}
		keep[[2]int{e.a, e.b}] = true
		cum += e.f
	}
	// Preserve each vertex's strongest in/out edge.
	for v := 0; v < g.N; v++ {
		bestOut, bestIn := -1, -1
		for _, b := range g.out[v] {
			if bestOut < 0 || g.Freq[v][b] > g.Freq[v][bestOut] {
				bestOut = b
			}
		}
		for _, a := range g.in[v] {
			if bestIn < 0 || g.Freq[a][v] > g.Freq[bestIn][v] {
				bestIn = a
			}
		}
		if bestOut >= 0 {
			keep[[2]int{v, bestOut}] = true
		}
		if bestIn >= 0 {
			keep[[2]int{bestIn, v}] = true
		}
	}
	out := &Graph{
		N:         g.N,
		Labels:    g.Labels,
		Freq:      make([][]int, g.N),
		StartFreq: append([]int(nil), g.StartFreq...),
		EndFreq:   append([]int(nil), g.EndFreq...),
	}
	for a := 0; a < g.N; a++ {
		out.Freq[a] = make([]int, g.N)
		for b := 0; b < g.N; b++ {
			if keep[[2]int{a, b}] {
				out.Freq[a][b] = g.Freq[a][b]
			}
		}
	}
	out.rebuildAdj()
	return out
}

// DOT renders the graph in Graphviz DOT format with edge frequencies, for
// regenerating the paper's DFG figures.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, style=rounded];\n", name)
	for v := 0; v < g.N; v++ {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, g.Labels[v])
	}
	for a := 0; a < g.N; a++ {
		for _, c := range g.out[a] {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", a, c, g.Freq[a][c])
		}
	}
	b.WriteString("}\n")
	return b.String()
}

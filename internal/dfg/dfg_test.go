package dfg

import (
	"strings"
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

func runningExample(t *testing.T) (*eventlog.Index, *Graph) {
	t.Helper()
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	return x, Build(x)
}

func id(x *eventlog.Index, name string) int { return x.ClassID[name] }

// Figure 2's directly-follows relation for the running example.
func TestRunningExampleEdges(t *testing.T) {
	x, g := runningExample(t)
	has := [][2]string{
		{"rcp", "ckc"}, {"rcp", "ckt"}, {"ckc", "acc"}, {"ckt", "acc"},
		{"ckc", "rej"}, {"acc", "prio"}, {"rej", "prio"}, {"prio", "inf"},
		{"prio", "arv"}, {"inf", "arv"}, {"arv", "inf"}, {"acc", "inf"},
		{"rej", "rcp"},
	}
	for _, e := range has {
		if !g.Has(id(x, e[0]), id(x, e[1])) {
			t.Errorf("missing edge %s→%s", e[0], e[1])
		}
	}
	hasNot := [][2]string{
		{"rcp", "acc"}, {"acc", "rej"}, {"rej", "acc"},
		{"ckc", "ckt"}, {"arv", "rcp"},
	}
	for _, e := range hasNot {
		if g.Has(id(x, e[0]), id(x, e[1])) {
			t.Errorf("unexpected edge %s→%s", e[0], e[1])
		}
	}
}

func TestStartEndFrequencies(t *testing.T) {
	x, g := runningExample(t)
	if g.StartFreq[id(x, "rcp")] != 4 {
		t.Errorf("rcp starts %d traces, want 4", g.StartFreq[id(x, "rcp")])
	}
	// σ1, σ3 end with arv; σ2, σ4 end with inf.
	if g.EndFreq[id(x, "arv")] != 2 || g.EndFreq[id(x, "inf")] != 2 {
		t.Errorf("end freqs arv=%d inf=%d", g.EndFreq[id(x, "arv")], g.EndFreq[id(x, "inf")])
	}
}

func TestPrePostSets(t *testing.T) {
	x, g := runningExample(t)
	grp := bitset.FromSlice(g.N, []int{id(x, "ckc"), id(x, "ckt")})
	pre := g.PreSet(grp)
	if pre.Len() != 1 || !pre.Contains(id(x, "rcp")) {
		t.Errorf("pre = %v", x.GroupNames(pre))
	}
	post := g.PostSet(grp)
	if post.Len() != 2 || !post.Contains(id(x, "acc")) || !post.Contains(id(x, "rej")) {
		t.Errorf("post = %v", x.GroupNames(post))
	}
}

// Figure 6: {ckc, ckt} are proper behavioural alternatives (equal pre/post
// and no connecting edges); {acc, rej} are exclusive but NOT alternatives
// (their postsets differ: rej can loop back to rcp).
func TestBehaviouralAlternatives(t *testing.T) {
	x, g := runningExample(t)
	ckc := bitset.FromSlice(g.N, []int{id(x, "ckc")})
	ckt := bitset.FromSlice(g.N, []int{id(x, "ckt")})
	if !g.Exclusive(ckc, ckt) {
		t.Error("ckc/ckt should be exclusive")
	}
	if g.PreSet(ckc).Key() != g.PreSet(ckt).Key() || g.PostSet(ckc).Key() != g.PostSet(ckt).Key() {
		t.Error("ckc/ckt should have identical pre/post sets")
	}
	acc := bitset.FromSlice(g.N, []int{id(x, "acc")})
	rej := bitset.FromSlice(g.N, []int{id(x, "rej")})
	if !g.Exclusive(acc, rej) {
		t.Error("acc/rej should have no connecting edges")
	}
	if g.PostSet(acc).Key() == g.PostSet(rej).Key() {
		t.Error("acc/rej postsets must differ (rej loops back to rcp)")
	}
}

func TestFilterTopEdgesKeepsStrongest(t *testing.T) {
	log := procgen.RunningExample(300, 3)
	x := eventlog.NewIndex(log)
	g := Build(x)
	f := g.FilterTopEdges(0.5)
	if f.NumEdges() >= g.NumEdges() {
		t.Fatalf("filtering did not reduce edges: %d -> %d", g.NumEdges(), f.NumEdges())
	}
	// Every vertex with outgoing edges keeps at least one.
	for v := 0; v < g.N; v++ {
		if len(g.Out(v)) > 0 && len(f.Out(v)) == 0 {
			t.Errorf("vertex %s lost all outgoing edges", g.Labels[v])
		}
	}
	// Kept edges preserve original frequencies.
	for a := 0; a < f.N; a++ {
		for _, b := range f.Out(a) {
			if f.Freq[a][b] != g.Freq[a][b] {
				t.Errorf("edge %d→%d frequency changed", a, b)
			}
		}
	}
}

func TestDOTOutput(t *testing.T) {
	_, g := runningExample(t)
	dot := g.DOT("running")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "rcp") {
		t.Fatal("DOT output malformed")
	}
	if !strings.Contains(dot, "->") {
		t.Fatal("DOT output has no edges")
	}
}

func TestNumEdgesMatchesStats(t *testing.T) {
	log := procgen.RunningExample(200, 5)
	x := eventlog.NewIndex(log)
	g := Build(x)
	if st := log.ComputeStats(); st.NumDFGEdges != g.NumEdges() {
		t.Fatalf("stats edges %d != graph edges %d", st.NumDFGEdges, g.NumEdges())
	}
}

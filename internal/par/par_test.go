package par

import (
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("Workers must resolve non-positive requests to >= 1")
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMemoExactlyOnce(t *testing.T) {
	m := NewMemo[int]()
	var computes atomic.Int64
	// Hammer the same small key set from many goroutines; each key must be
	// computed exactly once.
	const keys = 10
	For(8, 1000, func(i int) {
		k := string(rune('a' + i%keys))
		v := m.Do(k, func() int {
			computes.Add(1)
			return i % keys
		})
		if v != i%keys {
			t.Errorf("key %q: got %d, want %d", k, v, i%keys)
		}
	})
	if got := computes.Load(); got != keys {
		t.Fatalf("computes = %d, want %d (exactly once per key)", got, keys)
	}
	if v, ok := m.Get("a"); !ok || v != 0 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
}

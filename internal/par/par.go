// Package par is GECCO's small concurrency toolkit: worker-count
// resolution, a parallel index loop, and a sharded memoisation map. The hot
// paths of the pipeline (Step 1 candidate evaluation and the Eq. 1 distance
// measure) fan out through these primitives; everything is written so that a
// parallel run stays deterministic — work is assigned by index, results are
// merged in index order by the callers, and memoised computations run
// exactly once per key.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean "one worker
// per CPU", anything else is taken as-is.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.NumCPU()
	}
	return requested
}

// For runs fn(i) for every i in [0, n) across at most the given number of
// workers and returns when all calls have finished. Indices are handed out
// through a shared atomic counter, so uneven per-item costs balance
// automatically. fn must be safe for concurrent invocation; with workers <= 1
// (or tiny n) the loop degenerates to a plain sequential for, so a
// single-worker run takes the exact code path of the pre-parallel
// implementation.
func For(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

const numShards = 64

// Memo is a sharded memoisation map from string keys to values, safe for
// concurrent use. Each key's value is computed exactly once: concurrent
// requests for the same key coalesce onto the first caller's computation
// (per-key singleflight; see Do), while different keys — even colliding
// ones — never wait on each other's compute. Exactly-once evaluation is
// what keeps the pipeline's evaluation counters (constraint checks,
// distance evaluations) identical between sequential and parallel runs.
type Memo[V any] struct {
	shards [numShards]memoShard[V]
}

type memoShard[V any] struct {
	mu       sync.RWMutex
	m        map[string]V        // completed values
	inflight map[string]*call[V] // computations in progress
}

// call tracks one in-progress computation; waiters block on done.
type call[V any] struct {
	done chan struct{}
	v    V
}

// NewMemo returns an empty memoisation map.
func NewMemo[V any]() *Memo[V] {
	return &Memo[V]{}
}

// Do returns the memoised value for key, calling compute to produce it on
// first use. Duplicate concurrent requests coalesce onto the first caller's
// computation (per-shard singleflight); no lock is held while compute runs,
// so a slow — or itself parallel — computation never blocks other keys of
// the shard. compute must not panic: waiters on the same key would block
// forever.
func (c *Memo[V]) Do(key string, compute func() V) V {
	s := &c.shards[shardOf(key)]
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return v
	}
	s.mu.Lock()
	if v, ok := s.m[key]; ok {
		s.mu.Unlock()
		return v
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-cl.done
		return cl.v
	}
	cl := &call[V]{done: make(chan struct{})}
	if s.inflight == nil {
		s.inflight = make(map[string]*call[V])
	}
	s.inflight[key] = cl
	s.mu.Unlock()

	cl.v = compute()

	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]V)
	}
	s.m[key] = cl.v
	delete(s.inflight, key)
	s.mu.Unlock()
	close(cl.done)
	return cl.v
}

// Len reports the number of completed memoised entries, for callers that
// bound a memo's growth (e.g. the serving layer's session cache).
func (c *Memo[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Get returns the memoised value for key, if its computation has completed.
func (c *Memo[V]) Get(key string) (V, bool) {
	s := &c.shards[shardOf(key)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	return v, ok
}

// shardOf hashes a key to its shard with FNV-1a.
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % numShards
}

package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) after Remove")
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if s.Min() != 0 {
		t.Fatalf("Min = %d, want 0", s.Min())
	}
}

func TestElemsRoundTrip(t *testing.T) {
	elems := []int{3, 17, 64, 99}
	s := FromSlice(100, elems)
	got := s.Elems()
	if len(got) != len(elems) {
		t.Fatalf("Elems = %v, want %v", got, elems)
	}
	for i := range elems {
		if got[i] != elems[i] {
			t.Fatalf("Elems = %v, want %v", got, elems)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(70, []int{1, 2, 3, 65})
	b := FromSlice(70, []int{3, 4, 65})
	if got := a.Union(b).Elems(); len(got) != 5 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Elems(); len(got) != 2 || got[0] != 3 || got[1] != 65 {
		t.Errorf("Intersect = %v, want [3 65]", got)
	}
	if got := a.Diff(b).Elems(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Diff = %v, want [1 2]", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	c := FromSlice(70, []int{10})
	if a.Intersects(c) {
		t.Error("Intersects disjoint = true")
	}
}

func TestSubset(t *testing.T) {
	a := FromSlice(70, []int{1, 2})
	b := FromSlice(70, []int{1, 2, 3})
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("subset relation wrong")
	}
	if !a.ProperSubsetOf(b) {
		t.Error("proper subset wrong")
	}
	if a.ProperSubsetOf(a) {
		t.Error("a ⊂ a should be false")
	}
	if !a.SubsetOf(a) {
		t.Error("a ⊆ a should be true")
	}
}

func TestEqualAcrossCapacities(t *testing.T) {
	a := FromSlice(64, []int{1, 63})
	b := FromSlice(256, []int{1, 63})
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets with same elements but different capacity not Equal")
	}
	if a.Key() != b.Key() {
		t.Error("Key differs across capacities")
	}
	b.Add(200)
	if a.Equal(b) {
		t.Error("Equal after differing element")
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	a := FromSlice(10, []int{1})
	b := a.With(5)
	if a.Contains(5) {
		t.Error("With mutated receiver")
	}
	if !b.Contains(5) || !b.Contains(1) {
		t.Error("With missing elements")
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := make(map[string][]int)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		var elems []int
		for i := 0; i < 128; i++ {
			if rng.Intn(10) == 0 {
				elems = append(elems, i)
			}
		}
		s := FromSlice(128, elems)
		k := s.Key()
		if prev, ok := seen[k]; ok {
			if !FromSlice(128, prev).Equal(s) {
				t.Fatalf("key collision between %v and %v", prev, elems)
			}
		}
		seen[k] = elems
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(20, []int{2, 5, 9})
	var visited []int
	s.ForEach(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 2
	})
	if len(visited) != 2 || visited[0] != 2 || visited[1] != 5 {
		t.Fatalf("visited %v", visited)
	}
}

// Property: union length equals len(a) + len(b) - len(a∩b).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: diff and intersect partition a.
func TestQuickDiffPartition(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		d, i := a.Diff(b), a.Intersect(b)
		return d.Union(i).Equal(a) && !d.Intersects(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Elems is sorted and Key is stable under element order.
func TestQuickElemsSorted(t *testing.T) {
	f := func(xs []uint8) bool {
		s := New(256)
		for _, x := range xs {
			s.Add(int(x))
		}
		e := s.Elems()
		for i := 1; i < len(e); i++ {
			if e[i-1] >= e[i] {
				return false
			}
		}
		return FromSlice(256, e).Key() == s.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// The word-parallel kernels (AndCount, AndInto, OrInto, CopyFrom,
// IntersectsAny, ForEachWord, ForEachAnd) back the solver's screening and
// lower-bound machinery; each is checked here against the naive
// element-by-element definition on random sets, including mismatched
// capacities (t shorter or longer than s).

// fromElems builds a set over universe n from arbitrary element seeds.
func fromElems(n int, elems []uint16) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(int(e) % n)
	}
	return s
}

// naiveIntersection returns the sorted intersection of two sets via Elems.
func naiveIntersection(a, b Set) []int {
	inB := make(map[int]bool)
	for _, e := range b.Elems() {
		inB[e] = true
	}
	var out []int
	for _, e := range a.Elems() {
		if inB[e] {
			out = append(out, e)
		}
	}
	sort.Ints(out)
	return out
}

func TestKernelsQuick(t *testing.T) {
	check := func(ea, eb, ec []uint16, nSeedA, nSeedB uint8) bool {
		// Different universes exercise the capacity-mismatch paths.
		na := 1 + int(nSeedA)%200
		nb := 1 + int(nSeedB)%200
		a := fromElems(na, ea)
		b := fromElems(nb, eb)
		c := fromElems(nb, ec)
		inter := naiveIntersection(a, b)

		// AndCount == |a ∩ b|.
		if a.AndCount(b) != len(inter) || b.AndCount(a) != len(inter) {
			t.Errorf("AndCount mismatch: got %d/%d, want %d", a.AndCount(b), b.AndCount(a), len(inter))
			return false
		}

		// IntersectsAny == any pairwise Intersects.
		if a.IntersectsAny(b, c) != (a.Intersects(b) || a.Intersects(c)) {
			t.Error("IntersectsAny mismatch")
			return false
		}
		if a.IntersectsAny() {
			t.Error("IntersectsAny() with no sets must be false")
			return false
		}

		// ForEachAnd visits exactly a ∩ b ascending, with early exit.
		var visited []int
		a.ForEachAnd(b, func(i int) bool { visited = append(visited, i); return true })
		if !equalInts(visited, inter) {
			t.Errorf("ForEachAnd visited %v, want %v", visited, inter)
			return false
		}
		if len(inter) > 1 {
			stop := len(inter) / 2
			visited = visited[:0]
			a.ForEachAnd(b, func(i int) bool {
				visited = append(visited, i)
				return len(visited) < stop
			})
			if !equalInts(visited, inter[:stop]) {
				t.Errorf("ForEachAnd early-exit visited %v, want %v", visited, inter[:stop])
				return false
			}
		}

		// ForEachWord reconstructs the set.
		visited = visited[:0]
		a.ForEachWord(func(i int, w uint64) {
			for b := 0; b < 64; b++ {
				if w&(1<<uint(b)) != 0 {
					visited = append(visited, i*64+b)
				}
			}
		})
		if !equalInts(visited, a.Elems()) {
			t.Errorf("ForEachWord reconstructed %v, want %v", visited, a.Elems())
			return false
		}

		// AndInto == Intersect, in place, reporting non-emptiness; words of
		// the receiver beyond t's length must be cleared.
		ai := a.Clone()
		nonEmpty := ai.AndInto(b)
		if !ai.Equal(a.Intersect(b)) {
			t.Errorf("AndInto: got %v, want %v", ai, a.Intersect(b))
			return false
		}
		if nonEmpty != !ai.IsEmpty() {
			t.Error("AndInto non-empty report mismatch")
			return false
		}

		// OrInto == Union when the receiver has capacity (b, c share one).
		bo := b.Clone()
		bo.OrInto(c)
		if !bo.Equal(b.Union(c)) {
			t.Errorf("OrInto: got %v, want %v", bo, b.Union(c))
			return false
		}

		// CopyFrom == source contents, truncated to receiver capacity.
		cc := c.Clone()
		cc.CopyFrom(b)
		if !cc.Equal(b) {
			t.Errorf("CopyFrom: got %v, want %v", cc, b)
			return false
		}

		// Clear empties in place.
		cc.Clear()
		if !cc.IsEmpty() || cc.Len() != 0 {
			t.Error("Clear left elements behind")
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

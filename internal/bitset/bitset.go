// Package bitset provides a compact fixed-universe bit set used to represent
// groups of event classes and trace memberships throughout GECCO. Sets are
// value types backed by a []uint64 slice; all operations that return a set
// allocate a fresh one, so sets can be shared freely as map keys via Key().
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a bit set over the universe [0, n). The zero value is an empty set
// over an empty universe; use New to create a set with capacity.
type Set struct {
	words []uint64
}

// New returns an empty set able to hold elements in [0, n).
func New(n int) Set {
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// GrowAdd inserts i, growing the set's capacity as needed — for builders
// that accumulate membership before the universe size is known. Unlike Add
// it may reallocate the backing words, so it needs a pointer receiver and
// must not be used on a set that other Set values alias.
func (s *Set) GrowAdd(i int) {
	w := i / wordBits
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(i) % wordBits)
}

// Bytes returns the heap footprint of the set's backing words, for memory
// accounting.
func (s Set) Bytes() int { return len(s.words) * 8 }

// Words exposes the set's backing word slice — word i holds elements
// [64i, 64i+64), least-significant bit first. The slice is the live backing
// store, not a copy: callers must treat it as read-only. It exists for
// serialisation (eventlog.WriteIndex stores bitsets as their in-memory word
// layout, little-endian).
func (s Set) Words() []uint64 { return s.words }

// FromWords builds a set over the given backing words (same layout as
// Words). The slice is adopted, not copied; the caller must not modify it
// afterwards. It is the deserialisation counterpart of Words.
func FromWords(words []uint64) Set { return Set{words: words} }

// Max returns the largest element, or -1 if the set is empty.
func (s Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// FromSlice returns a set over [0, n) containing the given elements.
func FromSlice(n int, elems []int) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Clone returns a deep copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Add inserts i into the set. The set must have capacity for i.
func (s Set) Add(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set if present.
func (s Set) Remove(i int) {
	if i/wordBits < len(s.words) {
		s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Contains reports whether i is in the set.
func (s Set) Contains(i int) bool {
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	for i := len(b); i < len(a); i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t (subset and not equal).
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s and t share at least one element.
func (s Set) Intersects(t Set) bool {
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Union returns a new set s ∪ t.
func (s Set) Union(t Set) Set {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	w := make([]uint64, len(a))
	copy(w, a)
	for i := range b {
		w[i] |= b[i]
	}
	return Set{words: w}
}

// Intersect returns a new set s ∩ t.
func (s Set) Intersect(t Set) Set {
	n := min(len(s.words), len(t.words))
	w := make([]uint64, n)
	for i := 0; i < n; i++ {
		w[i] = s.words[i] & t.words[i]
	}
	return Set{words: w}
}

// Diff returns a new set s \ t.
func (s Set) Diff(t Set) Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	for i := range t.words {
		if i < len(w) {
			w[i] &^= t.words[i]
		}
	}
	return Set{words: w}
}

// With returns a new set equal to s with i added.
func (s Set) With(i int) Set {
	w := i / wordBits
	out := make([]uint64, max(len(s.words), w+1))
	copy(out, s.words)
	out[w] |= 1 << (uint(i) % wordBits)
	return Set{words: out}
}

// Elems returns the elements of the set in ascending order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for each element in ascending order; it stops early if fn
// returns false.
func (s Set) ForEach(fn func(i int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// AndCount returns |s ∩ t| without materialising the intersection — the
// word-parallel popcount kernel behind aggregate-cache merges and the
// distance lower bound.
func (s Set) AndCount(t Set) int {
	n := min(len(s.words), len(t.words))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// IntersectsAny reports whether s shares an element with any of the given
// sets. It exists for screens that ask "does this group touch any of these
// partitions?" without a per-set function call in the caller.
func (s Set) IntersectsAny(ts ...Set) bool {
	for _, t := range ts {
		if s.Intersects(t) {
			return true
		}
	}
	return false
}

// AndInto replaces s with s ∩ t in place and reports whether the result is
// non-empty. s must own its backing words (e.g. a Clone or a reused
// scratch); words of s beyond t's length are cleared.
func (s Set) AndInto(t Set) bool {
	n := min(len(s.words), len(t.words))
	any := uint64(0)
	for i := 0; i < n; i++ {
		s.words[i] &= t.words[i]
		any |= s.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
	return any != 0
}

// OrInto replaces s with s ∪ t in place. s must have capacity for every
// element of t (its word slice is not grown) and must own its backing words.
func (s Set) OrInto(t Set) {
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		s.words[i] |= t.words[i]
	}
}

// CopyFrom overwrites s with the contents of t, truncating or zero-filling
// as needed. s must have capacity for every element of t and must own its
// backing words; it is the reset step for reused scratch sets.
func (s Set) CopyFrom(t Set) {
	n := min(len(s.words), len(t.words))
	copy(s.words[:n], t.words[:n])
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Clear removes all elements in place.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEachWord calls fn(i, w) for every non-zero backing word, where word i
// covers elements [64i, 64i+64). It is the word-granular iterator that lets
// callers fuse a mask combination with a scan over a second structure
// (e.g. class-mask AND presence-mask, then decode only the surviving bits).
func (s Set) ForEachWord(fn func(i int, w uint64)) {
	for i, w := range s.words {
		if w != 0 {
			fn(i, w)
		}
	}
}

// ForEachAnd calls fn for every element of s ∩ t in ascending order without
// materialising the intersection; it stops early if fn returns false.
func (s Set) ForEachAnd(t Set, fn func(i int) bool) {
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		w := s.words[i] & t.words[i]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Key returns a string usable as a map key identifying the set's contents.
// Trailing zero words are ignored, so sets over different capacities with the
// same elements share a key.
func (s Set) Key() string {
	end := len(s.words)
	for end > 0 && s.words[end-1] == 0 {
		end--
	}
	var b strings.Builder
	b.Grow(end * 8)
	for i := 0; i < end; i++ {
		w := s.words[i]
		for j := 0; j < 8; j++ {
			b.WriteByte(byte(w >> (8 * j)))
		}
	}
	return b.String()
}

// String renders the set as "{1, 4, 7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Package metrics implements the evaluation measures of §VI-A: size
// reduction, control-flow complexity reduction (via internal/discovery),
// and the silhouette coefficient of a grouping under an average positional
// distance between event classes (the fuzzy-miner-style proximity the paper
// references).
package metrics

import (
	"context"
	"math"

	"gecco/internal/bitset"
	"gecco/internal/discovery"
	"gecco/internal/eventlog"
)

// SizeReduction is 1 - |G|/|C_L|: the fraction of event classes eliminated
// by abstraction (0 = none, →1 = strong abstraction).
func SizeReduction(numGroups, numClasses int) float64 {
	if numClasses == 0 {
		return 0
	}
	return 1 - float64(numGroups)/float64(numClasses)
}

// ComplexityReduction discovers models from both indexed logs and returns
// 1 - CFC(abstracted)/CFC(original). Non-positive original complexity
// yields 0. Callers holding a core.Session should pass its frozen index as
// original instead of re-interning (or reconstructing) the log. Cancelling
// ctx aborts discovery and returns an error wrapping ctx.Err().
func ComplexityReduction(ctx context.Context, original, abstracted *eventlog.Index, opts discovery.Options) (float64, error) {
	origModel, err := discovery.Discover(ctx, original, opts)
	if err != nil {
		return 0, err
	}
	origCFC := origModel.CFC()
	if origCFC <= 0 {
		return 0, nil
	}
	absModel, err := discovery.Discover(ctx, abstracted, opts)
	if err != nil {
		return 0, err
	}
	red := 1 - absModel.CFC()/origCFC
	return red, nil // can be negative: abstraction can, in principle, increase complexity
}

// PositionalDistances returns the pairwise distance matrix between event
// classes: the average normalised gap between their occurrences within
// traces where both appear (first occurrences, gap normalised by trace
// length). Classes never co-occurring get the maximum distance 1.
func PositionalDistances(x *eventlog.Index) [][]float64 {
	n := x.NumClasses()
	sum := make([][]float64, n)
	cnt := make([][]int, n)
	for i := range sum {
		sum[i] = make([]float64, n)
		cnt[i] = make([]int, n)
	}
	firstPos := make([]int, n)
	for t := 0; t < x.NumTraces(); t++ {
		seq := x.Seq(t)
		if len(seq) < 2 {
			continue
		}
		for i := range firstPos {
			firstPos[i] = -1
		}
		for pos, c := range seq {
			if firstPos[c] < 0 {
				firstPos[c] = pos
			}
		}
		norm := float64(len(seq) - 1)
		for a := 0; a < n; a++ {
			if firstPos[a] < 0 {
				continue
			}
			for b := a + 1; b < n; b++ {
				if firstPos[b] < 0 {
					continue
				}
				d := math.Abs(float64(firstPos[a]-firstPos[b])) / norm
				sum[a][b] += d
				cnt[a][b]++
			}
		}
	}
	out := make([][]float64, n)
	for a := range out {
		out[a] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d := 1.0
			if cnt[a][b] > 0 {
				d = sum[a][b] / float64(cnt[a][b])
			}
			out[a][b], out[b][a] = d, d
		}
	}
	return out
}

// Silhouette computes the silhouette coefficient of the grouping under the
// positional distance. Classes in singleton groups score 0 (the usual
// convention); the coefficient is the mean over all classes. A grouping
// with a single group scores 0.
func Silhouette(x *eventlog.Index, groups []bitset.Set) float64 {
	n := x.NumClasses()
	if n == 0 || len(groups) < 2 {
		return 0
	}
	d := PositionalDistances(x)
	clusterOf := make([]int, n)
	for ci, g := range groups {
		g.ForEach(func(c int) bool {
			clusterOf[c] = ci
			return true
		})
	}
	sizes := make([]int, len(groups))
	for gi, g := range groups {
		sizes[gi] = g.Len()
	}
	total := 0.0
	for c := 0; c < n; c++ {
		own := clusterOf[c]
		if sizes[own] <= 1 {
			continue // s = 0
		}
		// a(c): mean distance to own cluster members.
		aSum := 0.0
		groups[own].ForEach(func(o int) bool {
			if o != c {
				aSum += d[c][o]
			}
			return true
		})
		a := aSum / float64(sizes[own]-1)
		// b(c): min over other clusters of mean distance.
		b := math.Inf(1)
		for gi, g := range groups {
			if gi == own || sizes[gi] == 0 {
				continue
			}
			s := 0.0
			g.ForEach(func(o int) bool {
				s += d[c][o]
				return true
			})
			if m := s / float64(sizes[gi]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if mx := math.Max(a, b); mx > 0 {
			total += (b - a) / mx
		}
	}
	return total / float64(n)
}

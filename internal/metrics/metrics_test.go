package metrics

import (
	"context"
	"math"
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/discovery"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

func TestSizeReduction(t *testing.T) {
	if got := SizeReduction(4, 8); got != 0.5 {
		t.Fatalf("SizeReduction(4,8) = %f", got)
	}
	if got := SizeReduction(8, 8); got != 0 {
		t.Fatalf("no abstraction should be 0, got %f", got)
	}
	if got := SizeReduction(1, 0); got != 0 {
		t.Fatalf("empty universe should be 0, got %f", got)
	}
}

func TestPositionalDistances(t *testing.T) {
	log := &eventlog.Log{Traces: []eventlog.Trace{{ID: "1", Events: []eventlog.Event{
		{Class: "a"}, {Class: "b"}, {Class: "c"},
	}}}}
	x := eventlog.NewIndex(log)
	d := PositionalDistances(x)
	ia, ib, ic := x.ClassID["a"], x.ClassID["b"], x.ClassID["c"]
	if math.Abs(d[ia][ib]-0.5) > 1e-12 {
		t.Errorf("d(a,b) = %f, want 0.5", d[ia][ib])
	}
	if math.Abs(d[ia][ic]-1.0) > 1e-12 {
		t.Errorf("d(a,c) = %f, want 1.0", d[ia][ic])
	}
	// Symmetry and zero diagonal.
	if d[ib][ia] != d[ia][ib] || d[ia][ia] != 0 {
		t.Error("distance matrix not symmetric or diagonal nonzero")
	}
}

func TestNeverCoOccurringMaxDistance(t *testing.T) {
	log := &eventlog.Log{Traces: []eventlog.Trace{
		{ID: "1", Events: []eventlog.Event{{Class: "a"}, {Class: "b"}}},
		{ID: "2", Events: []eventlog.Event{{Class: "c"}, {Class: "d"}}},
	}}
	x := eventlog.NewIndex(log)
	d := PositionalDistances(x)
	if d[x.ClassID["a"]][x.ClassID["c"]] != 1 {
		t.Fatal("never co-occurring classes should be at max distance")
	}
}

func TestSilhouettePrefersCohesiveGrouping(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	mk := func(names ...string) bitset.Set {
		g, _ := x.GroupFromNames(names)
		return g
	}
	good := []bitset.Set{
		mk("rcp", "ckc", "ckt"),
		mk("acc", "rej"),
		mk("prio", "inf", "arv"),
	}
	bad := []bitset.Set{
		mk("rcp", "arv"), // opposite ends of the process
		mk("ckc", "inf"),
		mk("ckt", "prio"),
		mk("acc", "rej"),
	}
	sg := Silhouette(x, good)
	sb := Silhouette(x, bad)
	if sg <= sb {
		t.Fatalf("cohesive grouping %f should beat scattered %f", sg, sb)
	}
	if sg <= 0 {
		t.Fatalf("cohesive grouping should have positive silhouette, got %f", sg)
	}
}

func TestSilhouetteSingleGroupIsZero(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	all := bitset.New(x.NumClasses())
	for i := 0; i < x.NumClasses(); i++ {
		all.Add(i)
	}
	if s := Silhouette(x, []bitset.Set{all}); s != 0 {
		t.Fatalf("single-group silhouette = %f, want 0", s)
	}
}

func TestSilhouetteAllSingletonsIsZero(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	var groups []bitset.Set
	for i := 0; i < x.NumClasses(); i++ {
		g := bitset.New(x.NumClasses())
		g.Add(i)
		groups = append(groups, g)
	}
	if s := Silhouette(x, groups); s != 0 {
		t.Fatalf("all-singleton silhouette = %f, want 0", s)
	}
}

func TestSilhouetteBounds(t *testing.T) {
	log := procgen.RunningExample(200, 37)
	x := eventlog.NewIndex(log)
	mk := func(names ...string) bitset.Set {
		g, _ := x.GroupFromNames(names)
		return g
	}
	groups := []bitset.Set{
		mk("rcp", "ckc"), mk("ckt", "acc"), mk("rej", "prio"), mk("inf", "arv"),
	}
	s := Silhouette(x, groups)
	if s < -1 || s > 1 {
		t.Fatalf("silhouette %f outside [-1, 1]", s)
	}
}

func TestComplexityReduction(t *testing.T) {
	orig := procgen.RunningExample(300, 41)
	// Abstract to a trivial single-activity log: complexity collapses.
	flat := &eventlog.Log{}
	for _, tr := range orig.Traces {
		flat.Traces = append(flat.Traces, eventlog.Trace{
			ID:     tr.ID,
			Events: []eventlog.Event{{Class: "X"}},
		})
	}
	xo, xf := eventlog.NewIndex(orig), eventlog.NewIndex(flat)
	red, err := ComplexityReduction(context.Background(), xo, xf, discovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if red <= 0.5 {
		t.Fatalf("flattening should reduce complexity strongly, got %f", red)
	}
	if same, err := ComplexityReduction(context.Background(), xo, xo, discovery.Options{}); err != nil || same != 0 {
		t.Fatalf("self-comparison should be 0, got %f (err %v)", same, err)
	}
}

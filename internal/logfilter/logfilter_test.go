package logfilter

import (
	"context"
	"testing"
	"time"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

var bg = context.Background()

func mkLog(seqs ...[]string) *eventlog.Log {
	log := &eventlog.Log{Name: "t"}
	for i, seq := range seqs {
		tr := eventlog.Trace{ID: string(rune('a' + i))}
		for _, c := range seq {
			tr.Events = append(tr.Events, eventlog.Event{Class: c})
		}
		log.Traces = append(log.Traces, tr)
	}
	return log
}

func idx(log *eventlog.Log) *eventlog.Index { return eventlog.NewIndex(log) }

// must unwraps a filter result into a pointer log for assertions; an
// uncancelled filter cannot fail.
func must(t *testing.T) func(*eventlog.Index, error) *eventlog.Log {
	return func(x *eventlog.Index, err error) *eventlog.Log {
		t.Helper()
		if err != nil {
			t.Fatalf("filter: %v", err)
		}
		return x.ReconstructLog()
	}
}

func TestTopVariants(t *testing.T) {
	log := mkLog(
		[]string{"a", "b"}, []string{"a", "b"}, []string{"a", "b"},
		[]string{"a", "c"},
	)
	out := must(t)(TopVariants(bg, idx(log), 0.5))
	if len(out.Traces) != 3 {
		t.Fatalf("kept %d traces, want the 3 of the dominant variant", len(out.Traces))
	}
	all := must(t)(TopVariants(bg, idx(log), 1))
	if len(all.Traces) != 4 {
		t.Fatalf("fraction 1 should keep everything, got %d", len(all.Traces))
	}
	// Input untouched.
	if len(log.Traces) != 4 {
		t.Fatal("input mutated")
	}
}

func TestMinVariantCount(t *testing.T) {
	log := mkLog([]string{"a"}, []string{"a"}, []string{"b"})
	out := must(t)(MinVariantCount(bg, idx(log), 2))
	if len(out.Traces) != 2 {
		t.Fatalf("kept %d, want 2", len(out.Traces))
	}
}

func TestTimeWindow(t *testing.T) {
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	log := &eventlog.Log{}
	for d := 0; d < 5; d++ {
		ev := eventlog.Event{Class: "a"}
		ev.SetAttr(eventlog.AttrTimestamp, eventlog.Time(base.AddDate(0, 0, d)))
		log.Traces = append(log.Traces, eventlog.Trace{ID: "t", Events: []eventlog.Event{ev}})
	}
	out := must(t)(TimeWindow(bg, idx(log), base.AddDate(0, 0, 1), base.AddDate(0, 0, 4)))
	if len(out.Traces) != 3 {
		t.Fatalf("kept %d, want 3 (days 1,2,3)", len(out.Traces))
	}
	// Traces without timestamps are dropped.
	noTS := mkLog([]string{"a"})
	if got := must(t)(TimeWindow(bg, idx(noTS), base, base.AddDate(1, 0, 0))); len(got.Traces) != 0 {
		t.Fatal("timestamp-less trace kept")
	}
}

func TestWhereTraceAndHasAttrValue(t *testing.T) {
	log := procgen.RunningExampleTable1()
	rejected := must(t)(WhereTrace(bg, idx(log), HasAttrValue(eventlog.AttrRole, "manager")))
	if len(rejected.Traces) != 4 {
		t.Fatalf("every Table I trace has a manager event, got %d", len(rejected.Traces))
	}
	none := must(t)(WhereTrace(bg, idx(log), HasAttrValue(eventlog.AttrRole, "cfo")))
	if len(none.Traces) != 0 {
		t.Fatal("nonexistent attribute value matched")
	}
}

func TestProjectAndDropClasses(t *testing.T) {
	log := mkLog([]string{"a", "b", "c"}, []string{"b"})
	proj := must(t)(ProjectClasses(bg, idx(log), []string{"a", "c"}))
	if len(proj.Traces) != 1 || proj.Traces[0].Variant() != "a,c" {
		t.Fatalf("projection = %+v", proj.Traces)
	}
	drop := must(t)(DropClasses(bg, idx(log), []string{"b"}))
	if len(drop.Traces) != 1 || drop.Traces[0].Variant() != "a,c" {
		t.Fatalf("drop = %+v", drop.Traces)
	}
	// Complementarity: dropping nothing preserves all traces.
	if got := must(t)(DropClasses(bg, idx(log), nil)); len(got.Traces) != 2 {
		t.Fatal("no-op drop lost traces")
	}
}

func TestSampleDeterministic(t *testing.T) {
	log := procgen.RunningExample(200, 3)
	a := must(t)(Sample(bg, idx(log), 0.5, 42))
	b := must(t)(Sample(bg, idx(log), 0.5, 42))
	if len(a.Traces) != len(b.Traces) {
		t.Fatal("same seed produced different samples")
	}
	if len(a.Traces) == 0 || len(a.Traces) == len(log.Traces) {
		t.Fatalf("sample size %d implausible", len(a.Traces))
	}
	for i := range a.Traces {
		if a.Traces[i].ID != b.Traces[i].ID {
			t.Fatal("sample order differs")
		}
	}
}

func TestHead(t *testing.T) {
	log := mkLog([]string{"a"}, []string{"b"}, []string{"c"})
	if got := must(t)(Head(bg, idx(log), 2)); len(got.Traces) != 2 || got.Traces[1].Variant() != "b" {
		t.Fatalf("head = %+v", got.Traces)
	}
	if got := must(t)(Head(bg, idx(log), 99)); len(got.Traces) != 3 {
		t.Fatal("over-long head should clamp")
	}
}

// Filters rebuild through the Builder: mutating the output must not affect
// the input log the index was built from.
func TestDeepCopySemantics(t *testing.T) {
	log := procgen.RunningExampleTable1()
	out := must(t)(TopVariants(bg, idx(log), 1))
	out.Traces[0].Events[0].Class = "MUTATED"
	out.Traces[0].Events[0].SetAttr("k", eventlog.Int(1))
	if log.Traces[0].Events[0].Class == "MUTATED" {
		t.Fatal("filter shares event slices with input")
	}
	if _, ok := log.Traces[0].Events[0].Attrs["k"]; ok {
		t.Fatal("filter shares attribute maps with input")
	}
}

// The columnar kernel carries every attribute layer through a filter: log
// name, event attributes, and (unlike the legacy pointer-log clone) trace
// attributes survive the round trip.
func TestFilterPreservesAttributes(t *testing.T) {
	log := procgen.RunningExampleTable1()
	log.Traces[0].SetAttr("channel", eventlog.String("web"))
	out := must(t)(TopVariants(bg, idx(log), 1))
	if out.Name != log.Name {
		t.Fatalf("log name %q lost (want %q)", out.Name, log.Name)
	}
	if v, ok := out.Traces[0].Attrs["channel"]; !ok || v.AsString() != "web" {
		t.Fatal("trace attribute lost in filter round trip")
	}
	role, ok := log.Traces[0].Events[0].Attrs[eventlog.AttrRole]
	if !ok {
		t.Skip("running example carries no role on the first event")
	}
	got, ok := out.Traces[0].Events[0].Attrs[eventlog.AttrRole]
	if !ok || got.AsString() != role.AsString() {
		t.Fatal("event attribute lost in filter round trip")
	}
}

// Cancelling the context aborts a copy and surfaces the cause.
func TestFilterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Head(ctx, idx(procgen.RunningExampleTable1()), 2); err == nil {
		t.Fatal("cancelled filter returned no error")
	}
}

// Preprocessing composes with abstraction: filtering to the dominant
// variants keeps the pipeline runnable end to end.
func TestComposesWithIndex(t *testing.T) {
	log := procgen.RunningExample(300, 7)
	x, err := TopVariants(bg, idx(log), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if x.NumClasses() == 0 || x.NumTraces() == 0 {
		t.Fatal("filtered log unusable")
	}
	if x.NumTraces() >= len(log.Traces) {
		t.Fatal("filter kept every trace of a noisy simulation")
	}
}

// Package logfilter provides the standard event-log preprocessing
// operations applied before abstraction and discovery: variant-frequency
// filtering (the trace-level analogue of the paper's 80/20 DFG views),
// time-window and attribute slicing, class projection, and deterministic
// sampling. All functions return new logs; inputs are never mutated.
package logfilter

import (
	"math/rand"
	"sort"
	"time"

	"gecco/internal/eventlog"
)

// TopVariants keeps the traces belonging to the most frequent variants
// whose cumulative share of traces reaches fraction (e.g. 0.8 keeps the
// variants covering 80 % of traces). Ties are broken by variant string for
// determinism. fraction >= 1 returns a copy of the whole log.
func TopVariants(log *eventlog.Log, fraction float64) *eventlog.Log {
	type vc struct {
		variant string
		count   int
	}
	counts := make(map[string]int)
	for i := range log.Traces {
		counts[log.Traces[i].Variant()]++
	}
	ranked := make([]vc, 0, len(counts))
	for v, c := range counts {
		ranked = append(ranked, vc{v, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].variant < ranked[j].variant
	})
	keep := make(map[string]bool, len(ranked))
	cum := 0
	for _, r := range ranked {
		if float64(cum) >= fraction*float64(len(log.Traces)) {
			break
		}
		keep[r.variant] = true
		cum += r.count
	}
	out := &eventlog.Log{Name: log.Name}
	for i := range log.Traces {
		if keep[log.Traces[i].Variant()] {
			out.Traces = append(out.Traces, cloneTrace(&log.Traces[i]))
		}
	}
	return out
}

// MinVariantCount keeps traces whose variant occurs at least n times.
func MinVariantCount(log *eventlog.Log, n int) *eventlog.Log {
	counts := make(map[string]int)
	for i := range log.Traces {
		counts[log.Traces[i].Variant()]++
	}
	out := &eventlog.Log{Name: log.Name}
	for i := range log.Traces {
		if counts[log.Traces[i].Variant()] >= n {
			out.Traces = append(out.Traces, cloneTrace(&log.Traces[i]))
		}
	}
	return out
}

// TimeWindow keeps the traces whose first event falls in [from, to).
// Traces without timestamps are dropped.
func TimeWindow(log *eventlog.Log, from, to time.Time) *eventlog.Log {
	out := &eventlog.Log{Name: log.Name}
	for i := range log.Traces {
		tr := &log.Traces[i]
		if len(tr.Events) == 0 {
			continue
		}
		ts, ok := tr.Events[0].Timestamp()
		if !ok || ts.Before(from) || !ts.Before(to) {
			continue
		}
		out.Traces = append(out.Traces, cloneTrace(tr))
	}
	return out
}

// WhereTrace keeps traces for which pred returns true.
func WhereTrace(log *eventlog.Log, pred func(*eventlog.Trace) bool) *eventlog.Log {
	out := &eventlog.Log{Name: log.Name}
	for i := range log.Traces {
		if pred(&log.Traces[i]) {
			out.Traces = append(out.Traces, cloneTrace(&log.Traces[i]))
		}
	}
	return out
}

// HasAttrValue returns a trace predicate matching traces containing at
// least one event whose attribute equals the given (string) value.
func HasAttrValue(attr, value string) func(*eventlog.Trace) bool {
	return func(tr *eventlog.Trace) bool {
		for i := range tr.Events {
			if v, ok := tr.Events[i].Attrs[attr]; ok && v.AsString() == value {
				return true
			}
		}
		return false
	}
}

// ProjectClasses keeps only the events whose class is in the given set;
// traces that become empty are dropped.
func ProjectClasses(log *eventlog.Log, classes []string) *eventlog.Log {
	keep := make(map[string]bool, len(classes))
	for _, c := range classes {
		keep[c] = true
	}
	out := &eventlog.Log{Name: log.Name}
	for i := range log.Traces {
		src := &log.Traces[i]
		tr := eventlog.Trace{ID: src.ID}
		for j := range src.Events {
			if keep[src.Events[j].Class] {
				tr.Events = append(tr.Events, cloneEvent(&src.Events[j]))
			}
		}
		if len(tr.Events) > 0 {
			out.Traces = append(out.Traces, tr)
		}
	}
	return out
}

// DropClasses removes events of the given classes (the complement of
// ProjectClasses); traces that become empty are dropped.
func DropClasses(log *eventlog.Log, classes []string) *eventlog.Log {
	drop := make(map[string]bool, len(classes))
	for _, c := range classes {
		drop[c] = true
	}
	all := log.Classes()
	var keep []string
	for _, c := range all {
		if !drop[c] {
			keep = append(keep, c)
		}
	}
	return ProjectClasses(log, keep)
}

// Sample keeps each trace with probability p, deterministically per seed.
// The relative trace order is preserved.
func Sample(log *eventlog.Log, p float64, seed int64) *eventlog.Log {
	rng := rand.New(rand.NewSource(seed))
	out := &eventlog.Log{Name: log.Name}
	for i := range log.Traces {
		if rng.Float64() < p {
			out.Traces = append(out.Traces, cloneTrace(&log.Traces[i]))
		}
	}
	return out
}

// Head keeps the first n traces.
func Head(log *eventlog.Log, n int) *eventlog.Log {
	if n > len(log.Traces) {
		n = len(log.Traces)
	}
	out := &eventlog.Log{Name: log.Name}
	for i := 0; i < n; i++ {
		out.Traces = append(out.Traces, cloneTrace(&log.Traces[i]))
	}
	return out
}

func cloneTrace(tr *eventlog.Trace) eventlog.Trace {
	out := eventlog.Trace{ID: tr.ID, Events: make([]eventlog.Event, len(tr.Events))}
	for i := range tr.Events {
		out.Events[i] = cloneEvent(&tr.Events[i])
	}
	return out
}

func cloneEvent(e *eventlog.Event) eventlog.Event {
	out := eventlog.Event{Class: e.Class}
	if e.Attrs != nil {
		out.Attrs = make(map[string]eventlog.Value, len(e.Attrs))
		for k, v := range e.Attrs {
			out.Attrs[k] = v
		}
	}
	return out
}

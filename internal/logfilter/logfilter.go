// Package logfilter provides the standard event-log preprocessing
// operations applied before abstraction and discovery: variant-frequency
// filtering (the trace-level analogue of the paper's 80/20 DFG views),
// time-window and attribute slicing, class projection, and deterministic
// sampling. All functions consume and produce columnar eventlog.Index
// views — inputs are never mutated, and outputs are rebuilt through the
// sanctioned eventlog.Builder path so that downstream stages (sessions,
// discovery, conformance) operate on a first-class index, not a
// materialised pointer log. Cancelling ctx aborts a copy mid-trace and
// returns an error wrapping ctx.Err().
package logfilter

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"gecco/internal/eventlog"
)

// TopVariants keeps the traces belonging to the most frequent variants
// whose cumulative share of traces reaches fraction (e.g. 0.8 keeps the
// variants covering 80 % of traces). Ties are broken by variant string for
// determinism. fraction >= 1 returns a copy of the whole log.
func TopVariants(ctx context.Context, x *eventlog.Index, fraction float64) (*eventlog.Index, error) {
	type vc struct {
		variant string
		count   int
	}
	// Variants are keyed by their class-name string (exactly the legacy
	// Trace.Variant() text), so index variants that render identically
	// merge before ranking.
	counts := make(map[string]int, x.NumVariants())
	for v := 0; v < x.NumVariants(); v++ {
		counts[variantString(x, v)] += x.VariantCount[v]
	}
	ranked := make([]vc, 0, len(counts))
	for v, c := range counts {
		ranked = append(ranked, vc{v, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].variant < ranked[j].variant
	})
	keep := make(map[string]bool, len(ranked))
	cum := 0
	for _, r := range ranked {
		if float64(cum) >= fraction*float64(x.NumTraces()) {
			break
		}
		keep[r.variant] = true
		cum += r.count
	}
	return selectTraces(ctx, x, func(t int) bool {
		return keep[variantString(x, x.TraceVariant[t])]
	})
}

// MinVariantCount keeps traces whose variant occurs at least n times.
func MinVariantCount(ctx context.Context, x *eventlog.Index, n int) (*eventlog.Index, error) {
	counts := make(map[string]int, x.NumVariants())
	for v := 0; v < x.NumVariants(); v++ {
		counts[variantString(x, v)] += x.VariantCount[v]
	}
	return selectTraces(ctx, x, func(t int) bool {
		return counts[variantString(x, x.TraceVariant[t])] >= n
	})
}

// TimeWindow keeps the traces whose first event falls in [from, to).
// Traces without timestamps are dropped.
func TimeWindow(ctx context.Context, x *eventlog.Index, from, to time.Time) (*eventlog.Index, error) {
	col := x.Column(eventlog.AttrTimestamp)
	return selectTraces(ctx, x, func(t int) bool {
		if x.TraceLen(t) == 0 || col == nil {
			return false
		}
		ts, ok := col.Time(x.TraceStart(t))
		return ok && !ts.Before(from) && ts.Before(to)
	})
}

// WhereTrace keeps traces for which pred returns true; pred receives the
// index and a trace position.
func WhereTrace(ctx context.Context, x *eventlog.Index, pred func(x *eventlog.Index, t int) bool) (*eventlog.Index, error) {
	return selectTraces(ctx, x, func(t int) bool { return pred(x, t) })
}

// HasAttrValue returns a trace predicate matching traces containing at
// least one event whose attribute equals the given (string) value.
func HasAttrValue(attr, value string) func(*eventlog.Index, int) bool {
	return func(x *eventlog.Index, t int) bool {
		col := x.Column(attr)
		if col == nil {
			return false
		}
		start, n := x.TraceStart(t), x.TraceLen(t)
		for pos := start; pos < start+n; pos++ {
			if k, ok := col.Key(pos); ok && k == value {
				return true
			}
		}
		return false
	}
}

// ProjectClasses keeps only the events whose class is in the given set;
// traces that become empty are dropped.
func ProjectClasses(ctx context.Context, x *eventlog.Index, classes []string) (*eventlog.Index, error) {
	keep := make([]bool, x.NumClasses())
	for _, name := range classes {
		if c, ok := x.ClassID[name]; ok {
			keep[c] = true
		}
	}
	return copyLog(ctx, x, func(t int) bool { return true }, keep)
}

// DropClasses removes events of the given classes (the complement of
// ProjectClasses); traces that become empty are dropped.
func DropClasses(ctx context.Context, x *eventlog.Index, classes []string) (*eventlog.Index, error) {
	keep := make([]bool, x.NumClasses())
	for i := range keep {
		keep[i] = true
	}
	for _, name := range classes {
		if c, ok := x.ClassID[name]; ok {
			keep[c] = false
		}
	}
	return copyLog(ctx, x, func(t int) bool { return true }, keep)
}

// Sample keeps each trace with probability p, deterministically per seed.
// The relative trace order is preserved.
func Sample(ctx context.Context, x *eventlog.Index, p float64, seed int64) (*eventlog.Index, error) {
	rng := rand.New(rand.NewSource(seed))
	// The RNG is consumed once per trace in order, exactly like the legacy
	// implementation, so a given (log, p, seed) keeps the same traces.
	kept := make([]bool, x.NumTraces())
	for t := range kept {
		kept[t] = rng.Float64() < p
	}
	return selectTraces(ctx, x, func(t int) bool { return kept[t] })
}

// Head keeps the first n traces.
func Head(ctx context.Context, x *eventlog.Index, n int) (*eventlog.Index, error) {
	return selectTraces(ctx, x, func(t int) bool { return t < n })
}

// variantString renders variant v as its comma-joined class-name sequence
// (the legacy Trace.Variant() text).
func variantString(x *eventlog.Index, v int) string {
	seq := x.VariantSeq(v)
	names := make([]string, len(seq))
	for i, c := range seq {
		names[i] = x.Classes[c]
	}
	return strings.Join(names, ",")
}

// selectTraces rebuilds the index keeping the traces selected by keep, in
// original order, with all classes.
func selectTraces(ctx context.Context, x *eventlog.Index, keep func(t int) bool) (*eventlog.Index, error) {
	return copyLog(ctx, x, keep, nil)
}

// copyLog is the shared filter kernel: it streams the selected traces (and,
// when keepClass is non-nil, only events of the kept classes — traces that
// become empty are dropped) through an eventlog.Builder, carrying over log,
// trace and event attributes. Event attributes are copied per column in the
// source column order, so repeated filtering is deterministic.
func copyLog(ctx context.Context, x *eventlog.Index, keep func(t int) bool, keepClass []bool) (*eventlog.Index, error) {
	b := eventlog.NewBuilder()
	b.SetName(x.Name)
	copyAttrs(x.LogAttrs(), b.SetLogAttr)
	cols := x.Columns()
	for t := 0; t < x.NumTraces(); t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("logfilter: %w", err)
		}
		if !keep(t) {
			continue
		}
		seq := x.Seq(t)
		if keepClass != nil && !anyKept(seq, keepClass) {
			continue
		}
		b.StartTrace(x.TraceID(t))
		copyAttrs(x.TraceAttrs(t), b.SetTraceAttr)
		start := x.TraceStart(t)
		for j, c := range seq {
			if keepClass != nil && !keepClass[c] {
				continue
			}
			b.AddEvent(x.Classes[c])
			for _, col := range cols {
				if v, ok := col.Value(start + j); ok {
					b.SetEventAttr(col.Name(), v)
				}
			}
		}
	}
	return b.Build(), nil
}

// anyKept reports whether the sequence contains at least one kept class.
//
//gecco:hotpath
func anyKept(seq []uint32, keepClass []bool) bool {
	for _, c := range seq {
		if keepClass[c] {
			return true
		}
	}
	return false
}

// copyAttrs feeds the attribute map into a builder setter in sorted name
// order, so rebuilt indexes are deterministic.
func copyAttrs(attrs map[string]eventlog.Value, set func(string, eventlog.Value)) {
	if len(attrs) == 0 {
		return
	}
	names := make([]string, 0, len(attrs))
	for k := range attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		set(k, attrs[k])
	}
}

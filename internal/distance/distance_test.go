package distance

import (
	"math"
	"testing"
	"testing/quick"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

func group(x *eventlog.Index, names ...string) bitset.Set {
	g, unknown := x.GroupFromNames(names)
	if len(unknown) > 0 {
		panic("unknown classes in test group")
	}
	return g
}

// Golden values for the running example (Table I), hand-derived from Eq. 1
// and matching the paper's optimal total of 3.08 (Figure 7).
func TestRunningExampleGroupDistances(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	c := NewCalc(x, instances.SplitOnRepeat)

	cases := []struct {
		names []string
		want  float64
	}{
		// 5 instances, each: 0 interrupts + 1 missing/3 + 1/3 = 2/3.
		{[]string{procgen.RCP, procgen.CKC, procgen.CKT}, 2.0 / 3.0},
		// σ1, σ2, σ4 complete (1/3 each), σ3 misses prio (2/3).
		{[]string{procgen.PRIO, procgen.INF, procgen.ARV}, (3*(1.0/3.0) + 2.0/3.0) / 4},
		// Singletons always score exactly 1 (perfect cohesion/correlation).
		{[]string{procgen.ACC}, 1},
		{[]string{procgen.REJ}, 1},
	}
	for _, tc := range cases {
		got := c.Group(group(x, tc.names...))
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("dist(%v) = %.6f, want %.6f", tc.names, got, tc.want)
		}
	}
}

// The paper's Figure 7: the optimal grouping has total distance 3.08.
func TestRunningExampleOptimalTotal(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	c := NewCalc(x, instances.SplitOnRepeat)
	groups := []bitset.Set{
		group(x, procgen.RCP, procgen.CKC, procgen.CKT),
		group(x, procgen.PRIO, procgen.INF, procgen.ARV),
		group(x, procgen.ACC),
		group(x, procgen.REJ),
	}
	got := c.Grouping(groups)
	if math.Abs(got-3.0833333333) > 1e-6 {
		t.Fatalf("total distance = %.6f, want 3.0833 (paper: 3.08)", got)
	}
}

func TestNeverOccurringGroupIsInfinite(t *testing.T) {
	// acc and rej are exclusive: never co-occur... except σ4 contains both!
	// Use a log where two classes truly never co-occur.
	log := &eventlog.Log{Traces: []eventlog.Trace{
		{ID: "1", Events: []eventlog.Event{{Class: "a"}, {Class: "b"}}},
		{ID: "2", Events: []eventlog.Event{{Class: "a"}, {Class: "c"}}},
	}}
	x := eventlog.NewIndex(log)
	c := NewCalc(x, instances.SplitOnRepeat)
	// {b, c} never co-occur but each occurs: distance is finite (instances
	// exist per trace); an empty-instance group needs a class that never
	// occurs at all, which the index cannot represent. Verify {b,c} is
	// finite and interruption-free instead.
	d := c.Group(group(x, "b", "c"))
	if math.IsInf(d, 1) {
		t.Fatal("exclusive-but-occurring group should have finite distance")
	}
	// Each instance: 1 event, 1 missing of 2, plus 1/2 → (0 + 1/2 + 1/2) = 1.
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("dist({b,c}) = %.4f, want 1", d)
	}
}

func TestInterruptedGroupScoresWorse(t *testing.T) {
	log := &eventlog.Log{Traces: []eventlog.Trace{
		{ID: "1", Events: []eventlog.Event{{Class: "a"}, {Class: "x"}, {Class: "b"}}},
		{ID: "2", Events: []eventlog.Event{{Class: "c"}, {Class: "d"}, {Class: "y"}}},
	}}
	x := eventlog.NewIndex(log)
	c := NewCalc(x, instances.SplitOnRepeat)
	interrupted := c.Group(group(x, "a", "b")) // a x b: one interruption
	adjacent := c.Group(group(x, "c", "d"))    // c d: none
	if interrupted <= adjacent {
		t.Fatalf("interrupted %f should exceed adjacent %f", interrupted, adjacent)
	}
}

func TestCacheConsistency(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	c := NewCalc(x, instances.SplitOnRepeat)
	g := group(x, procgen.RCP, procgen.CKC)
	d1 := c.Group(g)
	d2 := c.Group(g)
	if d1 != d2 {
		t.Fatal("cached distance differs")
	}
	if c.Evals() != 1 {
		t.Fatalf("Evals = %d, want 1 (memoised)", c.Evals())
	}
}

// Property: distance is strictly positive and finite for occurring groups,
// over random groups of the simulated running example.
func TestQuickDistancePositive(t *testing.T) {
	log := procgen.RunningExample(150, 11)
	x := eventlog.NewIndex(log)
	c := NewCalc(x, instances.SplitOnRepeat)
	n := x.NumClasses()
	f := func(mask uint16) bool {
		g := bitset.New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				g.Add(i)
			}
		}
		if g.IsEmpty() {
			return true
		}
		d := c.Group(g)
		if x.Occurs(g) {
			return d > 0 && !math.IsInf(d, 1)
		}
		return d > 0 // may be +Inf when the classes never co-occur
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: singleton groups always have distance exactly 1.
func TestQuickSingletonDistanceIsOne(t *testing.T) {
	log := procgen.RunningExample(100, 13)
	x := eventlog.NewIndex(log)
	c := NewCalc(x, instances.SplitOnRepeat)
	for i := 0; i < x.NumClasses(); i++ {
		g := bitset.New(x.NumClasses())
		g.Add(i)
		if d := c.Group(g); math.Abs(d-1) > 1e-12 {
			t.Fatalf("singleton %q distance %f, want 1", x.Classes[i], d)
		}
	}
}

// The variant-compacted computation must agree exactly with a naive
// per-trace evaluation of Eq. 1.
func TestVariantCompactionMatchesNaive(t *testing.T) {
	log := procgen.RunningExample(400, 51)
	x := eventlog.NewIndex(log)
	c := NewCalc(x, instances.SplitOnRepeat)
	naive := func(g bitset.Set) float64 {
		insts := instances.OfLog(x, g, instances.SplitOnRepeat)
		if len(insts) == 0 {
			return math.Inf(1)
		}
		size := float64(g.Len())
		sum := 0.0
		for i := range insts {
			inst := &insts[i]
			sum += float64(instances.Interrupts(inst)) / float64(inst.Len())
			sum += float64(instances.Missing(x, inst, g)) / size
			sum += 1 / size
		}
		return sum / float64(len(insts))
	}
	n := x.NumClasses()
	for mask := 1; mask < 1<<n; mask += 7 { // sampled subsets
		g := bitset.New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				g.Add(i)
			}
		}
		want := naive(g)
		got := c.Group(g)
		if math.IsInf(want, 1) != math.IsInf(got, 1) {
			t.Fatalf("mask %b: inf mismatch", mask)
		}
		if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
			t.Fatalf("mask %b: variant %.12f vs naive %.12f", mask, got, want)
		}
	}
}

// Package distance implements GECCO's distance measure (§IV-B, Eq. 1 and 2):
// a per-group score combining cohesion (few interruptions by foreign
// events), correlation (few missing classes per instance), and a unary-group
// penalty, averaged over the group's instances. Lower is better.
package distance

import (
	"math"
	"sync/atomic"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/par"
)

// parallelVariantThreshold is the minimum number of distinct variants before
// a single Eq. 1 evaluation fans its per-variant loop out to the workers;
// below it the goroutine handoff costs more than the scan.
const parallelVariantThreshold = 256

// Calc computes and memoises group distances over one indexed log. It is
// safe for concurrent use: the memo is sharded with per-shard locks and each
// group is evaluated exactly once, so the evaluation count — and, because
// Eq. 1 itself is deterministic, every memoised value — is identical between
// sequential and parallel runs.
type Calc struct {
	X       *eventlog.Index
	Policy  instances.Policy
	workers int
	cache   *par.Memo[float64]
	evals   atomic.Int64
}

// NewCalc builds a distance calculator for the log. It evaluates Eq. 1
// sequentially; use SetWorkers to parallelise the per-variant loop on large
// logs.
func NewCalc(x *eventlog.Index, policy instances.Policy) *Calc {
	return &Calc{X: x, Policy: policy, workers: 1, cache: par.NewMemo[float64]()}
}

// SetWorkers sets the number of workers a single Eq. 1 evaluation may fan
// out to (<= 0 means one per CPU). Call before sharing the Calc across
// goroutines.
func (c *Calc) SetWorkers(n int) { c.workers = par.Workers(n) }

// Evals reports the number of non-memoised group evaluations (the runtime
// accounting of §VI).
func (c *Calc) Evals() int { return int(c.evals.Load()) }

// MemoLen reports the number of memoised group distances. Long-lived
// holders (a serving session on a hot log) use it to bound memo growth.
func (c *Calc) MemoLen() int { return c.cache.Len() }

// Group computes dist(g, L) per Eq. 1. Groups with no instances in the log
// (which only arise for never-occurring class combinations) score +Inf.
//
//gecco:hotpath
func (c *Calc) Group(g bitset.Set) float64 {
	return c.cache.Do(g.Key(), func() float64 {
		c.evals.Add(1)
		return c.compute(g)
	})
}

// compute evaluates Eq. 1 over the log's distinct variants, weighting each
// by its trace multiplicity: the measure depends only on class sequences,
// so identical traces need not be re-segmented. Each variant's contribution
// is accumulated locally and the subtotals are reduced in variant order, so
// the floating-point result is bit-identical no matter how many workers
// evaluate the variants.
//
//gecco:hotpath
func (c *Calc) compute(g bitset.Set) float64 {
	nv := c.X.NumVariants()
	sum := 0.0
	numInsts := 0
	if c.workers > 1 && nv >= parallelVariantThreshold {
		sums := make([]float64, nv)
		counts := make([]int, nv)
		par.For(c.workers, nv, func(v int) {
			sums[v], counts[v] = c.variantTerm(g, v)
		})
		for v := 0; v < nv; v++ {
			sum += sums[v]
			numInsts += counts[v]
		}
	} else {
		for v := 0; v < nv; v++ {
			s, n := c.variantTerm(g, v)
			sum += s
			numInsts += n
		}
	}
	if numInsts == 0 {
		return math.Inf(1)
	}
	return sum / float64(numInsts)
}

// variantTerm evaluates the Eq. 1 summand of one variant: the weighted sum
// over the variant's group instances and the number of instances
// contributed (times the variant's trace multiplicity). The distinct-class
// count per segment uses a bitset scratch cleared between segments instead
// of a per-segment map: class ids are dense in [0, NumClasses), and the
// scratch is local to the call so concurrent variants never share it.
//
//gecco:hotpath
func (c *Calc) variantTerm(g bitset.Set, v int) (sum float64, numInsts int) {
	if !c.X.VariantClasses[v].Intersects(g) {
		return 0, 0
	}
	seq := c.X.VariantSeq(v)
	size := float64(g.Len())
	weight := float64(c.X.VariantCount[v])
	seen := bitset.New(c.X.NumClasses())
	for _, positions := range instances.Segments(seq, c.X.NumClasses(), g, c.Policy) {
		first, last := positions[0], positions[len(positions)-1]
		interrupts := (last - first + 1) - len(positions)
		present := 0
		for _, pos := range positions {
			if cls := int(seq[pos]); !seen.Contains(cls) {
				seen.Add(cls)
				present++
			}
		}
		for _, pos := range positions {
			seen.Remove(int(seq[pos]))
		}
		missing := g.Len() - present
		sum += weight * (float64(interrupts)/float64(len(positions)) + float64(missing)/size + 1/size)
		numInsts += c.X.VariantCount[v]
	}
	return sum, numInsts
}

// Grouping computes dist(G, L) per Eq. 2: the sum over all groups.
func (c *Calc) Grouping(groups []bitset.Set) float64 {
	total := 0.0
	for _, g := range groups {
		total += c.Group(g)
	}
	return total
}

// Package distance implements GECCO's distance measure (§IV-B, Eq. 1 and 2):
// a per-group score combining cohesion (few interruptions by foreign
// events), correlation (few missing classes per instance), and a unary-group
// penalty, averaged over the group's instances. Lower is better.
package distance

import (
	"math"
	"sync"
	"sync/atomic"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/par"
)

// parallelVariantThreshold is the minimum number of distinct variants before
// a single Eq. 1 evaluation fans its per-variant loop out to the workers;
// below it the goroutine handoff costs more than the scan.
const parallelVariantThreshold = 256

// Calc computes and memoises group distances over one indexed log. It is
// safe for concurrent use: the memo is sharded with per-shard locks and each
// group is evaluated exactly once, so the evaluation count — and, because
// Eq. 1 itself is deterministic, every memoised value — is identical between
// sequential and parallel runs.
type Calc struct {
	X       *eventlog.Index
	Policy  instances.Policy
	workers int
	cache   *par.Memo[float64]
	lbCache *par.Memo[float64]
	lbPad   float64
	occOnce sync.Once
	occ     []int32   // per-variant class occurrence counts (see buildOcc)
	scratch sync.Pool // *vtScratch, one per concurrent variantTerm
	evals   atomic.Int64
	pruned  atomic.Int64
}

// vtScratch holds one variant evaluation's segmentation state: the classes
// of the instance under construction, reset member-by-member between
// segments.
type vtScratch struct {
	seen     bitset.Set
	seenList []int
}

// NewCalc builds a distance calculator for the log. It evaluates Eq. 1
// sequentially; use SetWorkers to parallelise the per-variant loop on large
// logs.
func NewCalc(x *eventlog.Index, policy instances.Policy) *Calc {
	c := &Calc{
		X:       x,
		Policy:  policy,
		workers: 1,
		cache:   par.NewMemo[float64](),
		lbCache: par.NewMemo[float64](),
		// Shaving the lower bound by this relative margin keeps it admissible
		// through the float accumulation of Eq. 1's weighted mean (one term
		// per instance, bounded by the event count): the true rounding error
		// is below terms·2⁻⁵², the pad ~100x that.
		lbPad: (float64(x.NumEvents()) + 4) * 1e-14,
	}
	c.scratch.New = func() any {
		return &vtScratch{seen: bitset.New(x.NumClasses())}
	}
	return c
}

// SetWorkers sets the number of workers a single Eq. 1 evaluation may fan
// out to (<= 0 means one per CPU). Call before sharing the Calc across
// goroutines.
func (c *Calc) SetWorkers(n int) { c.workers = par.Workers(n) }

// Evals reports the number of non-memoised group evaluations (the runtime
// accounting of §VI).
func (c *Calc) Evals() int { return int(c.evals.Load()) }

// MemoLen reports the number of memoised group distances. Long-lived
// holders (a serving session on a hot log) use it to bound memo growth.
func (c *Calc) MemoLen() int { return c.cache.Len() }

// LBPruned reports how many frontier nodes were pruned by the admissible
// lower bound without an exact Eq. 1 evaluation (see GroupLB).
func (c *Calc) LBPruned() int { return int(c.pruned.Load()) }

// NotePruned records n frontier nodes pruned via GroupLB bounds.
func (c *Calc) NotePruned(n int) { c.pruned.Add(int64(n)) }

// GroupLB returns an admissible lower bound on Group(g): GroupLB(g) <=
// Group(g) always, computed without segmenting a single trace. Dropping
// Eq. 1's non-negative interrupts term leaves the average missing mass:
//
//	dist(g) >= 1 + 1/|g| - S/(N·|g|)
//
// where S is the weighted total of group events across instances and N the
// weighted instance count. S is exact from per-variant class occurrence
// counts (instances partition the projection). N is unknown without
// segmenting, but under split-on-repeat each instance contains a class at
// most once, so variant v hosts at least K_v = max occurrences of any
// g-class instances; the bound is increasing in N, so substituting
// N_min = Σ w_v·K_v <= N keeps it admissible. Under whole-trace N is exact
// (one instance per trace) and the missing term uses the distinct
// co-occurrence count |classes(v) ∩ g| directly.
//
// Two weaker bounds are deliberately NOT used. The singleton-sum bound
// (Σ dist({c})) is inadmissible: dist({c}) = 1 for every occurring
// singleton, while a perfectly correlated pair already scores 0.5. And the
// min-over-variants bound ((minMissing+1)/|g|) — admissible — is useless
// inside Algorithm 2: the beam retains only groups whose classes co-occur
// in some trace (line 29's Occurs filter), so minMissing is 0 for every
// frontier path and the bound degenerates to the uniform 1/|g|. The
// average-based bound above separates occurring groups by how much of the
// log hosts them only partially.
//
// Groups intersecting no variant score +Inf, matching Group. Bounds are
// memoised, and a group whose exact distance is already cached returns that
// instead (the exact value is its own tightest admissible bound).
//
//gecco:hotpath
func (c *Calc) GroupLB(g bitset.Set) float64 {
	key := g.Key()
	if v, ok := c.cache.Get(key); ok {
		return v
	}
	return c.lbCache.Do(key, func() float64 {
		size := float64(g.Len())
		var events, insts int64
		if c.Policy == instances.WholeTrace {
			for v := 0; v < c.X.NumVariants(); v++ {
				a := g.AndCount(c.X.VariantClasses[v])
				if a == 0 {
					continue
				}
				w := int64(c.X.VariantCount[v])
				events += w * int64(a)
				insts += w
			}
		} else {
			c.buildOcc()
			nc := c.X.NumClasses()
			elems := g.Elems()
			for v := 0; v < c.X.NumVariants(); v++ {
				row := c.occ[v*nc : (v+1)*nc]
				var n, k int32
				for _, cl := range elems {
					o := row[cl]
					n += o
					if o > k {
						k = o
					}
				}
				if k == 0 {
					continue
				}
				w := int64(c.X.VariantCount[v])
				events += w * int64(n)
				insts += w * int64(k)
			}
		}
		if insts == 0 {
			return math.Inf(1) // no variant hosts g: Group(g) is +Inf too
		}
		lb := 1 + 1/size - float64(events)/(float64(insts)*size)
		// Shave by lbPad so the bound stays below the float-rounded weighted
		// mean of per-instance terms even when every term equals the bound.
		return lb * (1 - c.lbPad)
	})
}

// buildOcc lazily materialises the per-variant class occurrence matrix
// (variants × classes, row-major) backing the split-on-repeat lower bound.
// One pass over the variant sequences; a few MB on the richest logs.
func (c *Calc) buildOcc() {
	c.occOnce.Do(func() {
		nc := c.X.NumClasses()
		nv := c.X.NumVariants()
		occ := make([]int32, nv*nc)
		for v := 0; v < nv; v++ {
			row := occ[v*nc : (v+1)*nc]
			for _, cid := range c.X.VariantSeq(v) {
				row[cid]++
			}
		}
		c.occ = occ
	})
}

// Group computes dist(g, L) per Eq. 1. Groups with no instances in the log
// (which only arise for never-occurring class combinations) score +Inf.
//
//gecco:hotpath
func (c *Calc) Group(g bitset.Set) float64 {
	return c.cache.Do(g.Key(), func() float64 {
		c.evals.Add(1)
		return c.compute(g)
	})
}

// compute evaluates Eq. 1 over the log's distinct variants, weighting each
// by its trace multiplicity: the measure depends only on class sequences,
// so identical traces need not be re-segmented. Each variant's contribution
// is accumulated locally and the subtotals are reduced in variant order, so
// the floating-point result is bit-identical no matter how many workers
// evaluate the variants.
//
//gecco:hotpath
func (c *Calc) compute(g bitset.Set) float64 {
	nv := c.X.NumVariants()
	sum := 0.0
	numInsts := 0
	if c.workers > 1 && nv >= parallelVariantThreshold {
		sums := make([]float64, nv)
		counts := make([]int, nv)
		par.For(c.workers, nv, func(v int) {
			sums[v], counts[v] = c.variantTerm(g, v)
		})
		for v := 0; v < nv; v++ {
			sum += sums[v]
			numInsts += counts[v]
		}
	} else {
		for v := 0; v < nv; v++ {
			s, n := c.variantTerm(g, v)
			sum += s
			numInsts += n
		}
	}
	if numInsts == 0 {
		return math.Inf(1)
	}
	return sum / float64(numInsts)
}

// variantTerm evaluates the Eq. 1 summand of one variant: the weighted sum
// over the variant's group instances and the number of instances
// contributed (times the variant's trace multiplicity). Segmentation is
// streamed — first/last/count per instance tracked inline, no position
// slices materialised — with a pooled class-scratch bitset reset
// member-by-member. Under split-on-repeat every class occurs at most once
// per instance, so the distinct-class count equals the event count; under
// whole-trace the single instance's distinct count is the word-parallel
// |classes(v) ∩ g|. Terms accumulate in segment order with the exact
// arithmetic of the materialised implementation, so results stay
// bit-identical.
//
//gecco:hotpath
func (c *Calc) variantTerm(g bitset.Set, v int) (sum float64, numInsts int) {
	vc := c.X.VariantClasses[v]
	if !vc.Intersects(g) {
		return 0, 0
	}
	seq := c.X.VariantSeq(v)
	gl := g.Len()
	size := float64(gl)
	wcount := c.X.VariantCount[v]
	weight := float64(wcount)

	if c.Policy == instances.WholeTrace {
		// One instance: the whole projection.
		first, last, count := 0, 0, 0
		for pos, cid := range seq {
			if g.Contains(int(cid)) {
				if count == 0 {
					first = pos
				}
				last = pos
				count++
			}
		}
		interrupts := (last - first + 1) - count
		missing := gl - g.AndCount(vc)
		sum = weight * (float64(interrupts)/float64(count) + float64(missing)/size + 1/size)
		return sum, wcount
	}

	s := c.scratch.Get().(*vtScratch)
	first, last, count := 0, 0, 0
	for pos, cid := range seq {
		cl := int(cid)
		if !g.Contains(cl) {
			continue
		}
		if s.seen.Contains(cl) {
			// Class repeats: close the instance under construction.
			interrupts := (last - first + 1) - count
			missing := gl - count
			sum += weight * (float64(interrupts)/float64(count) + float64(missing)/size + 1/size)
			numInsts += wcount
			count = 0
			for _, sc := range s.seenList {
				s.seen.Remove(sc)
			}
			s.seenList = s.seenList[:0]
		}
		s.seen.Add(cl)
		s.seenList = append(s.seenList, cl)
		if count == 0 {
			first = pos
		}
		last = pos
		count++
	}
	if count > 0 {
		interrupts := (last - first + 1) - count
		missing := gl - count
		sum += weight * (float64(interrupts)/float64(count) + float64(missing)/size + 1/size)
		numInsts += wcount
	}
	for _, sc := range s.seenList {
		s.seen.Remove(sc)
	}
	s.seenList = s.seenList[:0]
	c.scratch.Put(s)
	return sum, numInsts
}

// Grouping computes dist(G, L) per Eq. 2: the sum over all groups.
func (c *Calc) Grouping(groups []bitset.Set) float64 {
	total := 0.0
	for _, g := range groups {
		total += c.Group(g)
	}
	return total
}

// Package distance implements GECCO's distance measure (§IV-B, Eq. 1 and 2):
// a per-group score combining cohesion (few interruptions by foreign
// events), correlation (few missing classes per instance), and a unary-group
// penalty, averaged over the group's instances. Lower is better.
package distance

import (
	"math"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Calc computes and memoises group distances over one indexed log.
type Calc struct {
	X      *eventlog.Index
	Policy instances.Policy
	cache  map[string]float64

	// Evals counts non-memoised group evaluations (runtime accounting).
	Evals int
}

// NewCalc builds a distance calculator for the log.
func NewCalc(x *eventlog.Index, policy instances.Policy) *Calc {
	return &Calc{X: x, Policy: policy, cache: make(map[string]float64)}
}

// Group computes dist(g, L) per Eq. 1. Groups with no instances in the log
// (which only arise for never-occurring class combinations) score +Inf.
func (c *Calc) Group(g bitset.Set) float64 {
	key := g.Key()
	if v, ok := c.cache[key]; ok {
		return v
	}
	c.Evals++
	v := c.compute(g)
	c.cache[key] = v
	return v
}

// compute evaluates Eq. 1 over the log's distinct variants, weighting each
// by its trace multiplicity: the measure depends only on class sequences,
// so identical traces need not be re-segmented.
func (c *Calc) compute(g bitset.Set) float64 {
	size := float64(g.Len())
	sum := 0.0
	numInsts := 0
	nClasses := c.X.NumClasses()
	for v, seq := range c.X.VariantSeqs {
		if !c.X.VariantClasses[v].Intersects(g) {
			continue
		}
		weight := float64(c.X.VariantCount[v])
		for _, positions := range instances.Segments(seq, nClasses, g, c.Policy) {
			first, last := positions[0], positions[len(positions)-1]
			interrupts := (last - first + 1) - len(positions)
			present := 0
			seen := make(map[int]struct{}, len(positions))
			for _, pos := range positions {
				if _, ok := seen[seq[pos]]; !ok {
					seen[seq[pos]] = struct{}{}
					present++
				}
			}
			missing := g.Len() - present
			sum += weight * (float64(interrupts)/float64(len(positions)) + float64(missing)/size + 1/size)
			numInsts += c.X.VariantCount[v]
		}
	}
	if numInsts == 0 {
		return math.Inf(1)
	}
	return sum / float64(numInsts)
}

// Grouping computes dist(G, L) per Eq. 2: the sum over all groups.
func (c *Calc) Grouping(groups []bitset.Set) float64 {
	total := 0.0
	for _, g := range groups {
		total += c.Group(g)
	}
	return total
}

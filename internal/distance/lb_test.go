package distance

import (
	"math"
	"math/rand"
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

// GroupLB must be admissible: GroupLB(g) <= Group(g) for every group, under
// both policies, including the float-rounding edge where every instance term
// equals the bound (the lbPad shave covers it). Random subsets of the
// simulated running-example log exercise complete, partial, and
// never-occurring groups.
func TestGroupLBAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, seed := range []int64{1, 7, 42} {
		x := eventlog.NewIndex(procgen.RunningExample(120, seed))
		for _, pol := range []instances.Policy{instances.SplitOnRepeat, instances.WholeTrace} {
			c := NewCalc(x, pol)
			checked := 0
			for i := 0; i < 400; i++ {
				g := bitset.New(x.NumClasses())
				for cl := 0; cl < x.NumClasses(); cl++ {
					if r.Intn(3) == 0 {
						g.Add(cl)
					}
				}
				if g.IsEmpty() {
					continue
				}
				lb := c.GroupLB(g)
				d := c.Group(g)
				if math.IsInf(d, 1) {
					if !math.IsInf(lb, 1) {
						t.Fatalf("policy %v group %v: exact is +Inf but LB = %v", pol, g, lb)
					}
					continue
				}
				if lb > d {
					t.Fatalf("policy %v group %v: LB %v exceeds exact distance %v — bound inadmissible", pol, g, lb, d)
				}
				// Once the exact value is memoised, the bound tightens to it.
				if after := c.GroupLB(g); after != d {
					t.Fatalf("policy %v group %v: LB after exact eval = %v, want the cached exact %v", pol, g, after, d)
				}
				checked++
			}
			if checked == 0 {
				t.Fatal("no finite groups checked")
			}
		}
	}
}

// Singletons make the bound tight before any exact evaluation: one class
// occurring in some variant misses nothing, so LB = (0 + 1)/1 shaved by the
// pad, and the exact distance is exactly 1.
func TestGroupLBSingletonNearTight(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	c := NewCalc(x, instances.SplitOnRepeat)
	g := bitset.New(x.NumClasses())
	g.Add(0)
	lb := c.GroupLB(g)
	if lb > 1 || lb < 1-1e-9 {
		t.Fatalf("singleton LB = %v, want just below 1", lb)
	}
	if d := c.Group(g); lb > d {
		t.Fatalf("singleton LB %v exceeds exact %v", lb, d)
	}
}

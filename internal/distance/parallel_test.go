package distance

import (
	"fmt"
	"runtime"
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/par"
	"gecco/internal/procgen"
)

// manyVariantLog builds a log with enough distinct variants to cross the
// parallel per-variant threshold.
func manyVariantLog(nVariants int) *eventlog.Log {
	classes := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	log := &eventlog.Log{Name: "many-variants"}
	for i := 0; i < nVariants; i++ {
		var tr eventlog.Trace
		tr.ID = fmt.Sprintf("t%d", i)
		// Spell out i in base 8 as class indices: every trace is its own
		// variant by construction.
		for v := i; ; v /= len(classes) {
			tr.Events = append(tr.Events, eventlog.Event{Class: classes[v%len(classes)]})
			if v < len(classes) {
				break
			}
		}
		tr.Events = append(tr.Events, eventlog.Event{Class: classes[i%len(classes)]})
		log.Traces = append(log.Traces, tr)
	}
	return log
}

// TestParallelVariantLoopBitIdentical asserts that fanning the Eq. 1
// per-variant loop out to workers yields bit-identical distances: both
// paths reduce per-variant subtotals in variant order.
func TestParallelVariantLoopBitIdentical(t *testing.T) {
	log := manyVariantLog(4 * parallelVariantThreshold)
	x := eventlog.NewIndex(log)
	if x.NumVariants() < parallelVariantThreshold {
		t.Fatalf("fixture has %d variants, need >= %d", x.NumVariants(), parallelVariantThreshold)
	}
	seq := NewCalc(x, instances.SplitOnRepeat)
	parc := NewCalc(x, instances.SplitOnRepeat)
	parc.SetWorkers(runtime.NumCPU())
	n := x.NumClasses()
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			g := bitset.New(n)
			g.Add(a)
			g.Add(b)
			ds, dp := seq.Group(g), parc.Group(g)
			if ds != dp {
				t.Fatalf("group %v: sequential %v != parallel %v", g, ds, dp)
			}
		}
	}
}

// TestCalcConcurrentUse hammers one Calc from many goroutines (run under
// -race); the sharded memo must serve every caller the same value and count
// each unique group exactly once.
func TestCalcConcurrentUse(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExample(80, 5))
	c := NewCalc(x, instances.SplitOnRepeat)
	ref := NewCalc(x, instances.SplitOnRepeat)
	n := x.NumClasses()
	groups := make([]bitset.Set, 0, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			g := bitset.New(n)
			g.Add(a)
			g.Add(b)
			groups = append(groups, g)
		}
	}
	// Each distinct group appears n times in the work list (a,b and b,a
	// collide plus diagonal repeats); evaluate them all concurrently.
	par.For(8, len(groups), func(i int) {
		got := c.Group(groups[i])
		if rv := ref.Group(groups[i]); got != rv {
			t.Errorf("group %v: concurrent %v != reference %v", groups[i], got, rv)
		}
	})
	unique := make(map[string]struct{})
	for _, g := range groups {
		unique[g.Key()] = struct{}{}
	}
	if c.Evals() != len(unique) {
		t.Fatalf("Evals = %d, want %d (exactly once per unique group)", c.Evals(), len(unique))
	}
}

package constraints

import (
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/par"
	"gecco/internal/procgen"
)

// TestEvaluatorConcurrentUse hammers one Evaluator from many goroutines
// (run under -race): verdicts must match a sequential reference evaluator
// and the memo must count each unique group exactly once, including the
// class-attribute cache behind distinct(role).
func TestEvaluatorConcurrentUse(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExample(60, 3))
	set := NewSet(
		MustParse("|g| <= 4"),
		MustParse("distinct(role) <= 1"),
		MustParse("sum(duration) >= 0"),
	)
	ev := NewEvaluator(x, set, instances.SplitOnRepeat)
	ref := NewEvaluator(x, set, instances.SplitOnRepeat)

	n := x.NumClasses()
	var groups []bitset.Set
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			g := bitset.New(n)
			g.Add(a)
			g.Add(b)
			groups = append(groups, g)
		}
	}
	want := make([]bool, len(groups))
	wantAnti := make([]bool, len(groups))
	for i, g := range groups {
		want[i] = ref.Holds(g)
		wantAnti[i] = ref.HoldsAnti(g)
	}
	par.For(8, len(groups), func(i int) {
		if got := ev.Holds(groups[i]); got != want[i] {
			t.Errorf("Holds(%v) = %v, want %v", groups[i], got, want[i])
		}
		if got := ev.HoldsAnti(groups[i]); got != wantAnti[i] {
			t.Errorf("HoldsAnti(%v) = %v, want %v", groups[i], got, wantAnti[i])
		}
	})
	if ev.Checks() != ref.Checks() {
		t.Fatalf("Checks = %d, want %d (exactly once per unique group)", ev.Checks(), ref.Checks())
	}
	if ev.LogPasses() != ref.LogPasses() {
		t.Fatalf("LogPasses = %d, want %d", ev.LogPasses(), ref.LogPasses())
	}
}

package constraints

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Screens must be *exact*: whenever Screen returns Holds or Fails, the
// verdict must equal the naive per-event evaluation (OfLog + HoldsInstances)
// — including its floating-point behaviour. This property test drives every
// screened constraint type over random indexes with mixed-kind columns
// (numeric values interleaved with strings on the same attribute), missing
// values, negative numbers, non-monotonic timestamps, and multi-instance
// traces, under both segmentation policies.

// randQuickIndex builds a small random log exercising the awkward cases.
func randQuickIndex(r *rand.Rand) *eventlog.Index {
	b := eventlog.NewBuilder()
	b.SetName("screen-quick")
	nc := 2 + r.Intn(6)
	nt := 1 + r.Intn(6)
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for t := 0; t < nt; t++ {
		b.StartTrace(fmt.Sprintf("t%d", t))
		tl := r.Intn(12)
		if t == 0 {
			tl++ // at least one event overall
		}
		for e := 0; e < tl; e++ {
			b.AddEvent(fmt.Sprintf("c%d", r.Intn(nc)))
			switch r.Intn(10) {
			case 0, 1, 2: // missing
			case 3:
				b.SetEventAttr("num", eventlog.Int(int64(r.Intn(20)-3))) // sometimes negative
			case 4:
				b.SetEventAttr("num", eventlog.String("oops")) // mixed-kind column
			default:
				b.SetEventAttr("num", eventlog.Float(float64(r.Intn(1000))/7))
			}
			switch {
			case r.Intn(3) != 0:
				b.SetEventAttr("role", eventlog.String(fmt.Sprintf("r%d", r.Intn(4))))
			case r.Intn(4) == 0:
				b.SetEventAttr("role", eventlog.Float(1.5)) // breaks strings-only
			}
			if r.Intn(4) != 0 {
				// Deliberately non-monotonic within the trace.
				ts := base.Add(time.Duration(r.Intn(100000)) * time.Second)
				b.SetEventAttr(eventlog.AttrTimestamp, eventlog.Time(ts))
			}
		}
	}
	return b.Build()
}

// quickConstraintPool enumerates screened constraints with thresholds
// straddling the generated value ranges.
func quickConstraintPool() []InstanceConstraint {
	var cons []InstanceConstraint
	for _, op := range []Op{LE, GE, EQ, LT, GT} {
		for _, th := range []float64{-1, 0, 1, 2.5, 3, 140} {
			for _, agg := range []Agg{Sum, Avg, Min, Max} {
				cons = append(cons,
					InstanceAggregate{AggFn: agg, Attr: "num", Op: op, Threshold: th},
					InstanceAggregate{AggFn: agg, Attr: "nope", Op: op, Threshold: th})
			}
			cons = append(cons,
				InstanceAggregate{AggFn: Count, Op: op, Threshold: th},
				InstanceAggregate{AggFn: Distinct, Attr: "role", Op: op, Threshold: th},
				InstanceAggregate{AggFn: Distinct, Attr: "nope", Op: op, Threshold: th})
		}
		cons = append(cons,
			EventsPerClass{Op: op, N: 1},
			EventsPerClass{Op: op, N: 2},
			ClassCardinality{ClassName: "c0", Op: op, N: 1},
			ClassCardinality{ClassName: "zz", Op: op, N: 1},
			InstanceSpan{Op: op, Seconds: 0},
			InstanceSpan{Op: op, Seconds: 50000},
			AvgInstanceSpan{Op: op, Seconds: 0},
			AvgInstanceSpan{Op: op, Seconds: 50000},
		)
	}
	cons = append(cons,
		MaxGap{Seconds: 0},
		MaxGap{Seconds: 1e5},
		Percentage{Fraction: 0.5, Inner: InstanceAggregate{AggFn: Count, Op: LE, Threshold: 2}},
		Percentage{Fraction: 1, Inner: MaxGap{Seconds: 1e5}},
	)
	return cons
}

func TestScreensMatchNaiveEvaluationQuick(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pool := quickConstraintPool()
	decidedHolds, decidedFails := 0, 0

	for round := 0; round < 60; round++ {
		x := randQuickIndex(r)
		cache := NewAttrCache(x)
		for _, pol := range []instances.Policy{instances.SplitOnRepeat, instances.WholeTrace} {
			scr := &screenScratch{}
			sc := &ScreenContext{X: x, Policy: pol, Cache: cache, scr: scr}
			ictx := &InstanceContext{X: x}
			for gi := 0; gi < 6; gi++ {
				g := bitset.New(x.NumClasses())
				for g.IsEmpty() {
					for c := 0; c < x.NumClasses(); c++ {
						if r.Intn(3) == 0 {
							g.Add(c)
						}
					}
				}
				insts := instances.OfLog(x, g, pol)
				for _, c := range pool {
					scrC, ok := c.(ScreenedConstraint)
					if !ok {
						continue
					}
					verdict := scrC.Screen(sc, g)
					if verdict == ScreenUnknown {
						continue
					}
					naive := c.HoldsInstances(ictx, g, insts)
					if (verdict == ScreenHolds) != naive {
						t.Fatalf("policy %v group %v: screen of %v says %v, naive evaluation says %v",
							pol, g, c, verdict == ScreenHolds, naive)
					}
					if verdict == ScreenHolds {
						decidedHolds++
					} else {
						decidedFails++
					}
				}
			}
		}
	}
	// The screens must actually decide in both directions, or the test (and
	// the optimisation) is vacuous.
	if decidedHolds == 0 || decidedFails == 0 {
		t.Fatalf("screens decided %d Holds / %d Fails — expected both non-zero", decidedHolds, decidedFails)
	}
}

// TestEvaluatorScreenedMatchesNaive drives the full evaluator path —
// screening, pooled collectors, scan fallback — against a naive conjunction
// over OfLog instances, and pins the aggregate-cache-hit counter non-zero.
func TestEvaluatorScreenedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pool := quickConstraintPool()
	totalHits := 0
	for round := 0; round < 40; round++ {
		x := randQuickIndex(r)
		var cs []Constraint
		for i := 0; i < 4; i++ {
			cs = append(cs, pool[r.Intn(len(pool))])
		}
		set := NewSet(cs...)
		for _, pol := range []instances.Policy{instances.SplitOnRepeat, instances.WholeTrace} {
			ev := NewEvaluator(x, set, pol)
			ictx := &InstanceContext{X: x}
			for gi := 0; gi < 8; gi++ {
				g := bitset.New(x.NumClasses())
				for c := 0; c < x.NumClasses(); c++ {
					if r.Intn(3) == 0 {
						g.Add(c)
					}
				}
				if g.IsEmpty() {
					continue
				}
				insts := instances.OfLog(x, g, pol)
				naive := true
				for _, c := range set.Instance {
					if !c.HoldsInstances(ictx, g, insts) {
						naive = false
						break
					}
				}
				if got := ev.HoldsInstance(g); got != naive {
					t.Fatalf("policy %v group %v set %v: HoldsInstance = %v, naive = %v", pol, g, set, got, naive)
				}
				if got := ev.HoldsAnti(g); got != naiveAnti(ictx, set, g, insts) {
					t.Fatalf("policy %v group %v set %v: HoldsAnti mismatch", pol, g, set)
				}
			}
			totalHits += ev.ScreenHits()
		}
	}
	if totalHits == 0 {
		t.Fatal("ScreenHits stayed zero across the whole run — screens never fired")
	}
}

func naiveAnti(ictx *InstanceContext, set *Set, g bitset.Set, insts []instances.Instance) bool {
	for _, c := range set.Instance {
		if c.Monotonicity() != AntiMonotonic {
			continue
		}
		if !c.HoldsInstances(ictx, g, insts) {
			return false
		}
	}
	return true
}

package constraints

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/par"
)

// AttrCache memoises class-level attribute extraction and the per-class
// aggregate statistics behind constraint screening (see screen.go) over one
// indexed log. Everything here depends only on the log — not on any
// constraint set — so a single AttrCache can back every Evaluator built on
// the same index; repeated solves with different constraints then skip both
// the per-attribute log scans and the aggregate builds. The Index is frozen,
// so nothing ever needs invalidation. Safe for concurrent use (each entry is
// built exactly once).
type AttrCache struct {
	x     *eventlog.Index
	memo  *par.Memo[[]map[string]struct{}]
	stats *par.Memo[*eventlog.ClassColStats]

	masksOnce sync.Once
	masks     []bitset.Set

	traceCntOnce sync.Once
	traceCnt     []int32

	spanOnce sync.Once
	spans    *eventlog.SpanStats

	lenOnce     sync.Once
	maxTraceLen int
}

// NewAttrCache builds an attribute-extraction cache for the index.
func NewAttrCache(x *eventlog.Index) *AttrCache {
	return &AttrCache{
		x:     x,
		memo:  par.NewMemo[[]map[string]struct{}](),
		stats: par.NewMemo[*eventlog.ClassColStats](),
	}
}

func (a *AttrCache) values(attr string) []map[string]struct{} {
	return a.memo.Do(attr, func() []map[string]struct{} {
		return a.x.ClassAttrValues(attr)
	})
}

// Evaluator checks groups against a constraint set over one indexed log. It
// memoises class-level attribute extractions and verdicts per group, and
// checks R_C before R_I as the paper prescribes (cheap checks first).
//
// An Evaluator is safe for concurrent use: verdict memos are sharded with
// per-shard locks and each group is validated exactly once, so the Checks
// and LogPasses accounting stays identical between sequential and parallel
// candidate computations.
type Evaluator struct {
	X      *eventlog.Index
	Set    *Set
	Policy instances.Policy

	classCtx     ClassContext
	instCtx      InstanceContext
	attrCache    *AttrCache
	verdicts     *par.Memo[bool]
	antiVerdicts *par.Memo[bool]

	// scratch pools per-goroutine screening contexts and instance
	// collectors; see holdsInstanceFiltered.
	scratch sync.Pool

	checks     atomic.Int64
	logPasses  atomic.Int64
	screenHits atomic.Int64
}

// evalScratch bundles the reusable buffers of one instance-constraint check:
// the screening context (with its merge scratch) and an instance Collector
// for the scan fallback. Pooled because evaluators run under par.For.
type evalScratch struct {
	sc  ScreenContext
	scr screenScratch
	col *instances.Collector
}

// NewEvaluator builds an evaluator for the log and constraint set.
func NewEvaluator(x *eventlog.Index, set *Set, policy instances.Policy) *Evaluator {
	return NewEvaluatorCached(x, set, policy, NewAttrCache(x))
}

// NewEvaluatorCached is NewEvaluator with a caller-provided attribute cache,
// letting repeated solves on the same log (core.Session) share the
// constraint-independent extraction work. The cache must have been built on
// the same index.
func NewEvaluatorCached(x *eventlog.Index, set *Set, policy instances.Policy, attrs *AttrCache) *Evaluator {
	e := &Evaluator{
		X:            x,
		Set:          set,
		Policy:       policy,
		attrCache:    attrs,
		verdicts:     par.NewMemo[bool](),
		antiVerdicts: par.NewMemo[bool](),
	}
	e.classCtx = ClassContext{
		Classes:    x.Classes,
		ClassID:    x.ClassID,
		AttrValues: e.classAttrValues,
	}
	e.instCtx = InstanceContext{X: x}
	e.scratch.New = func() any {
		s := &evalScratch{col: instances.NewCollector(x)}
		s.sc = ScreenContext{X: x, Policy: policy, Cache: attrs, scr: &s.scr}
		return s
	}
	return e
}

// Checks reports the number of full (non-memoised) group validations, for
// the runtime accounting of §VI.
func (e *Evaluator) Checks() int { return int(e.checks.Load()) }

// LogPasses reports the number of validations that required scanning the
// event log (i.e. some instance constraint could not be screened and the
// group's instances were materialised).
func (e *Evaluator) LogPasses() int { return int(e.logPasses.Load()) }

// ScreenHits reports how many instance-constraint checks were decided from
// the per-class aggregate cache alone, without materialising instances.
func (e *Evaluator) ScreenHits() int { return int(e.screenHits.Load()) }

func (e *Evaluator) classAttrValues(attr string) []map[string]struct{} {
	return e.attrCache.values(attr)
}

// HoldsClass checks only the class-based constraints for the group.
//
//gecco:hotpath
func (e *Evaluator) HoldsClass(g bitset.Set) bool {
	for _, c := range e.Set.Class {
		if !c.HoldsGroup(&e.classCtx, g) {
			return false
		}
	}
	return true
}

// HoldsInstance checks only the instance-based constraints for the group.
// Each constraint is first screened against the per-class aggregate cache
// (see screen.go); only constraints the screens cannot decide fall back to a
// single shared instance materialisation, served from a pooled Collector.
//
//gecco:hotpath
func (e *Evaluator) HoldsInstance(g bitset.Set) bool {
	return e.holdsInstanceFiltered(g, false)
}

// holdsInstanceFiltered is HoldsInstance restricted (when antiOnly is set)
// to the anti-monotonic instance constraints. Screens are exact, so the
// verdict — and every observable counter that feeds determinism-pinned
// output — is identical to the full-scan evaluation.
func (e *Evaluator) holdsInstanceFiltered(g bitset.Set, antiOnly bool) bool {
	ics := e.Set.Instance
	if len(ics) == 0 {
		return true
	}
	s := e.scratch.Get().(*evalScratch)
	defer e.scratch.Put(s)

	// Screening pass: decide what we can from cached aggregates. needScan
	// marks the constraints requiring the instance scan (bitmask for the
	// typical small set, with a count covering the >64 case by scanning all).
	var needScan uint64
	nScan := 0
	useMask := len(ics) <= 64
	for i, c := range ics {
		if antiOnly && c.Monotonicity() != AntiMonotonic {
			continue
		}
		if useMask {
			if scr, ok := c.(ScreenedConstraint); ok {
				switch scr.Screen(&s.sc, g) {
				case ScreenHolds:
					e.screenHits.Add(1)
					continue
				case ScreenFails:
					e.screenHits.Add(1)
					return false
				}
			}
			needScan |= 1 << uint(i)
		}
		nScan++
	}
	if nScan == 0 {
		return true
	}

	// Scan fallback: one instance materialisation shared by the undecided
	// constraints.
	e.logPasses.Add(1)
	insts := s.col.Collect(e.X, g, e.Policy)
	for i, c := range ics {
		if antiOnly && c.Monotonicity() != AntiMonotonic {
			continue
		}
		if useMask && needScan&(1<<uint(i)) == 0 {
			continue
		}
		if !c.HoldsInstances(&e.instCtx, g, insts) {
			return false
		}
	}
	return true
}

// Holds checks all per-group constraints (R_C then R_I), memoising the
// verdict per group.
//
//gecco:hotpath
func (e *Evaluator) Holds(g bitset.Set) bool {
	return e.verdicts.Do(g.Key(), func() bool {
		e.checks.Add(1)
		return e.HoldsClass(g) && e.HoldsInstance(g)
	})
}

// HoldsAnti checks only the anti-monotonic per-group constraints. This is
// the expansion criterion of Algorithm 1's anti-monotonic mode: a group
// violating a *non*-monotonic constraint (e.g. mustlink with one endpoint)
// may still have satisfying supergroups and must stay expandable, whereas an
// anti-monotonic violation can never be repaired by growing the group.
//
//gecco:hotpath
func (e *Evaluator) HoldsAnti(g bitset.Set) bool {
	return e.antiVerdicts.Do(g.Key(), func() bool {
		for _, c := range e.Set.Class {
			if c.Monotonicity() == AntiMonotonic && !c.HoldsGroup(&e.classCtx, g) {
				return false
			}
		}
		return e.holdsInstanceFiltered(g, true)
	})
}

// HoldsGrouping checks the grouping constraints for a grouping of size k.
func (e *Evaluator) HoldsGrouping(k int) bool {
	for _, c := range e.Set.Grouping {
		if !c.HoldsGrouping(k) {
			return false
		}
	}
	return true
}

// Violations describes why a grouping problem is infeasible, to let users
// refine their constraints (§V-C: GECCO indicates possible causes).
type Violations struct {
	// UncoverableClasses are event classes for which not even the singleton
	// group satisfies the per-group constraints.
	UncoverableClasses []string
	// PerConstraint maps a constraint's string form to the fraction of
	// singleton groups it rejects.
	PerConstraint map[string]float64
	// GroupBoundConflict describes an arithmetic conflict between grouping
	// bounds and group-size bounds (e.g. 70 classes cannot be covered by 3
	// groups of at most 8 classes); empty if none was detected.
	GroupBoundConflict string
}

// ConstraintShare is one PerConstraint entry in a stable order.
type ConstraintShare struct {
	Constraint string
	Fraction   float64
}

// SharesSorted returns the PerConstraint map as a slice sorted by
// descending fraction, ties broken by constraint text — the order user-facing
// output must use so diagnostics render identically run to run.
func (v *Violations) SharesSorted() []ConstraintShare {
	if v == nil {
		return nil
	}
	out := make([]ConstraintShare, 0, len(v.PerConstraint))
	for c, f := range v.PerConstraint {
		out = append(out, ConstraintShare{Constraint: c, Fraction: f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Constraint < out[j].Constraint
	})
	return out
}

func (v *Violations) String() string {
	if v == nil {
		return "feasible"
	}
	s := fmt.Sprintf("%d uncoverable classes", len(v.UncoverableClasses))
	if len(v.UncoverableClasses) > 0 {
		n := len(v.UncoverableClasses)
		if n > 5 {
			n = 5
		}
		s += fmt.Sprintf(" (e.g. %v)", v.UncoverableClasses[:n])
	}
	if v.GroupBoundConflict != "" {
		s += "; " + v.GroupBoundConflict
	}
	return s
}

// Diagnose inspects singleton groups against the constraint set and reports
// which classes cannot be covered at all and which constraints reject them.
func (e *Evaluator) Diagnose() *Violations {
	v := &Violations{PerConstraint: make(map[string]float64)}
	n := e.X.NumClasses()
	for c := 0; c < n; c++ {
		g := bitset.New(n)
		g.Add(c)
		bad := false
		for _, cc := range e.Set.Class {
			if !cc.HoldsGroup(&e.classCtx, g) {
				v.PerConstraint[cc.String()]++
				bad = true
			}
		}
		insts := instances.OfLog(e.X, g, e.Policy)
		for _, ic := range e.Set.Instance {
			if !ic.HoldsInstances(&e.instCtx, g, insts) {
				v.PerConstraint[ic.String()]++
				bad = true
			}
		}
		if bad {
			v.UncoverableClasses = append(v.UncoverableClasses, e.X.Classes[c])
		}
	}
	for k := range v.PerConstraint {
		v.PerConstraint[k] /= float64(n)
	}
	sort.Strings(v.UncoverableClasses)

	// Arithmetic conflict between |G| bounds and |g| bounds.
	maxGroupSize := n
	for _, cc := range e.Set.Class {
		if gs, ok := cc.(GroupSize); ok && gs.Op.upperBounding() {
			limit := gs.N
			if gs.Op == LT {
				limit--
			}
			if limit < maxGroupSize {
				maxGroupSize = limit
			}
		}
	}
	if maxGroupSize < 1 {
		maxGroupSize = 1
	}
	_, maxGroups := e.Set.GroupBounds()
	if maxGroups >= 0 {
		minNeeded := (n + maxGroupSize - 1) / maxGroupSize
		if minNeeded > maxGroups {
			v.GroupBoundConflict = fmt.Sprintf(
				"%d classes need at least %d groups of size <= %d, but at most %d groups are allowed",
				n, minNeeded, maxGroupSize, maxGroups)
		}
	}
	return v
}

package constraints

import (
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

func TestParseGlobalConstraints(t *testing.T) {
	c := MustParse("avginstances <= 4")
	if _, ok := c.(AvgInstancesPerTrace); !ok {
		t.Fatalf("parsed %#v", c)
	}
	if c.Category() != Grouping {
		t.Fatal("global constraints live in the grouping category")
	}
	c2 := MustParse("maxinstances <= 6")
	if mi, ok := c2.(MaxInstancesPerTrace); !ok || mi.N != 6 {
		t.Fatalf("parsed %#v", c2)
	}
	// Round trip.
	for _, src := range []string{"avginstances <= 4", "maxinstances <= 6"} {
		if _, err := Parse(MustParse(src).String()); err != nil {
			t.Errorf("round trip %q: %v", src, err)
		}
	}
	if _, err := Parse("maxinstances >= 3"); err == nil {
		t.Error("maxinstances lower bound should be rejected")
	}
}

func TestGlobalConstraintsExtracted(t *testing.T) {
	set := NewSet(MustParse("avginstances <= 4"), MustParse("|G| <= 5"), MustParse("|g| <= 8"))
	if len(set.GlobalConstraints()) != 1 {
		t.Fatalf("globals = %d, want 1", len(set.GlobalConstraints()))
	}
	// Plain grouping constraints are not global.
	lo, hi := set.GroupBounds()
	if lo != 0 || hi != 5 {
		t.Fatalf("bounds (%d,%d)", lo, hi)
	}
}

func TestHoldsGlobalAvgInstances(t *testing.T) {
	log := procgen.RunningExampleTable1()
	x := eventlog.NewIndex(log)
	mk := func(names ...string) bitset.Set {
		g, _ := x.GroupFromNames(names)
		return g
	}
	// Figure 7's grouping: instances per trace: σ1: clrk1, acc, clrk2 = 3;
	// σ2: 3; σ3: 3; σ4: 2×clrk1 + acc + rej + clrk2 = 5. Avg = 14/4 = 3.5.
	groups := []bitset.Set{
		mk("rcp", "ckc", "ckt"), mk("acc"), mk("rej"), mk("prio", "inf", "arv"),
	}
	evOK := NewEvaluator(x, NewSet(MustParse("avginstances <= 3.5")), instances.SplitOnRepeat)
	if !evOK.HoldsGlobal(groups) {
		t.Error("avg 3.5 should satisfy <= 3.5")
	}
	evTight := NewEvaluator(x, NewSet(MustParse("avginstances <= 3.4")), instances.SplitOnRepeat)
	if evTight.HoldsGlobal(groups) {
		t.Error("avg 3.5 should violate <= 3.4")
	}
}

func TestHoldsGlobalMaxInstances(t *testing.T) {
	log := procgen.RunningExampleTable1()
	x := eventlog.NewIndex(log)
	mk := func(names ...string) bitset.Set {
		g, _ := x.GroupFromNames(names)
		return g
	}
	groups := []bitset.Set{
		mk("rcp", "ckc", "ckt"), mk("acc"), mk("rej"), mk("prio", "inf", "arv"),
	}
	// σ4 has 5 instances under this grouping.
	ev5 := NewEvaluator(x, NewSet(MustParse("maxinstances <= 5")), instances.SplitOnRepeat)
	if !ev5.HoldsGlobal(groups) {
		t.Error("max 5 should hold")
	}
	ev4 := NewEvaluator(x, NewSet(MustParse("maxinstances <= 4")), instances.SplitOnRepeat)
	if ev4.HoldsGlobal(groups) {
		t.Error("σ4's 5 instances should violate <= 4")
	}
}

func TestHoldsGlobalVacuousWithoutGlobals(t *testing.T) {
	log := procgen.RunningExampleTable1()
	x := eventlog.NewIndex(log)
	ev := NewEvaluator(x, NewSet(MustParse("|g| <= 8")), instances.SplitOnRepeat)
	if !ev.HoldsGlobal(nil) {
		t.Fatal("no global constraints: vacuously true")
	}
}

package constraints

// Constraint screening: deciding instance-constraint verdicts for a whole
// candidate group from cached per-class aggregates, without materialising
// the group's instances. A screen is a three-valued function — Holds, Fails,
// or Unknown — and must be *exact*: Holds only when every instance of the
// group provably satisfies the constraint under the reference per-event
// evaluation (including its floating-point behaviour), Fails only when some
// instance provably violates it, Unknown otherwise (the evaluator then falls
// back to the event scan). Bounds that pass through float arithmetic in the
// reference evaluator (sums, averages) carry a generous rounding margin so
// a screen never contradicts the scan; integral and comparison-only bounds
// (count, distinct, min, max, spans) are exact as-is.
//
// The aggregates live in the AttrCache — one build per core.Session,
// invalidation-free because the Index is frozen — so a screened check is an
// O(classes-in-group) merge (word-parallel bitset kernels for code unions)
// plus, for a few refutations, an O(classes-in-group · traces) pass over
// per-trace partials. Profiling shows instance materialisation dominating
// candidate evaluation; screens remove it outright for most checks.

import (
	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Tri is a screening verdict.
type Tri int8

const (
	// ScreenUnknown: the cached aggregates cannot decide; scan the log.
	ScreenUnknown Tri = iota
	// ScreenHolds: every instance of the group satisfies the constraint.
	ScreenHolds
	// ScreenFails: some instance of the group violates the constraint.
	ScreenFails
)

func triBool(b bool) Tri {
	if b {
		return ScreenHolds
	}
	return ScreenFails
}

// ScreenedConstraint is optionally implemented by instance constraints that
// can (sometimes) decide their verdict from the per-class aggregate cache.
// Screen must agree with HoldsInstances whenever it returns a non-Unknown
// verdict; the property tests in screen_quick_test.go enforce this on random
// indexes.
type ScreenedConstraint interface {
	Screen(sc *ScreenContext, g bitset.Set) Tri
}

// ScreenContext carries the frozen index, the segmentation policy, and the
// shared aggregate cache into screens, plus per-goroutine scratch buffers
// (pooled by the Evaluator — a ScreenContext is not safe for concurrent
// use).
type ScreenContext struct {
	X      *eventlog.Index
	Policy instances.Policy
	Cache  *AttrCache
	scr    *screenScratch
}

// screenScratch holds the reusable merge buffers of one ScreenContext.
type screenScratch struct {
	codes bitset.Set // merged distinct-code union
	cnts  []int32    // merged per-trace counts
	sums  []float64  // merged per-trace numeric sums
}

// ---------------------------------------------------------------------------
// AttrCache: aggregate-statistics tier

// ensureStats lazily initialises the aggregate memos (AttrCache predates
// them; NewAttrCache wires them eagerly, this guards zero-value misuse).
func (a *AttrCache) colStats(attr string) *eventlog.ClassColStats {
	return a.stats.Do(attr, func() *eventlog.ClassColStats {
		return a.x.BuildClassColStats(attr, a.classMasks())
	})
}

func (a *AttrCache) classMasks() []bitset.Set {
	a.masksOnce.Do(func() { a.masks = a.x.ClassEventMasks() })
	return a.masks
}

func (a *AttrCache) traceCounts() []int32 {
	a.traceCntOnce.Do(func() { a.traceCnt = a.x.ClassTraceCounts() })
	return a.traceCnt
}

func (a *AttrCache) spanStats() *eventlog.SpanStats {
	a.spanOnce.Do(func() { a.spans = a.x.BuildSpanStats() })
	return a.spans
}

// roundPad returns a sound relative rounding margin for float sums/means of
// up to one trace's worth of values: sequential float64 accumulation of n
// non-negative terms has relative error below n·2⁻⁵², and the pad is ~100x
// that. Screens widen float-sensitive bounds by it, trading a sliver of
// screening power for exactness against the reference evaluation.
func (a *AttrCache) roundPad() float64 {
	a.lenOnce.Do(func() {
		maxLen := 0
		for t := 0; t < a.x.NumTraces(); t++ {
			if l := a.x.TraceLen(t); l > maxLen {
				maxLen = l
			}
		}
		a.maxTraceLen = maxLen
	})
	return (float64(a.maxTraceLen) + 4) * 1e-14
}

// logPad is roundPad for float means taken across the whole log (one term
// per group instance, bounded by the event count) rather than within one
// instance — AvgInstanceSpan averages over every instance of the group.
func (a *AttrCache) logPad() float64 {
	return (float64(a.x.NumEvents()) + 4) * 1e-14
}

// ---------------------------------------------------------------------------
// Merge helpers

// mergedAgg is the fold of per-class numeric aggregates over a group.
type mergedAgg struct {
	numCount    int
	min, max    float64 // meaningful only when numCount > 0
	nonNegative bool    // every numeric value of the group is >= 0
}

func mergeNums(st *eventlog.ClassColStats, g bitset.Set) mergedAgg {
	var m mergedAgg
	g.ForEach(func(c int) bool {
		if st.NumCount[c] > 0 {
			if m.numCount == 0 {
				m.min, m.max = st.Min[c], st.Max[c]
			} else {
				if st.Min[c] < m.min {
					m.min = st.Min[c]
				}
				if st.Max[c] > m.max {
					m.max = st.Max[c]
				}
			}
			m.numCount += st.NumCount[c]
		}
		return true
	})
	m.nonNegative = m.numCount == 0 || m.min >= 0
	return m
}

// mergedTraceCounts returns the group's projected event count per trace
// (how many events of any class in g each trace holds). Single-class groups
// read the cached row directly; larger groups merge into scratch. The
// returned slice is read-only and valid until the next scratch use.
func (sc *ScreenContext) mergedTraceCounts(g bitset.Set) []int32 {
	tc := sc.Cache.traceCounts()
	nt := sc.X.NumTraces()
	if c := g.Min(); c >= 0 && g.Len() == 1 {
		return tc[c*nt : (c+1)*nt]
	}
	buf := sc.scr.cnts
	if cap(buf) < nt {
		buf = make([]int32, nt)
	}
	buf = buf[:nt]
	for i := range buf {
		buf[i] = 0
	}
	g.ForEach(func(c int) bool {
		row := tc[c*nt : (c+1)*nt]
		for t, n := range row {
			buf[t] += n
		}
		return true
	})
	sc.scr.cnts = buf
	return buf
}

// mergedTraceNums returns the group's per-trace numeric value counts and
// sums for one attribute. Must only be called when the column has numeric
// values (st.TraceNumCount non-nil). Same aliasing rules as
// mergedTraceCounts.
func (sc *ScreenContext) mergedTraceNums(st *eventlog.ClassColStats, g bitset.Set) ([]int32, []float64) {
	nt := sc.X.NumTraces()
	if c := g.Min(); c >= 0 && g.Len() == 1 {
		return st.TraceNumCount[c*nt : (c+1)*nt], st.TraceNumSum[c*nt : (c+1)*nt]
	}
	cb, sb := sc.scr.cnts, sc.scr.sums
	if cap(cb) < nt {
		cb = make([]int32, nt)
	}
	if cap(sb) < nt {
		sb = make([]float64, nt)
	}
	cb, sb = cb[:nt], sb[:nt]
	for i := range cb {
		cb[i], sb[i] = 0, 0
	}
	g.ForEach(func(c int) bool {
		crow := st.TraceNumCount[c*nt : (c+1)*nt]
		srow := st.TraceNumSum[c*nt : (c+1)*nt]
		for t, n := range crow {
			if n > 0 {
				cb[t] += n
				sb[t] += srow[t]
			}
		}
		return true
	})
	sc.scr.cnts, sc.scr.sums = cb, sb
	return cb, sb
}

// mergedCodeCount returns |union of the group's distinct dictionary codes|
// via in-place OrInto merging — the word-parallel bound on per-instance
// distinct values of a strings-only column.
func (sc *ScreenContext) mergedCodeCount(st *eventlog.ClassColStats, g bitset.Set) int {
	need := 0
	g.ForEach(func(c int) bool {
		if b := st.Codes[c].Bytes(); b*8 > need {
			need = b * 8
		}
		return true
	})
	if sc.scr.codes.Bytes()*8 < need {
		sc.scr.codes = bitset.New(need)
	}
	sc.scr.codes.Clear()
	g.ForEach(func(c int) bool {
		sc.scr.codes.OrInto(st.Codes[c])
		return true
	})
	return sc.scr.codes.Len()
}

// singleEventInstances reports whether every instance of g is exactly one
// event: under split-on-repeat a single-class group re-segments at every
// repetition, so each instance is one event of that class.
func (sc *ScreenContext) singleEventInstances(g bitset.Set) bool {
	return sc.Policy == instances.SplitOnRepeat && g.Len() == 1
}

// mergedMaxSpan returns the largest per-trace timestamp spread over the
// traces that can host an instance of g; every instance span and every
// within-instance gap is bounded by it (exactly, through the same
// Sub().Seconds() arithmetic the evaluator uses).
func mergedMaxSpan(sp *eventlog.SpanStats, g bitset.Set) float64 {
	maxSpan := 0.0
	g.ForEach(func(c int) bool {
		if sp.ClassMaxSpan[c] > maxSpan {
			maxSpan = sp.ClassMaxSpan[c]
		}
		return true
	})
	return maxSpan
}

// ---------------------------------------------------------------------------
// InstanceAggregate screens

// Screen decides sum/avg/min/max/count/distinct aggregates from merged
// per-class partials where possible. Min/max bounds and count/distinct
// bounds are exact; sum/avg bounds carry the rounding pad (see roundPad) so
// a verdict never contradicts the reference float evaluation.
func (c InstanceAggregate) Screen(sc *ScreenContext, g bitset.Set) Tri {
	if g.IsEmpty() {
		return ScreenUnknown
	}
	if c.AggFn == Count {
		return c.screenCount(sc, g)
	}
	st := sc.Cache.colStats(c.Attr)
	if !st.HasColumn {
		if c.AggFn == Distinct {
			// No column: every instance has 0 distinct values.
			return triBool(c.Op.Cmp(0, c.Threshold))
		}
		return ScreenHolds // no values anywhere: every instance is vacuous
	}
	if c.AggFn == Distinct {
		return c.screenDistinct(sc, st, g)
	}
	m := mergeNums(st, g)
	if m.numCount == 0 {
		return ScreenHolds // no numeric values: every instance is vacuous
	}
	T := c.Threshold
	if sc.singleEventInstances(g) {
		// One value per non-vacuous instance: sum = avg = min = max = v, and
		// the per-event arithmetic is exact. Holds iff every value passes.
		switch {
		case c.Op == EQ:
			return triBool(m.min == T && m.max == T)
		case c.Op.upperBounding():
			return triBool(c.Op.Cmp(m.max, T))
		default:
			return triBool(c.Op.Cmp(m.min, T))
		}
	}
	switch c.AggFn {
	case Min:
		// An instance's min is one of its values: it is >= the merged min
		// (with the min value's own instance attaining <= merged min) and
		// <= the merged max. Comparison-only, exact.
		if c.Op == EQ {
			if m.min == T && m.max == T {
				return ScreenHolds
			}
			if T < m.min || T > m.max {
				return ScreenFails
			}
			return ScreenUnknown
		}
		if c.Op.lowerBounding() {
			return triBool(c.Op.Cmp(m.min, T)) // fully decided
		}
		if c.Op.Cmp(m.max, T) {
			return ScreenHolds
		}
		if !c.Op.Cmp(m.min, T) {
			return ScreenFails
		}
		return ScreenUnknown
	case Max:
		if c.Op == EQ {
			if m.min == T && m.max == T {
				return ScreenHolds
			}
			if T < m.min || T > m.max {
				return ScreenFails
			}
			return ScreenUnknown
		}
		if c.Op.upperBounding() {
			return triBool(c.Op.Cmp(m.max, T)) // fully decided
		}
		if c.Op.Cmp(m.min, T) {
			return ScreenHolds
		}
		if !c.Op.Cmp(m.max, T) {
			return ScreenFails
		}
		return ScreenUnknown
	case Avg:
		if !m.nonNegative {
			return ScreenUnknown // margin math below assumes non-negative values
		}
		pad := sc.Cache.roundPad()
		lo, hi := m.min*(1-pad), m.max*(1+pad)
		// Every non-vacuous instance's float mean lies in [lo, hi].
		if c.Op == EQ {
			if T < lo || T > hi {
				return ScreenFails
			}
			return ScreenUnknown
		}
		if c.Op.upperBounding() {
			if c.Op.Cmp(hi, T) {
				return ScreenHolds
			}
			if !c.Op.Cmp(lo, T) {
				return ScreenFails
			}
			return ScreenUnknown
		}
		if c.Op.Cmp(lo, T) {
			return ScreenHolds
		}
		if !c.Op.Cmp(hi, T) {
			return ScreenFails
		}
		return ScreenUnknown
	case Sum:
		if !m.nonNegative || c.Op == EQ {
			return ScreenUnknown
		}
		pad := sc.Cache.roundPad()
		if c.Op.lowerBounding() {
			// Float summation of non-negative terms is monotone: an
			// instance's sum dominates each of its values, hence the merged
			// min — exact, no pad needed.
			if c.Op.Cmp(m.min, T) {
				return ScreenHolds
			}
			// Refute per trace: instances partition a trace's projection, so
			// any instance sum is bounded by the trace's projected total.
			cnts, sums := sc.mergedTraceNums(st, g)
			for t, n := range cnts {
				if n > 0 && !c.Op.Cmp(sums[t]*(1+pad), T) {
					return ScreenFails
				}
			}
			return ScreenUnknown
		}
		// Upper-bounding: the instance holding the merged max has sum >= max
		// (monotone non-negative summation — exact).
		if !c.Op.Cmp(m.max, T) {
			return ScreenFails
		}
		cnts, sums := sc.mergedTraceNums(st, g)
		for t, n := range cnts {
			if n > 0 && !c.Op.Cmp(sums[t]*(1+pad), T) {
				return ScreenUnknown
			}
		}
		return ScreenHolds // every trace's projected total already passes
	}
	return ScreenUnknown
}

// screenCount decides the event-count aggregate from per-trace projected
// counts (attribute-independent, integral, exact). Under split-on-repeat an
// instance holds between 1 and min(|g|, projected-count) events; under
// whole-trace it holds exactly the trace's projected count.
func (c InstanceAggregate) screenCount(sc *ScreenContext, g bitset.Set) Tri {
	T := c.Threshold
	if sc.Policy == instances.WholeTrace {
		holds := true
		for _, n := range sc.mergedTraceCounts(g) {
			if n > 0 && !c.Op.Cmp(float64(n), T) {
				holds = false
				break
			}
		}
		return triBool(holds) // fully decided
	}
	gl := g.Len()
	if c.Op == EQ {
		if gl == 1 {
			return triBool(c.Op.Cmp(1, T)) // single-event instances
		}
		return ScreenUnknown
	}
	if c.Op.upperBounding() {
		if c.Op.Cmp(float64(gl), T) {
			return ScreenHolds // split-on-repeat: at most one event per class
		}
		if !c.Op.Cmp(1, T) {
			return ScreenFails // even a single event is too many
		}
		holds := true
		for _, n := range sc.mergedTraceCounts(g) {
			if n > 0 && !c.Op.Cmp(float64(n), T) {
				holds = false
				break
			}
		}
		if holds {
			return ScreenHolds // instance count <= its trace's projected count
		}
		return ScreenUnknown
	}
	// Lower-bounding: every instance has >= 1 event.
	if c.Op.Cmp(1, T) {
		return ScreenHolds
	}
	for _, n := range sc.mergedTraceCounts(g) {
		if n > 0 && !c.Op.Cmp(float64(n), T) {
			return ScreenFails // all instances in that trace are too small
		}
	}
	return ScreenUnknown
}

// screenDistinct decides the distinct-value aggregate from the merged
// dictionary-code union (strings-only columns) and the split-on-repeat
// event-count bound. Integral, exact.
func (c InstanceAggregate) screenDistinct(sc *ScreenContext, st *eventlog.ClassColStats, g bitset.Set) Tri {
	T := c.Threshold
	if sc.singleEventInstances(g) {
		// Each instance is one event of the class: 1 distinct value when the
		// attribute is present, 0 when absent.
		cl := g.Min()
		okPresent := st.Present[cl] == 0 || c.Op.Cmp(1, T)
		okAbsent := st.Present[cl] == sc.X.ClassFreq[cl] || c.Op.Cmp(0, T)
		return triBool(okPresent && okAbsent)
	}
	ub, haveUB := 0, false
	if st.StringsOnly {
		ub, haveUB = sc.mergedCodeCount(st, g), true
	}
	if sc.Policy == instances.SplitOnRepeat {
		// At most one event per class per instance: distinct <= |g|.
		if gl := g.Len(); !haveUB || gl < ub {
			ub, haveUB = gl, true
		}
	}
	if c.Op.upperBounding() {
		if haveUB && c.Op.Cmp(float64(ub), T) {
			return ScreenHolds
		}
		return ScreenUnknown
	}
	if c.Op.lowerBounding() {
		if c.Op.Cmp(0, T) {
			return ScreenHolds // distinct >= 0 always
		}
		if haveUB && !c.Op.Cmp(float64(ub), T) {
			return ScreenFails // no instance can reach the bound
		}
		return ScreenUnknown
	}
	return ScreenUnknown
}

// ---------------------------------------------------------------------------
// Span / gap / cardinality screens

// Screen for MaxGap: every within-instance gap is bounded by the hosting
// trace's timestamp spread (exact through Sub().Seconds() monotonicity), and
// single-event instances have no gaps at all.
func (c MaxGap) Screen(sc *ScreenContext, g bitset.Set) Tri {
	sp := sc.Cache.spanStats()
	if !sp.HasTimestamps {
		return ScreenHolds
	}
	if sc.singleEventInstances(g) {
		return ScreenHolds
	}
	if mergedMaxSpan(sp, g) <= c.Seconds {
		return ScreenHolds
	}
	return ScreenUnknown
}

// Screen for InstanceSpan: spans lie in [-spread, spread] of the hosting
// trace (timestamps need not be monotonic), single-event instances span
// exactly 0 when timestamped.
func (c InstanceSpan) Screen(sc *ScreenContext, g bitset.Set) Tri {
	sp := sc.Cache.spanStats()
	if !sp.HasTimestamps {
		return ScreenHolds
	}
	if sc.singleEventInstances(g) {
		st := sc.Cache.colStats(eventlog.AttrTimestamp)
		cl := g.Min()
		if st.TimeCount[cl] == 0 {
			return ScreenHolds // no timestamps: every span check is vacuous
		}
		return triBool(c.Op.Cmp(0, c.Seconds))
	}
	maxSpan := mergedMaxSpan(sp, g)
	if c.Op.upperBounding() && c.Op.Cmp(maxSpan, c.Seconds) {
		return ScreenHolds
	}
	if c.Op.lowerBounding() && c.Op.Cmp(-maxSpan, c.Seconds) {
		return ScreenHolds
	}
	return ScreenUnknown
}

// Screen for AvgInstanceSpan: the float mean of spans in [-spread, spread]
// stays within the pad-widened interval.
func (c AvgInstanceSpan) Screen(sc *ScreenContext, g bitset.Set) Tri {
	sp := sc.Cache.spanStats()
	if !sp.HasTimestamps {
		return ScreenHolds
	}
	if sc.singleEventInstances(g) {
		st := sc.Cache.colStats(eventlog.AttrTimestamp)
		cl := g.Min()
		if st.TimeCount[cl] == 0 {
			return ScreenHolds
		}
		// Every contributing span is exactly 0; the mean of zeros is 0.
		return triBool(c.Op.Cmp(0, c.Seconds))
	}
	maxSpan := mergedMaxSpan(sp, g)
	hi := maxSpan * (1 + sc.Cache.logPad())
	if c.Op.upperBounding() && c.Op.Cmp(hi, c.Seconds) {
		return ScreenHolds
	}
	if c.Op.lowerBounding() && c.Op.Cmp(-hi, c.Seconds) {
		return ScreenHolds
	}
	return ScreenUnknown
}

// Screen for EventsPerClass: under split-on-repeat every per-class count
// within an instance is exactly 1; under whole-trace the cached per-class
// per-trace counts are the exact per-instance counts.
func (c EventsPerClass) Screen(sc *ScreenContext, g bitset.Set) Tri {
	if g.IsEmpty() {
		return ScreenUnknown
	}
	N := float64(c.N)
	if sc.Policy == instances.SplitOnRepeat {
		return triBool(c.Op.Cmp(1, N)) // fully decided
	}
	tc := sc.Cache.traceCounts()
	nt := sc.X.NumTraces()
	holds := true
	g.ForEach(func(cl int) bool {
		row := tc[cl*nt : (cl+1)*nt]
		for _, n := range row {
			if n > 0 && !c.Op.Cmp(float64(n), N) {
				holds = false
				return false
			}
		}
		return true
	})
	return triBool(holds) // fully decided
}

// Screen for ClassCardinality: split-on-repeat counts are 0 or 1 (and the
// class occurs, so 1 is attained); whole-trace counts are the cached exact
// per-trace counts over traces hosting an instance.
func (c ClassCardinality) Screen(sc *ScreenContext, g bitset.Set) Tri {
	id, ok := sc.X.ClassID[c.ClassName]
	if !ok || !g.Contains(id) {
		return ScreenHolds // vacuous, as in HoldsInstances
	}
	N := float64(c.N)
	if sc.Policy == instances.SplitOnRepeat {
		if !c.Op.Cmp(1, N) {
			return ScreenFails // some instance contains the class once
		}
		if c.Op.Cmp(0, N) {
			return ScreenHolds // both attainable counts pass
		}
		if g.Len() == 1 {
			return ScreenHolds // every instance is one event of the class
		}
		return ScreenUnknown // needs every instance to contain the class
	}
	tc := sc.Cache.traceCounts()
	nt := sc.X.NumTraces()
	row := tc[id*nt : (id+1)*nt]
	holds := true
	for t, n := range sc.mergedTraceCounts(g) {
		if n > 0 && !c.Op.Cmp(float64(row[t]), N) {
			holds = false
			break
		}
	}
	return triBool(holds) // fully decided
}

// Screen for Percentage: if the inner constraint provably holds on every
// instance, the satisfied fraction is 1. A Fails from the inner screen says
// only that *some* instance violates it, which cannot refute a fraction.
func (c Percentage) Screen(sc *ScreenContext, g bitset.Set) Tri {
	inner, ok := c.Inner.(ScreenedConstraint)
	if !ok {
		return ScreenUnknown
	}
	if c.Fraction <= 1 && inner.Screen(sc, g) == ScreenHolds {
		return ScreenHolds
	}
	return ScreenUnknown
}

// compile-time interface checks
var (
	_ ScreenedConstraint = InstanceAggregate{}
	_ ScreenedConstraint = MaxGap{}
	_ ScreenedConstraint = InstanceSpan{}
	_ ScreenedConstraint = AvgInstanceSpan{}
	_ ScreenedConstraint = EventsPerClass{}
	_ ScreenedConstraint = ClassCardinality{}
	_ ScreenedConstraint = Percentage{}
)

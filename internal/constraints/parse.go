package constraints

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads one constraint from its textual form. The grammar covers all
// constraint shapes of Tables II and IV:
//
//	|G| <= 3               grouping: at most 3 groups
//	|G| >= 5               grouping: at least 5 groups
//	|g| <= 8               class: at most 8 classes per group
//	cannotlink(a, b)       class: a and b never together
//	mustlink(a, b)         class: a and b always together
//	distinct(class.org) <= 1   class: one origin system per group (BL3, §VI-D)
//	distinct(role) <= 3    instance: at most 3 roles per instance (set A)
//	sum(duration) >= 101   instance: set M
//	avg(duration) <= 5e5   instance: set N
//	min(cost) >= 10        instance
//	max(cost) <= 500       instance
//	count() <= 12          instance: at most 12 events per instance
//	count(rcp) >= 2        instance: at least 2 rcp events per instance
//	gap <= 600             instance: at most 10 min between events
//	eventsperclass <= 1    instance: at most 1 event per class per instance
//	span <= 3600           instance: each instance at most 1 hour
//	avgspan <= 3600        instance: instances at most 1 hour on average
//	pct(0.95, max(cost) <= 500)   loosened instance constraint
//	avginstances >= 2      global: mean activity instances per trace
//	maxinstances <= 6      global: activity instances in any single trace
//
// Class names containing spaces or punctuation can be single-quoted:
// cannotlink('A_Create Application', 'O_Created').
func Parse(s string) (Constraint, error) {
	p := &parser{in: s}
	c, err := p.parseConstraint()
	if err != nil {
		return nil, fmt.Errorf("parse %q: %w", s, err)
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("parse %q: trailing input at offset %d", s, p.pos)
	}
	return c, nil
}

// MustParse is Parse that panics on error, for tests and fixed tables.
func MustParse(s string) Constraint {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseSet parses a whitespace/newline-separated list of constraints, one
// per line; blank lines and lines starting with '#' are skipped.
func ParseSet(text string) (*Set, error) {
	set := &Set{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		set.Add(c)
	}
	return set, nil
}

type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && unicode.IsSpace(rune(p.in[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *parser) expect(b byte) error {
	p.skipSpace()
	if p.peek() != b {
		return fmt.Errorf("expected %q at offset %d", string(b), p.pos)
	}
	p.pos++
	return nil
}

// ident reads a bare word or a single-quoted string.
func (p *parser) ident() (string, error) {
	p.skipSpace()
	if p.peek() == '\'' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.in) {
			return "", fmt.Errorf("unterminated quoted name at offset %d", start)
		}
		s := p.in[start:p.pos]
		p.pos++
		return s, nil
	}
	start := p.pos
	for p.pos < len(p.in) {
		c := rune(p.in[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.' {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", fmt.Errorf("expected identifier at offset %d", start)
	}
	return p.in[start:p.pos], nil
}

func (p *parser) op() (Op, error) {
	p.skipSpace()
	switch {
	case strings.HasPrefix(p.in[p.pos:], "<="):
		p.pos += 2
		return LE, nil
	case strings.HasPrefix(p.in[p.pos:], ">="):
		p.pos += 2
		return GE, nil
	case strings.HasPrefix(p.in[p.pos:], "=="):
		p.pos += 2
		return EQ, nil
	case p.peek() == '=':
		p.pos++
		return EQ, nil
	case p.peek() == '<':
		p.pos++
		return LT, nil
	case p.peek() == '>':
		p.pos++
		return GT, nil
	}
	return 0, fmt.Errorf("expected comparison operator at offset %d", p.pos)
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return 0, fmt.Errorf("expected number at offset %d", start)
	}
	f, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", p.in[start:p.pos], err)
	}
	return f, nil
}

func (p *parser) intNumber() (int, error) {
	f, err := p.number()
	if err != nil {
		return 0, err
	}
	n := int(f)
	if float64(n) != f {
		return 0, fmt.Errorf("expected integer, got %g", f)
	}
	return n, nil
}

func (p *parser) parseConstraint() (Constraint, error) {
	p.skipSpace()
	if strings.HasPrefix(p.in[p.pos:], "|G|") {
		p.pos += 3
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		n, err := p.intNumber()
		if err != nil {
			return nil, err
		}
		return GroupCount{Op: op, N: n}, nil
	}
	if strings.HasPrefix(p.in[p.pos:], "|g|") {
		p.pos += 3
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		n, err := p.intNumber()
		if err != nil {
			return nil, err
		}
		return GroupSize{Op: op, N: n}, nil
	}
	word, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(word) {
	case "cannotlink", "mustlink":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		b, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if strings.ToLower(word) == "cannotlink" {
			return CannotLink{A: a, B: b}, nil
		}
		return MustLink{A: a, B: b}, nil

	case "distinct":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		n, err := p.intNumber()
		if err != nil {
			return nil, err
		}
		if rest, ok := strings.CutPrefix(attr, "class."); ok {
			return ClassAttrDistinct{Attr: rest, Op: op, N: n}, nil
		}
		return InstanceAggregate{AggFn: Distinct, Attr: attr, Op: op, Threshold: float64(n)}, nil

	case "sum", "avg", "min", "max":
		agg := map[string]Agg{"sum": Sum, "avg": Avg, "min": Min, "max": Max}[strings.ToLower(word)]
		if err := p.expect('('); err != nil {
			return nil, err
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		th, err := p.number()
		if err != nil {
			return nil, err
		}
		return InstanceAggregate{AggFn: agg, Attr: attr, Op: op, Threshold: th}, nil

	case "count":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		p.skipSpace()
		var class string
		if p.peek() != ')' {
			class, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		n, err := p.intNumber()
		if err != nil {
			return nil, err
		}
		if class == "" {
			return InstanceAggregate{AggFn: Count, Op: op, Threshold: float64(n)}, nil
		}
		return ClassCardinality{ClassName: class, Op: op, N: n}, nil

	case "gap":
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		if op != LE && op != LT {
			return nil, fmt.Errorf("gap supports only upper bounds (<=, <)")
		}
		sec, err := p.number()
		if err != nil {
			return nil, err
		}
		return MaxGap{Seconds: sec}, nil

	case "eventsperclass":
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		n, err := p.intNumber()
		if err != nil {
			return nil, err
		}
		return EventsPerClass{Op: op, N: n}, nil

	case "span":
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		sec, err := p.number()
		if err != nil {
			return nil, err
		}
		return InstanceSpan{Op: op, Seconds: sec}, nil

	case "avgspan":
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		sec, err := p.number()
		if err != nil {
			return nil, err
		}
		return AvgInstanceSpan{Op: op, Seconds: sec}, nil

	case "avginstances":
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		return AvgInstancesPerTrace{Op: op, N: n}, nil

	case "maxinstances":
		op, err := p.op()
		if err != nil {
			return nil, err
		}
		if op != LE && op != LT {
			return nil, fmt.Errorf("maxinstances supports only upper bounds (<=, <)")
		}
		n, err := p.intNumber()
		if err != nil {
			return nil, err
		}
		if op == LT {
			n--
		}
		return MaxInstancesPerTrace{N: n}, nil

	case "pct":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		frac, err := p.number()
		if err != nil {
			return nil, err
		}
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("pct fraction %g outside [0,1]", frac)
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		inner, err := p.parseConstraint()
		if err != nil {
			return nil, err
		}
		ic, ok := inner.(InstanceConstraint)
		if !ok {
			return nil, fmt.Errorf("pct requires an instance constraint, got %s (%s)", inner, inner.Category())
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Percentage{Fraction: frac, Inner: ic}, nil
	}
	return nil, fmt.Errorf("unknown constraint %q", word)
}

// Package constraints implements GECCO's constraint framework (§IV-A): the
// three constraint categories (grouping, class-based, instance-based), their
// monotonicity classification (Table II), a small textual DSL for declaring
// constraints, and an evaluator that checks a candidate group against a
// constraint set over an indexed event log.
package constraints

import (
	"fmt"
	"strings"
	"time"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Category partitions constraints as in §IV-A.
type Category int

const (
	// Grouping constraints (R_G) bound the size |G| of the grouping.
	Grouping Category = iota
	// Class constraints (R_C) are checked on a group's event classes alone.
	Class
	// Instance constraints (R_I) are checked on every group instance.
	Instance
)

func (c Category) String() string {
	switch c {
	case Grouping:
		return "grouping"
	case Class:
		return "class"
	case Instance:
		return "instance"
	}
	return "unknown"
}

// Monotonicity is the pruning-relevant property of Table II. A constraint is
// monotonic when enlarging a group can never introduce a violation, and
// anti-monotonic when enlarging a group can never repair one.
//
// Note that, as in the paper, the classification is stated with respect to
// adding event classes to a group; with split-on-repeat instance
// segmentation this is a (sound-in-practice) heuristic rather than a strict
// guarantee, because adding a class can re-segment instances.
type Monotonicity int

const (
	Monotonic Monotonicity = iota
	AntiMonotonic
	NonMonotonic
	NotApplicable // grouping constraints
)

func (m Monotonicity) String() string {
	switch m {
	case Monotonic:
		return "monotonic"
	case AntiMonotonic:
		return "anti-monotonic"
	case NonMonotonic:
		return "non-monotonic"
	case NotApplicable:
		return "n/a"
	}
	return "unknown"
}

// Op is a comparison operator used by threshold constraints.
type Op int

const (
	LE Op = iota
	GE
	EQ
	LT
	GT
)

func (o Op) String() string {
	return [...]string{"<=", ">=", "==", "<", ">"}[o]
}

// Cmp applies the operator to (value, threshold).
func (o Op) Cmp(v, threshold float64) bool {
	switch o {
	case LE:
		return v <= threshold
	case GE:
		return v >= threshold
	case EQ:
		return v == threshold
	case LT:
		return v < threshold
	case GT:
		return v > threshold
	}
	return false
}

// upperBounding reports whether the operator expresses "must not exceed".
func (o Op) upperBounding() bool { return o == LE || o == LT }

// lowerBounding reports whether the operator expresses "at least".
func (o Op) lowerBounding() bool { return o == GE || o == GT }

// boundMonotonicity is the Table II rule: minimum requirements are
// monotonic, maximum requirements anti-monotonic, equality non-monotonic —
// for quantities that can only grow as classes are added to a group.
func boundMonotonicity(o Op) Monotonicity {
	switch {
	case o.lowerBounding():
		return Monotonic
	case o.upperBounding():
		return AntiMonotonic
	default:
		return NonMonotonic
	}
}

// Constraint is a single requirement on the abstracted log.
type Constraint interface {
	Category() Category
	Monotonicity() Monotonicity
	String() string
}

// GroupingConstraint bounds the number of groups in the final grouping.
type GroupingConstraint interface {
	Constraint
	HoldsGrouping(numGroups int) bool
	// Bounds returns the implied (min, max) group counts; max < 0 means
	// unbounded. Used to translate R_G into MIP constraints (Eq. 5).
	Bounds() (minGroups, maxGroups int)
}

// ClassConstraint is checked against a group's classes in isolation.
type ClassConstraint interface {
	Constraint
	HoldsGroup(ctx *ClassContext, g bitset.Set) bool
}

// InstanceConstraint is checked against all instances of a group in the log.
// Implementations receive the precomputed instances and should exit early
// where possible.
type InstanceConstraint interface {
	Constraint
	HoldsInstances(ctx *InstanceContext, g bitset.Set, insts []instances.Instance) bool
}

// ClassContext carries the class-level information class constraints need.
type ClassContext struct {
	Classes []string
	ClassID map[string]int
	// AttrValues returns, per class id, the distinct values of the named
	// attribute (memoised by the evaluator).
	AttrValues func(attr string) []map[string]struct{}
}

// InstanceContext carries the event-level information instance constraints
// need.
type InstanceContext struct {
	X *eventlog.Index
}

// ---------------------------------------------------------------------------
// Grouping constraints (R_G)

// GroupCount is "|G| op n", e.g. |G| <= 3 (constraint Gr of Table IV).
type GroupCount struct {
	Op Op
	N  int
}

func (GroupCount) Category() Category         { return Grouping }
func (GroupCount) Monotonicity() Monotonicity { return NotApplicable }
func (c GroupCount) String() string           { return fmt.Sprintf("|G| %s %d", c.Op, c.N) }

func (c GroupCount) HoldsGrouping(k int) bool { return c.Op.Cmp(float64(k), float64(c.N)) }

func (c GroupCount) Bounds() (int, int) {
	switch c.Op {
	case LE:
		return 0, c.N
	case LT:
		return 0, c.N - 1
	case GE:
		return c.N, -1
	case GT:
		return c.N + 1, -1
	case EQ:
		return c.N, c.N
	}
	return 0, -1
}

// ---------------------------------------------------------------------------
// Class-based constraints (R_C)

// GroupSize is "|g| op n", e.g. |g| <= 8 (the constraint added to every
// experimental set in §VI-A).
type GroupSize struct {
	Op Op
	N  int
}

func (GroupSize) Category() Category           { return Class }
func (c GroupSize) Monotonicity() Monotonicity { return boundMonotonicity(c.Op) }
func (c GroupSize) String() string             { return fmt.Sprintf("|g| %s %d", c.Op, c.N) }

func (c GroupSize) HoldsGroup(_ *ClassContext, g bitset.Set) bool {
	return c.Op.Cmp(float64(g.Len()), float64(c.N))
}

// CannotLink forbids two event classes from sharing a group (anti-monotonic,
// Table II).
type CannotLink struct{ A, B string }

func (CannotLink) Category() Category         { return Class }
func (CannotLink) Monotonicity() Monotonicity { return AntiMonotonic }
func (c CannotLink) String() string           { return fmt.Sprintf("cannotlink(%s, %s)", c.A, c.B) }

func (c CannotLink) HoldsGroup(ctx *ClassContext, g bitset.Set) bool {
	a, okA := ctx.ClassID[c.A]
	b, okB := ctx.ClassID[c.B]
	if !okA || !okB {
		return true // classes absent from the log: vacuously satisfied
	}
	return !(g.Contains(a) && g.Contains(b))
}

// MustLink requires two event classes to share a group (non-monotonic,
// Table II): a group containing exactly one of the two violates it, while
// both its subsets and supersets may satisfy it.
type MustLink struct{ A, B string }

func (MustLink) Category() Category         { return Class }
func (MustLink) Monotonicity() Monotonicity { return NonMonotonic }
func (c MustLink) String() string           { return fmt.Sprintf("mustlink(%s, %s)", c.A, c.B) }

func (c MustLink) HoldsGroup(ctx *ClassContext, g bitset.Set) bool {
	a, okA := ctx.ClassID[c.A]
	b, okB := ctx.ClassID[c.B]
	if !okA || !okB {
		return true
	}
	return g.Contains(a) == g.Contains(b)
}

// ClassAttrDistinct is "distinct(class.D) op n": the number of distinct
// values of a class-level attribute across the group's classes, e.g. the
// case study's |g.origin| <= 1 (§VI-D) and baseline constraint BL3.
type ClassAttrDistinct struct {
	Attr string
	Op   Op
	N    int
}

func (ClassAttrDistinct) Category() Category           { return Class }
func (c ClassAttrDistinct) Monotonicity() Monotonicity { return boundMonotonicity(c.Op) }
func (c ClassAttrDistinct) String() string {
	return fmt.Sprintf("distinct(class.%s) %s %d", c.Attr, c.Op, c.N)
}

func (c ClassAttrDistinct) HoldsGroup(ctx *ClassContext, g bitset.Set) bool {
	vals := ctx.AttrValues(c.Attr)
	distinct := make(map[string]struct{})
	g.ForEach(func(cl int) bool {
		for v := range vals[cl] {
			distinct[v] = struct{}{}
		}
		return true
	})
	return c.Op.Cmp(float64(len(distinct)), float64(c.N))
}

// ---------------------------------------------------------------------------
// Instance-based constraints (R_I)

// Agg enumerates within-instance aggregation functions over an event
// attribute.
type Agg int

const (
	Sum Agg = iota
	Avg
	Min
	Max
	Count    // number of events in the instance (attribute ignored)
	Distinct // number of distinct attribute values in the instance
)

func (a Agg) String() string {
	return [...]string{"sum", "avg", "min", "max", "count", "distinct"}[a]
}

// InstanceAggregate is "agg(attr) op threshold" checked per group instance,
// e.g. sum(duration) >= 101 (set M), avg(duration) <= 5e5 (set N), and
// distinct(role) <= 3 (set A) of Table IV.
type InstanceAggregate struct {
	AggFn     Agg
	Attr      string
	Op        Op
	Threshold float64
	// AllowNegative marks sum aggregations over attributes that may be
	// negative, which makes them non-monotonic (Table II's remark).
	AllowNegative bool
}

func (InstanceAggregate) Category() Category { return Instance }

func (c InstanceAggregate) Monotonicity() Monotonicity {
	switch c.AggFn {
	case Sum:
		if c.AllowNegative {
			return NonMonotonic
		}
		return boundMonotonicity(c.Op)
	case Count, Distinct:
		return boundMonotonicity(c.Op)
	case Avg:
		return NonMonotonic
	case Min:
		// Adding events can only lower the minimum.
		if c.Op.upperBounding() {
			return Monotonic
		}
		if c.Op.lowerBounding() {
			return AntiMonotonic
		}
		return NonMonotonic
	case Max:
		return boundMonotonicity(c.Op)
	}
	return NonMonotonic
}

func (c InstanceAggregate) String() string {
	return fmt.Sprintf("%s(%s) %s %g", c.AggFn, c.Attr, c.Op, c.Threshold)
}

// holdsOne checks the constraint for a single instance, reading the
// attribute's column at the instance's global event positions — typed array
// loads gated by a presence bitset, no per-event map probe.
//
//gecco:hotpath
func (c InstanceAggregate) holdsOne(ctx *InstanceContext, col *eventlog.Column, inst *instances.Instance) bool {
	base := ctx.X.TraceStart(inst.Trace)
	switch c.AggFn {
	case Count:
		return c.Op.Cmp(float64(len(inst.Positions)), c.Threshold)
	case Distinct:
		return c.Op.Cmp(float64(distinctValues(col, base, inst.Positions)), c.Threshold)
	}
	sum, n := 0.0, 0
	mn, mx := 0.0, 0.0
	if col != nil {
		for _, pos := range inst.Positions {
			v, ok := col.Num(base + pos)
			if !ok {
				continue
			}
			if n == 0 {
				mn, mx = v, v
			} else {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			sum += v
			n++
		}
	}
	if n == 0 {
		return true // no values: vacuously satisfied
	}
	switch c.AggFn {
	case Sum:
		return c.Op.Cmp(sum, c.Threshold)
	case Avg:
		return c.Op.Cmp(sum/float64(n), c.Threshold)
	case Min:
		return c.Op.Cmp(mn, c.Threshold)
	case Max:
		return c.Op.Cmp(mx, c.Threshold)
	}
	return true
}

// distinctValues counts the distinct categorical keys of the attribute over
// the instance's events. Pure-string columns compare dictionary codes with a
// linear scan over the (small) instance — no string hashing at all; other
// columns fall back to AsString-equivalent keys.
func distinctValues(col *eventlog.Column, base int, positions []int) int {
	if col == nil {
		return 0
	}
	if col.StringsOnly() {
		if len(positions) <= 64 {
			// Typical instances are short: a linear scan over seen codes
			// beats any hashing.
			codes := make([]uint32, 0, len(positions))
			for _, pos := range positions {
				code, ok := col.Code(base + pos)
				if !ok {
					continue
				}
				dup := false
				for _, seen := range codes {
					if seen == code {
						dup = true
						break
					}
				}
				if !dup {
					codes = append(codes, code)
				}
			}
			return len(codes)
		}
		seen := make(map[uint32]struct{}, len(positions))
		for _, pos := range positions {
			if code, ok := col.Code(base + pos); ok {
				seen[code] = struct{}{}
			}
		}
		return len(seen)
	}
	seen := make(map[string]struct{}, len(positions))
	for _, pos := range positions {
		if key, ok := col.Key(base + pos); ok {
			seen[key] = struct{}{}
		}
	}
	return len(seen)
}

//gecco:hotpath
func (c InstanceAggregate) HoldsInstances(ctx *InstanceContext, _ bitset.Set, insts []instances.Instance) bool {
	col := ctx.X.Column(c.Attr)
	for i := range insts {
		if !c.holdsOne(ctx, col, &insts[i]) {
			return false
		}
	}
	return true
}

// MaxGap is "gap <= seconds": the time between consecutive events of an
// instance must not exceed the bound (anti-monotonic, Table II).
type MaxGap struct{ Seconds float64 }

func (MaxGap) Category() Category         { return Instance }
func (MaxGap) Monotonicity() Monotonicity { return AntiMonotonic }
func (c MaxGap) String() string           { return fmt.Sprintf("gap <= %g", c.Seconds) }

func (c MaxGap) HoldsInstances(ctx *InstanceContext, _ bitset.Set, insts []instances.Instance) bool {
	col := ctx.X.Column(eventlog.AttrTimestamp)
	if col == nil {
		return true
	}
	for i := range insts {
		inst := &insts[i]
		base := ctx.X.TraceStart(inst.Trace)
		var prev time.Time
		havePrev := false
		for _, pos := range inst.Positions {
			t, ok := col.Time(base + pos)
			if !ok {
				continue
			}
			if havePrev && t.Sub(prev).Seconds() > c.Seconds {
				return false
			}
			prev, havePrev = t, true
		}
	}
	return true
}

// EventsPerClass is "eventsperclass op n": a bound on the number of events
// per event class within an instance (Table II lists the <= 1 form as
// anti-monotonic).
type EventsPerClass struct {
	Op Op
	N  int
}

func (EventsPerClass) Category() Category           { return Instance }
func (c EventsPerClass) Monotonicity() Monotonicity { return boundMonotonicity(c.Op) }
func (c EventsPerClass) String() string             { return fmt.Sprintf("eventsperclass %s %d", c.Op, c.N) }

//gecco:hotpath
func (c EventsPerClass) HoldsInstances(ctx *InstanceContext, _ bitset.Set, insts []instances.Instance) bool {
	// One count-slice per check, reused across instances by re-zeroing only
	// the touched classes — no per-instance map allocation.
	counts := make([]int, ctx.X.NumClasses())
	var touched []int
	for i := range insts {
		touched = instances.ClassCountsInto(ctx.X, &insts[i], counts, touched[:0])
		ok := true
		for _, cl := range touched {
			if !c.Op.Cmp(float64(counts[cl]), float64(c.N)) {
				ok = false
			}
			counts[cl] = 0
		}
		if !ok {
			return false
		}
	}
	return true
}

// ClassCardinality is "count(class) op n": a per-instance cardinality bound
// on events of one specific class (§IV-A notes inst can enforce these). The
// constraint is vacuous for groups not containing the class.
type ClassCardinality struct {
	ClassName string
	Op        Op
	N         int
}

func (ClassCardinality) Category() Category           { return Instance }
func (c ClassCardinality) Monotonicity() Monotonicity { return boundMonotonicity(c.Op) }
func (c ClassCardinality) String() string {
	return fmt.Sprintf("count(%s) %s %d", c.ClassName, c.Op, c.N)
}

//gecco:hotpath
func (c ClassCardinality) HoldsInstances(ctx *InstanceContext, g bitset.Set, insts []instances.Instance) bool {
	id, ok := ctx.X.ClassID[c.ClassName]
	if !ok || !g.Contains(id) {
		return true
	}
	counts := make([]int, ctx.X.NumClasses())
	var touched []int
	for i := range insts {
		touched = instances.ClassCountsInto(ctx.X, &insts[i], counts, touched[:0])
		n := counts[id]
		for _, cl := range touched {
			counts[cl] = 0
		}
		if !c.Op.Cmp(float64(n), float64(c.N)) {
			return false
		}
	}
	return true
}

// InstanceSpan is "span op seconds": each instance's wall-clock duration
// (last minus first timestamp) compared to a bound.
type InstanceSpan struct {
	Op      Op
	Seconds float64
}

func (InstanceSpan) Category() Category           { return Instance }
func (c InstanceSpan) Monotonicity() Monotonicity { return boundMonotonicity(c.Op) }
func (c InstanceSpan) String() string             { return fmt.Sprintf("span %s %g", c.Op, c.Seconds) }

func (c InstanceSpan) HoldsInstances(ctx *InstanceContext, _ bitset.Set, insts []instances.Instance) bool {
	col := ctx.X.Column(eventlog.AttrTimestamp)
	if col == nil {
		return true
	}
	for i := range insts {
		if s, ok := spanSeconds(ctx.X, col, &insts[i]); ok && !c.Op.Cmp(s, c.Seconds) {
			return false
		}
	}
	return true
}

// AvgInstanceSpan is "avgspan op seconds": the average wall-clock duration
// over all of the group's instances (Table II's "at most 1 hour on average";
// non-monotonic because it aggregates across instances).
type AvgInstanceSpan struct {
	Op      Op
	Seconds float64
}

func (AvgInstanceSpan) Category() Category         { return Instance }
func (AvgInstanceSpan) Monotonicity() Monotonicity { return NonMonotonic }
func (c AvgInstanceSpan) String() string           { return fmt.Sprintf("avgspan %s %g", c.Op, c.Seconds) }

func (c AvgInstanceSpan) HoldsInstances(ctx *InstanceContext, _ bitset.Set, insts []instances.Instance) bool {
	col := ctx.X.Column(eventlog.AttrTimestamp)
	if col == nil {
		return true
	}
	sum, n := 0.0, 0
	for i := range insts {
		if s, ok := spanSeconds(ctx.X, col, &insts[i]); ok {
			sum += s
			n++
		}
	}
	if n == 0 {
		return true
	}
	return c.Op.Cmp(sum/float64(n), c.Seconds)
}

// spanSeconds computes the instance's wall-clock duration from the
// timestamp column; callers resolve (and nil-check) the column once per
// constraint check, not per instance.
func spanSeconds(x *eventlog.Index, col *eventlog.Column, inst *instances.Instance) (float64, bool) {
	base := x.TraceStart(inst.Trace)
	first, last := inst.Span()
	tf, okF := col.Time(base + first)
	tl, okL := col.Time(base + last)
	if !okF || !okL {
		return 0, false
	}
	return tl.Sub(tf).Seconds(), true
}

// Percentage loosens a per-instance constraint to hold for a fraction of the
// group's instances, e.g. pct(0.95, sum(cost) <= 500) (Table II's last row,
// classified anti-monotonic like its inner constraint there).
type Percentage struct {
	Fraction float64
	Inner    InstanceConstraint
}

func (Percentage) Category() Category { return Instance }

func (c Percentage) Monotonicity() Monotonicity {
	// Follow the paper's Table II, which classifies the loosened constraint
	// like its strict counterpart.
	return c.Inner.Monotonicity()
}

func (c Percentage) String() string {
	return fmt.Sprintf("pct(%g, %s)", c.Fraction, c.Inner)
}

func (c Percentage) HoldsInstances(ctx *InstanceContext, g bitset.Set, insts []instances.Instance) bool {
	if len(insts) == 0 {
		return true
	}
	ok := 0
	for i := range insts {
		if c.Inner.HoldsInstances(ctx, g, insts[i:i+1]) {
			ok++
		}
	}
	return float64(ok)/float64(len(insts)) >= c.Fraction
}

// ---------------------------------------------------------------------------
// Constraint sets

// Set is a partitioned collection of constraints (the paper's R, split into
// R_G, R_C, R_I).
type Set struct {
	Grouping []GroupingConstraint
	Class    []ClassConstraint
	Instance []InstanceConstraint
}

// NewSet partitions arbitrary constraints by category.
func NewSet(cs ...Constraint) *Set {
	s := &Set{}
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// Add inserts a constraint into its category slice. It panics if the
// constraint does not implement the interface matching its category, which
// indicates a programming error in a constraint type.
func (s *Set) Add(c Constraint) {
	switch c.Category() {
	case Grouping:
		s.Grouping = append(s.Grouping, c.(GroupingConstraint))
	case Class:
		s.Class = append(s.Class, c.(ClassConstraint))
	case Instance:
		s.Instance = append(s.Instance, c.(InstanceConstraint))
	}
}

// All returns every constraint in the set.
func (s *Set) All() []Constraint {
	out := make([]Constraint, 0, len(s.Grouping)+len(s.Class)+len(s.Instance))
	for _, c := range s.Grouping {
		out = append(out, c)
	}
	for _, c := range s.Class {
		out = append(out, c)
	}
	for _, c := range s.Instance {
		out = append(out, c)
	}
	return out
}

// Len returns the number of constraints in the set.
func (s *Set) Len() int { return len(s.Grouping) + len(s.Class) + len(s.Instance) }

func (s *Set) String() string {
	parts := make([]string, 0, s.Len())
	for _, c := range s.All() {
		parts = append(parts, c.String())
	}
	return strings.Join(parts, " AND ")
}

// Mode is the constraint-checking mode of Algorithm 1 (line 1).
type Mode int

const (
	// ModeAnti: at least one anti-monotonic per-group constraint exists, so
	// violating groups need not be expanded.
	ModeAnti Mode = iota
	// ModeMono: all per-group constraints are monotonic, so supersets of
	// satisfying groups need no re-validation.
	ModeMono
	// ModeNon: neither pruning strategy applies.
	ModeNon
)

func (m Mode) String() string {
	return [...]string{"anti-monotonic", "monotonic", "non-monotonic"}[m]
}

// CheckingMode implements setCheckingMode(R): anti-monotonic if R contains
// at least one anti-monotonic constraint, monotonic if all per-group
// constraints (R \ R_G) are monotonic, otherwise non-monotonic.
func (s *Set) CheckingMode() Mode {
	perGroup := make([]Constraint, 0, len(s.Class)+len(s.Instance))
	for _, c := range s.Class {
		perGroup = append(perGroup, c)
	}
	for _, c := range s.Instance {
		perGroup = append(perGroup, c)
	}
	allMono := true
	for _, c := range perGroup {
		switch c.Monotonicity() {
		case AntiMonotonic:
			return ModeAnti
		case Monotonic:
		default:
			allMono = false
		}
	}
	if len(perGroup) > 0 && allMono {
		return ModeMono
	}
	return ModeNon
}

// GroupBounds folds all grouping constraints into a single (min, max) bound
// on |G|; max < 0 means unbounded.
func (s *Set) GroupBounds() (minGroups, maxGroups int) {
	minGroups, maxGroups = 0, -1
	for _, c := range s.Grouping {
		lo, hi := c.Bounds()
		if lo > minGroups {
			minGroups = lo
		}
		if hi >= 0 && (maxGroups < 0 || hi < maxGroups) {
			maxGroups = hi
		}
	}
	return minGroups, maxGroups
}

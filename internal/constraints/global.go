package constraints

import (
	"fmt"

	"gecco/internal/bitset"
	"gecco/internal/instances"
)

// GroupingInstanceConstraint is checked against an entire grouping and the
// instances of all its groups — the paper's first future-work direction
// (§VIII: "instance-based constraints over the entire grouping rather than
// per group"). Such constraints cannot be checked per candidate, so Step 2
// enforces them by iterating the exact-cover solve with no-good cuts: each
// optimal grouping that violates a global constraint is excluded and the
// next-best grouping is sought.
type GroupingInstanceConstraint interface {
	Constraint
	HoldsGroupingInstances(ctx *InstanceContext, groups []bitset.Set, insts [][]instances.Instance) bool
}

// globalCategory marks grouping-instance constraints; they are stored with
// the grouping constraints but evaluated on the full solution.
//
// AvgInstancesPerTrace bounds the mean number of activity instances per
// trace in the abstracted log: "avginstances <= 4" demands that, on
// average, a trace abstracts to at most 4 activity instances — a direct,
// global handle on the attained abstraction coarseness that no per-group
// constraint can express.
type AvgInstancesPerTrace struct {
	Op Op
	N  float64
}

func (AvgInstancesPerTrace) Category() Category         { return Grouping }
func (AvgInstancesPerTrace) Monotonicity() Monotonicity { return NonMonotonic }
func (c AvgInstancesPerTrace) String() string           { return fmt.Sprintf("avginstances %s %g", c.Op, c.N) }

// HoldsGrouping is vacuously true: the size of the grouping alone does not
// decide this constraint; the real check is HoldsGroupingInstances.
func (c AvgInstancesPerTrace) HoldsGrouping(int) bool { return true }

// Bounds places no group-count bound.
func (c AvgInstancesPerTrace) Bounds() (int, int) { return 0, -1 }

func (c AvgInstancesPerTrace) HoldsGroupingInstances(ctx *InstanceContext, groups []bitset.Set, insts [][]instances.Instance) bool {
	traces := ctx.X.NumTraces()
	if traces == 0 {
		return true
	}
	total := 0
	for _, gi := range insts {
		total += len(gi)
	}
	return c.Op.Cmp(float64(total)/float64(traces), c.N)
}

// MaxInstancesPerTrace bounds the number of activity instances in every
// single abstracted trace: "maxinstances <= 6".
type MaxInstancesPerTrace struct {
	N int
}

func (MaxInstancesPerTrace) Category() Category         { return Grouping }
func (MaxInstancesPerTrace) Monotonicity() Monotonicity { return NonMonotonic }
func (c MaxInstancesPerTrace) String() string           { return fmt.Sprintf("maxinstances <= %d", c.N) }
func (c MaxInstancesPerTrace) HoldsGrouping(int) bool   { return true }
func (c MaxInstancesPerTrace) Bounds() (int, int)       { return 0, -1 }

func (c MaxInstancesPerTrace) HoldsGroupingInstances(ctx *InstanceContext, groups []bitset.Set, insts [][]instances.Instance) bool {
	perTrace := make(map[int]int)
	for _, gi := range insts {
		for i := range gi {
			perTrace[gi[i].Trace]++
			if perTrace[gi[i].Trace] > c.N {
				return false
			}
		}
	}
	return true
}

// GlobalConstraints extracts the grouping-instance constraints of the set.
func (s *Set) GlobalConstraints() []GroupingInstanceConstraint {
	var out []GroupingInstanceConstraint
	for _, c := range s.Grouping {
		if g, ok := c.(GroupingInstanceConstraint); ok {
			out = append(out, g)
		}
	}
	return out
}

// HoldsGlobal evaluates all grouping-instance constraints on a grouping.
func (e *Evaluator) HoldsGlobal(groups []bitset.Set) bool {
	globals := e.Set.GlobalConstraints()
	if len(globals) == 0 {
		return true
	}
	insts := make([][]instances.Instance, len(groups))
	for i, g := range groups {
		insts[i] = instances.OfLog(e.X, g, e.Policy)
	}
	for _, c := range globals {
		if !c.HoldsGroupingInstances(&e.instCtx, groups, insts) {
			return false
		}
	}
	return true
}

package constraints

import (
	"strings"
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

func evaluatorFor(t *testing.T, log *eventlog.Log, set *Set) (*eventlog.Index, *Evaluator) {
	t.Helper()
	x := eventlog.NewIndex(log)
	return x, NewEvaluator(x, set, instances.SplitOnRepeat)
}

func group(x *eventlog.Index, names ...string) bitset.Set {
	g, unknown := x.GroupFromNames(names)
	if len(unknown) > 0 {
		panic("unknown class " + strings.Join(unknown, ","))
	}
	return g
}

// --- Monotonicity classification (Table II) ------------------------------

func TestMonotonicityTable2(t *testing.T) {
	cases := []struct {
		src  string
		want Monotonicity
	}{
		{"|g| >= 5", Monotonic},
		{"|g| <= 10", AntiMonotonic},
		{"cannotlink(rcp, acc)", AntiMonotonic},
		{"mustlink(inf, arv)", NonMonotonic},
		{"distinct(doc) >= 2", Monotonic},
		{"max(cost) <= 500", AntiMonotonic},
		{"avgspan <= 3600", NonMonotonic},
		{"gap <= 600", AntiMonotonic},
		{"eventsperclass <= 1", AntiMonotonic},
		{"pct(0.95, max(cost) <= 500)", AntiMonotonic},
		{"sum(duration) >= 101", Monotonic},
		{"avg(duration) <= 5e5", NonMonotonic},
		{"distinct(role) <= 3", AntiMonotonic},
		{"min(cost) >= 10", AntiMonotonic},
		{"min(cost) <= 10", Monotonic},
		{"count() >= 2", Monotonic},
	}
	for _, tc := range cases {
		c := MustParse(tc.src)
		if got := c.Monotonicity(); got != tc.want {
			t.Errorf("%s: monotonicity %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestCheckingMode(t *testing.T) {
	cases := []struct {
		srcs []string
		want Mode
	}{
		{[]string{"|g| <= 8"}, ModeAnti},
		{[]string{"sum(duration) >= 101"}, ModeMono},
		{[]string{"avg(duration) <= 5e5"}, ModeNon},
		{[]string{"sum(duration) >= 101", "avg(duration) <= 5e5"}, ModeNon},
		{[]string{"sum(duration) >= 101", "|g| <= 8"}, ModeAnti},
		{[]string{"|G| <= 3"}, ModeNon}, // grouping constraints don't count
	}
	for _, tc := range cases {
		set := &Set{}
		for _, s := range tc.srcs {
			set.Add(MustParse(s))
		}
		if got := set.CheckingMode(); got != tc.want {
			t.Errorf("%v: mode %v, want %v", tc.srcs, got, tc.want)
		}
	}
}

// --- Parser ----------------------------------------------------------------

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"|G| <= 3", "|G| >= 5", "|g| <= 8", "|g| >= 5",
		"cannotlink(rcp, acc)", "mustlink(inf, arv)",
		"distinct(class.org) <= 1", "distinct(role) <= 3",
		"sum(duration) >= 101", "avg(duration) <= 500000",
		"min(cost) >= 10", "max(cost) <= 500",
		"count() <= 12", "count(rcp) >= 2",
		"gap <= 600", "eventsperclass <= 1",
		"span <= 3600", "avgspan <= 3600",
		"pct(0.95, max(cost) <= 500)",
	}
	for _, src := range srcs {
		c, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Re-parse the canonical form.
		if _, err := Parse(c.String()); err != nil {
			t.Errorf("re-Parse(%q from %q): %v", c.String(), src, err)
		}
	}
}

func TestParseQuotedNames(t *testing.T) {
	c := MustParse("cannotlink('A_Create Application', 'O_Created')")
	cl, ok := c.(CannotLink)
	if !ok || cl.A != "A_Create Application" || cl.B != "O_Created" {
		t.Fatalf("parsed %#v", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "bogus", "|G| <=", "|g| ~ 3", "sum() >= 1",
		"pct(1.5, gap <= 10)", "pct(0.5, |g| <= 3)", "gap >= 10",
		"|g| <= 8 trailing", "sum(duration >= 101",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSetSkipsComments(t *testing.T) {
	set, err := ParseSet("# comment\n|g| <= 8\n\n|G| <= 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Class) != 1 || len(set.Grouping) != 1 {
		t.Fatalf("set %+v", set)
	}
}

// --- Class constraints -------------------------------------------------------

func TestGroupSizeAndLinks(t *testing.T) {
	log := procgen.RunningExampleTable1()
	x, ev := evaluatorFor(t, log, NewSet(
		MustParse("|g| <= 2"),
		MustParse("cannotlink(rcp, acc)"),
		MustParse("mustlink(inf, arv)"),
	))
	if ev.HoldsClass(group(x, "rcp", "ckc", "ckt")) {
		t.Error("size-3 group should violate |g| <= 2")
	}
	if ev.HoldsClass(group(x, "rcp", "acc")) {
		t.Error("cannot-link violated group accepted")
	}
	if ev.HoldsClass(group(x, "inf", "prio")) {
		t.Error("must-link: inf without arv accepted")
	}
	if !ev.HoldsClass(group(x, "inf", "arv")) {
		t.Error("inf+arv should satisfy all")
	}
	if !ev.HoldsClass(group(x, "prio")) {
		t.Error("singleton without linked classes should satisfy must-link")
	}
}

func TestClassAttrDistinct(t *testing.T) {
	log := procgen.RunningExampleTable1()
	x, ev := evaluatorFor(t, log, NewSet(MustParse("distinct(class.role) <= 1")))
	if !ev.HoldsClass(group(x, "rcp", "ckc")) {
		t.Error("same-role group rejected")
	}
	if ev.HoldsClass(group(x, "rcp", "acc")) {
		t.Error("clerk+manager group accepted")
	}
}

// --- Instance constraints ----------------------------------------------------

func TestInstanceRoleDistinct(t *testing.T) {
	log := procgen.RunningExampleTable1()
	x, ev := evaluatorFor(t, log, NewSet(MustParse("distinct(role) <= 1")))
	if !ev.Holds(group(x, "rcp", "ckc", "ckt")) {
		t.Error("clerk-only group rejected")
	}
	if ev.Holds(group(x, "ckc", "acc")) {
		t.Error("mixed-role instance accepted")
	}
}

func TestSumDuration(t *testing.T) {
	log := procgen.RunningExampleTable1() // every event has duration 60
	x, ev := evaluatorFor(t, log, NewSet(MustParse("sum(duration) >= 101")))
	if ev.Holds(group(x, "prio")) {
		t.Error("singleton with 60s duration should fail sum >= 101")
	}
	if !ev.Holds(group(x, "inf", "arv")) {
		t.Error("two 60s events (120s) should pass sum >= 101")
	}
}

func TestEventsPerClass(t *testing.T) {
	// Trace with a repeated class within one instance needs WholeTrace to
	// trigger the violation (SplitOnRepeat splits at the repeat).
	log := &eventlog.Log{Traces: []eventlog.Trace{{ID: "1", Events: []eventlog.Event{
		{Class: "a"}, {Class: "b"}, {Class: "a"},
	}}}}
	x := eventlog.NewIndex(log)
	set := NewSet(MustParse("eventsperclass <= 1"))
	evWhole := NewEvaluator(x, set, instances.WholeTrace)
	if evWhole.Holds(group(x, "a", "b")) {
		t.Error("whole-trace instance with 2×a accepted")
	}
	evSplit := NewEvaluator(x, set, instances.SplitOnRepeat)
	if !evSplit.Holds(group(x, "a", "b")) {
		t.Error("split-on-repeat guarantees 1 event per class per instance")
	}
}

func TestMaxGapAndSpan(t *testing.T) {
	log := procgen.RunningExampleTable1() // events 60s apart within a trace
	x, _ := evaluatorFor(t, log, NewSet())
	gapOK := NewEvaluator(x, NewSet(MustParse("gap <= 61")), instances.SplitOnRepeat)
	if !gapOK.Holds(group(x, "inf", "arv")) {
		t.Error("61s gap bound should accept 60s-apart events")
	}
	gapTight := NewEvaluator(x, NewSet(MustParse("gap <= 59")), instances.SplitOnRepeat)
	if gapTight.Holds(group(x, "inf", "arv")) {
		t.Error("59s gap bound should reject 60s-apart events")
	}
	span := NewEvaluator(x, NewSet(MustParse("span <= 30")), instances.SplitOnRepeat)
	if span.Holds(group(x, "rcp", "ckc")) {
		t.Error("span 60s should exceed 30s bound")
	}
}

func TestPercentageConstraint(t *testing.T) {
	// prio occurs in 3 of 4 traces; inf+arv instances: gap 60s everywhere
	// except σ4 where arv,inf are adjacent... construct a cleaner case:
	// cost <= 10 holds for all (cost fixed at 10), so pct(0.9, ...) holds;
	// cost <= 9 fails everywhere, so pct(0.1, ...) fails.
	log := procgen.RunningExampleTable1()
	x, _ := evaluatorFor(t, log, NewSet())
	pass := NewEvaluator(x, NewSet(MustParse("pct(0.9, max(cost) <= 10)")), instances.SplitOnRepeat)
	if !pass.Holds(group(x, "inf", "arv")) {
		t.Error("pct with satisfied inner should hold")
	}
	fail := NewEvaluator(x, NewSet(MustParse("pct(0.1, max(cost) <= 9)")), instances.SplitOnRepeat)
	if fail.Holds(group(x, "inf", "arv")) {
		t.Error("pct with universally violated inner should fail")
	}
}

func TestClassCardinality(t *testing.T) {
	log := &eventlog.Log{Traces: []eventlog.Trace{{ID: "1", Events: []eventlog.Event{
		{Class: "a"}, {Class: "a"}, {Class: "b"},
	}}}}
	x := eventlog.NewIndex(log)
	ev := NewEvaluator(x, NewSet(MustParse("count(a) >= 2")), instances.WholeTrace)
	if !ev.Holds(group(x, "a", "b")) {
		t.Error("instance with 2×a should satisfy count(a) >= 2")
	}
	ev1 := NewEvaluator(x, NewSet(MustParse("count(b) >= 2")), instances.WholeTrace)
	if ev1.Holds(group(x, "a", "b")) {
		t.Error("instance with 1×b should violate count(b) >= 2")
	}
	// Vacuous for groups not containing the class.
	if !ev1.Holds(group(x, "a")) {
		t.Error("count(b) should be vacuous for group {a}")
	}
}

// --- Grouping constraints -----------------------------------------------------

func TestGroupBounds(t *testing.T) {
	set := NewSet(MustParse("|G| <= 7"), MustParse("|G| >= 3"))
	lo, hi := set.GroupBounds()
	if lo != 3 || hi != 7 {
		t.Fatalf("bounds = (%d, %d)", lo, hi)
	}
	set2 := NewSet(MustParse("|G| == 5"))
	lo, hi = set2.GroupBounds()
	if lo != 5 || hi != 5 {
		t.Fatalf("eq bounds = (%d, %d)", lo, hi)
	}
	if !set2.Grouping[0].HoldsGrouping(5) || set2.Grouping[0].HoldsGrouping(4) {
		t.Error("HoldsGrouping for ==")
	}
}

// --- Evaluator memoisation and diagnostics ------------------------------------

func TestEvaluatorMemoises(t *testing.T) {
	log := procgen.RunningExampleTable1()
	x, ev := evaluatorFor(t, log, NewSet(MustParse("distinct(role) <= 1")))
	g := group(x, "rcp", "ckc")
	ev.Holds(g)
	ev.Holds(g)
	if ev.Checks() != 1 {
		t.Fatalf("Checks = %d, want 1", ev.Checks())
	}
}

func TestDiagnose(t *testing.T) {
	log := procgen.RunningExampleTable1()
	// Every singleton violates sum(duration) >= 101 (each event is 60s).
	x, ev := evaluatorFor(t, log, NewSet(MustParse("sum(duration) >= 101")))
	_ = x
	v := ev.Diagnose()
	if len(v.UncoverableClasses) != 8 {
		t.Fatalf("uncoverable = %v, want all 8 classes", v.UncoverableClasses)
	}
	if v.PerConstraint["sum(duration) >= 101"] != 1.0 {
		t.Fatalf("per-constraint fraction %v", v.PerConstraint)
	}
}

// TestSharesSortedDeterministicOrder pins the rendering order of the
// per-constraint diagnostics: descending rejection share, ties by constraint
// text. The CLI and examples print via SharesSorted, never by ranging over
// the PerConstraint map, so infeasibility reports are byte-identical per run.
func TestSharesSortedDeterministicOrder(t *testing.T) {
	v := &Violations{PerConstraint: map[string]float64{
		"distinct(role) <= 1":  0.25,
		"sum(duration) >= 101": 1.0,
		"min(count) >= 2":      0.25,
	}}
	want := []ConstraintShare{
		{"sum(duration) >= 101", 1.0},
		{"distinct(role) <= 1", 0.25},
		{"min(count) >= 2", 0.25},
	}
	for i := 0; i < 50; i++ {
		got := v.SharesSorted()
		if len(got) != len(want) {
			t.Fatalf("SharesSorted len = %d, want %d", len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iteration %d: SharesSorted[%d] = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
	if (*Violations)(nil).SharesSorted() != nil {
		t.Error("nil Violations should yield nil shares")
	}
}

func TestVacuousForMissingAttr(t *testing.T) {
	log := &eventlog.Log{Traces: []eventlog.Trace{{ID: "1", Events: []eventlog.Event{
		{Class: "a"}, {Class: "b"},
	}}}}
	x := eventlog.NewIndex(log)
	ev := NewEvaluator(x, NewSet(MustParse("sum(duration) >= 101")), instances.SplitOnRepeat)
	if !ev.Holds(group(x, "a", "b")) {
		t.Error("aggregate over absent attribute should be vacuously satisfied")
	}
}

// HoldsAnti checks only the anti-monotonic subset: a group violating a
// non-monotonic constraint but satisfying the anti-monotonic ones must
// remain expandable.
func TestHoldsAnti(t *testing.T) {
	log := procgen.RunningExampleTable1()
	x, ev := evaluatorFor(t, log, NewSet(
		MustParse("|g| <= 3"),           // anti-monotonic
		MustParse("mustlink(inf, arv)"), // non-monotonic
	))
	inf := group(x, "inf") // violates mustlink, satisfies |g| <= 3
	if ev.Holds(inf) {
		t.Fatal("lone {inf} violates mustlink")
	}
	if !ev.HoldsAnti(inf) {
		t.Fatal("{inf} satisfies the anti-monotonic subset and must stay expandable")
	}
	big := group(x, "rcp", "ckc", "ckt", "prio") // violates |g| <= 3
	if ev.HoldsAnti(big) {
		t.Fatal("size-4 group violates the anti-monotonic size bound")
	}
	// Memoised.
	before := ev.LogPasses()
	ev.HoldsAnti(inf)
	if ev.LogPasses() != before {
		t.Fatal("HoldsAnti verdict not memoised")
	}
}

func TestStringForms(t *testing.T) {
	// Every constraint type renders a parseable, stable string.
	forms := []Constraint{
		GroupCount{Op: LE, N: 3},
		GroupSize{Op: GE, N: 2},
		CannotLink{A: "a", B: "b"},
		MustLink{A: "a", B: "b"},
		ClassAttrDistinct{Attr: "org", Op: EQ, N: 1},
		InstanceAggregate{AggFn: Sum, Attr: "cost", Op: LE, Threshold: 5},
		InstanceAggregate{AggFn: Count, Op: GE, Threshold: 2},
		MaxGap{Seconds: 60},
		EventsPerClass{Op: LE, N: 1},
		ClassCardinality{ClassName: "rcp", Op: GE, N: 2},
		InstanceSpan{Op: LE, Seconds: 10},
		AvgInstanceSpan{Op: LE, Seconds: 10},
		Percentage{Fraction: 0.9, Inner: MaxGap{Seconds: 60}},
		AvgInstancesPerTrace{Op: GE, N: 2},
		MaxInstancesPerTrace{N: 4},
	}
	for _, c := range forms {
		s := c.String()
		if s == "" {
			t.Errorf("%T renders empty", c)
		}
		re, err := Parse(s)
		if err != nil {
			t.Errorf("%T: %q does not re-parse: %v", c, s, err)
			continue
		}
		if re.String() != s {
			t.Errorf("%T: unstable string %q -> %q", c, s, re.String())
		}
	}
	// Category and mode strings.
	for _, cat := range []Category{Grouping, Class, Instance} {
		if cat.String() == "unknown" {
			t.Error("category string unknown")
		}
	}
	for _, m := range []Monotonicity{Monotonic, AntiMonotonic, NonMonotonic, NotApplicable} {
		if m.String() == "unknown" {
			t.Error("monotonicity string unknown")
		}
	}
	for _, m := range []Mode{ModeAnti, ModeMono, ModeNon} {
		if m.String() == "" {
			t.Error("mode string empty")
		}
	}
}

func TestInstanceAggregateMinMax(t *testing.T) {
	log := procgen.RunningExampleTable1() // cost fixed at 10 per event
	x, _ := evaluatorFor(t, log, NewSet())
	g := group(x, "inf", "arv")
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"min(cost) >= 10", true},
		{"min(cost) >= 11", false},
		{"max(cost) <= 10", true},
		{"max(cost) <= 9", false},
		{"count() >= 1", true},
		{"count() >= 3", false},
		{"distinct(role) >= 1", true},
	} {
		ev := NewEvaluator(x, NewSet(MustParse(tc.src)), instances.SplitOnRepeat)
		if got := ev.Holds(g); got != tc.want {
			t.Errorf("%s on {inf,arv}: %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestSumAllowNegativeNonMonotonic(t *testing.T) {
	c := InstanceAggregate{AggFn: Sum, Attr: "delta", Op: GE, Threshold: 0, AllowNegative: true}
	if c.Monotonicity() != NonMonotonic {
		t.Fatal("sums over possibly-negative values are non-monotonic (Table II)")
	}
}

func TestViolationsString(t *testing.T) {
	var v *Violations
	if v.String() != "feasible" {
		t.Error("nil violations should read feasible")
	}
	v = &Violations{UncoverableClasses: []string{"a", "b", "c", "d", "e", "f"}, GroupBoundConflict: "conflict"}
	s := v.String()
	if !strings.Contains(s, "6 uncoverable") || !strings.Contains(s, "conflict") {
		t.Errorf("violations string %q", s)
	}
}

package constraints

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomConstraint builds a random constraint AST.
func randomConstraint(rng *rand.Rand, allowPct bool) Constraint {
	op := func() Op { return Op(rng.Intn(5)) }
	n := func() int { return rng.Intn(20) + 1 }
	th := func() float64 { return math.Round(rng.Float64()*1000) / 4 }
	attr := []string{"role", "cost", "duration", "org"}[rng.Intn(4)]
	name := []string{"rcp", "acc", "inf", "arv"}[rng.Intn(4)]
	kinds := 12
	if allowPct {
		kinds = 13
	}
	switch rng.Intn(kinds) {
	case 0:
		return GroupCount{Op: op(), N: n()}
	case 1:
		return GroupSize{Op: op(), N: n()}
	case 2:
		return CannotLink{A: name, B: "other"}
	case 3:
		return MustLink{A: name, B: "other"}
	case 4:
		return ClassAttrDistinct{Attr: attr, Op: op(), N: n()}
	case 5:
		agg := Agg(rng.Intn(4)) // Sum, Avg, Min, Max
		return InstanceAggregate{AggFn: agg, Attr: attr, Op: op(), Threshold: th()}
	case 6:
		return InstanceAggregate{AggFn: Distinct, Attr: attr, Op: op(), Threshold: float64(n())}
	case 7:
		return MaxGap{Seconds: th() + 1}
	case 8:
		return EventsPerClass{Op: op(), N: n()}
	case 9:
		return ClassCardinality{ClassName: name, Op: op(), N: n()}
	case 10:
		return InstanceSpan{Op: op(), Seconds: th()}
	case 11:
		return AvgInstanceSpan{Op: op(), Seconds: th()}
	default:
		inner := randomConstraint(rng, false)
		ic, ok := inner.(InstanceConstraint)
		if !ok {
			return Percentage{Fraction: 0.9, Inner: MaxGap{Seconds: 1}}
		}
		return Percentage{Fraction: math.Round(rng.Float64()*100) / 100, Inner: ic}
	}
}

// Property: String → Parse → String is a fixed point for random ASTs.
func TestQuickStringParseFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		c := randomConstraint(rng, true)
		s := c.String()
		parsed, err := Parse(s)
		if err != nil {
			t.Fatalf("trial %d: %q failed to parse: %v", trial, s, err)
		}
		if parsed.String() != s {
			t.Fatalf("trial %d: %q re-parsed as %q", trial, s, parsed.String())
		}
		if parsed.Category() != c.Category() {
			t.Fatalf("trial %d: %q category changed", trial, s)
		}
		if parsed.Monotonicity() != c.Monotonicity() {
			t.Fatalf("trial %d: %q monotonicity changed", trial, s)
		}
	}
}

// Property: Parse never panics on arbitrary input; it either errors or
// yields a constraint whose String re-parses.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(input string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", input, r)
			}
		}()
		c, err := Parse(input)
		if err != nil {
			return true
		}
		_, err = Parse(c.String())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Parse is deterministic.
func TestQuickParseDeterministic(t *testing.T) {
	f := func(input string) bool {
		c1, err1 := Parse(input)
		c2, err2 := Parse(input)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return reflect.DeepEqual(c1, c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

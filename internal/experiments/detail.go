package experiments

import (
	"context"
	"fmt"
	"io"

	"gecco/internal/core"
)

// Detail is the outcome of a single abstraction problem, identified by log
// and constraint set — the per-problem breakdown behind the aggregate
// tables (the paper's repository likewise publishes per-problem results).
type Detail struct {
	Log  string
	Set  SetID
	Mode core.Mode
	Measures
}

// DetailTable runs one configuration over all logs and sets, returning the
// full per-problem matrix. Problems on the same log share a session.
func DetailTable(ctx context.Context, mode core.Mode, opts Options) []Detail {
	opts = opts.withDefaults()
	pool := newSessionPool()
	var out []Detail
	for _, id := range AllSets() {
		for _, log := range opts.Logs {
			m := pool.run(ctx, log, id, mode, opts)
			out = append(out, Detail{Log: log.Name, Set: id, Mode: mode, Measures: m})
		}
	}
	return out
}

// PrintDetails renders the per-problem matrix.
func PrintDetails(w io.Writer, details []Detail) {
	fmt.Fprintf(w, "%-18s %-5s %-5s %8s %7s %7s %7s %8s\n",
		"Log", "Set", "Conf", "Solved", "S.red", "C.red", "Sil.", "T(s)")
	for _, d := range details {
		solved := "-"
		switch {
		case !d.Applicable:
			solved = "n/a"
		case d.Solved:
			solved = "yes"
		default:
			solved = "no"
		}
		fmt.Fprintf(w, "%-18s %-5s %-5s %8s %7.2f %7.2f %7.2f %8.2f\n",
			d.Log, d.Set, d.Mode, solved, d.SRed, d.CRed, d.Sil, d.Seconds)
	}
}

// SolvedMatrix summarises feasibility per (log, set) as a compact grid —
// rows are logs, columns the constraint sets, cells y/n/- (inapplicable).
func SolvedMatrix(details []Detail) string {
	logs := []string{}
	seen := map[string]bool{}
	for _, d := range details {
		if !seen[d.Log] {
			seen[d.Log] = true
			logs = append(logs, d.Log)
		}
	}
	cell := map[string]map[SetID]string{}
	for _, d := range details {
		if cell[d.Log] == nil {
			cell[d.Log] = map[SetID]string{}
		}
		switch {
		case !d.Applicable:
			cell[d.Log][d.Set] = "-"
		case d.Solved:
			cell[d.Log][d.Set] = "y"
		default:
			cell[d.Log][d.Set] = "n"
		}
	}
	out := fmt.Sprintf("%-18s", "Log")
	for _, id := range AllSets() {
		out += fmt.Sprintf(" %-3s", id)
	}
	out += "\n"
	for _, l := range logs {
		out += fmt.Sprintf("%-18s", l)
		for _, id := range AllSets() {
			out += fmt.Sprintf(" %-3s", cell[l][id])
		}
		out += "\n"
	}
	return out
}

package experiments

import (
	"fmt"
	"testing"

	"gecco/internal/shard"
)

// TestShardBenchPlacementBalanced pins the property the shard bench's
// seeds were chosen for: the working-set logs place evenly on every
// measured cluster size — slot i is owned by shard i%4 on the 4-member
// ring and by shard i%2 on the 2-member ring. If this fails, something
// upstream changed what the router hashes — XES serialisation, procgen
// output, or the ring itself — and the bench's measured speedup no
// longer reflects a balanced partition: re-derive shardBenchSeeds rather
// than loosening this test.
func TestShardBenchPlacementBalanced(t *testing.T) {
	logs, err := shardBenchLogs()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("shard-%d", i)
		}
		ring := shard.New(ids, 0)
		for i, text := range logs {
			want := fmt.Sprintf("shard-%d", i%n)
			if got := ring.Owner(text); got != want {
				t.Errorf("%d-shard ring, log %d: owned by %s, want %s", n, i, got, want)
			}
		}
	}
}

// TestShardBenchWorkingSetSized pins the capacity arithmetic the bench's
// doc comments argue from: the full working set must overflow one shard's
// caches while a quarter of it fits comfortably.
func TestShardBenchWorkingSetSized(t *testing.T) {
	keys := shardBenchLogCount * len(shardBenchSets)
	if keys <= shardBenchResultCap {
		t.Errorf("working set (%d result keys) fits one shard's result cache (%d) — the 1-shard run would not thrash", keys, shardBenchResultCap)
	}
	if shardBenchLogCount <= shardBenchSessionCap {
		t.Errorf("working set (%d logs) fits one shard's session cache (%d)", shardBenchLogCount, shardBenchSessionCap)
	}
	if perShard := keys / 4; perShard > shardBenchResultCap {
		t.Errorf("a 4-shard slice (%d result keys) overflows the result cache (%d) — the 4-shard run would thrash too", perShard, shardBenchResultCap)
	}
	if perLogs := shardBenchLogCount / 4; perLogs > shardBenchSessionCap {
		t.Errorf("a 4-shard slice (%d logs) overflows the session cache (%d)", perLogs, shardBenchSessionCap)
	}
}

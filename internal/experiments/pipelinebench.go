// PipelineBench times the staged engine end to end — the workload POST
// /pipeline serves — so the orchestration layer's cost and its stage cache
// are gated alongside the solver kernels.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/pipeline"
	"gecco/internal/procgen"
)

// memStageCache is a minimal pipeline.StageCache for the bench: unbounded,
// single-run, no eviction — it isolates the engine's key-chaining overhead
// from any LRU policy.
type memStageCache map[string]*pipeline.State

func (c memStageCache) Get(stage, key string) (*pipeline.State, bool) {
	st, ok := c[key]
	return st, ok
}

func (c memStageCache) Put(stage, key string, st *pipeline.State) { c[key] = st }

// PipelineBench runs the loan-application case study through the staged
// engine: filter to the dominant variants, abstract under the §VI-D
// origin-system constraint, discover a model of the abstracted log, and
// evaluate conformance. Three rows feed the -json report and the -baseline
// gate:
//
//   - Pipeline/loan-application: the cold end-to-end run (every stage
//     executes), the number a first-time /pipeline request pays.
//   - PipelineWarm/loan-application: the identical run through a stage
//     cache; every stage must be adopted, so this bounds the engine's
//     per-request overhead (key chaining, validation, cache lookups).
//   - PipelineTail/loan-application: the run with only the tail (conform)
//     stage changed; the expensive abstract stage must be adopted from
//     cache, which is the refinement-sweep economy the engine exists for.
//
// A warm or tail run that re-executes a cached stage is a hard error: it
// means chain keys stopped committing to the stage prefix and the cache
// silently degraded to a no-op.
func PipelineBench(ctx context.Context, w io.Writer, opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	log := procgen.LoanLog(1000, 17)
	set := constraints.NewSet(
		constraints.MustParse("distinct(class.org) <= 1"),
		constraints.MustParse("|g| <= 8"),
	)
	cfg := core.Config{
		Mode:       core.DFGUnbounded,
		Workers:    opts.Workers,
		NamePrefix: "grp",
	}
	cfg.Budget.MaxChecks = opts.MaxChecks
	stages := func(details bool) []pipeline.Stage {
		return []pipeline.Stage{
			pipeline.FilterStage{TopVariants: 0.9},
			pipeline.AbstractStage{Config: cfg},
			pipeline.DiscoverStage{},
			pipeline.ConformStage{Details: details},
		}
	}
	base := func() *pipeline.State {
		return &pipeline.State{
			Index:       eventlog.NewIndex(log),
			IndexKey:    "bench/" + log.Name,
			Constraints: set,
		}
	}
	baseKey := pipeline.BaseKey("bench/"+log.Name, set.String())
	cache := make(memStageCache)
	env := &pipeline.Env{Cache: cache}

	fmt.Fprintf(w, "staged pipeline — filter→abstract→discover→conform on %s (%d traces):\n",
		log.Name, len(log.Traces))

	run := func(label string, sts []pipeline.Stage, wantCached int) (Row, error) {
		start := time.Now()
		out, err := pipeline.Run(ctx, sts, base(), baseKey, env)
		elapsed := time.Since(start)
		if err != nil {
			return Row{}, fmt.Errorf("pipeline bench (%s): %w", label, err)
		}
		cached := 0
		for _, st := range out.Stages {
			if st.Cached {
				cached++
			}
		}
		if cached != wantCached {
			return Row{}, fmt.Errorf("pipeline bench (%s): %d/%d stages served from cache, want %d — chain keys no longer commit to the stage prefix",
				label, cached, len(out.Stages), wantCached)
		}
		res := out.State.Abstraction
		if res == nil || !res.Feasible {
			return Row{}, fmt.Errorf("pipeline bench (%s): case-study abstraction infeasible", label)
		}
		if out.State.Conformance == nil {
			return Row{}, fmt.Errorf("pipeline bench (%s): conform stage produced no result", label)
		}
		display := label
		if display == "" {
			display = "Cold"
		}
		fmt.Fprintf(w, "  %-13s %8.2fms   %d/%d stages cached   fitness %.3f, dist %.3f\n",
			display, elapsed.Seconds()*1e3, cached, len(out.Stages),
			out.State.Conformance.Fitness, res.Distance)
		return Row{
			Label:   "Pipeline" + label + "/" + log.Name,
			Seconds: elapsed.Seconds(),
			Solved:  1,
			Dist:    res.Distance,
			N:       len(out.Stages),
		}, nil
	}

	cold, err := run("", stages(false), 0)
	if err != nil {
		return nil, err
	}
	warm, err := run("Warm", stages(false), 4)
	if err != nil {
		return nil, err
	}
	tail, err := run("Tail", stages(true), 3)
	if err != nil {
		return nil, err
	}
	if warm.Seconds > 0 {
		fmt.Fprintf(w, "  cold/warm speedup %.1fx (warm bounds the engine's per-request overhead)\n",
			cold.Seconds/warm.Seconds)
	}
	return []Row{cold, warm, tail}, nil
}

package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

// smallLogs returns a fast subset of the collection for harness tests.
func smallLogs(t *testing.T) []*eventlog.Log {
	t.Helper()
	specs := procgen.CollectionSpecs()
	return []*eventlog.Log{
		procgen.BuildLog(specs[8]),  // 4 classes, high duration
		procgen.BuildLog(specs[6]),  // 8 classes, single variant
		procgen.BuildLog(specs[10]), // 16 classes, class attr, high duration
	}
}

func quickOpts(logs []*eventlog.Log) Options {
	return Options{Logs: logs, MaxChecks: 3000, SolverTimeout: 2 * time.Second}
}

func TestBuildSetApplicability(t *testing.T) {
	specs := procgen.CollectionSpecs()
	withAttr := eventlog.NewIndex(procgen.BuildLog(specs[10]))
	withoutAttr := eventlog.NewIndex(procgen.BuildLog(specs[8:9][0]))
	_ = withoutAttr
	noAttrLog := procgen.BuildLog(specs[1]) // [15] has no class attribute
	noAttr := eventlog.NewIndex(noAttrLog)

	if _, ok := BuildSet(SetBL3, withAttr); !ok {
		t.Error("BL3 should apply to class-attribute logs")
	}
	if _, ok := BuildSet(SetBL3, noAttr); ok {
		t.Error("BL3 must be inapplicable without a class-level attribute")
	}
	for _, id := range AllSets() {
		if id == SetBL3 {
			continue
		}
		if _, ok := BuildSet(id, noAttr); !ok {
			t.Errorf("set %s should apply to every log", id)
		}
	}
}

func TestBuildSetShapes(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	set, _ := BuildSet(SetC2, x)
	if len(set.Instance) != 3 || len(set.Grouping) != 1 || len(set.Class) != 1 {
		t.Fatalf("C2 shape: %d class, %d instance, %d grouping", len(set.Class), len(set.Instance), len(set.Grouping))
	}
	set, _ = BuildSet(SetBL4, x)
	lo, hi := set.GroupBounds()
	if lo != 4 || hi != 4 { // 8 classes / 2
		t.Fatalf("BL4 bounds = (%d,%d), want (4,4)", lo, hi)
	}
	set, _ = BuildSet(SetBL2, x)
	if len(set.Class) != 2 {
		t.Fatalf("BL2 should have size cap + cannot-link, got %d class constraints", len(set.Class))
	}
}

func TestFrequentPairDeterministic(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	a1, b1 := frequentPair(x)
	a2, b2 := frequentPair(x)
	if a1 != a2 || b1 != b2 {
		t.Fatal("frequentPair not deterministic")
	}
	if a1 == b1 {
		t.Fatal("frequentPair returned the same class twice")
	}
}

func TestRunProblemSolvesA(t *testing.T) {
	logs := smallLogs(t)
	m := RunProblem(context.Background(), logs[0], SetA, core.Exhaustive, quickOpts(logs))
	if !m.Applicable || !m.Solved {
		t.Fatalf("A on the 4-class log should solve: %+v", m)
	}
	if m.SRed < 0 || m.SRed > 1 {
		t.Fatalf("size reduction %f out of range", m.SRed)
	}
}

func TestTable5ShapeOnSubset(t *testing.T) {
	logs := smallLogs(t)
	rows := Table5(context.Background(), quickOpts(logs))
	if len(rows) != len(AllSets()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(AllSets()))
	}
	byLabel := map[string]Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Shape assertions mirroring Table V's qualitative claims:
	// A and BL1 always solvable; C2 at most as solvable as M and C1.
	if byLabel["A"].Solved != 1 {
		t.Errorf("A solved = %f, want 1", byLabel["A"].Solved)
	}
	if byLabel["BL1"].Solved != 1 {
		t.Errorf("BL1 solved = %f, want 1", byLabel["BL1"].Solved)
	}
	if byLabel["C2"].Solved > byLabel["M"].Solved+1e-9 {
		t.Errorf("C2 (%f) should not exceed M (%f)", byLabel["C2"].Solved, byLabel["M"].Solved)
	}
	if byLabel["C2"].Solved > byLabel["C1"].Solved+1e-9 {
		t.Errorf("C2 (%f) should not exceed C1 (%f)", byLabel["C2"].Solved, byLabel["C1"].Solved)
	}
	// BL3 applies only to the class-attribute log(s) in the subset.
	if byLabel["BL3"].N >= byLabel["A"].N {
		t.Errorf("BL3 applicable on %d problems, A on %d; BL3 must be fewer", byLabel["BL3"].N, byLabel["A"].N)
	}
}

func TestTable6ConfigurationsOrdered(t *testing.T) {
	logs := smallLogs(t)
	rows := Table6(context.Background(), quickOpts(logs))
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	exh, dfgk := rows[0], rows[2]
	if exh.Label != "Exh" || rows[1].Label != "DFG∞" || dfgk.Label != "DFGk" {
		t.Fatalf("labels %v", []string{rows[0].Label, rows[1].Label, rows[2].Label})
	}
	// The beam configuration cannot achieve a larger size reduction than
	// exhaustive on solved problems... on tiny logs they often tie; just
	// sanity-check ranges.
	for _, r := range rows {
		if r.Solved < 0 || r.Solved > 1 || r.SRed < 0 || r.SRed > 1 {
			t.Fatalf("row %s out of range: %+v", r.Label, r)
		}
	}
}

func TestTable7BaselineShape(t *testing.T) {
	logs := smallLogs(t)
	rows := Table7(context.Background(), quickOpts(logs))
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	byLabel := map[string]Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// The paper's headline claims, in aggregate over the subset:
	// BL_G solves at most as many problems as DFGk and reduces size less.
	g, blg := byLabel["A,M,N DFGk"], byLabel["A,M,N BL_G"]
	if blg.Solved > g.Solved+1e-9 {
		t.Errorf("BL_G solved %f > DFGk %f", blg.Solved, g.Solved)
	}
	// BL_P and Exh target the same group count, so size reduction ties.
	p, blp := byLabel["BL4 Exh"], byLabel["BL4 BL_P"]
	if blp.Solved > 0 && p.Solved > 0 {
		if diff := p.SRed - blp.SRed; diff < -0.05 {
			t.Errorf("BL4 size reductions should be close: Exh %f vs BL_P %f", p.SRed, blp.SRed)
		}
	}
}

func TestPrintRowsIncludesPaperColumns(t *testing.T) {
	var buf bytes.Buffer
	rows := []Row{{Label: "A", Solved: 1, SRed: 0.5, CRed: 0.4, Sil: 0.1, Seconds: 2}}
	PrintRows(&buf, "Table V", rows, PaperTable5)
	out := buf.String()
	if !strings.Contains(out, "Table V") || !strings.Contains(out, "146") {
		t.Fatalf("output missing paper reference: %s", out)
	}
}

func TestPrintTable3(t *testing.T) {
	var buf bytes.Buffer
	specs := procgen.CollectionSpecs()
	logs := make([]*eventlog.Log, len(specs))
	for i, s := range specs {
		// Tiny stand-ins: only stats are printed, so reuse one real log.
		s.Traces = 20
		logs[i] = procgen.BuildLog(s)
	}
	PrintTable3(&buf, logs)
	if !strings.Contains(buf.String(), "[26]") {
		t.Fatal("Table III output incomplete")
	}
}

func TestDetailTableAndMatrix(t *testing.T) {
	logs := smallLogs(t)[:1]
	details := DetailTable(context.Background(), core.DFGBeam, quickOpts(logs))
	if len(details) != len(AllSets()) {
		t.Fatalf("got %d details, want %d", len(details), len(AllSets()))
	}
	var buf bytes.Buffer
	PrintDetails(&buf, details)
	if !strings.Contains(buf.String(), "Set") {
		t.Fatal("detail header missing")
	}
	matrix := SolvedMatrix(details)
	if !strings.Contains(matrix, logs[0].Name) {
		t.Fatal("matrix missing log name")
	}
	// Every cell is one of y/n/-.
	for _, d := range details {
		if d.Applicable && d.Solved && d.SRed < 0 {
			t.Fatal("solved problem with negative size reduction")
		}
	}
}

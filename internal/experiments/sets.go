// Package experiments reproduces the evaluation of §VI: the constraint sets
// of Table IV, the measures of §VI-A (solved fraction, size reduction,
// complexity reduction, silhouette, runtime), and the runners that print
// Tables V, VI and VII alongside the paper's reported values.
package experiments

import (
	"sort"

	"gecco/internal/constraints"
	"gecco/internal/eventlog"
)

// SetID names a Table IV constraint set.
type SetID string

const (
	SetA   SetID = "A"
	SetM   SetID = "M"
	SetN   SetID = "N"
	SetGr  SetID = "Gr"
	SetC1  SetID = "C1"
	SetC2  SetID = "C2"
	SetBL1 SetID = "BL1"
	SetBL2 SetID = "BL2"
	SetBL3 SetID = "BL3"
	SetBL4 SetID = "BL4"
)

// AllSets lists the Table IV sets in presentation order.
func AllSets() []SetID {
	return []SetID{SetA, SetM, SetN, SetGr, SetC1, SetC2, SetBL1, SetBL2, SetBL3, SetBL4}
}

// CoreSets are the non-baseline sets used for Tables V and VI.
func CoreSets() []SetID {
	return []SetID{SetA, SetM, SetN, SetGr, SetC1, SetC2}
}

// BuildSet constructs the constraint set for a log. The second return value
// is false when the set is inapplicable (BL3 on logs without a class-level
// attribute, per the paper's footnote). Every set includes |g| <= 8, as in
// §VI-A.
//
// Reproduction note: Gr is the literal |G| <= 3 of Table IV. Combined with
// the ever-present |g| <= 8 it is provably infeasible for logs with more
// than 24 classes, so our solved fraction for Gr counts exactly the
// feasible logs — the paper's reported Gr = 1.00 is arithmetically
// impossible under that combination and is discussed in EXPERIMENTS.md.
func BuildSet(id SetID, x *eventlog.Index) (*constraints.Set, bool) {
	sizeCap := constraints.GroupSize{Op: constraints.LE, N: 8}
	grBound := func() constraints.GroupCount {
		return constraints.GroupCount{Op: constraints.LE, N: 3}
	}
	set := constraints.NewSet(sizeCap)
	switch id {
	case SetA:
		set.Add(constraints.InstanceAggregate{AggFn: constraints.Distinct, Attr: eventlog.AttrRole, Op: constraints.LE, Threshold: 3})
	case SetM:
		set.Add(constraints.InstanceAggregate{AggFn: constraints.Sum, Attr: eventlog.AttrDuration, Op: constraints.GE, Threshold: 101})
	case SetN:
		set.Add(constraints.InstanceAggregate{AggFn: constraints.Avg, Attr: eventlog.AttrDuration, Op: constraints.LE, Threshold: 5e5})
	case SetGr:
		set.Add(grBound())
	case SetC1:
		set.Add(constraints.InstanceAggregate{AggFn: constraints.Distinct, Attr: eventlog.AttrRole, Op: constraints.LE, Threshold: 3})
		set.Add(constraints.InstanceAggregate{AggFn: constraints.Avg, Attr: eventlog.AttrDuration, Op: constraints.LE, Threshold: 5e5})
		set.Add(grBound())
	case SetC2:
		set.Add(constraints.InstanceAggregate{AggFn: constraints.Distinct, Attr: eventlog.AttrRole, Op: constraints.LE, Threshold: 3})
		set.Add(constraints.InstanceAggregate{AggFn: constraints.Sum, Attr: eventlog.AttrDuration, Op: constraints.GE, Threshold: 101})
		set.Add(constraints.InstanceAggregate{AggFn: constraints.Avg, Attr: eventlog.AttrDuration, Op: constraints.LE, Threshold: 5e5})
		set.Add(grBound())
	case SetBL1:
		// BL1 replaces the default size cap with |g| <= 5.
		set = constraints.NewSet(constraints.GroupSize{Op: constraints.LE, N: 5})
	case SetBL2:
		set = constraints.NewSet(constraints.GroupSize{Op: constraints.LE, N: 5})
		a, b := frequentPair(x)
		set.Add(constraints.CannotLink{A: a, B: b})
	case SetBL3:
		if !hasClassAttr(x, eventlog.AttrOrg) {
			return nil, false
		}
		set.Add(constraints.ClassAttrDistinct{Attr: eventlog.AttrOrg, Op: constraints.EQ, N: 1})
	case SetBL4:
		n := x.NumClasses() / 2
		if n < 1 {
			n = 1
		}
		set.Add(constraints.GroupCount{Op: constraints.EQ, N: n})
	default:
		return nil, false
	}
	return set, true
}

// frequentPair returns the two most frequent event classes, used as BL2's
// cannot-link pair (the paper does not fix a specific pair).
func frequentPair(x *eventlog.Index) (string, string) {
	type cf struct {
		c string
		f int
	}
	all := make([]cf, x.NumClasses())
	for i, c := range x.Classes {
		all[i] = cf{c, x.ClassFreq[i]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].c < all[j].c
	})
	if len(all) < 2 {
		return all[0].c, all[0].c
	}
	return all[0].c, all[1].c
}

// hasClassAttr reports whether any event carries the attribute. Columns are
// only materialised for attributes that occur, so this is a map probe.
func hasClassAttr(x *eventlog.Index, attr string) bool {
	return x.Column(attr) != nil
}

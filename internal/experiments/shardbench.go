// ShardBench proves the scale-out claim of the sharded serving layer: the
// experiments harness doubles as the load generator, driving the Table VI
// workload (the core constraint sets, batched per log) through the digest
// router against 1-, 2-, and 4-shard in-process clusters. Throughput must
// scale because sharding multiplies the cluster's *aggregate cache and
// session capacity*: a working set that thrashes one shard's LRUs partitions
// cleanly across four, so the steady state goes from rebuild-everything to
// serve-from-cache. That capacity effect — not CPU parallelism — is what
// digest-affinity routing buys, and it holds on a single-core box.
package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"gecco/internal/procgen"
	"gecco/internal/service"
	"gecco/internal/xes"
)

// shardBenchSets are the Table VI core sets (A, M, N, Gr, C1, C2) in their
// wire text form, each with the §VI-A size cap — one batch request solves
// all six against one uploaded log, exactly like Table VI visits each
// (log, set) cell.
var shardBenchSets = []string{
	"distinct(role) <= 3\n|g| <= 8",
	"sum(duration) >= 101\n|g| <= 8",
	"avg(duration) <= 500000\n|g| <= 8",
	"|G| <= 3\n|g| <= 8",
	"distinct(role) <= 3\navg(duration) <= 500000\n|G| <= 3\n|g| <= 8",
	"distinct(role) <= 3\nsum(duration) >= 101\navg(duration) <= 500000\n|G| <= 3\n|g| <= 8",
}

// shardBenchLogCount × len(shardBenchSets) is the working set. With the
// per-shard capacities below it exceeds one shard's caches (cyclic LRU
// misses on every round) but partitions across four shards into per-shard
// sets that fit — the regime the bench exists to measure.
const shardBenchLogCount = 8

// Per-shard capacities, deliberately fixed and small: scale-out must come
// from adding shards, not growing any one of them. The result cap stays
// below 16 on purpose — NewCache keeps caches that small in a single
// exact-LRU shard, so the arithmetic below is exact rather than modulo
// internal bucket collisions. The three cluster sizes then hit three
// clean regimes: 1 shard thrashes everything (48 result keys and 8
// sessions cycle through caps of 15 and 4 — classic cyclic-LRU zero-hit),
// 2 shards keep sessions warm (4 logs each) while results still thrash
// (24 keys > 15), and 4 shards fit entirely (12 keys, 2 sessions each).
const (
	shardBenchSessionCap = 4
	shardBenchResultCap  = 15
)

// shardBenchRounds is the number of measured passes over the working set
// (after one untimed warmup pass that populates whatever fits).
const shardBenchRounds = 3

// shardBenchConcurrency is the driver's in-flight request cap — a handful of
// concurrent clients, enough to keep the router busy without turning the
// bench into a queueing study.
const shardBenchConcurrency = 4

// shardBenchSeeds are chosen so the serialised log of slot i lands on
// shard i%4 of the canonical 4-member ring AND on shard i%2 of the
// 2-member ring (pinned by TestShardBenchPlacementBalanced), AND solves
// its six-set batch cheaply (tens of milliseconds cold — some seeds
// produce pathologically hard instances that would drown the cache
// effect in solver noise). Consistent hashing only balances in
// expectation; with 8 keys the natural variance can pile most of the
// working set onto one shard, which would turn the measurement into a
// benchmark of ring luck instead of the capacity effect. Fixing an even
// placement at every measured cluster size measures the claim the bench
// exists to gate — the working set partitions, and partitioned caches
// fit.
var shardBenchSeeds = [shardBenchLogCount]int64{
	7100, 8102, 9101, 10163, 11108, 12100, 13106, 14102,
}

// shardBenchLogs builds the synthetic working set: small distinct logs
// (distinct content → distinct digests → deterministic ring placement),
// XES-serialised once and reused for every request.
func shardBenchLogs() ([]string, error) {
	texts := make([]string, shardBenchLogCount)
	for i := range texts {
		spec := procgen.CollectionSpec{
			Ref:           fmt.Sprintf("sb%02d", i),
			Classes:       8 + i%5,
			Traces:        80,
			Seed:          shardBenchSeeds[i],
			PaperVariants: 40,
			PaperAvgLen:   float64(10 + i%5),
		}
		var b strings.Builder
		if err := xes.Write(&b, procgen.BuildLog(spec)); err != nil {
			return nil, fmt.Errorf("serialising bench log %d: %w", i, err)
		}
		texts[i] = b.String()
	}
	return texts, nil
}

// shardCluster is an in-process cluster: n shard services on loopback
// listeners behind a pure-coordinator router, the same topology
// `gecco-serve -shards n` boots.
type shardCluster struct {
	svcs     []*service.Service
	servers  []*http.Server
	coordURL string
}

func startShardCluster(n int, workers int) (*shardCluster, error) {
	c := &shardCluster{}
	peers := make([]string, n)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.close()
			return nil, err
		}
		svc := service.New(service.Options{
			MaxConcurrent:   1,
			MaxQueued:       16,
			CacheCapacity:   shardBenchResultCap,
			SessionCapacity: shardBenchSessionCap,
			NoStreams:       true,
			DefaultWorkers:  workers,
			JobIDPrefix:     fmt.Sprintf("s%d-", i),
		})
		srv := &http.Server{Handler: service.Handler(svc)}
		go srv.Serve(ln)
		c.svcs = append(c.svcs, svc)
		c.servers = append(c.servers, srv)
		peers[i] = "http://" + ln.Addr().String()
		ids[i] = fmt.Sprintf("shard-%d", i)
	}
	coord, err := service.NewRouter(nil, service.ShardOptions{
		Peers: peers, MemberIDs: ids, Self: -1,
	})
	if err != nil {
		c.close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.close()
		return nil, err
	}
	srv := &http.Server{Handler: coord}
	go srv.Serve(ln)
	c.servers = append(c.servers, srv)
	c.coordURL = "http://" + ln.Addr().String()
	return c, nil
}

func (c *shardCluster) close() {
	for _, srv := range c.servers {
		srv.Close()
	}
	for _, svc := range c.svcs {
		svc.Close()
	}
}

// runRound drives one pass over the working set: one batch request per log
// through the coordinator, shardBenchConcurrency requests in flight. A 503
// (a briefly full shard queue) is retried like any sane client would; a
// per-set error inside an otherwise-successful batch is a hard failure.
func runRound(ctx context.Context, coordURL string, bodies [][]byte) error {
	work := make(chan int)
	errc := make(chan error, shardBenchConcurrency)
	var wg sync.WaitGroup
	for w := 0; w < shardBenchConcurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := postBatch(ctx, coordURL, bodies[i]); err != nil {
					select {
					case errc <- fmt.Errorf("log %d: %w", i, err):
					default:
					}
					return
				}
			}
		}()
	}
	for i := range bodies {
		select {
		case <-ctx.Done():
			break
		case work <- i:
		}
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return ctx.Err()
	}
}

func postBatch(ctx context.Context, coordURL string, body []byte) error {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordURL+"/abstract", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < 50 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		var batch service.BatchResponse
		if err := json.Unmarshal(raw, &batch); err != nil {
			return fmt.Errorf("decoding batch response: %w", err)
		}
		if len(batch.Results) != len(shardBenchSets) {
			return fmt.Errorf("batch returned %d results, want %d", len(batch.Results), len(shardBenchSets))
		}
		for i, item := range batch.Results {
			if item.Error != "" {
				return fmt.Errorf("set %d failed: %s", i+1, item.Error)
			}
		}
		return nil
	}
}

// ShardBench measures cluster throughput at 1, 2, and 4 shards and
// hard-fails unless 4 shards deliver at least 2.5x the single-shard
// throughput on the identical workload — the scale-out acceptance bar.
func ShardBench(ctx context.Context, w io.Writer, opts Options) ([]Row, error) {
	opts = opts.withDefaults()
	logs, err := shardBenchLogs()
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, len(logs))
	for i, text := range logs {
		body, err := json.Marshal(service.AbstractRequest{
			Log:            text,
			ConstraintSets: shardBenchSets,
			Mode:           "dfg",
			// The driver reads only the metrics; serialising six abstracted
			// logs per response would bury the cache effect under rendering
			// cost on the all-hits side of the comparison.
			OmitAbstracted: true,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	solvesPerRound := len(logs) * len(shardBenchSets)
	fmt.Fprintf(w, "shard scale-out — Table VI workload (%d logs x %d sets) through the digest router,\n",
		len(logs), len(shardBenchSets))
	fmt.Fprintf(w, "per-shard caches fixed at %d sessions / %d results; %d warmup + %d measured rounds:\n",
		shardBenchSessionCap, shardBenchResultCap, 1, shardBenchRounds)

	var rows []Row
	seconds := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		cluster, err := startShardCluster(n, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("starting %d-shard cluster: %w", n, err)
		}
		// Warmup: populate whatever fits; the measurement is the steady
		// state, where the capacity effect lives.
		if err := runRound(ctx, cluster.coordURL, bodies); err != nil {
			cluster.close()
			return nil, fmt.Errorf("%d-shard warmup: %w", n, err)
		}
		start := time.Now()
		for round := 0; round < shardBenchRounds; round++ {
			if err := runRound(ctx, cluster.coordURL, bodies); err != nil {
				cluster.close()
				return nil, fmt.Errorf("%d-shard round %d: %w", n, round+1, err)
			}
		}
		elapsed := time.Since(start)

		// Per-shard distribution via the coordinator's cluster fan-out: how
		// the ring spread the working set, and how warm each shard ran.
		var cs service.ClusterStats
		resp, err := http.Get(cluster.coordURL + "/stats")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&cs)
			resp.Body.Close()
		}
		cluster.close()
		if err != nil {
			return nil, fmt.Errorf("%d-shard cluster stats: %w", n, err)
		}
		throughput := float64(shardBenchRounds*solvesPerRound) / elapsed.Seconds()
		fmt.Fprintf(w, "  %d shard(s): %8.0f solves/s  (%.3fs for %d solves; cache hits %d/%d",
			n, throughput, elapsed.Seconds(), shardBenchRounds*solvesPerRound,
			cs.Cache.Hits, cs.Cache.Hits+cs.Cache.Misses)
		for i := 0; i < n; i++ {
			st := cs.Shards[fmt.Sprintf("shard-%d", i)]
			fmt.Fprintf(w, "; s%d jobs %d", i, st.Jobs.Started)
		}
		fmt.Fprintln(w, ")")
		seconds[n] = elapsed.Seconds()
		rows = append(rows, Row{
			Label:   fmt.Sprintf("ShardThroughput/%d", n),
			Seconds: elapsed.Seconds(),
			Solved:  1,
			N:       shardBenchRounds * solvesPerRound,
		})
	}

	speedup := seconds[1] / seconds[4]
	fmt.Fprintf(w, "  4-shard vs 1-shard speedup: %.1fx (gate: >= 2.5x)\n", speedup)
	if speedup < 2.5 {
		return nil, fmt.Errorf("shard bench: 4-shard speedup %.2fx is below the required 2.5x — digest routing is no longer partitioning the working set", speedup)
	}
	return rows, nil
}

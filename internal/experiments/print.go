package experiments

import (
	"fmt"
	"io"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

// PaperRow holds the paper's reported values for side-by-side printing.
type PaperRow struct {
	Solved, SRed, CRed, Sil float64
	Minutes                 float64
}

// PaperTable5 is Table V of the paper (Exh per constraint set).
var PaperTable5 = map[string]PaperRow{
	"A":   {1.00, 0.68, 0.63, 0.15, 146},
	"M":   {0.31, 0.58, 0.55, 0.15, 75},
	"N":   {0.77, 0.68, 0.65, 0.12, 154},
	"Gr":  {1.00, 0.66, 0.61, 0.13, 144},
	"C1":  {0.54, 0.68, 0.59, 0.12, 134},
	"C2":  {0.23, 0.50, 0.40, 0.09, 100},
	"BL1": {1.00, 0.67, 0.61, 0.12, 122},
	"BL2": {1.00, 0.66, 0.61, 0.12, 121},
	"BL3": {1.00, 0.38, 0.29, -0.02, 38},
	"BL4": {1.00, 0.51, 0.46, 0.05, 147},
}

// PaperTable6 is Table VI (per configuration).
var PaperTable6 = map[string]PaperRow{
	"Exh":  {0.78, 0.63, 0.57, 0.11, 130},
	"DFG∞": {0.78, 0.62, 0.56, 0.16, 108},
	"DFGk": {0.77, 0.56, 0.50, 0.08, 49},
}

// PaperTable7 is Table VII (baseline comparison).
var PaperTable7 = map[string]PaperRow{
	"BL[1-3] DFG∞": {1.00, 0.63, 0.55, 0.17, 77},
	"BL[1-3] BL_Q": {0.96, 0.55, 0.43, -0.20, 24},
	"BL4 Exh":      {1.00, 0.51, 0.46, 0.05, 147},
	"BL4 BL_P":     {1.00, 0.51, 0.42, 0.01, 1},
	"A,M,N DFGk":   {0.67, 0.59, 0.52, 0.08, 58},
	"A,M,N BL_G":   {0.64, 0.45, 0.37, 0.02, 24},
}

// PrintRows renders measured rows next to the paper's values. The paper's
// runtimes (minutes on full-size BPI logs) and ours (seconds on scaled-down
// synthetics) are printed in their native units: relative ordering, not
// magnitude, is the comparable signal.
func PrintRows(w io.Writer, title string, rows []Row, paper map[string]PaperRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-14s %8s %8s %8s %8s %9s   |  %s\n",
		"Const./Conf.", "Solved", "S.red", "C.red", "Sil.", "T(s)", "paper: Solved S.red C.red Sil. T(m)")
	for _, r := range rows {
		line := fmt.Sprintf("%-14s %8.2f %8.2f %8.2f %8.2f %9.2f", r.Label, r.Solved, r.SRed, r.CRed, r.Sil, r.Seconds)
		if p, ok := paper[r.Label]; ok {
			line += fmt.Sprintf("   |  %11.2f %5.2f %5.2f %5.2f %5.0f", p.Solved, p.SRed, p.CRed, p.Sil, p.Minutes)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w)
}

// PrintTable3 renders the synthetic log collection next to the paper's
// Table III characteristics.
func PrintTable3(w io.Writer, logs []*eventlog.Log) {
	specs := procgen.CollectionSpecs()
	fmt.Fprintln(w, "Table III — log collection (measured synthetic vs. paper)")
	fmt.Fprintf(w, "%-6s %6s %8s %9s %7s %8s   |  %s\n",
		"Ref", "|CL|", "Traces", "Variants", "|E|", "Avg|σ|", "paper: Traces Variants |E| Avg|σ|")
	for i, log := range logs {
		st := log.ComputeStats()
		sp := specs[i]
		fmt.Fprintf(w, "%-6s %6d %8d %9d %7d %8.2f   |  %12d %8d %5d %6.2f\n",
			sp.Ref, st.NumClasses, st.NumTraces, st.NumVariants, st.NumDFGEdges, st.AvgTraceLen,
			sp.PaperTraces, sp.PaperVariants, sp.PaperEdges, sp.PaperAvgLen)
	}
	fmt.Fprintln(w)
}

package experiments

import (
	"context"
	"time"

	"gecco/internal/baselines"
	"gecco/internal/candidates"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/discovery"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/metrics"
	"gecco/internal/pipeline"
)

// Options tunes the harness; zero values pick defaults sized for a laptop
// run (each abstraction problem gets a bounded candidate budget, mirroring
// the paper's 5-hour timeout after which GECCO continues with the
// candidates found so far).
type Options struct {
	MaxChecks     int           // candidate budget per problem (default 30000)
	SolverTimeout time.Duration // Step 2 cap per problem (default 10s)
	Workers       int           // worker threads per problem (<= 0 = all cores)
	Logs          []*eventlog.Log
}

func (o Options) withDefaults() Options {
	if o.MaxChecks == 0 {
		o.MaxChecks = 12000
	}
	if o.SolverTimeout == 0 {
		o.SolverTimeout = 3 * time.Second
	}
	return o
}

// sessionBuildFailure is the score for a problem whose log the pipeline
// could not analyse at all: applicable but unsolved, so failing logs count
// against the solved rate instead of silently vanishing from the tables.
func sessionBuildFailure() Measures {
	return Measures{Applicable: true}
}

// Measures are the §VI-A evaluation measures for one abstraction problem.
type Measures struct {
	Applicable bool
	Solved     bool
	SRed       float64 // size reduction 1 - |G|/|C_L|
	CRed       float64 // control-flow complexity reduction
	Sil        float64 // silhouette coefficient
	Seconds    float64 // wall-clock runtime
	Dist       float64 // total distance of the selected grouping (Eq. 1)
}

// evaluate scores a finished run against the original log, reusing the
// session's index for the silhouette and size-reduction measures.
func evaluate(ctx context.Context, sess *core.Session, res *core.Result, elapsed time.Duration) Measures {
	m := Measures{Applicable: true, Seconds: elapsed.Seconds()}
	if res == nil || !res.Feasible {
		return m
	}
	x := sess.Index()
	m.Solved = true
	m.SRed = metrics.SizeReduction(len(res.Grouping.Groups), x.NumClasses())
	// A cancelled scoring pass leaves CRed at zero; the run itself already
	// finished, so the problem still counts as solved.
	if cred, err := metrics.ComplexityReduction(ctx, x, eventlog.NewIndex(res.Abstracted), discovery.Options{}); err == nil {
		m.CRed = cred
	}
	m.Sil = metrics.Silhouette(x, res.Grouping.Groups)
	m.Dist = res.Distance
	return m
}

// RunProblem solves one abstraction problem (log × set × configuration) and
// scores it on a fresh session. Table drivers that sweep many sets and
// configurations over the same log share a session via RunProblemSession
// instead, which is exactly the workload the session engine exists for.
func RunProblem(ctx context.Context, log *eventlog.Log, id SetID, mode core.Mode, opts Options) Measures {
	sess, err := core.NewSession(log)
	if err != nil {
		return sessionBuildFailure()
	}
	return RunProblemSession(ctx, sess, id, mode, opts)
}

// RunProblemSession solves one abstraction problem on an existing session.
// Seconds measures only the constraint-dependent solve — the interactive
// cost a warm session pays — mirroring how the serving layer amortises
// per-log analysis across requests. Cancelling ctx aborts the solve; the
// problem then scores as applicable-but-unsolved, like any failed run.
func RunProblemSession(ctx context.Context, sess *core.Session, id SetID, mode core.Mode, opts Options) Measures {
	opts = opts.withDefaults()
	set, ok := BuildSet(id, sess.Index())
	if !ok {
		return Measures{}
	}
	cfg := core.Config{
		Mode:          mode,
		Workers:       opts.Workers,
		Budget:        candidates.Budget{MaxChecks: opts.MaxChecks},
		SolverTimeout: opts.SolverTimeout,
	}
	start := time.Now()
	res, err := sess.Solve(ctx, set, cfg)
	elapsed := time.Since(start)
	if err != nil {
		return Measures{Applicable: true, Seconds: elapsed.Seconds()}
	}
	return evaluate(ctx, sess, res, elapsed)
}

// sessionPool lazily builds and reuses one session per log, so a table
// driver sweeping constraint sets and configurations pays each log's
// indexing once and shares its distance memo across all problems. The
// one-time session build is *billed to the log's first solved problem*:
// the benchmark gate consumes the tables' Seconds, and excluding the
// constraint-independent phase entirely would blind it to regressions in
// indexing or DFG construction.
type sessionPool struct {
	sessions map[*eventlog.Log]*core.Session
	pending  map[*eventlog.Log]time.Duration // build time not yet billed
}

func newSessionPool() *sessionPool {
	return &sessionPool{
		sessions: make(map[*eventlog.Log]*core.Session),
		pending:  make(map[*eventlog.Log]time.Duration),
	}
}

func (p *sessionPool) get(log *eventlog.Log) *core.Session {
	if sess, ok := p.sessions[log]; ok {
		return sess
	}
	t0 := time.Now()
	sess, err := core.NewSession(log)
	if err != nil {
		return nil
	}
	p.sessions[log] = sess
	p.pending[log] += time.Since(t0)
	return sess
}

// run solves the problem on the pool's session for the log, charging any
// unbilled session-build time to the first solved measure.
func (p *sessionPool) run(ctx context.Context, log *eventlog.Log, id SetID, mode core.Mode, opts Options) Measures {
	sess := p.get(log)
	if sess == nil {
		return sessionBuildFailure()
	}
	m := RunProblemSession(ctx, sess, id, mode, opts)
	if m.Solved {
		if pending, ok := p.pending[log]; ok {
			m.Seconds += pending.Seconds()
			delete(p.pending, log)
		}
	}
	return m
}

// aggregate averages measures over applicable problems; SRed/CRed/Sil are
// averaged over solved problems only, as in the paper's tables.
type aggregate struct {
	applicable, solved               int
	sred, cred, sil, secSolved, dist float64
}

func (a *aggregate) add(m Measures) {
	if !m.Applicable {
		return
	}
	a.applicable++
	if !m.Solved {
		return
	}
	a.solved++
	a.sred += m.SRed
	a.cred += m.CRed
	a.sil += m.Sil
	a.secSolved += m.Seconds
	a.dist += m.Dist
}

// Row is an aggregated result row for any of the tables. The JSON tags are
// the machine-readable bench format consumed by the CI regression gate
// (gecco-bench -json / -baseline).
type Row struct {
	Label   string  `json:"label"`
	Solved  float64 `json:"solved"`
	SRed    float64 `json:"sred"`
	CRed    float64 `json:"cred"`
	Sil     float64 `json:"sil"`
	Seconds float64 `json:"seconds"`
	Dist    float64 `json:"dist"` // mean grouping distance over solved problems
	N       int     `json:"n"`    // applicable problems
	// BytesPerEvent is set only by the index-build benchmark rows: the
	// columnar index's estimated footprint per event, gated against the
	// baseline like wall-time.
	BytesPerEvent float64 `json:"bytesPerEvent,omitempty"`
}

func (a *aggregate) row(label string) Row {
	r := Row{Label: label, N: a.applicable}
	if a.applicable > 0 {
		r.Solved = float64(a.solved) / float64(a.applicable)
	}
	if a.solved > 0 {
		n := float64(a.solved)
		r.SRed = a.sred / n
		r.CRed = a.cred / n
		r.Sil = a.sil / n
		r.Seconds = a.secSolved / n
		r.Dist = a.dist / n
	}
	return r
}

// Table5 runs the Exh configuration per constraint set (paper Table V).
// All sets on one log share a session, as an interactive user would.
// Cancelling ctx makes the remaining problems score as unsolved.
func Table5(ctx context.Context, opts Options) []Row {
	opts = opts.withDefaults()
	pool := newSessionPool()
	var rows []Row
	for _, id := range AllSets() {
		agg := &aggregate{}
		for _, log := range opts.Logs {
			agg.add(pool.run(ctx, log, id, core.Exhaustive, opts))
		}
		rows = append(rows, agg.row(string(id)))
	}
	return rows
}

// Table6 runs the three configurations over the core constraint sets
// (paper Table VI). Sessions are shared per log across sets and
// configurations — Eq. 1 depends on neither, so the distance memo warms up
// over the whole sweep.
func Table6(ctx context.Context, opts Options) []Row {
	opts = opts.withDefaults()
	pool := newSessionPool()
	modes := []core.Mode{core.Exhaustive, core.DFGUnbounded, core.DFGBeam}
	var rows []Row
	for _, mode := range modes {
		agg := &aggregate{}
		for _, id := range CoreSets() {
			for _, log := range opts.Logs {
				agg.add(pool.run(ctx, log, id, mode, opts))
			}
		}
		rows = append(rows, agg.row(mode.String()))
	}
	return rows
}

// Table7 runs the baseline comparisons (paper Table VII): BL_Q vs DFG∞ on
// BL1–BL3, BL_P vs Exh on BL4, BL_G vs DFGk on A, M, N.
func Table7(ctx context.Context, opts Options) []Row {
	opts = opts.withDefaults()
	pool := newSessionPool()
	var rows []Row

	// BL[1-3]: DFG∞ vs graph querying.
	geccoQ, blq := &aggregate{}, &aggregate{}
	for _, id := range []SetID{SetBL1, SetBL2, SetBL3} {
		for _, log := range opts.Logs {
			geccoQ.add(pool.run(ctx, log, id, core.DFGUnbounded, opts))
			blq.add(runBaselineQ(ctx, pool.get(log), id, opts))
		}
	}
	rows = append(rows, withLabel(geccoQ.row("BL[1-3] DFG∞"), "BL[1-3] DFG∞"))
	rows = append(rows, withLabel(blq.row("BL[1-3] BL_Q"), "BL[1-3] BL_Q"))

	// BL4: Exh vs spectral partitioning.
	geccoP, blp := &aggregate{}, &aggregate{}
	for _, log := range opts.Logs {
		geccoP.add(pool.run(ctx, log, SetBL4, core.Exhaustive, opts))
		blp.add(runBaselineP(ctx, pool.get(log), opts))
	}
	rows = append(rows, withLabel(geccoP.row(""), "BL4 Exh"))
	rows = append(rows, withLabel(blp.row(""), "BL4 BL_P"))

	// A, M, N: DFGk vs greedy.
	geccoG, blg := &aggregate{}, &aggregate{}
	for _, id := range []SetID{SetA, SetM, SetN} {
		for _, log := range opts.Logs {
			geccoG.add(pool.run(ctx, log, id, core.DFGBeam, opts))
			blg.add(runBaselineG(ctx, pool.get(log), id, opts))
		}
	}
	rows = append(rows, withLabel(geccoG.row(""), "A,M,N DFGk"))
	rows = append(rows, withLabel(blg.row(""), "A,M,N BL_G"))
	return rows
}

func withLabel(r Row, label string) Row {
	r.Label = label
	return r
}

// runBaseline executes one baseline solver as a single-stage pipeline run:
// the solver is wrapped in a func stage so the engine's validation and
// state-threading are the same machinery the service endpoint uses, keeping
// the harness an honest consumer of the production path.
func runBaseline(ctx context.Context, sess *core.Session, set *constraints.Set, name string,
	solve func(ctx context.Context, in *pipeline.State) (*core.Result, error)) Measures {
	base := &pipeline.State{Index: sess.Index()}
	needs := []pipeline.Artifact{pipeline.ArtifactLog}
	if set != nil && set.Len() > 0 {
		base.Constraints = set
		needs = append(needs, pipeline.ArtifactConstraints)
	}
	stage := pipeline.NewFuncStage(name, "", needs, []pipeline.Artifact{pipeline.ArtifactAbstraction},
		func(ctx context.Context, env *pipeline.Env, in *pipeline.State) (*pipeline.State, error) {
			res, err := solve(ctx, in)
			if err != nil {
				return nil, err
			}
			next := *in
			next.Abstraction = res
			return &next, nil
		})
	start := time.Now()
	out, err := pipeline.Run(ctx, []pipeline.Stage{stage}, base, pipeline.BaseKey("", ""), nil)
	elapsed := time.Since(start)
	if err != nil {
		return Measures{Applicable: true, Seconds: elapsed.Seconds()}
	}
	return evaluate(ctx, sess, out.State.Abstraction, elapsed)
}

func runBaselineQ(ctx context.Context, sess *core.Session, id SetID, opts Options) Measures {
	if sess == nil {
		return sessionBuildFailure()
	}
	set, ok := BuildSet(id, sess.Index())
	if !ok {
		return Measures{}
	}
	return runBaseline(ctx, sess, set, "bl_q", func(ctx context.Context, in *pipeline.State) (*core.Result, error) {
		return baselines.BLQ(ctx, sess, in.Constraints, core.Config{SolverTimeout: opts.SolverTimeout})
	})
}

func runBaselineP(ctx context.Context, sess *core.Session, opts Options) Measures {
	if sess == nil {
		return sessionBuildFailure()
	}
	n := sess.Index().NumClasses() / 2
	if n < 1 {
		n = 1
	}
	return runBaseline(ctx, sess, nil, "bl_p", func(ctx context.Context, in *pipeline.State) (*core.Result, error) {
		return baselines.BLP(ctx, in.Index, n, instances.SplitOnRepeat)
	})
}

func runBaselineG(ctx context.Context, sess *core.Session, id SetID, opts Options) Measures {
	if sess == nil {
		return sessionBuildFailure()
	}
	set, ok := BuildSet(id, sess.Index())
	if !ok {
		return Measures{}
	}
	// BL_G cannot enforce grouping constraints; drop them (as the paper
	// notes) so the comparison stays on A/M/N which have none anyway.
	set2 := constraints.NewSet()
	for _, c := range set.Class {
		set2.Add(c)
	}
	for _, c := range set.Instance {
		set2.Add(c)
	}
	return runBaseline(ctx, sess, set2, "bl_g", func(ctx context.Context, in *pipeline.State) (*core.Result, error) {
		return baselines.BLG(ctx, in.Index, in.Constraints, instances.SplitOnRepeat)
	})
}

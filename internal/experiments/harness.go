package experiments

import (
	"time"

	"gecco/internal/baselines"
	"gecco/internal/candidates"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/discovery"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/metrics"
)

// Options tunes the harness; zero values pick defaults sized for a laptop
// run (each abstraction problem gets a bounded candidate budget, mirroring
// the paper's 5-hour timeout after which GECCO continues with the
// candidates found so far).
type Options struct {
	MaxChecks     int           // candidate budget per problem (default 30000)
	SolverTimeout time.Duration // Step 2 cap per problem (default 10s)
	Workers       int           // worker threads per problem (<= 0 = all cores)
	Logs          []*eventlog.Log
}

func (o Options) withDefaults() Options {
	if o.MaxChecks == 0 {
		o.MaxChecks = 12000
	}
	if o.SolverTimeout == 0 {
		o.SolverTimeout = 3 * time.Second
	}
	return o
}

// Measures are the §VI-A evaluation measures for one abstraction problem.
type Measures struct {
	Applicable bool
	Solved     bool
	SRed       float64 // size reduction 1 - |G|/|C_L|
	CRed       float64 // control-flow complexity reduction
	Sil        float64 // silhouette coefficient
	Seconds    float64 // wall-clock runtime
	Dist       float64 // total distance of the selected grouping (Eq. 1)
}

// evaluate scores a finished run against the original log.
func evaluate(log *eventlog.Log, res *core.Result, elapsed time.Duration) Measures {
	m := Measures{Applicable: true, Seconds: elapsed.Seconds()}
	if res == nil || !res.Feasible {
		return m
	}
	x := eventlog.NewIndex(log)
	m.Solved = true
	m.SRed = metrics.SizeReduction(len(res.Grouping.Groups), x.NumClasses())
	m.CRed = metrics.ComplexityReduction(log, res.Abstracted, discovery.Options{})
	m.Sil = metrics.Silhouette(x, res.Grouping.Groups)
	m.Dist = res.Distance
	return m
}

// RunProblem solves one abstraction problem (log × set × configuration) and
// scores it.
func RunProblem(log *eventlog.Log, id SetID, mode core.Mode, opts Options) Measures {
	opts = opts.withDefaults()
	x := eventlog.NewIndex(log)
	set, ok := BuildSet(id, x)
	if !ok {
		return Measures{}
	}
	cfg := core.Config{
		Mode:          mode,
		Workers:       opts.Workers,
		Budget:        candidates.Budget{MaxChecks: opts.MaxChecks},
		SolverTimeout: opts.SolverTimeout,
	}
	start := time.Now()
	res, err := core.Run(log, set, cfg)
	elapsed := time.Since(start)
	if err != nil {
		return Measures{Applicable: true, Seconds: elapsed.Seconds()}
	}
	return evaluate(log, res, elapsed)
}

// aggregate averages measures over applicable problems; SRed/CRed/Sil are
// averaged over solved problems only, as in the paper's tables.
type aggregate struct {
	applicable, solved               int
	sred, cred, sil, secSolved, dist float64
}

func (a *aggregate) add(m Measures) {
	if !m.Applicable {
		return
	}
	a.applicable++
	if !m.Solved {
		return
	}
	a.solved++
	a.sred += m.SRed
	a.cred += m.CRed
	a.sil += m.Sil
	a.secSolved += m.Seconds
	a.dist += m.Dist
}

// Row is an aggregated result row for any of the tables. The JSON tags are
// the machine-readable bench format consumed by the CI regression gate
// (gecco-bench -json / -baseline).
type Row struct {
	Label   string  `json:"label"`
	Solved  float64 `json:"solved"`
	SRed    float64 `json:"sred"`
	CRed    float64 `json:"cred"`
	Sil     float64 `json:"sil"`
	Seconds float64 `json:"seconds"`
	Dist    float64 `json:"dist"` // mean grouping distance over solved problems
	N       int     `json:"n"`    // applicable problems
}

func (a *aggregate) row(label string) Row {
	r := Row{Label: label, N: a.applicable}
	if a.applicable > 0 {
		r.Solved = float64(a.solved) / float64(a.applicable)
	}
	if a.solved > 0 {
		n := float64(a.solved)
		r.SRed = a.sred / n
		r.CRed = a.cred / n
		r.Sil = a.sil / n
		r.Seconds = a.secSolved / n
		r.Dist = a.dist / n
	}
	return r
}

// Table5 runs the Exh configuration per constraint set (paper Table V).
func Table5(opts Options) []Row {
	opts = opts.withDefaults()
	var rows []Row
	for _, id := range AllSets() {
		agg := &aggregate{}
		for _, log := range opts.Logs {
			agg.add(RunProblem(log, id, core.Exhaustive, opts))
		}
		rows = append(rows, agg.row(string(id)))
	}
	return rows
}

// Table6 runs the three configurations over the core constraint sets
// (paper Table VI).
func Table6(opts Options) []Row {
	opts = opts.withDefaults()
	modes := []core.Mode{core.Exhaustive, core.DFGUnbounded, core.DFGBeam}
	var rows []Row
	for _, mode := range modes {
		agg := &aggregate{}
		for _, id := range CoreSets() {
			for _, log := range opts.Logs {
				agg.add(RunProblem(log, id, mode, opts))
			}
		}
		rows = append(rows, agg.row(mode.String()))
	}
	return rows
}

// Table7 runs the baseline comparisons (paper Table VII): BL_Q vs DFG∞ on
// BL1–BL3, BL_P vs Exh on BL4, BL_G vs DFGk on A, M, N.
func Table7(opts Options) []Row {
	opts = opts.withDefaults()
	var rows []Row

	// BL[1-3]: DFG∞ vs graph querying.
	geccoQ, blq := &aggregate{}, &aggregate{}
	for _, id := range []SetID{SetBL1, SetBL2, SetBL3} {
		for _, log := range opts.Logs {
			geccoQ.add(RunProblem(log, id, core.DFGUnbounded, opts))
			blq.add(runBaselineQ(log, id, opts))
		}
	}
	rows = append(rows, withLabel(geccoQ.row("BL[1-3] DFG∞"), "BL[1-3] DFG∞"))
	rows = append(rows, withLabel(blq.row("BL[1-3] BL_Q"), "BL[1-3] BL_Q"))

	// BL4: Exh vs spectral partitioning.
	geccoP, blp := &aggregate{}, &aggregate{}
	for _, log := range opts.Logs {
		geccoP.add(RunProblem(log, SetBL4, core.Exhaustive, opts))
		blp.add(runBaselineP(log, opts))
	}
	rows = append(rows, withLabel(geccoP.row(""), "BL4 Exh"))
	rows = append(rows, withLabel(blp.row(""), "BL4 BL_P"))

	// A, M, N: DFGk vs greedy.
	geccoG, blg := &aggregate{}, &aggregate{}
	for _, id := range []SetID{SetA, SetM, SetN} {
		for _, log := range opts.Logs {
			geccoG.add(RunProblem(log, id, core.DFGBeam, opts))
			blg.add(runBaselineG(log, id, opts))
		}
	}
	rows = append(rows, withLabel(geccoG.row(""), "A,M,N DFGk"))
	rows = append(rows, withLabel(blg.row(""), "A,M,N BL_G"))
	return rows
}

func withLabel(r Row, label string) Row {
	r.Label = label
	return r
}

func runBaselineQ(log *eventlog.Log, id SetID, opts Options) Measures {
	x := eventlog.NewIndex(log)
	set, ok := BuildSet(id, x)
	if !ok {
		return Measures{}
	}
	start := time.Now()
	res, err := baselines.BLQ(log, set, core.Config{SolverTimeout: opts.SolverTimeout})
	elapsed := time.Since(start)
	if err != nil {
		return Measures{Applicable: true, Seconds: elapsed.Seconds()}
	}
	return evaluate(log, res, elapsed)
}

func runBaselineP(log *eventlog.Log, opts Options) Measures {
	x := eventlog.NewIndex(log)
	n := x.NumClasses() / 2
	if n < 1 {
		n = 1
	}
	start := time.Now()
	res, err := baselines.BLP(log, n, instances.SplitOnRepeat)
	elapsed := time.Since(start)
	if err != nil {
		return Measures{Applicable: true, Seconds: elapsed.Seconds()}
	}
	return evaluate(log, res, elapsed)
}

func runBaselineG(log *eventlog.Log, id SetID, opts Options) Measures {
	x := eventlog.NewIndex(log)
	set, ok := BuildSet(id, x)
	if !ok {
		return Measures{}
	}
	// BL_G cannot enforce grouping constraints; drop them (as the paper
	// notes) so the comparison stays on A/M/N which have none anyway.
	set2 := constraints.NewSet()
	for _, c := range set.Class {
		set2.Add(c)
	}
	for _, c := range set.Instance {
		set2.Add(c)
	}
	start := time.Now()
	res, err := baselines.BLG(log, set2, instances.SplitOnRepeat)
	elapsed := time.Since(start)
	if err != nil {
		return Measures{Applicable: true, Seconds: elapsed.Seconds()}
	}
	return evaluate(log, res, elapsed)
}

// Package procmodel turns the gateway-annotated DFGs of internal/discovery
// into explicit process models and serialises them as BPMN 2.0 XML or PNML
// Petri nets — the output formats of the discovery tooling around the paper
// (Split Miner emits BPMN). The conversion makes the implicit gateway
// structure explicit: XOR/AND splits and joins become gateway nodes, and a
// unique start and end event are synthesised from the log's start/end
// classes.
package procmodel

import (
	"fmt"
	"sort"

	"gecco/internal/discovery"
)

// NodeKind enumerates model node types.
type NodeKind int

const (
	StartEvent NodeKind = iota
	EndEvent
	Task
	XorGateway
	AndGateway
)

func (k NodeKind) String() string {
	return [...]string{"startEvent", "endEvent", "task", "exclusiveGateway", "parallelGateway"}[k]
}

// Node is a model element.
type Node struct {
	ID    string
	Kind  NodeKind
	Label string // task name; empty for gateways/events
}

// Flow is a directed sequence flow between two node IDs.
type Flow struct {
	ID   string
	From string
	To   string
}

// Model is a flat process model: nodes plus sequence flows.
type Model struct {
	Name  string
	Nodes []Node
	Flows []Flow
}

// FromDiscovery converts a discovered model into an explicit process model.
// Splits with multiple XOR branch-groups get an exclusive gateway; branch
// groups of size > 1 get a nested parallel gateway; joins mirror splits.
func FromDiscovery(name string, d *discovery.Model) *Model {
	m := &Model{Name: name}
	flowID := 0
	addFlow := func(from, to string) {
		flowID++
		m.Flows = append(m.Flows, Flow{ID: fmt.Sprintf("flow_%d", flowID), From: from, To: to})
	}
	taskID := func(v int) string { return fmt.Sprintf("task_%d", v) }

	for v := 0; v < d.Graph.N; v++ {
		m.Nodes = append(m.Nodes, Node{ID: taskID(v), Kind: Task, Label: d.Labels[v]})
	}
	// Start and end events.
	m.Nodes = append(m.Nodes, Node{ID: "start", Kind: StartEvent}, Node{ID: "end", Kind: EndEvent})
	connectBoundary(m, d.StartClasses, "start", taskID, addFlow, true)
	connectBoundary(m, d.EndClasses, "end", taskID, addFlow, false)

	// Split gateways: source side of each task's outgoing edges.
	for v := 0; v < d.Graph.N; v++ {
		groups := d.Splits[v]
		if len(groups) == 0 {
			continue
		}
		srcOut := taskID(v)
		if len(groups) > 1 {
			gw := fmt.Sprintf("xor_split_%d", v)
			m.Nodes = append(m.Nodes, Node{ID: gw, Kind: XorGateway})
			addFlow(srcOut, gw)
			srcOut = gw
		}
		for gi, group := range groups {
			src := srcOut
			if len(group) > 1 {
				gw := fmt.Sprintf("and_split_%d_%d", v, gi)
				m.Nodes = append(m.Nodes, Node{ID: gw, Kind: AndGateway})
				addFlow(src, gw)
				src = gw
			}
			for _, w := range group {
				addFlow(src, joinEntry(m, d, w, taskID, addFlow))
			}
		}
	}
	return m
}

// joinEntry returns the node id that inbound flows of task w should target,
// synthesising the join gateway chain on first use.
func joinEntry(m *Model, d *discovery.Model, w int, taskID func(int) string, addFlow func(string, string)) string {
	groups := d.Joins[w]
	needsXor := len(groups) > 1
	needsAnd := false
	for _, g := range groups {
		if len(g) > 1 {
			needsAnd = true
		}
	}
	if !needsXor && !needsAnd {
		return taskID(w)
	}
	// One shared entry gateway per task keeps the model flat: an XOR join
	// when alternatives exist, else an AND join. (Nested join structure is
	// approximated — sufficient for structural metrics and round trips.)
	kind, prefix := XorGateway, "xor_join_"
	if !needsXor {
		kind, prefix = AndGateway, "and_join_"
	}
	id := fmt.Sprintf("%s%d", prefix, w)
	for i := range m.Nodes {
		if m.Nodes[i].ID == id {
			return id
		}
	}
	m.Nodes = append(m.Nodes, Node{ID: id, Kind: kind})
	addFlow(id, taskID(w))
	return id
}

func connectBoundary(m *Model, classes []int, eventID string, taskID func(int) string, addFlow func(string, string), isStart bool) {
	if len(classes) == 0 {
		return
	}
	src := eventID
	if len(classes) > 1 {
		gw := "xor_" + eventID
		m.Nodes = append(m.Nodes, Node{ID: gw, Kind: XorGateway})
		if isStart {
			addFlow(eventID, gw)
		} else {
			addFlow(gw, eventID)
		}
		src = gw
	}
	for _, c := range classes {
		if isStart {
			addFlow(src, taskID(c))
		} else {
			addFlow(taskID(c), src)
		}
	}
}

// Validate checks structural sanity: unique node ids, flows referencing
// existing nodes, exactly one start and one end event, and every task on a
// path between them in the flow graph's weak sense (reachable from start,
// co-reachable from end).
func (m *Model) Validate() error {
	ids := make(map[string]NodeKind, len(m.Nodes))
	starts, ends := 0, 0
	for _, n := range m.Nodes {
		if _, dup := ids[n.ID]; dup {
			return fmt.Errorf("procmodel: duplicate node id %q", n.ID)
		}
		ids[n.ID] = n.Kind
		switch n.Kind {
		case StartEvent:
			starts++
		case EndEvent:
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		return fmt.Errorf("procmodel: %d start and %d end events, want 1 and 1", starts, ends)
	}
	succ := make(map[string][]string)
	pred := make(map[string][]string)
	for _, f := range m.Flows {
		if _, ok := ids[f.From]; !ok {
			return fmt.Errorf("procmodel: flow %s from unknown node %q", f.ID, f.From)
		}
		if _, ok := ids[f.To]; !ok {
			return fmt.Errorf("procmodel: flow %s to unknown node %q", f.ID, f.To)
		}
		succ[f.From] = append(succ[f.From], f.To)
		pred[f.To] = append(pred[f.To], f.From)
	}
	reach := closure("start", succ)
	coreach := closure("end", pred)
	for _, n := range m.Nodes {
		if n.Kind != Task {
			continue
		}
		if !reach[n.ID] {
			return fmt.Errorf("procmodel: task %q unreachable from start", n.ID)
		}
		if !coreach[n.ID] {
			return fmt.Errorf("procmodel: task %q cannot reach end", n.ID)
		}
	}
	return nil
}

func closure(from string, adj map[string][]string) map[string]bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// Tasks returns the task labels in sorted order.
func (m *Model) Tasks() []string {
	var out []string
	for _, n := range m.Nodes {
		if n.Kind == Task {
			out = append(out, n.Label)
		}
	}
	sort.Strings(out)
	return out
}

// GatewayCount returns the number of gateway nodes by kind.
func (m *Model) GatewayCount() (xor, and int) {
	for _, n := range m.Nodes {
		switch n.Kind {
		case XorGateway:
			xor++
		case AndGateway:
			and++
		}
	}
	return xor, and
}

package procmodel

import (
	"encoding/xml"
	"fmt"
	"io"
)

// BPMN 2.0 serialisation. The emitted document is a minimal but
// schema-shaped <definitions><process> with tasks, exclusive/parallel
// gateways, start/end events and sequence flows, importable by standard
// BPMN tooling.

type bpmnDefinitions struct {
	XMLName xml.Name    `xml:"definitions"`
	Xmlns   string      `xml:"xmlns,attr"`
	ID      string      `xml:"id,attr"`
	Process bpmnProcess `xml:"process"`
}

type bpmnProcess struct {
	ID           string        `xml:"id,attr"`
	IsExecutable bool          `xml:"isExecutable,attr"`
	Starts       []bpmnNode    `xml:"startEvent"`
	Ends         []bpmnNode    `xml:"endEvent"`
	Tasks        []bpmnNode    `xml:"task"`
	XorGateways  []bpmnNode    `xml:"exclusiveGateway"`
	AndGateways  []bpmnNode    `xml:"parallelGateway"`
	Flows        []bpmnFlowXML `xml:"sequenceFlow"`
}

type bpmnNode struct {
	ID   string `xml:"id,attr"`
	Name string `xml:"name,attr,omitempty"`
}

type bpmnFlowXML struct {
	ID        string `xml:"id,attr"`
	SourceRef string `xml:"sourceRef,attr"`
	TargetRef string `xml:"targetRef,attr"`
}

// WriteBPMN serialises the model as BPMN 2.0 XML.
func (m *Model) WriteBPMN(w io.Writer) error {
	doc := bpmnDefinitions{
		Xmlns: "http://www.omg.org/spec/BPMN/20100524/MODEL",
		ID:    "definitions_" + sanitizeID(m.Name),
		Process: bpmnProcess{
			ID:           "process_" + sanitizeID(m.Name),
			IsExecutable: false,
		},
	}
	for _, n := range m.Nodes {
		bn := bpmnNode{ID: n.ID, Name: n.Label}
		switch n.Kind {
		case StartEvent:
			doc.Process.Starts = append(doc.Process.Starts, bn)
		case EndEvent:
			doc.Process.Ends = append(doc.Process.Ends, bn)
		case Task:
			doc.Process.Tasks = append(doc.Process.Tasks, bn)
		case XorGateway:
			doc.Process.XorGateways = append(doc.Process.XorGateways, bn)
		case AndGateway:
			doc.Process.AndGateways = append(doc.Process.AndGateways, bn)
		}
	}
	for _, f := range m.Flows {
		doc.Process.Flows = append(doc.Process.Flows, bpmnFlowXML{ID: f.ID, SourceRef: f.From, TargetRef: f.To})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("procmodel: bpmn encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadBPMN parses a BPMN document written by WriteBPMN back into a Model
// (used for round-trip testing and for loading externally edited models).
func ReadBPMN(r io.Reader) (*Model, error) {
	var doc bpmnDefinitions
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("procmodel: bpmn decode: %w", err)
	}
	m := &Model{Name: doc.Process.ID}
	add := func(ns []bpmnNode, k NodeKind) {
		for _, n := range ns {
			m.Nodes = append(m.Nodes, Node{ID: n.ID, Kind: k, Label: n.Name})
		}
	}
	add(doc.Process.Starts, StartEvent)
	add(doc.Process.Ends, EndEvent)
	add(doc.Process.Tasks, Task)
	add(doc.Process.XorGateways, XorGateway)
	add(doc.Process.AndGateways, AndGateway)
	for _, f := range doc.Process.Flows {
		m.Flows = append(m.Flows, Flow{ID: f.ID, From: f.SourceRef, To: f.TargetRef})
	}
	return m, nil
}

func sanitizeID(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "model"
	}
	return string(out)
}

package procmodel

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gecco/internal/discovery"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

func discovered(t *testing.T, seqs [][]string) *discovery.Model {
	t.Helper()
	log := &eventlog.Log{}
	for _, seq := range seqs {
		tr := eventlog.Trace{ID: "t"}
		for _, c := range seq {
			tr.Events = append(tr.Events, eventlog.Event{Class: c})
		}
		log.Traces = append(log.Traces, tr)
	}
	m, err := discovery.Discover(context.Background(), eventlog.NewIndex(log), discovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromDiscoverySequence(t *testing.T) {
	d := discovered(t, [][]string{{"a", "b", "c"}})
	m := FromDiscovery("seq", d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Tasks(); len(got) != 3 {
		t.Fatalf("tasks = %v", got)
	}
	xor, and := m.GatewayCount()
	if xor != 0 || and != 0 {
		t.Fatalf("pure sequence should have no gateways, got xor=%d and=%d", xor, and)
	}
}

func TestFromDiscoveryXor(t *testing.T) {
	d := discovered(t, [][]string{{"a", "b", "d"}, {"a", "c", "d"}})
	m := FromDiscovery("xor", d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	xor, and := m.GatewayCount()
	if xor < 2 { // split after a, join before d
		t.Fatalf("expected xor split+join, got %d", xor)
	}
	if and != 0 {
		t.Fatalf("no parallelism expected, got %d AND gateways", and)
	}
}

func TestFromDiscoveryAnd(t *testing.T) {
	d := discovered(t, [][]string{{"a", "b", "c", "d"}, {"a", "c", "b", "d"}})
	m := FromDiscovery("and", d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	_, and := m.GatewayCount()
	if and < 1 {
		t.Fatal("expected a parallel gateway for concurrent b/c")
	}
}

func TestValidateCatchesBrokenModels(t *testing.T) {
	m := &Model{Name: "broken", Nodes: []Node{
		{ID: "start", Kind: StartEvent},
		{ID: "end", Kind: EndEvent},
		{ID: "t1", Kind: Task, Label: "a"},
	}}
	// t1 is disconnected.
	if err := m.Validate(); err == nil {
		t.Fatal("disconnected task not detected")
	}
	m.Flows = []Flow{{ID: "f1", From: "start", To: "t1"}, {ID: "f2", From: "t1", To: "end"}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicate id.
	m.Nodes = append(m.Nodes, Node{ID: "t1", Kind: Task})
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate id not detected")
	}
	// Flow to unknown node.
	m2 := &Model{Nodes: []Node{{ID: "start", Kind: StartEvent}, {ID: "end", Kind: EndEvent}},
		Flows: []Flow{{ID: "f", From: "start", To: "ghost"}}}
	if err := m2.Validate(); err == nil {
		t.Fatal("dangling flow not detected")
	}
}

func TestBPMNRoundTrip(t *testing.T) {
	d := discovered(t, [][]string{
		{"a", "b", "d"}, {"a", "c", "d"}, {"a", "b", "d"},
	})
	m := FromDiscovery("roundtrip", d)
	var buf bytes.Buffer
	if err := m.WriteBPMN(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<definitions") || !strings.Contains(out, "exclusiveGateway") {
		t.Fatalf("BPMN output malformed:\n%s", out)
	}
	back, err := ReadBPMN(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(m.Nodes) || len(back.Flows) != len(m.Flows) {
		t.Fatalf("round trip: %d/%d nodes, %d/%d flows",
			len(back.Nodes), len(m.Nodes), len(back.Flows), len(m.Flows))
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(back.Tasks(), ",") != strings.Join(m.Tasks(), ",") {
		t.Fatal("task labels changed in round trip")
	}
}

func TestPNMLBipartiteAndMarked(t *testing.T) {
	d := discovered(t, [][]string{{"a", "b", "d"}, {"a", "c", "d"}})
	m := FromDiscovery("net", d)
	pn := m.toPetri()
	// Exactly one initially marked place (the start event).
	marked := 0
	for _, mk := range pn.places {
		marked += mk
	}
	if marked != 1 {
		t.Fatalf("initial marking = %d tokens, want 1", marked)
	}
	// Bipartite: every arc connects a place and a transition.
	for _, a := range pn.arcs {
		_, srcPlace := pn.places[a[0]]
		_, dstPlace := pn.places[a[1]]
		_, srcTrans := pn.transitions[a[0]]
		_, dstTrans := pn.transitions[a[1]]
		if srcPlace == dstPlace || srcTrans == dstTrans {
			t.Fatalf("arc %v violates bipartiteness", a)
		}
	}
}

func TestPNMLSerialises(t *testing.T) {
	d := discovered(t, [][]string{{"a", "b"}})
	m := FromDiscovery("tiny", d)
	var buf bytes.Buffer
	if err := m.WritePNML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<pnml>", "<place", "<transition", "<arc", "initialMarking"} {
		if !strings.Contains(out, want) {
			t.Fatalf("PNML missing %q:\n%s", want, out)
		}
	}
}

func TestRunningExampleModelExport(t *testing.T) {
	log := procgen.RunningExample(300, 5)
	d, err := discovery.Discover(context.Background(), eventlog.NewIndex(log), discovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := FromDiscovery("running-example", d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Tasks()) != 8 {
		t.Fatalf("tasks = %v", m.Tasks())
	}
	var bpmn, pnmlBuf bytes.Buffer
	if err := m.WriteBPMN(&bpmn); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePNML(&pnmlBuf); err != nil {
		t.Fatal(err)
	}
	if bpmn.Len() == 0 || pnmlBuf.Len() == 0 {
		t.Fatal("empty serialisation")
	}
}

package procmodel

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
)

// PNML serialisation: the model is converted into a Petri net in the
// standard translation — tasks and AND gateways become transitions, XOR
// gateways become places, and sequence flows become arcs with interstitial
// places/transitions as needed to keep the net bipartite. The start event
// maps to an initially marked place, the end event to a sink place.

type pnml struct {
	XMLName xml.Name `xml:"pnml"`
	Net     pnmlNet  `xml:"net"`
}

type pnmlNet struct {
	ID          string           `xml:"id,attr"`
	Type        string           `xml:"type,attr"`
	Places      []pnmlPlace      `xml:"place"`
	Transitions []pnmlTransition `xml:"transition"`
	Arcs        []pnmlArc        `xml:"arc"`
}

type pnmlPlace struct {
	ID      string    `xml:"id,attr"`
	Name    *pnmlName `xml:"name,omitempty"`
	Marking int       `xml:"initialMarking>text,omitempty"`
}

type pnmlTransition struct {
	ID   string    `xml:"id,attr"`
	Name *pnmlName `xml:"name,omitempty"`
}

type pnmlName struct {
	Text string `xml:"text"`
}

type pnmlArc struct {
	ID     string `xml:"id,attr"`
	Source string `xml:"source,attr"`
	Target string `xml:"target,attr"`
}

// petri is the intermediate Petri-net structure.
type petri struct {
	places      map[string]int // id -> initial marking
	placeNames  map[string]string
	transitions map[string]string // id -> label
	arcs        [][2]string
}

// toPetri performs the node-wise translation.
func (m *Model) toPetri() *petri {
	p := &petri{
		places:      map[string]int{},
		placeNames:  map[string]string{},
		transitions: map[string]string{},
	}
	// Node mapping: each model node becomes either a place or a
	// transition; flows then connect them with interstitial elements
	// preserving bipartiteness.
	isPlace := func(n *Node) bool {
		return n.Kind == StartEvent || n.Kind == EndEvent || n.Kind == XorGateway
	}
	byID := make(map[string]*Node, len(m.Nodes))
	for i := range m.Nodes {
		n := &m.Nodes[i]
		byID[n.ID] = n
		if isPlace(n) {
			marking := 0
			if n.Kind == StartEvent {
				marking = 1
			}
			p.places["p_"+n.ID] = marking
			p.placeNames["p_"+n.ID] = n.Label
		} else {
			p.transitions["t_"+n.ID] = n.Label
		}
	}
	pid := func(n *Node) string { return "p_" + n.ID }
	tid := func(n *Node) string { return "t_" + n.ID }
	inter := 0
	for _, f := range m.Flows {
		from, to := byID[f.From], byID[f.To]
		switch {
		case isPlace(from) && !isPlace(to): // place -> transition
			p.arcs = append(p.arcs, [2]string{pid(from), tid(to)})
		case !isPlace(from) && isPlace(to): // transition -> place
			p.arcs = append(p.arcs, [2]string{tid(from), pid(to)})
		case !isPlace(from) && !isPlace(to): // transition -> transition: add a place
			inter++
			ip := fmt.Sprintf("p_inter_%d", inter)
			p.places[ip] = 0
			p.arcs = append(p.arcs, [2]string{tid(from), ip}, [2]string{ip, tid(to)})
		default: // place -> place: add a silent transition
			inter++
			it := fmt.Sprintf("t_tau_%d", inter)
			p.transitions[it] = ""
			p.arcs = append(p.arcs, [2]string{pid(from), it}, [2]string{it, pid(to)})
		}
	}
	return p
}

// WritePNML serialises the model as a PNML place/transition net.
func (m *Model) WritePNML(w io.Writer) error {
	pn := m.toPetri()
	net := pnmlNet{ID: "net_" + sanitizeID(m.Name), Type: "http://www.pnml.org/version-2009/grammar/ptnet"}
	for id, marking := range pn.places {
		pl := pnmlPlace{ID: id, Marking: marking}
		if name := pn.placeNames[id]; name != "" {
			pl.Name = &pnmlName{Text: name}
		}
		net.Places = append(net.Places, pl)
	}
	for id, label := range pn.transitions {
		tr := pnmlTransition{ID: id}
		if label != "" {
			tr.Name = &pnmlName{Text: label}
		}
		net.Transitions = append(net.Transitions, tr)
	}
	// Deterministic output order.
	sort.Slice(net.Places, func(i, j int) bool { return net.Places[i].ID < net.Places[j].ID })
	sort.Slice(net.Transitions, func(i, j int) bool { return net.Transitions[i].ID < net.Transitions[j].ID })
	for i, a := range pn.arcs {
		net.Arcs = append(net.Arcs, pnmlArc{ID: fmt.Sprintf("arc_%d", i+1), Source: a[0], Target: a[1]})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(pnml{Net: net}); err != nil {
		return fmt.Errorf("procmodel: pnml encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

package cover

import (
	"math"
	"math/rand"
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/mip"
)

func mkGroups(n int, groups [][]int) []bitset.Set {
	out := make([]bitset.Set, len(groups))
	for i, g := range groups {
		out[i] = bitset.FromSlice(n, g)
	}
	return out
}

func TestSimplePartition(t *testing.T) {
	// Classes {0,1,2}; candidates {0,1} cost 1, {2} cost 1, {0} cost 1,
	// {1,2} cost 5. Optimum: {0,1}+{2} = 2.
	p := &Problem{
		NumClasses: 3,
		Candidates: mkGroups(3, [][]int{{0, 1}, {2}, {0}, {1, 2}}),
		Costs:      []float64{1, 1, 1, 5},
		MaxGroups:  -1,
	}
	r := SolveBB(p)
	if !r.Feasible || math.Abs(r.Cost-2) > 1e-9 {
		t.Fatalf("r = %+v", r)
	}
	if len(r.Selected) != 2 || r.Selected[0] != 0 || r.Selected[1] != 1 {
		t.Fatalf("selected %v", r.Selected)
	}
}

func TestInfeasibleUncovered(t *testing.T) {
	p := &Problem{
		NumClasses: 3,
		Candidates: mkGroups(3, [][]int{{0, 1}}),
		Costs:      []float64{1},
		MaxGroups:  -1,
	}
	r := SolveBB(p)
	if r.Feasible {
		t.Fatal("expected infeasible")
	}
	if len(r.UncoveredClasses) != 1 || r.UncoveredClasses[0] != 2 {
		t.Fatalf("uncovered %v", r.UncoveredClasses)
	}
}

func TestInfeasibleOverlapOnly(t *testing.T) {
	// All classes covered, but only overlapping candidates: {0,1}, {1,2}.
	// No exact cover exists without singleton {2}/{0}.
	p := &Problem{
		NumClasses: 3,
		Candidates: mkGroups(3, [][]int{{0, 1}, {1, 2}}),
		Costs:      []float64{1, 1},
		MaxGroups:  -1,
	}
	if r := SolveBB(p); r.Feasible {
		t.Fatal("expected infeasible cover")
	}
}

func TestMaxGroupsBound(t *testing.T) {
	// Without bound the optimum uses 3 singletons (cost 3); with
	// MaxGroups=2 it must pick {0,1} (cost 2.5) + {2} (cost 1).
	p := &Problem{
		NumClasses: 3,
		Candidates: mkGroups(3, [][]int{{0}, {1}, {2}, {0, 1}}),
		Costs:      []float64{1, 1, 1, 2.5},
		MaxGroups:  -1,
	}
	r := SolveBB(p)
	if math.Abs(r.Cost-3) > 1e-9 {
		t.Fatalf("unbounded cost = %f, want 3", r.Cost)
	}
	p.MaxGroups = 2
	r = SolveBB(p)
	if !r.Feasible || math.Abs(r.Cost-3.5) > 1e-9 || len(r.Selected) != 2 {
		t.Fatalf("bounded r = %+v", r)
	}
}

func TestMinGroupsBound(t *testing.T) {
	// Optimum without bound is the single full group (cost 1); MinGroups=3
	// forces singletons.
	p := &Problem{
		NumClasses: 3,
		Candidates: mkGroups(3, [][]int{{0, 1, 2}, {0}, {1}, {2}}),
		Costs:      []float64{1, 1, 1, 1},
		MinGroups:  3,
		MaxGroups:  -1,
	}
	r := SolveBB(p)
	if !r.Feasible || len(r.Selected) != 3 || math.Abs(r.Cost-3) > 1e-9 {
		t.Fatalf("r = %+v", r)
	}
}

func TestInfiniteCostExcluded(t *testing.T) {
	p := &Problem{
		NumClasses: 2,
		Candidates: mkGroups(2, [][]int{{0, 1}, {0}, {1}}),
		Costs:      []float64{math.Inf(1), 1, 1},
		MaxGroups:  -1,
	}
	r := SolveBB(p)
	if !r.Feasible || len(r.Selected) != 2 {
		t.Fatalf("r = %+v", r)
	}
}

// brute enumerates all candidate subsets for a reference solution.
func brute(p *Problem) (float64, bool) {
	n := len(p.Candidates)
	best := math.Inf(1)
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		covered := bitset.New(p.NumClasses)
		cost := 0.0
		count := 0
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if p.Candidates[i].Intersects(covered) {
				ok = false
				break
			}
			covered = covered.Union(p.Candidates[i])
			cost += p.Costs[i]
			count++
		}
		if !ok || covered.Len() != p.NumClasses {
			continue
		}
		if count < p.MinGroups || (p.MaxGroups >= 0 && count > p.MaxGroups) {
			continue
		}
		if cost < best {
			best = cost
			found = true
		}
	}
	return best, found
}

// Randomised cross-validation: BB vs MIP vs brute force.
func TestRandomisedCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		nC := 3 + rng.Intn(4)  // 3..6 classes
		nG := 4 + rng.Intn(10) // 4..13 candidates
		p := &Problem{NumClasses: nC, MaxGroups: -1}
		for g := 0; g < nG; g++ {
			set := bitset.New(nC)
			for c := 0; c < nC; c++ {
				if rng.Intn(3) == 0 {
					set.Add(c)
				}
			}
			if set.IsEmpty() {
				set.Add(rng.Intn(nC))
			}
			p.Candidates = append(p.Candidates, set)
			p.Costs = append(p.Costs, 0.1+rng.Float64()*3)
		}
		if rng.Intn(3) == 0 {
			p.MaxGroups = 1 + rng.Intn(nC)
		}
		if rng.Intn(4) == 0 {
			p.MinGroups = 1 + rng.Intn(2)
		}
		ref, feasible := brute(p)
		bb := SolveBB(p)
		mipRes, mipStatus := SolveMIP(p, mip.Options{})
		if bb.Feasible != feasible {
			t.Fatalf("trial %d: BB feasible=%v brute=%v", trial, bb.Feasible, feasible)
		}
		if feasible {
			if math.Abs(bb.Cost-ref) > 1e-6 {
				t.Fatalf("trial %d: BB cost %f, brute %f", trial, bb.Cost, ref)
			}
			if mipStatus != mip.Optimal || math.Abs(mipRes.Cost-ref) > 1e-6 {
				t.Fatalf("trial %d: MIP status %v cost %f, brute %f", trial, mipStatus, mipRes.Cost, ref)
			}
		} else if mipRes.Feasible {
			t.Fatalf("trial %d: MIP found solution for infeasible instance", trial)
		}
		// Validate the BB selection is an exact cover.
		if feasible {
			covered := bitset.New(nC)
			for _, gi := range bb.Selected {
				if p.Candidates[gi].Intersects(covered) {
					t.Fatalf("trial %d: overlapping selection", trial)
				}
				covered = covered.Union(p.Candidates[gi])
			}
			if covered.Len() != nC {
				t.Fatalf("trial %d: selection does not cover", trial)
			}
		}
	}
}

// No-good cuts: forbidding the optimum must yield the second-best cover in
// both solvers.
func TestForbiddenSelections(t *testing.T) {
	p := &Problem{
		NumClasses: 3,
		Candidates: mkGroups(3, [][]int{{0, 1, 2}, {0, 1}, {2}, {0}, {1}}),
		Costs:      []float64{1, 0.9, 0.8, 1, 1},
		MaxGroups:  -1,
	}
	first := SolveBB(p)
	if !first.Feasible || len(first.Selected) != 1 || first.Selected[0] != 0 {
		t.Fatalf("first = %+v", first)
	}
	p.Forbidden = append(p.Forbidden, first.Selected)
	second := SolveBB(p)
	if !second.Feasible {
		t.Fatal("second-best should exist")
	}
	if len(second.Selected) == 1 && second.Selected[0] == 0 {
		t.Fatal("forbidden selection returned again")
	}
	if math.Abs(second.Cost-1.7) > 1e-9 { // {0,1} + {2}
		t.Fatalf("second cost = %f, want 1.7", second.Cost)
	}
	// MIP agrees.
	mipRes, st := SolveMIP(p, mip.Options{})
	if st != mip.Optimal || math.Abs(mipRes.Cost-1.7) > 1e-9 {
		t.Fatalf("MIP second: status %v cost %f", st, mipRes.Cost)
	}
	// Forbid that too: only singletons remain (cost 2.8).
	p.Forbidden = append(p.Forbidden, second.Selected)
	third := SolveBB(p)
	if !third.Feasible || math.Abs(third.Cost-2.8) > 1e-9 {
		t.Fatalf("third = %+v", third)
	}
}

// Exhausting all covers via no-good cuts ends in infeasibility.
func TestForbiddenExhaustion(t *testing.T) {
	p := &Problem{
		NumClasses: 2,
		Candidates: mkGroups(2, [][]int{{0, 1}, {0}, {1}}),
		Costs:      []float64{1, 1, 1},
		MaxGroups:  -1,
	}
	for i := 0; i < 2; i++ {
		r := SolveBB(p)
		if !r.Feasible {
			t.Fatalf("round %d should be feasible", i)
		}
		p.Forbidden = append(p.Forbidden, r.Selected)
	}
	if r := SolveBB(p); r.Feasible {
		t.Fatalf("all covers forbidden, got %+v", r)
	}
}

// The greedy warm start never reports a better-than-optimal incumbent.
func TestGreedyWarmStartConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		nC := 3 + rng.Intn(4)
		p := &Problem{NumClasses: nC, MaxGroups: -1}
		for g := 0; g < 6+rng.Intn(6); g++ {
			set := bitset.New(nC)
			for c := 0; c < nC; c++ {
				if rng.Intn(2) == 0 {
					set.Add(c)
				}
			}
			if set.IsEmpty() {
				set.Add(rng.Intn(nC))
			}
			p.Candidates = append(p.Candidates, set)
			p.Costs = append(p.Costs, 0.1+rng.Float64())
		}
		ref, feasible := brute(p)
		r := SolveBB(p)
		if r.Feasible != feasible {
			t.Fatalf("trial %d feasibility mismatch", trial)
		}
		if feasible && math.Abs(r.Cost-ref) > 1e-9 {
			t.Fatalf("trial %d: %f vs brute %f", trial, r.Cost, ref)
		}
	}
}

// Package cover solves Step 2 of GECCO (§V-C): selecting from the candidate
// groups an exact cover of the event classes that minimises total distance,
// optionally subject to grouping constraints bounding the number of selected
// groups (Eq. 5). Two exact solvers are provided and cross-validated in
// tests: the paper's MIP formulation (Eq. 3–5) solved with internal/mip, and
// a direct combinatorial branch and bound specialised to set partitioning,
// which is the default as it is markedly faster on these instances.
package cover

import (
	"context"
	"math"
	"sort"
	"time"

	"gecco/internal/bitset"
	"gecco/internal/lp"
	"gecco/internal/mip"
)

// Problem is a weighted set-partitioning instance.
type Problem struct {
	NumClasses int
	Candidates []bitset.Set
	Costs      []float64
	// MinGroups/MaxGroups bound the number of selected groups;
	// MaxGroups < 0 means unbounded.
	MinGroups int
	MaxGroups int
	// Forbidden lists exact selections (sorted candidate-index sets) that
	// must not be returned — the no-good cuts used to enforce global
	// grouping-instance constraints by iterated re-solving.
	Forbidden [][]int
}

// forbidden reports whether the sorted selection equals a forbidden one.
func (p *Problem) forbidden(sel []int) bool {
	for _, f := range p.Forbidden {
		if len(f) != len(sel) {
			continue
		}
		same := true
		for i := range f {
			if f[i] != sel[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// Result is a solve outcome.
type Result struct {
	Feasible bool
	Selected []int // indices into Candidates, sorted
	Cost     float64
	Nodes    int
	// UncoveredClasses lists class ids no candidate covers (an immediate
	// infeasibility cause surfaced to the user per §V-C).
	UncoveredClasses []int
}

// SolveBB solves the problem exactly with depth-first branch and bound over
// classes. Costs must be non-negative (GECCO's distance always is); +Inf
// costs effectively remove a candidate.
func SolveBB(p *Problem) Result {
	//lint:gecco-allow(ctxflow): convenience wrapper; SolveBBCtx is the cancellable variant
	return solveBB(context.Background(), p, time.Time{})
}

// SolveBBTimeout is SolveBB with a wall-clock budget; on expiry the best
// incumbent found so far (if any) is returned with Feasible reflecting it.
func SolveBBTimeout(p *Problem, budget time.Duration) Result {
	//lint:gecco-allow(ctxflow): convenience wrapper; SolveBBCtx is the cancellable variant
	return SolveBBCtx(context.Background(), p, budget)
}

// SolveBBCtx is SolveBBTimeout under a context: the search additionally
// stops — keeping the best incumbent found so far — when ctx is cancelled
// or its deadline (composed with budget, whichever is earlier) expires.
func SolveBBCtx(ctx context.Context, p *Problem, budget time.Duration) Result {
	deadline := time.Time{}
	if budget > 0 {
		//lint:gecco-allow(wallclock): opt-in wall-clock budget of SolveBBTimeout; exact solves pass budget=0 and never read the clock
		deadline = time.Now().Add(budget)
	}
	if cd, ok := ctx.Deadline(); ok && (deadline.IsZero() || cd.Before(deadline)) {
		deadline = cd
	}
	return solveBB(ctx, p, deadline)
}

func solveBB(ctx context.Context, p *Problem, deadline time.Time) Result {
	nC := p.NumClasses
	// byClass[c] lists candidates covering class c, cheapest first.
	byClass := make([][]int, nC)
	for gi, g := range p.Candidates {
		if math.IsInf(p.Costs[gi], 1) {
			continue
		}
		g.ForEach(func(c int) bool {
			byClass[c] = append(byClass[c], gi)
			return true
		})
	}
	var uncovered []int
	for c := 0; c < nC; c++ {
		if len(byClass[c]) == 0 {
			uncovered = append(uncovered, c)
		}
	}
	if len(uncovered) > 0 {
		return Result{UncoveredClasses: uncovered}
	}
	for c := range byClass {
		cands := byClass[c]
		sort.Slice(cands, func(i, j int) bool { return p.Costs[cands[i]] < p.Costs[cands[j]] })
	}
	// minShare[c]: lower bound on the per-class apportioned cost, valid
	// because every candidate distributes cost/|g| over its classes.
	minShare := make([]float64, nC)
	maxCandSize := 1
	for c := 0; c < nC; c++ {
		best := math.Inf(1)
		for _, gi := range byClass[c] {
			share := p.Costs[gi] / float64(p.Candidates[gi].Len())
			if share < best {
				best = share
			}
		}
		minShare[c] = best
	}
	for _, g := range p.Candidates {
		if l := g.Len(); l > maxCandSize {
			maxCandSize = l
		}
	}

	covered := bitset.New(nC)
	var (
		bestCost     = math.Inf(1)
		bestSel      []int
		curSel       []int
		nodes        int
		timedOut     bool
		checkCounter int
	)
	// Greedy warm start: repeatedly take the cheapest-per-class compatible
	// candidate. A full cover found this way seeds the incumbent and makes
	// the lower-bound pruning bite from the first node.
	if g, cost, ok := greedyCover(p, byClass); ok && !p.forbidden(g) {
		bestCost, bestSel = cost, g
	}
	var lbRemaining func(covered bitset.Set) float64
	lbRemaining = func(covered bitset.Set) float64 {
		s := 0.0
		for c := 0; c < nC; c++ {
			if !covered.Contains(c) {
				s += minShare[c]
			}
		}
		return s
	}

	var rec func(cost float64, numUncovered int)
	rec = func(cost float64, numUncovered int) {
		nodes++
		if timedOut {
			return
		}
		checkCounter++
		if checkCounter&1023 == 0 {
			if ctx.Err() != nil {
				timedOut = true
				return
			}
			//lint:gecco-allow(wallclock): deadline probe behind the same opt-in budget; zero deadline short-circuits before the clock read
			if !deadline.IsZero() && time.Now().After(deadline) {
				timedOut = true
				return
			}
		}
		if numUncovered == 0 {
			if len(curSel) >= p.MinGroups && cost < bestCost {
				sorted := append([]int(nil), curSel...)
				sort.Ints(sorted)
				if !p.forbidden(sorted) {
					bestCost = cost
					bestSel = sorted
				}
			}
			return
		}
		// Group-count pruning.
		if p.MaxGroups >= 0 {
			minMore := (numUncovered + maxCandSize - 1) / maxCandSize
			if len(curSel)+minMore > p.MaxGroups {
				return
			}
		}
		if len(curSel)+numUncovered < p.MinGroups {
			return
		}
		if cost+lbRemaining(covered) >= bestCost {
			return
		}
		// Branch on the uncovered class with fewest compatible candidates.
		// Counting stops at the current minimum (only relative order
		// matters), which turns the selection from O(classes × candidates)
		// into nearly O(classes × min-count) per node.
		branch, branchOptions := -1, math.MaxInt
		for c := 0; c < nC; c++ {
			if covered.Contains(c) {
				continue
			}
			n := 0
			for _, gi := range byClass[c] {
				if !p.Candidates[gi].Intersects(covered) {
					n++
					if n >= branchOptions {
						break // cannot become the new minimum
					}
				}
			}
			if n == 0 {
				return // dead end
			}
			if n < branchOptions {
				branchOptions = n
				branch = c
				if n == 1 {
					break // forced move; no better branch exists
				}
			}
		}
		for _, gi := range byClass[branch] {
			g := p.Candidates[gi]
			if g.Intersects(covered) {
				continue
			}
			newCost := cost + p.Costs[gi]
			if newCost >= bestCost {
				continue // candidates are cost-sorted but LB pruning still applies below
			}
			g.ForEach(func(c int) bool { covered.Add(c); return true })
			curSel = append(curSel, gi)
			rec(newCost, numUncovered-g.Len())
			curSel = curSel[:len(curSel)-1]
			g.ForEach(func(c int) bool { covered.Remove(c); return true })
			if timedOut {
				return
			}
		}
	}
	rec(0, nC)

	if bestSel == nil {
		return Result{Nodes: nodes}
	}
	sort.Ints(bestSel)
	return Result{Feasible: true, Selected: bestSel, Cost: bestCost, Nodes: nodes}
}

// greedyCover builds an exact cover greedily by repeatedly selecting the
// candidate with the lowest cost-per-class among those compatible with the
// selection, honouring the group-count bounds. Returns ok=false when the
// greedy path dead-ends (the exact search may still succeed).
func greedyCover(p *Problem, byClass [][]int) ([]int, float64, bool) {
	nC := p.NumClasses
	covered := bitset.New(nC)
	var sel []int
	cost := 0.0
	for covered.Len() < nC {
		best, bestShare := -1, math.Inf(1)
		for c := 0; c < nC; c++ {
			if covered.Contains(c) {
				continue
			}
			for _, gi := range byClass[c] {
				g := p.Candidates[gi]
				if g.Intersects(covered) {
					continue
				}
				if share := p.Costs[gi] / float64(g.Len()); share < bestShare {
					bestShare = share
					best = gi
				}
			}
		}
		if best < 0 {
			return nil, 0, false
		}
		g := p.Candidates[best]
		g.ForEach(func(c int) bool { covered.Add(c); return true })
		sel = append(sel, best)
		cost += p.Costs[best]
		if p.MaxGroups >= 0 && len(sel) > p.MaxGroups {
			return nil, 0, false
		}
	}
	if len(sel) < p.MinGroups {
		return nil, 0, false
	}
	sort.Ints(sel)
	return sel, cost, true
}

// SolveMIP solves the problem via the paper's MIP formulation (Eq. 3–5):
// binary selected_g and covered_c variables with coverage-linking rows.
func SolveMIP(p *Problem, opts mip.Options) (Result, mip.Status) {
	//lint:gecco-allow(ctxflow): convenience wrapper; SolveMIPCtx is the cancellable variant
	return SolveMIPCtx(context.Background(), p, opts)
}

// SolveMIPCtx is SolveMIP under a context; cancellation aborts the
// branch-and-bound search (see mip.SolveContext).
func SolveMIPCtx(ctx context.Context, p *Problem, opts mip.Options) (Result, mip.Status) {
	nG := len(p.Candidates)
	nC := p.NumClasses
	nv := nG + nC // selected_0..nG-1, covered_0..nC-1

	prob := &mip.Problem{
		LP: lp.Problem{
			NumVars: nv,
			C:       make([]float64, nv),
			Upper:   make([]float64, nv),
		},
		Integer: make([]bool, nv),
	}
	for j := 0; j < nv; j++ {
		prob.LP.Upper[j] = 1
		prob.Integer[j] = true
	}
	infeasibleCost := false
	for gi := 0; gi < nG; gi++ {
		c := p.Costs[gi]
		if math.IsInf(c, 1) {
			// Exclude the candidate by fixing selected_gi = 0.
			prob.LP.Upper[gi] = 0
			c = 0
			infeasibleCost = true
		}
		prob.LP.C[gi] = c
	}
	_ = infeasibleCost

	addRow := func(coeffs map[int]float64, op lp.RelOp, rhs float64) {
		row := make([]float64, nv)
		for j, v := range coeffs {
			row[j] = v
		}
		prob.LP.A = append(prob.LP.A, row)
		prob.LP.Ops = append(prob.LP.Ops, op)
		prob.LP.B = append(prob.LP.B, rhs)
	}

	// Eq. 3: sum of covered_c equals |CL|.
	cov := make(map[int]float64, nC)
	for c := 0; c < nC; c++ {
		cov[nG+c] = 1
	}
	addRow(cov, lp.EQ, float64(nC))
	// Eq. 4: per class, sum of selected groups covering it equals covered_c.
	for c := 0; c < nC; c++ {
		row := map[int]float64{nG + c: -1}
		for gi, g := range p.Candidates {
			if g.Contains(c) {
				row[gi] = 1
			}
		}
		addRow(row, lp.EQ, 0)
	}
	// No-good cuts: a forbidden selection F is excluded via
	// sum_{g in F} selected_g - sum_{g not in F} selected_g <= |F| - 1,
	// which cuts off exactly that selection.
	for _, f := range p.Forbidden {
		inF := make(map[int]bool, len(f))
		for _, gi := range f {
			inF[gi] = true
		}
		row := make(map[int]float64, nG)
		for gi := 0; gi < nG; gi++ {
			if inF[gi] {
				row[gi] = 1
			} else {
				row[gi] = -1
			}
		}
		addRow(row, lp.LE, float64(len(f)-1))
	}
	// Eq. 5: grouping bounds.
	if p.MaxGroups >= 0 {
		sel := make(map[int]float64, nG)
		for gi := 0; gi < nG; gi++ {
			sel[gi] = 1
		}
		addRow(sel, lp.LE, float64(p.MaxGroups))
	}
	if p.MinGroups > 0 {
		sel := make(map[int]float64, nG)
		for gi := 0; gi < nG; gi++ {
			sel[gi] = 1
		}
		addRow(sel, lp.GE, float64(p.MinGroups))
	}

	sol := mip.SolveContext(ctx, prob, opts)
	// Like SolveBBCtx, a truncated search (time limit, cancellation, node
	// limit) still yields its best incumbent when one was found; only a
	// solve with no integral solution at all is infeasible.
	if sol.X == nil {
		return Result{Nodes: sol.Nodes}, sol.Status
	}
	var selected []int
	cost := 0.0
	for gi := 0; gi < nG; gi++ {
		if sol.X[gi] > 0.5 {
			selected = append(selected, gi)
			cost += p.Costs[gi]
		}
	}
	return Result{Feasible: true, Selected: selected, Cost: cost, Nodes: sol.Nodes}, sol.Status
}

package procgen

import (
	"time"

	"gecco/internal/eventlog"
)

// Running-example event classes (§II of the paper).
const (
	RCP  = "rcp"  // receive request (clerk)
	CKC  = "ckc"  // check casually (clerk)
	CKT  = "ckt"  // check thoroughly (clerk)
	ACC  = "acc"  // accept (manager)
	REJ  = "rej"  // reject (manager)
	PRIO = "prio" // assign priority (clerk)
	INF  = "inf"  // inform customer (clerk)
	ARV  = "arv"  // archive request (clerk)
)

// runningExampleRoles maps each running-example class to its role.
var runningExampleRoles = map[string]string{
	RCP: "clerk", CKC: "clerk", CKT: "clerk", PRIO: "clerk", INF: "clerk", ARV: "clerk",
	ACC: "manager", REJ: "manager",
}

// RunningExampleTable1 reproduces exactly the four traces of Table I,
// including role attributes. This is the golden fixture for the paper's
// worked results (the optimal grouping of Figure 7 with dist = 3.08).
func RunningExampleTable1() *eventlog.Log {
	traces := [][]string{
		{RCP, CKC, ACC, PRIO, INF, ARV},                // σ1
		{RCP, CKT, REJ, PRIO, ARV, INF},                // σ2
		{RCP, CKC, ACC, INF, ARV},                      // σ3
		{RCP, CKC, REJ, RCP, CKT, ACC, PRIO, ARV, INF}, // σ4
	}
	return logFromClassSequences("running-example (Table I)", traces, runningExampleRoles)
}

// RunningExampleModel is the process tree behind §II: receive, check
// (casually or thoroughly), manager decision, optional restart on
// rejection, optional priority, then inform/archive in either order.
func RunningExampleModel() *Model {
	specs := make(map[string]ClassSpec)
	for cl, role := range runningExampleRoles {
		specs[cl] = ClassSpec{Role: role, DurMean: 300, CostMean: 25}
	}
	body := S(
		Leaf(RCP),
		X(Leaf(CKC), Leaf(CKT)),
		XW([]float64{0.7, 0.3}, Leaf(ACC), Leaf(REJ)),
	)
	root := S(
		L(0.15, body, Tau()),
		XW([]float64{0.6, 0.4}, Leaf(PRIO), Tau()),
		X(S(Leaf(INF), Leaf(ARV)), S(Leaf(ARV), Leaf(INF))),
	)
	return &Model{Name: "running-example", Root: root, Specs: specs}
}

// RunningExample simulates n traces of the running-example model.
func RunningExample(n int, seed int64) *eventlog.Log {
	return RunningExampleModel().Simulate(n, seed)
}

// logFromClassSequences builds a log with synthetic timestamps (one minute
// apart), unit durations, and the given per-class roles.
func logFromClassSequences(name string, seqs [][]string, roles map[string]string) *eventlog.Log {
	log := &eventlog.Log{Name: name}
	base := time.Date(2021, 6, 1, 8, 0, 0, 0, time.UTC)
	for i, seq := range seqs {
		tr := eventlog.Trace{ID: "sigma" + string(rune('1'+i))}
		for j, cl := range seq {
			ev := eventlog.Event{Class: cl}
			ev.SetAttr(eventlog.AttrTimestamp, eventlog.Time(base.Add(time.Duration(i)*time.Hour+time.Duration(j)*time.Minute)))
			ev.SetAttr(eventlog.AttrDuration, eventlog.Float(60))
			ev.SetAttr(eventlog.AttrCost, eventlog.Float(10))
			if r, ok := roles[cl]; ok {
				ev.SetAttr(eventlog.AttrRole, eventlog.String(r))
			}
			tr.Events = append(tr.Events, ev)
		}
		log.Traces = append(log.Traces, tr)
	}
	return log
}

package procgen

import "gecco/internal/eventlog"

// Loan-application event classes, matching the 24 classes of the BPI-2017
// log used in the §VI-D case study (Figure 1). The prefix encodes the
// origin system: application handling (A), offers (O), workflow (W).
var loanClasses = []string{
	"A_Create Application", "A_Submitted", "A_Concept", "A_Accepted",
	"A_Complete", "A_Validating", "A_Incomplete", "A_Pending",
	"A_Denied", "A_Cancelled",
	"O_Create Offer", "O_Created", "O_Sent (mail and online)",
	"O_Sent (online only)", "O_Returned", "O_Accepted", "O_Refused",
	"O_Cancelled",
	"W_Complete application", "W_Validate application", "W_Handle leads",
	"W_Call incomplete files", "W_Call after offers",
	"W_Assess potential fraud",
}

// LoanModel is a process tree shaped like the loan-application process: an
// application-handling phase, an offer phase with possible returns, a
// validation loop with incomplete-file callbacks, and a final decision,
// with workflow steps interleaved in parallel. It intentionally yields an
// intertwined DFG (the "spaghetti" of Figure 1).
func LoanModel() *Model {
	specs := make(map[string]ClassSpec)
	for i, cl := range loanClasses {
		org := cl[:1] // A, O, or W
		role := "backoffice"
		if org == "W" {
			role = "caseworker"
		}
		specs[cl] = ClassSpec{
			Role:     role,
			Org:      org,
			DurMean:  float64(120 + 60*(i%5)),
			CostMean: float64(10 + 5*(i%7)),
		}
	}
	apply := S(
		Leaf("A_Create Application"),
		XW([]float64{0.65, 0.35}, Leaf("A_Submitted"), Tau()),
		XW([]float64{0.12, 0.88}, Leaf("W_Handle leads"), Tau()),
		Leaf("A_Concept"),
		Leaf("A_Accepted"),
	)
	offer := S(
		L(0.25,
			S(Leaf("O_Create Offer"), Leaf("O_Created"),
				XW([]float64{0.85, 0.15}, Leaf("O_Sent (mail and online)"), Leaf("O_Sent (online only)"))),
			Leaf("O_Cancelled")),
		Leaf("A_Complete"),
	)
	validate := L(0.35,
		S(Leaf("A_Validating"),
			XW([]float64{0.5, 0.3, 0.2},
				Leaf("O_Returned"),
				S(Leaf("A_Incomplete"), Leaf("W_Call incomplete files")),
				Tau())),
		Tau())
	decide := XW([]float64{0.55, 0.12, 0.33},
		S(Leaf("O_Accepted"), Leaf("A_Pending")),
		S(Leaf("O_Refused"), Leaf("A_Denied")),
		S(Leaf("O_Cancelled"), Leaf("A_Cancelled")),
	)
	workflow := S(
		Leaf("W_Complete application"),
		Leaf("W_Validate application"),
		XW([]float64{0.1, 0.9}, Leaf("W_Call after offers"), Tau()),
		XW([]float64{0.05, 0.95}, Leaf("W_Assess potential fraud"), Tau()),
	)
	root := S(apply, P(S(offer, validate, decide), workflow))
	return &Model{Name: "loan-application", Root: root, Specs: specs}
}

// LoanLog simulates the loan-application case-study log.
func LoanLog(n int, seed int64) *eventlog.Log {
	return LoanModel().Simulate(n, seed)
}

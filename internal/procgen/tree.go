// Package procgen synthesises event logs from process-tree models. It is
// the substitution for the paper's 13 public BPI logs (Table III), which are
// not available offline: each evaluation log is generated from a process
// tree whose class count matches the original exactly and whose trace
// length, variant richness and DFG density approximate it (trace counts are
// scaled down to keep the harness laptop-scale). The package also rebuilds
// the running example of §II (Table I) and a loan-application log shaped
// like the §VI-D case study.
package procgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gecco/internal/eventlog"
)

// NodeKind enumerates process-tree operators.
type NodeKind int

const (
	// Act is a leaf activity.
	Act NodeKind = iota
	// Silent is a skip (tau) leaf producing no event.
	Silent
	// Seq executes children in order.
	Seq
	// Xor executes exactly one child, picked by weight.
	Xor
	// And executes all children, interleaved randomly.
	And
	// Loop executes child 0, then with probability LoopProb executes child
	// 1 (the redo part, optional) and child 0 again, repeatedly.
	Loop
)

// Node is a process-tree node.
type Node struct {
	Kind     NodeKind
	Class    string  // Act only
	Children []*Node // operators
	Weights  []float64
	LoopProb float64
	MaxIters int // Loop safety cap; 0 means 8
}

// Leaf returns an activity leaf.
func Leaf(class string) *Node { return &Node{Kind: Act, Class: class} }

// Tau returns a silent leaf.
func Tau() *Node { return &Node{Kind: Silent} }

// S returns a sequence node.
func S(children ...*Node) *Node { return &Node{Kind: Seq, Children: children} }

// X returns an exclusive-choice node with uniform weights.
func X(children ...*Node) *Node { return &Node{Kind: Xor, Children: children} }

// XW returns an exclusive-choice node with explicit weights.
func XW(weights []float64, children ...*Node) *Node {
	return &Node{Kind: Xor, Children: children, Weights: weights}
}

// P returns a parallel (interleaving) node.
func P(children ...*Node) *Node { return &Node{Kind: And, Children: children} }

// L returns a loop node: body, then with probability p redo+body again.
func L(p float64, body, redo *Node) *Node {
	return &Node{Kind: Loop, Children: []*Node{body, redo}, LoopProb: p}
}

// ClassSpec carries per-class attribute generators.
type ClassSpec struct {
	Role     string
	Org      string  // empty = no origin-system attribute on this class
	DurMean  float64 // seconds; sampled uniformly in [0.5, 1.5]·mean
	CostMean float64
	Doc      string // document code attribute, when present
}

// Model is a simulatable process model.
type Model struct {
	Name  string
	Root  *Node
	Specs map[string]ClassSpec
}

// Classes returns the activity classes reachable in the tree (in first-seen
// order).
func (m *Model) Classes() []string {
	var out []string
	seen := map[string]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Kind == Act && !seen[n.Class] {
			seen[n.Class] = true
			out = append(out, n.Class)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(m.Root)
	return out
}

// ExpectedLen returns the analytically expected number of events per trace.
func (m *Model) ExpectedLen() float64 {
	var e func(n *Node) float64
	e = func(n *Node) float64 {
		switch n.Kind {
		case Act:
			return 1
		case Silent:
			return 0
		case Seq, And:
			s := 0.0
			for _, c := range n.Children {
				s += e(c)
			}
			return s
		case Xor:
			ws := n.Weights
			if ws == nil {
				ws = uniformWeights(len(n.Children))
			}
			s, tot := 0.0, 0.0
			for i, c := range n.Children {
				s += ws[i] * e(c)
				tot += ws[i]
			}
			return s / tot
		case Loop:
			p := n.LoopProb
			if p >= 1 {
				p = 0.95
			}
			body := e(n.Children[0])
			redo := 0.0
			if len(n.Children) > 1 && n.Children[1] != nil {
				redo = e(n.Children[1])
			}
			// body (redo body)^k, k geometric with parameter p.
			reps := p / (1 - p)
			return body + reps*(redo+body)
		}
		return 0
	}
	return e(m.Root)
}

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// eventSink receives a simulated log trace by trace, event by event. Both
// eventlog.Builder (for direct columnar-index construction) and the logSink
// below (for the classic *Log) satisfy it, so every output format shares one
// generator and one RNG consumption order.
type eventSink interface {
	StartTrace(id string)
	AddEvent(class string)
	SetEventAttr(name string, v eventlog.Value)
}

// logSink materialises the simulation into a *Log.
type logSink struct{ log *eventlog.Log }

func (s *logSink) StartTrace(id string) {
	s.log.Traces = append(s.log.Traces, eventlog.Trace{ID: id})
}

func (s *logSink) AddEvent(class string) {
	tr := &s.log.Traces[len(s.log.Traces)-1]
	tr.Events = append(tr.Events, eventlog.Event{Class: class})
}

func (s *logSink) SetEventAttr(name string, v eventlog.Value) {
	tr := &s.log.Traces[len(s.log.Traces)-1]
	tr.Events[len(tr.Events)-1].SetAttr(name, v)
}

// Simulate generates numTraces traces with the given seed. Event attributes
// (time, role, org, duration, cost, doc) are drawn from the class specs.
func (m *Model) Simulate(numTraces int, seed int64) *eventlog.Log {
	log := &eventlog.Log{Name: m.Name}
	m.simulateInto(&logSink{log: log}, numTraces, seed)
	return log
}

// SimulateIndex generates the same traces as Simulate (identical RNG
// consumption, hence identical events) but streams them straight into an
// eventlog.Builder, producing the columnar Index without an intermediate
// *Log.
func (m *Model) SimulateIndex(numTraces int, seed int64) *eventlog.Index {
	b := eventlog.NewBuilder()
	b.SetName(m.Name)
	m.simulateInto(b, numTraces, seed)
	return b.Build()
}

func (m *Model) simulateInto(sink eventSink, numTraces int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2021, 6, 1, 8, 0, 0, 0, time.UTC)
	for i := 0; i < numTraces; i++ {
		classes := m.walk(m.Root, rng)
		sink.StartTrace(fmt.Sprintf("case-%d", i))
		t := base.Add(time.Duration(i) * time.Hour)
		for _, cl := range classes {
			sink.AddEvent(cl)
			spec := m.Specs[cl]
			dur := sample(rng, spec.DurMean)
			cost := sample(rng, spec.CostMean)
			t = t.Add(time.Duration(dur * float64(time.Second)))
			sink.SetEventAttr(eventlog.AttrTimestamp, eventlog.Time(t))
			sink.SetEventAttr(eventlog.AttrDuration, eventlog.Float(dur))
			sink.SetEventAttr(eventlog.AttrCost, eventlog.Float(cost))
			if spec.Role != "" {
				sink.SetEventAttr(eventlog.AttrRole, eventlog.String(spec.Role))
			}
			if spec.Org != "" {
				sink.SetEventAttr(eventlog.AttrOrg, eventlog.String(spec.Org))
			}
			if spec.Doc != "" {
				sink.SetEventAttr("doc", eventlog.String(spec.Doc))
			}
		}
	}
}

// sample draws uniformly from [0.5, 1.5]·mean, clamped at a small positive
// floor so durations and costs stay positive.
func sample(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		mean = 1
	}
	v := mean * (0.5 + rng.Float64())
	return math.Max(v, 0.01)
}

// walk executes the tree once, returning the produced class sequence.
func (m *Model) walk(n *Node, rng *rand.Rand) []string {
	switch n.Kind {
	case Act:
		return []string{n.Class}
	case Silent:
		return nil
	case Seq:
		var out []string
		for _, c := range n.Children {
			out = append(out, m.walk(c, rng)...)
		}
		return out
	case Xor:
		ws := n.Weights
		if ws == nil {
			ws = uniformWeights(len(n.Children))
		}
		tot := 0.0
		for _, w := range ws {
			tot += w
		}
		r := rng.Float64() * tot
		for i, w := range ws {
			if r < w || i == len(ws)-1 {
				return m.walk(n.Children[i], rng)
			}
			r -= w
		}
		return nil
	case And:
		// Generate each branch, then merge by random interleaving that
		// preserves each branch's internal order.
		branches := make([][]string, 0, len(n.Children))
		total := 0
		for _, c := range n.Children {
			b := m.walk(c, rng)
			if len(b) > 0 {
				branches = append(branches, b)
				total += len(b)
			}
		}
		out := make([]string, 0, total)
		for total > 0 {
			// Pick a branch proportionally to its remaining length.
			r := rng.Intn(total)
			for bi := range branches {
				if r < len(branches[bi]) {
					out = append(out, branches[bi][0])
					branches[bi] = branches[bi][1:]
					break
				}
				r -= len(branches[bi])
			}
			total--
		}
		return out
	case Loop:
		maxIters := n.MaxIters
		if maxIters == 0 {
			maxIters = 8
		}
		out := m.walk(n.Children[0], rng)
		for iter := 0; iter < maxIters && rng.Float64() < n.LoopProb; iter++ {
			if len(n.Children) > 1 && n.Children[1] != nil {
				out = append(out, m.walk(n.Children[1], rng)...)
			}
			out = append(out, m.walk(n.Children[0], rng)...)
		}
		return out
	}
	return nil
}

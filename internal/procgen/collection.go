package procgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gecco/internal/eventlog"
)

// CollectionSpec describes one evaluation log of Table III, together with
// the paper's reference characteristics and our scaled-down trace count.
type CollectionSpec struct {
	Ref          string // citation tag from Table III
	Classes      int
	Traces       int // traces we simulate (scaled down from the paper)
	Seed         int64
	HasClassAttr bool // carries an "org" class-level attribute (BL3/§VI-D)
	HighDur      bool // all class durations >= 105s, making constraint set M satisfiable

	// Paper's original characteristics, for reporting alongside measured
	// values in the Table III reproduction.
	PaperTraces   int
	PaperVariants int
	PaperEdges    int
	PaperAvgLen   float64
}

// CollectionSpecs returns the 13 evaluation-log specifications in Table III
// order. Trace counts are scaled down (the algorithms' relative behaviour is
// driven by class-level structure; see DESIGN.md). Exactly 4 logs carry a
// class-level attribute, matching the paper's footnote that BL3 applies to
// 4 of the 13 logs; exactly 4 logs have uniformly high durations so that
// the monotonic constraint set M is satisfiable on 4/13 ≈ 0.31 of the
// problems, matching Table V's solved fraction for M.
func CollectionSpecs() []CollectionSpec {
	return []CollectionSpec{
		{Ref: "[14]", Classes: 11, Traces: 1500, Seed: 101, HasClassAttr: true, HighDur: true, PaperTraces: 150370, PaperVariants: 231, PaperEdges: 70, PaperAvgLen: 3.73},
		{Ref: "[15]", Classes: 40, Traces: 800, Seed: 102, PaperTraces: 75928, PaperVariants: 3453, PaperEdges: 357, PaperAvgLen: 6.35},
		{Ref: "[16]", Classes: 39, Traces: 700, Seed: 103, PaperTraces: 46616, PaperVariants: 22632, PaperEdges: 772, PaperAvgLen: 10.01},
		{Ref: "[17]", Classes: 24, Traces: 600, Seed: 104, HasClassAttr: true, PaperTraces: 31509, PaperVariants: 5946, PaperEdges: 180, PaperAvgLen: 16.41},
		{Ref: "[18]", Classes: 39, Traces: 400, Seed: 105, PaperTraces: 14550, PaperVariants: 8627, PaperEdges: 407, PaperAvgLen: 52.48},
		{Ref: "[19]", Classes: 24, Traces: 400, Seed: 106, HighDur: true, PaperTraces: 13087, PaperVariants: 4366, PaperEdges: 125, PaperAvgLen: 20.04},
		{Ref: "[20]", Classes: 8, Traces: 350, Seed: 107, HasClassAttr: true, PaperTraces: 10035, PaperVariants: 1, PaperEdges: 14, PaperAvgLen: 15.00},
		{Ref: "[21]", Classes: 51, Traces: 300, Seed: 108, PaperTraces: 7065, PaperVariants: 1478, PaperEdges: 553, PaperAvgLen: 12.25},
		{Ref: "[22]", Classes: 4, Traces: 300, Seed: 109, HighDur: true, PaperTraces: 1487, PaperVariants: 183, PaperEdges: 10, PaperAvgLen: 4.47},
		{Ref: "[23]", Classes: 27, Traces: 250, Seed: 110, PaperTraces: 1434, PaperVariants: 116, PaperEdges: 99, PaperAvgLen: 5.98},
		{Ref: "[24]", Classes: 16, Traces: 250, Seed: 111, HasClassAttr: true, HighDur: true, PaperTraces: 1050, PaperVariants: 846, PaperEdges: 115, PaperAvgLen: 14.49},
		{Ref: "[25]", Classes: 70, Traces: 200, Seed: 112, PaperTraces: 902, PaperVariants: 295, PaperEdges: 124, PaperAvgLen: 24.00},
		{Ref: "[26]", Classes: 29, Traces: 20, Seed: 113, PaperTraces: 20, PaperVariants: 20, PaperEdges: 164, PaperAvgLen: 69.70},
	}
}

// BuildLog generates the synthetic log for a specification.
func BuildLog(spec CollectionSpec) *eventlog.Log {
	if spec.PaperVariants == 1 {
		return buildSingleVariantLog(spec)
	}
	model := buildModel(spec)
	for attempt := 0; attempt < 5; attempt++ {
		log := model.Simulate(spec.Traces, spec.Seed+int64(attempt)*1000)
		log.Name = fmt.Sprintf("synthetic-%s", spec.Ref)
		if len(log.Classes()) == spec.Classes {
			addNoise(log, spec.Seed^0x9e37)
			return log
		}
	}
	// Rare fallback: some class never got simulated; inject one occurrence
	// of each missing class into deterministic positions so the class
	// universe matches Table III exactly.
	log := model.Simulate(spec.Traces, spec.Seed)
	log.Name = fmt.Sprintf("synthetic-%s", spec.Ref)
	injectMissing(log, model, spec)
	addNoise(log, spec.Seed^0x9e37)
	return log
}

// addNoise perturbs traces the way real logs deviate from their process
// model — occasional adjacent swaps (out-of-order recording) and event
// duplications (retries) — which multiplies the variant count towards
// Table III's richness. Classes are never removed, so the class universe
// is preserved. Deterministic per seed.
func addNoise(log *eventlog.Log, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for t := range log.Traces {
		ev := log.Traces[t].Events
		if len(ev) >= 2 && rng.Float64() < 0.25 {
			i := rng.Intn(len(ev) - 1)
			ev[i], ev[i+1] = ev[i+1], ev[i]
		}
		if len(ev) >= 1 && rng.Float64() < 0.12 {
			i := rng.Intn(len(ev))
			dup := ev[i] // events are read-only downstream, sharing the attr map is fine
			ev = append(ev, eventlog.Event{})
			copy(ev[i+2:], ev[i+1:])
			ev[i+1] = dup
			log.Traces[t].Events = ev
		}
	}
}

// Collection generates all 13 evaluation logs.
func Collection() []*eventlog.Log {
	specs := CollectionSpecs()
	out := make([]*eventlog.Log, len(specs))
	for i, s := range specs {
		out[i] = BuildLog(s)
	}
	return out
}

// classNames yields stable class names for a synthetic log.
func classNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("act_%02d", i)
	}
	return out
}

// specsFor assigns attribute generators: roles cycle over ~n/6 roles,
// durations span 20..600s (so the M constraint bites for some classes) or
// 210..600s for high-duration logs (every sampled duration >= 105s, so
// even singleton instances satisfy sum(duration) >= 101), costs 5..65, and
// an origin system for class-attribute logs.
func specsFor(classes []string, hasOrg, highDur bool) map[string]ClassSpec {
	nRoles := len(classes)/6 + 2
	specs := make(map[string]ClassSpec, len(classes))
	for i, cl := range classes {
		dur := float64(20 + (i*37)%580)
		if highDur {
			dur = float64(210 + (i*37)%390)
		}
		s := ClassSpec{
			Role:     fmt.Sprintf("role_%d", i%nRoles),
			DurMean:  dur,
			CostMean: float64(5 + (i*13)%60),
		}
		if hasOrg {
			s.Org = fmt.Sprintf("sys_%d", i*3/len(classes)) // 3 systems in blocks
		}
		specs[cl] = s
	}
	return specs
}

// buildModel searches a small parameter grid of random process trees for
// the one whose expected trace length best matches the paper's average.
func buildModel(spec CollectionSpec) *Model {
	classes := classNames(spec.Classes)
	specs := specsFor(classes, spec.HasClassAttr, spec.HighDur)
	var best *Model
	bestDiff := math.Inf(1)
	for attempt := 0; attempt < 48; attempt++ {
		rng := rand.New(rand.NewSource(spec.Seed*1_000_003 + int64(attempt)))
		t := float64(attempt%8) / 7 // parameter sweep position
		ratio := spec.PaperAvgLen / float64(spec.Classes)
		var pXor, pAnd, loopP float64
		if ratio < 1 {
			// Shorter traces than classes: favour exclusive choices.
			pXor = 0.25 + 0.5*t
			pAnd = 0.1
			loopP = 0.05 * t
		} else {
			// Longer traces than classes: favour loops.
			pXor = 0.1
			pAnd = 0.15
			loopP = 0.15 + 0.35*t
		}
		root := buildTree(classes, rng, pXor, pAnd, loopP)
		m := &Model{Name: "candidate", Root: root, Specs: specs}
		diff := math.Abs(m.ExpectedLen() - spec.PaperAvgLen)
		if diff < bestDiff {
			bestDiff = diff
			best = m
		}
	}
	return best
}

// buildTree recursively partitions the class list under random operators.
func buildTree(cls []string, rng *rand.Rand, pXor, pAnd, loopP float64) *Node {
	if len(cls) == 1 {
		leaf := Leaf(cls[0])
		if rng.Float64() < loopP*0.5 {
			return L(0.3, leaf, Tau())
		}
		return leaf
	}
	k := 2
	if len(cls) > 4 && rng.Float64() < 0.5 {
		k = 3
	}
	parts := partition(cls, k, rng)
	children := make([]*Node, len(parts))
	for i, p := range parts {
		children[i] = buildTree(p, rng, pXor, pAnd, loopP)
	}
	r := rng.Float64()
	var node *Node
	switch {
	case r < pXor:
		// Mildly skewed weights create frequency variety without starving
		// any branch.
		ws := make([]float64, len(children))
		for i := range ws {
			ws[i] = 0.5 + rng.Float64()
		}
		node = XW(ws, children...)
	case r < pXor+pAnd:
		node = P(children...)
	default:
		node = S(children...)
		if rng.Float64() < loopP {
			node = L(0.25+0.3*rng.Float64(), node, Tau())
		}
	}
	return node
}

// partition splits the class list into k non-empty contiguous chunks of
// random sizes.
func partition(cls []string, k int, rng *rand.Rand) [][]string {
	if k >= len(cls) {
		out := make([][]string, len(cls))
		for i := range cls {
			out[i] = cls[i : i+1]
		}
		return out
	}
	cuts := map[int]bool{}
	for len(cuts) < k-1 {
		cuts[1+rng.Intn(len(cls)-1)] = true
	}
	var out [][]string
	prev := 0
	for i := 1; i <= len(cls); i++ {
		if cuts[i] || i == len(cls) {
			out = append(out, cls[prev:i])
			prev = i
		}
	}
	return out
}

// buildSingleVariantLog emits one fixed 15-event sequence over 8 classes
// for the single-variant log [20].
func buildSingleVariantLog(spec CollectionSpec) *eventlog.Log {
	classes := classNames(spec.Classes)
	specs := specsFor(classes, spec.HasClassAttr, spec.HighDur)
	seqIdx := []int{0, 1, 2, 3, 1, 2, 4, 5, 6, 2, 7, 0, 3, 5, 6}
	seq := make([]*Node, 0, len(seqIdx))
	for _, i := range seqIdx {
		seq = append(seq, Leaf(classes[i%len(classes)]))
	}
	m := &Model{Name: fmt.Sprintf("synthetic-%s", spec.Ref), Root: S(seq...), Specs: specs}
	log := m.Simulate(spec.Traces, spec.Seed)
	log.Name = m.Name
	return log
}

// injectMissing appends one event per missing class to distinct traces so
// that the class universe matches the specification.
func injectMissing(log *eventlog.Log, model *Model, spec CollectionSpec) {
	present := make(map[string]bool)
	for _, c := range log.Classes() {
		present[c] = true
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5f5f))
	for _, cl := range model.Classes() {
		if present[cl] {
			continue
		}
		t := rng.Intn(len(log.Traces))
		tr := &log.Traces[t]
		ev := eventlog.Event{Class: cl}
		cs := model.Specs[cl]
		ev.SetAttr(eventlog.AttrDuration, eventlog.Float(cs.DurMean))
		ev.SetAttr(eventlog.AttrCost, eventlog.Float(cs.CostMean))
		if cs.Role != "" {
			ev.SetAttr(eventlog.AttrRole, eventlog.String(cs.Role))
		}
		if cs.Org != "" {
			ev.SetAttr(eventlog.AttrOrg, eventlog.String(cs.Org))
		}
		if len(tr.Events) > 0 {
			if ts, ok := tr.Events[len(tr.Events)-1].Timestamp(); ok {
				ev.SetAttr(eventlog.AttrTimestamp, eventlog.Time(ts.Add(time.Duration(cs.DurMean*float64(time.Second)))))
			}
		}
		tr.Events = append(tr.Events, ev)
	}
}

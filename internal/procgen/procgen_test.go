package procgen

import (
	"bytes"
	"math"
	"testing"

	"gecco/internal/eventlog"
	"gecco/internal/xes"
)

func TestTable1Exact(t *testing.T) {
	log := RunningExampleTable1()
	if len(log.Traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(log.Traces))
	}
	wantVariants := []string{
		"rcp,ckc,acc,prio,inf,arv",
		"rcp,ckt,rej,prio,arv,inf",
		"rcp,ckc,acc,inf,arv",
		"rcp,ckc,rej,rcp,ckt,acc,prio,arv,inf",
	}
	for i, w := range wantVariants {
		if got := log.Traces[i].Variant(); got != w {
			t.Errorf("σ%d = %q, want %q", i+1, got, w)
		}
	}
	// Role attributes: blue/underlined events are the clerk's.
	for _, tr := range log.Traces {
		for _, ev := range tr.Events {
			role := ev.Attrs[eventlog.AttrRole].Str
			switch ev.Class {
			case ACC, REJ:
				if role != "manager" {
					t.Errorf("%s role = %q, want manager", ev.Class, role)
				}
			default:
				if role != "clerk" {
					t.Errorf("%s role = %q, want clerk", ev.Class, role)
				}
			}
		}
	}
}

func TestRunningExampleModelStats(t *testing.T) {
	log := RunningExample(500, 1)
	st := log.ComputeStats()
	if st.NumClasses != 8 {
		t.Fatalf("classes = %d, want 8", st.NumClasses)
	}
	if st.AvgTraceLen < 4.5 || st.AvgTraceLen > 9 {
		t.Fatalf("avg len = %f, outside plausible range", st.AvgTraceLen)
	}
	// Determinism: same seed, same log.
	again := RunningExample(500, 1)
	for i := range log.Traces {
		if log.Traces[i].Variant() != again.Traces[i].Variant() {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestExpectedLen(t *testing.T) {
	// Seq of 3 leaves: 3. Xor of 2 leaves: 1. Loop p=0.5 around one leaf:
	// 1 + (0.5/0.5)*1 = 2.
	m := &Model{Root: S(Leaf("a"), Leaf("b"), Leaf("c"))}
	if e := m.ExpectedLen(); e != 3 {
		t.Fatalf("seq expected len %f", e)
	}
	m = &Model{Root: X(Leaf("a"), Leaf("b"))}
	if e := m.ExpectedLen(); e != 1 {
		t.Fatalf("xor expected len %f", e)
	}
	m = &Model{Root: L(0.5, Leaf("a"), Tau())}
	if e := m.ExpectedLen(); math.Abs(e-2) > 1e-12 {
		t.Fatalf("loop expected len %f, want 2", e)
	}
}

func TestSimulatedLenTracksExpectation(t *testing.T) {
	m := RunningExampleModel()
	want := m.ExpectedLen()
	log := m.Simulate(3000, 5)
	got := log.AvgTraceLen()
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("simulated avg len %f deviates from expected %f", got, want)
	}
}

func TestLoanLogShape(t *testing.T) {
	log := LoanLog(300, 2)
	st := log.ComputeStats()
	if st.NumClasses != 24 {
		t.Fatalf("classes = %d, want 24 (as in the BPI-2017 case study)", st.NumClasses)
	}
	// Every event carries an origin system A/O/W matching its class prefix.
	for _, tr := range log.Traces {
		for _, ev := range tr.Events {
			org := ev.Attrs[eventlog.AttrOrg].Str
			if org != ev.Class[:1] {
				t.Fatalf("class %q has org %q", ev.Class, org)
			}
		}
	}
	if st.NumVariants < 20 {
		t.Fatalf("variants = %d; loan process should be highly variable", st.NumVariants)
	}
}

func TestCollectionMatchesTable3ClassCounts(t *testing.T) {
	specs := CollectionSpecs()
	if len(specs) != 13 {
		t.Fatalf("specs = %d, want 13", len(specs))
	}
	wantClasses := []int{11, 40, 39, 24, 39, 24, 8, 51, 4, 27, 16, 70, 29}
	hasAttr := 0
	for i, spec := range specs {
		if spec.Classes != wantClasses[i] {
			t.Errorf("spec %d classes = %d, want %d", i, spec.Classes, wantClasses[i])
		}
		if spec.HasClassAttr {
			hasAttr++
		}
	}
	if hasAttr != 4 {
		t.Fatalf("class-attribute logs = %d, want 4 (paper footnote)", hasAttr)
	}
}

func TestCollectionLogsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("collection generation in short mode")
	}
	specs := CollectionSpecs()
	for _, spec := range specs[:6] { // first half keeps the test fast
		log := BuildLog(spec)
		st := log.ComputeStats()
		if st.NumClasses != spec.Classes {
			t.Errorf("%s: classes = %d, want %d", spec.Ref, st.NumClasses, spec.Classes)
		}
		if st.NumTraces != spec.Traces {
			t.Errorf("%s: traces = %d, want %d", spec.Ref, st.NumTraces, spec.Traces)
		}
		// Average length within a factor 2.5 of the paper's (tree search is
		// approximate).
		ratio := st.AvgTraceLen / spec.PaperAvgLen
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: avg len %f vs paper %f (ratio %f)", spec.Ref, st.AvgTraceLen, spec.PaperAvgLen, ratio)
		}
		// Attribute presence.
		ev := &log.Traces[0].Events[0]
		if _, ok := ev.Attrs[eventlog.AttrDuration]; !ok {
			t.Errorf("%s: missing duration attribute", spec.Ref)
		}
		if _, ok := ev.Attrs[eventlog.AttrRole]; !ok {
			t.Errorf("%s: missing role attribute", spec.Ref)
		}
		_, hasOrg := ev.Attrs[eventlog.AttrOrg]
		if hasOrg != spec.HasClassAttr {
			t.Errorf("%s: org presence %v, want %v", spec.Ref, hasOrg, spec.HasClassAttr)
		}
	}
}

func TestSingleVariantLog(t *testing.T) {
	var spec CollectionSpec
	for _, s := range CollectionSpecs() {
		if s.PaperVariants == 1 {
			spec = s
			break
		}
	}
	log := BuildLog(spec)
	st := log.ComputeStats()
	if st.NumVariants != 1 {
		t.Fatalf("variants = %d, want 1", st.NumVariants)
	}
	if st.NumClasses != 8 || math.Abs(st.AvgTraceLen-15) > 1e-9 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAndInterleavingPreservesBranchOrder(t *testing.T) {
	m := &Model{Root: P(S(Leaf("a1"), Leaf("a2")), S(Leaf("b1"), Leaf("b2")))}
	m.Specs = map[string]ClassSpec{}
	log := m.Simulate(200, 9)
	for _, tr := range log.Traces {
		pos := map[string]int{}
		for i, ev := range tr.Events {
			pos[ev.Class] = i
		}
		if pos["a1"] > pos["a2"] || pos["b1"] > pos["b2"] {
			t.Fatalf("branch-internal order violated: %s", tr.Variant())
		}
	}
}

func TestLoopCap(t *testing.T) {
	m := &Model{Root: L(1.0, Leaf("a"), Tau()), Specs: map[string]ClassSpec{}}
	m.Root.MaxIters = 3
	log := m.Simulate(10, 4)
	for _, tr := range log.Traces {
		if len(tr.Events) > 4 { // body + 3 repeats
			t.Fatalf("loop cap exceeded: %d events", len(tr.Events))
		}
	}
}

// Reproducibility: the collection is identical across calls.
func TestCollectionDeterministic(t *testing.T) {
	spec := CollectionSpecs()[0]
	a := BuildLog(spec)
	b := BuildLog(spec)
	if len(a.Traces) != len(b.Traces) {
		t.Fatal("trace counts differ")
	}
	for i := range a.Traces {
		if a.Traces[i].Variant() != b.Traces[i].Variant() {
			t.Fatalf("trace %d differs across builds", i)
		}
	}
}

// Noise injection preserves the class universe and event multiset-modulo-
// duplication (no class ever disappears).
func TestNoisePreservesClasses(t *testing.T) {
	for _, spec := range CollectionSpecs()[:4] {
		log := BuildLog(spec)
		if got := len(log.Classes()); got != spec.Classes {
			t.Fatalf("%s: classes = %d, want %d", spec.Ref, got, spec.Classes)
		}
	}
}

// TestSimulateIndexMatchesSimulate pins the shared-generator contract: the
// Builder-fed SimulateIndex consumes the RNG identically to Simulate, so the
// columnar index reconstructs a log serialising byte-identically to the
// materialised one.
func TestSimulateIndexMatchesSimulate(t *testing.T) {
	m := RunningExampleModel()
	log := m.Simulate(25, 11)
	x := m.SimulateIndex(25, 11)
	if x.Name != log.Name || x.NumTraces() != len(log.Traces) || x.NumEvents() != log.NumEvents() {
		t.Fatalf("shape: %q %d/%d vs %q %d/%d", x.Name, x.NumTraces(), x.NumEvents(),
			log.Name, len(log.Traces), log.NumEvents())
	}
	var fromIndex, fromLog bytes.Buffer
	if err := xes.Write(&fromIndex, x.ReconstructLog()); err != nil {
		t.Fatal(err)
	}
	if err := xes.Write(&fromLog, log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromIndex.Bytes(), fromLog.Bytes()) {
		t.Fatal("SimulateIndex reconstruction differs from Simulate")
	}
}

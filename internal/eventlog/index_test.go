package eventlog

import (
	"fmt"
	"testing"
	"time"
)

func indexedLog() *Index {
	mk := func(classes ...string) Trace {
		tr := Trace{ID: "t"}
		for _, c := range classes {
			tr.Events = append(tr.Events, Event{Class: c})
		}
		return tr
	}
	return NewIndex(&Log{Traces: []Trace{
		mk("a", "b", "c"),
		mk("a", "c"),
		mk("a", "b", "c"),
		mk("d"),
	}})
}

func TestIndexBasics(t *testing.T) {
	x := indexedLog()
	if x.NumClasses() != 4 || x.NumTraces() != 4 {
		t.Fatalf("classes=%d traces=%d", x.NumClasses(), x.NumTraces())
	}
	if x.Classes[x.ClassID["b"]] != "b" {
		t.Fatal("class id mapping broken")
	}
	if x.ClassFreq[x.ClassID["a"]] != 3 {
		t.Fatalf("freq(a) = %d", x.ClassFreq[x.ClassID["a"]])
	}
	if got := x.Classes[x.Seq(0)[1]]; got != "b" {
		t.Fatalf("class of event (0,1) = %q", got)
	}
	if x.NumEvents() != 9 || x.TraceLen(1) != 2 || x.TraceStart(2) != 5 {
		t.Fatalf("arena layout: events=%d len(1)=%d start(2)=%d",
			x.NumEvents(), x.TraceLen(1), x.TraceStart(2))
	}
}

func TestOccursAndCoTraces(t *testing.T) {
	x := indexedLog()
	ab, _ := x.GroupFromNames([]string{"a", "b"})
	if !x.Occurs(ab) {
		t.Error("a and b co-occur")
	}
	if got := x.CoTraces(ab).Len(); got != 2 {
		t.Errorf("CoTraces(a,b) = %d, want 2", got)
	}
	ad, _ := x.GroupFromNames([]string{"a", "d"})
	if x.Occurs(ad) {
		t.Error("a and d never co-occur")
	}
	if !x.CoTraces(ad).IsEmpty() {
		t.Error("CoTraces(a,d) should be empty")
	}
	empty, _ := x.GroupFromNames(nil)
	if x.Occurs(empty) {
		t.Error("empty group cannot occur")
	}
}

func TestAnyTraces(t *testing.T) {
	x := indexedLog()
	bd, _ := x.GroupFromNames([]string{"b", "d"})
	if got := x.AnyTraces(bd).Len(); got != 3 {
		t.Fatalf("AnyTraces(b,d) = %d, want 3", got)
	}
}

func TestGroupNamesRoundTrip(t *testing.T) {
	x := indexedLog()
	g, unknown := x.GroupFromNames([]string{"a", "c", "zzz"})
	if len(unknown) != 1 || unknown[0] != "zzz" {
		t.Fatalf("unknown = %v", unknown)
	}
	names := x.GroupNames(g)
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestClassAttrValues(t *testing.T) {
	log := &Log{Traces: []Trace{{ID: "1", Events: []Event{
		{Class: "a", Attrs: map[string]Value{"role": String("x")}},
		{Class: "a", Attrs: map[string]Value{"role": String("y")}},
		{Class: "b", Attrs: map[string]Value{"role": String("x")}},
		{Class: "c"},
	}}}}
	x := NewIndex(log)
	vals := x.ClassAttrValues("role")
	if len(vals[x.ClassID["a"]]) != 2 {
		t.Errorf("a has %d role values, want 2", len(vals[x.ClassID["a"]]))
	}
	if len(vals[x.ClassID["b"]]) != 1 {
		t.Errorf("b has %d role values, want 1", len(vals[x.ClassID["b"]]))
	}
	if len(vals[x.ClassID["c"]]) != 0 {
		t.Errorf("c has %d role values, want 0", len(vals[x.ClassID["c"]]))
	}
}

func TestVariantCompaction(t *testing.T) {
	x := indexedLog()
	if x.NumVariants() != 3 {
		t.Fatalf("variants = %d, want 3", x.NumVariants())
	}
	// Multiplicities sum to the trace count.
	total := 0
	for _, c := range x.VariantCount {
		total += c
	}
	if total != 4 {
		t.Fatalf("variant counts sum to %d, want 4", total)
	}
	// Trace 0 and trace 2 share a variant; trace 1 does not.
	if x.TraceVariant[0] != x.TraceVariant[2] {
		t.Error("identical traces got different variants")
	}
	if x.TraceVariant[0] == x.TraceVariant[1] {
		t.Error("different traces share a variant")
	}
	// Variant class sets match the sequences.
	for v := 0; v < x.NumVariants(); v++ {
		for _, c := range x.VariantSeq(v) {
			if !x.VariantClasses[v].Contains(int(c)) {
				t.Fatalf("variant %d class set misses class %d", v, c)
			}
		}
	}
}

// TestVariantKeyFullWidth is the regression test for the 16-bit variant-key
// truncation: with more than 65535 classes, two single-event traces whose
// class ids differ only above bit 15 (here 0 and 65536) used to hash to the
// same variant key and were silently merged.
func TestVariantKeyFullWidth(t *testing.T) {
	const numClasses = 1<<16 + 1 // 65537: forces a class id of 65536
	name := func(i int) string { return fmt.Sprintf("c%05d", i) }

	filler := Trace{ID: "filler"} // covers ids 1..65535 so the probes get ids 0 and 65536
	for i := 1; i < numClasses-1; i++ {
		filler.Events = append(filler.Events, Event{Class: name(i)})
	}
	log := &Log{Traces: []Trace{
		{ID: "lo", Events: []Event{{Class: name(0)}}},
		{ID: "hi", Events: []Event{{Class: name(numClasses - 1)}}},
		filler,
	}}
	x := NewIndex(log)
	if x.NumClasses() != numClasses {
		t.Fatalf("classes = %d, want %d", x.NumClasses(), numClasses)
	}
	if got := x.ClassID[name(numClasses-1)]; got != numClasses-1 {
		t.Fatalf("id(%s) = %d, want %d", name(numClasses-1), got, numClasses-1)
	}
	if x.NumVariants() != 3 {
		t.Fatalf("variants = %d, want 3 (lo and hi merged?)", x.NumVariants())
	}
	if x.TraceVariant[0] == x.TraceVariant[1] {
		t.Fatal("traces with class ids 0 and 65536 share a variant")
	}
	if x.VariantCount[x.TraceVariant[0]] != 1 || x.VariantCount[x.TraceVariant[1]] != 1 {
		t.Fatal("probe variants must each have multiplicity 1")
	}
}

// TestColumnMixedKindsAndOverwrite exercises the column store's general
// case: one attribute carrying strings, ints, floats, bools, times, and an
// overwritten value, reconstructed exactly and keyed identically to
// Value.AsString.
func TestColumnMixedKindsAndOverwrite(t *testing.T) {
	ts := time.Date(2022, 3, 4, 5, 6, 7, 0, time.UTC)
	vals := []Value{
		String("x"),
		Int(5),
		Float(2.5),
		Bool(true),
		Time(ts),
		String("x"), // repeated: must reuse the dictionary code
		Bool(false),
	}
	tr := Trace{ID: "t"}
	for _, v := range vals {
		tr.Events = append(tr.Events, Event{Class: "a", Attrs: map[string]Value{"v": v}})
	}
	// One attribute-less event: the column must report absence.
	tr.Events = append(tr.Events, Event{Class: "a"})
	x := NewIndex(&Log{Traces: []Trace{tr}})

	col := x.Column("v")
	if col == nil {
		t.Fatal("column missing")
	}
	if col.StringsOnly() {
		t.Fatal("mixed column must not report StringsOnly")
	}
	for pos, want := range vals {
		got, ok := col.Value(pos)
		if !ok {
			t.Fatalf("pos %d: value absent", pos)
		}
		if got != want {
			t.Fatalf("pos %d: value %+v, want %+v", pos, got, want)
		}
		key, ok := col.Key(pos)
		if !ok || key != want.AsString() {
			t.Fatalf("pos %d: key %q, want %q", pos, key, want.AsString())
		}
	}
	if col.Has(len(vals)) {
		t.Fatal("attribute-less event reported present")
	}
	if col.NumCodes() != 1 {
		t.Fatalf("dictionary has %d codes, want 1 (repeated string)", col.NumCodes())
	}
	c0, _ := col.Code(0)
	c5, _ := col.Code(5)
	if c0 != c5 {
		t.Fatal("repeated string must share its dictionary code")
	}

	// Overwrite semantics: the builder keeps the last value, like a map.
	b := NewBuilder()
	b.StartTrace("t")
	b.AddEvent("a")
	b.SetEventAttr("v", Int(1))
	b.SetEventAttr("v", String("two"))
	x2 := b.Build()
	v, ok := x2.Column("v").Value(0)
	if !ok || v != String("two") {
		t.Fatalf("overwritten attr = %+v, want String(two)", v)
	}
}

// TestBuilderMatchesNewIndex pins the single-construction-path contract:
// streaming a log through the Builder yields the same index NewIndex builds,
// and both reconstruct a log serialising the original's content.
func TestBuilderMatchesNewIndex(t *testing.T) {
	log := &Log{Name: "built", Traces: []Trace{
		{ID: "t1", Events: []Event{
			{Class: "b", Attrs: map[string]Value{"role": String("r1"), "n": Int(1)}},
			{Class: "a", Attrs: map[string]Value{"role": String("r2")}},
		}, Attrs: map[string]Value{"kind": String("gold")}},
		{ID: "t2", Events: []Event{
			{Class: "a", Attrs: map[string]Value{"n": Float(2.5)}},
		}},
	}, Attrs: map[string]Value{"source": String("unit")}}

	b := NewBuilder()
	b.SetName(log.Name)
	b.SetLogAttr("source", String("unit"))
	b.StartTrace("t1")
	b.SetTraceAttr("kind", String("gold"))
	b.AddEvent("b")
	b.SetEventAttr("role", String("r1"))
	b.SetEventAttr("n", Int(1))
	b.AddEvent("a")
	b.SetEventAttr("role", String("r2"))
	b.StartTrace("t2")
	b.AddEvent("a")
	b.SetEventAttr("n", Float(2.5))
	streamed := b.Build()

	indexed := NewIndex(log)
	for _, x := range []*Index{streamed, indexed} {
		if x.Name != "built" || x.NumTraces() != 2 || x.NumEvents() != 3 {
			t.Fatalf("shape: name=%q traces=%d events=%d", x.Name, x.NumTraces(), x.NumEvents())
		}
		// Class ids are sorted by name regardless of first-seen order.
		if x.Classes[0] != "a" || x.Classes[1] != "b" {
			t.Fatalf("classes = %v", x.Classes)
		}
		if x.Seq(0)[0] != 1 || x.Seq(0)[1] != 0 || x.Seq(1)[0] != 0 {
			t.Fatalf("arena = %v %v", x.Seq(0), x.Seq(1))
		}
	}
	// Both reconstruct the same log content.
	a, bb := streamed.ReconstructLog(), indexed.ReconstructLog()
	for _, rec := range []*Log{a, bb} {
		if rec.Name != log.Name || len(rec.Traces) != 2 {
			t.Fatalf("reconstructed shape: %+v", rec)
		}
		if rec.Attrs["source"] != String("unit") || rec.Traces[0].Attrs["kind"] != String("gold") {
			t.Fatal("reconstructed log/trace attrs differ")
		}
		if rec.Traces[0].Events[0].Attrs["n"] != Int(1) || rec.Traces[1].Events[0].Attrs["n"] != Float(2.5) {
			t.Fatal("reconstructed event attrs differ")
		}
	}
	if streamed.EstimatedBytes() <= 0 {
		t.Fatal("EstimatedBytes must be positive")
	}
}

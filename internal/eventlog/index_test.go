package eventlog

import (
	"testing"
)

func indexedLog() *Index {
	mk := func(classes ...string) Trace {
		tr := Trace{ID: "t"}
		for _, c := range classes {
			tr.Events = append(tr.Events, Event{Class: c})
		}
		return tr
	}
	return NewIndex(&Log{Traces: []Trace{
		mk("a", "b", "c"),
		mk("a", "c"),
		mk("a", "b", "c"),
		mk("d"),
	}})
}

func TestIndexBasics(t *testing.T) {
	x := indexedLog()
	if x.NumClasses() != 4 || x.NumTraces() != 4 {
		t.Fatalf("classes=%d traces=%d", x.NumClasses(), x.NumTraces())
	}
	if x.Classes[x.ClassID["b"]] != "b" {
		t.Fatal("class id mapping broken")
	}
	if x.ClassFreq[x.ClassID["a"]] != 3 {
		t.Fatalf("freq(a) = %d", x.ClassFreq[x.ClassID["a"]])
	}
	if got := x.Event(0, 1).Class; got != "b" {
		t.Fatalf("Event(0,1) = %q", got)
	}
}

func TestOccursAndCoTraces(t *testing.T) {
	x := indexedLog()
	ab, _ := x.GroupFromNames([]string{"a", "b"})
	if !x.Occurs(ab) {
		t.Error("a and b co-occur")
	}
	if got := x.CoTraces(ab).Len(); got != 2 {
		t.Errorf("CoTraces(a,b) = %d, want 2", got)
	}
	ad, _ := x.GroupFromNames([]string{"a", "d"})
	if x.Occurs(ad) {
		t.Error("a and d never co-occur")
	}
	if !x.CoTraces(ad).IsEmpty() {
		t.Error("CoTraces(a,d) should be empty")
	}
	empty, _ := x.GroupFromNames(nil)
	if x.Occurs(empty) {
		t.Error("empty group cannot occur")
	}
}

func TestAnyTraces(t *testing.T) {
	x := indexedLog()
	bd, _ := x.GroupFromNames([]string{"b", "d"})
	if got := x.AnyTraces(bd).Len(); got != 3 {
		t.Fatalf("AnyTraces(b,d) = %d, want 3", got)
	}
}

func TestGroupNamesRoundTrip(t *testing.T) {
	x := indexedLog()
	g, unknown := x.GroupFromNames([]string{"a", "c", "zzz"})
	if len(unknown) != 1 || unknown[0] != "zzz" {
		t.Fatalf("unknown = %v", unknown)
	}
	names := x.GroupNames(g)
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestClassAttrValues(t *testing.T) {
	log := &Log{Traces: []Trace{{ID: "1", Events: []Event{
		{Class: "a", Attrs: map[string]Value{"role": String("x")}},
		{Class: "a", Attrs: map[string]Value{"role": String("y")}},
		{Class: "b", Attrs: map[string]Value{"role": String("x")}},
		{Class: "c"},
	}}}}
	x := NewIndex(log)
	vals := x.ClassAttrValues("role")
	if len(vals[x.ClassID["a"]]) != 2 {
		t.Errorf("a has %d role values, want 2", len(vals[x.ClassID["a"]]))
	}
	if len(vals[x.ClassID["b"]]) != 1 {
		t.Errorf("b has %d role values, want 1", len(vals[x.ClassID["b"]]))
	}
	if len(vals[x.ClassID["c"]]) != 0 {
		t.Errorf("c has %d role values, want 0", len(vals[x.ClassID["c"]]))
	}
}

func TestVariantCompaction(t *testing.T) {
	x := indexedLog()
	if len(x.VariantSeqs) != 3 {
		t.Fatalf("variants = %d, want 3", len(x.VariantSeqs))
	}
	// Multiplicities sum to the trace count.
	total := 0
	for _, c := range x.VariantCount {
		total += c
	}
	if total != 4 {
		t.Fatalf("variant counts sum to %d, want 4", total)
	}
	// Trace 0 and trace 2 share a variant; trace 1 does not.
	if x.TraceVariant[0] != x.TraceVariant[2] {
		t.Error("identical traces got different variants")
	}
	if x.TraceVariant[0] == x.TraceVariant[1] {
		t.Error("different traces share a variant")
	}
	// Variant class sets match the sequences.
	for v, seq := range x.VariantSeqs {
		for _, c := range seq {
			if !x.VariantClasses[v].Contains(c) {
				t.Fatalf("variant %d class set misses class %d", v, c)
			}
		}
	}
}

// On-disk index IO: WriteIndex serialises an Index into the versioned,
// segment-table binary format specified in docs/FORMAT.md; OpenIndex and
// ReadIndex bring one back. The format stores every derived structure
// (variant compaction, per-class bitsets, dictionaries), so opening is pure
// IO plus validation — no re-parsing, no re-building. OpenIndex maps the
// file read-only where the platform supports it and leaves the bulk column
// payloads as little-endian byte views into the mapping ("zero-copy" means
// no heap copy; pages still fault in on first touch), while control-flow
// structures (arenas, offsets, bitsets, dictionaries) are always heap-
// materialised for full-speed access. ReadIndex is the pure-Go io.ReaderAt
// fallback and materialises everything.
//
// Decoding never trusts the file: every segment is CRC-checked, every
// allocation is bounded by its segment's length, and a structural
// validation pass guarantees that no accessor can index out of bounds — a
// corrupt or truncated file yields a clean error (ErrBadMagic, ErrVersion,
// or ErrCorrupt), never a panic.

package eventlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"gecco/internal/bitset"
)

// Sentinel errors returned (wrapped) by ReadIndex and OpenIndex.
var (
	ErrBadMagic = errors.New("eventlog: not a gecco index file")
	ErrVersion  = errors.New("eventlog: unsupported index version")
	ErrCorrupt  = errors.New("eventlog: corrupt index file")
)

func corruptf(format string, args ...any) error {
	return errorfWrap(ErrCorrupt, format, args...)
}

func errorfWrap(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%w: %s", sentinel, fmt.Sprintf(format, args...))
}

// metaCountLimit caps the element counts a file header may declare, guarding
// the int casts below on hostile input (real counts are nowhere close).
const metaCountLimit = 1 << 40

// --- encoding ---

// enc is an append-only little-endian byte builder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

// segment is one encoded segment awaiting layout.
type segment struct {
	kind    uint32
	id      uint32
	payload []byte
}

// WriteIndex serialises x to w in the format documented in docs/FORMAT.md.
// The encoding is canonical: the same Index always produces the same bytes
// (attribute maps are written key-sorted, columns name-sorted), and writing
// an Index opened from a file reproduces that file byte for byte.
func WriteIndex(w io.Writer, x *Index) error {
	segs := encodeSegments(x)

	off := headerSize + len(segs)*segEntrySize
	offs := make([]int, len(segs))
	for i := range segs {
		offs[i] = off
		off += len(segs[i].payload)
		off = (off + segAlign - 1) &^ (segAlign - 1)
	}
	fileSize := off

	hdr := &enc{b: make([]byte, 0, headerSize+len(segs)*segEntrySize)}
	hdr.b = append(hdr.b, IndexMagic...)
	hdr.u32(IndexVersion)
	hdr.u32(0) // flags
	hdr.u32(uint32(len(segs)))
	hdr.u32(0) // reserved
	hdr.u64(uint64(headerSize))
	hdr.u64(uint64(fileSize))
	for i := range segs {
		s := &segs[i]
		hdr.u32(s.kind)
		hdr.u32(s.id)
		hdr.u64(uint64(offs[i]))
		hdr.u64(uint64(len(s.payload)))
		hdr.u32(crc32.ChecksumIEEE(s.payload))
		hdr.u32(0) // pad
	}
	if _, err := w.Write(hdr.b); err != nil {
		return err
	}
	var pad [segAlign]byte
	for i := range segs {
		if _, err := w.Write(segs[i].payload); err != nil {
			return err
		}
		end := offs[i] + len(segs[i].payload)
		next := fileSize
		if i+1 < len(segs) {
			next = offs[i+1]
		}
		if n := next - end; n > 0 {
			if _, err := w.Write(pad[:n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteIndexFile writes x to path atomically: the bytes land in a temp file
// in the same directory, are fsynced, and are renamed into place, so a
// concurrent OpenIndex sees either the old complete file or the new one,
// never a torn write.
func WriteIndexFile(path string, x *Index) error {
	dir, base := splitPath(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := WriteIndex(f, x); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// splitPath is a minimal Dir/Base split (avoids importing path/filepath for
// one call site; "." for a bare filename keeps CreateTemp in the cwd).
func splitPath(path string) (dir, base string) {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1], path[i+1:]
		}
	}
	return ".", path
}

func encodeSegments(x *Index) []segment {
	var segs []segment
	add := func(kind, id uint32, payload []byte) {
		segs = append(segs, segment{kind: kind, id: id, payload: payload})
	}

	meta := &enc{}
	meta.str(x.Name)
	meta.u64(uint64(x.NumTraces()))
	meta.u64(uint64(x.NumEvents()))
	meta.u64(uint64(x.NumClasses()))
	meta.u64(uint64(x.NumVariants()))
	meta.u64(uint64(len(x.cols)))
	add(segMeta, 0, meta.b)

	add(segClasses, 0, encodeStringTable(x.Classes))
	add(segClassTraces, 0, encodeBitsetList(x.ClassTraces))
	add(segClassFreq, 0, encodeU64Ints(x.ClassFreq))
	add(segArena, 0, encodeU32s(x.arena))
	add(segTraceOff, 0, encodeU64Ints(x.traceOff))
	add(segTraceIDs, 0, encodeStringTable(x.traceIDs))
	add(segTraceVariant, 0, encodeU32Ints(x.TraceVariant))
	add(segVariantCount, 0, encodeU64Ints(x.VariantCount))
	add(segVariantArena, 0, encodeU32s(x.variantArena))
	add(segVariantOff, 0, encodeU64Ints(x.variantOff))
	add(segVariantClasses, 0, encodeBitsetList(x.VariantClasses))
	add(segLogAttrs, 0, encodeAttrMap(x.logAttrs))
	add(segTraceAttrs, 0, encodeAttrMaps(x.traceAttrs))

	// Columns are written sorted by attribute name so the encoding does not
	// depend on builder insertion order (which follows map iteration in
	// NewIndex). The sort works on an index permutation: x is immutable and
	// may be read concurrently.
	order := make([]int, len(x.cols))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return x.cols[order[a]].name < x.cols[order[b]].name })
	for i, ci := range order {
		c := x.cols[ci]
		id := uint32(i)
		cm := &enc{}
		cm.str(c.name)
		cm.u8(uint8(c.kind))
		cm.u8(0)
		cm.u8(0)
		cm.u8(0)
		add(segColMeta, id, cm.b)
		add(segColPresent, id, encodeWords(c.present.Words()))
		if p := colKindsPayload(c); len(p) > 0 {
			add(segColKinds, id, p)
		}
		if p := colCodesPayload(c); len(p) > 0 {
			add(segColCodes, id, p)
		}
		if len(c.dict) > 0 {
			add(segColDict, id, encodeStringTable(c.dict))
		}
		if p := colNumsPayload(c); len(p) > 0 {
			add(segColNums, id, p)
		}
		if p := colTimesPayload(c); len(p) > 0 {
			add(segColTimes, id, p)
		}
		if w := c.bools.Words(); len(w) > 0 {
			add(segColBools, id, encodeWords(w))
		}
	}
	return segs
}

func encodeStringTable(ss []string) []byte {
	e := &enc{}
	e.u32(uint32(len(ss)))
	off := uint32(0)
	e.u32(0)
	for _, s := range ss {
		off += uint32(len(s))
		e.u32(off)
	}
	for _, s := range ss {
		e.b = append(e.b, s...)
	}
	return e.b
}

func encodeWords(ws []uint64) []byte {
	e := &enc{b: make([]byte, 0, len(ws)*8)}
	for _, w := range ws {
		e.u64(w)
	}
	return e.b
}

func encodeBitsetList(sets []bitset.Set) []byte {
	e := &enc{}
	e.u32(uint32(len(sets)))
	for _, s := range sets {
		ws := s.Words()
		e.u32(uint32(len(ws)))
		for _, w := range ws {
			e.u64(w)
		}
	}
	return e.b
}

func encodeU64Ints(vs []int) []byte {
	e := &enc{b: make([]byte, 0, len(vs)*8)}
	for _, v := range vs {
		e.u64(uint64(v))
	}
	return e.b
}

func encodeU32Ints(vs []int) []byte {
	e := &enc{b: make([]byte, 0, len(vs)*4)}
	for _, v := range vs {
		e.u32(uint32(v))
	}
	return e.b
}

func encodeU32s(vs []uint32) []byte {
	e := &enc{b: make([]byte, 0, len(vs)*4)}
	for _, v := range vs {
		e.u32(v)
	}
	return e.b
}

func encodeAttrMap(m map[string]Value) []byte {
	e := &enc{}
	appendAttrMap(e, m)
	return e.b
}

func encodeAttrMaps(ms []map[string]Value) []byte {
	e := &enc{}
	for _, m := range ms {
		appendAttrMap(e, m)
	}
	return e.b
}

func appendAttrMap(e *enc, m map[string]Value) {
	if m == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.str(k)
		appendValue(e, m[k])
	}
}

func appendValue(e *enc, v Value) {
	e.u8(uint8(v.Kind))
	switch v.Kind {
	case KindString:
		e.str(v.Str)
	case KindFloat, KindInt:
		e.u64(math.Float64bits(v.Num))
	case KindTime:
		appendTime(e, v.Time)
	case KindBool:
		if v.Bool {
			e.u8(1)
		} else {
			e.u8(0)
		}
	}
}

// appendTime encodes a timestamp as its 16-byte record: unix seconds (i64),
// nanoseconds (u32), and the fixed zone offset in seconds east of UTC (i32).
// That triple determines both the instant and its RFC3339 rendering, so the
// round-trip is byte-identical through the XES writer; zone names are
// deliberately dropped.
func appendTime(e *enc, t time.Time) {
	e.u64(uint64(t.Unix()))
	e.u32(uint32(t.Nanosecond()))
	_, off := t.Zone()
	e.u32(uint32(int32(off)))
}

func colKindsPayload(c *Column) []byte {
	if c.kindsB != nil {
		return c.kindsB
	}
	return c.kinds
}

func colCodesPayload(c *Column) []byte {
	if c.codesB != nil {
		return c.codesB
	}
	return encodeU32s(c.codes)
}

func colNumsPayload(c *Column) []byte {
	if c.numsB != nil {
		return c.numsB
	}
	e := &enc{b: make([]byte, 0, len(c.nums)*8)}
	for _, v := range c.nums {
		e.u64(math.Float64bits(v))
	}
	return e.b
}

func colTimesPayload(c *Column) []byte {
	if c.timesB != nil {
		return c.timesB
	}
	e := &enc{b: make([]byte, 0, len(c.times)*16)}
	for _, t := range c.times {
		appendTime(e, t)
	}
	return e.b
}

package eventlog

// On-disk index format constants. The authoritative byte-level specification
// lives in docs/FORMAT.md; TestFormatDocMatchesCode cross-checks the
// constants documented there against this file, so the two cannot drift
// silently. Change a constant here and the spec (and, for layout changes,
// IndexVersion) must change with it.

// IndexMagic is the 8-byte ASCII magic at offset 0 of every index file.
const IndexMagic = "GECCOIDX"

// IndexVersion is the format version this implementation writes and the only
// version it reads. Readers must reject any other version with a clean error
// (never attempt a best-effort parse); compatibility policy is spelled out
// in docs/FORMAT.md.
const IndexVersion = 1

const (
	// headerSize is the fixed byte length of the file header.
	headerSize = 40
	// segEntrySize is the byte length of one segment-table entry.
	segEntrySize = 32
	// segAlign is the alignment of every segment payload's file offset.
	segAlign = 8
)

// Segment kinds. Kinds 1–19 are whole-index segments (id field is 0); kinds
// 20–39 are per-column segments (id field is the column index). Values are
// part of the wire format: never renumber, only append.
const (
	segMeta           uint32 = 1  // log name + element counts
	segClasses        uint32 = 2  // string table: class names, sorted
	segClassTraces    uint32 = 3  // bitset list: per class, traces containing it
	segClassFreq      uint32 = 4  // u64 array: per class, total event count
	segArena          uint32 = 5  // u32 array: class id per event, trace-major
	segTraceOff       uint32 = 6  // u64 array: per-trace arena offsets (+1 sentinel)
	segTraceIDs       uint32 = 7  // string table: trace identifiers
	segTraceVariant   uint32 = 8  // u32 array: per trace, its variant id
	segVariantCount   uint32 = 9  // u64 array: per variant, trace multiplicity
	segVariantArena   uint32 = 10 // u32 array: class id per variant event
	segVariantOff     uint32 = 11 // u64 array: per-variant arena offsets (+1 sentinel)
	segVariantClasses uint32 = 12 // bitset list: per variant, classes occurring in it
	segLogAttrs       uint32 = 13 // attribute map: log-level attributes
	segTraceAttrs     uint32 = 14 // attribute map list: per-trace attributes

	segColMeta    uint32 = 20 // attribute name + uniform kind
	segColPresent uint32 = 21 // bitset words: positions carrying the attribute
	segColKinds   uint32 = 22 // u8 array: per-position kind (mixed columns only)
	segColCodes   uint32 = 23 // u32 array: dictionary codes (string payloads)
	segColDict    uint32 = 24 // string table: the dictionary
	segColNums    uint32 = 25 // f64 array: numeric payloads (float and int kinds)
	segColTimes   uint32 = 26 // 16-byte records: sec i64, nsec u32, zone-offset i32
	segColBools   uint32 = 27 // bitset words: true positions of bool payloads
)

// segmentKindNames maps each segment kind to the name used in docs/FORMAT.md;
// the format doc test asserts the table there matches this map exactly.
var segmentKindNames = map[uint32]string{
	segMeta:           "meta",
	segClasses:        "classes",
	segClassTraces:    "class-traces",
	segClassFreq:      "class-freq",
	segArena:          "arena",
	segTraceOff:       "trace-off",
	segTraceIDs:       "trace-ids",
	segTraceVariant:   "trace-variant",
	segVariantCount:   "variant-count",
	segVariantArena:   "variant-arena",
	segVariantOff:     "variant-off",
	segVariantClasses: "variant-classes",
	segLogAttrs:       "log-attrs",
	segTraceAttrs:     "trace-attrs",
	segColMeta:        "col-meta",
	segColPresent:     "col-present",
	segColKinds:       "col-kinds",
	segColCodes:       "col-codes",
	segColDict:        "col-dict",
	segColNums:        "col-nums",
	segColTimes:       "col-times",
	segColBools:       "col-bools",
}

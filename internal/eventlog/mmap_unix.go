//go:build unix

package eventlog

import (
	"os"
	"runtime"
	"syscall"
)

// mapping is a read-only memory mapping of an index file. A finalizer backs
// the explicit close so an Index whose owner forgot (or raced eviction with
// an in-flight solve) never leaves views pointing at unmapped pages: as long
// as any decoded slice aliases data, the Index referencing it keeps the
// mapping reachable, and the GC only unmaps once nothing does.
type mapping struct {
	data []byte
}

// mmapFile maps the first size bytes of f read-only. The file descriptor can
// be closed by the caller immediately afterwards; the mapping survives it.
func mmapFile(f *os.File, size int64) (*mapping, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	m := &mapping{data: data}
	runtime.SetFinalizer(m, func(m *mapping) { m.close() })
	return m, nil
}

// close unmaps the region. Safe to call more than once.
func (m *mapping) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	runtime.SetFinalizer(m, nil)
	return syscall.Munmap(data)
}

package eventlog

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestFormatSpecMatchesCode cross-checks docs/FORMAT.md against the
// constants the implementation actually uses: magic, version, header and
// table-entry sizes, alignment, and the full segment-kind table (numbers
// and names both ways). The spec promises it is precise enough to
// reimplement from; this test keeps that promise from rotting.
func TestFormatSpecMatchesCode(t *testing.T) {
	data, err := os.ReadFile("../../docs/FORMAT.md")
	if err != nil {
		t.Fatalf("the format spec must ship with the format: %v", err)
	}
	doc := string(data)

	for _, want := range []string{
		IndexMagic, // "GECCOIDX"
		fmt.Sprintf("currently `%d`", IndexVersion),
		fmt.Sprintf("header          (%d bytes)", headerSize),
		fmt.Sprintf("(%d bytes per entry)", segEntrySize),
		fmt.Sprintf("%d-byte aligned", segAlign),
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("spec does not state %q", want)
		}
	}

	// Collect every `| <kind> | <name> |`-leading table row of the two
	// segment-kind tables.
	rowRE := regexp.MustCompile(`(?m)^\|\s*(\d+)\s\|\s([a-z][a-z-]*)\s+\|`)
	documented := make(map[uint32]string)
	for _, m := range rowRE.FindAllStringSubmatch(doc, -1) {
		kind, err := strconv.ParseUint(m[1], 10, 32)
		if err != nil {
			t.Fatalf("unparseable kind in spec row %q: %v", m[0], err)
		}
		if prev, dup := documented[uint32(kind)]; dup {
			t.Errorf("spec documents kind %d twice (%q and %q)", kind, prev, m[2])
		}
		documented[uint32(kind)] = m[2]
	}

	for kind, name := range segmentKindNames {
		docName, ok := documented[kind]
		if !ok {
			t.Errorf("segment kind %d (%q) exists in code but not in the spec", kind, name)
			continue
		}
		if docName != name {
			t.Errorf("segment kind %d: code names it %q, spec names it %q", kind, name, docName)
		}
	}
	for kind, name := range documented {
		if _, ok := segmentKindNames[kind]; !ok {
			t.Errorf("spec documents segment kind %d (%q) that the code does not define", kind, name)
		}
	}
}

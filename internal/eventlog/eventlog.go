// Package eventlog defines the event model of GECCO (§III-A of the paper)
// and the columnar store every inner loop operates on.
//
// The model: events with a class and typed context attributes, traces as
// event sequences, and logs as collections of traces. The Log/Trace/Event
// types remain the public construction and round-tripping API.
//
// The store: an Index interns event classes as dense integers in a flat
// trace-major arena, interns attribute names, and keeps attribute values
// in per-attribute Columns — typed arrays gated by presence bitsets, with
// dictionary-encoded strings — so candidate computation, constraint
// checking, and the Eq. 1 distance never touch a map[string]Value per
// event. An Index is self-contained (log name, trace ids, trace/log
// attributes, ReconstructLog), letting long-lived holders release the
// original log.
//
// Construction and persistence:
//
//   - NewIndex builds an Index from a Log; Builder streams one directly
//     from a loader (xes.ReadIndex, csvlog.ReadIndex) with no intermediate
//     Log.
//   - WriteIndex / WriteIndexFile serialise an Index to the versioned,
//     checksummed binary format specified in docs/FORMAT.md; the encoding
//     is canonical (one index, one byte representation).
//   - OpenIndex brings a file back as pure IO — every derived structure is
//     stored, nothing is re-parsed or re-built. On Unix the file is mapped
//     read-only and bulk column payloads are decoded per access straight
//     from the mapping (no unsafe, no heap copy); ReadIndex is the
//     portable io.ReaderAt fallback that materialises everything. Both
//     paths yield indexes whose reads, and whose re-encodings, are
//     byte-identical to the original.
package eventlog

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the types an attribute value can take.
type Kind int

const (
	KindNone Kind = iota
	KindString
	KindFloat
	KindInt
	KindTime
	KindBool
)

// Value is a typed attribute value. Exactly one of the payload fields is
// meaningful depending on Kind.
type Value struct {
	Kind Kind
	Str  string
	Num  float64 // used for KindFloat and KindInt (integral value)
	Time time.Time
	Bool bool
}

// String builds a string value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Float builds a float value.
func Float(f float64) Value { return Value{Kind: KindFloat, Num: f} }

// Int builds an integer value (stored as float64 payload).
func Int(i int64) Value { return Value{Kind: KindInt, Num: float64(i)} }

// Time builds a timestamp value.
func Time(t time.Time) Value { return Value{Kind: KindTime, Time: t} }

// Bool builds a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// IsNumeric reports whether the value carries a number.
func (v Value) IsNumeric() bool { return v.Kind == KindFloat || v.Kind == KindInt }

// AsString renders the value for use as a categorical key (silently lossy
// for floats, which use the shortest round-trippable decimal form —
// strconv.FormatFloat 'g'/-1, the same text fmt's %g would print, without
// the reflection and interface boxing of Sprintf: this sits on the hot
// categorical-attribute path inside constraint evaluation).
//
// Integer values are rendered in plain decimal via FormatInt: the 'g' form
// switches to exponent notation at 1e21, which would render distinct large
// integers identically (and differently from their decimal wire form),
// splitting and colliding categorical keys. Values whose float64 payload
// falls outside the int64 range cannot be printed digit-exactly anyway and
// keep the float rendering.
func (v Value) AsString() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindInt:
		if v.Num >= -9.223372036854775808e18 && v.Num < 9.223372036854775808e18 {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindFloat:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindTime:
		return v.Time.Format(time.RFC3339)
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	}
	return ""
}

// Event is a single recorded process step. Class is the event class (the
// paper's e.C); Attrs holds the context attributes (e.D).
type Event struct {
	Class string
	Attrs map[string]Value
}

// Attr returns the value of the named attribute and whether it is present.
func (e *Event) Attr(name string) (Value, bool) {
	v, ok := e.Attrs[name]
	return v, ok
}

// SetAttr sets an attribute, allocating the map if needed.
func (e *Event) SetAttr(name string, v Value) {
	if e.Attrs == nil {
		e.Attrs = make(map[string]Value, 4)
	}
	e.Attrs[name] = v
}

// Timestamp returns the event's "time" attribute, if any.
func (e *Event) Timestamp() (time.Time, bool) {
	v, ok := e.Attrs[AttrTimestamp]
	if !ok || v.Kind != KindTime {
		return time.Time{}, false
	}
	return v.Time, true
}

// Well-known attribute names used across the repository. Logs are free to
// carry arbitrary additional attributes.
const (
	AttrTimestamp = "time"      // event completion timestamp
	AttrRole      = "role"      // executing role (clerk, manager, ...)
	AttrOrg       = "org"       // origin system (case study §VI-D)
	AttrDuration  = "duration"  // event duration in seconds
	AttrCost      = "cost"      // event cost
	AttrLifecycle = "lifecycle" // XES lifecycle:transition (start/complete)
)

// Trace is a single process execution: an ordered sequence of events.
// Attrs holds trace-level context attributes (beyond the identifying
// concept:name, which is ID); abstraction never consults them, but they
// round-trip through the XES reader/writer.
type Trace struct {
	ID     string
	Events []Event
	Attrs  map[string]Value
}

// SetAttr sets a trace-level attribute, allocating the map if needed.
func (t *Trace) SetAttr(name string, v Value) {
	if t.Attrs == nil {
		t.Attrs = make(map[string]Value, 4)
	}
	t.Attrs[name] = v
}

// Variant returns the trace's class sequence joined by ",", identifying its
// control-flow variant.
func (t *Trace) Variant() string {
	var b strings.Builder
	for i := range t.Events {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Events[i].Class)
	}
	return b.String()
}

// Log is an event log: a named collection of traces. Attrs holds log-level
// attributes (beyond concept:name, which is Name); like trace attributes
// they are carried for round-tripping, not consulted by abstraction.
type Log struct {
	Name   string
	Traces []Trace
	Attrs  map[string]Value
}

// SetAttr sets a log-level attribute, allocating the map if needed.
func (l *Log) SetAttr(name string, v Value) {
	if l.Attrs == nil {
		l.Attrs = make(map[string]Value, 4)
	}
	l.Attrs[name] = v
}

// NumEvents returns the total number of events across all traces.
func (l *Log) NumEvents() int {
	n := 0
	for i := range l.Traces {
		n += len(l.Traces[i].Events)
	}
	return n
}

// AvgTraceLen returns the mean number of events per trace.
func (l *Log) AvgTraceLen() float64 {
	if len(l.Traces) == 0 {
		return 0
	}
	return float64(l.NumEvents()) / float64(len(l.Traces))
}

// Classes returns the distinct event classes of the log in sorted order.
func (l *Log) Classes() []string {
	seen := make(map[string]struct{})
	for i := range l.Traces {
		for j := range l.Traces[i].Events {
			seen[l.Traces[i].Events[j].Class] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Variants returns the distinct control-flow variants with their trace
// counts.
func (l *Log) Variants() map[string]int {
	out := make(map[string]int)
	for i := range l.Traces {
		out[l.Traces[i].Variant()]++
	}
	return out
}

// Stats summarises a log in the shape of Table III of the paper.
type Stats struct {
	Name        string
	NumClasses  int
	NumTraces   int
	NumVariants int
	NumDFGEdges int
	AvgTraceLen float64
}

// ComputeStats derives the Table III row for the log. The DFG edge count is
// computed from the directly-follows relation (§III-A).
func (l *Log) ComputeStats() Stats {
	edges := make(map[[2]string]struct{})
	for i := range l.Traces {
		ev := l.Traces[i].Events
		for j := 0; j+1 < len(ev); j++ {
			edges[[2]string{ev[j].Class, ev[j+1].Class}] = struct{}{}
		}
	}
	return Stats{
		Name:        l.Name,
		NumClasses:  len(l.Classes()),
		NumTraces:   len(l.Traces),
		NumVariants: len(l.Variants()),
		NumDFGEdges: len(edges),
		AvgTraceLen: l.AvgTraceLen(),
	}
}

// Clone returns a deep copy of the log (events and all attribute maps —
// event-, trace-, and log-level — included).
func (l *Log) Clone() *Log {
	out := &Log{Name: l.Name, Traces: make([]Trace, len(l.Traces)), Attrs: cloneAttrs(l.Attrs)}
	for i := range l.Traces {
		src := &l.Traces[i]
		dst := Trace{ID: src.ID, Events: make([]Event, len(src.Events)), Attrs: cloneAttrs(src.Attrs)}
		for j := range src.Events {
			e := src.Events[j]
			e.Attrs = cloneAttrs(e.Attrs)
			dst.Events[j] = e
		}
		out.Traces[i] = dst
	}
	return out
}

func cloneAttrs(m map[string]Value) map[string]Value {
	if m == nil {
		return nil
	}
	out := make(map[string]Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

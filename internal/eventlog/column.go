package eventlog

import (
	"encoding/binary"
	"math"
	"strconv"
	"time"

	"gecco/internal/bitset"
)

// Column is the columnar store of one attribute across every event of an
// indexed log, addressed by global event position (trace-major, the same
// numbering as the class-id arena). Values are held in typed arrays gated by
// a presence bitset; string values are dictionary-encoded so categorical
// reads compare small integer codes instead of hashing strings. Columns are
// immutable after Build and safe for concurrent reads.
//
// A column built in memory holds its payloads in the typed slices (codes,
// nums, times, kinds). A column opened from an index file via OpenIndex may
// instead hold the raw little-endian payload bytes straight out of the
// mapped file (codesB, numsB, timesB, kindsB); the accessors decode on the
// fly, so consumers never see the difference. Exactly one representation is
// populated per payload.
type Column struct {
	name    string
	present bitset.Set // global positions carrying the attribute

	// kind is the column's uniform value kind; KindNone marks a mixed-kind
	// column, in which case kinds holds the per-event kind. Uniform columns
	// (the overwhelmingly common case) pay no per-event kind byte.
	kind   Kind
	kinds  []uint8
	kindsB []byte // mapped alternative to kinds (same layout: one byte/pos)

	// codes/dict hold dictionary-encoded strings; nums carries both
	// KindFloat and KindInt payloads (which of the two a position holds is
	// answered by kind/kinds, since any mix forces the mixed-kind path).
	codes []uint32
	dict  []string
	nums  []float64
	times []time.Time
	bools bitset.Set

	// Mapped payload alternatives: raw little-endian bytes backed by the
	// index file's mapping. codesB holds u32 codes, numsB f64 bits, timesB
	// 16-byte (sec i64, nsec u32, zone-offset i32) records.
	codesB []byte
	numsB  []byte
	timesB []byte

	// timeLocs interns the fixed-offset zones occurring in timesB. It is
	// fully populated at decode time and read-only afterwards, so concurrent
	// timeAt calls never mutate shared state.
	timeLocs map[int32]*time.Location
}

// Name returns the attribute name the column stores.
func (c *Column) Name() string { return c.name }

// Has reports whether the event at global position pos carries the attribute.
func (c *Column) Has(pos int) bool { return c.present.Contains(pos) }

// KindAt returns the value kind at pos, or KindNone when absent. (A present
// KindNone value — a zero Value stored as an attribute — is reported as
// absent here but still reconstructed by Value.)
func (c *Column) KindAt(pos int) Kind {
	if !c.present.Contains(pos) {
		return KindNone
	}
	return c.kindAt(pos)
}

// kindAt returns the stored kind assuming pos is present.
//
//gecco:hotpath
func (c *Column) kindAt(pos int) Kind {
	if c.kinds != nil {
		return Kind(c.kinds[pos])
	}
	if c.kindsB != nil {
		return Kind(c.kindsB[pos])
	}
	return c.kind
}

// mixed reports whether the column stores per-event kinds (any kind mix
// forces that path); uniform columns answer every kindAt from c.kind.
func (c *Column) mixed() bool { return c.kinds != nil || c.kindsB != nil }

// codeAt returns the dictionary code stored at pos, assuming pos holds a
// string value, decoding from the mapped bytes when the column is file-backed.
//
//gecco:hotpath
func (c *Column) codeAt(pos int) uint32 {
	if c.codes != nil {
		return c.codes[pos]
	}
	return binary.LittleEndian.Uint32(c.codesB[pos*4:])
}

// numAt returns the numeric payload stored at pos, assuming pos holds a
// KindFloat/KindInt value.
//
//gecco:hotpath
func (c *Column) numAt(pos int) float64 {
	if c.nums != nil {
		return c.nums[pos]
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(c.numsB[pos*8:]))
}

// timeAt returns the timestamp stored at pos, assuming pos holds a KindTime
// value. File-backed columns reconstruct the time from its (sec, nsec,
// zone-offset) record; the fixed-offset location is interned per column.
func (c *Column) timeAt(pos int) time.Time {
	if c.times != nil {
		return c.times[pos]
	}
	b := c.timesB[pos*16:]
	sec := int64(binary.LittleEndian.Uint64(b))
	nsec := binary.LittleEndian.Uint32(b[8:])
	off := int32(binary.LittleEndian.Uint32(b[12:]))
	return time.Unix(sec, int64(nsec)).In(c.timeLoc(off))
}

// timeLoc returns the interned fixed-offset location for a zone offset in
// seconds east of UTC. Offset 0 maps to time.UTC: RFC3339 renders any
// zero-offset zone as "Z", so the round-trip stays byte-identical. The
// intern map is built at decode time; the fallback only fires on offsets a
// decode-validated file cannot contain.
func (c *Column) timeLoc(off int32) *time.Location {
	if off == 0 {
		return time.UTC
	}
	if loc, ok := c.timeLocs[off]; ok {
		return loc
	}
	return time.FixedZone("", int(off))
}

// StringsOnly reports whether every value in the column is a string, in
// which case dictionary codes are a bijection onto the distinct AsString
// keys and categorical reads can work on codes alone.
func (c *Column) StringsOnly() bool { return c.kind == KindString && !c.mixed() }

// NumCodes returns the size of the string dictionary.
func (c *Column) NumCodes() int { return len(c.dict) }

// CodeString returns the string value of a dictionary code.
func (c *Column) CodeString(code uint32) string { return c.dict[code] }

// Code returns the dictionary code of the string value at pos; ok is false
// when the attribute is absent or not string-valued there.
func (c *Column) Code(pos int) (uint32, bool) {
	if !c.present.Contains(pos) || c.kindAt(pos) != KindString {
		return 0, false
	}
	return c.codeAt(pos), true
}

// Num returns the numeric payload at pos; ok is false when the attribute is
// absent or not numeric (KindFloat/KindInt) there.
func (c *Column) Num(pos int) (float64, bool) {
	if !c.present.Contains(pos) {
		return 0, false
	}
	switch c.kindAt(pos) {
	case KindFloat, KindInt:
		return c.numAt(pos), true
	}
	return 0, false
}

// Time returns the timestamp at pos; ok is false when the attribute is
// absent or not time-valued there.
func (c *Column) Time(pos int) (time.Time, bool) {
	if !c.present.Contains(pos) || c.kindAt(pos) != KindTime {
		return time.Time{}, false
	}
	return c.timeAt(pos), true
}

// Value reconstructs the typed attribute value at pos, exactly as the
// original Event.Attrs map held it.
func (c *Column) Value(pos int) (Value, bool) {
	if !c.present.Contains(pos) {
		return Value{}, false
	}
	switch c.kindAt(pos) {
	case KindString:
		return Value{Kind: KindString, Str: c.dict[c.codeAt(pos)]}, true
	case KindFloat:
		return Value{Kind: KindFloat, Num: c.numAt(pos)}, true
	case KindInt:
		return Value{Kind: KindInt, Num: c.numAt(pos)}, true
	case KindTime:
		return Value{Kind: KindTime, Time: c.timeAt(pos)}, true
	case KindBool:
		return Value{Kind: KindBool, Bool: c.bools.Contains(pos)}, true
	}
	return Value{}, true // a stored zero Value
}

// Key returns the categorical key of the value at pos — the same text
// Value.AsString would produce — without materialising a Value. For string
// values this is a dictionary lookup, no formatting or allocation.
func (c *Column) Key(pos int) (string, bool) {
	if !c.present.Contains(pos) {
		return "", false
	}
	switch c.kindAt(pos) {
	case KindString:
		return c.dict[c.codeAt(pos)], true
	case KindInt:
		return Value{Kind: KindInt, Num: c.numAt(pos)}.AsString(), true
	case KindFloat:
		return strconv.FormatFloat(c.numAt(pos), 'g', -1, 64), true
	case KindTime:
		return c.timeAt(pos).Format(time.RFC3339), true
	case KindBool:
		if c.bools.Contains(pos) {
			return "true", true
		}
		return "false", true
	}
	return "", true
}

// estimatedBytes returns the column's approximate heap footprint. Mapped
// payload bytes (codesB/numsB/timesB/kindsB) are deliberately excluded —
// they live in the file mapping, not on the heap, and are accounted
// separately by Index.MappedBytes.
func (c *Column) estimatedBytes() int {
	n := len(c.name) + 16 +
		c.present.Bytes() + c.bools.Bytes() +
		len(c.kinds) +
		len(c.codes)*4 +
		len(c.nums)*8 +
		len(c.times)*24
	for _, s := range c.dict {
		n += 16 + len(s)
	}
	return n
}

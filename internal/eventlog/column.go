package eventlog

import (
	"strconv"
	"time"

	"gecco/internal/bitset"
)

// Column is the columnar store of one attribute across every event of an
// indexed log, addressed by global event position (trace-major, the same
// numbering as the class-id arena). Values are held in typed arrays gated by
// a presence bitset; string values are dictionary-encoded so categorical
// reads compare small integer codes instead of hashing strings. Columns are
// immutable after Build and safe for concurrent reads.
type Column struct {
	name    string
	present bitset.Set // global positions carrying the attribute

	// kind is the column's uniform value kind; KindNone marks a mixed-kind
	// column, in which case kinds holds the per-event kind. Uniform columns
	// (the overwhelmingly common case) pay no per-event kind byte.
	kind  Kind
	kinds []uint8

	// codes/dict hold dictionary-encoded strings; nums carries both
	// KindFloat and KindInt payloads (which of the two a position holds is
	// answered by kind/kinds, since any mix forces the mixed-kind path).
	codes []uint32
	dict  []string
	nums  []float64
	times []time.Time
	bools bitset.Set
}

// Name returns the attribute name the column stores.
func (c *Column) Name() string { return c.name }

// Has reports whether the event at global position pos carries the attribute.
func (c *Column) Has(pos int) bool { return c.present.Contains(pos) }

// KindAt returns the value kind at pos, or KindNone when absent. (A present
// KindNone value — a zero Value stored as an attribute — is reported as
// absent here but still reconstructed by Value.)
func (c *Column) KindAt(pos int) Kind {
	if !c.present.Contains(pos) {
		return KindNone
	}
	return c.kindAt(pos)
}

// kindAt returns the stored kind assuming pos is present.
func (c *Column) kindAt(pos int) Kind {
	if c.kinds != nil {
		return Kind(c.kinds[pos])
	}
	return c.kind
}

// StringsOnly reports whether every value in the column is a string, in
// which case dictionary codes are a bijection onto the distinct AsString
// keys and categorical reads can work on codes alone.
func (c *Column) StringsOnly() bool { return c.kind == KindString && c.kinds == nil }

// NumCodes returns the size of the string dictionary.
func (c *Column) NumCodes() int { return len(c.dict) }

// CodeString returns the string value of a dictionary code.
func (c *Column) CodeString(code uint32) string { return c.dict[code] }

// Code returns the dictionary code of the string value at pos; ok is false
// when the attribute is absent or not string-valued there.
func (c *Column) Code(pos int) (uint32, bool) {
	if !c.present.Contains(pos) || c.kindAt(pos) != KindString {
		return 0, false
	}
	return c.codes[pos], true
}

// Num returns the numeric payload at pos; ok is false when the attribute is
// absent or not numeric (KindFloat/KindInt) there.
func (c *Column) Num(pos int) (float64, bool) {
	if !c.present.Contains(pos) {
		return 0, false
	}
	switch c.kindAt(pos) {
	case KindFloat, KindInt:
		return c.nums[pos], true
	}
	return 0, false
}

// Time returns the timestamp at pos; ok is false when the attribute is
// absent or not time-valued there.
func (c *Column) Time(pos int) (time.Time, bool) {
	if !c.present.Contains(pos) || c.kindAt(pos) != KindTime {
		return time.Time{}, false
	}
	return c.times[pos], true
}

// Value reconstructs the typed attribute value at pos, exactly as the
// original Event.Attrs map held it.
func (c *Column) Value(pos int) (Value, bool) {
	if !c.present.Contains(pos) {
		return Value{}, false
	}
	switch c.kindAt(pos) {
	case KindString:
		return Value{Kind: KindString, Str: c.dict[c.codes[pos]]}, true
	case KindFloat:
		return Value{Kind: KindFloat, Num: c.nums[pos]}, true
	case KindInt:
		return Value{Kind: KindInt, Num: c.nums[pos]}, true
	case KindTime:
		return Value{Kind: KindTime, Time: c.times[pos]}, true
	case KindBool:
		return Value{Kind: KindBool, Bool: c.bools.Contains(pos)}, true
	}
	return Value{}, true // a stored zero Value
}

// Key returns the categorical key of the value at pos — the same text
// Value.AsString would produce — without materialising a Value. For string
// values this is a dictionary lookup, no formatting or allocation.
func (c *Column) Key(pos int) (string, bool) {
	if !c.present.Contains(pos) {
		return "", false
	}
	switch c.kindAt(pos) {
	case KindString:
		return c.dict[c.codes[pos]], true
	case KindInt:
		return Value{Kind: KindInt, Num: c.nums[pos]}.AsString(), true
	case KindFloat:
		return strconv.FormatFloat(c.nums[pos], 'g', -1, 64), true
	case KindTime:
		return c.times[pos].Format(time.RFC3339), true
	case KindBool:
		if c.bools.Contains(pos) {
			return "true", true
		}
		return "false", true
	}
	return "", true
}

// estimatedBytes returns the column's approximate heap footprint.
func (c *Column) estimatedBytes() int {
	n := len(c.name) + 16 +
		c.present.Bytes() + c.bools.Bytes() +
		len(c.kinds) +
		len(c.codes)*4 +
		len(c.nums)*8 +
		len(c.times)*24
	for _, s := range c.dict {
		n += 16 + len(s)
	}
	return n
}

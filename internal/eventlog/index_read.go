package eventlog

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"gecco/internal/bitset"
)

// OpenIndex opens an index file written by WriteIndex. On platforms with
// mmap support the file is mapped read-only and the bulk column payloads
// stay as views into the mapping (see Index.MappedBytes); elsewhere — or if
// mapping fails — it falls back to fully loading the file via ReadIndex.
// The returned Index is validated end to end and safe for concurrent use;
// call Close (or let the GC reclaim it) when done.
func OpenIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if m, merr := mmapFile(f, size); merr == nil {
		x, derr := decodeIndex(m.data, false)
		if derr != nil {
			m.close()
			return nil, derr
		}
		x.mapped = m
		return x, nil
	}
	return ReadIndex(f, size)
}

// ReadIndex decodes an index from any io.ReaderAt — the pure-Go fallback
// path, used when mmap is unavailable. The whole file is loaded and every
// structure is heap-materialised; MappedBytes of the result is 0.
func ReadIndex(r io.ReaderAt, size int64) (*Index, error) {
	if size < 0 || size != int64(int(size)) {
		return nil, corruptf("implausible file size %d", size)
	}
	data := make([]byte, size)
	if _, err := r.ReadAt(data, 0); err != nil && !(err == io.EOF && size == 0) {
		return nil, err
	}
	return decodeIndex(data, true)
}

// cursor is a bounds-checked little-endian reader over one segment payload.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) take(n int) ([]byte, bool) {
	if n < 0 || c.remaining() < n {
		return nil, false
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b, true
}

func (c *cursor) u8() (uint8, bool) {
	b, ok := c.take(1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

func (c *cursor) u32() (uint32, bool) {
	b, ok := c.take(4)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b), true
}

func (c *cursor) u64() (uint64, bool) {
	b, ok := c.take(8)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}

func (c *cursor) str() (string, bool) {
	n, ok := c.u32()
	if !ok || int64(n) > int64(c.remaining()) {
		return "", false
	}
	b, ok := c.take(int(n))
	if !ok {
		return "", false
	}
	return string(b), true
}

// segKey addresses one segment: its kind plus, for column segments, the
// column index (0 for whole-index segments).
type segKey struct{ kind, id uint32 }

// parseFile validates the header and segment table, CRC-checks every
// payload, and returns the payload map plus the number of column segments.
func parseFile(data []byte) (map[segKey][]byte, int, error) {
	if len(data) < len(IndexMagic) || string(data[:len(IndexMagic)]) != IndexMagic {
		return nil, 0, ErrBadMagic
	}
	if len(data) < headerSize {
		return nil, 0, corruptf("truncated header: %d bytes", len(data))
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != IndexVersion {
		return nil, 0, errorfWrap(ErrVersion, "file is version %d, this reader supports %d", v, IndexVersion)
	}
	if flags := binary.LittleEndian.Uint32(data[12:]); flags != 0 {
		return nil, 0, errorfWrap(ErrVersion, "unknown header flags %#x", flags)
	}
	segCount := int(binary.LittleEndian.Uint32(data[16:]))
	tableOff := binary.LittleEndian.Uint64(data[24:])
	fileSize := binary.LittleEndian.Uint64(data[32:])
	if fileSize != uint64(len(data)) {
		return nil, 0, corruptf("truncated: header declares %d bytes, have %d", fileSize, len(data))
	}
	if tableOff < headerSize || tableOff > uint64(len(data)) ||
		uint64(segCount)*segEntrySize > uint64(len(data))-tableOff {
		return nil, 0, corruptf("segment table out of bounds (off %d, %d entries)", tableOff, segCount)
	}
	segs := make(map[segKey][]byte, segCount)
	nColSegs := 0
	for i := 0; i < segCount; i++ {
		e := data[int(tableOff)+i*segEntrySize:]
		kind := binary.LittleEndian.Uint32(e)
		id := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		sum := binary.LittleEndian.Uint32(e[24:])
		name, known := segmentKindNames[kind]
		if !known {
			return nil, 0, corruptf("unknown segment kind %d", kind)
		}
		if kind < segColMeta && id != 0 {
			return nil, 0, corruptf("segment %s carries column id %d", name, id)
		}
		if off%segAlign != 0 || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, 0, corruptf("segment %s out of bounds (off %d, len %d)", name, off, length)
		}
		payload := data[off : off+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, 0, corruptf("segment %s fails its checksum", name)
		}
		key := segKey{kind, id}
		if _, dup := segs[key]; dup {
			return nil, 0, corruptf("duplicate segment %s id %d", name, id)
		}
		segs[key] = payload
		if kind >= segColMeta {
			nColSegs++
		}
	}
	return segs, nColSegs, nil
}

func decodeIndex(data []byte, materialize bool) (*Index, error) {
	segs, nColSegs, err := parseFile(data)
	if err != nil {
		return nil, err
	}
	need := func(kind uint32) ([]byte, error) {
		p, ok := segs[segKey{kind, 0}]
		if !ok {
			return nil, corruptf("missing required segment %s", segmentKindNames[kind])
		}
		return p, nil
	}

	metaB, err := need(segMeta)
	if err != nil {
		return nil, err
	}
	mc := cursor{b: metaB}
	name, ok := mc.str()
	if !ok {
		return nil, corruptf("meta: bad log name")
	}
	var counts [5]int
	for i := range counts {
		v, ok := mc.u64()
		if !ok || v > metaCountLimit {
			return nil, corruptf("meta: bad element counts")
		}
		counts[i] = int(v)
	}
	if mc.remaining() != 0 {
		return nil, corruptf("meta: trailing bytes")
	}
	numTraces, numEvents, numClasses, numVariants, numCols := counts[0], counts[1], counts[2], counts[3], counts[4]

	x := &Index{Name: name}
	if err := decodeControl(x, segs, need, numTraces, numEvents, numClasses, numVariants); err != nil {
		return nil, err
	}
	if err := decodeColumns(x, segs, nColSegs, numCols, numEvents, materialize); err != nil {
		return nil, err
	}
	return x, nil
}

// decodeControl fills the whole-index (non-column) structures, validating
// counts and bounds against the meta header so every later access is safe.
func decodeControl(x *Index, segs map[segKey][]byte, need func(uint32) ([]byte, error), numTraces, numEvents, numClasses, numVariants int) error {
	classesB, err := need(segClasses)
	if err != nil {
		return err
	}
	classes, err := decodeStringTable(classesB, "classes")
	if err != nil {
		return err
	}
	if len(classes) != numClasses {
		return corruptf("classes: %d names, meta declares %d", len(classes), numClasses)
	}
	x.Classes = classes
	x.ClassID = make(map[string]int, numClasses)
	for i, c := range classes {
		if i > 0 && classes[i-1] >= c {
			return corruptf("classes: not strictly sorted at %d", i)
		}
		x.ClassID[c] = i
	}

	if x.ClassTraces, err = decodeBitsetListSeg(need, segClassTraces, numClasses, numTraces); err != nil {
		return err
	}
	if x.ClassFreq, err = decodeU64IntsSeg(need, segClassFreq, numClasses, numEvents); err != nil {
		return err
	}
	if x.arena, err = decodeArenaSeg(need, segArena, numEvents, numClasses); err != nil {
		return err
	}
	if x.traceOff, err = decodeOffsetsSeg(need, segTraceOff, numTraces+1, numEvents); err != nil {
		return err
	}
	traceIDsB, err := need(segTraceIDs)
	if err != nil {
		return err
	}
	if x.traceIDs, err = decodeStringTable(traceIDsB, "trace-ids"); err != nil {
		return err
	}
	if len(x.traceIDs) != numTraces {
		return corruptf("trace-ids: %d ids, meta declares %d", len(x.traceIDs), numTraces)
	}
	if x.TraceVariant, err = decodeU32IntsSeg(need, segTraceVariant, numTraces, numVariants); err != nil {
		return err
	}
	if x.VariantCount, err = decodeU64IntsSeg(need, segVariantCount, numVariants, numTraces); err != nil {
		return err
	}
	vaB, err := need(segVariantArena)
	if err != nil {
		return err
	}
	if len(vaB)%4 != 0 {
		return corruptf("variant-arena: length %d not a multiple of 4", len(vaB))
	}
	if x.variantArena, err = decodeArena(vaB, len(vaB)/4, numClasses, "variant-arena"); err != nil {
		return err
	}
	if x.variantOff, err = decodeOffsetsSeg(need, segVariantOff, numVariants+1, len(x.variantArena)); err != nil {
		return err
	}
	if x.VariantClasses, err = decodeBitsetListSeg(need, segVariantClasses, numVariants, numClasses); err != nil {
		return err
	}

	logAttrsB, err := need(segLogAttrs)
	if err != nil {
		return err
	}
	lc := cursor{b: logAttrsB}
	if x.logAttrs, err = decodeAttrMap(&lc, "log-attrs"); err != nil {
		return err
	}
	if lc.remaining() != 0 {
		return corruptf("log-attrs: trailing bytes")
	}
	traceAttrsB, err := need(segTraceAttrs)
	if err != nil {
		return err
	}
	if numTraces > len(traceAttrsB) { // each map is at least one flag byte
		return corruptf("trace-attrs: %d bytes cannot hold %d maps", len(traceAttrsB), numTraces)
	}
	tc := cursor{b: traceAttrsB}
	x.traceAttrs = make([]map[string]Value, numTraces)
	for t := range x.traceAttrs {
		if x.traceAttrs[t], err = decodeAttrMap(&tc, "trace-attrs"); err != nil {
			return err
		}
	}
	if tc.remaining() != 0 {
		return corruptf("trace-attrs: trailing bytes")
	}
	return nil
}

func decodeStringTable(payload []byte, what string) ([]string, error) {
	c := cursor{b: payload}
	n, ok := c.u32()
	if !ok || int64(n) > int64(c.remaining())/4 {
		return nil, corruptf("%s: bad string count", what)
	}
	offB, ok := c.take((int(n) + 1) * 4)
	if !ok {
		return nil, corruptf("%s: short offset table", what)
	}
	blob := c.b[c.off:]
	out := make([]string, n)
	prev := binary.LittleEndian.Uint32(offB)
	if prev != 0 {
		return nil, corruptf("%s: first offset %d, want 0", what, prev)
	}
	for i := 0; i < int(n); i++ {
		end := binary.LittleEndian.Uint32(offB[(i+1)*4:])
		if end < prev || int64(end) > int64(len(blob)) {
			return nil, corruptf("%s: offsets not monotone at %d", what, i)
		}
		out[i] = string(blob[prev:end])
		prev = end
	}
	if int64(prev) != int64(len(blob)) {
		return nil, corruptf("%s: %d blob bytes unaccounted", what, int64(len(blob))-int64(prev))
	}
	return out, nil
}

func decodeWords(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func decodeBitsetListSeg(need func(uint32) ([]byte, error), kind uint32, count, universe int) ([]bitset.Set, error) {
	what := segmentKindNames[kind]
	payload, err := need(kind)
	if err != nil {
		return nil, err
	}
	c := cursor{b: payload}
	n, ok := c.u32()
	if !ok || int64(n) != int64(count) {
		return nil, corruptf("%s: set count mismatch (have %d, want %d)", what, n, count)
	}
	out := make([]bitset.Set, count)
	for i := range out {
		wc, ok := c.u32()
		if !ok || int64(wc)*8 > int64(c.remaining()) {
			return nil, corruptf("%s: bad word count in set %d", what, i)
		}
		wb, _ := c.take(int(wc) * 8)
		out[i] = bitset.FromWords(decodeWords(wb))
		if out[i].Max() >= universe {
			return nil, corruptf("%s: set %d holds element %d beyond universe %d", what, i, out[i].Max(), universe)
		}
	}
	if c.remaining() != 0 {
		return nil, corruptf("%s: trailing bytes", what)
	}
	return out, nil
}

func decodeU64IntsSeg(need func(uint32) ([]byte, error), kind uint32, count, limit int) ([]int, error) {
	what := segmentKindNames[kind]
	payload, err := need(kind)
	if err != nil {
		return nil, err
	}
	if len(payload) != count*8 {
		return nil, corruptf("%s: %d bytes, want %d entries", what, len(payload), count)
	}
	out := make([]int, count)
	for i := range out {
		v := binary.LittleEndian.Uint64(payload[i*8:])
		if v > uint64(limit) {
			return nil, corruptf("%s: entry %d is %d, exceeds %d", what, i, v, limit)
		}
		out[i] = int(v)
	}
	return out, nil
}

// decodeU32IntsSeg decodes a u32 array whose entries must be < limit.
func decodeU32IntsSeg(need func(uint32) ([]byte, error), kind uint32, count, limit int) ([]int, error) {
	what := segmentKindNames[kind]
	payload, err := need(kind)
	if err != nil {
		return nil, err
	}
	if len(payload) != count*4 {
		return nil, corruptf("%s: %d bytes, want %d entries", what, len(payload), count)
	}
	out := make([]int, count)
	for i := range out {
		v := binary.LittleEndian.Uint32(payload[i*4:])
		if int64(v) >= int64(limit) {
			return nil, corruptf("%s: entry %d is %d, exceeds universe %d", what, i, v, limit)
		}
		out[i] = int(v)
	}
	return out, nil
}

func decodeArenaSeg(need func(uint32) ([]byte, error), kind uint32, count, numClasses int) ([]uint32, error) {
	payload, err := need(kind)
	if err != nil {
		return nil, err
	}
	if len(payload) != count*4 {
		return nil, corruptf("%s: %d bytes, want %d events", segmentKindNames[kind], len(payload), count)
	}
	return decodeArena(payload, count, numClasses, segmentKindNames[kind])
}

func decodeArena(payload []byte, count, numClasses int, what string) ([]uint32, error) {
	out := make([]uint32, count)
	for i := range out {
		v := binary.LittleEndian.Uint32(payload[i*4:])
		if int64(v) >= int64(numClasses) {
			return nil, corruptf("%s: class id %d at %d beyond universe %d", what, v, i, numClasses)
		}
		out[i] = v
	}
	return out, nil
}

// decodeOffsetsSeg decodes a monotone offset table that must start at 0 and
// end at last.
func decodeOffsetsSeg(need func(uint32) ([]byte, error), kind uint32, count, last int) ([]int, error) {
	what := segmentKindNames[kind]
	payload, err := need(kind)
	if err != nil {
		return nil, err
	}
	if len(payload) != count*8 {
		return nil, corruptf("%s: %d bytes, want %d entries", what, len(payload), count)
	}
	out := make([]int, count)
	prev := 0
	for i := range out {
		v := binary.LittleEndian.Uint64(payload[i*8:])
		if v > uint64(last) || int(v) < prev || (i == 0 && v != 0) {
			return nil, corruptf("%s: offsets not monotone over [0,%d] at %d", what, last, i)
		}
		out[i] = int(v)
		prev = int(v)
	}
	if out[count-1] != last {
		return nil, corruptf("%s: final offset %d, want %d", what, out[count-1], last)
	}
	return out, nil
}

func decodeAttrMap(c *cursor, what string) (map[string]Value, error) {
	flag, ok := c.u8()
	if !ok || flag > 1 {
		return nil, corruptf("%s: bad map flag", what)
	}
	if flag == 0 {
		return nil, nil
	}
	n, ok := c.u32()
	if !ok || int64(n) > int64(c.remaining())/5 { // min entry: key length + kind byte
		return nil, corruptf("%s: bad entry count %d", what, n)
	}
	m := make(map[string]Value, n)
	prev := ""
	for i := 0; i < int(n); i++ {
		k, ok := c.str()
		if !ok || (i > 0 && prev >= k) {
			return nil, corruptf("%s: keys not strictly sorted at %d", what, i)
		}
		prev = k
		v, err := decodeValue(c, what)
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func decodeValue(c *cursor, what string) (Value, error) {
	kb, ok := c.u8()
	if !ok || kb > uint8(KindBool) {
		return Value{}, corruptf("%s: bad value kind", what)
	}
	v := Value{Kind: Kind(kb)}
	switch v.Kind {
	case KindString:
		if v.Str, ok = c.str(); !ok {
			return Value{}, corruptf("%s: bad string value", what)
		}
	case KindFloat, KindInt:
		bits, ok := c.u64()
		if !ok {
			return Value{}, corruptf("%s: short numeric value", what)
		}
		v.Num = math.Float64frombits(bits)
	case KindTime:
		b, ok := c.take(16)
		if !ok {
			return Value{}, corruptf("%s: short time value", what)
		}
		t, err := decodeTime(b, what)
		if err != nil {
			return Value{}, err
		}
		v.Time = t
	case KindBool:
		bb, ok := c.u8()
		if !ok || bb > 1 {
			return Value{}, corruptf("%s: bad bool value", what)
		}
		v.Bool = bb == 1
	}
	return v, nil
}

// decodeTime reconstructs a timestamp from its 16-byte record; offset 0 maps
// to time.UTC so zero-offset times render as RFC3339 "Z" again.
func decodeTime(b []byte, what string) (time.Time, error) {
	sec := int64(binary.LittleEndian.Uint64(b))
	nsec := binary.LittleEndian.Uint32(b[8:])
	off := int32(binary.LittleEndian.Uint32(b[12:]))
	if nsec >= 1e9 {
		return time.Time{}, corruptf("%s: %d nanoseconds in time record", what, nsec)
	}
	loc := time.UTC
	if off != 0 {
		loc = time.FixedZone("", int(off))
	}
	return time.Unix(sec, int64(nsec)).In(loc), nil
}

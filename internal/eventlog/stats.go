package eventlog

import (
	"time"

	"gecco/internal/bitset"
)

// This file holds the per-class aggregate statistics behind the constraint
// evaluator's screening kernels: frozen-index summaries that let a candidate
// group's instance-constraint check collapse to an O(classes-in-group) merge
// of cached partials instead of an O(events) rescan. Everything here is a
// pure function of the immutable Index, so caches built from these values
// (constraints.AttrCache) never need invalidation.

// ClassEventMasks returns, per class id, the set of global event positions
// holding an event of that class — the class-membership masks that combine
// with column presence masks via the word-parallel bitset kernels (AndCount,
// ForEachAnd). The masks total NumClasses * NumEvents bits; callers memoise
// them (one build per session).
func (x *Index) ClassEventMasks() []bitset.Set {
	out := make([]bitset.Set, x.NumClasses())
	for c := range out {
		out[c] = bitset.New(len(x.arena))
	}
	for pos, c := range x.arena {
		out[c].Add(pos)
	}
	return out
}

// ClassTraceCounts returns the number of events of class c in trace t,
// flattened as counts[c*NumTraces+t]. It is attribute-independent — the
// event-count partials behind Count/EventsPerClass/ClassCardinality screens.
func (x *Index) ClassTraceCounts() []int32 {
	nt := x.NumTraces()
	counts := make([]int32, x.NumClasses()*nt)
	for t := 0; t < nt; t++ {
		base := t
		for _, c := range x.Seq(t) {
			counts[int(c)*nt+base]++
		}
	}
	return counts
}

// ClassColStats holds per-class partial aggregates of one attribute column:
// presence and numeric-value counts, numeric min/max, distinct dictionary
// codes (strings-only columns), and per-(class, trace) numeric count/sum
// partials. A group check merges the entries of its classes; the Index is
// frozen, so the stats never go stale.
type ClassColStats struct {
	Attr      string
	HasColumn bool // false when no event carries the attribute

	// Per class id:
	Present   []int     // events carrying the attribute (any kind)
	NumCount  []int     // events carrying a numeric (float/int) value
	TimeCount []int     // events carrying a time value
	Min, Max  []float64 // over numeric values; meaningful only when NumCount > 0

	// Codes[c] is the set of distinct dictionary codes of class c's values;
	// nil unless the column is strings-only (where codes biject onto keys).
	Codes       []bitset.Set
	StringsOnly bool

	// Per-(class, trace) numeric partials, flattened class*NumTraces+t; nil
	// when the column holds no numeric values. TraceNumSum[c*nt+t] is the sum
	// of class c's numeric values in trace t.
	TraceNumCount []int32
	TraceNumSum   []float64
}

// BuildClassColStats computes the per-class aggregates of one attribute
// column using the class event masks: per class, the presence count is a
// word-parallel AndCount of class mask and presence mask, and the value scan
// iterates only the surviving bits via ForEachAnd.
func (x *Index) BuildClassColStats(attr string, masks []bitset.Set) *ClassColStats {
	nc := x.NumClasses()
	nt := x.NumTraces()
	st := &ClassColStats{
		Attr:      attr,
		Present:   make([]int, nc),
		NumCount:  make([]int, nc),
		TimeCount: make([]int, nc),
		Min:       make([]float64, nc),
		Max:       make([]float64, nc),
	}
	col := x.Column(attr)
	if col == nil {
		return st
	}
	st.HasColumn = true
	st.StringsOnly = col.StringsOnly()
	if st.StringsOnly {
		st.Codes = make([]bitset.Set, nc)
	}
	// Numeric trace partials are sized lazily: columns without a single
	// numeric value (pure string/time columns) never pay for them.
	ensureTracePartials := func() {
		if st.TraceNumCount == nil {
			st.TraceNumCount = make([]int32, nc*nt)
			st.TraceNumSum = make([]float64, nc*nt)
		}
	}
	for c := 0; c < nc; c++ {
		st.Present[c] = masks[c].AndCount(col.present)
		if st.Present[c] == 0 {
			continue
		}
		if st.StringsOnly {
			st.Codes[c] = bitset.New(col.NumCodes())
		}
		// Positions ascend, so the trace cursor advances monotonically.
		tr := 0
		masks[c].ForEachAnd(col.present, func(pos int) bool {
			switch col.kindAt(pos) {
			case KindFloat, KindInt:
				v := col.numAt(pos)
				if st.NumCount[c] == 0 {
					st.Min[c], st.Max[c] = v, v
				} else {
					if v < st.Min[c] {
						st.Min[c] = v
					}
					if v > st.Max[c] {
						st.Max[c] = v
					}
				}
				st.NumCount[c]++
				for pos >= x.traceOff[tr+1] {
					tr++
				}
				ensureTracePartials()
				st.TraceNumCount[c*nt+tr]++
				st.TraceNumSum[c*nt+tr] += v
			case KindTime:
				st.TimeCount[c]++
			case KindString:
				if st.StringsOnly {
					st.Codes[c].Add(int(col.codeAt(pos)))
				}
			}
			return true
		})
	}
	return st
}

// SpanStats bounds instance wall-clock spans and gaps: TraceSpan[t] is the
// spread (max minus min, in seconds) of trace t's present timestamps, and
// ClassMaxSpan[c] the largest such spread over the traces containing class
// c. Any instance touching class c lives inside one trace of ClassTraces[c],
// and both its span and every inter-event gap are bounded by that trace's
// timestamp spread — even with non-monotonic timestamps, since first and
// last lie within [min, max].
type SpanStats struct {
	HasTimestamps bool
	TraceSpan     []float64
	ClassMaxSpan  []float64
}

// BuildSpanStats computes per-trace timestamp spreads and their per-class
// maxima from the timestamp column.
func (x *Index) BuildSpanStats() *SpanStats {
	nt := x.NumTraces()
	st := &SpanStats{
		TraceSpan:    make([]float64, nt),
		ClassMaxSpan: make([]float64, x.NumClasses()),
	}
	col := x.Column(AttrTimestamp)
	if col == nil {
		return st
	}
	st.HasTimestamps = true
	for t := 0; t < nt; t++ {
		base, n := x.traceOff[t], x.TraceLen(t)
		haveAny := false
		var tMn, tMx time.Time
		for j := 0; j < n; j++ {
			tv, ok := col.Time(base + j)
			if !ok {
				continue
			}
			if !haveAny {
				tMn, tMx, haveAny = tv, tv, true
				continue
			}
			if tv.Before(tMn) {
				tMn = tv
			}
			if tv.After(tMx) {
				tMx = tv
			}
		}
		if haveAny {
			// Computed through the same Sub(...).Seconds() arithmetic the
			// evaluator's span/gap checks use, so the bound dominates every
			// in-trace timestamp difference exactly — no epoch-float rounding.
			st.TraceSpan[t] = tMx.Sub(tMn).Seconds()
		}
	}
	for c := range st.ClassMaxSpan {
		maxSpan := 0.0
		x.ClassTraces[c].ForEach(func(t int) bool {
			if st.TraceSpan[t] > maxSpan {
				maxSpan = st.TraceSpan[t]
			}
			return true
		})
		st.ClassMaxSpan[c] = maxSpan
	}
	return st
}

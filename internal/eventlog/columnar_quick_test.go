package eventlog_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

// naiveClassAttrValues is the straightforward per-event map scan the
// columnar ClassAttrValues replaced: probe every event's attribute map and
// collect AsString keys per class.
func naiveClassAttrValues(log *eventlog.Log, x *eventlog.Index, attr string) []map[string]struct{} {
	out := make([]map[string]struct{}, x.NumClasses())
	for c := range out {
		out[c] = make(map[string]struct{})
	}
	for t := range log.Traces {
		for j := range log.Traces[t].Events {
			ev := &log.Traces[t].Events[j]
			if v, ok := ev.Attrs[attr]; ok {
				out[x.ClassID[ev.Class]][v.AsString()] = struct{}{}
			}
		}
	}
	return out
}

// TestColumnarMatchesNaiveScan is the property test for the columnar
// refactor: over randomly seeded procgen logs, the column-backed reads —
// ClassAttrValues and every per-event attribute access (Value, Num, Key,
// presence) — must agree exactly with a per-event scan of the original
// log's attribute maps.
func TestColumnarMatchesNaiveScan(t *testing.T) {
	attrs := []string{
		eventlog.AttrRole, eventlog.AttrOrg, eventlog.AttrDuration,
		eventlog.AttrCost, eventlog.AttrTimestamp, "doc", "absent-attr",
	}
	check := func(seed int64, traces uint8) bool {
		n := int(traces%40) + 1
		log := procgen.LoanLog(n, seed)
		x := eventlog.NewIndex(log)

		for _, attr := range attrs {
			if !reflect.DeepEqual(x.ClassAttrValues(attr), naiveClassAttrValues(log, x, attr)) {
				t.Logf("seed=%d n=%d: ClassAttrValues(%q) diverged", seed, n, attr)
				return false
			}
		}

		for tr := range log.Traces {
			base := x.TraceStart(tr)
			for j := range log.Traces[tr].Events {
				ev := &log.Traces[tr].Events[j]
				pos := base + j
				if x.Classes[x.Seq(tr)[j]] != ev.Class {
					t.Logf("seed=%d: class mismatch at (%d,%d)", seed, tr, j)
					return false
				}
				for _, attr := range attrs {
					want, wantOK := ev.Attrs[attr]
					col := x.Column(attr)
					if col == nil {
						if wantOK {
							t.Logf("seed=%d: column %q missing", seed, attr)
							return false
						}
						continue
					}
					got, gotOK := col.Value(pos)
					if gotOK != wantOK || got != want {
						t.Logf("seed=%d: Value(%q) at (%d,%d): got %v,%v want %v,%v",
							seed, attr, tr, j, got, gotOK, want, wantOK)
						return false
					}
					if !wantOK {
						continue
					}
					if key, ok := col.Key(pos); !ok || key != want.AsString() {
						t.Logf("seed=%d: Key(%q) at (%d,%d) = %q, want %q",
							seed, attr, tr, j, key, want.AsString())
						return false
					}
					num, numOK := col.Num(pos)
					if numOK != want.IsNumeric() || (numOK && num != want.Num) {
						t.Logf("seed=%d: Num(%q) at (%d,%d) diverged", seed, attr, tr, j)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

package eventlog

import (
	"gecco/internal/bitset"
)

// Index is the columnar, self-contained store GECCO's inner loops operate
// on. Event classes are interned as dense ids; every event's class id lives
// in one flat trace-major arena addressed through per-trace offsets, and the
// distinct control-flow variants live in a second arena. Event attributes
// are held in per-attribute Columns (typed arrays + presence bitsets, with
// dictionary-encoded strings), so constraint evaluation reads small-int
// columns instead of hashing a map[string]Value per event.
//
// An Index carries everything abstraction and serialisation need — log
// name, trace ids, trace- and log-level attributes — so holders (notably
// core.Session and the serving layer's session LRU) can release the
// pointer-heavy *Log it was built from; ReconstructLog materialises an
// equivalent Log on demand. Build one with NewIndex or stream one with
// Builder; an Index is immutable afterwards and safe for concurrent use.
type Index struct {
	Name    string         // log name (Log.Name carry-over)
	Classes []string       // id -> class name, sorted
	ClassID map[string]int // class name -> id

	// ClassTraces[c] is the set of trace indices containing class c, used
	// for the occurs() co-occurrence check of Algorithms 1 and 2.
	ClassTraces []bitset.Set

	// ClassFreq[c] is the total number of events of class c.
	ClassFreq []int

	// Variant compaction: VariantCount holds each distinct class-id
	// sequence's trace multiplicity and TraceVariant maps each trace to its
	// variant. Computations that depend only on control flow (notably the
	// distance measure) iterate variants instead of traces, which is a large
	// win on logs with few variants. The sequences themselves live in
	// variantArena, exposed through VariantSeq.
	VariantCount []int
	TraceVariant []int

	// VariantClasses[v] is the set of class ids occurring in variant v.
	VariantClasses []bitset.Set

	// arena[traceOff[t]+j] is the class id of the j-th event of trace t;
	// traceOff has one extra trailing entry so Seq is a two-load slice.
	arena    []uint32
	traceOff []int

	variantArena []uint32
	variantOff   []int

	traceIDs   []string
	traceAttrs []map[string]Value // round-tripping only; nil when absent
	logAttrs   map[string]Value

	cols  []*Column
	colID map[string]int

	// mapped is non-nil when the Index was opened zero-copy from an index
	// file (OpenIndex): column payload bytes alias the mapping, and the
	// mapping must outlive every such view. Reclamation is finalizer-driven
	// (see mapping), so dropping the Index is always safe; Close releases
	// the mapping eagerly once the caller knows no reads remain.
	mapped *mapping
}

// MappedBytes returns the number of file-mapped (non-heap) bytes backing the
// Index, or 0 for a fully in-memory Index. Mapped bytes are page cache the
// OS can evict under pressure, so they are reported separately from
// EstimatedBytes in the serving layer's memory accounting.
func (x *Index) MappedBytes() int64 {
	if x.mapped == nil {
		return 0
	}
	return int64(len(x.mapped.data))
}

// Close releases the file mapping of an Index opened with OpenIndex; it is a
// no-op for in-memory indexes. After Close the Index must not be used. If
// Close is never called the mapping is reclaimed by the garbage collector
// once the Index is unreachable.
func (x *Index) Close() error {
	if x.mapped == nil {
		return nil
	}
	m := x.mapped
	x.mapped = nil
	return m.close()
}

// NewIndex builds an Index for the log by feeding a Builder — the same
// construction path the streaming loaders use.
func NewIndex(l *Log) *Index {
	b := NewBuilder()
	b.SetName(l.Name)
	for name, v := range l.Attrs {
		b.SetLogAttr(name, v)
	}
	for t := range l.Traces {
		tr := &l.Traces[t]
		b.StartTrace(tr.ID)
		for name, v := range tr.Attrs {
			b.SetTraceAttr(name, v)
		}
		for j := range tr.Events {
			ev := &tr.Events[j]
			b.AddEvent(ev.Class)
			for name, v := range ev.Attrs {
				b.SetEventAttr(name, v)
			}
		}
	}
	return b.Build()
}

// NumClasses returns the size of the class universe.
func (x *Index) NumClasses() int { return len(x.Classes) }

// NumTraces returns the number of traces.
func (x *Index) NumTraces() int { return len(x.traceIDs) }

// NumEvents returns the total number of events.
func (x *Index) NumEvents() int { return len(x.arena) }

// NumVariants returns the number of distinct control-flow variants.
func (x *Index) NumVariants() int { return len(x.VariantCount) }

// Seq returns trace t's class-id sequence: a view into the shared arena that
// must not be modified.
func (x *Index) Seq(t int) []uint32 { return x.arena[x.traceOff[t]:x.traceOff[t+1]] }

// TraceStart returns the global event position of trace t's first event;
// global positions address the attribute Columns.
func (x *Index) TraceStart(t int) int { return x.traceOff[t] }

// TraceLen returns the number of events of trace t.
func (x *Index) TraceLen(t int) int { return x.traceOff[t+1] - x.traceOff[t] }

// TraceID returns trace t's identifier (XES concept:name).
func (x *Index) TraceID(t int) string { return x.traceIDs[t] }

// VariantSeq returns variant v's class-id sequence: a view into the shared
// variant arena that must not be modified.
func (x *Index) VariantSeq(v int) []uint32 {
	return x.variantArena[x.variantOff[v]:x.variantOff[v+1]]
}

// Column returns the column of the named attribute, or nil when no event
// carries it.
func (x *Index) Column(attr string) *Column {
	if i, ok := x.colID[attr]; ok {
		return x.cols[i]
	}
	return nil
}

// Columns returns every event-attribute column in first-seen order. The
// returned slice and the columns it holds are shared with the index and must
// not be modified.
func (x *Index) Columns() []*Column { return x.cols }

// TraceAttrs returns trace t's trace-level attributes, or nil when it has
// none. The map is shared with the index and must not be modified.
func (x *Index) TraceAttrs(t int) map[string]Value {
	if x.traceAttrs == nil {
		return nil
	}
	return x.traceAttrs[t]
}

// LogAttrs returns the log-level attributes, or nil when there are none. The
// map is shared with the index and must not be modified.
func (x *Index) LogAttrs() map[string]Value { return x.logAttrs }

// Occurs reports whether all classes of g co-occur in at least one trace
// (the occurs(g, L) predicate of Algorithms 1 and 2).
func (x *Index) Occurs(g bitset.Set) bool {
	first := g.Min()
	if first < 0 {
		return false
	}
	acc := x.ClassTraces[first].Clone()
	ok := !acc.IsEmpty()
	g.ForEach(func(c int) bool {
		if c == first {
			return true
		}
		ok = acc.AndInto(x.ClassTraces[c])
		return ok
	})
	return ok
}

// CoTraces returns the set of trace indices in which all classes of g occur.
func (x *Index) CoTraces(g bitset.Set) bitset.Set {
	first := g.Min()
	if first < 0 {
		return bitset.New(x.NumTraces())
	}
	acc := x.ClassTraces[first].Clone()
	g.ForEach(func(c int) bool {
		if c == first {
			return true
		}
		return acc.AndInto(x.ClassTraces[c])
	})
	return acc
}

// AnyTraces returns the set of trace indices in which at least one class of
// g occurs; these are the traces that can contain instances of g.
func (x *Index) AnyTraces(g bitset.Set) bitset.Set {
	acc := bitset.New(x.NumTraces())
	g.ForEach(func(c int) bool {
		acc.OrInto(x.ClassTraces[c])
		return true
	})
	return acc
}

// GroupNames maps a class-id set to the sorted class names it contains.
func (x *Index) GroupNames(g bitset.Set) []string {
	out := make([]string, 0, g.Len())
	g.ForEach(func(c int) bool {
		out = append(out, x.Classes[c])
		return true
	})
	return out
}

// GroupFromNames builds a class-id set from class names; unknown names are
// ignored and reported via the second return value.
func (x *Index) GroupFromNames(names []string) (bitset.Set, []string) {
	g := bitset.New(x.NumClasses())
	var unknown []string
	for _, n := range names {
		if id, ok := x.ClassID[n]; ok {
			g.Add(id)
		} else {
			unknown = append(unknown, n)
		}
	}
	return g, unknown
}

// ClassAttrValues returns, for each class id, the set of distinct values of
// the named attribute over that class's events (the class-level attribute
// view used by class-based constraints such as |g.origin| <= 1). It scans
// the attribute's column — presence bitset plus typed payload arrays —
// instead of probing a per-event attribute map; for string attributes the
// keys come straight out of the dictionary, with no formatting.
func (x *Index) ClassAttrValues(attr string) []map[string]struct{} {
	out := make([]map[string]struct{}, x.NumClasses())
	for c := range out {
		out[c] = make(map[string]struct{})
	}
	col := x.Column(attr)
	if col == nil {
		return out
	}
	if col.StringsOnly() {
		// Dedupe on (class, code) pairs so each distinct string is hashed
		// into the result map once per class, not once per event.
		seen := make(map[uint64]struct{})
		col.present.ForEach(func(pos int) bool {
			code := col.codeAt(pos)
			k := uint64(x.arena[pos])<<32 | uint64(code)
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				out[x.arena[pos]][col.dict[code]] = struct{}{}
			}
			return true
		})
		return out
	}
	col.present.ForEach(func(pos int) bool {
		if key, ok := col.Key(pos); ok {
			out[x.arena[pos]][key] = struct{}{}
		}
		return true
	})
	return out
}

// ReconstructLog materialises a Log equivalent to the one the Index was
// built from: same name, trace ids, event order, classes, and attribute
// values at every level, so it serialises byte-identically. Used to honour
// the paper's "infeasible runs return the original log" contract after the
// original *Log has been released.
func (x *Index) ReconstructLog() *Log {
	log := &Log{Name: x.Name, Attrs: cloneAttrs(x.logAttrs)}
	log.Traces = make([]Trace, x.NumTraces())
	for t := range log.Traces {
		n := x.TraceLen(t)
		tr := Trace{ID: x.traceIDs[t], Events: make([]Event, n), Attrs: cloneAttrs(x.traceAttrs[t])}
		base := x.traceOff[t]
		for j := 0; j < n; j++ {
			ev := &tr.Events[j]
			ev.Class = x.Classes[x.arena[base+j]]
			for _, col := range x.cols {
				if v, ok := col.Value(base + j); ok {
					ev.SetAttr(col.name, v)
				}
			}
		}
		log.Traces[t] = tr
	}
	return log
}

// EstimatedBytes returns the Index's approximate heap footprint: arenas,
// offset tables, per-class bitsets, and attribute columns with their
// dictionaries. File-mapped payload bytes of an OpenIndex-backed Index are
// excluded (their slices are nil here) and reported via MappedBytes instead,
// so the serving layer's LRU budget tracks real heap pressure. Surfaced on
// /stats so operators can see what the session LRU pins.
func (x *Index) EstimatedBytes() int64 {
	n := len(x.arena)*4 + len(x.variantArena)*4 +
		len(x.traceOff)*8 + len(x.variantOff)*8 +
		len(x.ClassFreq)*8 + len(x.TraceVariant)*8 + len(x.VariantCount)*8
	for _, s := range x.Classes {
		n += 2 * (16 + len(s)) // Classes + the ClassID key
	}
	n += len(x.Classes) * 8 // ClassID values (approximate map payload)
	for _, s := range x.traceIDs {
		n += 16 + len(s)
	}
	for _, b := range x.ClassTraces {
		n += b.Bytes()
	}
	for _, b := range x.VariantClasses {
		n += b.Bytes()
	}
	for _, m := range x.traceAttrs {
		n += attrMapBytes(m)
	}
	n += attrMapBytes(x.logAttrs)
	for _, col := range x.cols {
		n += col.estimatedBytes()
	}
	return int64(n)
}

// attrMapBytes estimates the footprint of one attribute map using the same
// per-entry model as EstimateLogBytes.
func attrMapBytes(m map[string]Value) int {
	if m == nil {
		return 0
	}
	n := mapBaseBytes
	for k := range m {
		n += mapEntryOverheadBytes + 16 + len(k) + valueBytes
	}
	return n
}

// Rough per-allocation constants for the memory model shared by
// EstimatedBytes and EstimateLogBytes: a Go map header plus bucket
// amortisation, per-entry bucket overhead, and the size of a Value struct
// (kind + string header + float + time.Time + bool, padded).
const (
	mapBaseBytes          = 48
	mapEntryOverheadBytes = 16
	valueBytes            = 64
)

// EstimateLogBytes estimates the heap footprint of a pointer-heavy *Log:
// trace and event structs, class string headers, and one map[string]Value
// per attributed event. It uses the same allocation model as
// Index.EstimatedBytes, so the two are comparable; gecco-bench reports the
// ratio as the columnar layout's bytes-per-event improvement.
func EstimateLogBytes(l *Log) int64 {
	n := 16 + len(l.Name) + attrMapBytes(l.Attrs)
	for t := range l.Traces {
		tr := &l.Traces[t]
		n += 64 + len(tr.ID) + attrMapBytes(tr.Attrs) // Trace struct + slice headers
		for j := range tr.Events {
			ev := &tr.Events[j]
			n += 24 + len(ev.Class) // Event struct: string header + map pointer
			n += attrMapBytes(ev.Attrs)
		}
	}
	return int64(n)
}

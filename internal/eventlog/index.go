package eventlog

import (
	"gecco/internal/bitset"
)

// Index is an interned, read-only view of a Log. Event classes are mapped to
// dense integer ids so that groups of classes can be represented as bit sets
// and traces as int slices. All of GECCO's inner loops operate on an Index.
type Index struct {
	Log     *Log
	Classes []string       // id -> class name, sorted
	ClassID map[string]int // class name -> id

	// Seqs[t][j] is the class id of the j-th event of trace t.
	Seqs [][]int

	// ClassTraces[c] is the set of trace indices containing class c, used
	// for the occurs() co-occurrence check of Algorithms 1 and 2.
	ClassTraces []bitset.Set

	// ClassFreq[c] is the total number of events of class c.
	ClassFreq []int

	// Variant compaction: VariantSeqs holds the distinct class-id
	// sequences, VariantCount their trace multiplicities, and TraceVariant
	// maps each trace to its variant. Computations that depend only on
	// control flow (notably the distance measure) iterate variants instead
	// of traces, which is a large win on logs with few variants.
	VariantSeqs  [][]int
	VariantCount []int
	TraceVariant []int

	// VariantClasses[v] is the set of class ids occurring in variant v.
	VariantClasses []bitset.Set
}

// NewIndex builds an Index for the log.
func NewIndex(l *Log) *Index {
	classes := l.Classes()
	id := make(map[string]int, len(classes))
	for i, c := range classes {
		id[c] = i
	}
	idx := &Index{
		Log:         l,
		Classes:     classes,
		ClassID:     id,
		Seqs:        make([][]int, len(l.Traces)),
		ClassTraces: make([]bitset.Set, len(classes)),
		ClassFreq:   make([]int, len(classes)),
	}
	for c := range classes {
		idx.ClassTraces[c] = bitset.New(len(l.Traces))
	}
	idx.TraceVariant = make([]int, len(l.Traces))
	variantID := make(map[string]int)
	for t := range l.Traces {
		ev := l.Traces[t].Events
		seq := make([]int, len(ev))
		key := make([]byte, 0, len(ev)*2)
		for j := range ev {
			c := id[ev[j].Class]
			seq[j] = c
			idx.ClassTraces[c].Add(t)
			idx.ClassFreq[c]++
			key = append(key, byte(c), byte(c>>8))
		}
		idx.Seqs[t] = seq
		v, ok := variantID[string(key)]
		if !ok {
			v = len(idx.VariantSeqs)
			variantID[string(key)] = v
			idx.VariantSeqs = append(idx.VariantSeqs, seq)
			idx.VariantCount = append(idx.VariantCount, 0)
			present := bitset.New(len(classes))
			for _, c := range seq {
				present.Add(c)
			}
			idx.VariantClasses = append(idx.VariantClasses, present)
		}
		idx.VariantCount[v]++
		idx.TraceVariant[t] = v
	}
	return idx
}

// NumClasses returns the size of the class universe.
func (x *Index) NumClasses() int { return len(x.Classes) }

// NumTraces returns the number of traces.
func (x *Index) NumTraces() int { return len(x.Seqs) }

// Event returns the original event at position pos of trace t.
func (x *Index) Event(t, pos int) *Event { return &x.Log.Traces[t].Events[pos] }

// Occurs reports whether all classes of g co-occur in at least one trace
// (the occurs(g, L) predicate of Algorithms 1 and 2).
func (x *Index) Occurs(g bitset.Set) bool {
	first := g.Min()
	if first < 0 {
		return false
	}
	acc := x.ClassTraces[first].Clone()
	ok := true
	g.ForEach(func(c int) bool {
		if c == first {
			return true
		}
		acc = acc.Intersect(x.ClassTraces[c])
		if acc.IsEmpty() {
			ok = false
			return false
		}
		return true
	})
	return ok && !acc.IsEmpty()
}

// CoTraces returns the set of trace indices in which all classes of g occur.
func (x *Index) CoTraces(g bitset.Set) bitset.Set {
	first := g.Min()
	if first < 0 {
		return bitset.New(x.NumTraces())
	}
	acc := x.ClassTraces[first].Clone()
	g.ForEach(func(c int) bool {
		if c != first {
			acc = acc.Intersect(x.ClassTraces[c])
		}
		return !acc.IsEmpty()
	})
	return acc
}

// AnyTraces returns the set of trace indices in which at least one class of
// g occurs; these are the traces that can contain instances of g.
func (x *Index) AnyTraces(g bitset.Set) bitset.Set {
	acc := bitset.New(x.NumTraces())
	g.ForEach(func(c int) bool {
		acc = acc.Union(x.ClassTraces[c])
		return true
	})
	return acc
}

// GroupNames maps a class-id set to the sorted class names it contains.
func (x *Index) GroupNames(g bitset.Set) []string {
	out := make([]string, 0, g.Len())
	g.ForEach(func(c int) bool {
		out = append(out, x.Classes[c])
		return true
	})
	return out
}

// GroupFromNames builds a class-id set from class names; unknown names are
// ignored and reported via the second return value.
func (x *Index) GroupFromNames(names []string) (bitset.Set, []string) {
	g := bitset.New(x.NumClasses())
	var unknown []string
	for _, n := range names {
		if id, ok := x.ClassID[n]; ok {
			g.Add(id)
		} else {
			unknown = append(unknown, n)
		}
	}
	return g, unknown
}

// ClassAttrValues returns, for each class id, the set of distinct values of
// the named attribute over that class's events (the class-level attribute
// view used by class-based constraints such as |g.origin| <= 1).
func (x *Index) ClassAttrValues(attr string) []map[string]struct{} {
	out := make([]map[string]struct{}, x.NumClasses())
	for c := range out {
		out[c] = make(map[string]struct{})
	}
	for t := range x.Log.Traces {
		ev := x.Log.Traces[t].Events
		for j := range ev {
			if v, ok := ev[j].Attrs[attr]; ok {
				out[x.Seqs[t][j]][v.AsString()] = struct{}{}
			}
		}
	}
	return out
}

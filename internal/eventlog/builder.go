package eventlog

import (
	"sort"
	"time"

	"gecco/internal/bitset"
)

// Builder accumulates a log event by event and produces a columnar Index
// without ever materialising a *Log. Loaders (xes, csvlog, procgen) feed it
// directly; NewIndex feeds it from an existing Log, so there is exactly one
// construction path. The call protocol is
//
//	b := NewBuilder()
//	b.SetName("log")
//	b.StartTrace("case-1")
//	b.AddEvent("a")
//	b.SetEventAttr("role", String("clerk"))
//	...
//	x := b.Build()
//
// Class ids are interned in first-seen order while building and remapped to
// the sorted-name order of Log.Classes at Build time, so the resulting Index
// is identical to NewIndex of the equivalent Log. A Builder is single-use:
// Build may be called once.
type Builder struct {
	name     string
	logAttrs map[string]Value

	classID map[string]uint32 // first-seen interning; remapped in Build
	classes []string

	arena       []uint32
	traceStarts []int
	traceIDs    []string
	traceAttrs  []map[string]Value

	cols  []*colBuilder
	colID map[string]int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		classID: make(map[string]uint32),
		colID:   make(map[string]int),
	}
}

// SetName sets the log name carried by the Index.
func (b *Builder) SetName(name string) { b.name = name }

// SetLogAttr records a log-level attribute (round-tripping only; abstraction
// never consults it).
func (b *Builder) SetLogAttr(name string, v Value) {
	if b.logAttrs == nil {
		b.logAttrs = make(map[string]Value, 4)
	}
	b.logAttrs[name] = v
}

// StartTrace begins a new trace; subsequent AddEvent calls append to it.
func (b *Builder) StartTrace(id string) {
	b.traceStarts = append(b.traceStarts, len(b.arena))
	b.traceIDs = append(b.traceIDs, id)
	b.traceAttrs = append(b.traceAttrs, nil)
}

// SetTraceAttr records a trace-level attribute on the current trace.
func (b *Builder) SetTraceAttr(name string, v Value) {
	t := len(b.traceAttrs) - 1
	if t < 0 {
		panic("eventlog: SetTraceAttr before StartTrace")
	}
	if b.traceAttrs[t] == nil {
		b.traceAttrs[t] = make(map[string]Value, 4)
	}
	b.traceAttrs[t][name] = v
}

// AddEvent appends an event of the given class to the current trace.
func (b *Builder) AddEvent(class string) {
	if len(b.traceStarts) == 0 {
		panic("eventlog: AddEvent before StartTrace")
	}
	id, ok := b.classID[class]
	if !ok {
		id = uint32(len(b.classes))
		b.classID[class] = id
		b.classes = append(b.classes, class)
	}
	b.arena = append(b.arena, id)
}

// SetEventAttr records an attribute on the most recently added event.
// Setting the same attribute twice overwrites, like a map store.
func (b *Builder) SetEventAttr(name string, v Value) {
	pos := len(b.arena) - 1
	if pos < 0 {
		panic("eventlog: SetEventAttr before AddEvent")
	}
	ci, ok := b.colID[name]
	if !ok {
		ci = len(b.cols)
		b.colID[name] = ci
		b.cols = append(b.cols, &colBuilder{name: name, kind: v.Kind, first: true})
	}
	b.cols[ci].set(pos, v)
}

// Build finalises the columnar Index. Class ids are remapped to sorted-name
// order, per-class structures and the variant compaction are computed in one
// arena pass, and the attribute columns are sealed.
func (b *Builder) Build() *Index {
	classes := append([]string(nil), b.classes...)
	sort.Strings(classes)
	id := make(map[string]int, len(classes))
	for i, c := range classes {
		id[c] = i
	}
	remap := make([]uint32, len(b.classes))
	for provisional, name := range b.classes {
		remap[provisional] = uint32(id[name])
	}
	for i, c := range b.arena {
		b.arena[i] = remap[c]
	}

	numTraces := len(b.traceStarts)
	x := &Index{
		Name:        b.name,
		Classes:     classes,
		ClassID:     id,
		ClassTraces: make([]bitset.Set, len(classes)),
		ClassFreq:   make([]int, len(classes)),

		arena:      b.arena,
		traceOff:   append(b.traceStarts, len(b.arena)),
		traceIDs:   b.traceIDs,
		traceAttrs: b.traceAttrs,
		logAttrs:   b.logAttrs,

		TraceVariant: make([]int, numTraces),

		colID: b.colID,
		cols:  make([]*Column, len(b.cols)),
	}
	for c := range classes {
		x.ClassTraces[c] = bitset.New(numTraces)
	}
	// Variant compaction. The key encodes each class id in full width (4
	// bytes): an earlier 2-byte encoding silently merged distinct variants
	// on logs with more than 65535 classes.
	variantID := make(map[string]int)
	x.variantOff = append(x.variantOff, 0)
	var key []byte
	for t := 0; t < numTraces; t++ {
		seq := x.Seq(t)
		key = key[:0]
		for _, c := range seq {
			x.ClassTraces[c].Add(t)
			x.ClassFreq[c]++
			key = append(key, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		v, ok := variantID[string(key)]
		if !ok {
			v = len(x.VariantCount)
			variantID[string(key)] = v
			x.variantArena = append(x.variantArena, seq...)
			x.variantOff = append(x.variantOff, len(x.variantArena))
			x.VariantCount = append(x.VariantCount, 0)
			present := bitset.New(len(classes))
			for _, c := range seq {
				present.Add(int(c))
			}
			x.VariantClasses = append(x.VariantClasses, present)
		}
		x.VariantCount[v]++
		x.TraceVariant[t] = v
	}
	for i, cb := range b.cols {
		x.cols[i] = cb.finish()
	}
	b.cols, b.arena = nil, nil // single-use; free the builder's references
	return x
}

// colBuilder grows one attribute column as events stream in. Payload arrays
// are extended lazily to the highest position written; absent positions in
// between stay zero and are gated out by the presence bitset (grown in
// place via bitset.GrowAdd, since the event count is unknown until Build).
type colBuilder struct {
	name    string
	present bitset.Set
	kind    Kind
	first   bool // no value stored yet (kind not authoritative)
	kinds   []uint8
	codes   []uint32
	dictID  map[string]uint32
	dict    []string
	nums    []float64
	times   []time.Time
	bools   bitset.Set
}

func (c *colBuilder) set(pos int, v Value) {
	if c.first {
		c.kind, c.first = v.Kind, false
	} else if v.Kind != c.kind && c.kinds == nil {
		// The column just became mixed-kind: materialise the per-event kind
		// array and backfill the uniform kind for every position stored so
		// far (all of which are <= pos, since positions only grow).
		c.kinds = make([]uint8, pos+1)
		c.present.ForEach(func(p int) bool {
			c.kinds[p] = uint8(c.kind)
			return true
		})
	}
	c.present.GrowAdd(pos)
	if c.kinds != nil {
		for len(c.kinds) <= pos {
			c.kinds = append(c.kinds, 0)
		}
		c.kinds[pos] = uint8(v.Kind)
	}
	switch v.Kind {
	case KindString:
		if c.dictID == nil {
			c.dictID = make(map[string]uint32)
		}
		code, ok := c.dictID[v.Str]
		if !ok {
			code = uint32(len(c.dict))
			c.dictID[v.Str] = code
			c.dict = append(c.dict, v.Str)
		}
		for len(c.codes) <= pos {
			c.codes = append(c.codes, 0)
		}
		c.codes[pos] = code
	case KindFloat, KindInt:
		for len(c.nums) <= pos {
			c.nums = append(c.nums, 0)
		}
		c.nums[pos] = v.Num
	case KindTime:
		for len(c.times) <= pos {
			c.times = append(c.times, time.Time{})
		}
		c.times[pos] = v.Time
	case KindBool:
		if v.Bool {
			c.bools.GrowAdd(pos)
		} else {
			c.bools.Remove(pos) // overwrite: false replaces true
		}
	}
}

// finish seals the builder into an immutable Column. Mixed columns resolve
// per-event kinds through the kinds array; uniform ones record the single
// kind and pay no per-event byte. (A column mixing KindInt and KindFloat is
// mixed-kind like any other combination; both share the nums payload array.)
func (c *colBuilder) finish() *Column {
	kind := c.kind
	if c.kinds != nil {
		kind = KindNone
	}
	return &Column{
		name:    c.name,
		present: c.present,
		kind:    kind,
		kinds:   c.kinds,
		codes:   c.codes,
		dict:    c.dict,
		nums:    c.nums,
		times:   c.times,
		bools:   c.bools,
	}
}

package eventlog

import (
	"fmt"
	"testing"
	"time"
)

func sampleLog() *Log {
	mk := func(classes ...string) Trace {
		tr := Trace{ID: "t"}
		for _, c := range classes {
			tr.Events = append(tr.Events, Event{Class: c})
		}
		return tr
	}
	return &Log{Name: "sample", Traces: []Trace{
		mk("a", "b", "c"),
		mk("a", "c"),
		mk("a", "b", "c"),
	}}
}

func TestClassesSorted(t *testing.T) {
	log := sampleLog()
	got := log.Classes()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Classes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Classes = %v, want %v", got, want)
		}
	}
}

func TestVariants(t *testing.T) {
	log := sampleLog()
	v := log.Variants()
	if len(v) != 2 {
		t.Fatalf("got %d variants, want 2", len(v))
	}
	if v["a,b,c"] != 2 || v["a,c"] != 1 {
		t.Fatalf("variant counts %v", v)
	}
}

func TestComputeStats(t *testing.T) {
	st := sampleLog().ComputeStats()
	if st.NumClasses != 3 || st.NumTraces != 3 || st.NumVariants != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.NumDFGEdges != 3 { // a→b, b→c, a→c
		t.Fatalf("edges = %d, want 3", st.NumDFGEdges)
	}
	if st.AvgTraceLen < 2.6 || st.AvgTraceLen > 2.7 {
		t.Fatalf("avg len = %f", st.AvgTraceLen)
	}
}

func TestValueConversions(t *testing.T) {
	if String("x").AsString() != "x" {
		t.Error("string AsString")
	}
	if Int(42).AsString() != "42" {
		t.Error("int AsString")
	}
	if !Float(1.5).IsNumeric() || !Int(2).IsNumeric() || String("s").IsNumeric() {
		t.Error("IsNumeric")
	}
	ts := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	if Time(ts).AsString() != "2021-06-01T00:00:00Z" {
		t.Errorf("time AsString = %s", Time(ts).AsString())
	}
	if Bool(true).AsString() != "true" {
		t.Error("bool AsString")
	}
}

// TestValueAsStringFloatMatchesSprintfG pins the strconv.FormatFloat
// rendering of numeric values to the %g text it replaced: the string is a
// categorical cache/constraint key, so changing it would silently split or
// merge attribute categories (and cache entries) across releases.
func TestValueAsStringFloatMatchesSprintfG(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 1.5, 0.1, 2.0 / 3.0, 1e21, 1e-7, -3.25e8, 12345678901234567} {
		want := fmt.Sprintf("%g", f)
		if got := Float(f).AsString(); got != want {
			t.Errorf("Float(%v).AsString() = %q, want %q", f, got, want)
		}
	}
	if Int(-7).AsString() != "-7" {
		t.Errorf("Int(-7).AsString() = %q", Int(-7).AsString())
	}
}

// TestValueAsStringLargeIntegers pins the FormatInt rendering of integer
// values: the former FormatFloat 'g' path switched to exponent notation at
// 1e21 and rounded past 2^53, so distinct large integers (database ids,
// nanosecond epochs) collided on one categorical key. Values outside the
// int64 range keep the float rendering — they cannot be printed
// digit-exactly anyway.
func TestValueAsStringLargeIntegers(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(1 << 60), "1152921504606846976"},
		{Int(-(1 << 60)), "-1152921504606846976"},
		{Int(1<<53 + 2), "9007199254740994"},
		{Int(0), "0"},
		// The float64 payload of 2^53+1 rounds to 2^53 at construction;
		// AsString prints that stored value exactly, not in exponent form.
		{Int(1<<53 + 1), "9007199254740992"},
		// Outside int64: fall back to the float form.
		{Value{Kind: KindInt, Num: 1e21}, "1e+21"},
		{Value{Kind: KindInt, Num: -2e19}, "-2e+19"},
	}
	for _, tc := range cases {
		if got := tc.v.AsString(); got != tc.want {
			t.Errorf("AsString(%v) = %q, want %q", tc.v.Num, got, tc.want)
		}
	}
	if got, want := Int(1<<60).AsString(), Int(1<<60+512).AsString(); got == want {
		t.Errorf("distinct large integers must not collide: both render %q", got)
	}
}

func TestEventAttrHelpers(t *testing.T) {
	e := Event{Class: "a"}
	if _, ok := e.Attr("missing"); ok {
		t.Error("Attr on empty map should miss")
	}
	e.SetAttr("k", Int(1))
	if v, ok := e.Attr("k"); !ok || v.Num != 1 {
		t.Error("SetAttr/Attr round trip")
	}
	if _, ok := e.Timestamp(); ok {
		t.Error("Timestamp without time attr")
	}
	ts := time.Now()
	e.SetAttr(AttrTimestamp, Time(ts))
	if got, ok := e.Timestamp(); !ok || !got.Equal(ts) {
		t.Error("Timestamp round trip")
	}
}

func TestCloneIsDeep(t *testing.T) {
	log := sampleLog()
	log.Traces[0].Events[0].SetAttr("k", Int(1))
	cl := log.Clone()
	cl.Traces[0].Events[0].SetAttr("k", Int(2))
	cl.Traces[0].Events[0].Class = "zz"
	if log.Traces[0].Events[0].Attrs["k"].Num != 1 {
		t.Error("clone shares attribute maps")
	}
	if log.Traces[0].Events[0].Class == "zz" {
		t.Error("clone shares event slices")
	}
}

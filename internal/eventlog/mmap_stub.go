//go:build !unix

package eventlog

import (
	"errors"
	"os"
)

// mapping is the zero-copy file mapping used by OpenIndex on platforms that
// support it. This stub keeps non-unix builds compiling; OpenIndex falls
// back to the fully-loaded ReadIndex path there.
type mapping struct {
	data []byte
}

func mmapFile(f *os.File, size int64) (*mapping, error) {
	return nil, errors.ErrUnsupported
}

func (m *mapping) close() error { return nil }

package eventlog

import (
	"encoding/binary"
	"math"
	"time"

	"gecco/internal/bitset"
)

// decodeColumns rebuilds the attribute columns. Each column's payloads are
// structurally validated in one pass over its presence bitset — per-kind
// payload coverage, dictionary code bounds, kind byte range — so the Column
// accessors can index without further checks. With materialize the payloads
// are copied into the typed slices a Builder would have produced; otherwise
// the little-endian payload bytes are retained as-is (aliasing the file
// mapping) and decoded per access.
func decodeColumns(x *Index, segs map[segKey][]byte, nColSegs, numCols, numEvents int, materialize bool) error {
	if numCols > nColSegs { // every column carries at least col-meta
		return corruptf("meta declares %d columns, file has %d column segments", numCols, nColSegs)
	}
	x.cols = make([]*Column, numCols)
	x.colID = make(map[string]int, numCols)
	consumed := 0
	prevName := ""
	for id := 0; id < numCols; id++ {
		get := func(kind uint32) ([]byte, bool) {
			p, ok := segs[segKey{kind, uint32(id)}]
			if ok {
				consumed++
			}
			return p, ok
		}
		col, err := decodeColumn(get, id, numEvents, materialize)
		if err != nil {
			return err
		}
		if id > 0 && prevName >= col.name {
			return corruptf("column %d (%q): names not strictly sorted", id, col.name)
		}
		prevName = col.name
		x.cols[id] = col
		x.colID[col.name] = id
	}
	if consumed != nColSegs {
		return corruptf("%d column segments reference no declared column", nColSegs-consumed)
	}
	return nil
}

func decodeColumn(get func(uint32) ([]byte, bool), id, numEvents int, materialize bool) (*Column, error) {
	metaB, ok := get(segColMeta)
	if !ok {
		return nil, corruptf("column %d: missing col-meta", id)
	}
	mc := cursor{b: metaB}
	name, ok := mc.str()
	if !ok {
		return nil, corruptf("column %d: bad name", id)
	}
	kindB, ok := mc.u8()
	if !ok || kindB > uint8(KindBool) {
		return nil, corruptf("column %d (%q): bad uniform kind", id, name)
	}
	padB, ok := mc.take(3)
	if !ok || padB[0]|padB[1]|padB[2] != 0 || mc.remaining() != 0 {
		return nil, corruptf("column %d (%q): malformed col-meta", id, name)
	}

	presentB, ok := get(segColPresent)
	if !ok || len(presentB)%8 != 0 {
		return nil, corruptf("column %d (%q): missing or misaligned col-present", id, name)
	}
	present := bitset.FromWords(decodeWords(presentB))
	if present.Max() >= numEvents {
		return nil, corruptf("column %d (%q): present position %d beyond %d events", id, name, present.Max(), numEvents)
	}

	kindsB, _ := get(segColKinds)
	codesB, _ := get(segColCodes)
	numsB, _ := get(segColNums)
	timesB, _ := get(segColTimes)
	boolsB, hasBools := get(segColBools)
	var dict []string
	if dictB, ok := get(segColDict); ok {
		var err error
		if dict, err = decodeStringTable(dictB, "col-dict"); err != nil {
			return nil, err
		}
	}
	mixed := len(kindsB) > 0
	if mixed && kindB != uint8(KindNone) {
		return nil, corruptf("column %d (%q): mixed column declares uniform kind %d", id, name, kindB)
	}
	if len(codesB)%4 != 0 || len(numsB)%8 != 0 || len(timesB)%16 != 0 || len(boolsB)%8 != 0 {
		return nil, corruptf("column %d (%q): misaligned payload segment", id, name)
	}
	if hasBools && len(boolsB) == 0 {
		return nil, corruptf("column %d (%q): empty col-bools segment", id, name)
	}

	c := &Column{name: name, present: present, kind: Kind(kindB), dict: dict}
	if len(boolsB) > 0 {
		c.bools = bitset.FromWords(decodeWords(boolsB))
	}

	// One validation pass over the present positions: after it, kindAt,
	// codeAt, numAt, and timeAt can never index out of bounds or hit an
	// out-of-dictionary code. Time-zone offsets are interned here so the
	// read path never mutates shared state.
	maxCodes, maxNums, maxTimes := len(codesB)/4, len(numsB)/8, len(timesB)/16
	var locs map[int32]*time.Location
	var verr error
	present.ForEach(func(pos int) bool {
		k := Kind(kindB)
		if mixed {
			if pos >= len(kindsB) || kindsB[pos] > uint8(KindBool) {
				verr = corruptf("column %d (%q): bad kind byte at position %d", id, name, pos)
				return false
			}
			k = Kind(kindsB[pos])
		}
		switch k {
		case KindString:
			if pos >= maxCodes {
				verr = corruptf("column %d (%q): string at %d beyond codes payload", id, name, pos)
				return false
			}
			if code := binary.LittleEndian.Uint32(codesB[pos*4:]); int64(code) >= int64(len(dict)) {
				verr = corruptf("column %d (%q): code %d beyond dictionary of %d", id, name, code, len(dict))
				return false
			}
		case KindFloat, KindInt:
			if pos >= maxNums {
				verr = corruptf("column %d (%q): number at %d beyond nums payload", id, name, pos)
				return false
			}
		case KindTime:
			if pos >= maxTimes {
				verr = corruptf("column %d (%q): time at %d beyond times payload", id, name, pos)
				return false
			}
			rec := timesB[pos*16:]
			if nsec := binary.LittleEndian.Uint32(rec[8:]); nsec >= 1e9 {
				verr = corruptf("column %d (%q): %d nanoseconds at %d", id, name, nsec, pos)
				return false
			}
			if off := int32(binary.LittleEndian.Uint32(rec[12:])); off != 0 {
				if locs == nil {
					locs = make(map[int32]*time.Location)
				}
				if locs[off] == nil {
					locs[off] = time.FixedZone("", int(off))
				}
			}
		}
		return true
	})
	if verr != nil {
		return nil, verr
	}

	if materialize {
		if mixed {
			c.kinds = append([]uint8(nil), kindsB...)
		}
		if maxCodes > 0 {
			c.codes = make([]uint32, maxCodes)
			for i := range c.codes {
				c.codes[i] = binary.LittleEndian.Uint32(codesB[i*4:])
			}
		}
		if maxNums > 0 {
			c.nums = make([]float64, maxNums)
			for i := range c.nums {
				c.nums[i] = math.Float64frombits(binary.LittleEndian.Uint64(numsB[i*8:]))
			}
		}
		if maxTimes > 0 {
			c.times = make([]time.Time, maxTimes)
			for i := range c.times {
				rec := timesB[i*16:]
				sec := int64(binary.LittleEndian.Uint64(rec))
				nsec := binary.LittleEndian.Uint32(rec[8:])
				off := int32(binary.LittleEndian.Uint32(rec[12:]))
				loc := time.UTC
				if off != 0 {
					if l := locs[off]; l != nil {
						loc = l
					} else {
						loc = time.FixedZone("", int(off))
					}
				}
				c.times[i] = time.Unix(sec, int64(nsec)%1e9).In(loc)
			}
		}
	} else {
		if mixed {
			c.kindsB = kindsB
		}
		c.codesB = codesB
		c.numsB = numsB
		c.timesB = timesB
		c.timeLocs = locs
	}
	return c, nil
}

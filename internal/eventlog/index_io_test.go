package eventlog_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
	"gecco/internal/xes"
)

// gnarlyLog exercises every corner the procgen logs do not: Int and Bool
// values, a mixed-kind column, non-UTC fixed zones, sub-second timestamps,
// trace- and log-level attributes, an empty trace, and duplicate trace ids.
func gnarlyLog() *eventlog.Log {
	cet := time.FixedZone("", 3600)
	ist := time.FixedZone("", -12600)
	log := &eventlog.Log{Name: "gnarly"}
	log.SetAttr("source", eventlog.String("unit-test"))
	log.SetAttr("rev", eventlog.Int(42))

	t0 := eventlog.Trace{ID: "t0"}
	t0.SetAttr("variant-cost", eventlog.Float(1.25))
	t0.Events = []eventlog.Event{
		{Class: "a"}, {Class: "b"}, {Class: "a"},
	}
	t0.Events[0].SetAttr("n", eventlog.Int(7))
	t0.Events[0].SetAttr("ok", eventlog.Bool(true))
	t0.Events[0].SetAttr(eventlog.AttrTimestamp, eventlog.Time(time.Date(2021, 6, 1, 8, 30, 0, 123456789, cet)))
	t0.Events[1].SetAttr("n", eventlog.String("seven")) // mixed-kind column
	t0.Events[1].SetAttr("ok", eventlog.Bool(false))
	t0.Events[2].SetAttr(eventlog.AttrTimestamp, eventlog.Time(time.Date(2021, 6, 1, 9, 0, 0, 0, ist)))

	t1 := eventlog.Trace{ID: "t0"} // duplicate id on purpose
	t1.Events = []eventlog.Event{{Class: "c"}}
	t1.Events[0].SetAttr("n", eventlog.Float(2.5))

	t2 := eventlog.Trace{ID: "empty"} // no events

	log.Traces = []eventlog.Trace{t0, t1, t2}
	return log
}

func ioTestLogs() map[string]*eventlog.Log {
	return map[string]*eventlog.Log{
		"gnarly":  gnarlyLog(),
		"loan":    procgen.LoanLog(60, 11),
		"running": procgen.RunningExample(40, 7),
		"empty":   {Name: "void"},
	}
}

func encode(t *testing.T, x *eventlog.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eventlog.WriteIndex(&buf, x); err != nil {
		t.Fatalf("WriteIndex: %v", err)
	}
	return buf.Bytes()
}

func writeXES(t *testing.T, log *eventlog.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := xes.Write(&buf, log); err != nil {
		t.Fatalf("xes.Write: %v", err)
	}
	return buf.Bytes()
}

// TestIndexRoundTrip pins the core format contract on both read paths:
// write → read → write reproduces the file byte for byte, and the reopened
// index reconstructs a log that serialises identically to the original.
func TestIndexRoundTrip(t *testing.T) {
	for name, log := range ioTestLogs() {
		t.Run(name, func(t *testing.T) {
			x := eventlog.NewIndex(log)
			data := encode(t, x)
			wantXES := writeXES(t, log)

			readBack, err := eventlog.ReadIndex(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatalf("ReadIndex: %v", err)
			}
			if !bytes.Equal(encode(t, readBack), data) {
				t.Error("ReadIndex → WriteIndex is not byte-identical")
			}
			if got := writeXES(t, readBack.ReconstructLog()); !bytes.Equal(got, wantXES) {
				t.Error("ReadIndex: reconstructed log serialises differently")
			}

			path := filepath.Join(t.TempDir(), "log.gidx")
			if err := eventlog.WriteIndexFile(path, x); err != nil {
				t.Fatalf("WriteIndexFile: %v", err)
			}
			opened, err := eventlog.OpenIndex(path)
			if err != nil {
				t.Fatalf("OpenIndex: %v", err)
			}
			defer opened.Close()
			if !bytes.Equal(encode(t, opened), data) {
				t.Error("OpenIndex → WriteIndex is not byte-identical")
			}
			if got := writeXES(t, opened.ReconstructLog()); !bytes.Equal(got, wantXES) {
				t.Error("OpenIndex: reconstructed log serialises differently")
			}
			if opened.EstimatedBytes() <= 0 && opened.NumEvents() > 0 {
				t.Error("EstimatedBytes not positive")
			}
		})
	}
}

// TestColumnAccessorsAfterOpen compares every per-position column read of a
// mapped index against the freshly built one — the byte-decoding accessor
// path must be indistinguishable from the typed-slice path.
func TestColumnAccessorsAfterOpen(t *testing.T) {
	log := gnarlyLog()
	x := eventlog.NewIndex(log)
	path := filepath.Join(t.TempDir(), "log.gidx")
	if err := eventlog.WriteIndexFile(path, x); err != nil {
		t.Fatal(err)
	}
	opened, err := eventlog.OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	for _, attr := range []string{"n", "ok", eventlog.AttrTimestamp, "absent"} {
		a, b := x.Column(attr), opened.Column(attr)
		if (a == nil) != (b == nil) {
			t.Fatalf("column %q: presence differs after open", attr)
		}
		if a == nil {
			continue
		}
		if a.StringsOnly() != b.StringsOnly() || a.NumCodes() != b.NumCodes() {
			t.Errorf("column %q: shape differs after open", attr)
		}
		for pos := 0; pos < x.NumEvents(); pos++ {
			if a.Has(pos) != b.Has(pos) || a.KindAt(pos) != b.KindAt(pos) {
				t.Fatalf("column %q pos %d: presence/kind differ", attr, pos)
			}
			av, aok := a.Value(pos)
			bv, bok := b.Value(pos)
			if aok != bok || av.Kind != bv.Kind || av.AsString() != bv.AsString() {
				t.Fatalf("column %q pos %d: Value differs (%v vs %v)", attr, pos, av, bv)
			}
			ak, aok := a.Key(pos)
			bk, bok := b.Key(pos)
			if aok != bok || ak != bk {
				t.Fatalf("column %q pos %d: Key differs (%q vs %q)", attr, pos, ak, bk)
			}
			if av.Kind == eventlog.KindTime && !av.Time.Equal(bv.Time) {
				t.Fatalf("column %q pos %d: Time differs", attr, pos)
			}
		}
	}
	if got := opened.ClassAttrValues("n"); len(got) != x.NumClasses() {
		t.Fatalf("ClassAttrValues over mapped column: %d classes", len(got))
	}
}

// TestIndexCorruption fuzzes the decoder with truncations and single-byte
// flips across the whole file: decoding must never panic, and any mutation
// that still decodes must decode to the same index (flips that land in
// padding or ignored header fields are the only survivors).
func TestIndexCorruption(t *testing.T) {
	x := eventlog.NewIndex(gnarlyLog())
	data := encode(t, x)

	open := func(b []byte) (ix *eventlog.Index, err error) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked: %v", r)
			}
		}()
		return eventlog.ReadIndex(bytes.NewReader(b), int64(len(b)))
	}

	for n := 0; n < len(data); n += 7 {
		if _, err := open(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}

	for i := 0; i < len(data); i += 3 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		got, err := open(mut)
		if err != nil {
			continue // rejected cleanly: the common case
		}
		if !bytes.Equal(encode(t, got), data) {
			t.Fatalf("flip at byte %d decoded to a different index", i)
		}
	}
}

// TestIndexErrorKinds pins the sentinel errors the spec promises.
func TestIndexErrorKinds(t *testing.T) {
	x := eventlog.NewIndex(gnarlyLog())
	data := encode(t, x)

	notIndex := []byte("<?xml version=\"1.0\"?><log/>")
	if _, err := eventlog.ReadIndex(bytes.NewReader(notIndex), int64(len(notIndex))); !errors.Is(err, eventlog.ErrBadMagic) {
		t.Errorf("xml input: err = %v, want ErrBadMagic", err)
	}

	wrongVersion := append([]byte(nil), data...)
	wrongVersion[8] = 99
	if _, err := eventlog.ReadIndex(bytes.NewReader(wrongVersion), int64(len(wrongVersion))); !errors.Is(err, eventlog.ErrVersion) {
		t.Errorf("version 99: err = %v, want ErrVersion", err)
	}

	// Flip one payload byte past the table: CRC must catch it.
	tableEnd := 40 + int(uint32(data[16])|uint32(data[17])<<8)*32
	badSum := append([]byte(nil), data...)
	badSum[tableEnd+1] ^= 0xff
	if _, err := eventlog.ReadIndex(bytes.NewReader(badSum), int64(len(badSum))); !errors.Is(err, eventlog.ErrCorrupt) {
		t.Errorf("payload flip: err = %v, want ErrCorrupt", err)
	}

	path := filepath.Join(t.TempDir(), "trunc.gidx")
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := eventlog.OpenIndex(path); !errors.Is(err, eventlog.ErrCorrupt) {
		t.Errorf("truncated file via OpenIndex: err = %v, want ErrCorrupt", err)
	}
}

// TestMappedBytesAccounting checks the heap/mapped split: a mapped index
// reports its payload bytes via MappedBytes and keeps them out of
// EstimatedBytes; Close releases the mapping and is idempotent.
func TestMappedBytesAccounting(t *testing.T) {
	x := eventlog.NewIndex(procgen.LoanLog(50, 3))
	path := filepath.Join(t.TempDir(), "log.gidx")
	if err := eventlog.WriteIndexFile(path, x); err != nil {
		t.Fatal(err)
	}
	if x.MappedBytes() != 0 {
		t.Errorf("in-memory index MappedBytes = %d, want 0", x.MappedBytes())
	}
	opened, err := eventlog.OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if opened.MappedBytes() != 0 { // only on platforms with mmap
		if opened.MappedBytes() != fi.Size() {
			t.Errorf("MappedBytes = %d, file is %d", opened.MappedBytes(), fi.Size())
		}
		if opened.EstimatedBytes() >= x.EstimatedBytes() {
			t.Errorf("mapped EstimatedBytes %d not below in-memory %d",
				opened.EstimatedBytes(), x.EstimatedBytes())
		}
	}
	if err := opened.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := opened.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

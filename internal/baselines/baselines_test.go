package baselines

import (
	"context"
	"sort"
	"strings"
	"testing"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/metrics"
	"gecco/internal/procgen"
)

var bg = context.Background()

// mkSess builds a solver session for BLQ (which shares GECCO's candidate
// machinery through the session's frozen artifacts).
func mkSess(t *testing.T, log *eventlog.Log) *core.Session {
	t.Helper()
	sess, err := core.NewSession(log)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func groupingKey(gc [][]string) string {
	parts := make([]string, len(gc))
	for i, g := range gc {
		gg := append([]string(nil), g...)
		sort.Strings(gg)
		parts[i] = strings.Join(gg, ",")
	}
	sort.Strings(parts)
	return strings.Join(parts, " | ")
}

func TestBLQRespectsClassConstraints(t *testing.T) {
	log := procgen.RunningExampleTable1()
	set := constraints.NewSet(
		constraints.MustParse("|g| <= 3"),
		constraints.MustParse("cannotlink(rcp, acc)"),
	)
	res, err := BLQ(bg, mkSess(t, log), set, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	for _, gc := range res.GroupClasses {
		if len(gc) > 3 {
			t.Errorf("group %v exceeds size bound", gc)
		}
		joined := strings.Join(gc, ",")
		if strings.Contains(joined, "rcp") && strings.Contains(joined, "acc") {
			t.Errorf("cannot-link violated in %v", gc)
		}
	}
}

func TestBLQClassAttrConstraint(t *testing.T) {
	log := procgen.LoanLog(120, 3)
	set := constraints.NewSet(
		constraints.MustParse("|g| <= 4"),
		constraints.MustParse("distinct(class.org) <= 1"),
	)
	res, err := BLQ(bg, mkSess(t, log), set, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	for _, gc := range res.GroupClasses {
		orgs := map[byte]bool{}
		for _, c := range gc {
			orgs[c[0]] = true
		}
		if len(orgs) > 1 {
			t.Errorf("group %v mixes origin systems", gc)
		}
	}
}

// BL_Q candidates come from directed DFG paths only, a strictly weaker
// candidate universe than GECCO's DFG∞ with exclusive merging — so GECCO's
// optimum can only be at least as good.
func TestBLQNotBetterThanGecco(t *testing.T) {
	log := procgen.RunningExampleTable1()
	set := constraints.NewSet(constraints.MustParse("|g| <= 5"))
	blq, err := BLQ(bg, mkSess(t, log), set, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gecco, err := core.Run(log, set, core.Config{Mode: core.DFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	if !blq.Feasible || !gecco.Feasible {
		t.Fatal("both should be feasible")
	}
	if gecco.Distance > blq.Distance+1e-9 {
		t.Fatalf("GECCO %.4f worse than BL_Q %.4f", gecco.Distance, blq.Distance)
	}
}

func TestBLPPartitionCount(t *testing.T) {
	log := procgen.RunningExampleTable1()
	res, err := BLP(bg, eventlog.NewIndex(log), 4, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("BLP should always produce a partition")
	}
	if len(res.GroupClasses) > 4 || len(res.GroupClasses) < 1 {
		t.Fatalf("got %d groups, want <= 4", len(res.GroupClasses))
	}
	// Partition covers all 8 classes exactly once.
	seen := map[string]bool{}
	for _, gc := range res.GroupClasses {
		for _, c := range gc {
			if seen[c] {
				t.Fatalf("class %s in two groups", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("covered %d classes, want 8", len(seen))
	}
}

// The paper's Table VII comparison: at the same group count, GECCO's
// grouping is at least as cohesive (silhouette) as spectral partitioning.
func TestBLPVersusGeccoSilhouette(t *testing.T) {
	log := procgen.RunningExample(250, 43)
	x := eventlog.NewIndex(log)
	n := x.NumClasses()
	target := n / 2
	set := constraints.NewSet(constraints.GroupCount{Op: constraints.EQ, N: target})
	gecco, err := core.Run(log, set, core.Config{Mode: core.Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	blp, err := BLP(bg, eventlog.NewIndex(log), target, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	if !gecco.Feasible || !blp.Feasible {
		t.Skip("target group count infeasible on this simulation")
	}
	sg := metrics.Silhouette(x, gecco.Grouping.Groups)
	sp := metrics.Silhouette(x, blp.Grouping.Groups)
	if sg < sp-0.25 {
		t.Fatalf("GECCO silhouette %.3f far below BL_P %.3f", sg, sp)
	}
}

func TestBLGStopsAtLocalOptimum(t *testing.T) {
	log := procgen.RunningExampleTable1()
	set := constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
	res, err := BLG(bg, eventlog.NewIndex(log), set, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("greedy should solve the role-constraint problem")
	}
	// Greedy respects the constraint.
	for _, gc := range res.GroupClasses {
		mgr, clerk := false, false
		for _, c := range gc {
			if c == "acc" || c == "rej" {
				mgr = true
			} else {
				clerk = true
			}
		}
		if mgr && clerk {
			t.Errorf("greedy group %v mixes roles", gc)
		}
	}
	// Greedy cannot beat the global optimum (Exh on the same problem).
	opt, err := core.Run(log, set, core.Config{Mode: core.Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < opt.Distance-1e-9 {
		t.Fatalf("greedy %.4f beats exhaustive optimum %.4f", res.Distance, opt.Distance)
	}
}

func TestBLGInfeasibleWhenSingletonViolates(t *testing.T) {
	log := procgen.RunningExampleTable1()
	// Every singleton violates sum >= 101 (events are 60s), and greedy has
	// no repair mechanism.
	set := constraints.NewSet(constraints.MustParse("sum(duration) >= 101"))
	res, err := BLG(bg, eventlog.NewIndex(log), set, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("greedy cannot start from violating singletons, got %s", groupingKey(res.GroupClasses))
	}
	if res.Diagnostics == nil {
		t.Error("missing diagnostics")
	}
}

// Package baselines implements the three comparison approaches of §VI-A:
//
//   - BL_Q — graph querying: Step 1 is replaced by path queries over the
//     DFG stored in internal/graphdb; limited to class-based constraints.
//   - BL_P — spectral graph partitioning of the DFG into n groups,
//     minimising cut weight (normalised spectral clustering via
//     internal/linalg); only strict grouping constraints are supported.
//   - BL_G — greedy agglomerative merging by lowest overall distance;
//     handles class- and instance-based constraints but no grouping
//     constraints and no global optimisation.
package baselines

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"gecco/internal/abstraction"
	"gecco/internal/bitset"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/dfg"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
	"gecco/internal/graphdb"
	"gecco/internal/instances"
	"gecco/internal/linalg"
)

// BLQ runs the graph-querying baseline: the DFG is loaded into a property
// graph, a Cypher-like query derived from the class-based constraints
// retrieves candidate paths, and GECCO's Steps 2–3 select and apply the
// grouping. Instance-based and grouping constraints beyond bounds are not
// expressible — the baseline's documented limitation. The caller's session
// supplies the frozen index and graph, so no *eventlog.Log is materialised.
func BLQ(ctx context.Context, sess *core.Session, set *constraints.Set, cfg core.Config) (*core.Result, error) {
	cfg.CustomCandidates = func(x *eventlog.Index, graph *dfg.Graph) ([]bitset.Set, error) {
		return queryCandidates(x, graph, set)
	}
	return sess.Solve(ctx, set, cfg)
}

// queryCandidates builds and runs the graph query for the constraint set.
func queryCandidates(x *eventlog.Index, graph *dfg.Graph, set *constraints.Set) ([]bitset.Set, error) {
	db := graphdb.New()
	// One node per class, carrying its name and single-valued class
	// attributes as properties.
	attrs := classAttrsOf(set)
	attrVals := make(map[string][]map[string]struct{}, len(attrs))
	for _, a := range attrs {
		attrVals[a] = x.ClassAttrValues(a)
	}
	for c := 0; c < x.NumClasses(); c++ {
		props := map[string]string{"name": x.Classes[c]}
		for _, a := range attrs {
			if len(attrVals[a][c]) == 1 {
				for v := range attrVals[a][c] {
					props[a] = v
				}
			}
		}
		db.AddNode("Class", props)
	}
	for a := 0; a < graph.N; a++ {
		for _, b := range graph.Out(a) {
			if err := db.AddEdge(a, b, "DF", float64(graph.Freq[a][b])); err != nil {
				return nil, err
			}
		}
	}
	q, err := buildQuery(set)
	if err != nil {
		return nil, err
	}
	res, err := db.Query(q)
	if err != nil {
		return nil, err
	}
	// Paths to groups, deduplicated; singletons come from the *0.. range.
	seen := make(map[string]struct{})
	var groups []bitset.Set
	for _, p := range res.Paths {
		g := bitset.FromSlice(x.NumClasses(), p)
		k := g.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		if x.Occurs(g) {
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// classAttrsOf lists the class-level attributes referenced by the set.
func classAttrsOf(set *constraints.Set) []string {
	var out []string
	for _, c := range set.Class {
		if cad, ok := c.(constraints.ClassAttrDistinct); ok {
			out = append(out, cad.Attr)
		}
	}
	return out
}

// buildQuery translates class-based constraints into the query language.
// Unsupported constraint categories are ignored (BL_Q cannot express them).
func buildQuery(set *constraints.Set) (string, error) {
	maxSize := 8 // default path bound keeps enumeration tractable
	var conds []string
	for _, c := range set.Class {
		switch cc := c.(type) {
		case constraints.GroupSize:
			switch cc.Op {
			case constraints.LE:
				maxSize = cc.N
			case constraints.LT:
				maxSize = cc.N - 1
			case constraints.GE, constraints.GT:
				n := cc.N
				if cc.Op == constraints.GT {
					n++
				}
				conds = append(conds, fmt.Sprintf("length(p) >= %d", n))
			}
		case constraints.CannotLink:
			conds = append(conds, fmt.Sprintf("NOT (contains(p, '%s') AND contains(p, '%s'))", cc.A, cc.B))
		case constraints.MustLink:
			conds = append(conds, fmt.Sprintf("(contains(p, '%s') AND contains(p, '%s')) OR (NOT contains(p, '%s') AND NOT contains(p, '%s'))", cc.A, cc.B, cc.A, cc.B))
		case constraints.ClassAttrDistinct:
			op := cc.Op.String()
			if op == "==" {
				op = "="
			}
			conds = append(conds, fmt.Sprintf("distinct(p.%s) %s %d", cc.Attr, op, cc.N))
		}
	}
	q := fmt.Sprintf("MATCH p = (a:Class)-[:DF*0..%d]->(b:Class)", maxSize-1)
	if len(conds) > 0 {
		q += " WHERE " + strings.Join(conds, " AND ")
	}
	return q + " RETURN p", nil
}

// BLP runs the spectral-partitioning baseline: the DFG's symmetrised,
// normalised adjacency is clustered into numGroups groups via normalised
// spectral clustering. Only the group count is controllable; all other
// constraint categories are unsupported.
func BLP(ctx context.Context, x *eventlog.Index, numGroups int, policy instances.Policy) (*core.Result, error) {
	if numGroups < 1 {
		return nil, fmt.Errorf("baselines: BLP needs numGroups >= 1")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	t0 := time.Now()
	n := x.NumClasses()
	if numGroups > n {
		numGroups = n
	}
	graph := dfg.Build(x)

	// Weighted adjacency: symmetrised directly-follows frequencies,
	// normalised by the maximum.
	w := linalg.NewMatrix(n, n)
	maxF := 1.0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			f := float64(graph.Freq[a][b] + graph.Freq[b][a])
			if f > maxF {
				maxF = f
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			w.Set(a, b, float64(graph.Freq[a][b]+graph.Freq[b][a])/maxF)
		}
	}
	// Normalised Laplacian L = I - D^{-1/2} W D^{-1/2}.
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[i] += w.At(i, j)
		}
		if d[i] == 0 {
			d[i] = 1e-12
		}
	}
	lap := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -w.At(i, j) / math.Sqrt(d[i]*d[j])
			if i == j {
				v += 1
			}
			lap.Set(i, j, v)
		}
	}
	eig, err := linalg.EigenSym(lap)
	if err != nil {
		return nil, fmt.Errorf("baselines: BLP eigen: %w", err)
	}
	// Embed into the numGroups smallest eigenvectors, row-normalise, and
	// k-means.
	embed := linalg.NewMatrix(n, numGroups)
	for i := 0; i < n; i++ {
		norm := 0.0
		for j := 0; j < numGroups; j++ {
			v := eig.Vectors.At(i, j)
			embed.Set(i, j, v)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for j := 0; j < numGroups; j++ {
				embed.Set(i, j, embed.At(i, j)/norm)
			}
		}
	}
	assign := linalg.KMeans(embed, numGroups, 1)
	groups := make([]bitset.Set, numGroups)
	for gi := range groups {
		groups[gi] = bitset.New(n)
	}
	for c, gi := range assign {
		groups[gi].Add(c)
	}
	var nonEmpty []bitset.Set
	for _, g := range groups {
		if !g.IsEmpty() {
			nonEmpty = append(nonEmpty, g)
		}
	}
	return finishGrouping(x, nonEmpty, policy, t0)
}

// BLG runs the greedy baseline: all classes start as singletons; in each
// iteration the constraint-respecting merge with the lowest resulting total
// distance is applied; the procedure stops when no merge improves the total
// distance. Grouping constraints cannot be enforced.
func BLG(ctx context.Context, x *eventlog.Index, set *constraints.Set, policy instances.Policy) (*core.Result, error) {
	t0 := time.Now()
	ev := constraints.NewEvaluator(x, set, policy)
	dc := distance.NewCalc(x, policy)
	n := x.NumClasses()

	groups := make([]bitset.Set, n)
	feasible := true
	for c := 0; c < n; c++ {
		g := bitset.New(n)
		g.Add(c)
		groups[c] = g
		if !ev.Holds(g) {
			feasible = false
		}
	}
	if !feasible {
		// Some singleton already violates R: greedy has no repair step, so
		// the problem is unsolvable for BL_G (mirroring its lower solve
		// rate in Table VII). The infeasibility contract hands back the
		// input log unchanged (§V-C), reconstructed from the index on this
		// cold path only.
		return &core.Result{
			Abstracted:  x.ReconstructLog(),
			Diagnostics: ev.Diagnose(),
		}, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("baselines: %w", err)
		}
		bestI, bestJ := -1, -1
		bestDelta := -1e-12 // require strict improvement
		var bestMerge bitset.Set
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				merged := groups[i].Union(groups[j])
				if !x.Occurs(merged) {
					continue
				}
				delta := dc.Group(merged) - dc.Group(groups[i]) - dc.Group(groups[j])
				if delta < bestDelta && ev.Holds(merged) {
					bestDelta = delta
					bestI, bestJ = i, j
					bestMerge = merged
				}
			}
		}
		if bestI < 0 {
			break
		}
		groups[bestI] = bestMerge
		groups = append(groups[:bestJ], groups[bestJ+1:]...)
	}
	return finishGrouping(x, groups, policy, t0)
}

// finishGrouping packages a grouping into a core.Result with abstraction.
func finishGrouping(x *eventlog.Index, groups []bitset.Set, policy instances.Policy, t0 time.Time) (*core.Result, error) {
	dc := distance.NewCalc(x, policy)
	names := abstraction.AutoNames(x, groups, "Activity ")
	grouping := abstraction.Grouping{Groups: groups, Names: names}
	abstracted, err := abstraction.Apply(x, grouping, abstraction.CompletionOnly, policy)
	if err != nil {
		return nil, err
	}
	res := &core.Result{
		Feasible:   true,
		Grouping:   grouping,
		Distance:   dc.Grouping(groups),
		Abstracted: abstracted,
	}
	res.GroupClasses = make([][]string, len(groups))
	for i, g := range groups {
		res.GroupClasses[i] = x.GroupNames(g)
	}
	res.Timings.Candidates = time.Since(t0)
	return res, nil
}

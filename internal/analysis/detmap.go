package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap flags `range` loops over maps whose iteration order can leak into
// output: elements appended to a slice that is never subsequently sorted,
// written to an encoder or writer, or concatenated into a string inside the
// loop. Go randomises map iteration order per run, so any of these turns a
// deterministic computation into one whose output differs between processes
// — the exact class of bug the PR 1 determinism pins (byte-identical
// abstraction output under any worker count) exist to catch after the fact.
// This analyzer catches it before: sort the collected keys or values (any
// sort.* or slices.Sort* call mentioning the slice satisfies the check), or
// iterate a sorted key slice instead.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "flags map-iteration order leaking into slices, writers, or strings",
	Run:  runDetMap,
}

// detmapEmitters are method names that emit values in call order; calling
// one inside a map range makes the output order the map's iteration order.
var detmapEmitters = map[string]bool{"Encode": true, "WriteString": true}

// detmapFmtEmitters are the fmt functions that write to a stream.
var detmapFmtEmitters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runDetMap(pass *Pass) {
	funcDecls(pass.Files, func(fn *ast.FuncDecl) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !pass.isMap(rng.X) {
				return true
			}
			checkMapRange(pass, fn, rng)
			return true
		})
	})
}

func checkMapRange(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	appendTargets := map[types.Object]token.Pos{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// out += ... inside a map range builds a string (or sum whose
			// float rounding depends on order) in iteration order.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isOrderSensitiveConcat(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string built by += inside range over map: iteration order becomes output order; collect and sort first")
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !pass.isBuiltin(call, "append") || i >= len(n.Lhs) {
					continue
				}
				if obj := pass.rootObj(n.Lhs[i]); obj != nil {
					if _, seen := appendTargets[obj]; !seen {
						appendTargets[obj] = n.Pos()
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pass.pkgNameOf(sel.X) == "fmt" && detmapFmtEmitters[sel.Sel.Name] {
					pass.Reportf(n.Pos(), "fmt.%s inside range over map writes in map-iteration order; collect and sort first", sel.Sel.Name)
				} else if detmapEmitters[sel.Sel.Name] && pass.pkgNameOf(sel.X) == "" {
					pass.Reportf(n.Pos(), "%s call inside range over map emits in map-iteration order; collect and sort first", sel.Sel.Name)
				}
			}
		}
		return true
	})
	// An append target is fine when some later sort call touches it:
	// sort.Strings(v), sort.Slice(v, ...), slices.Sort(v), sort.Sort(byX(v)),
	// or v.Sort(). Anything else leaves map order in the slice.
	for obj, pos := range appendTargets {
		if !sortedAfter(pass, fn, rng, obj) {
			pass.Reportf(pos, "%s is appended to in range over map and never sorted; map iteration order leaks into the slice (sort it, or iterate sorted keys)", obj.Name())
		}
	}
}

// isOrderSensitiveConcat reports whether += on this lvalue accumulates
// order-sensitively (strings; numeric += is commutative for ints and close
// enough for the tables' floats, so only strings are flagged).
func isOrderSensitiveConcat(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// sortedAfter reports whether a sort.*/slices.* call (or obj.Sort())
// mentioning obj appears after the range loop begins.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted || call.Pos() <= rng.Pos() {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pass.pkgNameOf(sel.X) {
		case "sort", "slices":
			for _, arg := range call.Args {
				if pass.referencesObj(arg, obj) {
					sorted = true
				}
			}
		default:
			if sel.Sel.Name == "Sort" && pass.referencesObj(sel.X, obj) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

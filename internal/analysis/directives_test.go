package analysis

import (
	"strings"
	"testing"
)

// TestGeccoAllowSuppression drives the directive machinery end to end over
// the suppress fixture: a justified directive (preceding-line or inline)
// drops the finding, a directive naming the wrong analyzer does not, and a
// malformed directive suppresses nothing and is itself reported.
func TestGeccoAllowSuppression(t *testing.T) {
	pkg, err := fixtureLoader().LoadPackage("suppress")
	if err != nil {
		t.Fatalf("loading suppress fixture: %v", err)
	}
	for _, e := range pkg.TypeErrors {
		t.Fatalf("suppress fixture: typecheck: %v", e)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{DetMap})

	var detmap, directive []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "detmap":
			detmap = append(detmap, d)
		case "directive":
			directive = append(directive, d)
		default:
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
	// The two justified directives suppress their findings; the
	// wrong-analyzer and two malformed ones leave theirs standing.
	if len(detmap) != 3 {
		t.Errorf("detmap findings = %d, want 3 (wrongAnalyzerName, missingJustification, missingAnalyzer):\n%s", len(detmap), render(detmap))
	}
	if len(directive) != 2 {
		t.Errorf("directive findings = %d, want 2 (missing justification, missing analyzer):\n%s", len(directive), render(directive))
	}
	for _, d := range detmap {
		// Suppressed lines live in the first two functions (lines < 22).
		if d.Pos.Line < 22 {
			t.Errorf("finding on a suppressed line: %s", d)
		}
	}
	sawJustification, sawAnalyzer := false, false
	for _, d := range directive {
		if strings.Contains(d.Message, "missing justification") {
			sawJustification = true
		}
		if strings.Contains(d.Message, "missing (analyzer)") {
			sawAnalyzer = true
		}
	}
	if !sawJustification || !sawAnalyzer {
		t.Errorf("malformed-directive messages missing a case: justification=%v analyzer=%v\n%s", sawJustification, sawAnalyzer, render(directive))
	}
}

// TestParseDirectiveForms pins the accepted and rejected directive shapes.
func TestParseDirectiveForms(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		bad      bool
	}{
		{"//lint:gecco-allow(detmap): keys feed an order-independent set", "detmap", false},
		{"//lint:gecco-allow( wallclock ): spaces around the name are fine", "wallclock", false},
		{"//lint:gecco-allow(detmap)", "", true},
		{"//lint:gecco-allow(detmap):", "", true},
		{"//lint:gecco-allow(detmap):   ", "", true},
		{"//lint:gecco-allow: no analyzer", "", true},
		{"//lint:gecco-allow()", "", true},
	}
	for _, c := range cases {
		d := parseDirective(c.text)
		if (d.bad != "") != c.bad {
			t.Errorf("parseDirective(%q): bad=%q, want malformed=%v", c.text, d.bad, c.bad)
		}
		if !c.bad && d.analyzer != c.analyzer {
			t.Errorf("parseDirective(%q): analyzer=%q, want %q", c.text, d.analyzer, c.analyzer)
		}
	}
}

func render(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

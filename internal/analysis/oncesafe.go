package analysis

import (
	"go/ast"
	"go/types"
)

// OnceSafe guards against the single-flight race class fixed after PR 3:
// the session cache's sync.Once-style publication could return a nil
// session because the build closure had a path that consumed the Once
// without assigning the captured result variables — latecomers then blocked
// on a "done" signal whose results never arrive, and the nil session
// poisoned the cache.
//
// Two rules:
//
//  1. A sync.Once.Do closure that assigns captured variables must not be
//     able to return before the assignments: once Do returns, the Once is
//     spent forever, so an early return publishes zero values to every
//     future caller. (Panics are the unavoidable residue; guard them with a
//     deferred publish as internal/service's session cache does.)
//  2. A sync.Once declared as a function-local variable provides no
//     single-flight at all — every call constructs a fresh Once — and
//     almost always means the Once was meant to be a struct or package
//     field.
var OnceSafe = &Analyzer{
	Name: "oncesafe",
	Doc:  "flags sync.Once closures with early returns and function-local Once variables",
	Run:  runOnceSafe,
}

func runOnceSafe(pass *Pass) {
	funcDecls(pass.Files, func(fn *ast.FuncDecl) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Do" || !isSyncOnce(pass, sel.X) {
				return true
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && declaredInside(obj, fn) {
					pass.Reportf(call.Pos(), "sync.Once %s is declared inside the function: every call gets a fresh Once, so Do gives no single-flight; make it a struct or package-level field", id.Name)
				}
			}
			if len(call.Args) == 1 {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
					checkOnceClosure(pass, lit)
				}
			}
			return true
		})
	})
}

// isSyncOnce reports whether the expression is a sync.Once (or *sync.Once).
func isSyncOnce(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Once" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// checkOnceClosure flags early returns in a Do closure that assigns
// captured variables. Do takes func(), so a return can only be an early
// exit; if the closure publishes results through captured variables, that
// exit leaves them unassigned with the Once already spent.
func checkOnceClosure(pass *Pass, lit *ast.FuncLit) {
	assignsCaptured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || assignsCaptured {
			return !assignsCaptured
		}
		for _, lhs := range as.Lhs {
			obj := pass.rootObj(lhs)
			if obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
				assignsCaptured = true
			}
		}
		return true
	})
	if !assignsCaptured {
		return
	}
	last := lit.Body.List[len(lit.Body.List)-1]
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // a nested closure's returns exit that closure, not the Do body
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret == last {
			return true // a trailing return cannot skip the assignments above it
		}
		pass.Reportf(ret.Pos(), "sync.Once.Do closure can return before assigning its captured results; the Once is then spent and every future caller sees zero values (publish under a deferred assignment instead)")
		return true
	})
}

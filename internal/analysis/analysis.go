// Package analysis is gecco's in-tree static-analysis suite: five analyzers
// that mechanically enforce the repository's determinism, context-flow, and
// hot-path invariants, plus the package loader and fixture harness that run
// them. The API deliberately mirrors the shape of golang.org/x/tools/go/
// analysis (Analyzer, Pass, Diagnostic, and an analysistest-style fixture
// runner with `// want "re"` comments) so the analyzers could be ported to
// the upstream framework verbatim — but it is implemented entirely on the
// standard library (go/ast, go/types, and the source importer), because the
// build must work offline with an empty module cache.
//
// The invariants encoded here are not stylistic: every one of them was
// violated — and fixed — in an earlier PR of this repository, and the code
// paths they guard are exactly the ones the roadmap's solver-speedup and
// sharded-serving work will churn next. The analyzers turn those
// post-mortems into machine-checked rules:
//
//   - detmap:    map-iteration order must never leak into output
//     (the PR 1 determinism pins).
//   - wallclock: the deterministic solver packages must not read the wall
//     clock or math/rand (budget sampling is the one, explicitly
//     allowlisted exception).
//   - ctxflow:   long scans must be cancellable; library code must not
//     mint its own context.Background (the PR 1/PR 2 cancellation work).
//   - oncesafe:  a sync.Once closure must publish every captured result on
//     every path (the PR 3 nil-session single-flight race).
//   - hotpath:   functions marked //gecco:hotpath must not call fmt,
//     Value.AsString, or allocate maps (the PR 5 columnar refactor took
//     exactly those off the constraint hot path).
//
// Suppression is explicit and audited: a finding is silenced only by a
// same-line or preceding-line directive of the form
//
//	//lint:gecco-allow(<analyzer>): <one-line justification>
//
// with a non-empty justification; a malformed or unjustified directive is
// itself reported. Hot-path functions opt in via a //gecco:hotpath line in
// their doc comment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer so rules stay portable.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:gecco-allow(<name>) directives.
	Name string
	// Doc states the enforced invariant and the historical bug that
	// motivated it.
	Doc string
	// Run reports the analyzer's findings for one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package; it may carry partial information if
	// type checking reported errors (TypeErrors below).
	Pkg *types.Package
	// TypesInfo maps expressions and identifiers to types and objects.
	// Analyzers must tolerate missing entries (nil TypeOf results) so a
	// package with type errors still gets its syntactic checks.
	TypesInfo *types.Info
	// PkgPath is the package's import path ("gecco/internal/distance", or
	// the fixture-relative path under analysistest).
	PkgPath string
	// TypeErrors collects type-checker complaints; they do not stop the run.
	TypeErrors []error

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the five analyzers of the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{DetMap, WallClock, CtxFlow, OnceSafe, HotPath}
}

// Run applies the analyzers to every loaded package and returns the
// surviving findings: diagnostics suppressed by a justified
// //lint:gecco-allow directive are dropped, and malformed directives are
// reported as findings of the pseudo-analyzer "directive". The result is
// sorted by file, line, and analyzer so output order never depends on map
// iteration — the suite practices what detmap preaches.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg.Fset, pkg.Files)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				PkgPath:    pkg.Path,
				TypeErrors: pkg.TypeErrors,
				diags:      &raw,
			}
			a.Run(pass)
		}
		all = append(all, dirs.filter(raw)...)
		all = append(all, dirs.malformed()...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	TypeErrors []error
}

// Loader parses and type-checks packages from source. Import paths under
// ModulePath resolve to directories under RootDir; everything else is
// resolved by the standard library's source importer, so the loader needs
// neither a populated module cache nor network access. Test files are not
// loaded: the suite's invariants target production code, and the
// determinism tests themselves legitimately iterate maps.
type Loader struct {
	// RootDir is the directory module-local import paths resolve under.
	RootDir string
	// ModulePath is the import-path prefix mapping to RootDir. Empty means
	// every import path is first tried as a RootDir subdirectory (the
	// fixture layout of analysistest).
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles, which the go tool forbids but a
	// hand-written fixture could contain.
	loading map[string]bool
}

// NewLoader returns a loader rooted at dir. Cgo is disabled globally so the
// source importer can type-check net and friends from their pure-Go
// fallbacks without invoking the cgo tool.
func NewLoader(rootDir, modulePath string) *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		RootDir:    rootDir,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// ModulePathFromGoMod reads the module path from dir/go.mod.
func ModulePathFromGoMod(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// LoadAll loads every package under RootDir, skipping testdata, vendor, and
// hidden directories, in deterministic (path-sorted) order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.RootDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.RootDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.RootDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
			if l.ModulePath == "" {
				path = filepath.ToSlash(rel)
			}
		}
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			if isNoGoError(err) {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadPackage loads the package whose import path is relpath relative to
// RootDir (the analysistest entry point).
func (l *Loader) LoadPackage(relpath string) (*Package, error) {
	return l.loadDir(filepath.Join(l.RootDir, filepath.FromSlash(relpath)), relpath)
}

func isNoGoError(err error) bool {
	var noGo *build.NoGoError
	if ok := errorsAs(err, &noGo); ok {
		return true
	}
	return false
}

// errorsAs is errors.As without the reflective generality — build.NoGoError
// is the only wrapped error the loader inspects.
func errorsAs(err error, target **build.NoGoError) bool {
	for err != nil {
		if e, ok := err.(*build.NoGoError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// loadDir parses and type-checks the package in dir under the given import
// path, caching the result.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	// go/build's build-constraint filtering picked GoFiles; _test.go files
	// are already excluded by ImportDir.
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) package even on errors; the
	// collected TypeErrors let callers decide how loudly to complain.
	tpkg, _ := conf.Check(path, l.fset, files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local paths load from source
// under RootDir, everything else falls through to the standard library's
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if local, rel := l.localPath(path); local {
		pkg, err := l.loadDir(filepath.Join(l.RootDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// localPath reports whether path resolves under RootDir and, if so, the
// RootDir-relative directory.
func (l *Loader) localPath(path string) (bool, string) {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return true, "."
		}
		if rel, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return true, rel
		}
		return false, ""
	}
	// Fixture mode: a path is local when its directory exists under RootDir.
	dir := filepath.Join(l.RootDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return true, path
	}
	return false, ""
}

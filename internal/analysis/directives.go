package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the suppression directive. The full form is
//
//	//lint:gecco-allow(<analyzer>): <one-line justification>
//
// and suppresses that analyzer's findings on the same line or the line
// directly below (so the directive can sit on its own line above the
// flagged statement). Both the analyzer name and the justification are
// mandatory: an unexplained suppression is itself a finding.
const allowPrefix = "//lint:gecco-allow"

// hotpathMarker opts a function into the hotpath analyzer's allocation and
// formatting bans. It must appear as its own line in the function's doc
// comment.
const hotpathMarker = "//gecco:hotpath"

// HotpathMarked reports whether the function's doc comment carries the
// //gecco:hotpath marker.
func HotpathMarked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

// directive is one parsed //lint:gecco-allow comment.
type directive struct {
	analyzer string
	pos      token.Position
	bad      string // non-empty when malformed; the complaint to report
}

type directiveSet struct {
	// byLine maps file:line to the directives in force on that line.
	byLine map[string][]directive
	bads   []directive
}

func lineKey(file string, line int) string { return file + ":" + itoa(line) }

// itoa avoids strconv for a two-call-site int format (lines are positive).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// collectDirectives scans the files' comments for gecco-allow directives.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byLine: make(map[string][]directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				d := parseDirective(c.Text)
				d.pos = fset.Position(c.Pos())
				if d.bad != "" {
					ds.bads = append(ds.bads, d)
					continue
				}
				// The directive covers its own line and the next one, so it
				// can be written inline or on the preceding line.
				key := lineKey(d.pos.Filename, d.pos.Line)
				ds.byLine[key] = append(ds.byLine[key], d)
				key = lineKey(d.pos.Filename, d.pos.Line+1)
				ds.byLine[key] = append(ds.byLine[key], d)
			}
		}
	}
	return ds
}

// parseDirective validates one gecco-allow comment.
func parseDirective(text string) directive {
	rest := strings.TrimPrefix(text, allowPrefix)
	if !strings.HasPrefix(rest, "(") {
		return directive{bad: "missing (analyzer): use //lint:gecco-allow(<analyzer>): <justification>"}
	}
	name, after, ok := strings.Cut(rest[1:], ")")
	if !ok || strings.TrimSpace(name) == "" {
		return directive{bad: "missing (analyzer): use //lint:gecco-allow(<analyzer>): <justification>"}
	}
	reason, ok := strings.CutPrefix(strings.TrimSpace(after), ":")
	if !ok || strings.TrimSpace(reason) == "" {
		return directive{bad: "missing justification: every gecco-allow must explain why the invariant is safe to waive here"}
	}
	return directive{analyzer: strings.TrimSpace(name)}
}

// filter drops diagnostics covered by a matching directive.
func (ds *directiveSet) filter(raw []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range raw {
		if ds.allowed(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (ds *directiveSet) allowed(d Diagnostic) bool {
	for _, dir := range ds.byLine[lineKey(d.Pos.Filename, d.Pos.Line)] {
		if dir.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}

// malformed reports broken directives as findings so they fail the build
// instead of silently suppressing nothing.
func (ds *directiveSet) malformed() []Diagnostic {
	var out []Diagnostic
	for _, d := range ds.bads {
		out = append(out, Diagnostic{Analyzer: "directive", Pos: d.pos, Message: d.bad})
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath enforces the allocation and formatting bans on functions marked
// //gecco:hotpath — the constraint-evaluation and distance inner loops that
// run once per candidate group (tens of thousands of times per solve).
// PR 5's columnar refactor took string formatting (Value.AsString) and
// per-event map probes off exactly these paths for its ~9x memory and
// throughput win; this analyzer keeps them off. In a marked function:
//
//   - no fmt.* calls (formatting allocates and reflects; diagnostics
//     belong outside the loop),
//   - no Value.AsString calls (string materialisation per event was the
//     pre-PR 5 regression; compare dictionary codes instead),
//   - no map allocation via make or literals (a map per candidate or per
//     segment thrashes the allocator; use the linear-scan or bitset
//     patterns of distinctValues/variantTerm).
//
// New hot-path functions must carry the marker: reviewers enforce the
// marker, the analyzer enforces the marker's meaning.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbids fmt, Value.AsString, and map allocation in //gecco:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	funcDecls(pass.Files, func(fn *ast.FuncDecl) {
		if !HotpathMarked(fn) {
			return
		}
		name := fn.Name.Name
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if ok {
					if pass.pkgNameOf(sel.X) == "fmt" {
						pass.Reportf(n.Pos(), "fmt.%s in //gecco:hotpath function %s: formatting allocates on the per-candidate path; move diagnostics out of the loop", sel.Sel.Name, name)
					} else if sel.Sel.Name == "AsString" {
						pass.Reportf(n.Pos(), "AsString in //gecco:hotpath function %s materialises a string per event (the pre-columnar regression); compare dictionary codes instead", name)
					}
				}
				if pass.isBuiltin(n, "make") && len(n.Args) > 0 && isMapTypeExpr(pass, n.Args[0]) {
					pass.Reportf(n.Pos(), "map allocation in //gecco:hotpath function %s: a map per candidate/segment thrashes the allocator; use a linear scan or bitset scratch", name)
				}
			case *ast.CompositeLit:
				if isMapTypeExpr(pass, n) {
					pass.Reportf(n.Pos(), "map literal in //gecco:hotpath function %s: a map per candidate/segment thrashes the allocator; use a linear scan or bitset scratch", name)
				}
			}
			return true
		})
	})
}

// isMapTypeExpr reports whether the expression denotes (or has) a map type.
func isMapTypeExpr(pass *Pass, e ast.Expr) bool {
	if _, ok := ast.Unparen(e).(*ast.MapType); ok {
		return true
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

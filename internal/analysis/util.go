package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgNameOf returns the imported package path when e is an identifier
// denoting a package (the X of fmt.Println), or "".
func (p *Pass) pkgNameOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// rootObj resolves the variable an lvalue ultimately writes through:
// identifiers resolve directly, selector chains resolve to their leftmost
// identifier (assigning s.field publishes through s). Index expressions and
// everything else return nil — keyed writes land at a deterministic
// destination regardless of iteration order.
func (p *Pass) rootObj(e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := p.TypesInfo.Uses[v]; obj != nil {
				return obj
			}
			return p.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// referencesObj reports whether any identifier under n denotes obj.
func (p *Pass) referencesObj(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if p.TypesInfo.Uses[id] == obj || p.TypesInfo.Defs[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMap reports whether the expression's type is (or underlies to) a map.
func (p *Pass) isMap(e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isBuiltin reports whether the call's function is the named builtin.
func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// pathSuffixIn reports whether the pass's package path ends in one of the
// given suffixes ("internal/core" matches both the real module path and the
// analysistest fixture path "ctxflow/internal/core").
func (p *Pass) pathSuffixIn(suffixes ...string) bool {
	for _, s := range suffixes {
		if p.PkgPath == s || strings.HasSuffix(p.PkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// declaredInside reports whether the object's declaration lies within the
// function's body (a function-local variable).
func declaredInside(obj types.Object, fn *ast.FuncDecl) bool {
	return obj.Pos() >= fn.Body.Pos() && obj.Pos() <= fn.Body.End()
}

// funcDecls yields every function declaration with a body.
func funcDecls(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

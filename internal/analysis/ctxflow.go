package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CtxFlow enforces the repository's cancellation discipline, built up by
// PR 1 (context-cancellable pipeline) and PR 2 (serving layer): work that
// scales with the log or the candidate space must be abortable.
//
// Two rules:
//
//  1. In the pipeline packages (core, service, stream, candidates, and the
//     mining packages discovery/conformance/suggest/logfilter/pipeline), an
//     exported function that loops over traces, candidates, variants, or a
//     frontier must accept a context.Context — otherwise a client
//     disconnect or shutdown cannot stop the scan.
//  2. Library (non-main, non-test) code must not mint context.Background()
//     or context.TODO(): it severs the caller's cancellation chain. Root
//     contexts belong in main functions and tests; compatibility wrappers
//     that deliberately opt out carry a justified gecco-allow.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "requires contexts on trace/candidate scans and bans context.Background in library code",
	Run:  runCtxFlow,
}

// ctxflowScope are the pipeline packages rule 1 applies to. PR 9 extended
// it to the mining packages when they moved onto the columnar core and
// grew ctx parameters: they now sit on the serving path via the staged
// pipeline engine. PR 10 added internal/shard: ring lookups sit on every
// routed request, so the same hot-path discipline applies.
var ctxflowScope = []string{
	"internal/core", "internal/service", "internal/stream", "internal/candidates",
	"internal/discovery", "internal/conformance", "internal/suggest",
	"internal/logfilter", "internal/pipeline", "internal/shard",
}

// ctxflowLoopMarkers are identifier fragments (lower-cased) that mark a loop
// as iterating the log or candidate space.
var ctxflowLoopMarkers = []string{"trace", "candidate", "cand", "variant", "frontier"}

func runCtxFlow(pass *Pass) {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	inScope := pass.pathSuffixIn(ctxflowScope...)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && !isMain {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") &&
					pass.pkgNameOf(sel.X) == "context" {
					pass.Reportf(call.Pos(), "context.%s() in library code severs the caller's cancellation chain; accept a ctx parameter instead (root contexts belong in main and tests)", sel.Sel.Name)
				}
			}
			return true
		})
	}
	if !inScope || isMain {
		return
	}
	funcDecls(pass.Files, func(fn *ast.FuncDecl) {
		if !fn.Name.IsExported() || hasCtxParam(pass, fn) {
			return
		}
		if _, ok := findUncancellableScan(fn); !ok {
			return
		}
		// Anchor at the signature, not the loop: the fix (and any
		// gecco-allow) belongs on the declaration.
		pass.Reportf(fn.Name.Pos(), "exported %s loops over traces/candidates without accepting a context.Context; long scans must be cancellable (add a ctx parameter or a ...Context variant)", fn.Name.Name)
	})
}

// hasCtxParam reports whether any parameter's type is context.Context.
func hasCtxParam(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && t.String() == "context.Context" {
			return true
		}
		// Syntactic fallback for packages with broken type info.
		if sel, ok := field.Type.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "context" {
				return true
			}
		}
	}
	return false
}

// findUncancellableScan returns the position of the first loop in the body
// that iterates the log or candidate space.
func findUncancellableScan(fn *ast.FuncDecl) (token.Pos, bool) {
	var found token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if mentionsScanMarker(n.X) {
				found = n.Pos()
			}
		case *ast.ForStmt:
			if n.Cond != nil && mentionsScanMarker(n.Cond) {
				found = n.Pos()
			}
		}
		return !found.IsValid()
	})
	return found, found.IsValid()
}

// mentionsScanMarker reports whether any identifier under e names traces,
// candidates, variants, or a frontier.
func mentionsScanMarker(e ast.Expr) bool {
	match := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !match {
			name := strings.ToLower(id.Name)
			for _, m := range ctxflowLoopMarkers {
				if strings.Contains(name, m) {
					match = true
				}
			}
		}
		return !match
	})
	return match
}

package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T the fixture runner needs; depending on it
// instead of testing keeps the production package (and cmd/gecco-vet) free
// of a testing import.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// NewFixtureLoader returns a loader for analysistest fixtures: import paths
// resolve as directories under <testdata>/src, mirroring the layout of
// x/tools' analysistest. Share one loader across every fixture test in a
// package — standard-library type-checking is cached per loader, and the
// fixtures only import small stdlib packages.
func NewFixtureLoader(testdata string) *Loader {
	return NewLoader(filepath.Join(testdata, "src"), "")
}

// RunFixture loads the fixture package at relpath under the loader's root,
// runs the analyzers through the full pipeline (including gecco-allow
// directive filtering), and checks the surviving findings against the
// fixture's `// want "re"` comments: every finding must match a want on its
// line, and every want must be matched by a finding. Backquoted regexps
// (// want `...`) avoid double escaping.
func RunFixture(t TB, l *Loader, relpath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := l.LoadPackage(relpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", relpath, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture %s: typecheck: %v", relpath, e)
	}
	wants := parseWants(t, pkg)
	for _, d := range Run([]*Package{pkg}, analyzers) {
		if !matchWant(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// want is one `// want "re"` expectation, anchored to its comment's line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// matchWant marks and reports the first unmatched want on the diagnostic's
// line whose regexp matches its message.
func matchWant(wants []*want, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the fixture's want comments. A comment may carry
// several quoted regexps (`// want "a" "b"`) when a line expects several
// findings.
func parseWants(t TB, pkg *Package) []*want {
	t.Helper()
	var ws []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok = strings.CutPrefix(strings.TrimSpace(rest), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
						break
					}
					rest = rest[len(q):]
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: unquoting want pattern %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re, raw: lit})
				}
			}
		}
	}
	return ws
}

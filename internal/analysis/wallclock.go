package analysis

import (
	"go/ast"
	"strconv"
)

// WallClock forbids wall-clock reads (time.Now, time.Since, time.Until) and
// math/rand imports inside the deterministic solver packages: candidates,
// cover, mip, lp, distance, constraints, and abstraction. GECCO's headline
// guarantee is byte-identical abstraction output for the same input under
// any worker count; a solver that consults the clock or a PRNG can return
// different groupings between runs, which no determinism test can pin
// reliably. Time-budget sampling is the one legitimate exception — it lives
// in internal/par, which is allowlisted wholesale, and at the explicitly
// gecco-allow'ed deadline checks of the candidate/cover/mip budgets, where
// time limits are an opt-in escape hatch the caller chose over determinism.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids wall-clock and PRNG use in the deterministic solver packages",
	Run:  runWallClock,
}

// wallclockScope are the deterministic solver packages (path suffixes).
var wallclockScope = []string{
	"internal/candidates", "internal/cover", "internal/mip", "internal/lp",
	"internal/distance", "internal/constraints", "internal/abstraction",
	// internal/par is in scope so its budget machinery stays visible to the
	// analyzer's allowlist below rather than silently out of bounds.
	"internal/par",
}

// wallclockFuncs are the banned time package functions.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(pass *Pass) {
	if !pass.pathSuffixIn(wallclockScope...) {
		return
	}
	// Built-in allowlist: internal/par owns the budget-sampling primitives
	// (worker counts, batch sizing); its time use is the sanctioned site.
	if pass.pathSuffixIn("internal/par") {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in deterministic solver package %s: PRNG-dependent grouping output cannot be byte-identical across runs", path, pass.PkgPath)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			if pass.pkgNameOf(sel.X) == "time" {
				pass.Reportf(call.Pos(), "time.%s in deterministic solver package %s: wall-clock reads make solver behavior time-dependent (inject a budget, or gecco-allow an opt-in deadline check)", sel.Sel.Name, pass.PkgPath)
			}
			return true
		})
	}
}

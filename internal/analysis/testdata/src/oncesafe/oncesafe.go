// Fixture for the oncesafe analyzer: early returns inside sync.Once.Do
// closures that publish captured results, and function-local Once values.
package oncesafe

import "sync"

type cache struct {
	once sync.Once
	val  int
	err  error
}

func (c *cache) get(build func() (int, error)) (int, error) {
	c.once.Do(func() {
		v, err := build()
		if err != nil {
			return // want `sync\.Once\.Do closure can return before assigning its captured results`
		}
		c.val = v
		c.err = err
	})
	return c.val, c.err
}

func (c *cache) getSafe(build func() (int, error)) (int, error) {
	c.once.Do(func() {
		c.val, c.err = build()
	})
	return c.val, c.err
}

func (c *cache) getDeferred(build func() (int, error)) (int, error) {
	c.once.Do(func() {
		var v int
		var err error
		defer func() {
			c.val, c.err = v, err
		}()
		v, err = build()
	})
	return c.val, c.err
}

func localOnce(f func()) {
	var once sync.Once
	once.Do(f) // want `sync\.Once once is declared inside the function`
}

func onlyLocalWork() int {
	var total int
	var once sync.Once
	_ = once
	for i := 0; i < 3; i++ {
		total += i
	}
	return total
}

// Fixture for the detmap analyzer: map-iteration order leaking into
// slices, writers, and strings, plus the sorted (clean) variants.
package detmap

import (
	"fmt"
	"sort"
)

type encoder struct{}

func (encoder) Encode(v any) error { return nil }

type writer struct{}

func (writer) WriteString(s string) {}

type list []string

func (l list) Sort() {}

func leakSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys is appended to in range over map and never sorted`
	}
	return keys
}

func cleanSortedSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cleanMethodSort(m map[string]int) list {
	var out list
	for k := range m {
		out = append(out, k)
	}
	out.Sort()
	return out
}

func leakPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside range over map writes in map-iteration order`
	}
}

func leakEncode(m map[string]int, enc encoder) {
	for k := range m {
		enc.Encode(k) // want `Encode call inside range over map emits in map-iteration order`
	}
}

func leakWrite(m map[string]int, w writer) {
	for k := range m {
		w.WriteString(k) // want `WriteString call inside range over map emits in map-iteration order`
	}
}

func leakConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `string built by \+= inside range over map`
	}
	return out
}

func cleanCommutativeSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

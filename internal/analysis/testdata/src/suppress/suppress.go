// Fixture for the gecco-allow directive machinery: a justified directive on
// the preceding line suppresses, an inline one on the same line suppresses,
// and a malformed one suppresses nothing and is itself a finding.
package suppress

import "fmt"

func allowedPrecedingLine(m map[string]int) {
	for k := range m {
		//lint:gecco-allow(detmap): fixture: output order is deliberately irrelevant here
		fmt.Println(k)
	}
}

func allowedInline(m map[string]int) string {
	out := ""
	for k := range m {
		out += k //lint:gecco-allow(detmap): fixture: inline-form suppression
	}
	return out
}

func wrongAnalyzerName(m map[string]int) {
	for k := range m {
		//lint:gecco-allow(wallclock): fixture: names the wrong analyzer, so detmap still fires
		fmt.Println(k)
	}
}

func missingJustification(m map[string]int) {
	for k := range m {
		//lint:gecco-allow(detmap)
		fmt.Println(k)
	}
}

func missingAnalyzer(m map[string]int) {
	for k := range m {
		//lint:gecco-allow: fixture: no analyzer name
		fmt.Println(k)
	}
}

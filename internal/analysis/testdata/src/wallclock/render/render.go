// Fixture for the wallclock analyzer: this package is outside the
// deterministic-solver scope, so clock reads are clean here.
package render

import "time"

func Stamp() string { return time.Now().Format(time.RFC3339) }

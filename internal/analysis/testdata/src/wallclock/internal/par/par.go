// Fixture for the wallclock analyzer's built-in allowlist: internal/par is
// the sanctioned budget-sampling site, so its clock reads are clean.
package par

import "time"

func BudgetDeadline(budget time.Duration) time.Time {
	return time.Now().Add(budget)
}

// Fixture for the wallclock analyzer: the path suffix internal/distance
// puts this package in the deterministic-solver scope.
package distance

import (
	"math/rand" // want `import of math/rand in deterministic solver package`
	"time"
)

func deadline(budget time.Duration) time.Time {
	return time.Now().Add(budget) // want `time\.Now in deterministic solver package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in deterministic solver package`
}

func pick(n int) int { return rand.Intn(n) }

func cleanArithmetic(d time.Duration) time.Duration { return 2 * d }

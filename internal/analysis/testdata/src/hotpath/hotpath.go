// Fixture for the hotpath analyzer: fmt, AsString, and map allocation are
// banned inside //gecco:hotpath functions and fine everywhere else.
package hotpath

import "fmt"

type Value struct{}

func (Value) AsString() string { return "" }

// hot is the flagged variant.
//
//gecco:hotpath
func hot(vs []Value) string {
	out := ""
	for _, v := range vs {
		out += v.AsString() // want `AsString in //gecco:hotpath function hot materialises a string per event`
	}
	seen := make(map[string]int) // want `map allocation in //gecco:hotpath function hot`
	_ = seen
	fmt.Println(out) // want `fmt\.Println in //gecco:hotpath function hot`
	return out
}

// hotLit allocates via a literal instead of make.
//
//gecco:hotpath
func hotLit() map[string]int {
	return map[string]int{} // want `map literal in //gecco:hotpath function hotLit`
}

// cold is unmarked: the same operations are fine off the hot path.
func cold(vs []Value) string {
	out := ""
	for _, v := range vs {
		out += v.AsString()
	}
	seen := make(map[string]int)
	_ = seen
	fmt.Println(out)
	return out
}

// hotClean is marked but uses only allowed operations.
//
//gecco:hotpath
func hotClean(vs []Value) int {
	n := 0
	for range vs {
		n++
	}
	return n
}

// codeAt mirrors the mapped-index decode accessors (eventlog.Column.codeAt
// and friends): shift-based little-endian decoding from a byte view is
// exactly what the hot path should look like, and must stay unflagged.
//
//gecco:hotpath
func codeAt(b []byte, pos int) uint32 {
	p := b[pos*4:]
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// codeAtSloppy is the decode accessor gone wrong: formatting and a map
// cache per call defeat the point of a per-event accessor.
//
//gecco:hotpath
func codeAtSloppy(b []byte, pos int) string {
	cache := make(map[int]string) // want `map allocation in //gecco:hotpath function codeAtSloppy`
	_ = cache
	return fmt.Sprintf("%d", b[pos]) // want `fmt\.Sprintf in //gecco:hotpath function codeAtSloppy`
}

// classCountsMap mirrors the retired instances.ClassCounts: a counts map
// allocated per instance is exactly what the analyzer must flag on the
// constraint-evaluation path.
//
//gecco:hotpath
func classCountsMap(classes []int) map[int]int {
	counts := make(map[int]int) // want `map allocation in //gecco:hotpath function classCountsMap`
	for _, c := range classes {
		counts[c]++
	}
	return counts
}

// classCountsInto is the replacement idiom (instances.ClassCountsInto):
// caller-provided slice scratch plus a touched list, allocation-free per
// call, and must stay unflagged.
//
//gecco:hotpath
func classCountsInto(classes []int, counts []int, touched []int) []int {
	for _, c := range classes {
		if counts[c] == 0 {
			touched = append(touched, c)
		}
		counts[c]++
	}
	return touched
}

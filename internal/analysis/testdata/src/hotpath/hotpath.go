// Fixture for the hotpath analyzer: fmt, AsString, and map allocation are
// banned inside //gecco:hotpath functions and fine everywhere else.
package hotpath

import "fmt"

type Value struct{}

func (Value) AsString() string { return "" }

// hot is the flagged variant.
//
//gecco:hotpath
func hot(vs []Value) string {
	out := ""
	for _, v := range vs {
		out += v.AsString() // want `AsString in //gecco:hotpath function hot materialises a string per event`
	}
	seen := make(map[string]int) // want `map allocation in //gecco:hotpath function hot`
	_ = seen
	fmt.Println(out) // want `fmt\.Println in //gecco:hotpath function hot`
	return out
}

// hotLit allocates via a literal instead of make.
//
//gecco:hotpath
func hotLit() map[string]int {
	return map[string]int{} // want `map literal in //gecco:hotpath function hotLit`
}

// cold is unmarked: the same operations are fine off the hot path.
func cold(vs []Value) string {
	out := ""
	for _, v := range vs {
		out += v.AsString()
	}
	seen := make(map[string]int)
	_ = seen
	fmt.Println(out)
	return out
}

// hotClean is marked but uses only allowed operations.
//
//gecco:hotpath
func hotClean(vs []Value) int {
	n := 0
	for range vs {
		n++
	}
	return n
}

// Fixture for the ctxflow analyzer: the path suffix internal/core puts this
// package in the pipeline scope of rule 1; rule 2 (no context.Background in
// library code) applies to any non-main package.
package core

import "context"

type Trace struct{ ID string }

func ScanAll(traces []Trace) int { // want `exported ScanAll loops over traces/candidates without accepting a context\.Context`
	n := 0
	for range traces {
		n++
	}
	return n
}

func ScanAllCtx(ctx context.Context, traces []Trace) int {
	n := 0
	for range traces {
		if ctx.Err() != nil {
			break
		}
		n++
	}
	return n
}

func scanAllUnexported(traces []Trace) int {
	n := 0
	for range traces {
		n++
	}
	return n
}

func Mint() context.Context {
	return context.Background() // want `context\.Background\(\) in library code severs the caller's cancellation chain`
}

func CountThings(things []int) int {
	n := 0
	for range things {
		n++
	}
	return n
}

// Fixture for the ctxflow analyzer: package main is where root contexts
// belong, so both rules are off here.
package main

import "context"

type Trace struct{ ID string }

func ScanAll(traces []Trace) int {
	n := 0
	for range traces {
		n++
	}
	return n
}

func main() {
	_ = context.Background()
	_ = ScanAll(nil)
}

package analysis

import (
	"sync"
	"testing"
)

// fixtureLoader is shared across the fixture tests so the standard-library
// packages the fixtures import are type-checked from source only once.
var fixtureLoader = sync.OnceValue(func() *Loader { return NewFixtureLoader("testdata") })

func TestDetMapFixture(t *testing.T) {
	RunFixture(t, fixtureLoader(), "detmap", DetMap)
}

func TestWallClockFixture(t *testing.T) {
	l := fixtureLoader()
	RunFixture(t, l, "wallclock/internal/distance", WallClock)
	// The built-in allowlist (internal/par) and an out-of-scope package:
	// both fixtures use the clock and carry no want comments, so any
	// finding fails the run.
	RunFixture(t, l, "wallclock/internal/par", WallClock)
	RunFixture(t, l, "wallclock/render", WallClock)
}

func TestCtxFlowFixture(t *testing.T) {
	l := fixtureLoader()
	RunFixture(t, l, "ctxflow/internal/core", CtxFlow)
	// package main may mint root contexts and scan without a ctx.
	RunFixture(t, l, "ctxflow/cmd/app", CtxFlow)
}

func TestOnceSafeFixture(t *testing.T) {
	RunFixture(t, fixtureLoader(), "oncesafe", OnceSafe)
}

func TestHotPathFixture(t *testing.T) {
	RunFixture(t, fixtureLoader(), "hotpath", HotPath)
}

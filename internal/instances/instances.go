// Package instances implements the inst(σ, g) function of §IV-A: the
// decomposition of a trace's projection onto a group of event classes into
// group instances. Following the paper, recurring behaviour is detected and
// the projected sequence is split accordingly (instantiated here as
// split-on-repeat, after van der Aa et al. [9]): a new instance starts when
// an event's class is already present in the instance under construction.
package instances

import (
	"gecco/internal/bitset"
	"gecco/internal/eventlog"
)

// Policy selects how a trace projection is segmented into instances.
type Policy int

const (
	// SplitOnRepeat starts a new instance whenever a class repeats within
	// the current instance (the paper's default, handling loops like σ4).
	SplitOnRepeat Policy = iota
	// WholeTrace treats the entire projection as a single instance.
	WholeTrace
)

// Instance is one occurrence of a group within a trace.
type Instance struct {
	Trace     int   // trace index in the log
	Positions []int // event positions within the trace, ascending
}

// Len returns the number of events in the instance.
func (i *Instance) Len() int { return len(i.Positions) }

// Span returns the first and last event position of the instance.
func (i *Instance) Span() (first, last int) {
	return i.Positions[0], i.Positions[len(i.Positions)-1]
}

// Segments decomposes a class-id sequence (a view into the Index's arena)
// into group instances, returning the position lists. This is the
// sequence-level core of inst(σ, g), shared by the per-trace view below and
// by variant-compacted computations such as the distance measure.
func Segments(seq []uint32, nClasses int, g bitset.Set, p Policy) [][]int {
	var out [][]int
	var cur []int
	// seen tracks the classes of the instance under construction; it is
	// reset by removing its (few) members rather than reallocating, since
	// segmentation sits on the hot path of constraint checking.
	seen := bitset.New(nClasses)
	var seenList []int
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
		for _, c := range seenList {
			seen.Remove(c)
		}
		seenList = seenList[:0]
	}
	for pos, cid := range seq {
		c := int(cid)
		if !g.Contains(c) {
			continue
		}
		if p == SplitOnRepeat {
			if seen.Contains(c) {
				flush()
			}
			if !seen.Contains(c) {
				seen.Add(c)
				seenList = append(seenList, c)
			}
		}
		cur = append(cur, pos)
	}
	flush()
	return out
}

// OfTrace returns the instances of group g in trace t of the indexed log.
// It returns nil when no event of the trace belongs to g.
func OfTrace(x *eventlog.Index, t int, g bitset.Set, p Policy) []Instance {
	segs := Segments(x.Seq(t), x.NumClasses(), g, p)
	out := make([]Instance, len(segs))
	for i, s := range segs {
		out[i] = Instance{Trace: t, Positions: s}
	}
	return out
}

// OfLog returns all instances of g across the log, visiting only traces that
// contain at least one class of g.
func OfLog(x *eventlog.Index, g bitset.Set, p Policy) []Instance {
	var out []Instance
	x.AnyTraces(g).ForEach(func(t int) bool {
		out = append(out, OfTrace(x, t, g, p)...)
		return true
	})
	return out
}

// Interrupts counts the events from other instances interspersed between the
// first and last event of the instance (the interrupts(ξ) of Eq. 1).
func Interrupts(inst *Instance) int {
	first, last := inst.Span()
	return (last - first + 1) - len(inst.Positions)
}

// Missing counts how many event classes of g do not occur in the instance
// (the missing(ξ, g) of Eq. 1).
func Missing(x *eventlog.Index, inst *Instance, g bitset.Set) int {
	present := bitset.New(x.NumClasses())
	seq := x.Seq(inst.Trace)
	for _, pos := range inst.Positions {
		present.Add(int(seq[pos]))
	}
	return g.Len() - present.Len()
}

// DistinctClasses returns the number of distinct classes in the instance.
func DistinctClasses(x *eventlog.Index, inst *Instance) int {
	present := bitset.New(x.NumClasses())
	seq := x.Seq(inst.Trace)
	for _, pos := range inst.Positions {
		present.Add(int(seq[pos]))
	}
	return present.Len()
}

// ClassCountsInto tallies the instance's per-class event counts into the
// caller-provided counts slice (len >= NumClasses, zeroed on entry for every
// class the instance can touch) and appends each first-seen class id to
// touched, returning the extended touched list. Callers reuse one counts
// slice across instances by re-zeroing only the touched entries — this is
// the allocation-free replacement for the former map-returning ClassCounts
// on the per-class cardinality hot path.
//
//gecco:hotpath
func ClassCountsInto(x *eventlog.Index, inst *Instance, counts []int, touched []int) []int {
	seq := x.Seq(inst.Trace)
	for _, pos := range inst.Positions {
		c := int(seq[pos])
		if counts[c] == 0 {
			touched = append(touched, c)
		}
		counts[c]++
	}
	return touched
}

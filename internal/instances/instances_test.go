package instances

import (
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

func indexed(t *testing.T) *eventlog.Index {
	t.Helper()
	return eventlog.NewIndex(procgen.RunningExampleTable1())
}

func group(x *eventlog.Index, names ...string) bitset.Set {
	g, unknown := x.GroupFromNames(names)
	if len(unknown) > 0 {
		panic("unknown classes in test group")
	}
	return g
}

// §IV-A: inst(σ1, g_clrk1) = {⟨rcp, ckc⟩}.
func TestSingleInstancePerTrace(t *testing.T) {
	x := indexed(t)
	g := group(x, procgen.RCP, procgen.CKC, procgen.CKT)
	insts := OfTrace(x, 0, g, SplitOnRepeat)
	if len(insts) != 1 {
		t.Fatalf("got %d instances, want 1", len(insts))
	}
	if got := insts[0].Positions; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("positions %v, want [0 1]", got)
	}
}

// §IV-A: inst(σ4, g_clrk1) = {⟨rcp, ckc⟩, ⟨rcp, ckt⟩} via repeat splitting.
func TestSplitOnRepeatSigma4(t *testing.T) {
	x := indexed(t)
	g := group(x, procgen.RCP, procgen.CKC, procgen.CKT)
	insts := OfTrace(x, 3, g, SplitOnRepeat)
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want 2", len(insts))
	}
	first, second := insts[0], insts[1]
	if first.Positions[0] != 0 || first.Positions[1] != 1 {
		t.Errorf("first instance positions %v, want [0 1]", first.Positions)
	}
	if second.Positions[0] != 3 || second.Positions[1] != 4 {
		t.Errorf("second instance positions %v, want [3 4]", second.Positions)
	}
}

func TestWholeTracePolicy(t *testing.T) {
	x := indexed(t)
	g := group(x, procgen.RCP, procgen.CKC, procgen.CKT)
	insts := OfTrace(x, 3, g, WholeTrace)
	if len(insts) != 1 {
		t.Fatalf("got %d instances, want 1", len(insts))
	}
	if len(insts[0].Positions) != 4 {
		t.Fatalf("got %d events, want 4", len(insts[0].Positions))
	}
}

func TestNoInstanceForAbsentGroup(t *testing.T) {
	x := indexed(t)
	g := group(x, procgen.REJ)
	if insts := OfTrace(x, 0, g, SplitOnRepeat); len(insts) != 0 {
		t.Fatalf("σ1 has no rej, got %d instances", len(insts))
	}
}

// Paper example: in ⟨a,b,c,d,e⟩, grouping a and e yields 3 interruptions.
func TestInterrupts(t *testing.T) {
	log := &eventlog.Log{Traces: []eventlog.Trace{{ID: "t", Events: []eventlog.Event{
		{Class: "a"}, {Class: "b"}, {Class: "c"}, {Class: "d"}, {Class: "e"},
	}}}}
	x := eventlog.NewIndex(log)
	g := group(x, "a", "e")
	insts := OfTrace(x, 0, g, SplitOnRepeat)
	if len(insts) != 1 {
		t.Fatalf("got %d instances", len(insts))
	}
	if got := Interrupts(&insts[0]); got != 3 {
		t.Fatalf("Interrupts = %d, want 3", got)
	}
}

func TestMissing(t *testing.T) {
	x := indexed(t)
	g := group(x, procgen.RCP, procgen.CKC, procgen.CKT)
	insts := OfTrace(x, 0, g, SplitOnRepeat) // ⟨rcp, ckc⟩: ckt missing
	if got := Missing(x, &insts[0], g); got != 1 {
		t.Fatalf("Missing = %d, want 1", got)
	}
}

func TestOfLogCountsAllInstances(t *testing.T) {
	x := indexed(t)
	g := group(x, procgen.RCP, procgen.CKC, procgen.CKT)
	insts := OfLog(x, g, SplitOnRepeat)
	// σ1, σ2, σ3 contribute one instance each; σ4 two.
	if len(insts) != 5 {
		t.Fatalf("got %d instances, want 5", len(insts))
	}
}

func TestClassCountsInto(t *testing.T) {
	x := indexed(t)
	g := group(x, procgen.RCP, procgen.CKC, procgen.CKT)
	insts := OfTrace(x, 3, g, WholeTrace)
	counts := make([]int, x.NumClasses())
	touched := ClassCountsInto(x, &insts[0], counts, nil)
	if counts[x.ClassID[procgen.RCP]] != 2 {
		t.Errorf("rcp count = %d, want 2", counts[x.ClassID[procgen.RCP]])
	}
	if counts[x.ClassID[procgen.CKC]] != 1 {
		t.Errorf("ckc count = %d, want 1", counts[x.ClassID[procgen.CKC]])
	}
	// touched lists exactly the classes occurring in the instance, once each.
	want := map[int]bool{
		x.ClassID[procgen.RCP]: true,
		x.ClassID[procgen.CKC]: true,
		x.ClassID[procgen.CKT]: true,
	}
	if len(touched) != len(want) {
		t.Fatalf("touched = %v, want the %d distinct classes", touched, len(want))
	}
	for _, c := range touched {
		if !want[c] {
			t.Errorf("touched contains unexpected class %d", c)
		}
	}
}

// Invariant: instances partition the projected positions, in order, and
// each instance is class-unique under SplitOnRepeat.
func TestSplitInvariantsOnSimulatedLog(t *testing.T) {
	log := procgen.RunningExample(200, 7)
	x := eventlog.NewIndex(log)
	g := group(x, procgen.RCP, procgen.CKC, procgen.CKT, procgen.PRIO)
	for tr := 0; tr < x.NumTraces(); tr++ {
		insts := OfTrace(x, tr, g, SplitOnRepeat)
		var all []int
		for i := range insts {
			seen := map[int]bool{}
			for _, pos := range insts[i].Positions {
				c := int(x.Seq(tr)[pos])
				if seen[c] {
					t.Fatalf("trace %d: class %d repeats within instance", tr, c)
				}
				seen[c] = true
				all = append(all, pos)
			}
		}
		// Verify the concatenation equals the projection.
		want := 0
		for pos, c := range x.Seq(tr) {
			if g.Contains(int(c)) {
				if want >= len(all) || all[want] != pos {
					t.Fatalf("trace %d: projected position %d missing from instances", tr, pos)
				}
				want++
			}
		}
		if want != len(all) {
			t.Fatalf("trace %d: instance positions exceed projection", tr)
		}
	}
}

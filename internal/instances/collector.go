package instances

import (
	"gecco/internal/bitset"
	"gecco/internal/eventlog"
)

// Collector materialises group instances into reusable storage. OfLog
// allocates a fresh position slice per instance — profiled as the dominant
// cost of constraint checking (slice growth plus GC pressure) — whereas a
// Collector keeps one flat position arena, one descriptor list, and one
// class scratch bitset across calls, so a steady-state Collect performs no
// allocation at all.
//
// The returned instances and their Positions slices alias the Collector's
// arena: they are valid only until the next Collect call and must not be
// retained. A Collector is not safe for concurrent use; callers pool them
// per goroutine (see constraints.Evaluator).
type Collector struct {
	nClasses int
	nTraces  int

	pos  []int // flat position arena, filled per Collect
	segs []seg // instance descriptors into pos
	out  []Instance

	seen     bitset.Set // classes of the instance under construction
	seenList []int
	anyTr    bitset.Set // merged trace mask scratch
}

type seg struct{ trace, start, end int }

// NewCollector returns a Collector sized for the index.
func NewCollector(x *eventlog.Index) *Collector {
	return &Collector{
		nClasses: x.NumClasses(),
		nTraces:  x.NumTraces(),
		seen:     bitset.New(x.NumClasses()),
		anyTr:    bitset.New(x.NumTraces()),
	}
}

// Collect returns the instances of g across the log, equivalent to
// OfLog(x, g, p) but backed by the Collector's reusable buffers. The result
// is invalidated by the next Collect.
//
//gecco:hotpath
func (co *Collector) Collect(x *eventlog.Index, g bitset.Set, p Policy) []Instance {
	co.pos = co.pos[:0]
	co.segs = co.segs[:0]

	// Traces holding at least one class of g, merged in place — no AnyTraces
	// allocation.
	co.anyTr.Clear()
	g.ForEach(func(c int) bool {
		co.anyTr.OrInto(x.ClassTraces[c])
		return true
	})

	co.anyTr.ForEach(func(t int) bool {
		seq := x.Seq(t)
		start := len(co.pos)
		for pos, cid := range seq {
			c := int(cid)
			if !g.Contains(c) {
				continue
			}
			if p == SplitOnRepeat {
				if co.seen.Contains(c) {
					// Class repeats: close the instance under construction.
					if len(co.pos) > start {
						co.segs = append(co.segs, seg{t, start, len(co.pos)})
						start = len(co.pos)
					}
					for _, sc := range co.seenList {
						co.seen.Remove(sc)
					}
					co.seenList = co.seenList[:0]
				}
				co.seen.Add(c)
				co.seenList = append(co.seenList, c)
			}
			co.pos = append(co.pos, pos)
		}
		if len(co.pos) > start {
			co.segs = append(co.segs, seg{t, start, len(co.pos)})
		}
		for _, sc := range co.seenList {
			co.seen.Remove(sc)
		}
		co.seenList = co.seenList[:0]
		return true
	})

	// The arena is final: descriptor views are stable subslices now.
	co.out = co.out[:0]
	for _, s := range co.segs {
		co.out = append(co.out, Instance{Trace: s.trace, Positions: co.pos[s.start:s.end]})
	}
	return co.out
}

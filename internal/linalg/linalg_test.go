package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.Data, vals)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-12 {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
	if _, err := b.Mul(b); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	v, err := a.MulVec([]float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 17 || v[1] != 39 {
		t.Fatalf("v = %v", v)
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{2, 1, 1, 2})
	e, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-1) > 1e-9 || math.Abs(e.Values[1]-3) > 1e-9 {
		t.Fatalf("values = %v, want [1 3]", e.Values)
	}
}

func TestEigenRejectsNonSymmetric(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	if _, err := EigenSym(m); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
}

// Property: A·v = λ·v for every eigenpair of random symmetric matrices, and
// eigenvalues are ascending.
func TestEigenResidualRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		e, err := EigenSym(m)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if j > 0 && e.Values[j] < e.Values[j-1]-1e-9 {
				t.Fatalf("eigenvalues not ascending: %v", e.Values)
			}
			vec := make([]float64, n)
			for i := 0; i < n; i++ {
				vec[i] = e.Vectors.At(i, j)
			}
			av, _ := m.MulVec(vec)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-e.Values[j]*vec[i]) > 1e-6 {
					t.Fatalf("trial %d: residual %g at (%d,%d)", trial, av[i]-e.Values[j]*vec[i], i, j)
				}
			}
		}
		// Trace preservation: sum of eigenvalues equals matrix trace.
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += m.At(i, i)
			sum += e.Values[i]
		}
		if math.Abs(trace-sum) > 1e-8 {
			t.Fatalf("trace %f != eigenvalue sum %f", trace, sum)
		}
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	// Two tight clusters far apart.
	pts := NewMatrix(6, 1)
	copy(pts.Data, []float64{0, 0.1, 0.2, 10, 10.1, 10.2})
	assign := KMeans(pts, 2, 42)
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("first cluster split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Fatalf("second cluster split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Fatalf("clusters merged: %v", assign)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := NewMatrix(20, 2)
	for i := range pts.Data {
		pts.Data[i] = rng.Float64()
	}
	a := KMeans(pts, 4, 7)
	b := KMeans(pts, 4, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

// Property: every requested cluster count is respected (assignments within
// range) and all points are assigned.
func TestQuickKMeansAssignmentsInRange(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		pts := NewMatrix(n, 2)
		copy(pts.Data, raw[:n*2])
		for i := range pts.Data {
			if math.IsNaN(pts.Data[i]) || math.IsInf(pts.Data[i], 0) {
				return true
			}
		}
		k := 1 + int(kRaw)%3
		assign := KMeans(pts, k, 11)
		if len(assign) != n {
			return false
		}
		for _, a := range assign {
			if a < 0 || a >= max(k, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package linalg provides the dense linear algebra needed by the spectral
// graph-partitioning baseline (BL_P, §VI-A): matrices, a Jacobi eigensolver
// for symmetric matrices, and k-means clustering with deterministic
// k-means++ seeding. It replaces the paper's use of SciPy.
package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Mul returns m × other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("linalg: shape mismatch (%dx%d)×(%dx%d)", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns m × v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("linalg: shape mismatch (%dx%d)×(%d)", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// EigenResult holds an eigendecomposition, eigenvalues ascending.
type EigenResult struct {
	Values  []float64
	Vectors *Matrix // column j is the eigenvector for Values[j]
}

// EigenSym computes all eigenvalues and eigenvectors of a symmetric matrix
// with the cyclic Jacobi rotation method. It returns an error for
// non-square or non-symmetric input.
func EigenSym(m *Matrix) (*EigenResult, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: eigen of non-square %dx%d", m.Rows, m.Cols)
	}
	if !m.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("linalg: eigen of non-symmetric matrix")
	}
	n := m.Rows
	a := m.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q of a.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate rotations into v.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	// Extract and sort eigenpairs ascending.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{a.At(i, i), i}
	}
	for i := 1; i < n; i++ { // insertion sort; n is small
		for j := i; j > 0 && pairs[j].val < pairs[j-1].val; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	res := &EigenResult{Values: make([]float64, n), Vectors: NewMatrix(n, n)}
	for j, p := range pairs {
		res.Values[j] = p.val
		for i := 0; i < n; i++ {
			res.Vectors.Set(i, j, v.At(i, p.col))
		}
	}
	return res, nil
}

// KMeans clusters the rows of points into k clusters and returns a cluster
// index per row. Seeding is k-means++ with the given deterministic seed.
func KMeans(points *Matrix, k int, seed int64) []int {
	n, d := points.Rows, points.Cols
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i % max(k, 1)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	row := func(i int) []float64 { return points.Data[i*d : (i+1)*d] }
	dist2 := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			diff := a[i] - b[i]
			s += diff * diff
		}
		return s
	}
	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), row(rng.Intn(n))...))
	minD := make([]float64, n)
	for len(centers) < k {
		total := 0.0
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for _, c := range centers {
				if d2 := dist2(row(i), c); d2 < best {
					best = d2
				}
			}
			minD[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centers; duplicate any point.
			centers = append(centers, append([]float64(nil), row(rng.Intn(n))...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i := 0; i < n; i++ {
			r -= minD[i]
			if r <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), row(idx)...))
	}
	assign := make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centers {
				if d2 := dist2(row(i), c); d2 < bestD {
					bestD = d2
					best = ci
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers; empty clusters grab the farthest point.
		counts := make([]int, k)
		for ci := range centers {
			for j := range centers[ci] {
				centers[ci][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			counts[assign[i]]++
			for j, v := range row(i) {
				centers[assign[i]][j] += v
			}
		}
		for ci := range centers {
			if counts[ci] == 0 {
				copy(centers[ci], row(rng.Intn(n)))
				continue
			}
			for j := range centers[ci] {
				centers[ci][j] /= float64(counts[ci])
			}
		}
	}
	return assign
}

// Package csvlog reads and writes event logs as CSV, the other common
// interchange format for process-mining data. The expected shape is one
// event per row with at least a case-id column and an activity (class)
// column; additional columns become event attributes. Column types are
// inferred per column: RFC 3339 timestamps, numbers, booleans, else strings.
package csvlog

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"gecco/internal/eventlog"
)

// Options configures CSV import.
type Options struct {
	CaseColumn     string // default "case"
	ActivityColumn string // default "activity"
	TimeColumn     string // default "time"; parsed as the event timestamp
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.CaseColumn == "" {
		out.CaseColumn = "case"
	}
	if out.ActivityColumn == "" {
		out.ActivityColumn = "activity"
	}
	if out.TimeColumn == "" {
		out.TimeColumn = "time"
	}
	return out
}

// attrKV is one parsed attribute of a CSV row.
type attrKV struct {
	name string
	v    eventlog.Value
}

// row is one parsed event row, grouped by case before emission.
type row struct {
	class string
	attrs []attrKV
}

// readRows parses the CSV body into per-case event rows, preserving row
// order within each case and first-appearance order across cases.
func readRows(r io.Reader, opts Options) (caseOrder []string, byCase map[string][]row, err error) {
	opts = opts.withDefaults()
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("csvlog: read header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[h] = i
	}
	caseIdx, ok := col[opts.CaseColumn]
	if !ok {
		return nil, nil, fmt.Errorf("csvlog: missing case column %q", opts.CaseColumn)
	}
	actIdx, ok := col[opts.ActivityColumn]
	if !ok {
		return nil, nil, fmt.Errorf("csvlog: missing activity column %q", opts.ActivityColumn)
	}

	byCase = make(map[string][]row)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("csvlog: line %d: %w", line, err)
		}
		if caseIdx >= len(rec) || actIdx >= len(rec) {
			return nil, nil, fmt.Errorf("csvlog: line %d: too few fields", line)
		}
		caseID := rec[caseIdx]
		ev := row{class: rec[actIdx]}
		for i, h := range header {
			if i == caseIdx || i == actIdx || i >= len(rec) || rec[i] == "" {
				continue
			}
			name := h
			if h == opts.TimeColumn {
				name = eventlog.AttrTimestamp
			}
			ev.attrs = append(ev.attrs, attrKV{name: name, v: inferValue(rec[i])})
		}
		if _, seen := byCase[caseID]; !seen {
			caseOrder = append(caseOrder, caseID)
		}
		byCase[caseID] = append(byCase[caseID], ev)
	}
	return caseOrder, byCase, nil
}

// Read parses CSV event data into a Log. Rows are grouped into traces by the
// case column, preserving row order within each case.
func Read(r io.Reader, opts Options) (*eventlog.Log, error) {
	caseOrder, byCase, err := readRows(r, opts)
	if err != nil {
		return nil, err
	}
	log := &eventlog.Log{}
	for _, id := range caseOrder {
		rows := byCase[id]
		tr := eventlog.Trace{ID: id, Events: make([]eventlog.Event, len(rows))}
		for i, rw := range rows {
			tr.Events[i].Class = rw.class
			for _, a := range rw.attrs {
				tr.Events[i].SetAttr(a.name, a.v)
			}
		}
		log.Traces = append(log.Traces, tr)
	}
	return log, nil
}

// ReadIndex parses CSV event data straight into a columnar eventlog.Index,
// feeding an eventlog.Builder trace by trace (rows are buffered per case
// first, since CSV rows of different cases may interleave). The result is
// identical to eventlog.NewIndex(Read(r, opts)) without the intermediate
// *Log's per-event attribute maps.
func ReadIndex(r io.Reader, opts Options) (*eventlog.Index, error) {
	caseOrder, byCase, err := readRows(r, opts)
	if err != nil {
		return nil, err
	}
	b := eventlog.NewBuilder()
	for _, id := range caseOrder {
		b.StartTrace(id)
		for _, rw := range byCase[id] {
			b.AddEvent(rw.class)
			for _, a := range rw.attrs {
				b.SetEventAttr(a.name, a.v)
			}
		}
	}
	return b.Build(), nil
}

func inferValue(s string) eventlog.Value {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return eventlog.Time(t)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return eventlog.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return eventlog.Float(f)
	}
	if s == "true" || s == "false" {
		return eventlog.Bool(s == "true")
	}
	return eventlog.String(s)
}

// Write serialises the log as CSV with columns case, activity, followed by
// the union of attribute names in sorted order.
func Write(w io.Writer, log *eventlog.Log) error {
	attrSet := make(map[string]struct{})
	for i := range log.Traces {
		for j := range log.Traces[i].Events {
			for k := range log.Traces[i].Events[j].Attrs {
				attrSet[k] = struct{}{}
			}
		}
	}
	attrs := make([]string, 0, len(attrSet))
	for k := range attrSet {
		attrs = append(attrs, k)
	}
	sort.Strings(attrs)

	cw := csv.NewWriter(w)
	header := append([]string{"case", "activity"}, attrs...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := range log.Traces {
		tr := &log.Traces[i]
		for j := range tr.Events {
			ev := &tr.Events[j]
			row[0], row[1] = tr.ID, ev.Class
			for k, a := range attrs {
				if v, ok := ev.Attrs[a]; ok {
					row[2+k] = formatValue(v)
				} else {
					row[2+k] = ""
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatValue(v eventlog.Value) string {
	switch v.Kind {
	case eventlog.KindTime:
		return v.Time.Format(time.RFC3339)
	default:
		return v.AsString()
	}
}

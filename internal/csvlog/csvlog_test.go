package csvlog

import (
	"bytes"
	"strings"
	"testing"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

const sampleCSV = `case,activity,time,role,cost
c1,register,2021-06-01T08:00:00Z,clerk,12.5
c1,approve,2021-06-01T09:00:00Z,manager,3
c2,register,2021-06-01T10:00:00Z,clerk,7
`

func TestReadSample(t *testing.T) {
	log, err := Read(strings.NewReader(sampleCSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(log.Traces))
	}
	if log.Traces[0].ID != "c1" || len(log.Traces[0].Events) != 2 {
		t.Fatalf("trace 0 = %+v", log.Traces[0])
	}
	ev := &log.Traces[0].Events[0]
	if ev.Class != "register" {
		t.Errorf("class = %q", ev.Class)
	}
	if _, ok := ev.Timestamp(); !ok {
		t.Error("time column not mapped to timestamp")
	}
	if v := ev.Attrs["cost"]; !v.IsNumeric() || v.Num != 12.5 {
		t.Errorf("cost = %+v", v)
	}
	if v := ev.Attrs["role"]; v.Str != "clerk" {
		t.Errorf("role = %+v", v)
	}
}

func TestCustomColumns(t *testing.T) {
	src := "id,act\n1,a\n1,b\n"
	log, err := Read(strings.NewReader(src), Options{CaseColumn: "id", ActivityColumn: "act"})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Traces) != 1 || log.Traces[0].Variant() != "a,b" {
		t.Fatalf("log = %+v", log)
	}
}

func TestMissingColumns(t *testing.T) {
	if _, err := Read(strings.NewReader("x,y\n1,2\n"), Options{}); err == nil {
		t.Fatal("expected error for missing case column")
	}
	if _, err := Read(strings.NewReader("case,y\n1,2\n"), Options{}); err == nil {
		t.Fatal("expected error for missing activity column")
	}
}

func TestRoundTrip(t *testing.T) {
	orig := procgen.RunningExampleTable1()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != len(orig.Traces) {
		t.Fatalf("trace count %d != %d", len(back.Traces), len(orig.Traces))
	}
	for i := range orig.Traces {
		if orig.Traces[i].Variant() != back.Traces[i].Variant() {
			t.Fatalf("trace %d variant mismatch", i)
		}
	}
	// Spot-check attribute fidelity.
	ov := orig.Traces[0].Events[0].Attrs[eventlog.AttrCost]
	bv := back.Traces[0].Events[0].Attrs[eventlog.AttrCost]
	if ov.Num != bv.Num {
		t.Fatalf("cost %f != %f", bv.Num, ov.Num)
	}
	if _, ok := back.Traces[0].Events[0].Timestamp(); !ok {
		t.Fatal("timestamp lost in round trip")
	}
}

func TestTypeInference(t *testing.T) {
	src := "case,activity,n,f,b,s\n1,a,42,1.5,true,hello\n"
	log, err := Read(strings.NewReader(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	at := log.Traces[0].Events[0].Attrs
	if at["n"].Kind != eventlog.KindInt {
		t.Errorf("n kind = %v", at["n"].Kind)
	}
	if at["f"].Kind != eventlog.KindFloat {
		t.Errorf("f kind = %v", at["f"].Kind)
	}
	if at["b"].Kind != eventlog.KindBool {
		t.Errorf("b kind = %v", at["b"].Kind)
	}
	if at["s"].Kind != eventlog.KindString {
		t.Errorf("s kind = %v", at["s"].Kind)
	}
}

func TestEmptyValuesSkipped(t *testing.T) {
	src := "case,activity,role\n1,a,\n"
	log, err := Read(strings.NewReader(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := log.Traces[0].Events[0].Attrs["role"]; ok {
		t.Fatal("empty cell should not create an attribute")
	}
}

// TestReadIndexMatchesRead pins the loader-direct path: building the
// columnar index straight from CSV rows must equal indexing the parsed Log,
// including interleaved case rows.
func TestReadIndexMatchesRead(t *testing.T) {
	const doc = `case,activity,time,amount,flag
c1,a,2021-06-01T08:00:00Z,5,true
c2,a,2021-06-01T08:05:00Z,,false
c1,b,2021-06-01T08:10:00Z,7.5,
c2,c,2021-06-01T08:15:00Z,x,true`
	log, err := Read(strings.NewReader(doc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ReadIndex(strings.NewReader(doc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaLog := eventlog.NewIndex(log)
	if direct.NumTraces() != 2 || direct.NumEvents() != 4 ||
		direct.NumClasses() != viaLog.NumClasses() {
		t.Fatalf("shape: traces=%d events=%d classes=%d", direct.NumTraces(), direct.NumEvents(), direct.NumClasses())
	}
	var a, b bytes.Buffer
	if err := Write(&a, direct.ReconstructLog()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, log); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("reconstruction differs:\n%s\nvs\n%s", a.String(), b.String())
	}
}

package discovery

import (
	"context"
	"testing"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

// discover runs Discover under a background context, failing the test on
// error (an uncancelled discovery cannot fail).
func discover(t *testing.T, x *eventlog.Index, opts Options) *Model {
	t.Helper()
	m, err := Discover(context.Background(), x, opts)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	return m
}

func mkLog(seqs [][]string) *eventlog.Log {
	log := &eventlog.Log{}
	for i, seq := range seqs {
		tr := eventlog.Trace{ID: string(rune('a' + i))}
		for _, c := range seq {
			tr.Events = append(tr.Events, eventlog.Event{Class: c})
		}
		log.Traces = append(log.Traces, tr)
	}
	return log
}

func TestSelfLoopDetection(t *testing.T) {
	log := mkLog([][]string{{"a", "b", "b", "c"}})
	m := discover(t, eventlog.NewIndex(log), Options{})
	x := eventlog.NewIndex(log)
	if !m.SelfLoop[x.ClassID["b"]] {
		t.Error("self-loop on b not detected")
	}
	if m.SelfLoop[x.ClassID["a"]] {
		t.Error("spurious self-loop on a")
	}
	// Self-loop edge is removed from the gateway graph.
	if m.Graph.Has(x.ClassID["b"], x.ClassID["b"]) {
		t.Error("self-loop edge retained in filtered graph")
	}
}

func TestConcurrencyDetection(t *testing.T) {
	// b and c interleave evenly: concurrent. b and d alternate strictly in
	// one direction: not concurrent.
	log := mkLog([][]string{
		{"a", "b", "c", "d"},
		{"a", "c", "b", "d"},
		{"a", "b", "c", "d"},
		{"a", "c", "b", "d"},
	})
	x := eventlog.NewIndex(log)
	m := discover(t, x, Options{})
	b, c := x.ClassID["b"], x.ClassID["c"]
	key := [2]int{min(b, c), max(b, c)}
	if !m.Concurrent[key] {
		t.Error("balanced interleaving not detected as concurrency")
	}
	a, d := x.ClassID["a"], x.ClassID["d"]
	if m.Concurrent[[2]int{min(a, d), max(a, d)}] {
		t.Error("non-adjacent classes marked concurrent")
	}
}

func TestXorSplitCFC(t *testing.T) {
	// a splits exclusively into b or c: XOR split of 2 → CFC contribution 2.
	log := mkLog([][]string{
		{"a", "b", "d"},
		{"a", "c", "d"},
	})
	m := discover(t, eventlog.NewIndex(log), Options{})
	cfc := m.CFC()
	// a: XOR split (2 branches) = 2; d has XOR join (no split);
	// start is unique; total 2... b,c → d joins contribute no split.
	if cfc != 2 {
		t.Fatalf("CFC = %f, want 2", cfc)
	}
}

func TestAndSplitCFC(t *testing.T) {
	// a splits into concurrent b and c, both to d: AND split = 1.
	log := mkLog([][]string{
		{"a", "b", "c", "d"},
		{"a", "c", "b", "d"},
	})
	m := discover(t, eventlog.NewIndex(log), Options{})
	if cfc := m.CFC(); cfc != 1 {
		t.Fatalf("CFC = %f, want 1 (single AND split)", cfc)
	}
}

func TestSequenceHasZeroCFC(t *testing.T) {
	log := mkLog([][]string{{"a", "b", "c", "d"}})
	m := discover(t, eventlog.NewIndex(log), Options{})
	if cfc := m.CFC(); cfc != 0 {
		t.Fatalf("CFC = %f, want 0 for a pure sequence", cfc)
	}
}

func TestAbstractionReducesComplexity(t *testing.T) {
	// The motivating claim: abstracting the running example reduces CFC.
	log := procgen.RunningExample(300, 29)
	orig := discover(t, eventlog.NewIndex(log), Options{})
	if orig.CFC() <= 0 {
		t.Fatal("original log should have positive complexity")
	}
	// Simulate Figure 3's abstraction: map classes to group labels and
	// collapse consecutive repeats (≈ completion-only instances).
	label := map[string]string{
		procgen.RCP: "clrk1", procgen.CKC: "clrk1", procgen.CKT: "clrk1",
		procgen.ACC: procgen.ACC, procgen.REJ: procgen.REJ,
		procgen.PRIO: "clrk2", procgen.INF: "clrk2", procgen.ARV: "clrk2",
	}
	abstracted := &eventlog.Log{}
	for _, tr := range log.Traces {
		at := eventlog.Trace{ID: tr.ID}
		prev := ""
		for _, ev := range tr.Events {
			l := label[ev.Class]
			if l != prev {
				at.Events = append(at.Events, eventlog.Event{Class: l})
				prev = l
			}
		}
		abstracted.Traces = append(abstracted.Traces, at)
	}
	abs := discover(t, eventlog.NewIndex(abstracted), Options{})
	if abs.CFC() >= orig.CFC() {
		t.Fatalf("abstraction did not reduce CFC: %f -> %f", orig.CFC(), abs.CFC())
	}
}

func TestSizeCountsGateways(t *testing.T) {
	log := mkLog([][]string{
		{"a", "b", "d"},
		{"a", "c", "d"},
	})
	m := discover(t, eventlog.NewIndex(log), Options{})
	// 4 activities + 1 XOR split at a + 1 XOR join at d.
	if s := m.Size(); s != 6 {
		t.Fatalf("Size = %d, want 6", s)
	}
}

func TestEdgeFilterReducesEdges(t *testing.T) {
	log := procgen.RunningExample(400, 31)
	x := eventlog.NewIndex(log)
	all := discover(t, x, Options{EdgeFilter: 1})
	some := discover(t, x, Options{EdgeFilter: 0.5})
	if some.Graph.NumEdges() > all.Graph.NumEdges() {
		t.Fatal("stronger filter kept more edges")
	}
}

// Package discovery implements a simplified Split-Miner-style process
// discovery used to score abstraction quality: the paper's "C. red." metric
// (Tables V–VII) compares the control-flow complexity (CFC) of models
// discovered from the original and the abstracted log. The pipeline follows
// Split Miner's stages — DFG construction, self-loop and short-loop
// detection, concurrency detection, frequency-based edge filtering, and
// split-gateway synthesis — and computes the established CFC measure on the
// result. Absolute model quality is not the point; the complexity *ratio*
// between original and abstracted logs is robust to the simplifications.
package discovery

import (
	"context"
	"fmt"

	"gecco/internal/dfg"
	"gecco/internal/eventlog"
)

// Options tunes discovery.
type Options struct {
	// EdgeFilter is the cumulative frequency fraction of DFG edges kept
	// (Split Miner's percentile filter); 0 means the default 0.8.
	EdgeFilter float64
	// Epsilon is the balance threshold for concurrency detection: a↔b with
	// |f(a,b)-f(b,a)| / (f(a,b)+f(b,a)) < 1-Epsilon counts as concurrent;
	// 0 means the default 0.7.
	Epsilon float64
}

func (o Options) withDefaults() Options {
	if o.EdgeFilter == 0 {
		o.EdgeFilter = 0.8
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.7
	}
	return o
}

// Model is a discovered process model in gateway-annotated DFG form.
type Model struct {
	Labels     []string
	Graph      *dfg.Graph
	SelfLoop   []bool
	Concurrent map[[2]int]bool // canonical ordering a < b
	// Splits[v] are the XOR branch groups of v's outgoing edges; each
	// group of size > 1 is an AND split nested under the XOR.
	Splits [][][]int
	// Joins[v] mirrors Splits for incoming edges.
	Joins [][][]int
	// StartClasses are the classes that begin traces (after filtering).
	StartClasses []int
	EndClasses   []int
}

// Discover runs the pipeline on an indexed log. Cancelling ctx between
// stages returns an error wrapping ctx.Err(); a never-cancelled context
// leaves the model byte-identical at any point of interruption-free history.
func Discover(ctx context.Context, x *eventlog.Index, opts Options) (*Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	opts = opts.withDefaults()
	full := dfg.Build(x)

	m := &Model{
		Labels:     full.Labels,
		SelfLoop:   make([]bool, full.N),
		Concurrent: make(map[[2]int]bool),
	}
	// Stage 1: self-loops.
	for v := 0; v < full.N; v++ {
		if full.Has(v, v) {
			m.SelfLoop[v] = true
		}
	}
	// Stage 2: short loops (a→b→a with strong asymmetry) vs concurrency.
	detectConcurrency(m, full, opts.Epsilon)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	// Stage 3: prune self-loops (treated as activity annotations) and
	// edges between concurrent pairs (interleaving artifacts, as in Split
	// Miner), then apply the frequency filter.
	pruned := cloneWithoutSelfLoops(full)
	for key := range m.Concurrent {
		pruned = dropEdgePair(pruned, key[0], key[1])
	}
	m.Graph = pruned.FilterTopEdges(opts.EdgeFilter)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	// Stage 4: gateway synthesis.
	m.Splits = make([][][]int, m.Graph.N)
	m.Joins = make([][][]int, m.Graph.N)
	for v := 0; v < m.Graph.N; v++ {
		m.Splits[v] = groupBranches(m, m.Graph.Out(v))
		m.Joins[v] = groupBranches(m, m.Graph.In(v))
	}
	for v := 0; v < m.Graph.N; v++ {
		if m.Graph.StartFreq[v] > 0 {
			m.StartClasses = append(m.StartClasses, v)
		}
		if m.Graph.EndFreq[v] > 0 {
			m.EndClasses = append(m.EndClasses, v)
		}
	}
	return m, nil
}

// detectConcurrency fills m.Concurrent with the balanced a↔b pairs. The scan
// is quadratic in the number of classes and runs once per discovery, so it
// stays allocation-free over the frequency matrix.
//
//gecco:hotpath
func detectConcurrency(m *Model, full *dfg.Graph, epsilon float64) {
	for a := 0; a < full.N; a++ {
		for b := a + 1; b < full.N; b++ {
			fab, fba := full.Freq[a][b], full.Freq[b][a]
			if fab == 0 || fba == 0 {
				continue
			}
			balance := 1 - absInt(fab-fba)/float64(fab+fba)
			if balance >= epsilon {
				m.Concurrent[[2]int{a, b}] = true
			}
		}
	}
}

func absInt(x int) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}

func dropEdgePair(g *dfg.Graph, a, b int) *dfg.Graph {
	freq := make([][]int, g.N)
	for i := 0; i < g.N; i++ {
		freq[i] = append([]int(nil), g.Freq[i]...)
	}
	freq[a][b], freq[b][a] = 0, 0
	return dfg.FromFreq(g.Labels, freq, g.StartFreq, g.EndFreq)
}

func cloneWithoutSelfLoops(g *dfg.Graph) *dfg.Graph {
	freq := make([][]int, g.N)
	for a := 0; a < g.N; a++ {
		freq[a] = append([]int(nil), g.Freq[a]...)
		freq[a][a] = 0
	}
	return dfg.FromFreq(g.Labels, freq, g.StartFreq, g.EndFreq)
}

// groupBranches partitions branch targets into AND groups: targets that are
// pairwise concurrent share a group; the groups are alternatives (XOR).
func groupBranches(m *Model, targets []int) [][]int {
	if len(targets) == 0 {
		return nil
	}
	parent := make(map[int]int, len(targets))
	var find func(int) int
	find = func(v int) int {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	for _, t := range targets {
		parent[t] = t
	}
	for i, a := range targets {
		for _, b := range targets[i+1:] {
			key := [2]int{min(a, b), max(a, b)}
			if m.Concurrent[key] {
				parent[find(a)] = find(b)
			}
		}
	}
	groups := make(map[int][]int)
	for _, t := range targets {
		r := find(t)
		groups[r] = append(groups[r], t)
	}
	out := make([][]int, 0, len(groups))
	// Deterministic order: by smallest member.
	for _, t := range targets {
		if find(t) == t {
			out = append(out, groups[t])
		}
	}
	return out
}

// CFC returns the control-flow complexity of the model: each XOR split over
// n > 1 alternatives adds n, each AND split adds 1, plus an implicit XOR
// over multiple start classes. Self-loops each add 1 (a loop-back XOR).
func (m *Model) CFC() float64 {
	cfc := 0.0
	for v := 0; v < m.Graph.N; v++ {
		groups := m.Splits[v]
		if len(groups) > 1 {
			cfc += float64(len(groups)) // XOR split
		}
		for _, g := range groups {
			if len(g) > 1 {
				cfc++ // AND split
			}
		}
		if m.SelfLoop[v] {
			cfc++
		}
	}
	if len(m.StartClasses) > 1 {
		cfc += float64(len(m.StartClasses))
	}
	return cfc
}

// Size returns the number of model elements: activities plus synthesised
// split/join gateways (a coarse counterpart to model-size measures).
func (m *Model) Size() int {
	size := m.Graph.N
	for v := 0; v < m.Graph.N; v++ {
		if len(m.Splits[v]) > 1 {
			size++
		}
		for _, g := range m.Splits[v] {
			if len(g) > 1 {
				size++
			}
		}
		if len(m.Joins[v]) > 1 {
			size++
		}
		for _, g := range m.Joins[v] {
			if len(g) > 1 {
				size++
			}
		}
	}
	return size
}

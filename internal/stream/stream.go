// Package stream implements the third future-work direction of §VIII:
// lifting GECCO to online settings, where traces arrive one at a time and
// the grouping is dynamically adapted to new arrivals.
//
// The Abstractor maintains a sliding window of the most recent traces in a
// ring buffer, together with a reference-counted multiset of the window's
// directly-follows edges that is updated as traces enter and leave. The
// drift signal — the Jaccard distance between the window's current edge set
// and the edge set the grouping was computed on — is maintained from those
// edge deltas, so each arrival costs O(|trace|): ring-buffer insertion,
// edge refcount updates, an O(1) drift check, and the O(|trace|) rewrite of
// the arriving trace under the current grouping. The expensive grouping
// recomputation (a full GECCO run on the window) runs only when the drift
// signal fires or after RefreshEvery arrivals, i.e. amortised-rarely, which
// is what makes the approach online.
package stream

import (
	"context"
	"fmt"
	"sort"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// PipelineFunc runs one full GECCO pipeline over the current window. The
// Abstractor calls it on every regrouping; the default implementation
// builds a fresh core.Session per window. A serving layer can substitute a
// function that shares sessions and results across streams (identical
// windows — replayed streams, identical parallel streams — then skip the
// pipeline entirely).
type PipelineFunc func(ctx context.Context, window *eventlog.Log, set *constraints.Set, cfg core.Config) (*core.Result, error)

// Config tunes the online abstractor.
type Config struct {
	// WindowSize is the number of recent traces kept (default 200).
	WindowSize int
	// RefreshEvery forces a regrouping after this many arrivals even
	// without drift (default 100).
	RefreshEvery int
	// DriftThreshold is the Jaccard distance between the current DFG edge
	// set and the grouping-time edge set above which a regrouping fires.
	// Zero (the zero value) means maximally sensitive — any divergence
	// fires; a negative value disables drift detection entirely, leaving
	// only the RefreshEvery cadence. DefaultDriftThreshold is a reasonable
	// explicit choice.
	DriftThreshold float64
	// Pipeline is the configuration for the underlying GECCO runs; its
	// zero value uses DFG-based candidates, which suits repeated online
	// recomputation.
	Pipeline core.Config
	// RunPipeline overrides how regroupings execute the pipeline (nil uses
	// a fresh core.Session per window). See PipelineFunc.
	RunPipeline PipelineFunc
}

// DefaultDriftThreshold is the drift sensitivity used by the serving layer
// when a stream does not declare one. It is not applied by New: a zero
// Config.DriftThreshold deliberately means "fire on any drift".
const DefaultDriftThreshold = 0.25

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 200
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 100
	}
	return c
}

// edge is one directly-follows pair of event classes.
type edge = [2]string

// regroupReason records why a regrouping fired, so drift accounting cannot
// be polluted by refreshes or by retries after an infeasible solve.
type regroupReason int

const (
	regroupNone regroupReason = iota
	regroupInitial
	regroupRefresh
	regroupDrift
)

// Abstractor consumes traces and emits their abstracted counterparts under
// a grouping that adapts to the stream. It is not safe for concurrent use;
// callers pushing from multiple goroutines must serialise externally (the
// serving layer holds one mutex per named stream).
type Abstractor struct {
	cfg Config
	set *constraints.Set

	// ring is the sliding window: a fixed-capacity ring buffer. While the
	// window is filling, slots 0..count-1 hold the traces in arrival order;
	// once full, head is the oldest slot and is overwritten on arrival.
	ring  []eventlog.Trace
	head  int
	count int

	// edges is the reference-counted directly-follows edge multiset of the
	// window: the count is the number of adjacent occurrences across all
	// windowed traces, and an edge leaves the map when its count hits zero.
	edges map[edge]int

	// basis is the window's distinct edge set at the last regrouping.
	// inter and curOnly maintain the Jaccard comparison incrementally:
	// inter = |current ∩ basis|, curOnly = |current \ basis|, so the union
	// is len(basis) + curOnly and no per-arrival scan is needed.
	basis   map[edge]struct{}
	inter   int
	curOnly int

	groupingOK   bool
	names        []string       // activity name per group
	classToGroup map[string]int // event class -> index into names
	sinceRefresh int

	// Regroupings counts how often the grouping was recomputed.
	Regroupings int
	// Drifts counts regroupings triggered by the drift signal (refreshes
	// and post-infeasibility retries are not drifts).
	Drifts int
}

// New creates an online abstractor for the constraint set.
func New(set *constraints.Set, cfg Config) *Abstractor {
	cfg = cfg.withDefaults()
	if cfg.Pipeline.Mode == core.Exhaustive {
		cfg.Pipeline.Mode = core.DFGUnbounded
	}
	// The regrouping consumes only the grouping; the window's own
	// abstracted log would be discarded, so skip Step 3 entirely.
	cfg.Pipeline.GroupingOnly = true
	return &Abstractor{
		cfg:   cfg,
		set:   set,
		ring:  make([]eventlog.Trace, cfg.WindowSize),
		edges: make(map[edge]int),
	}
}

// WindowLen returns the number of traces currently in the window.
func (a *Abstractor) WindowLen() int { return a.count }

// Config returns the abstractor's effective configuration (defaults
// applied); it is immutable after New.
func (a *Abstractor) Config() Config { return a.cfg }

// DriftScore returns the current Jaccard distance between the window's edge
// set and the grouping-time edge set (0 before the first regrouping).
func (a *Abstractor) DriftScore() float64 {
	if a.basis == nil {
		return 0
	}
	union := len(a.basis) + a.curOnly
	if union == 0 {
		return 0
	}
	return 1 - float64(a.inter)/float64(union)
}

// Grouping returns the current grouping's class lists in group order, each
// list sorted, or nil before the first successful regrouping.
func (a *Abstractor) Grouping() [][]string {
	if !a.groupingOK {
		return nil
	}
	out := make([][]string, len(a.names))
	for c, g := range a.classToGroup {
		out[g] = append(out[g], c)
	}
	for _, classes := range out {
		sort.Strings(classes)
	}
	return out
}

// ActivityNames returns the current grouping's activity names in group
// order (aligned with Grouping), or nil before the first successful
// regrouping.
func (a *Abstractor) ActivityNames() []string {
	if !a.groupingOK {
		return nil
	}
	return append([]string(nil), a.names...)
}

// Push consumes one trace and returns its abstraction under the current
// grouping; it is PushContext under context.Background().
func (a *Abstractor) Push(tr eventlog.Trace) (eventlog.Trace, error) {
	//lint:gecco-allow(ctxflow): convenience wrapper; PushContext is the cancellable variant
	return a.PushContext(context.Background(), tr)
}

// PushContext consumes one trace and returns its abstraction under the
// current grouping. The first call (and every regrouping) runs the full
// pipeline on the window under ctx; all other arrivals cost O(|trace|).
func (a *Abstractor) PushContext(ctx context.Context, tr eventlog.Trace) (eventlog.Trace, error) {
	if a.count == len(a.ring) {
		a.removeEdges(a.ring[a.head])
		a.ring[a.head] = tr
		a.head++
		if a.head == len(a.ring) {
			a.head = 0
		}
	} else {
		a.ring[a.count] = tr
		a.count++
	}
	a.addEdges(tr)
	a.sinceRefresh++

	reason := regroupNone
	switch {
	case a.basis == nil:
		reason = regroupInitial
	case a.sinceRefresh >= a.cfg.RefreshEvery:
		reason = regroupRefresh
	case a.drifted():
		reason = regroupDrift
	}
	// An infeasible grouping does not retrigger the pipeline per arrival:
	// the abstractor backs off and passes traces through until the next
	// refresh or drift signal, when the window has genuinely changed.
	if reason != regroupNone {
		if err := a.regroup(ctx, reason); err != nil {
			return eventlog.Trace{}, err
		}
	}
	if !a.groupingOK {
		// No feasible grouping yet: pass the trace through unchanged, as
		// GECCO returns the original log in the offline setting.
		return tr, nil
	}
	return a.abstractOne(tr), nil
}

// addEdges adds the trace's directly-follows edges to the window multiset,
// updating the incremental Jaccard terms on 0→1 count transitions.
func (a *Abstractor) addEdges(tr eventlog.Trace) {
	ev := tr.Events
	for j := 1; j < len(ev); j++ {
		e := edge{ev[j-1].Class, ev[j].Class}
		n := a.edges[e]
		a.edges[e] = n + 1
		if n == 0 {
			if _, ok := a.basis[e]; ok {
				a.inter++
			} else {
				a.curOnly++
			}
		}
	}
}

// removeEdges removes an evicted trace's edges, updating the incremental
// Jaccard terms on 1→0 count transitions.
func (a *Abstractor) removeEdges(tr eventlog.Trace) {
	ev := tr.Events
	for j := 1; j < len(ev); j++ {
		e := edge{ev[j-1].Class, ev[j].Class}
		if n := a.edges[e]; n > 1 {
			a.edges[e] = n - 1
		} else {
			delete(a.edges, e)
			if _, ok := a.basis[e]; ok {
				a.inter--
			} else {
				a.curOnly--
			}
		}
	}
}

// drifted reports whether the maintained Jaccard distance exceeds the
// threshold; O(1) per check.
func (a *Abstractor) drifted() bool {
	if a.basis == nil || a.cfg.DriftThreshold < 0 {
		return false
	}
	return a.DriftScore() > a.cfg.DriftThreshold
}

// windowLog materialises the ring buffer as a log in arrival order
// (oldest first); O(window), paid only at regroupings.
func (a *Abstractor) windowLog() *eventlog.Log {
	traces := make([]eventlog.Trace, 0, a.count)
	if a.count < len(a.ring) {
		traces = append(traces, a.ring[:a.count]...)
	} else {
		traces = append(traces, a.ring[a.head:]...)
		traces = append(traces, a.ring[:a.head]...)
	}
	return &eventlog.Log{Name: "window", Traces: traces}
}

// runPipeline executes one GECCO run over the window, through the
// configured hook when present.
func (a *Abstractor) runPipeline(ctx context.Context, log *eventlog.Log) (*core.Result, error) {
	if a.cfg.RunPipeline != nil {
		return a.cfg.RunPipeline(ctx, log, a.set, a.cfg.Pipeline)
	}
	sess, err := core.NewSession(log)
	if err != nil {
		return nil, err
	}
	return sess.Solve(ctx, a.set, a.cfg.Pipeline)
}

func (a *Abstractor) regroup(ctx context.Context, reason regroupReason) error {
	res, err := a.runPipeline(ctx, a.windowLog())
	if err != nil {
		return fmt.Errorf("stream: regroup: %w", err)
	}
	a.Regroupings++
	if reason == regroupDrift {
		a.Drifts++
	}
	a.sinceRefresh = 0
	a.rebaseline()
	if !res.Feasible {
		a.groupingOK = false
		return nil
	}
	a.groupingOK = true
	a.names = res.Grouping.Names
	a.classToGroup = make(map[string]int)
	for gi, classes := range res.GroupClasses {
		for _, c := range classes {
			a.classToGroup[c] = gi
		}
	}
	return nil
}

// rebaseline snapshots the window's distinct edge set as the new drift
// basis and resets the incremental Jaccard terms (identical sets: the
// intersection is the whole basis, nothing is current-only).
func (a *Abstractor) rebaseline() {
	basis := make(map[edge]struct{}, len(a.edges))
	for e := range a.edges {
		basis[e] = struct{}{}
	}
	a.basis = basis
	a.inter = len(basis)
	a.curOnly = 0
}

// abstractOne rewrites a single trace with the current grouping using the
// completion-only strategy. Classes unseen at grouping time stay as-is
// (they will be regrouped on the next refresh).
func (a *Abstractor) abstractOne(tr eventlog.Trace) eventlog.Trace {
	out := eventlog.Trace{ID: tr.ID}
	// Instance segmentation: a new activity instance completes when the
	// next event of the same group would repeat a class (split-on-repeat)
	// or at the final event of the group's run.
	type state struct {
		classes map[string]bool
		lastPos int
	}
	open := make(map[int]*state)
	var markers []struct {
		pos   int
		class string
	}
	flush := func(gi int) {
		st := open[gi]
		if st == nil {
			return
		}
		markers = append(markers, struct {
			pos   int
			class string
		}{st.lastPos, a.names[gi]})
		delete(open, gi)
	}
	for pos, ev := range tr.Events {
		gi, ok := a.classToGroup[ev.Class]
		if !ok {
			markers = append(markers, struct {
				pos   int
				class string
			}{pos, ev.Class})
			continue
		}
		st := open[gi]
		if st == nil {
			st = &state{classes: make(map[string]bool)}
			open[gi] = st
		} else if st.classes[ev.Class] {
			flush(gi)
			st = &state{classes: make(map[string]bool)}
			open[gi] = st
		}
		st.classes[ev.Class] = true
		st.lastPos = pos
	}
	for gi := range open {
		flush(gi)
	}
	// Emit in completion order. Marker positions are distinct (each event
	// position completes at most one instance), so the sort is a total
	// order and the output is deterministic despite the map flush above.
	for i := 1; i < len(markers); i++ {
		for j := i; j > 0 && markers[j].pos < markers[j-1].pos; j-- {
			markers[j], markers[j-1] = markers[j-1], markers[j]
		}
	}
	for _, m := range markers {
		ev := eventlog.Event{Class: m.class}
		if ts, ok := tr.Events[m.pos].Timestamp(); ok {
			ev.SetAttr(eventlog.AttrTimestamp, eventlog.Time(ts))
		}
		out.Events = append(out.Events, ev)
	}
	return out
}

// Policy returns the instance policy the online abstraction mirrors.
func Policy() instances.Policy { return instances.SplitOnRepeat }

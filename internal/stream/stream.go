// Package stream implements the third future-work direction of §VIII:
// lifting GECCO to online settings, where traces arrive one at a time and
// the grouping is dynamically adapted to new arrivals.
//
// The Abstractor maintains a sliding window of recent traces. On every
// arrival it updates the window incrementally; the grouping is recomputed
// (a full GECCO run on the window) only when a drift signal fires — the
// directly-follows relation of recent traces diverges from the relation
// the current grouping was computed on — or after a configurable number of
// arrivals. Between recomputations, arrivals are abstracted with the
// current grouping at O(trace length) cost, so the expensive optimisation
// runs amortised-rarely, which is what makes the approach online.
package stream

import (
	"context"
	"fmt"

	"gecco/internal/abstraction"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Config tunes the online abstractor.
type Config struct {
	// WindowSize is the number of recent traces kept (default 200).
	WindowSize int
	// RefreshEvery forces a regrouping after this many arrivals even
	// without drift (default 100).
	RefreshEvery int
	// DriftThreshold is the Jaccard distance between the current DFG edge
	// set and the grouping-time edge set above which a regrouping fires
	// (default 0.25).
	DriftThreshold float64
	// Pipeline is the configuration for the underlying GECCO runs; its
	// zero value uses DFG-based candidates, which suits repeated online
	// recomputation.
	Pipeline core.Config
}

func (c Config) withDefaults() Config {
	if c.WindowSize == 0 {
		c.WindowSize = 200
	}
	if c.RefreshEvery == 0 {
		c.RefreshEvery = 100
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.25
	}
	return c
}

// Abstractor consumes traces and emits their abstracted counterparts under
// a grouping that adapts to the stream.
type Abstractor struct {
	cfg    Config
	set    *constraints.Set
	window []eventlog.Trace

	grouping     abstraction.Grouping
	groupingOK   bool
	classToGroup map[string]int
	basisEdges   map[[2]string]struct{}
	sinceRefresh int

	// Regroupings counts how often the grouping was recomputed.
	Regroupings int
	// Drifts counts regroupings triggered by the drift signal.
	Drifts int
}

// New creates an online abstractor for the constraint set.
func New(set *constraints.Set, cfg Config) *Abstractor {
	cfg = cfg.withDefaults()
	if cfg.Pipeline.Mode == core.Exhaustive {
		cfg.Pipeline.Mode = core.DFGUnbounded
	}
	return &Abstractor{cfg: cfg, set: set}
}

// Grouping returns the current grouping's class lists, or nil before the
// first successful regrouping.
func (a *Abstractor) Grouping() [][]string {
	if !a.groupingOK {
		return nil
	}
	out := make([][]string, len(a.grouping.Groups))
	byGroup := make(map[int][]string)
	for c, g := range a.classToGroup {
		byGroup[g] = append(byGroup[g], c)
	}
	for g, classes := range byGroup {
		out[g] = classes
	}
	return out
}

// Push consumes one trace and returns its abstraction under the current
// grouping. The first call (and every regrouping) runs the full pipeline
// on the window; subsequent calls are O(|trace|).
func (a *Abstractor) Push(tr eventlog.Trace) (eventlog.Trace, error) {
	a.window = append(a.window, tr)
	if len(a.window) > a.cfg.WindowSize {
		a.window = a.window[len(a.window)-a.cfg.WindowSize:]
	}
	a.sinceRefresh++

	if !a.groupingOK || a.sinceRefresh >= a.cfg.RefreshEvery || a.drifted() {
		if err := a.regroup(); err != nil {
			return eventlog.Trace{}, err
		}
	}
	if !a.groupingOK {
		// No feasible grouping yet: pass the trace through unchanged, as
		// GECCO returns the original log in the offline setting.
		return tr, nil
	}
	return a.abstractOne(tr), nil
}

// drifted compares the window's DFG edge set with the grouping-time one.
func (a *Abstractor) drifted() bool {
	if a.basisEdges == nil {
		return false
	}
	current := edgeSet(a.window)
	inter, union := 0, len(a.basisEdges)
	for e := range current {
		if _, ok := a.basisEdges[e]; ok {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return false
	}
	return 1-float64(inter)/float64(union) > a.cfg.DriftThreshold
}

func (a *Abstractor) regroup() error {
	log := &eventlog.Log{Name: "window", Traces: a.window}
	// One session per regrouping: the window changed, so no artifacts carry
	// over between regroupings, but within one the session's index is shared
	// between the pipeline run and the class-mapping pass below (previously
	// two independent NewIndex builds over the window).
	sess, err := core.NewSession(log)
	if err != nil {
		return fmt.Errorf("stream: regroup: %w", err)
	}
	res, err := sess.Solve(context.Background(), a.set, a.cfg.Pipeline)
	if err != nil {
		return fmt.Errorf("stream: regroup: %w", err)
	}
	a.Regroupings++
	if a.basisEdges != nil && a.sinceRefresh < a.cfg.RefreshEvery {
		a.Drifts++
	}
	a.sinceRefresh = 0
	a.basisEdges = edgeSet(a.window)
	if !res.Feasible {
		a.groupingOK = false
		return nil
	}
	a.grouping = res.Grouping
	a.groupingOK = true
	a.classToGroup = make(map[string]int)
	x := sess.Index()
	for gi, g := range res.Grouping.Groups {
		g.ForEach(func(c int) bool {
			a.classToGroup[x.Classes[c]] = gi
			return true
		})
	}
	return nil
}

// abstractOne rewrites a single trace with the current grouping using the
// completion-only strategy. Classes unseen at grouping time stay as-is
// (they will be regrouped on the next refresh).
func (a *Abstractor) abstractOne(tr eventlog.Trace) eventlog.Trace {
	out := eventlog.Trace{ID: tr.ID}
	// Instance segmentation: a new activity instance completes when the
	// next event of the same group would repeat a class (split-on-repeat)
	// or at the final event of the group's run.
	type state struct {
		classes map[string]bool
		lastPos int
	}
	open := make(map[int]*state)
	var markers []struct {
		pos   int
		class string
	}
	flush := func(gi int) {
		st := open[gi]
		if st == nil {
			return
		}
		markers = append(markers, struct {
			pos   int
			class string
		}{st.lastPos, a.grouping.Names[gi]})
		delete(open, gi)
	}
	for pos, ev := range tr.Events {
		gi, ok := a.classToGroup[ev.Class]
		if !ok {
			markers = append(markers, struct {
				pos   int
				class string
			}{pos, ev.Class})
			continue
		}
		st := open[gi]
		if st == nil {
			st = &state{classes: make(map[string]bool)}
			open[gi] = st
		} else if st.classes[ev.Class] {
			flush(gi)
			st = &state{classes: make(map[string]bool)}
			open[gi] = st
		}
		st.classes[ev.Class] = true
		st.lastPos = pos
	}
	for gi := range open {
		flush(gi)
	}
	// Emit in completion order.
	for i := 1; i < len(markers); i++ {
		for j := i; j > 0 && markers[j].pos < markers[j-1].pos; j-- {
			markers[j], markers[j-1] = markers[j-1], markers[j]
		}
	}
	for _, m := range markers {
		ev := eventlog.Event{Class: m.class}
		if ts, ok := tr.Events[m.pos].Timestamp(); ok {
			ev.SetAttr(eventlog.AttrTimestamp, eventlog.Time(ts))
		}
		out.Events = append(out.Events, ev)
	}
	return out
}

// edgeSet returns the directly-follows edges of the traces.
func edgeSet(traces []eventlog.Trace) map[[2]string]struct{} {
	out := make(map[[2]string]struct{})
	for i := range traces {
		ev := traces[i].Events
		for j := 1; j < len(ev); j++ {
			out[[2]string{ev[j-1].Class, ev[j].Class}] = struct{}{}
		}
	}
	return out
}

// Policy returns the instance policy the online abstraction mirrors.
func Policy() instances.Policy { return instances.SplitOnRepeat }

package stream

import (
	"testing"

	"gecco/internal/constraints"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

func roleSet() *constraints.Set {
	return constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
}

func TestOnlineMatchesOfflineOnStableStream(t *testing.T) {
	log := procgen.RunningExample(300, 3)
	a := New(roleSet(), Config{WindowSize: 100, RefreshEvery: 50})
	var abstracted []eventlog.Trace
	for _, tr := range log.Traces {
		out, err := a.Push(tr)
		if err != nil {
			t.Fatal(err)
		}
		abstracted = append(abstracted, out)
	}
	if a.Regroupings == 0 {
		t.Fatal("no regrouping happened")
	}
	// After warm-up, traces must be genuinely abstracted (shorter than or
	// equal to originals, and using activity names).
	shorter := 0
	for i := 100; i < len(abstracted); i++ {
		if len(abstracted[i].Events) < len(log.Traces[i].Events) {
			shorter++
		}
		if len(abstracted[i].Events) > len(log.Traces[i].Events) {
			t.Fatalf("trace %d grew", i)
		}
	}
	if shorter == 0 {
		t.Fatal("no trace was compressed after warm-up")
	}
}

func TestDriftTriggersRegroup(t *testing.T) {
	// Phase 1: running example. Phase 2: a completely different process.
	phase1 := procgen.RunningExample(120, 5)
	phase2 := &eventlog.Log{}
	for i := 0; i < 120; i++ {
		tr := eventlog.Trace{ID: "p2"}
		for _, c := range []string{"x1", "x2", "x3", "x4"} {
			ev := eventlog.Event{Class: c}
			ev.SetAttr(eventlog.AttrRole, eventlog.String("newrole"))
			tr.Events = append(tr.Events, ev)
		}
		phase2.Traces = append(phase2.Traces, tr)
	}
	a := New(roleSet(), Config{WindowSize: 60, RefreshEvery: 1000, DriftThreshold: 0.3})
	for _, tr := range phase1.Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	regroupsBefore := a.Regroupings
	for _, tr := range phase2.Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	if a.Regroupings <= regroupsBefore {
		t.Fatal("drift did not trigger a regrouping")
	}
	if a.Drifts == 0 {
		t.Fatal("drift counter not incremented")
	}
	// After adaptation, the new process's classes must be grouped.
	out, err := a.Push(phase2.Traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) >= 4 {
		t.Fatalf("post-drift trace not abstracted: %d events", len(out.Events))
	}
}

func TestUnknownClassesPassThrough(t *testing.T) {
	a := New(roleSet(), Config{WindowSize: 50, RefreshEvery: 10})
	// Warm up on the running example.
	for _, tr := range procgen.RunningExample(30, 9).Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	novel := eventlog.Trace{ID: "n", Events: []eventlog.Event{{Class: "never-seen"}}}
	out, err := a.Push(novel)
	if err != nil {
		t.Fatal(err)
	}
	// Regrouping may or may not have fired on this push; either way the
	// novel class must survive (as itself or a singleton activity).
	if len(out.Events) != 1 {
		t.Fatalf("novel-class trace has %d events", len(out.Events))
	}
}

func TestWindowBounded(t *testing.T) {
	a := New(roleSet(), Config{WindowSize: 25, RefreshEvery: 1000})
	for _, tr := range procgen.RunningExample(200, 11).Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.window) > 25 {
		t.Fatalf("window grew to %d", len(a.window))
	}
}

func TestGroupingAccessor(t *testing.T) {
	a := New(roleSet(), Config{WindowSize: 50, RefreshEvery: 10})
	if a.Grouping() != nil {
		t.Fatal("grouping before first regroup should be nil")
	}
	for _, tr := range procgen.RunningExample(20, 13).Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	g := a.Grouping()
	if g == nil {
		t.Fatal("grouping missing after regroup")
	}
	total := 0
	for _, classes := range g {
		total += len(classes)
	}
	if total != 8 {
		t.Fatalf("grouping covers %d classes, want 8", total)
	}
}

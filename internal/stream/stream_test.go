package stream

import (
	"context"
	"math"
	"reflect"
	"testing"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

func roleSet() *constraints.Set {
	return constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
}

func TestOnlineMatchesOfflineOnStableStream(t *testing.T) {
	log := procgen.RunningExample(300, 3)
	a := New(roleSet(), Config{WindowSize: 100, RefreshEvery: 50, DriftThreshold: DefaultDriftThreshold})
	var abstracted []eventlog.Trace
	for _, tr := range log.Traces {
		out, err := a.Push(tr)
		if err != nil {
			t.Fatal(err)
		}
		abstracted = append(abstracted, out)
	}
	if a.Regroupings == 0 {
		t.Fatal("no regrouping happened")
	}
	// After warm-up, traces must be genuinely abstracted (shorter than or
	// equal to originals, and using activity names).
	shorter := 0
	for i := 100; i < len(abstracted); i++ {
		if len(abstracted[i].Events) < len(log.Traces[i].Events) {
			shorter++
		}
		if len(abstracted[i].Events) > len(log.Traces[i].Events) {
			t.Fatalf("trace %d grew", i)
		}
	}
	if shorter == 0 {
		t.Fatal("no trace was compressed after warm-up")
	}
}

func TestDriftTriggersRegroup(t *testing.T) {
	// Phase 1: running example. Phase 2: a completely different process.
	phase1 := procgen.RunningExample(120, 5)
	phase2 := &eventlog.Log{}
	for i := 0; i < 120; i++ {
		tr := eventlog.Trace{ID: "p2"}
		for _, c := range []string{"x1", "x2", "x3", "x4"} {
			ev := eventlog.Event{Class: c}
			ev.SetAttr(eventlog.AttrRole, eventlog.String("newrole"))
			tr.Events = append(tr.Events, ev)
		}
		phase2.Traces = append(phase2.Traces, tr)
	}
	a := New(roleSet(), Config{WindowSize: 60, RefreshEvery: 1000, DriftThreshold: 0.3})
	for _, tr := range phase1.Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	regroupsBefore := a.Regroupings
	for _, tr := range phase2.Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	if a.Regroupings <= regroupsBefore {
		t.Fatal("drift did not trigger a regrouping")
	}
	if a.Drifts == 0 {
		t.Fatal("drift counter not incremented")
	}
	// After adaptation, the new process's classes must be grouped.
	out, err := a.Push(phase2.Traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) >= 4 {
		t.Fatalf("post-drift trace not abstracted: %d events", len(out.Events))
	}
}

func TestUnknownClassesPassThrough(t *testing.T) {
	a := New(roleSet(), Config{WindowSize: 50, RefreshEvery: 10, DriftThreshold: DefaultDriftThreshold})
	// Warm up on the running example.
	for _, tr := range procgen.RunningExample(30, 9).Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	novel := eventlog.Trace{ID: "n", Events: []eventlog.Event{{Class: "never-seen"}}}
	out, err := a.Push(novel)
	if err != nil {
		t.Fatal(err)
	}
	// Regrouping may or may not have fired on this push; either way the
	// novel class must survive (as itself or a singleton activity).
	if len(out.Events) != 1 {
		t.Fatalf("novel-class trace has %d events", len(out.Events))
	}
}

// recountEdges rebuilds the directly-follows multiset from scratch, as the
// ground truth the incremental bookkeeping must match.
func recountEdges(traces []eventlog.Trace) map[[2]string]int {
	out := make(map[[2]string]int)
	for _, tr := range traces {
		for j := 1; j < len(tr.Events); j++ {
			out[[2]string{tr.Events[j-1].Class, tr.Events[j].Class}]++
		}
	}
	return out
}

func TestWindowBoundedAndEvictionRefcounts(t *testing.T) {
	const window = 25
	a := New(roleSet(), Config{WindowSize: window, RefreshEvery: 1000, DriftThreshold: DefaultDriftThreshold})
	var pushed []eventlog.Trace
	for _, tr := range procgen.RunningExample(200, 11).Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
		pushed = append(pushed, tr)
		lo := len(pushed) - window
		if lo < 0 {
			lo = 0
		}
		want := recountEdges(pushed[lo:])
		if !reflect.DeepEqual(a.edges, want) {
			t.Fatalf("after %d pushes: incremental edge multiset diverged from recount\n got %v\nwant %v",
				len(pushed), a.edges, want)
		}
	}
	if a.WindowLen() > window {
		t.Fatalf("window grew to %d", a.WindowLen())
	}
	// The materialised window must be exactly the last `window` arrivals in
	// order.
	got := a.windowLog().Traces
	want := pushed[len(pushed)-window:]
	if !reflect.DeepEqual(got, want) {
		t.Fatal("windowLog is not the last arrivals in order")
	}
}

// TestDriftScoreMatchesRecomputation pins the incremental Jaccard terms
// against a from-scratch recomputation across fills, evictions and a fixed
// basis, using a stubbed pipeline so no real regrouping interferes.
func TestDriftScoreMatchesRecomputation(t *testing.T) {
	var basisWindow []eventlog.Trace
	stub := func(ctx context.Context, window *eventlog.Log, set *constraints.Set, cfg core.Config) (*core.Result, error) {
		basisWindow = append([]eventlog.Trace(nil), window.Traces...)
		return &core.Result{}, nil // infeasible: no grouping, but a basis is set
	}
	const window = 20
	a := New(roleSet(), Config{WindowSize: window, RefreshEvery: 1 << 30, DriftThreshold: -1, RunPipeline: stub})

	phase1 := procgen.RunningExample(30, 7).Traces
	phase2 := procgen.LoanLog(60, 7).Traces
	var pushed []eventlog.Trace
	for _, tr := range append(append([]eventlog.Trace(nil), phase1...), phase2...) {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
		pushed = append(pushed, tr)
		lo := len(pushed) - window
		if lo < 0 {
			lo = 0
		}
		current := recountEdges(pushed[lo:])
		basis := recountEdges(basisWindow)
		inter, union := 0, len(basis)
		for e := range current {
			if _, ok := basis[e]; ok {
				inter++
			} else {
				union++
			}
		}
		want := 0.0
		if union > 0 {
			want = 1 - float64(inter)/float64(union)
		}
		if math.Abs(a.DriftScore()-want) > 1e-12 {
			t.Fatalf("after %d pushes: DriftScore %v, recomputed %v", len(pushed), a.DriftScore(), want)
		}
	}
	if a.Regroupings != 1 {
		t.Fatalf("stub pipeline ran %d times, want 1 (initial only)", a.Regroupings)
	}
}

// TestInfeasibleBackoff pins the satellite fix: while the last solve was
// infeasible, arrivals must NOT re-run the pipeline; only the refresh
// cadence (or drift) may retry.
func TestInfeasibleBackoff(t *testing.T) {
	calls := 0
	stub := func(ctx context.Context, window *eventlog.Log, set *constraints.Set, cfg core.Config) (*core.Result, error) {
		calls++
		return &core.Result{}, nil // always infeasible
	}
	a := New(roleSet(), Config{WindowSize: 50, RefreshEvery: 10, DriftThreshold: -1, RunPipeline: stub})
	traces := procgen.RunningExample(40, 13).Traces
	for _, tr := range traces {
		out, err := a.Push(tr)
		if err != nil {
			t.Fatal(err)
		}
		// Infeasible grouping passes arrivals through unchanged.
		if !reflect.DeepEqual(out, tr) {
			t.Fatal("infeasible stream did not pass trace through")
		}
	}
	// 1 initial + one retry per full refresh interval; the initial regroup
	// resets the cadence, so with 40 arrivals and RefreshEvery=10 that is
	// 1 + 3 = 4 — not 40 as with the per-arrival retry bug.
	if want := 4; calls != want {
		t.Fatalf("pipeline ran %d times for %d arrivals, want %d", calls, len(traces), want)
	}
	// None of those retries are drifts.
	if a.Drifts != 0 {
		t.Fatalf("infeasible retries were counted as %d drifts", a.Drifts)
	}
}

// TestDriftThresholdSentinel pins the new Config semantics: negative
// disables drift detection entirely; zero fires on any divergence.
func TestDriftThresholdSentinel(t *testing.T) {
	disjoint := func(id string, classes ...string) eventlog.Trace {
		tr := eventlog.Trace{ID: id}
		for _, c := range classes {
			ev := eventlog.Event{Class: c}
			ev.SetAttr(eventlog.AttrRole, eventlog.String("r-"+c))
			tr.Events = append(tr.Events, ev)
		}
		return tr
	}

	t.Run("negative disables", func(t *testing.T) {
		a := New(roleSet(), Config{WindowSize: 10, RefreshEvery: 1 << 30, DriftThreshold: -1})
		for i := 0; i < 5; i++ {
			if _, err := a.Push(disjoint("a", "a1", "a2")); err != nil {
				t.Fatal(err)
			}
		}
		// A structurally different process: massive drift, but disabled.
		for i := 0; i < 20; i++ {
			if _, err := a.Push(disjoint("b", "b1", "b2", "b3")); err != nil {
				t.Fatal(err)
			}
		}
		if a.Regroupings != 1 {
			t.Fatalf("disabled drift still regrouped: %d regroupings", a.Regroupings)
		}
		if a.DriftScore() == 0 {
			t.Fatal("drift score should be nonzero on a changed window")
		}
	})

	t.Run("zero fires on any divergence", func(t *testing.T) {
		a := New(roleSet(), Config{WindowSize: 100, RefreshEvery: 1 << 30, DriftThreshold: 0})
		if _, err := a.Push(disjoint("a", "a1", "a2")); err != nil {
			t.Fatal(err)
		}
		before := a.Regroupings // the initial regroup
		if before != 1 {
			t.Fatalf("expected exactly the initial regroup, got %d", before)
		}
		// One novel edge is any-drift: the next push must regroup.
		if _, err := a.Push(disjoint("b", "b1", "b2")); err != nil {
			t.Fatal(err)
		}
		if a.Regroupings != before+1 {
			t.Fatalf("zero threshold did not fire on a novel edge (%d regroupings)", a.Regroupings)
		}
		if a.Drifts != 1 {
			t.Fatalf("drift regroup not accounted as drift: %d", a.Drifts)
		}
	})
}

func TestGroupingAccessorDeterministic(t *testing.T) {
	a := New(roleSet(), Config{WindowSize: 50, RefreshEvery: 10, DriftThreshold: DefaultDriftThreshold})
	if a.Grouping() != nil {
		t.Fatal("grouping before first regroup should be nil")
	}
	for _, tr := range procgen.RunningExample(20, 13).Traces {
		if _, err := a.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	g := a.Grouping()
	if g == nil {
		t.Fatal("grouping missing after regroup")
	}
	total := 0
	for _, classes := range g {
		total += len(classes)
		for i := 1; i < len(classes); i++ {
			if classes[i-1] >= classes[i] {
				t.Fatalf("group classes not sorted: %v", classes)
			}
		}
	}
	if total != 8 {
		t.Fatalf("grouping covers %d classes, want 8", total)
	}
	if names := a.ActivityNames(); len(names) != len(g) {
		t.Fatalf("%d activity names for %d groups", len(names), len(g))
	}
	// Repeated calls and a re-run of the identical stream agree exactly.
	if !reflect.DeepEqual(g, a.Grouping()) {
		t.Fatal("Grouping() not stable across calls")
	}
}

// TestIdenticalStreamsIdenticalOutput is the end-to-end determinism pin:
// two abstractors fed the same stream produce deeply equal outputs, trace
// by trace, and identical groupings and counters.
func TestIdenticalStreamsIdenticalOutput(t *testing.T) {
	traces := append(procgen.RunningExample(60, 17).Traces, procgen.LoanLog(60, 17).Traces...)
	cfg := Config{WindowSize: 40, RefreshEvery: 25, DriftThreshold: DefaultDriftThreshold}
	a, b := New(roleSet(), cfg), New(roleSet(), cfg)
	for i, tr := range traces {
		outA, errA := a.Push(tr)
		outB, errB := b.Push(tr)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trace %d: error divergence: %v vs %v", i, errA, errB)
		}
		if !reflect.DeepEqual(outA, outB) {
			t.Fatalf("trace %d: output divergence:\n a: %+v\n b: %+v", i, outA, outB)
		}
	}
	if a.Regroupings != b.Regroupings || a.Drifts != b.Drifts {
		t.Fatalf("counter divergence: (%d,%d) vs (%d,%d)", a.Regroupings, a.Drifts, b.Regroupings, b.Drifts)
	}
	if !reflect.DeepEqual(a.Grouping(), b.Grouping()) {
		t.Fatal("grouping divergence between identical streams")
	}
}

func TestPushContextCancellation(t *testing.T) {
	a := New(roleSet(), Config{WindowSize: 10, RefreshEvery: 5, DriftThreshold: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.PushContext(ctx, procgen.RunningExample(1, 3).Traces[0]); err == nil {
		t.Fatal("cancelled context did not fail the initial regroup")
	}
}

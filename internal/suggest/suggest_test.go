package suggest

import (
	"context"
	"strings"
	"testing"

	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

// mustSuggest profiles the log's index under a background context, failing
// the test on error (an uncancelled profiling pass cannot fail).
func mustSuggest(t *testing.T, log *eventlog.Log) []Suggestion {
	t.Helper()
	sugs, err := Suggest(context.Background(), eventlog.NewIndex(log))
	if err != nil {
		t.Fatalf("Suggest: %v", err)
	}
	return sugs
}

func TestSuggestRunningExample(t *testing.T) {
	log := procgen.RunningExampleTable1()
	sugs := mustSuggest(t, log)
	if len(sugs) == 0 {
		t.Fatal("no suggestions for a log with role/cost/duration attributes")
	}
	var haveRoleInstance, haveRoleClass, haveGap, haveNumeric bool
	for _, s := range sugs {
		switch c := s.Constraint.(type) {
		case constraints.InstanceAggregate:
			if c.Attr == "role" && c.AggFn == constraints.Distinct {
				haveRoleInstance = true
			}
			if c.AggFn == constraints.Max && (c.Attr == "cost" || c.Attr == "duration") {
				haveNumeric = true
			}
		case constraints.ClassAttrDistinct:
			if c.Attr == "role" {
				haveRoleClass = true
			}
		case constraints.MaxGap:
			haveGap = true
		}
		if s.Rationale == "" {
			t.Error("suggestion without rationale")
		}
		if s.SingletonPass < 0 || s.SingletonPass > 1 {
			t.Errorf("singleton pass %f out of range", s.SingletonPass)
		}
	}
	if !haveRoleInstance || !haveRoleClass {
		t.Error("missing role-homogeneity suggestions")
	}
	if !haveGap {
		t.Error("missing gap suggestion despite timestamps")
	}
	if !haveNumeric {
		t.Error("missing numeric-attribute suggestion")
	}
}

func TestSuggestionsRankedByFeasibility(t *testing.T) {
	sugs := mustSuggest(t, procgen.LoanLog(100, 7))
	for i := 1; i < len(sugs); i++ {
		if sugs[i-1].SingletonPass < sugs[i].SingletonPass {
			t.Fatal("suggestions not sorted by singleton pass rate")
		}
	}
}

// Every suggested constraint must be usable: it round-trips through the
// DSL parser and runs through the pipeline without error.
func TestSuggestionsAreRunnable(t *testing.T) {
	log := procgen.RunningExampleTable1()
	for _, s := range mustSuggest(t, log) {
		if _, err := constraints.Parse(s.Constraint.String()); err != nil {
			t.Errorf("suggestion %q does not round-trip: %v", s.Constraint, err)
			continue
		}
		set := constraints.NewSet(s.Constraint)
		res, err := core.Run(log, set, core.Config{Mode: core.DFGUnbounded})
		if err != nil {
			t.Errorf("suggestion %q failed to run: %v", s.Constraint, err)
			continue
		}
		_ = res // feasibility depends on the constraint; both outcomes are valid
	}
}

func TestSuggestGroupCountOnlyForLargerLogs(t *testing.T) {
	tiny := procgen.BuildLog(procgen.CollectionSpecs()[8]) // 4 classes
	for _, s := range mustSuggest(t, tiny) {
		if _, ok := s.Constraint.(constraints.GroupCount); ok {
			t.Fatal("group-count suggestion on a 4-class log")
		}
	}
	larger := procgen.RunningExampleTable1() // 8 classes
	found := false
	for _, s := range mustSuggest(t, larger) {
		if gc, ok := s.Constraint.(constraints.GroupCount); ok {
			found = true
			if gc.N < 2 {
				t.Errorf("group bound %d too tight", gc.N)
			}
			if !strings.Contains(s.Rationale, "classes") {
				t.Error("group-count rationale should mention the class count")
			}
		}
	}
	if !found {
		t.Fatal("no group-count suggestion for an 8-class log")
	}
}

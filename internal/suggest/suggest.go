// Package suggest implements the first future-work direction of §VIII: an
// approach to suggest interesting constraints to users for a given log.
// It profiles the log's attributes and proposes constraint candidates with
// a rationale and an estimated restrictiveness (the fraction of singleton
// groups, i.e. event classes, that already satisfy the constraint — a
// cheap feasibility proxy).
//
// Heuristics:
//   - Categorical attributes with few distinct values (role, origin
//     system, ...) suggest per-instance and class-level homogeneity
//     constraints, the paper's flagship use cases (§II, §VI-D).
//   - Numeric attributes suggest per-instance aggregate bounds at robust
//     percentiles of the observed per-event values.
//   - Timestamps suggest gap and span bounds at percentiles of observed
//     inter-event gaps.
//   - The class count suggests a grouping bound of about |C_L|/4,
//     a moderate abstraction target.
package suggest

import (
	"fmt"
	"sort"

	"gecco/internal/bitset"
	"gecco/internal/constraints"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Suggestion is one proposed constraint with its rationale.
type Suggestion struct {
	Constraint constraints.Constraint
	Rationale  string
	// SingletonPass is the fraction of event classes whose singleton group
	// satisfies the constraint: 1.0 means the constraint cannot make the
	// problem infeasible on its own, lower values warn about
	// restrictiveness.
	SingletonPass float64
}

// maxCategorical is the largest number of distinct values for which an
// attribute still counts as a grouping-relevant category.
const maxCategorical = 12

// Suggest profiles the log and returns ranked constraint suggestions
// (most broadly satisfiable first, ties broken by rationale text).
func Suggest(log *eventlog.Log) []Suggestion {
	x := eventlog.NewIndex(log)
	var out []Suggestion

	catAttrs, numAttrs, hasTime := profileAttrs(log)
	for _, attr := range catAttrs {
		vals := distinctValues(log, attr)
		out = append(out,
			propose(x, constraints.InstanceAggregate{
				AggFn: constraints.Distinct, Attr: attr, Op: constraints.LE, Threshold: 1,
			}, fmt.Sprintf("attribute %q is categorical (%d values); homogeneous instances keep %s-boundaries visible", attr, vals, attr)),
			propose(x, constraints.ClassAttrDistinct{Attr: attr, Op: constraints.LE, N: 1},
				fmt.Sprintf("event classes partition by %q; forbid activities mixing %s values (as in the paper's case study)", attr, attr)),
		)
	}
	for _, attr := range numAttrs {
		vals := numericValues(log, attr)
		if len(vals) == 0 {
			continue
		}
		p90 := percentile(vals, 0.9)
		out = append(out, propose(x, constraints.InstanceAggregate{
			AggFn: constraints.Max, Attr: attr, Op: constraints.LE, Threshold: p90,
		}, fmt.Sprintf("90%% of observed %q values are below %g; bound instances accordingly", attr, p90)))
	}
	if hasTime {
		gaps := interEventGaps(log)
		if len(gaps) > 0 {
			p95 := percentile(gaps, 0.95)
			out = append(out, propose(x, constraints.MaxGap{Seconds: p95},
				fmt.Sprintf("95%% of consecutive events are at most %.0fs apart; larger gaps indicate unrelated work", p95)))
		}
	}
	if n := x.NumClasses(); n >= 8 {
		target := n / 4
		if target < 2 {
			target = 2
		}
		out = append(out, propose(x, constraints.GroupCount{Op: constraints.LE, N: target},
			fmt.Sprintf("%d classes; about %d activities is a moderate abstraction target", n, target)))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SingletonPass != out[j].SingletonPass {
			return out[i].SingletonPass > out[j].SingletonPass
		}
		return out[i].Rationale < out[j].Rationale
	})
	return out
}

func propose(x *eventlog.Index, c constraints.Constraint, rationale string) Suggestion {
	return Suggestion{Constraint: c, Rationale: rationale, SingletonPass: singletonPass(x, c)}
}

// singletonPass checks the constraint against every singleton group.
func singletonPass(x *eventlog.Index, c constraints.Constraint) float64 {
	set := constraints.NewSet(c)
	if len(set.Grouping) > 0 {
		return 1 // grouping bounds never reject individual classes
	}
	ev := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
	n := x.NumClasses()
	pass := 0
	for i := 0; i < n; i++ {
		g := bitset.New(n)
		g.Add(i)
		if ev.Holds(g) {
			pass++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(pass) / float64(n)
}

// profileAttrs partitions event attributes into categorical (string, few
// values) and numeric, and reports timestamp presence.
func profileAttrs(log *eventlog.Log) (cat, num []string, hasTime bool) {
	strVals := make(map[string]map[string]struct{})
	numeric := make(map[string]bool)
	for i := range log.Traces {
		for j := range log.Traces[i].Events {
			for k, v := range log.Traces[i].Events[j].Attrs {
				switch {
				case k == eventlog.AttrTimestamp:
					hasTime = true
				case v.Kind == eventlog.KindString:
					m, ok := strVals[k]
					if !ok {
						m = make(map[string]struct{})
						strVals[k] = m
					}
					m[v.Str] = struct{}{}
				case v.IsNumeric():
					numeric[k] = true
				}
			}
		}
	}
	for k, m := range strVals {
		if len(m) >= 2 && len(m) <= maxCategorical {
			cat = append(cat, k)
		}
	}
	for k := range numeric {
		num = append(num, k)
	}
	sort.Strings(cat)
	sort.Strings(num)
	return cat, num, hasTime
}

func distinctValues(log *eventlog.Log, attr string) int {
	seen := make(map[string]struct{})
	for i := range log.Traces {
		for j := range log.Traces[i].Events {
			if v, ok := log.Traces[i].Events[j].Attrs[attr]; ok {
				seen[v.AsString()] = struct{}{}
			}
		}
	}
	return len(seen)
}

func numericValues(log *eventlog.Log, attr string) []float64 {
	var out []float64
	for i := range log.Traces {
		for j := range log.Traces[i].Events {
			if v, ok := log.Traces[i].Events[j].Attrs[attr]; ok && v.IsNumeric() {
				out = append(out, v.Num)
			}
		}
	}
	return out
}

func interEventGaps(log *eventlog.Log) []float64 {
	var out []float64
	for i := range log.Traces {
		ev := log.Traces[i].Events
		for j := 1; j < len(ev); j++ {
			t1, ok1 := ev[j-1].Timestamp()
			t2, ok2 := ev[j].Timestamp()
			if ok1 && ok2 {
				out = append(out, t2.Sub(t1).Seconds())
			}
		}
	}
	return out
}

// percentile returns the p-quantile (0..1) of the values (nearest rank).
func percentile(vals []float64, p float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

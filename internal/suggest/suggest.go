// Package suggest implements the first future-work direction of §VIII: an
// approach to suggest interesting constraints to users for a given log.
// It profiles the log's attributes and proposes constraint candidates with
// a rationale and an estimated restrictiveness (the fraction of singleton
// groups, i.e. event classes, that already satisfy the constraint — a
// cheap feasibility proxy).
//
// Profiling runs on the columnar eventlog.Index: categorical cardinalities
// come straight from each column's string dictionary and numeric/time scans
// walk the typed payload arrays, so no pointer-heavy *eventlog.Log is ever
// materialised.
//
// Heuristics:
//   - Categorical attributes with few distinct values (role, origin
//     system, ...) suggest per-instance and class-level homogeneity
//     constraints, the paper's flagship use cases (§II, §VI-D).
//   - Numeric attributes suggest per-instance aggregate bounds at robust
//     percentiles of the observed per-event values.
//   - Timestamps suggest gap and span bounds at percentiles of observed
//     inter-event gaps.
//   - The class count suggests a grouping bound of about |C_L|/4,
//     a moderate abstraction target.
package suggest

import (
	"context"
	"fmt"
	"sort"

	"gecco/internal/bitset"
	"gecco/internal/constraints"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Suggestion is one proposed constraint with its rationale.
type Suggestion struct {
	Constraint constraints.Constraint
	Rationale  string
	// SingletonPass is the fraction of event classes whose singleton group
	// satisfies the constraint: 1.0 means the constraint cannot make the
	// problem infeasible on its own, lower values warn about
	// restrictiveness.
	SingletonPass float64
}

// maxCategorical is the largest number of distinct values for which an
// attribute still counts as a grouping-relevant category.
const maxCategorical = 12

// Suggest profiles the indexed log and returns ranked constraint
// suggestions (most broadly satisfiable first, ties broken by rationale
// text). Cancelling ctx returns an error wrapping ctx.Err().
func Suggest(ctx context.Context, x *eventlog.Index) ([]Suggestion, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("suggest: %w", err)
	}
	var out []Suggestion

	catAttrs, numAttrs, hasTime := profileColumns(x)
	for _, attr := range catAttrs {
		vals := distinctKeys(x, x.Column(attr))
		out = append(out,
			propose(x, constraints.InstanceAggregate{
				AggFn: constraints.Distinct, Attr: attr, Op: constraints.LE, Threshold: 1,
			}, fmt.Sprintf("attribute %q is categorical (%d values); homogeneous instances keep %s-boundaries visible", attr, vals, attr)),
			propose(x, constraints.ClassAttrDistinct{Attr: attr, Op: constraints.LE, N: 1},
				fmt.Sprintf("event classes partition by %q; forbid activities mixing %s values (as in the paper's case study)", attr, attr)),
		)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("suggest: %w", err)
	}
	for _, attr := range numAttrs {
		vals := numericColumn(x.Column(attr), x.NumEvents())
		if len(vals) == 0 {
			continue
		}
		p90 := percentile(vals, 0.9)
		out = append(out, propose(x, constraints.InstanceAggregate{
			AggFn: constraints.Max, Attr: attr, Op: constraints.LE, Threshold: p90,
		}, fmt.Sprintf("90%% of observed %q values are below %g; bound instances accordingly", attr, p90)))
	}
	if hasTime {
		gaps := interEventGaps(x)
		if len(gaps) > 0 {
			p95 := percentile(gaps, 0.95)
			out = append(out, propose(x, constraints.MaxGap{Seconds: p95},
				fmt.Sprintf("95%% of consecutive events are at most %.0fs apart; larger gaps indicate unrelated work", p95)))
		}
	}
	if n := x.NumClasses(); n >= 8 {
		target := n / 4
		if target < 2 {
			target = 2
		}
		out = append(out, propose(x, constraints.GroupCount{Op: constraints.LE, N: target},
			fmt.Sprintf("%d classes; about %d activities is a moderate abstraction target", n, target)))
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("suggest: %w", err)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SingletonPass != out[j].SingletonPass {
			return out[i].SingletonPass > out[j].SingletonPass
		}
		return out[i].Rationale < out[j].Rationale
	})
	return out, nil
}

func propose(x *eventlog.Index, c constraints.Constraint, rationale string) Suggestion {
	return Suggestion{Constraint: c, Rationale: rationale, SingletonPass: singletonPass(x, c)}
}

// singletonPass checks the constraint against every singleton group.
func singletonPass(x *eventlog.Index, c constraints.Constraint) float64 {
	set := constraints.NewSet(c)
	if len(set.Grouping) > 0 {
		return 1 // grouping bounds never reject individual classes
	}
	ev := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
	n := x.NumClasses()
	pass := 0
	for i := 0; i < n; i++ {
		g := bitset.New(n)
		g.Add(i)
		if ev.Holds(g) {
			pass++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(pass) / float64(n)
}

// profileColumns partitions event-attribute columns into categorical
// (string, few values) and numeric, and reports timestamp presence. A
// column's string cardinality is its dictionary size — strings are interned
// at build time, so no value scan is needed for the categorical gate; the
// numeric probe scans typed kinds only on columns that are not uniformly
// string.
func profileColumns(x *eventlog.Index) (cat, num []string, hasTime bool) {
	numEvents := x.NumEvents()
	for _, col := range x.Columns() {
		name := col.Name()
		if name == eventlog.AttrTimestamp {
			// A timestamp column never joins the categorical or numeric
			// pools, mirroring the attribute profile's precedence.
			hasTime = true
			continue
		}
		if n := col.NumCodes(); n >= 2 && n <= maxCategorical {
			cat = append(cat, name)
		}
		if !col.StringsOnly() && hasNumericValue(col, numEvents) {
			num = append(num, name)
		}
	}
	sort.Strings(cat)
	sort.Strings(num)
	return cat, num, hasTime
}

// hasNumericValue reports whether the column holds at least one numeric
// (int or float) value.
//
//gecco:hotpath
func hasNumericValue(col *eventlog.Column, numEvents int) bool {
	for pos := 0; pos < numEvents; pos++ {
		if _, ok := col.Num(pos); ok {
			return true
		}
	}
	return false
}

// distinctKeys counts the distinct categorical keys (Value.AsString texts)
// of the column. For uniformly-string columns that is exactly the
// dictionary size; mixed columns fall back to a key scan.
func distinctKeys(x *eventlog.Index, col *eventlog.Column) int {
	if col.StringsOnly() {
		return col.NumCodes()
	}
	seen := make(map[string]struct{})
	for pos := 0; pos < x.NumEvents(); pos++ {
		if k, ok := col.Key(pos); ok {
			seen[k] = struct{}{}
		}
	}
	return len(seen)
}

// numericColumn collects the column's numeric payloads in global position
// (trace-major) order.
//
//gecco:hotpath
func numericColumn(col *eventlog.Column, numEvents int) []float64 {
	var out []float64
	for pos := 0; pos < numEvents; pos++ {
		if v, ok := col.Num(pos); ok {
			out = append(out, v)
		}
	}
	return out
}

// interEventGaps collects the gaps in seconds between adjacent timestamped
// events within each trace.
//
//gecco:hotpath
func interEventGaps(x *eventlog.Index) []float64 {
	col := x.Column(eventlog.AttrTimestamp)
	if col == nil {
		return nil
	}
	var out []float64
	for t := 0; t < x.NumTraces(); t++ {
		start, n := x.TraceStart(t), x.TraceLen(t)
		for j := 1; j < n; j++ {
			t1, ok1 := col.Time(start + j - 1)
			t2, ok2 := col.Time(start + j)
			if ok1 && ok2 {
				out = append(out, t2.Sub(t1).Seconds())
			}
		}
	}
	return out
}

// percentile returns the p-quantile (0..1) of the values (nearest rank).
func percentile(vals []float64, p float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Package lp is a dense two-phase primal simplex solver for linear programs
//
//	minimize    c·x
//	subject to  A_i·x (<=|>=|==) b_i   for each row i
//	            lower_j <= x_j <= upper_j
//
// It is the substrate beneath gecco's MIP solver (internal/mip), replacing
// the paper's use of Gurobi. The implementation favours robustness on the
// small/medium instances arising in log abstraction (tens of rows, up to a
// few thousand columns): Dantzig pricing with an automatic switch to Bland's
// rule to escape cycling, and explicit handling of fixed variables.
package lp

import (
	"context"
	"fmt"
	"math"
)

// RelOp is a row's relational operator.
type RelOp int

const (
	LE RelOp = iota
	GE
	EQ
)

func (o RelOp) String() string { return [...]string{"<=", ">=", "=="}[o] }

// Problem is an LP in natural (row) form. Lower and Upper may be nil,
// defaulting to 0 and +Inf respectively.
type Problem struct {
	NumVars int
	C       []float64   // objective coefficients (minimised)
	A       [][]float64 // dense rows, each of length NumVars
	Ops     []RelOp
	B       []float64
	Lower   []float64 // nil => all zeros
	Upper   []float64 // nil => all +Inf
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if len(p.C) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.C), p.NumVars)
	}
	if len(p.A) != len(p.B) || len(p.A) != len(p.Ops) {
		return fmt.Errorf("lp: inconsistent row counts: |A|=%d |B|=%d |Ops|=%d", len(p.A), len(p.B), len(p.Ops))
	}
	for i, row := range p.A {
		if len(row) != p.NumVars {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), p.NumVars)
		}
	}
	if p.Lower != nil && len(p.Lower) != p.NumVars {
		return fmt.Errorf("lp: lower bounds length %d, want %d", len(p.Lower), p.NumVars)
	}
	if p.Upper != nil && len(p.Upper) != p.NumVars {
		return fmt.Errorf("lp: upper bounds length %d, want %d", len(p.Upper), p.NumVars)
	}
	return nil
}

// Status is the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	// Cancelled means the solve was abandoned because the caller's context
	// was cancelled or its deadline expired; the solution is unusable.
	Cancelled
)

func (s Status) String() string {
	return [...]string{"optimal", "infeasible", "unbounded", "iteration-limit", "cancelled"}[s]
}

// Solution holds the result of Solve.
type Solution struct {
	Status Status
	X      []float64 // primal values in the original variable space
	Obj    float64
}

const (
	tol      = 1e-9
	feasTol  = 1e-7
	blandCap = 4 // switch to Bland's rule after blandCap*(m+n) iterations
)

// Solve solves the problem with two-phase primal simplex.
func Solve(p *Problem) Solution {
	//lint:gecco-allow(ctxflow): convenience wrapper; SolveContext is the cancellable variant
	return SolveContext(context.Background(), p)
}

// SolveContext is Solve under a context: cancellation is sampled every
// ctxSampleInterval pivots and aborts the solve with Status Cancelled. A
// never-cancelled context leaves the pivot sequence — and so the solution —
// identical to Solve.
func SolveContext(ctx context.Context, p *Problem) Solution {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	st := standardize(p)
	if st.infeasible {
		return Solution{Status: Infeasible}
	}
	t := newTableau(st)
	t.ctx = ctx
	if status := t.phase1(); status != Optimal {
		return Solution{Status: status}
	}
	status := t.phase2()
	if status != Optimal {
		return Solution{Status: status}
	}
	x := t.extract(st)
	obj := 0.0
	for j, cj := range p.C {
		obj += cj * x[j]
	}
	return Solution{Status: Optimal, X: x, Obj: obj}
}

// standardized is the problem after variable shifting and bound-row
// expansion: minimize c·y, Ay (op) b, y >= 0, with y_j = x_j - lower_j and
// fixed variables eliminated.
type standardized struct {
	orig       *Problem
	varMap     []int     // original var -> standardized var index, -1 if fixed
	fixedVal   []float64 // original var -> fixed value (when varMap < 0)
	lower      []float64 // original lower bounds (resolved)
	n          int       // standardized structural variable count
	c          []float64
	rows       [][]float64
	ops        []RelOp
	b          []float64
	infeasible bool
}

func standardize(p *Problem) *standardized {
	lower := make([]float64, p.NumVars)
	upper := make([]float64, p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		if p.Lower != nil {
			lower[j] = p.Lower[j]
		}
		upper[j] = math.Inf(1)
		if p.Upper != nil {
			upper[j] = p.Upper[j]
		}
	}
	st := &standardized{
		orig:     p,
		varMap:   make([]int, p.NumVars),
		fixedVal: make([]float64, p.NumVars),
		lower:    lower,
	}
	for j := 0; j < p.NumVars; j++ {
		switch {
		case upper[j] < lower[j]-tol:
			st.infeasible = true
			return st
		case upper[j] <= lower[j]+tol: // fixed variable
			st.varMap[j] = -1
			st.fixedVal[j] = lower[j]
		default:
			st.varMap[j] = st.n
			st.n++
		}
	}
	st.c = make([]float64, st.n)
	for j := 0; j < p.NumVars; j++ {
		if k := st.varMap[j]; k >= 0 {
			st.c[k] = p.C[j]
		}
	}
	for i, row := range p.A {
		newRow := make([]float64, st.n)
		rhs := p.B[i]
		for j, a := range row {
			if a == 0 {
				continue
			}
			if k := st.varMap[j]; k >= 0 {
				newRow[k] = a
				rhs -= a * lower[j] // shift y = x - lower
			} else {
				rhs -= a * st.fixedVal[j]
			}
		}
		st.rows = append(st.rows, newRow)
		st.ops = append(st.ops, p.Ops[i])
		st.b = append(st.b, rhs)
	}
	// Finite upper bounds become explicit rows y_j <= upper - lower.
	for j := 0; j < p.NumVars; j++ {
		k := st.varMap[j]
		if k < 0 || math.IsInf(upper[j], 1) {
			continue
		}
		row := make([]float64, st.n)
		row[k] = 1
		st.rows = append(st.rows, row)
		st.ops = append(st.ops, LE)
		st.b = append(st.b, upper[j]-lower[j])
	}
	return st
}

// tableau is the dense simplex tableau: m rows of structural + slack +
// artificial columns, plus RHS; obj holds the current reduced-cost row.
type tableau struct {
	m, n      int // rows, structural columns
	nSlack    int
	nArt      int
	cols      int // n + nSlack + nArt
	a         [][]float64
	rhs       []float64
	obj       []float64 // length cols+1; last entry is -objValue
	basis     []int
	artStart  int
	realCosts []float64
	iters     int
	ctx       context.Context // nil means non-cancellable
}

// ctxSampleInterval is how often (in pivots) the context is polled for
// cancellation; between samples the overshoot is bounded by the cost of
// ctxSampleInterval pivots.
const ctxSampleInterval = 64

func newTableau(st *standardized) *tableau {
	m := len(st.rows)
	t := &tableau{m: m, n: st.n}
	// Count slacks and artificials.
	for i := 0; i < m; i++ {
		op, b := st.ops[i], st.b[i]
		// Normalise to b >= 0 later; decide columns after normalisation.
		_ = op
		_ = b
	}
	type rowPlan struct {
		slack int // -1 none, else column offset with sign
		sign  float64
		art   bool
	}
	plans := make([]rowPlan, m)
	for i := 0; i < m; i++ {
		op := st.ops[i]
		sign := 1.0
		if st.b[i] < 0 {
			sign = -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			plans[i] = rowPlan{slack: t.nSlack, sign: sign}
			t.nSlack++
			// slack basic, no artificial needed
		case GE:
			plans[i] = rowPlan{slack: t.nSlack, sign: sign, art: true}
			t.nSlack++
			t.nArt++
		case EQ:
			plans[i] = rowPlan{slack: -1, sign: sign, art: true}
			t.nArt++
		}
	}
	t.cols = t.n + t.nSlack + t.nArt
	t.artStart = t.n + t.nSlack
	t.a = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)
	artIdx := t.artStart
	for i := 0; i < m; i++ {
		row := make([]float64, t.cols)
		sign := plans[i].sign
		for j := 0; j < t.n; j++ {
			row[j] = sign * st.rows[i][j]
		}
		t.rhs[i] = sign * st.b[i]
		op := st.ops[i]
		if sign < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			row[t.n+plans[i].slack] = 1
			t.basis[i] = t.n + plans[i].slack
		case GE:
			row[t.n+plans[i].slack] = -1
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		}
		t.a[i] = row
	}
	t.realCosts = make([]float64, t.cols)
	copy(t.realCosts, st.c)
	return t
}

// setObjective installs costs and zeroes reduced costs of basic columns.
func (t *tableau) setObjective(costs []float64) {
	t.obj = make([]float64, t.cols+1)
	copy(t.obj, costs)
	for i := 0; i < t.m; i++ {
		bj := t.basis[i]
		cb := t.obj[bj]
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			var aij float64
			if j < t.cols {
				aij = t.a[i][j]
			} else {
				aij = t.rhs[i]
			}
			t.obj[j] -= cb * aij
		}
	}
}

// iterate runs simplex pivots on the current objective until optimal.
// banned marks columns that may not enter (driven-out artificials).
func (t *tableau) iterate(banned []bool) Status {
	maxIters := 200 * (t.m + t.cols)
	blandAfter := blandCap * (t.m + t.cols)
	for iter := 0; ; iter++ {
		if iter > maxIters {
			return IterLimit
		}
		if t.ctx != nil && iter%ctxSampleInterval == 0 && t.ctx.Err() != nil {
			return Cancelled
		}
		t.iters++
		useBland := iter > blandAfter
		// Pricing: pick entering column.
		enter := -1
		best := -tol
		for j := 0; j < t.cols; j++ {
			if banned != nil && banned[j] {
				continue
			}
			rc := t.obj[j]
			if rc < -tol {
				if useBland {
					enter = j
					break
				}
				if rc < best {
					best = rc
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > tol {
				r := t.rhs[i] / aij
				if r < bestRatio-tol || (r < bestRatio+tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) pivot(row, col int) {
	piv := t.a[row][col]
	inv := 1 / piv
	for j := 0; j < t.cols; j++ {
		t.a[row][j] *= inv
	}
	t.rhs[row] *= inv
	t.a[row][col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.a[i][col] = 0
		t.rhs[i] -= f * t.rhs[row]
	}
	f := t.obj[col]
	if f != 0 {
		for j := 0; j < t.cols; j++ {
			t.obj[j] -= f * t.a[row][j]
		}
		t.obj[col] = 0
		t.obj[t.cols] -= f * t.rhs[row]
	}
	t.basis[row] = col
}

func (t *tableau) phase1() Status {
	if t.nArt == 0 {
		return Optimal
	}
	costs := make([]float64, t.cols)
	for j := t.artStart; j < t.cols; j++ {
		costs[j] = 1
	}
	t.setObjective(costs)
	status := t.iterate(nil)
	if status != Optimal {
		return status
	}
	// Phase-1 optimum: -obj[cols] is the artificial sum.
	if -t.obj[t.cols] > feasTol {
		return Infeasible
	}
	// Drive any artificial still basic (at zero) out of the basis.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > tol {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant; leave the zero-valued artificial basic.
			t.rhs[i] = 0
		}
	}
	return Optimal
}

func (t *tableau) phase2() Status {
	t.setObjective(t.realCosts)
	banned := make([]bool, t.cols)
	for j := t.artStart; j < t.cols; j++ {
		banned[j] = true
	}
	return t.iterate(banned)
}

// extract maps the tableau's basic solution back to original variables.
func (t *tableau) extract(st *standardized) []float64 {
	y := make([]float64, t.cols)
	for i := 0; i < t.m; i++ {
		y[t.basis[i]] = t.rhs[i]
	}
	x := make([]float64, st.orig.NumVars)
	for j := 0; j < st.orig.NumVars; j++ {
		if k := st.varMap[j]; k >= 0 {
			x[j] = y[k] + st.lower[j]
		} else {
			x[j] = st.fixedVal[j]
		}
	}
	return x
}

package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSimpleLE(t *testing.T) {
	// min -x - y  s.t. x + y <= 4, x <= 2, y <= 3  → x=2, y=2 (obj -4)...
	// actually x=2,y=2 gives -4; x=1,y=3 also -4. Optimum objective is -4.
	p := &Problem{
		NumVars: 2,
		C:       []float64{-1, -1},
		A:       [][]float64{{1, 1}},
		Ops:     []RelOp{LE},
		B:       []float64{4},
		Upper:   []float64{2, 3},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Obj, -4, 1e-9) {
		t.Fatalf("obj = %f, want -4", s.Obj)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x + 3y  s.t. x + y == 10, x >= 3  → x=10? No: y=0 allowed, so
	// x=10,y=0 gives 20; x=3,y=7 gives 27. Optimum 20.
	p := &Problem{
		NumVars: 2,
		C:       []float64{2, 3},
		A:       [][]float64{{1, 1}, {1, 0}},
		Ops:     []RelOp{EQ, GE},
		B:       []float64{10, 3},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Obj, 20, 1e-9) || !approx(s.X[0], 10, 1e-9) {
		t.Fatalf("x = %v obj = %f", s.X, s.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 5 and x <= 2 is infeasible.
	p := &Problem{
		NumVars: 1,
		C:       []float64{1},
		A:       [][]float64{{1}, {1}},
		Ops:     []RelOp{GE, LE},
		B:       []float64{5, 2},
	}
	if s := Solve(p); s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x >= 0 unbounded below in objective.
	p := &Problem{
		NumVars: 1,
		C:       []float64{-1},
		A:       [][]float64{},
		Ops:     []RelOp{},
		B:       []float64{},
	}
	if s := Solve(p); s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -3 means x >= 3; min x → 3.
	p := &Problem{
		NumVars: 1,
		C:       []float64{1},
		A:       [][]float64{{-1}},
		Ops:     []RelOp{LE},
		B:       []float64{-3},
	}
	s := Solve(p)
	if s.Status != Optimal || !approx(s.X[0], 3, 1e-9) {
		t.Fatalf("status %v x %v", s.Status, s.X)
	}
}

func TestFixedVariable(t *testing.T) {
	// Fix x=2 via bounds; min x + y s.t. x + y >= 5 → y = 3.
	p := &Problem{
		NumVars: 2,
		C:       []float64{1, 1},
		A:       [][]float64{{1, 1}},
		Ops:     []RelOp{GE},
		B:       []float64{5},
		Lower:   []float64{2, 0},
		Upper:   []float64{2, math.Inf(1)},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.X[0], 2, 1e-9) || !approx(s.X[1], 3, 1e-9) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestLowerBoundShift(t *testing.T) {
	// min x s.t. x >= 0 with lower bound 1.5 → 1.5.
	p := &Problem{
		NumVars: 1,
		C:       []float64{1},
		A:       [][]float64{},
		Ops:     []RelOp{},
		B:       []float64{},
		Lower:   []float64{1.5},
	}
	s := Solve(p)
	if s.Status != Optimal || !approx(s.X[0], 1.5, 1e-9) {
		t.Fatalf("status %v x %v", s.Status, s.X)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate equality rows must not break phase 1.
	p := &Problem{
		NumVars: 2,
		C:       []float64{1, 2},
		A:       [][]float64{{1, 1}, {1, 1}, {2, 2}},
		Ops:     []RelOp{EQ, EQ, EQ},
		B:       []float64{4, 4, 8},
	}
	s := Solve(p)
	if s.Status != Optimal || !approx(s.Obj, 4, 1e-9) { // x=4, y=0
		t.Fatalf("status %v obj %f", s.Status, s.Obj)
	}
}

// bruteForceLP solves tiny LPs with vertices enumeration over variable
// bound boxes and row intersections is overkill; instead, grid-search a
// fine lattice for a reference objective (valid for bounded feasible sets
// in [0, 4]^2).
func bruteGrid2(p *Problem, steps int) (float64, bool) {
	best := math.Inf(1)
	found := false
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			x := []float64{4 * float64(i) / float64(steps), 4 * float64(j) / float64(steps)}
			ok := true
			for r, row := range p.A {
				v := row[0]*x[0] + row[1]*x[1]
				switch p.Ops[r] {
				case LE:
					ok = ok && v <= p.B[r]+1e-9
				case GE:
					ok = ok && v >= p.B[r]-1e-9
				case EQ:
					ok = ok && math.Abs(v-p.B[r]) <= 4.0/float64(steps)
				}
			}
			if ok {
				obj := p.C[0]*x[0] + p.C[1]*x[1]
				if obj < best {
					best = obj
					found = true
				}
			}
		}
	}
	return best, found
}

// Randomised comparison against grid search on bounded 2-var LPs with LE
// rows only (avoiding EQ-grid quantisation issues).
func TestRandomisedAgainstGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nRows := 1 + rng.Intn(3)
		p := &Problem{
			NumVars: 2,
			C:       []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
			Upper:   []float64{4, 4},
		}
		for r := 0; r < nRows; r++ {
			p.A = append(p.A, []float64{rng.Float64() * 2, rng.Float64() * 2})
			p.Ops = append(p.Ops, LE)
			p.B = append(p.B, rng.Float64()*6)
		}
		s := Solve(p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		ref, ok := bruteGrid2(p, 400)
		if !ok {
			continue
		}
		if s.Obj > ref+1e-6 {
			t.Fatalf("trial %d: simplex obj %f worse than grid %f", trial, s.Obj, ref)
		}
		// Simplex may be better than the grid (finer), but not by more than
		// one grid cell of objective variation.
		if ref-s.Obj > 0.1 {
			t.Fatalf("trial %d: simplex obj %f suspiciously better than grid %f", trial, s.Obj, ref)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on malformed problem")
		}
	}()
	Solve(&Problem{NumVars: 2, C: []float64{1}})
}

func TestSolveContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := SolveContext(ctx, &Problem{
		NumVars: 2,
		C:       []float64{-1, -1},
		A:       [][]float64{{1, 1}},
		Ops:     []RelOp{LE},
		B:       []float64{4},
	})
	if s.Status != Cancelled {
		t.Fatalf("status %v, want cancelled", s.Status)
	}
	// A live context must match the plain solve exactly.
	want := Solve(&Problem{
		NumVars: 2,
		C:       []float64{-1, -1},
		A:       [][]float64{{1, 1}},
		Ops:     []RelOp{LE},
		B:       []float64{4},
	})
	got := SolveContext(context.Background(), &Problem{
		NumVars: 2,
		C:       []float64{-1, -1},
		A:       [][]float64{{1, 1}},
		Ops:     []RelOp{LE},
		B:       []float64{4},
	})
	if got.Status != want.Status || got.Obj != want.Obj {
		t.Fatalf("context solve diverged: %v/%v vs %v/%v", got.Status, got.Obj, want.Status, want.Obj)
	}
}

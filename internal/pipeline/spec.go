// StageSpec is the wire form of a pipeline: a JSON stage list shared by the
// HTTP endpoint (POST /pipeline), the CLI (gecco -pipeline) and saved specs.
package pipeline

import (
	"encoding/json"
	"fmt"
	"strings"

	"gecco/internal/abstraction"
	"gecco/internal/candidates"
	"gecco/internal/core"
	"gecco/internal/instances"
)

// StageSpec declares one stage. Stage selects the kind; the remaining
// fields apply to the kinds noted and are ignored elsewhere.
type StageSpec struct {
	Stage string `json:"stage"`

	// filter
	TopVariants     float64  `json:"topVariants,omitempty"`
	MinVariantCount int      `json:"minVariantCount,omitempty"`
	ProjectClasses  []string `json:"projectClasses,omitempty"`
	DropClasses     []string `json:"dropClasses,omitempty"`
	Sample          float64  `json:"sample,omitempty"`
	SampleSeed      int64    `json:"sampleSeed,omitempty"`
	Head            int      `json:"head,omitempty"`

	// suggest
	Top     int     `json:"top,omitempty"`
	MinPass float64 `json:"minPass,omitempty"`

	// abstract
	Mode            string `json:"mode,omitempty"`
	BeamWidth       int    `json:"beamWidth,omitempty"`
	MaxChecks       int    `json:"maxChecks,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	Strategy        string `json:"strategy,omitempty"`
	Policy          string `json:"policy,omitempty"`
	Solver          string `json:"solver,omitempty"`
	SkipMerge       bool   `json:"skipMerge,omitempty"`
	NamePrefix      string `json:"namePrefix,omitempty"`
	NameByClassAttr string `json:"nameByClassAttr,omitempty"`

	// discover
	EdgeFilter float64 `json:"edgeFilter,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`

	// conform
	Details bool `json:"details,omitempty"`
}

// DefaultSpecs is the stage list used when a request supplies none:
// suggest constraints if needed, abstract, discover, and conform.
func DefaultSpecs() []StageSpec {
	return []StageSpec{
		{Stage: "suggest"},
		{Stage: "abstract"},
		{Stage: "discover"},
		{Stage: "conform"},
	}
}

// ParseSpecs decodes a JSON stage list ([...] of StageSpec); empty input
// yields DefaultSpecs.
func ParseSpecs(text string) ([]StageSpec, error) {
	if strings.TrimSpace(text) == "" {
		return DefaultSpecs(), nil
	}
	var specs []StageSpec
	dec := json.NewDecoder(strings.NewReader(text))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("pipeline: parsing stage list: %w", err)
	}
	return specs, nil
}

// BuildStages turns specs into runnable stages; an empty list builds the
// default pipeline.
func BuildStages(specs []StageSpec) ([]Stage, error) {
	if len(specs) == 0 {
		specs = DefaultSpecs()
	}
	stages := make([]Stage, 0, len(specs))
	for i, sp := range specs {
		st, err := sp.build()
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %d: %w", i, err)
		}
		stages = append(stages, st)
	}
	return stages, nil
}

func (sp StageSpec) build() (Stage, error) {
	switch strings.ToLower(sp.Stage) {
	case "filter":
		if sp.TopVariants == 0 && sp.MinVariantCount == 0 && len(sp.ProjectClasses) == 0 &&
			len(sp.DropClasses) == 0 && sp.Sample == 0 && sp.Head == 0 {
			return nil, fmt.Errorf("filter stage configures no operation")
		}
		return FilterStage{
			TopVariants:     sp.TopVariants,
			MinVariantCount: sp.MinVariantCount,
			ProjectClasses:  sp.ProjectClasses,
			DropClasses:     sp.DropClasses,
			SamplePct:       sp.Sample,
			SampleSeed:      sp.SampleSeed,
			Head:            sp.Head,
		}, nil
	case "suggest":
		return SuggestStage{Top: sp.Top, MinPass: sp.MinPass}, nil
	case "abstract":
		cfg := core.Config{
			BeamWidth:          sp.BeamWidth,
			Workers:            sp.Workers,
			Budget:             candidates.Budget{MaxChecks: sp.MaxChecks},
			SkipExclusiveMerge: sp.SkipMerge,
			NamePrefix:         sp.NamePrefix,
			NameByClassAttr:    sp.NameByClassAttr,
		}
		var err error
		if cfg.Mode, err = parseMode(sp.Mode); err != nil {
			return nil, err
		}
		if cfg.Strategy, err = parseStrategy(sp.Strategy); err != nil {
			return nil, err
		}
		if cfg.Policy, err = parsePolicy(sp.Policy); err != nil {
			return nil, err
		}
		if cfg.Solver, err = parseSolver(sp.Solver); err != nil {
			return nil, err
		}
		return AbstractStage{Config: cfg}, nil
	case "discover":
		return DiscoverStage{EdgeFilter: sp.EdgeFilter, Epsilon: sp.Epsilon}, nil
	case "conform":
		return ConformStage{Details: sp.Details}, nil
	default:
		return nil, fmt.Errorf("unknown stage %q (want filter, suggest, abstract, discover, or conform)", sp.Stage)
	}
}

// The wire spellings below match the /abstract endpoint's.

func parseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "", "dfg", "dfg-unbounded":
		return core.DFGUnbounded, nil
	case "exh", "exhaustive":
		return core.Exhaustive, nil
	case "dfgk", "beam", "dfg-beam":
		return core.DFGBeam, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want exh, dfg, or dfgk)", s)
	}
}

func parseStrategy(s string) (abstraction.Strategy, error) {
	switch strings.ToLower(s) {
	case "", "completion":
		return abstraction.CompletionOnly, nil
	case "start-complete":
		return abstraction.StartComplete, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func parsePolicy(s string) (instances.Policy, error) {
	switch strings.ToLower(s) {
	case "", "split":
		return instances.SplitOnRepeat, nil
	case "whole":
		return instances.WholeTrace, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseSolver(s string) (core.Solver, error) {
	switch strings.ToLower(s) {
	case "", "bb":
		return core.SolverBB, nil
	case "mip":
		return core.SolverMIP, nil
	default:
		return 0, fmt.Errorf("unknown solver %q (want bb or mip)", s)
	}
}

// The built-in stages. Each stage's Digest covers exactly its
// result-affecting configuration (Workers-style throughput knobs are
// excluded — results are byte-identical at any worker count), so chain keys
// are stable across processes and restarts.
package pipeline

import (
	"context"
	"fmt"

	"gecco/internal/conformance"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/discovery"
	"gecco/internal/eventlog"
	"gecco/internal/logfilter"
	"gecco/internal/suggest"
)

// FilterStage preprocesses the working log. The configured operations are
// applied in a fixed order (variant filters, class projection, sampling,
// head), each a zero value when unused.
type FilterStage struct {
	// TopVariants keeps the most frequent variants covering this fraction
	// of traces (0 = off).
	TopVariants float64
	// MinVariantCount keeps traces whose variant occurs at least this
	// often (0 = off).
	MinVariantCount int
	// ProjectClasses keeps only events of these classes (empty = off).
	ProjectClasses []string
	// DropClasses removes events of these classes (empty = off).
	DropClasses []string
	// SamplePct keeps each trace with this probability (0 = off),
	// deterministically per SampleSeed.
	SamplePct  float64
	SampleSeed int64
	// Head keeps the first n traces (0 = off).
	Head int
}

func (f FilterStage) Name() string { return "filter" }

func (f FilterStage) Digest() string {
	return fmt.Sprintf("topVariants=%g minVariantCount=%d project=%q drop=%q sample=%g seed=%d head=%d",
		f.TopVariants, f.MinVariantCount, f.ProjectClasses, f.DropClasses, f.SamplePct, f.SampleSeed, f.Head)
}

func (f FilterStage) Needs() []Artifact    { return []Artifact{ArtifactLog} }
func (f FilterStage) Provides() []Artifact { return []Artifact{ArtifactLog} }

func (f FilterStage) Run(ctx context.Context, env *Env, in *State) (*State, error) {
	x := in.Index
	var err error
	if f.TopVariants > 0 {
		if x, err = logfilter.TopVariants(ctx, x, f.TopVariants); err != nil {
			return nil, err
		}
	}
	if f.MinVariantCount > 0 {
		if x, err = logfilter.MinVariantCount(ctx, x, f.MinVariantCount); err != nil {
			return nil, err
		}
	}
	if len(f.ProjectClasses) > 0 {
		if x, err = logfilter.ProjectClasses(ctx, x, f.ProjectClasses); err != nil {
			return nil, err
		}
	}
	if len(f.DropClasses) > 0 {
		if x, err = logfilter.DropClasses(ctx, x, f.DropClasses); err != nil {
			return nil, err
		}
	}
	if f.SamplePct > 0 {
		if x, err = logfilter.Sample(ctx, x, f.SamplePct, f.SampleSeed); err != nil {
			return nil, err
		}
	}
	if f.Head > 0 {
		if x, err = logfilter.Head(ctx, x, f.Head); err != nil {
			return nil, err
		}
	}
	if x.NumTraces() == 0 {
		return nil, fmt.Errorf("filter removed every trace")
	}
	next := *in
	next.Index = x
	// The working log changed content, so downstream session keying must
	// not collide with the unfiltered log's.
	next.IndexKey = DeriveKey(in.IndexKey, f.Name(), f.Digest())
	return &next, nil
}

// SuggestStage emits constraints when the request supplied none (§VIII):
// the log is profiled, suggestions are ranked, and the top suggestions at
// or above the singleton-pass floor become the active constraint set. When
// constraints are already present the stage is a pass-through, so a
// pipeline spec can always include it.
type SuggestStage struct {
	// Top is the maximum number of suggestions adopted (0 = default 3).
	Top int
	// MinPass is the singleton-pass floor a suggestion must reach to be
	// adopted (0 = default 1.0, i.e. only constraints that cannot be
	// individually infeasible).
	MinPass float64
}

func (s SuggestStage) withDefaults() SuggestStage {
	if s.Top == 0 {
		s.Top = 3
	}
	if s.MinPass == 0 {
		s.MinPass = 1.0
	}
	return s
}

func (s SuggestStage) Name() string { return "suggest" }

func (s SuggestStage) Digest() string {
	s = s.withDefaults()
	return fmt.Sprintf("top=%d minPass=%g", s.Top, s.MinPass)
}

func (s SuggestStage) Needs() []Artifact    { return []Artifact{ArtifactLog} }
func (s SuggestStage) Provides() []Artifact { return []Artifact{ArtifactConstraints} }

func (s SuggestStage) Run(ctx context.Context, env *Env, in *State) (*State, error) {
	if in.has(ArtifactConstraints) {
		return in, nil
	}
	s = s.withDefaults()
	sugs, err := suggest.Suggest(ctx, in.Index)
	if err != nil {
		return nil, err
	}
	set := constraints.NewSet()
	for _, sg := range sugs {
		if set.Len() >= s.Top {
			break
		}
		if sg.SingletonPass >= s.MinPass {
			set.Add(sg.Constraint)
		}
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("suggest found no constraint passing minPass=%g (the log may carry no usable attributes); supply constraints explicitly", s.MinPass)
	}
	next := *in
	next.Suggestions = sugs
	next.Constraints = set
	return &next, nil
}

// AbstractStage wraps core.Session.Solve: the working log is abstracted
// under the active constraints. Sessions come from Env.AcquireSession when
// the host provides one (the service's session LRU), and results go through
// Env.Lookup/StoreAbstract so pipeline runs share the host's result cache
// and disk tier with one-shot solves. Time-budget knobs are deliberately
// absent: every abstract stage is deterministic and therefore cacheable.
type AbstractStage struct {
	Config core.Config
}

func (a AbstractStage) cfg() core.Config {
	cfg := a.Config
	// Result caching and key chaining assume determinism; scrub the
	// fields that would break it (Parse never sets them, this guards
	// direct construction).
	cfg.Budget.TimeLimit = 0
	cfg.SolverTimeout = 0
	cfg.CustomCandidates = nil
	cfg.GroupingOnly = false
	return cfg
}

func (a AbstractStage) Name() string { return "abstract" }

func (a AbstractStage) Digest() string {
	cfg := a.cfg()
	return fmt.Sprintf("mode=%d beam=%d strategy=%d policy=%d maxchecks=%d solver=%d skipmerge=%t prefix=%q byattr=%q",
		cfg.Mode, cfg.BeamWidth, cfg.Strategy, cfg.Policy, cfg.Budget.MaxChecks,
		cfg.Solver, cfg.SkipExclusiveMerge, cfg.NamePrefix, cfg.NameByClassAttr)
}

func (a AbstractStage) Needs() []Artifact {
	return []Artifact{ArtifactLog, ArtifactConstraints}
}
func (a AbstractStage) Provides() []Artifact { return []Artifact{ArtifactAbstraction} }

func (a AbstractStage) Run(ctx context.Context, env *Env, in *State) (*State, error) {
	cfg := a.cfg()
	var res *core.Result
	if env.LookupAbstract != nil {
		if hit, ok := env.LookupAbstract(in.IndexKey, in.Constraints, cfg); ok {
			res = hit
		}
	}
	if res == nil {
		sess, err := a.session(ctx, env, in)
		if err != nil {
			return nil, err
		}
		if res, err = sess.Solve(ctx, in.Constraints, cfg); err != nil {
			return nil, err
		}
		if env.StoreAbstract != nil {
			env.StoreAbstract(in.IndexKey, in.Constraints, cfg, res)
		}
	}
	next := *in
	next.Abstraction = res
	if res.Feasible && res.Abstracted != nil {
		next.Abstracted = eventlog.NewIndex(res.Abstracted)
	} else {
		// Infeasible: the abstracted log is the input log (§V-C).
		next.Abstracted = in.Index
	}
	return &next, nil
}

func (a AbstractStage) session(ctx context.Context, env *Env, in *State) (*core.Session, error) {
	if env.AcquireSession != nil {
		return env.AcquireSession(ctx, in.IndexKey, in.Index)
	}
	return core.NewSessionFromIndex(in.Index)
}

// DiscoverStage mines a process model from the abstracted log (or the
// working log when no abstract stage ran).
type DiscoverStage struct {
	// EdgeFilter and Epsilon are discovery.Options; zero values select the
	// defaults there.
	EdgeFilter float64
	Epsilon    float64
}

func (d DiscoverStage) Name() string { return "discover" }

func (d DiscoverStage) Digest() string {
	return fmt.Sprintf("edgeFilter=%g epsilon=%g", d.EdgeFilter, d.Epsilon)
}

func (d DiscoverStage) Needs() []Artifact    { return []Artifact{ArtifactLog} }
func (d DiscoverStage) Provides() []Artifact { return []Artifact{ArtifactModel} }

func (d DiscoverStage) Run(ctx context.Context, env *Env, in *State) (*State, error) {
	m, err := discovery.Discover(ctx, in.View(), discovery.Options{EdgeFilter: d.EdgeFilter, Epsilon: d.Epsilon})
	if err != nil {
		return nil, err
	}
	next := *in
	next.Model = m
	return &next, nil
}

// ConformStage evaluates the abstracted log against the discovered model.
type ConformStage struct {
	// Details additionally reports the observed transitions the model
	// disallows (conformance.Result.Misfits).
	Details bool
}

func (c ConformStage) Name() string { return "conform" }

func (c ConformStage) Digest() string { return fmt.Sprintf("details=%t", c.Details) }

func (c ConformStage) Needs() []Artifact {
	return []Artifact{ArtifactLog, ArtifactModel}
}
func (c ConformStage) Provides() []Artifact { return []Artifact{ArtifactConformance} }

func (c ConformStage) Run(ctx context.Context, env *Env, in *State) (*State, error) {
	res, err := conformance.Evaluate(ctx, in.View(), in.Model, conformance.Options{Details: c.Details})
	if err != nil {
		return nil, err
	}
	next := *in
	next.Conformance = &res
	return &next, nil
}

// funcStage adapts a function into a Stage, for hosts that embed custom
// steps — the experiments harness runs its BL_Q/BL_G baseline solvers as
// engine stages this way.
type funcStage struct {
	name, digest    string
	needs, provides []Artifact
	run             func(ctx context.Context, env *Env, in *State) (*State, error)
}

// NewFuncStage wraps run as a Stage with the given identity. digest must be
// a deterministic encoding of run's configuration if the stage is ever used
// with a StageCache.
func NewFuncStage(name, digest string, needs, provides []Artifact, run func(ctx context.Context, env *Env, in *State) (*State, error)) Stage {
	return funcStage{name: name, digest: digest, needs: needs, provides: provides, run: run}
}

func (f funcStage) Name() string         { return f.name }
func (f funcStage) Digest() string       { return f.digest }
func (f funcStage) Needs() []Artifact    { return f.needs }
func (f funcStage) Provides() []Artifact { return f.provides }
func (f funcStage) Run(ctx context.Context, env *Env, in *State) (*State, error) {
	return f.run(ctx, env, in)
}

package pipeline

import (
	"context"
	"strings"
	"testing"

	"gecco/internal/constraints"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

var bg = context.Background()

func baseState(t *testing.T) *State {
	t.Helper()
	return &State{
		Index:    eventlog.NewIndex(procgen.RunningExampleTable1()),
		IndexKey: "test-log",
	}
}

// mapCache is a trivial StageCache recording per-stage traffic.
type mapCache struct {
	states map[string]*State
	gets   []string
	puts   []string
}

func newMapCache() *mapCache { return &mapCache{states: map[string]*State{}} }

func (c *mapCache) Get(stage, key string) (*State, bool) {
	c.gets = append(c.gets, stage)
	st, ok := c.states[key]
	return st, ok
}

func (c *mapCache) Put(stage, key string, st *State) {
	c.puts = append(c.puts, stage)
	c.states[key] = st
}

func TestValidate(t *testing.T) {
	base := baseState(t)
	if err := Validate([]Stage{DiscoverStage{}, ConformStage{}}, base); err != nil {
		t.Fatalf("discover→conform should validate: %v", err)
	}
	if err := Validate([]Stage{ConformStage{}}, base); err == nil {
		t.Fatal("conform without a model should not validate")
	}
	if err := Validate([]Stage{AbstractStage{}}, base); err == nil {
		t.Fatal("abstract without constraints should not validate")
	}
	if err := Validate([]Stage{SuggestStage{}, AbstractStage{}}, base); err != nil {
		t.Fatalf("suggest should satisfy abstract's constraint need: %v", err)
	}
	withCons := *base
	withCons.Constraints = constraints.NewSet(constraints.MustParse("|g| <= 3"))
	if err := Validate([]Stage{AbstractStage{}}, &withCons); err != nil {
		t.Fatalf("abstract with base constraints should validate: %v", err)
	}
	if err := Validate(nil, base); err == nil {
		t.Fatal("empty pipeline should not validate")
	}
}

func TestChainKeysCommitToPrefix(t *testing.T) {
	stages := func(details bool) []Stage {
		return []Stage{
			SuggestStage{},
			AbstractStage{},
			DiscoverStage{},
			ConformStage{Details: details},
		}
	}
	keys := func(sts []Stage) []string {
		out := make([]string, len(sts))
		k := BaseKey("digest", "cons")
		for i, st := range sts {
			k = ChainKey(k, st)
			out[i] = k
		}
		return out
	}
	a, b := keys(stages(false)), keys(stages(false))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stage %d key not deterministic", i)
		}
	}
	// A changed tail stage alters only its own key.
	c := keys(stages(true))
	for i := 0; i < 3; i++ {
		if a[i] != c[i] {
			t.Fatalf("upstream key %d changed by a tail-stage edit", i)
		}
	}
	if a[3] == c[3] {
		t.Fatal("conform key ignored its config")
	}
	// A changed base invalidates the whole chain.
	k := BaseKey("other", "cons")
	for i, st := range stages(false) {
		k = ChainKey(k, st)
		if k == a[i] {
			t.Fatalf("stage %d key ignored the base inputs", i)
		}
	}
}

func TestRunDefaultPipeline(t *testing.T) {
	stages, err := BuildStages(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(bg, stages, baseState(t), BaseKey("d", ""), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 4 {
		t.Fatalf("ran %d stages, want 4", len(res.Stages))
	}
	st := res.State
	if st.Constraints == nil || st.Constraints.Len() == 0 {
		t.Fatal("suggest stage adopted no constraints")
	}
	if len(st.Suggestions) == 0 {
		t.Fatal("suggestions not carried in the state")
	}
	if st.Abstraction == nil {
		t.Fatal("no abstraction result")
	}
	if st.Model == nil {
		t.Fatal("no discovered model")
	}
	if st.Conformance == nil {
		t.Fatal("no conformance result")
	}
	if f := st.Conformance.Fitness; f < 0 || f > 1 {
		t.Fatalf("fitness %f out of range", f)
	}
	if p := st.Conformance.Precision; p < 0 || p > 1 {
		t.Fatalf("precision %f out of range", p)
	}
}

func TestSuggestPassThroughWithUserConstraints(t *testing.T) {
	base := baseState(t)
	base.Constraints = constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
	stages, err := BuildStages(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(bg, stages, base, BaseKey("d", base.Constraints.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.State.Suggestions) != 0 {
		t.Fatal("suggest should be a pass-through when constraints are supplied")
	}
	if res.State.Constraints.Len() != 1 {
		t.Fatal("user constraints replaced")
	}
	if !res.State.Abstraction.Feasible {
		t.Fatal("role homogeneity is feasible on the running example")
	}
}

func TestStageCacheAdoption(t *testing.T) {
	stages, err := BuildStages(nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMapCache()
	env := &Env{Cache: cache}
	key := BaseKey("d", "")
	if _, err := Run(bg, stages, baseState(t), key, env); err != nil {
		t.Fatal(err)
	}
	if len(cache.puts) != 4 {
		t.Fatalf("first run stored %d states, want 4", len(cache.puts))
	}
	res, err := Run(bg, stages, baseState(t), key, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if !st.Cached {
			t.Fatalf("stage %s re-executed on an identical re-run", st.Stage)
		}
	}
	// Changing only the tail stage reuses every upstream state.
	tail := []Stage{stages[0], stages[1], stages[2], ConformStage{Details: true}}
	res, err = Run(bg, tail, baseState(t), key, env)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Stages[:3] {
		if !st.Cached {
			t.Fatalf("upstream stage %d (%s) re-executed after a tail-only change", i, st.Stage)
		}
	}
	if res.Stages[3].Cached {
		t.Fatal("edited conform stage served from cache")
	}
}

func TestFilterStage(t *testing.T) {
	f := FilterStage{TopVariants: 0.8}
	base := baseState(t)
	out, err := f.Run(bg, &Env{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if out.IndexKey == base.IndexKey {
		t.Fatal("filter did not re-derive the index key")
	}
	if out.Index == base.Index {
		t.Fatal("filter returned the input index")
	}
	// A filter that removes every trace is an error, not an empty log.
	head := FilterStage{Head: 0, ProjectClasses: []string{"no-such-class"}}
	if _, err := head.Run(bg, &Env{}, base); err == nil {
		t.Fatal("all-trace removal should error")
	}
}

func TestSpecParsing(t *testing.T) {
	specs, err := ParseSpecs("")
	if err != nil || len(specs) != 4 {
		t.Fatalf("empty spec should yield the 4 default stages: %v", err)
	}
	specs, err = ParseSpecs(`[{"stage":"filter","topVariants":0.8},{"stage":"discover"}]`)
	if err != nil || len(specs) != 2 {
		t.Fatalf("parse: %v", err)
	}
	if _, err := BuildStages(specs); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpecs(`[{"stage":"abstract","nope":1}]`); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := BuildStages([]StageSpec{{Stage: "filter"}}); err == nil {
		t.Fatal("no-op filter accepted")
	}
	if _, err := BuildStages([]StageSpec{{Stage: "bogus"}}); err == nil {
		t.Fatal("unknown stage accepted")
	}
	if _, err := BuildStages([]StageSpec{{Stage: "abstract", Mode: "warp"}}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	stages, _ := BuildStages(nil)
	_, err := Run(ctx, stages, baseState(t), BaseKey("d", ""), nil)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled run returned %v", err)
	}
}

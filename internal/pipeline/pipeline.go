// Package pipeline is the staged process-mining engine that composes
// GECCO's abstraction step (§V) with the surrounding workflow the paper
// evaluates it in (§VI): log filtering, constraint suggestion (§VIII),
// abstraction, Split-Miner-style discovery, and directly-follows
// conformance checking. A pipeline is an ordered list of Stages; each stage
// consumes and produces typed artifacts carried in an immutable State, and
// every stage has a deterministic digest so that a run's stage keys form a
// hash chain: stage i's key commits to the base inputs (log digest and
// user constraints) and to the configuration of every stage up to and
// including i. Hosts (the service layer, the CLI, the experiments harness)
// supply an Env with optional caching and session-reuse hooks; the engine
// itself is deterministic and allocation-conscious but policy-free.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"time"

	"gecco/internal/conformance"
	"gecco/internal/constraints"
	"gecco/internal/core"
	"gecco/internal/discovery"
	"gecco/internal/eventlog"
	"gecco/internal/suggest"
)

// Version is folded into every base key so that engine changes that alter
// stage outputs invalidate cached states instead of replaying them.
const Version = "gecco-pipeline-v1"

// Artifact names a typed value a stage consumes or produces. The engine
// validates before running that every stage's needs are met by the base
// state or an earlier stage's provides.
type Artifact string

const (
	// ArtifactLog is the working event-log index (possibly filtered).
	ArtifactLog Artifact = "log"
	// ArtifactConstraints is a non-empty constraint set.
	ArtifactConstraints Artifact = "constraints"
	// ArtifactAbstraction is a core.Result from the solver.
	ArtifactAbstraction Artifact = "abstraction"
	// ArtifactModel is a discovered process model.
	ArtifactModel Artifact = "model"
	// ArtifactConformance is a fitness/precision evaluation.
	ArtifactConformance Artifact = "conformance"
)

// State carries the artifacts flowing between stages. States are treated as
// immutable: a stage copies the struct, sets its outputs, and returns the
// copy, so cached states can be shared between runs without aliasing
// hazards. A State holds data only — never a live session — so caching a
// state pins indexes but no solver memos.
type State struct {
	// Index is the working log view all stages operate on.
	Index *eventlog.Index
	// IndexKey identifies Index's content for session keying: the raw
	// log's digest at the pipeline entry, re-derived by every
	// index-transforming stage. Two runs whose filter prefixes agree share
	// the key and so share solver sessions.
	IndexKey string
	// Constraints is the active constraint set (user-supplied or emitted
	// by the suggest stage).
	Constraints *constraints.Set
	// Suggestions are the ranked proposals of the suggest stage (also
	// populated when constraints were user-supplied and the stage was a
	// pass-through, in which case it is nil).
	Suggestions []suggest.Suggestion
	// Abstraction is the solver outcome.
	Abstraction *core.Result
	// Abstracted is the indexed abstracted log when the solve was
	// feasible; on an infeasible solve it aliases Index (the paper's §V-C
	// contract: infeasibility hands the input log through unchanged).
	Abstracted *eventlog.Index
	// Model is the discovered process model.
	Model *discovery.Model
	// Conformance is the fitness/precision evaluation of Model.
	Conformance *conformance.Result
}

// View returns the index downstream mining stages should operate on: the
// abstracted log when an abstract stage ran, the working index otherwise.
func (s *State) View() *eventlog.Index {
	if s.Abstracted != nil {
		return s.Abstracted
	}
	return s.Index
}

// has reports whether the state carries the artifact.
func (s *State) has(a Artifact) bool {
	switch a {
	case ArtifactLog:
		return s.Index != nil
	case ArtifactConstraints:
		return s.Constraints != nil && s.Constraints.Len() > 0
	case ArtifactAbstraction:
		return s.Abstraction != nil
	case ArtifactModel:
		return s.Model != nil
	case ArtifactConformance:
		return s.Conformance != nil
	}
	return false
}

// Stage is one step of a pipeline.
type Stage interface {
	// Name is the stage's stable identifier ("filter", "abstract", ...);
	// it labels cache counters and progress reports.
	Name() string
	// Digest is a deterministic encoding of the stage's result-affecting
	// configuration. It feeds the stage-key chain, so two stages with
	// equal (Name, Digest) given equal upstream keys produce equal states.
	Digest() string
	// Needs lists the artifacts the stage consumes.
	Needs() []Artifact
	// Provides lists the artifacts the stage produces.
	Provides() []Artifact
	// Run executes the stage. It must not mutate in; it returns a new
	// state carrying in's artifacts plus its own outputs.
	Run(ctx context.Context, env *Env, in *State) (*State, error)
}

// StageCache is the per-stage result cache a host may plug into the Env.
// Keys are chain keys: a hit means the exact same base inputs and stage
// prefix ran before, so the cached state can be adopted wholesale. The
// stage name is informational (per-stage hit/miss accounting).
type StageCache interface {
	Get(stage, key string) (*State, bool)
	Put(stage, key string, s *State)
}

// Env supplies host hooks to the engine. The zero value runs every stage
// standalone: fresh sessions, no caching.
type Env struct {
	// AcquireSession, when non-nil, returns a solver session for the
	// index identified by key (State.IndexKey). Hosts back this with the
	// session LRU so repeated runs on the same (possibly filtered) log
	// reuse frozen artifacts and warm distance memos.
	AcquireSession func(ctx context.Context, key string, x *eventlog.Index) (*core.Session, error)
	// LookupAbstract and StoreAbstract, when non-nil, layer the abstract
	// stage onto a host result cache keyed by (index key, constraint set,
	// config) — the same keying the one-shot solve endpoint uses, so
	// pipeline and non-pipeline runs of an unfiltered log share entries.
	// Only consulted for cacheable configs (see service.Cacheable).
	LookupAbstract func(indexKey string, set *constraints.Set, cfg core.Config) (*core.Result, bool)
	StoreAbstract  func(indexKey string, set *constraints.Set, cfg core.Config, res *core.Result)
	// Cache is the per-stage state cache; nil disables stage caching.
	Cache StageCache
}

// StageResult reports one stage of a run.
type StageResult struct {
	Stage string
	// Key is the stage's chain key.
	Key string
	// Cached reports that the stage's state was adopted from the cache
	// instead of executed.
	Cached   bool
	Duration time.Duration
}

// Result is the outcome of a pipeline run.
type Result struct {
	State  *State
	Stages []StageResult
}

// Validate checks that every stage's needs are satisfied by the base state
// or an earlier stage's provides, without running anything.
func Validate(stages []Stage, base *State) error {
	if len(stages) == 0 {
		return fmt.Errorf("pipeline: no stages")
	}
	have := map[Artifact]bool{}
	for _, a := range []Artifact{ArtifactLog, ArtifactConstraints, ArtifactAbstraction, ArtifactModel, ArtifactConformance} {
		have[a] = base.has(a)
	}
	for i, st := range stages {
		for _, need := range st.Needs() {
			if !have[need] {
				return fmt.Errorf("pipeline: stage %d (%s) needs %q, which no earlier stage provides (add one, or supply it with the request)", i, st.Name(), need)
			}
		}
		for _, p := range st.Provides() {
			have[p] = true
		}
	}
	return nil
}

// BaseKey derives the key chain's anchor from the raw log digest and the
// canonical rendering of the user-supplied constraints. The engine version
// is folded in so format or semantics changes never resurrect stale states.
func BaseKey(logDigest, canonicalConstraints string) string {
	return DeriveKey(Version, logDigest, canonicalConstraints)
}

// ChainKey extends a chain key by one stage.
func ChainKey(prev string, st Stage) string {
	return DeriveKey(prev, st.Name(), st.Digest())
}

// DeriveKey hashes length-prefixed parts into a hex key, so no two distinct
// part lists share an encoding.
func DeriveKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		writeStr(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeStr(h hash.Hash, s string) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
	h.Write(buf[:])
	h.Write([]byte(s))
}

// Run validates and executes the stages against the base state. baseKey
// anchors the stage-key chain (see BaseKey); env supplies host hooks and
// may be nil. On a stage cache hit the cached state is adopted and the
// stage is not executed — because keys chain, a hit guarantees every
// upstream artifact is byte-identical to what a fresh run would produce.
func Run(ctx context.Context, stages []Stage, base *State, baseKey string, env *Env) (*Result, error) {
	if env == nil {
		env = &Env{}
	}
	if base == nil || base.Index == nil {
		return nil, fmt.Errorf("pipeline: base state has no log")
	}
	if err := Validate(stages, base); err != nil {
		return nil, err
	}
	res := &Result{State: base, Stages: make([]StageResult, 0, len(stages))}
	key := baseKey
	for _, st := range stages {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		key = ChainKey(key, st)
		if env.Cache != nil {
			if cached, ok := env.Cache.Get(st.Name(), key); ok {
				res.State = cached
				res.Stages = append(res.Stages, StageResult{Stage: st.Name(), Key: key, Cached: true})
				continue
			}
		}
		t0 := time.Now()
		next, err := st.Run(ctx, env, res.State)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %s: %w", st.Name(), err)
		}
		res.State = next
		res.Stages = append(res.Stages, StageResult{Stage: st.Name(), Key: key, Duration: time.Since(t0)})
		if env.Cache != nil {
			env.Cache.Put(st.Name(), key, next)
		}
	}
	return res, nil
}

// Package xes reads and writes event logs in the IEEE XES XML format, the
// interchange format of the public logs used in the paper's evaluation. Only
// the log/trace/event structure and the standard attribute kinds (string,
// int, float, date, boolean) are supported; extensions, globals and
// classifiers are skipped on read and a minimal header is emitted on write.
// The canonical event class is the concept:name attribute.
package xes

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"gecco/internal/eventlog"
)

// attribute mirrors one XES attribute element of any kind.
type attribute struct {
	XMLName xml.Name
	Key     string `xml:"key,attr"`
	Value   string `xml:"value,attr"`
}

type xmlEvent struct {
	Attrs []attribute `xml:",any"`
}

// xmlTrace captures a trace's events plus its attributes of every kind:
// the named Events field takes the <event> children, the ",any" field all
// remaining elements (string, int, float, date, boolean, id, ...).
// Matching only "string" here used to silently drop every non-string
// trace-level attribute.
type xmlTrace struct {
	Attrs  []attribute `xml:",any"`
	Events []xmlEvent  `xml:"event"`
}

type xmlLog struct {
	XMLName xml.Name `xml:"log"`
	// Attrs likewise captures log-level attributes of every kind. It also
	// receives non-attribute header elements (<extension>, <global>,
	// <classifier>), which carry no key attribute and are skipped on read.
	Attrs  []attribute `xml:",any"`
	Traces []xmlTrace  `xml:"trace"`
}

// conceptName is the XES attribute carrying names of logs, traces & events.
const conceptName = "concept:name"

// timeTimestamp is the XES attribute carrying event timestamps.
const timeTimestamp = "time:timestamp"

// lifecycleTransition is the XES attribute carrying lifecycle states.
const lifecycleTransition = "lifecycle:transition"

// Read parses an XES document into a Log. Events without a concept:name are
// rejected, as class-less events cannot participate in abstraction.
func Read(r io.Reader) (*eventlog.Log, error) {
	var doc xmlLog
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("xes: decode: %w", err)
	}
	log := &eventlog.Log{}
	for _, a := range doc.Attrs {
		switch {
		case a.Key == "":
			// Header elements (extension, global, classifier) are not
			// attributes; they are intentionally skipped.
		case a.Key == conceptName:
			log.Name = a.Value
		default:
			v, err := decodeValue(a)
			if err != nil {
				return nil, fmt.Errorf("xes: log attr %q: %w", a.Key, err)
			}
			log.SetAttr(a.Key, v)
		}
	}
	for ti, t := range doc.Traces {
		trace := eventlog.Trace{ID: fmt.Sprintf("t%d", ti)}
		for _, a := range t.Attrs {
			switch {
			case a.Key == "":
			case a.Key == conceptName:
				trace.ID = a.Value
			default:
				v, err := decodeValue(a)
				if err != nil {
					return nil, fmt.Errorf("xes: trace %d attr %q: %w", ti, a.Key, err)
				}
				trace.SetAttr(a.Key, v)
			}
		}
		for ei, e := range t.Events {
			ev := eventlog.Event{}
			for _, a := range e.Attrs {
				v, err := decodeValue(a)
				if err != nil {
					return nil, fmt.Errorf("xes: trace %d event %d attr %q: %w", ti, ei, a.Key, err)
				}
				switch a.Key {
				case conceptName:
					ev.Class = v.Str
				case timeTimestamp:
					ev.SetAttr(eventlog.AttrTimestamp, v)
				case lifecycleTransition:
					ev.SetAttr(eventlog.AttrLifecycle, v)
				default:
					ev.SetAttr(a.Key, v)
				}
			}
			if ev.Class == "" {
				return nil, fmt.Errorf("xes: trace %d event %d: missing %s", ti, ei, conceptName)
			}
			trace.Events = append(trace.Events, ev)
		}
		log.Traces = append(log.Traces, trace)
	}
	return log, nil
}

// ReadIndex parses an XES document straight into a columnar eventlog.Index,
// feeding an eventlog.Builder event by event instead of materialising a
// *Log first. The result is identical to eventlog.NewIndex(Read(r)) — same
// class universe, arena, attribute columns, and reconstruction — for the
// cost of one allocation pass less. Use it when the caller only needs the
// index (e.g. building a core.Session); Read remains the entry point when
// the Log itself is required.
func ReadIndex(r io.Reader) (*eventlog.Index, error) {
	var doc xmlLog
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("xes: decode: %w", err)
	}
	b := eventlog.NewBuilder()
	for _, a := range doc.Attrs {
		switch {
		case a.Key == "":
			// Header elements (extension, global, classifier) are skipped.
		case a.Key == conceptName:
			b.SetName(a.Value)
		default:
			v, err := decodeValue(a)
			if err != nil {
				return nil, fmt.Errorf("xes: log attr %q: %w", a.Key, err)
			}
			b.SetLogAttr(a.Key, v)
		}
	}
	for ti, t := range doc.Traces {
		// The trace id must be known before StartTrace; scan for the last
		// concept:name first (matching Read's last-write-wins map semantics).
		id := fmt.Sprintf("t%d", ti)
		for _, a := range t.Attrs {
			if a.Key == conceptName {
				id = a.Value
			}
		}
		b.StartTrace(id)
		for _, a := range t.Attrs {
			if a.Key == "" || a.Key == conceptName {
				continue
			}
			v, err := decodeValue(a)
			if err != nil {
				return nil, fmt.Errorf("xes: trace %d attr %q: %w", ti, a.Key, err)
			}
			b.SetTraceAttr(a.Key, v)
		}
		for ei, e := range t.Events {
			class := ""
			for _, a := range e.Attrs {
				if a.Key == conceptName {
					v, err := decodeValue(a)
					if err != nil {
						return nil, fmt.Errorf("xes: trace %d event %d attr %q: %w", ti, ei, a.Key, err)
					}
					class = v.Str
				}
			}
			if class == "" {
				return nil, fmt.Errorf("xes: trace %d event %d: missing %s", ti, ei, conceptName)
			}
			b.AddEvent(class)
			for _, a := range e.Attrs {
				if a.Key == conceptName {
					continue
				}
				v, err := decodeValue(a)
				if err != nil {
					return nil, fmt.Errorf("xes: trace %d event %d attr %q: %w", ti, ei, a.Key, err)
				}
				switch a.Key {
				case timeTimestamp:
					b.SetEventAttr(eventlog.AttrTimestamp, v)
				case lifecycleTransition:
					b.SetEventAttr(eventlog.AttrLifecycle, v)
				default:
					b.SetEventAttr(a.Key, v)
				}
			}
		}
	}
	return b.Build(), nil
}

func decodeValue(a attribute) (eventlog.Value, error) {
	switch a.XMLName.Local {
	case "string", "id":
		return eventlog.String(a.Value), nil
	case "int":
		i, err := strconv.ParseInt(a.Value, 10, 64)
		if err != nil {
			return eventlog.Value{}, err
		}
		return eventlog.Int(i), nil
	case "float":
		f, err := strconv.ParseFloat(a.Value, 64)
		if err != nil {
			return eventlog.Value{}, err
		}
		return eventlog.Float(f), nil
	case "date":
		t, err := parseXESTime(a.Value)
		if err != nil {
			return eventlog.Value{}, err
		}
		return eventlog.Time(t), nil
	case "boolean":
		b, err := strconv.ParseBool(a.Value)
		if err != nil {
			return eventlog.Value{}, err
		}
		return eventlog.Bool(b), nil
	}
	// Unknown kinds (lists, containers) are preserved as strings.
	return eventlog.String(a.Value), nil
}

func parseXESTime(s string) (time.Time, error) {
	for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02T15:04:05.000-07:00", "2006-01-02T15:04:05"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognised timestamp %q", s)
}

// Write serialises the log as an XES document.
func Write(w io.Writer, log *eventlog.Log) error {
	bw := &errWriter{w: w}
	bw.printf("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")
	bw.printf("<log xes.version=\"1.0\" xes.features=\"\">\n")
	bw.printf("  <string key=\"concept:name\" value=%q/>\n", log.Name)
	for _, k := range sortedAttrKeys(log.Attrs) {
		writeAttr(bw, "  ", k, log.Attrs[k])
	}
	for i := range log.Traces {
		tr := &log.Traces[i]
		bw.printf("  <trace>\n    <string key=\"concept:name\" value=%q/>\n", tr.ID)
		for _, k := range sortedAttrKeys(tr.Attrs) {
			writeAttr(bw, "    ", k, tr.Attrs[k])
		}
		for j := range tr.Events {
			ev := &tr.Events[j]
			bw.printf("    <event>\n")
			bw.printf("      <string key=\"concept:name\" value=%q/>\n", ev.Class)
			for _, k := range sortedAttrKeys(ev.Attrs) {
				writeAttr(bw, "      ", k, ev.Attrs[k])
			}
			bw.printf("    </event>\n")
		}
		bw.printf("  </trace>\n")
	}
	bw.printf("</log>\n")
	return bw.err
}

func writeAttr(bw *errWriter, indent, key string, v eventlog.Value) {
	xkey := key
	switch key {
	case eventlog.AttrTimestamp:
		xkey = timeTimestamp
	case eventlog.AttrLifecycle:
		xkey = lifecycleTransition
	}
	switch v.Kind {
	case eventlog.KindString:
		bw.printf("%s<string key=%q value=%q/>\n", indent, xkey, v.Str)
	case eventlog.KindInt:
		bw.printf("%s<int key=%q value=\"%d\"/>\n", indent, xkey, int64(v.Num))
	case eventlog.KindFloat:
		bw.printf("%s<float key=%q value=\"%g\"/>\n", indent, xkey, v.Num)
	case eventlog.KindTime:
		bw.printf("%s<date key=%q value=%q/>\n", indent, xkey, v.Time.Format(time.RFC3339Nano))
	case eventlog.KindBool:
		bw.printf("%s<boolean key=%q value=\"%t\"/>\n", indent, xkey, v.Bool)
	}
}

func sortedAttrKeys(m map[string]eventlog.Value) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

package xes

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

const sampleXES = `<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0">
  <string key="concept:name" value="sample"/>
  <trace>
    <string key="concept:name" value="case-1"/>
    <event>
      <string key="concept:name" value="register"/>
      <date key="time:timestamp" value="2021-06-01T08:00:00Z"/>
      <string key="role" value="clerk"/>
      <float key="cost" value="12.5"/>
      <int key="items" value="3"/>
      <boolean key="urgent" value="true"/>
    </event>
    <event>
      <string key="concept:name" value="approve"/>
      <date key="time:timestamp" value="2021-06-01T09:00:00Z"/>
    </event>
  </trace>
</log>`

func TestReadSample(t *testing.T) {
	log, err := Read(strings.NewReader(sampleXES))
	if err != nil {
		t.Fatal(err)
	}
	if log.Name != "sample" {
		t.Errorf("name = %q", log.Name)
	}
	if len(log.Traces) != 1 || log.Traces[0].ID != "case-1" {
		t.Fatalf("traces = %+v", log.Traces)
	}
	ev := log.Traces[0].Events
	if len(ev) != 2 || ev[0].Class != "register" || ev[1].Class != "approve" {
		t.Fatalf("events = %+v", ev)
	}
	if v := ev[0].Attrs["role"]; v.Str != "clerk" {
		t.Errorf("role = %+v", v)
	}
	if v := ev[0].Attrs["cost"]; v.Kind != eventlog.KindFloat || v.Num != 12.5 {
		t.Errorf("cost = %+v", v)
	}
	if v := ev[0].Attrs["items"]; v.Kind != eventlog.KindInt || v.Num != 3 {
		t.Errorf("items = %+v", v)
	}
	if v := ev[0].Attrs["urgent"]; v.Kind != eventlog.KindBool || !v.Bool {
		t.Errorf("urgent = %+v", v)
	}
	ts, ok := ev[0].Timestamp()
	if !ok || !ts.Equal(time.Date(2021, 6, 1, 8, 0, 0, 0, time.UTC)) {
		t.Errorf("timestamp = %v", ts)
	}
}

func TestReadRejectsClasslessEvent(t *testing.T) {
	src := `<log><trace><event><string key="x" value="y"/></event></trace></log>`
	if _, err := Read(strings.NewReader(src)); err == nil {
		t.Fatal("expected error for event without concept:name")
	}
}

func TestRoundTrip(t *testing.T) {
	orig := procgen.RunningExampleTable1()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Errorf("name %q != %q", back.Name, orig.Name)
	}
	if len(back.Traces) != len(orig.Traces) {
		t.Fatalf("trace count %d != %d", len(back.Traces), len(orig.Traces))
	}
	for i := range orig.Traces {
		ot, bt := &orig.Traces[i], &back.Traces[i]
		if ot.Variant() != bt.Variant() {
			t.Fatalf("trace %d variant mismatch: %q vs %q", i, ot.Variant(), bt.Variant())
		}
		for j := range ot.Events {
			oe, be := &ot.Events[j], &bt.Events[j]
			if len(oe.Attrs) != len(be.Attrs) {
				t.Fatalf("trace %d event %d attr count %d != %d", i, j, len(be.Attrs), len(oe.Attrs))
			}
			for k, ov := range oe.Attrs {
				bv, ok := be.Attrs[k]
				if !ok {
					t.Fatalf("trace %d event %d missing attr %q", i, j, k)
				}
				if ov.Kind != bv.Kind {
					t.Fatalf("attr %q kind %v != %v", k, bv.Kind, ov.Kind)
				}
				if ov.Kind == eventlog.KindTime && !ov.Time.Equal(bv.Time) {
					t.Fatalf("attr %q time %v != %v", k, bv.Time, ov.Time)
				}
			}
		}
	}
}

func TestTimestampFormats(t *testing.T) {
	for _, s := range []string{
		"2021-06-01T08:00:00Z",
		"2021-06-01T08:00:00.123Z",
		"2021-06-01T08:00:00+02:00",
		"2021-06-01T08:00:00.000+02:00",
	} {
		if _, err := parseXESTime(s); err != nil {
			t.Errorf("parseXESTime(%q): %v", s, err)
		}
	}
	if _, err := parseXESTime("junk"); err == nil {
		t.Error("expected error for junk timestamp")
	}
}

package xes

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

const sampleXES = `<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0">
  <string key="concept:name" value="sample"/>
  <trace>
    <string key="concept:name" value="case-1"/>
    <event>
      <string key="concept:name" value="register"/>
      <date key="time:timestamp" value="2021-06-01T08:00:00Z"/>
      <string key="role" value="clerk"/>
      <float key="cost" value="12.5"/>
      <int key="items" value="3"/>
      <boolean key="urgent" value="true"/>
    </event>
    <event>
      <string key="concept:name" value="approve"/>
      <date key="time:timestamp" value="2021-06-01T09:00:00Z"/>
    </event>
  </trace>
</log>`

func TestReadSample(t *testing.T) {
	log, err := Read(strings.NewReader(sampleXES))
	if err != nil {
		t.Fatal(err)
	}
	if log.Name != "sample" {
		t.Errorf("name = %q", log.Name)
	}
	if len(log.Traces) != 1 || log.Traces[0].ID != "case-1" {
		t.Fatalf("traces = %+v", log.Traces)
	}
	ev := log.Traces[0].Events
	if len(ev) != 2 || ev[0].Class != "register" || ev[1].Class != "approve" {
		t.Fatalf("events = %+v", ev)
	}
	if v := ev[0].Attrs["role"]; v.Str != "clerk" {
		t.Errorf("role = %+v", v)
	}
	if v := ev[0].Attrs["cost"]; v.Kind != eventlog.KindFloat || v.Num != 12.5 {
		t.Errorf("cost = %+v", v)
	}
	if v := ev[0].Attrs["items"]; v.Kind != eventlog.KindInt || v.Num != 3 {
		t.Errorf("items = %+v", v)
	}
	if v := ev[0].Attrs["urgent"]; v.Kind != eventlog.KindBool || !v.Bool {
		t.Errorf("urgent = %+v", v)
	}
	ts, ok := ev[0].Timestamp()
	if !ok || !ts.Equal(time.Date(2021, 6, 1, 8, 0, 0, 0, time.UTC)) {
		t.Errorf("timestamp = %v", ts)
	}
}

func TestReadRejectsClasslessEvent(t *testing.T) {
	src := `<log><trace><event><string key="x" value="y"/></event></trace></log>`
	if _, err := Read(strings.NewReader(src)); err == nil {
		t.Fatal("expected error for event without concept:name")
	}
}

func TestRoundTrip(t *testing.T) {
	orig := procgen.RunningExampleTable1()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Errorf("name %q != %q", back.Name, orig.Name)
	}
	if len(back.Traces) != len(orig.Traces) {
		t.Fatalf("trace count %d != %d", len(back.Traces), len(orig.Traces))
	}
	for i := range orig.Traces {
		ot, bt := &orig.Traces[i], &back.Traces[i]
		if ot.Variant() != bt.Variant() {
			t.Fatalf("trace %d variant mismatch: %q vs %q", i, ot.Variant(), bt.Variant())
		}
		for j := range ot.Events {
			oe, be := &ot.Events[j], &bt.Events[j]
			if len(oe.Attrs) != len(be.Attrs) {
				t.Fatalf("trace %d event %d attr count %d != %d", i, j, len(be.Attrs), len(oe.Attrs))
			}
			for k, ov := range oe.Attrs {
				bv, ok := be.Attrs[k]
				if !ok {
					t.Fatalf("trace %d event %d missing attr %q", i, j, k)
				}
				if ov.Kind != bv.Kind {
					t.Fatalf("attr %q kind %v != %v", k, bv.Kind, ov.Kind)
				}
				if ov.Kind == eventlog.KindTime && !ov.Time.Equal(bv.Time) {
					t.Fatalf("attr %q time %v != %v", k, bv.Time, ov.Time)
				}
			}
		}
	}
}

// TestTraceAndLogAttributeKinds pins the satellite fix: trace- and
// log-level attributes of every kind (not just <string>) are captured on
// read, survive a write/read round trip, and non-attribute header elements
// are still skipped.
func TestTraceAndLogAttributeKinds(t *testing.T) {
	const src = `<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0">
  <extension name="Concept" prefix="concept" uri="http://www.xes-standard.org/concept.xesext"/>
  <classifier name="Activity" keys="concept:name"/>
  <string key="concept:name" value="attributed"/>
  <date key="exported" value="2022-03-01T12:00:00Z"/>
  <int key="version" value="7"/>
  <trace>
    <string key="concept:name" value="case-9"/>
    <int key="priority" value="3"/>
    <float key="amount" value="99.5"/>
    <boolean key="escalated" value="true"/>
    <date key="opened" value="2022-03-01T08:30:00Z"/>
    <event>
      <string key="concept:name" value="register"/>
    </event>
  </trace>
</log>`
	log, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if log.Name != "attributed" {
		t.Errorf("name = %q", log.Name)
	}
	if v := log.Attrs["exported"]; v.Kind != eventlog.KindTime || !v.Time.Equal(time.Date(2022, 3, 1, 12, 0, 0, 0, time.UTC)) {
		t.Errorf("log exported = %+v", v)
	}
	if v := log.Attrs["version"]; v.Kind != eventlog.KindInt || v.Num != 7 {
		t.Errorf("log version = %+v", v)
	}
	tr := &log.Traces[0]
	if tr.ID != "case-9" {
		t.Errorf("trace id = %q", tr.ID)
	}
	if v := tr.Attrs["priority"]; v.Kind != eventlog.KindInt || v.Num != 3 {
		t.Errorf("priority = %+v", v)
	}
	if v := tr.Attrs["amount"]; v.Kind != eventlog.KindFloat || v.Num != 99.5 {
		t.Errorf("amount = %+v", v)
	}
	if v := tr.Attrs["escalated"]; v.Kind != eventlog.KindBool || !v.Bool {
		t.Errorf("escalated = %+v", v)
	}
	if v := tr.Attrs["opened"]; v.Kind != eventlog.KindTime {
		t.Errorf("opened = %+v", v)
	}
	if _, ok := tr.Attrs[conceptName]; ok {
		t.Error("concept:name leaked into trace attrs")
	}
	if len(log.Attrs) != 2 {
		t.Errorf("log attrs = %+v (header elements must be skipped)", log.Attrs)
	}

	// Round trip: write and re-read, then compare every layer.
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading written log: %v\n%s", err, buf.String())
	}
	assertAttrsEqual(t, "log", log.Attrs, back.Attrs)
	if len(back.Traces) != 1 || back.Traces[0].ID != "case-9" {
		t.Fatalf("round-tripped traces = %+v", back.Traces)
	}
	assertAttrsEqual(t, "trace", tr.Attrs, back.Traces[0].Attrs)
}

func assertAttrsEqual(t *testing.T, layer string, want, got map[string]eventlog.Value) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s attrs: %d != %d (%+v vs %+v)", layer, len(got), len(want), got, want)
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("%s attr %q lost in round trip", layer, k)
		}
		if gv.Kind != wv.Kind {
			t.Fatalf("%s attr %q kind %v != %v", layer, k, gv.Kind, wv.Kind)
		}
		if wv.Kind == eventlog.KindTime {
			if !gv.Time.Equal(wv.Time) {
				t.Fatalf("%s attr %q time %v != %v", layer, k, gv.Time, wv.Time)
			}
		} else if gv != wv {
			t.Fatalf("%s attr %q %+v != %+v", layer, k, gv, wv)
		}
	}
}

func TestTimestampFormats(t *testing.T) {
	for _, s := range []string{
		"2021-06-01T08:00:00Z",
		"2021-06-01T08:00:00.123Z",
		"2021-06-01T08:00:00+02:00",
		"2021-06-01T08:00:00.000+02:00",
	} {
		if _, err := parseXESTime(s); err != nil {
			t.Errorf("parseXESTime(%q): %v", s, err)
		}
	}
	if _, err := parseXESTime("junk"); err == nil {
		t.Error("expected error for junk timestamp")
	}
}

// TestReadIndexMatchesRead pins the loader-direct construction path: feeding
// the Builder straight from the XML decode must yield the same index as
// NewIndex(Read(...)) — same shape, same columns, and a reconstruction that
// serialises byte-identically.
func TestReadIndexMatchesRead(t *testing.T) {
	log, err := Read(strings.NewReader(sampleXES))
	if err != nil {
		t.Fatal(err)
	}
	viaLog := eventlog.NewIndex(log)
	direct, err := ReadIndex(strings.NewReader(sampleXES))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Name != viaLog.Name || direct.NumEvents() != viaLog.NumEvents() ||
		direct.NumTraces() != viaLog.NumTraces() || direct.NumClasses() != viaLog.NumClasses() {
		t.Fatalf("index shapes differ: direct %d/%d/%d, via log %d/%d/%d",
			direct.NumTraces(), direct.NumEvents(), direct.NumClasses(),
			viaLog.NumTraces(), viaLog.NumEvents(), viaLog.NumClasses())
	}
	var fromDirect, fromLog bytes.Buffer
	if err := Write(&fromDirect, direct.ReconstructLog()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&fromLog, viaLog.ReconstructLog()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromDirect.Bytes(), fromLog.Bytes()) {
		t.Fatalf("reconstructions differ:\n%s\nvs\n%s", fromDirect.String(), fromLog.String())
	}
	var orig bytes.Buffer
	if err := Write(&orig, log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromDirect.Bytes(), orig.Bytes()) {
		t.Fatal("loader-direct index does not reconstruct the original document's log")
	}
}

// TestReadIndexRejectsClasslessEvent mirrors Read's validation on the
// loader-direct path.
func TestReadIndexRejectsClasslessEvent(t *testing.T) {
	const doc = `<log><trace><event><string key="x" value="y"/></event></trace></log>`
	if _, err := ReadIndex(strings.NewReader(doc)); err == nil {
		t.Fatal("expected missing concept:name error")
	}
}

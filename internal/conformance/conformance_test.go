package conformance

import (
	"context"
	"math"
	"testing"

	"gecco/internal/discovery"
	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

// Test helpers running the ctx/Index API on pointer logs; uncancelled runs
// cannot fail, so errors fail the test immediately.

func selfEvaluate(t *testing.T, log *eventlog.Log) Result {
	t.Helper()
	r, err := SelfEvaluate(context.Background(), eventlog.NewIndex(log))
	if err != nil {
		t.Fatalf("SelfEvaluate: %v", err)
	}
	return r
}

func evaluate(t *testing.T, log *eventlog.Log, m *discovery.Model) Result {
	t.Helper()
	r, err := Evaluate(context.Background(), eventlog.NewIndex(log), m, Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return r
}

func discover(t *testing.T, log *eventlog.Log, opts discovery.Options) *discovery.Model {
	t.Helper()
	m, err := discovery.Discover(context.Background(), eventlog.NewIndex(log), opts)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	return m
}

func mkLog(seqs [][]string) *eventlog.Log {
	log := &eventlog.Log{}
	for _, seq := range seqs {
		tr := eventlog.Trace{ID: "t"}
		for _, c := range seq {
			tr.Events = append(tr.Events, eventlog.Event{Class: c})
		}
		log.Traces = append(log.Traces, tr)
	}
	return log
}

func TestSelfEvaluatePerfectFitness(t *testing.T) {
	for _, log := range []*eventlog.Log{
		mkLog([][]string{{"a", "b", "c"}, {"a", "c"}}),
		procgen.RunningExample(200, 3),
		procgen.LoanLog(100, 7),
	} {
		r := selfEvaluate(t, log)
		if math.Abs(r.Fitness-1) > 1e-12 {
			t.Fatalf("self-fitness = %f, want 1", r.Fitness)
		}
		if r.Precision <= 0 || r.Precision > 1 {
			t.Fatalf("precision %f out of range", r.Precision)
		}
	}
}

func TestUnfitLogDetected(t *testing.T) {
	model := discover(t, mkLog([][]string{{"a", "b", "c"}}), discovery.Options{EdgeFilter: 1})
	// b,a,c reverses an edge and starts wrongly.
	bad := mkLog([][]string{{"b", "a", "c"}})
	r := evaluate(t, bad, model)
	if r.Fitness >= 0.8 {
		t.Fatalf("reversed trace should lose fitness, got %f", r.Fitness)
	}
}

func TestUnknownClassesAreMisfits(t *testing.T) {
	model := discover(t, mkLog([][]string{{"a", "b"}}), discovery.Options{EdgeFilter: 1})
	alien := mkLog([][]string{{"x", "y"}})
	r := evaluate(t, alien, model)
	if r.Fitness != 0 {
		t.Fatalf("alien log fitness = %f, want 0", r.Fitness)
	}
}

func TestPrecisionPenalisesUnusedBehaviour(t *testing.T) {
	// Model from a rich log, evaluated against a log using only one path.
	rich := mkLog([][]string{{"a", "b", "d"}, {"a", "c", "d"}})
	model := discover(t, rich, discovery.Options{EdgeFilter: 1})
	narrow := mkLog([][]string{{"a", "b", "d"}})
	r := evaluate(t, narrow, model)
	if r.Fitness != 1 {
		t.Fatalf("narrow log should fit, got %f", r.Fitness)
	}
	full := evaluate(t, rich, model)
	if r.Precision >= full.Precision {
		t.Fatalf("narrow log precision %f should be below full log %f", r.Precision, full.Precision)
	}
}

// The abstraction invariant the package exists for: a GECCO-abstracted log
// fits the model discovered from itself perfectly, and abstraction does not
// produce behaviour that a model of the abstracted log would reject.
func TestAbstractedLogSelfConformance(t *testing.T) {
	log := procgen.RunningExample(200, 9)
	// Figure 3 abstraction by relabeling (completion-only equivalent).
	label := map[string]string{
		"rcp": "clrk1", "ckc": "clrk1", "ckt": "clrk1",
		"acc": "acc", "rej": "rej",
		"prio": "clrk2", "inf": "clrk2", "arv": "clrk2",
	}
	abstracted := &eventlog.Log{}
	for _, tr := range log.Traces {
		at := eventlog.Trace{ID: tr.ID}
		prev := ""
		for _, ev := range tr.Events {
			if l := label[ev.Class]; l != prev {
				at.Events = append(at.Events, eventlog.Event{Class: l})
				prev = l
			}
		}
		abstracted.Traces = append(abstracted.Traces, at)
	}
	r := selfEvaluate(t, abstracted)
	if r.Fitness != 1 {
		t.Fatalf("abstracted self-fitness %f", r.Fitness)
	}
	// Abstraction concentrates behaviour: the abstracted log's model is
	// exercised at least as completely as the original's.
	if r.Precision < selfEvaluate(t, log).Precision-1e-9 {
		t.Fatalf("abstraction should not reduce DFG precision: %f vs %f",
			r.Precision, selfEvaluate(t, log).Precision)
	}
}

// Package conformance provides directly-follows conformance measures
// between an event log and a discovered model: fitness (how much of the
// log's behaviour the model allows) and precision (how much of the model's
// behaviour the log exhibits). These are the standard lightweight
// DFG-level counterparts of replay fitness/precision and are used to sanity
// -check that an abstracted log still conforms to the model discovered from
// it — behaviour GECCO's distance minimisation is designed to preserve.
package conformance

import (
	"gecco/internal/discovery"
	"gecco/internal/eventlog"
)

// Result bundles the conformance measures.
type Result struct {
	// Fitness is the fraction of the log's directly-follows moves
	// (including start and end moves) that the model allows, weighted by
	// frequency. 1.0 = every observed transition is possible in the model.
	Fitness float64
	// Precision is the fraction of the model's edges (plus allowed start/
	// end classes) that are actually observed in the log. 1.0 = the model
	// allows nothing the log does not do.
	Precision float64
}

// Evaluate computes fitness and precision between the log and the model.
// The model must stem from a log over the same class universe (classes are
// matched by label; unknown classes count as misfits).
func Evaluate(log *eventlog.Log, m *discovery.Model) Result {
	labelID := make(map[string]int, len(m.Labels))
	for i, l := range m.Labels {
		labelID[l] = i
	}
	allowedStart := make(map[int]bool)
	allowedEnd := make(map[int]bool)
	for _, c := range m.StartClasses {
		allowedStart[c] = true
	}
	for _, c := range m.EndClasses {
		allowedEnd[c] = true
	}

	var total, fit int
	observedEdges := make(map[[2]int]bool)
	observedStart := make(map[int]bool)
	observedEnd := make(map[int]bool)
	for i := range log.Traces {
		ev := log.Traces[i].Events
		if len(ev) == 0 {
			continue
		}
		prev := -1
		for j := range ev {
			c, known := labelID[ev[j].Class]
			if !known {
				c = -1
			}
			switch {
			case j == 0:
				total++
				if known {
					observedStart[c] = true
					if allowedStart[c] {
						fit++
					}
				}
			default:
				total++
				if known && prev >= 0 {
					observedEdges[[2]int{prev, c}] = true
					// Self-loops are model annotations, not edges.
					if (prev == c && m.SelfLoop[c]) || m.Graph.Has(prev, c) {
						fit++
					}
				}
			}
			prev = c
		}
		total++
		if prev >= 0 {
			observedEnd[prev] = true
			if allowedEnd[prev] {
				fit++
			}
		}
	}

	// Precision: allowed behaviour that was observed.
	allowed, used := 0, 0
	for a := 0; a < m.Graph.N; a++ {
		for _, b := range m.Graph.Out(a) {
			allowed++
			if observedEdges[[2]int{a, b}] {
				used++
			}
		}
	}
	for c := range allowedStart {
		allowed++
		if observedStart[c] {
			used++
		}
	}
	for c := range allowedEnd {
		allowed++
		if observedEnd[c] {
			used++
		}
	}

	res := Result{}
	if total > 0 {
		res.Fitness = float64(fit) / float64(total)
	}
	if allowed > 0 {
		res.Precision = float64(used) / float64(allowed)
	}
	return res
}

// SelfEvaluate discovers a model from the log (without edge filtering) and
// evaluates the log against it; fitness is 1.0 by construction, making this
// a useful invariant check, while precision reflects how much of the
// model's generalisation the log exercises.
func SelfEvaluate(log *eventlog.Log) Result {
	x := eventlog.NewIndex(log)
	m := discovery.Discover(x, discovery.Options{EdgeFilter: 1, Epsilon: 2})
	return Evaluate(log, m)
}

// Package conformance provides directly-follows conformance measures
// between an event log and a discovered model: fitness (how much of the
// log's behaviour the model allows) and precision (how much of the model's
// behaviour the log exhibits). These are the standard lightweight
// DFG-level counterparts of replay fitness/precision and are used to sanity
// -check that an abstracted log still conforms to the model discovered from
// it — behaviour GECCO's distance minimisation is designed to preserve.
//
// Replay runs on the columnar eventlog.Index and is variant-compressed:
// each distinct class sequence is replayed once and its move counts are
// weighted by the variant's trace count, which leaves every measure
// identical to a per-trace replay while touching each variant only once.
package conformance

import (
	"context"
	"fmt"
	"sort"

	"gecco/internal/discovery"
	"gecco/internal/eventlog"
)

// Options tunes Evaluate.
type Options struct {
	// Details additionally reports the observed directly-follows
	// transitions the model disallows (Result.Misfits), most frequent
	// first.
	Details bool
}

// Misfit is an observed directly-follows transition the model does not
// allow, with the number of times the log takes it.
type Misfit struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count int    `json:"count"`
}

// Result bundles the conformance measures.
type Result struct {
	// Fitness is the fraction of the log's directly-follows moves
	// (including start and end moves) that the model allows, weighted by
	// frequency. 1.0 = every observed transition is possible in the model.
	Fitness float64
	// Precision is the fraction of the model's edges (plus allowed start/
	// end classes) that are actually observed in the log. 1.0 = the model
	// allows nothing the log does not do.
	Precision float64
	// Misfits lists the disallowed observed transitions between known
	// classes, sorted by descending count then labels; only computed under
	// Options.Details.
	Misfits []Misfit `json:",omitempty"`
}

// replayTallies accumulates the move counts and observation marks of a
// variant-compressed replay. Model classes are dense ids 0..n-1; edge and
// misfit matrices are n*n flat arrays indexed a*n+b.
type replayTallies struct {
	total, fit    int
	observedEdges []bool
	observedStart []bool
	observedEnd   []bool
	misfitCount   []int // nil unless details are requested
}

// Evaluate computes fitness and precision between the indexed log and the
// model. The model must stem from a log over the same class universe
// (classes are matched by label; unknown classes count as misfits).
// Cancelling ctx returns an error wrapping ctx.Err().
func Evaluate(ctx context.Context, x *eventlog.Index, m *discovery.Model, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("conformance: %w", err)
	}
	labelID := make(map[string]int, len(m.Labels))
	for i, l := range m.Labels {
		labelID[l] = i
	}
	// classOf maps the index's class ids to model ids once, so the replay
	// kernel never touches strings.
	classOf := make([]int, x.NumClasses())
	for c, name := range x.Classes {
		if id, ok := labelID[name]; ok {
			classOf[c] = id
		} else {
			classOf[c] = -1
		}
	}
	n := m.Graph.N
	allowedStart := make([]bool, n)
	allowedEnd := make([]bool, n)
	for _, c := range m.StartClasses {
		allowedStart[c] = true
	}
	for _, c := range m.EndClasses {
		allowedEnd[c] = true
	}

	t := &replayTallies{
		observedEdges: make([]bool, n*n),
		observedStart: make([]bool, n),
		observedEnd:   make([]bool, n),
	}
	if opts.Details {
		t.misfitCount = make([]int, n*n)
	}
	for v := 0; v < x.NumVariants(); v++ {
		replayVariant(t, m, x.VariantSeq(v), x.VariantCount[v], classOf, allowedStart, allowedEnd)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("conformance: %w", err)
	}

	// Precision: allowed behaviour that was observed.
	allowed, used := 0, 0
	for a := 0; a < n; a++ {
		for _, b := range m.Graph.Out(a) {
			allowed++
			if t.observedEdges[a*n+b] {
				used++
			}
		}
	}
	for c := 0; c < n; c++ {
		if allowedStart[c] {
			allowed++
			if t.observedStart[c] {
				used++
			}
		}
		if allowedEnd[c] {
			allowed++
			if t.observedEnd[c] {
				used++
			}
		}
	}

	res := Result{}
	if t.total > 0 {
		res.Fitness = float64(t.fit) / float64(t.total)
	}
	if allowed > 0 {
		res.Precision = float64(used) / float64(allowed)
	}
	if opts.Details {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if cnt := t.misfitCount[a*n+b]; cnt > 0 {
					res.Misfits = append(res.Misfits, Misfit{From: m.Labels[a], To: m.Labels[b], Count: cnt})
				}
			}
		}
		sort.Slice(res.Misfits, func(i, j int) bool {
			a, b := res.Misfits[i], res.Misfits[j]
			if a.Count != b.Count {
				return a.Count > b.Count
			}
			if a.From != b.From {
				return a.From < b.From
			}
			return a.To < b.To
		})
	}
	return res, nil
}

// replayVariant replays one class sequence against the model and adds its
// move counts, weighted by the variant's trace count, into the tallies.
//
//gecco:hotpath
func replayVariant(t *replayTallies, m *discovery.Model, seq []uint32, weight int, classOf []int, allowedStart, allowedEnd []bool) {
	if len(seq) == 0 {
		return
	}
	n := m.Graph.N
	prev := -1
	for j, raw := range seq {
		c := classOf[raw]
		switch {
		case j == 0:
			t.total += weight
			if c >= 0 {
				t.observedStart[c] = true
				if allowedStart[c] {
					t.fit += weight
				}
			}
		default:
			t.total += weight
			if c >= 0 && prev >= 0 {
				t.observedEdges[prev*n+c] = true
				// Self-loops are model annotations, not edges.
				if (prev == c && m.SelfLoop[c]) || m.Graph.Has(prev, c) {
					t.fit += weight
				} else if t.misfitCount != nil {
					t.misfitCount[prev*n+c] += weight
				}
			}
		}
		prev = c
	}
	t.total += weight
	if prev >= 0 {
		t.observedEnd[prev] = true
		if allowedEnd[prev] {
			t.fit += weight
		}
	}
}

// SelfEvaluate discovers a model from the indexed log (without edge
// filtering) and evaluates the log against it; fitness is 1.0 by
// construction, making this a useful invariant check, while precision
// reflects how much of the model's generalisation the log exercises.
func SelfEvaluate(ctx context.Context, x *eventlog.Index) (Result, error) {
	m, err := discovery.Discover(ctx, x, discovery.Options{EdgeFilter: 1, Epsilon: 2})
	if err != nil {
		return Result{}, err
	}
	return Evaluate(ctx, x, m, Options{})
}

// Session: the two-phase form of the GECCO pipeline. GECCO's distance
// measure (§IV-B, Eq. 1/2) and all of Step 1's scaffolding — the interned
// log index, the directly-follows graph, class-level attribute extraction,
// instance segmentation — depend only on the log, never on the declared
// constraints. A Session binds to one log and builds those artifacts once;
// Solve then runs only the constraint-dependent Steps 1–3 on top of the
// frozen state, sharing the distance memo (and the attribute-extraction
// memo) across every solve. Interactive constraint exploration — N
// constraint sets on one log — pays the indexing and distance effort once
// instead of N times, while each solve stays byte-identical to a one-shot
// Run with the same inputs.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gecco/internal/abstraction"
	"gecco/internal/bitset"
	"gecco/internal/candidates"
	"gecco/internal/constraints"
	"gecco/internal/cover"
	"gecco/internal/dfg"
	"gecco/internal/distance"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/mip"
	"gecco/internal/par"
)

// Session holds the constraint-independent analysis state of one log. It is
// safe for concurrent use: concurrent Solve calls share the memoised
// artifacts behind sharded locks, and because every memoised value is a
// deterministic function of the log alone, sharing never changes results —
// only how often they are recomputed.
//
// A Session does not retain the *Log it was built from: the columnar Index
// is self-contained (class arena, attribute columns, trace ids and
// attributes), so once NewSession returns, the pointer-heavy parsed log is
// garbage-collectable — which is what keeps the serving layer's session and
// stream LRUs small. Log() materialises an equivalent log on demand.
type Session struct {
	x     *eventlog.Index
	graph *dfg.Graph
	attrs *constraints.AttrCache

	// calcs holds one distance calculator per instance policy (Eq. 1 depends
	// on how trace projections are segmented); each memo persists for the
	// session's lifetime and is shared across all solves under that policy.
	mu    sync.Mutex
	calcs map[instances.Policy]*distance.Calc

	// indexBytes is the index footprint, computed once at construction so
	// EstimatedBytes is O(1) — /stats polls it for every live session.
	indexBytes int64

	logOnce sync.Once
	logCopy *eventlog.Log
	// logBytes is the estimated footprint of the materialised log copy
	// (zero until Log is first called); it counts towards EstimatedBytes so
	// the serving layer's accounting reflects what the session really pins.
	logBytes atomic.Int64
}

// NewSession indexes the log and builds its DFG — the expensive
// constraint-independent phase. The session keeps no reference to the log;
// callers may release it once NewSession returns.
func NewSession(log *eventlog.Log) (*Session, error) {
	if len(log.Traces) == 0 {
		return nil, fmt.Errorf("core: empty log")
	}
	return NewSessionFromIndex(eventlog.NewIndex(log))
}

// NewSessionFromIndex builds a session directly on a columnar index — the
// entry point for loaders that stream into an eventlog.Builder without ever
// materialising a *Log. The index must not be mutated afterwards.
func NewSessionFromIndex(x *eventlog.Index) (*Session, error) {
	if x.NumTraces() == 0 {
		return nil, fmt.Errorf("core: empty log")
	}
	return &Session{
		x:          x,
		graph:      dfg.Build(x),
		attrs:      constraints.NewAttrCache(x),
		calcs:      make(map[instances.Policy]*distance.Calc),
		indexBytes: x.EstimatedBytes(),
	}, nil
}

// Log returns a log equivalent to the one the session was built from —
// same name, trace ids, event order, and attribute values, serialising
// byte-identically — materialised from the index on first use and cached
// for the session's lifetime. (The original *Log is released at
// construction; see the Session doc.)
func (s *Session) Log() *eventlog.Log {
	s.logOnce.Do(func() {
		s.logCopy = s.x.ReconstructLog()
		s.logBytes.Store(eventlog.EstimateLogBytes(s.logCopy))
	})
	return s.logCopy
}

// EstimatedBytes reports the approximate heap footprint the session pins:
// the columnar index (arenas, offset tables, bitsets, attribute columns and
// dictionaries) plus, once an infeasible solve or a Log() call has
// materialised the log copy, that copy too. Both components are computed
// once, so this is O(1) — the serving layer polls it for /stats.
func (s *Session) EstimatedBytes() int64 { return s.indexBytes + s.logBytes.Load() }

// MappedBytes reports the file-backed mapping size behind the session's
// index — nonzero only for sessions warm-opened from an on-disk index file.
// These pages are not Go heap and are accounted separately from
// EstimatedBytes.
func (s *Session) MappedBytes() int64 { return s.x.MappedBytes() }

// Index returns the session's interned view of the log.
func (s *Session) Index() *eventlog.Index { return s.x }

// Graph returns the log's directly-follows graph.
func (s *Session) Graph() *dfg.Graph { return s.graph }

// Calc returns the session's shared distance calculator for the policy,
// creating it on first use. Its memo is warm across solves.
func (s *Session) Calc(policy instances.Policy) *distance.Calc {
	s.mu.Lock()
	defer s.mu.Unlock()
	dc, ok := s.calcs[policy]
	if !ok {
		// The pipeline parallelises across groups/paths (frontier
		// evaluation, the Step 2 cost loop), so the Calc's inner per-variant
		// fan-out stays off here: nesting it would stack up to workers^2
		// runnable goroutines with no extra parallelism.
		dc = distance.NewCalc(s.x, policy)
		s.calcs[policy] = dc
	}
	return dc
}

// MemoSize reports the total number of memoised group distances across the
// session's calculators. The memos grow with every distinct candidate group
// ever costed and are never evicted — that is what keeps solves cheap — so
// a holder keeping sessions alive indefinitely (the serving layer's session
// cache) uses this to retire sessions whose memos have grown past a bound.
func (s *Session) MemoSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, dc := range s.calcs {
		n += dc.MemoLen()
	}
	return n
}

// Solve runs the constraint-dependent pipeline — Step 1 candidate
// computation, Step 2 optimal grouping, Step 3 abstraction — on the frozen
// session artifacts. Results are byte-identical to RunContext on the same
// inputs: the shared memos only ever return values a fresh run would have
// computed. Per-solve accounting (ConstraintChecks, timings) starts from
// zero on every call.
func (s *Session) Solve(ctx context.Context, set *constraints.Set, cfg Config) (*Result, error) {
	return s.solve(ctx, set, cfg, nil)
}

// solve is Solve with an optional original log: one-shot callers
// (RunContext) still hold the *Log the session was built from and pass it
// through, so an infeasible run returns that exact pointer instead of
// paying for a materialised copy the caller would discard.
func (s *Session) solve(ctx context.Context, set *constraints.Set, cfg Config, origLog *eventlog.Log) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	x, graph := s.x, s.graph
	workers := par.Workers(cfg.Workers)
	ev := constraints.NewEvaluatorCached(x, set, cfg.Policy, s.attrs)
	dc := s.Calc(cfg.Policy)
	// The calc is session-shared; snapshot its prune counter so the Result
	// reports this solve's contribution only.
	prunedBefore := dc.LBPruned()

	// Step 1: candidate computation.
	t0 := time.Now()
	var cr candidates.Result
	if cfg.CustomCandidates != nil {
		groups, err := cfg.CustomCandidates(x, graph)
		if err != nil {
			return nil, fmt.Errorf("core: custom candidates: %w", err)
		}
		cr = candidates.Result{Groups: groups}
	} else {
		switch cfg.Mode {
		case Exhaustive:
			cr = candidates.ExhaustiveCtx(ctx, x, ev, cfg.Budget, workers)
		case DFGUnbounded:
			cr = candidates.DFGBasedCtx(ctx, x, ev, dc, graph, -1, cfg.Budget, workers)
		case DFGBeam:
			k := cfg.BeamWidth
			if k <= 0 {
				k = 5 * x.NumClasses()
			}
			cr = candidates.DFGBasedCtx(ctx, x, ev, dc, graph, k, cfg.Budget, workers)
		default:
			return nil, fmt.Errorf("core: unknown mode %d", cfg.Mode)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: candidates: %w", err)
	}
	groups := cr.Groups
	if !cfg.SkipExclusiveMerge && cfg.CustomCandidates == nil {
		groups = candidates.ExclusiveMerge(x, ev, graph, groups)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: candidates: %w", err)
	}
	candTime := time.Since(t0)

	// Step 2: optimal grouping. The candidate costs (Eq. 1 per group) are
	// the distance hot path: evaluate them across the worker pool; the memo
	// guarantees exactly-once evaluation, so the costs vector is identical
	// for any worker count.
	t1 := time.Now()
	costs := make([]float64, len(groups))
	par.For(workers, len(groups), func(i int) {
		costs[i] = dc.Group(groups[i])
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: costs: %w", err)
	}
	minG, maxG := set.GroupBounds()
	prob := &cover.Problem{
		NumClasses: x.NumClasses(),
		Candidates: groups,
		Costs:      costs,
		MinGroups:  minG,
		MaxGroups:  maxG,
	}
	solveOnce := func() (cover.Result, error) {
		if err := ctx.Err(); err != nil {
			return cover.Result{}, fmt.Errorf("core: solve: %w", err)
		}
		switch cfg.Solver {
		case SolverBB:
			return cover.SolveBBCtx(ctx, prob, cfg.SolverTimeout), nil
		case SolverMIP:
			r, _ := cover.SolveMIPCtx(ctx, prob, mip.Options{TimeLimit: cfg.SolverTimeout})
			return r, nil
		default:
			return cover.Result{}, fmt.Errorf("core: unknown solver %d", cfg.Solver)
		}
	}
	res, err := solveOnce()
	if err != nil {
		return nil, err
	}
	// Verification pass: the paper's monotonic pruning admits supergroups
	// of satisfying groups without re-validation, which is unsound when a
	// superset gains new instances in previously-vacuous traces. Re-check
	// the selected groups and re-solve without any violating candidate so
	// the returned grouping always genuinely satisfies R.
	// Each round invalidates at least one selected candidate, so the loop
	// terminates; the cap keeps worst-case Step 2 time bounded when a
	// SolverTimeout is set.
	maxRounds := len(groups)
	if cfg.SolverTimeout > 0 && maxRounds > 16 {
		maxRounds = 16
	}
	clean := false
	for round := 0; res.Feasible && round < maxRounds; round++ {
		violating := false
		for _, gi := range res.Selected {
			if !ev.HoldsClass(groups[gi]) || !ev.HoldsInstance(groups[gi]) {
				costs[gi] = math.Inf(1)
				violating = true
			}
		}
		if !violating {
			clean = true
			break
		}
		if res, err = solveOnce(); err != nil {
			return nil, err
		}
	}
	if res.Feasible && !clean {
		// The round cap was hit with violations outstanding: declare the
		// problem unsolved rather than return a constraint-violating
		// grouping. (Requires adversarial candidate sets; not observed in
		// practice.)
		res.Feasible = false
	}
	// Global grouping-instance constraints (§VIII future work, implemented
	// here): enforced by no-good cuts — each violating optimum is excluded
	// and the next-best grouping is sought.
	if len(set.GlobalConstraints()) > 0 {
		for round := 0; res.Feasible && round < 64; round++ {
			sel := make([]bitset.Set, len(res.Selected))
			for i, gi := range res.Selected {
				sel[i] = groups[gi]
			}
			if ev.HoldsGlobal(sel) {
				break
			}
			prob.Forbidden = append(prob.Forbidden, append([]int(nil), res.Selected...))
			if res, err = solveOnce(); err != nil {
				return nil, err
			}
			if round == 63 {
				res.Feasible = false // exhausted the cut budget
			}
		}
	}
	solveTime := time.Since(t1)
	// A solver cut short by cancellation may still report its incumbent as
	// feasible; the caller asked us to stop, so surface the cancellation
	// rather than a half-optimised grouping.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: solve: %w", err)
	}

	out := &Result{
		NumCandidates:      len(groups),
		CandidatesTimedOut: cr.TimedOut,
		ConstraintChecks:   ev.Checks(),
		ScreenedChecks:     ev.ScreenHits(),
		LBPruned:           dc.LBPruned() - prunedBefore,
		Timings:            Timings{Candidates: candTime, Solve: solveTime},
	}
	if !res.Feasible {
		if !cfg.GroupingOnly {
			// The paper's offline prescription: infeasible runs return the
			// original log — the caller's own when it still holds one,
			// otherwise materialised once from the index (the session no
			// longer retains the parsed log). Grouping-only callers consume
			// no log at all, and skipping it keeps cached window results
			// from pinning window memory.
			if origLog != nil {
				out.Abstracted = origLog
			} else {
				out.Abstracted = s.Log()
			}
		}
		out.Diagnostics = ev.Diagnose()
		return out, nil
	}

	// Step 3: abstraction.
	t2 := time.Now()
	selected := make([]bitset.Set, len(res.Selected))
	for i, gi := range res.Selected {
		selected[i] = groups[gi]
	}
	sortByFirstOccurrence(x, selected)
	names := a.names(cfg, x, selected)
	grouping := abstraction.Grouping{Groups: selected, Names: names}
	if !cfg.GroupingOnly {
		abstracted, err := abstraction.Apply(x, grouping, cfg.Strategy, cfg.Policy)
		if err != nil {
			return nil, fmt.Errorf("core: abstraction: %w", err)
		}
		out.Abstracted = abstracted
	}
	out.Timings.Abstract = time.Since(t2)
	out.Feasible = true
	out.Grouping = grouping
	out.Distance = res.Cost
	out.SolverNodes = res.Nodes
	out.GroupClasses = make([][]string, len(selected))
	for i, g := range selected {
		out.GroupClasses[i] = x.GroupNames(g)
	}
	return out, nil
}

package core

import (
	"fmt"
	"gecco/internal/bitset"
	"gecco/internal/dfg"
	"math"
	"sort"
	"strings"
	"testing"

	"gecco/internal/constraints"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

func roleSet() *constraints.Set {
	return constraints.NewSet(constraints.MustParse("distinct(role) <= 1"))
}

func groupingKey(gc [][]string) string {
	parts := make([]string, len(gc))
	for i, g := range gc {
		gg := append([]string(nil), g...)
		sort.Strings(gg)
		parts[i] = strings.Join(gg, ",")
	}
	sort.Strings(parts)
	return strings.Join(parts, " | ")
}

// The paper's Figure 7: with DFG-based candidates and the role constraint,
// the optimal grouping of the running example is {rcp,ckc,ckt}, {acc},
// {rej}, {prio,inf,arv} with dist = 3.08.
func TestGoldenFigure7DFG(t *testing.T) {
	log := procgen.RunningExampleTable1()
	res, err := Run(log, roleSet(), Config{Mode: DFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	want := "acc | arv,inf,prio | ckc,ckt,rcp | rej"
	if got := groupingKey(res.GroupClasses); got != want {
		t.Fatalf("grouping %q, want %q", got, want)
	}
	if math.Abs(res.Distance-3.0833333333) > 1e-6 {
		t.Fatalf("distance %.6f, want 3.0833 (paper: 3.08)", res.Distance)
	}
}

// The exhaustive configuration additionally finds co-occurring candidates
// that no DFG path generates: {acc,rej} (both in σ4, dist 1.125 < two
// singletons) and the all-clerk group (dist 0.6367 < the two clerk groups
// combined). The true exhaustive optimum on the tiny Table I log therefore
// collapses to two groups with total distance 287/240 + 0.6367 = 1.7617 —
// exactly the "not meaningful" outcome §II warns about, which the paper
// avoids by using DFG-based candidates in Figure 7.
func TestGoldenExhaustiveFindsCheaperCover(t *testing.T) {
	log := procgen.RunningExampleTable1()
	res, err := Run(log, roleSet(), Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	want := "acc,rej | arv,ckc,ckt,inf,prio,rcp"
	if got := groupingKey(res.GroupClasses); got != want {
		t.Fatalf("grouping %q, want %q", got, want)
	}
	if math.Abs(res.Distance-1.7616666667) > 1e-6 {
		t.Fatalf("distance %.6f, want 1.7617", res.Distance)
	}
}

// Both Step 2 solvers must agree on the optimum.
func TestSolversAgree(t *testing.T) {
	log := procgen.RunningExampleTable1()
	bb, err := Run(log, roleSet(), Config{Mode: DFGUnbounded, Solver: SolverBB})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Run(log, roleSet(), Config{Mode: DFGUnbounded, Solver: SolverMIP})
	if err != nil {
		t.Fatal(err)
	}
	if !bb.Feasible || !mp.Feasible {
		t.Fatal("solver infeasibility mismatch")
	}
	if math.Abs(bb.Distance-mp.Distance) > 1e-6 {
		t.Fatalf("BB %.6f vs MIP %.6f", bb.Distance, mp.Distance)
	}
}

// §II's motivation: the role constraint alone would naively group all clerk
// steps together; GECCO's distance splits them into start/end groups. Verify
// the abstracted traces match Figure 3's DFG shape.
func TestAbstractedTraces(t *testing.T) {
	log := procgen.RunningExampleTable1()
	res, err := Run(log, roleSet(), Config{Mode: DFGUnbounded, NamePrefix: "clrk"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Abstracted.Traces[0].Variant(); got != "clrk1,acc,clrk2" {
		t.Fatalf("σ1 = %q", got)
	}
	if got := res.Abstracted.Traces[3].Variant(); got != "clrk1,rej,clrk1,acc,clrk2" {
		t.Fatalf("σ4 = %q", got)
	}
}

// Grouping constraint |G| <= 3 forces a coarser grouping.
func TestGroupingConstraint(t *testing.T) {
	log := procgen.RunningExampleTable1()
	set := constraints.NewSet(
		constraints.MustParse("distinct(role) <= 1"),
		constraints.MustParse("|G| <= 3"),
	)
	res, err := Run(log, set, Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	if len(res.GroupClasses) > 3 {
		t.Fatalf("got %d groups, bound is 3", len(res.GroupClasses))
	}
}

// An unsatisfiable problem returns the original log plus diagnostics.
func TestInfeasibleReturnsOriginalLog(t *testing.T) {
	log := procgen.RunningExampleTable1()
	set := constraints.NewSet(
		constraints.MustParse("|g| <= 1"),
		constraints.MustParse("|G| <= 3"), // 8 classes cannot fit 3 singletons
	)
	res, err := Run(log, set, Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("expected infeasible")
	}
	if res.Abstracted != log {
		t.Error("infeasible run must return the original log")
	}
	if res.Diagnostics == nil {
		t.Error("missing diagnostics")
	}
}

// The verification pass: under the (heuristically) monotonic constraint
// sum(duration) >= 101, every selected group must genuinely satisfy it even
// though the pruning rule can admit violating candidates.
func TestVerificationPassMonotonic(t *testing.T) {
	log := procgen.RunningExampleTable1()
	set := constraints.NewSet(constraints.MustParse("sum(duration) >= 101"))
	res, err := Run(log, set, Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		x := eventlog.NewIndex(log)
		ev := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
		for i, g := range res.Grouping.Groups {
			if !ev.HoldsClass(g) || !ev.HoldsInstance(g) {
				t.Fatalf("selected group %v violates constraints", res.GroupClasses[i])
			}
		}
	}
}

// Beam configuration must produce a valid (possibly suboptimal) grouping.
func TestBeamFeasibleAndNotBetterThanOptimal(t *testing.T) {
	log := procgen.RunningExample(150, 23)
	set := roleSet()
	opt, err := Run(log, set, Config{Mode: DFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	beam, err := Run(log, set, Config{Mode: DFGBeam, BeamWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Feasible && beam.Feasible && beam.Distance < opt.Distance-1e-9 {
		t.Fatalf("beam %.6f beats unbounded %.6f", beam.Distance, opt.Distance)
	}
}

// Ablation: disabling exclusive merge on the running example must lose the
// merged {rcp,ckc,ckt} candidate under DFG∞ (ckc/ckt never directly follow
// each other, so no path contains both) and thus yield a higher distance.
func TestAblationExclusiveMerge(t *testing.T) {
	log := procgen.RunningExampleTable1()
	with, err := Run(log, roleSet(), Config{Mode: DFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(log, roleSet(), Config{Mode: DFGUnbounded, SkipExclusiveMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if !with.Feasible || !without.Feasible {
		t.Fatal("both configurations should be feasible")
	}
	if without.Distance <= with.Distance {
		t.Fatalf("exclusive merge should improve distance: with=%.4f without=%.4f",
			with.Distance, without.Distance)
	}
}

func TestEmptyLogRejected(t *testing.T) {
	if _, err := Run(&eventlog.Log{}, roleSet(), Config{}); err == nil {
		t.Fatal("expected error for empty log")
	}
}

// Global grouping-instance constraints (§VIII future work): a lower bound
// on instances per trace ("do not over-abstract") conflicts with the
// distance objective and is enforced via no-good cuts. On ⟨a,b,c⟩ traces
// the free optimum is the single group {a,b,c} (1 instance per trace);
// requiring avginstances >= 2 must push the solver to the next-best
// grouping {a,b}+{c} (distance 1.5).
func TestGlobalConstraintNoGoodIteration(t *testing.T) {
	log := &eventlog.Log{}
	for i := 0; i < 5; i++ {
		log.Traces = append(log.Traces, eventlog.Trace{ID: "t", Events: []eventlog.Event{
			{Class: "a"}, {Class: "b"}, {Class: "c"},
		}})
	}
	free, err := Run(log, constraints.NewSet(), Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if !free.Feasible || len(free.GroupClasses) != 1 {
		t.Fatalf("free optimum should be the single full group, got %v", free.GroupClasses)
	}
	set := constraints.NewSet(constraints.MustParse("avginstances >= 2"))
	res, err := Run(log, set, Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("expected a feasible finer grouping, got: %v", res.Diagnostics)
	}
	if len(res.GroupClasses) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(res.GroupClasses), res.GroupClasses)
	}
	if math.Abs(res.Distance-1.5) > 1e-9 {
		t.Fatalf("distance %.4f, want 1.5", res.Distance)
	}
	x := eventlog.NewIndex(log)
	ev := constraints.NewEvaluator(x, set, instances.SplitOnRepeat)
	if !ev.HoldsGlobal(res.Grouping.Groups) {
		t.Fatal("returned grouping violates the global constraint")
	}
	if res.Distance <= free.Distance {
		t.Fatal("constrained optimum should cost more than the free optimum")
	}
}

// An unsatisfiable global constraint must be reported infeasible, not
// silently violated.
func TestGlobalConstraintInfeasible(t *testing.T) {
	log := procgen.RunningExampleTable1()
	set := constraints.NewSet(
		constraints.MustParse("|g| <= 1"), // singletons only: >= 6 instances/trace
		constraints.MustParse("avginstances <= 2.0"),
	)
	res, err := Run(log, set, Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("no singleton grouping has <= 2 instances per trace on these traces")
	}
}

func TestModeAndSolverStrings(t *testing.T) {
	if Exhaustive.String() != "Exh" || DFGUnbounded.String() != "DFG∞" || DFGBeam.String() != "DFGk" {
		t.Fatal("mode strings changed")
	}
	tm := Timings{Candidates: 1, Solve: 2, Abstract: 3}
	if tm.Total() != 6 {
		t.Fatal("Timings.Total")
	}
}

func TestUnknownModeAndSolver(t *testing.T) {
	log := procgen.RunningExampleTable1()
	if _, err := Run(log, roleSet(), Config{Mode: Mode(99)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Run(log, roleSet(), Config{Solver: Solver(99)}); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

// Figure 8 style naming: groups homogeneous in a class attribute get
// value-prefixed activity names.
func TestNameByClassAttr(t *testing.T) {
	log := procgen.LoanLog(150, 13)
	set := constraints.NewSet(
		constraints.MustParse("distinct(class.org) <= 1"),
		constraints.MustParse("|g| <= 8"),
	)
	res, err := Run(log, set, Config{Mode: DFGUnbounded, NameByClassAttr: "org"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("case study infeasible: %v", res.Diagnostics)
	}
	prefixed := 0
	for i, name := range res.Grouping.Names {
		if len(res.GroupClasses[i]) == 1 {
			continue // singletons keep class names
		}
		switch name[0] {
		case 'A', 'O', 'W':
			prefixed++
		default:
			t.Errorf("multi-class activity %q lacks an origin prefix", name)
		}
	}
	if prefixed == 0 {
		t.Fatal("no multi-class activity got an origin-system prefix")
	}
}

// Activity numbering follows process order: clrk1 groups the start-of-
// process classes.
func TestNamingFollowsProcessOrder(t *testing.T) {
	log := procgen.RunningExampleTable1()
	res, err := Run(log, roleSet(), Config{Mode: DFGUnbounded, NamePrefix: "clrk"})
	if err != nil || !res.Feasible {
		t.Fatal("pipeline failed")
	}
	for i, name := range res.Grouping.Names {
		if name == "clrk1" {
			found := false
			for _, c := range res.GroupClasses[i] {
				if c == "rcp" {
					found = true
				}
			}
			if !found {
				t.Fatalf("clrk1 = %v, should contain rcp", res.GroupClasses[i])
			}
		}
	}
}

// CustomCandidates replaces Step 1 entirely.
func TestCustomCandidates(t *testing.T) {
	log := procgen.RunningExampleTable1()
	called := false
	cfg := Config{CustomCandidates: func(x *eventlog.Index, _ *dfg.Graph) ([]bitset.Set, error) {
		called = true
		var out []bitset.Set
		for c := 0; c < x.NumClasses(); c++ {
			g := bitset.New(x.NumClasses())
			g.Add(c)
			out = append(out, g)
		}
		return out, nil
	}}
	res, err := Run(log, constraints.NewSet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("custom candidate function not invoked")
	}
	if !res.Feasible || len(res.GroupClasses) != 8 {
		t.Fatalf("singleton-only candidates must yield 8 groups, got %d", len(res.GroupClasses))
	}
}

func TestCustomCandidatesError(t *testing.T) {
	log := procgen.RunningExampleTable1()
	cfg := Config{CustomCandidates: func(*eventlog.Index, *dfg.Graph) ([]bitset.Set, error) {
		return nil, errSentinel
	}}
	if _, err := Run(log, constraints.NewSet(), cfg); err == nil {
		t.Fatal("candidate error not propagated")
	}
}

var errSentinel = fmt.Errorf("sentinel")

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"gecco/internal/candidates"
	"gecco/internal/procgen"
)

// A pre-expired context must return promptly with a wrapped
// context.Canceled, before any pipeline work starts.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := RunContext(ctx, procgen.RunningExampleTable1(), roleSet(), Config{Mode: DFGUnbounded})
	if res != nil {
		t.Fatalf("result %+v, want nil on cancelled context", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled run took %v, want prompt return", elapsed)
	}
}

// A context whose deadline has already passed must wrap DeadlineExceeded.
func TestRunContextPreExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, procgen.RunningExampleTable1(), roleSet(), Config{Mode: DFGUnbounded})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// Budget.TimeLimit expiry alone is not an error: the pipeline continues
// with the candidates found so far, exactly as without a context.
func TestRunContextTimeLimitStillSoft(t *testing.T) {
	cfg := Config{Mode: DFGUnbounded, Budget: candidates.Budget{TimeLimit: time.Nanosecond}}
	res, err := RunContext(context.Background(), procgen.RunningExampleTable1(), roleSet(), cfg)
	if err != nil {
		t.Fatalf("TimeLimit expiry returned error %v, want partial result", err)
	}
	if !res.CandidatesTimedOut {
		t.Fatal("expected CandidatesTimedOut with a nanosecond TimeLimit")
	}
}

// Cancelling mid-run stops the frontier within the sampling interval and
// surfaces the cancellation instead of a half-finished grouping.
func TestRunContextCancelMidRun(t *testing.T) {
	log := procgen.LoanLog(400, 17)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		// Exhaustive with no budget on the loan log runs far longer than
		// the test timeout unless cancellation cuts it.
		_, err := RunContext(ctx, log, roleSet(), Config{Mode: Exhaustive})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the pipeline within 30s")
	}
}

// With a never-cancelled context the pipeline output is byte-identical to
// the context-free entry point.
func TestRunContextDeterministicWhenLive(t *testing.T) {
	log := procgen.RunningExampleTable1()
	want, err := Run(log, roleSet(), Config{Mode: DFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), log, roleSet(), Config{Mode: DFGUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	if groupingKey(got.GroupClasses) != groupingKey(want.GroupClasses) || got.Distance != want.Distance {
		t.Fatalf("context run diverged: %q dist=%v vs %q dist=%v",
			groupingKey(got.GroupClasses), got.Distance, groupingKey(want.GroupClasses), want.Distance)
	}
}

// Package core orchestrates the GECCO pipeline of §V: Step 1 candidate
// computation (exhaustive or DFG-based, plus exclusive-alternative merging),
// Step 2 optimal grouping via weighted set partitioning, and Step 3 trace
// abstraction. The one-shot Run/RunContext entry points are thin wrappers
// over the two-phase Session engine (session.go), which builds the
// constraint-independent artifacts of a log once and solves many constraint
// sets on top of them. The root package gecco wraps this with the public
// API.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"gecco/internal/abstraction"
	"gecco/internal/bitset"
	"gecco/internal/candidates"
	"gecco/internal/constraints"
	"gecco/internal/dfg"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Mode selects the Step 1 instantiation (§V-B and the configurations of
// §VI-A).
type Mode int

const (
	// Exhaustive is Algorithm 1 (configuration Exh).
	Exhaustive Mode = iota
	// DFGUnbounded is Algorithm 2 without beam pruning (DFG∞).
	DFGUnbounded
	// DFGBeam is Algorithm 2 with beam width k (DFGk); the paper uses
	// k = 5·|C_L|, which is the default when BeamWidth is 0.
	DFGBeam
)

func (m Mode) String() string {
	return [...]string{"Exh", "DFG∞", "DFGk"}[m]
}

// Solver selects the Step 2 solver.
type Solver int

const (
	// SolverBB is the direct branch-and-bound set-partitioning solver
	// (default; exact and fastest on these instances).
	SolverBB Solver = iota
	// SolverMIP uses the paper's MIP formulation on internal/mip.
	SolverMIP
)

// Config tunes a pipeline run. The zero value is a sensible default:
// exhaustive candidates, unlimited budget, completion-only abstraction.
type Config struct {
	Mode      Mode
	BeamWidth int // DFGBeam only; 0 means 5·|C_L|
	// Workers is the number of workers Step 1 and the distance hot path
	// fan out to; <= 0 means one per CPU (runtime.NumCPU()). With no
	// Budget.TimeLimit set, any worker count produces byte-identical
	// results: parallel frontiers are merged in deterministic order and
	// all memoised evaluations run exactly once. (A wall-clock limit cuts
	// work at a timing-dependent point, so runs under TimeLimit are not
	// reproducible at any worker count — exactly as in the sequential
	// implementation.)
	Workers  int
	Strategy abstraction.Strategy
	Policy   instances.Policy
	Budget   candidates.Budget
	Solver   Solver
	// SolverTimeout caps Step 2; zero means none. On expiry the best
	// incumbent found is used.
	SolverTimeout time.Duration
	// SkipExclusiveMerge disables Algorithm 3 (ablation §VI / DESIGN.md).
	SkipExclusiveMerge bool
	// NamePrefix labels multi-class activities; default "Activity ".
	NamePrefix string
	// NameByClassAttr, when set, prefixes activity labels with the group's
	// unique value of this class-level attribute (e.g. "org" yields labels
	// like "A_Activity 1" as in Figure 8).
	NameByClassAttr string
	// CustomCandidates, when non-nil, replaces Step 1 entirely (Mode and
	// Budget are ignored). Used by the graph-querying baseline BL_Q, which
	// substitutes its own candidate computation while keeping Steps 2–3.
	CustomCandidates func(x *eventlog.Index, graph *dfg.Graph) ([]bitset.Set, error)
	// GroupingOnly skips Step 3 (rewriting the log): the result carries the
	// selected grouping, names and distance, but Result.Abstracted stays nil
	// on feasible runs. Callers that only consume the grouping — the online
	// abstractor regroups a window but rewrites traces itself, one arrival at
	// a time — avoid paying an O(window) abstraction pass per regroup.
	GroupingOnly bool
}

// Timings records per-step wall-clock durations.
type Timings struct {
	Candidates time.Duration
	Solve      time.Duration
	Abstract   time.Duration
}

// Total returns the summed step durations.
func (t Timings) Total() time.Duration { return t.Candidates + t.Solve + t.Abstract }

// Result is the outcome of a pipeline run.
type Result struct {
	Feasible bool
	// Grouping holds the selected groups and their activity names (only
	// when feasible).
	Grouping abstraction.Grouping
	// GroupClasses lists, per selected group, the member class names.
	GroupClasses [][]string
	Distance     float64
	// Abstracted is the abstracted log L' when feasible; otherwise the
	// original log, as the paper prescribes (§V-C).
	Abstracted *eventlog.Log
	// Diagnostics explains infeasibility (nil when feasible).
	Diagnostics *constraints.Violations

	NumCandidates      int
	CandidatesTimedOut bool
	ConstraintChecks   int
	// ScreenedChecks counts instance-constraint verdicts this solve decided
	// from the bitset screens alone, without materialising instances.
	ScreenedChecks int
	// LBPruned counts beam-frontier nodes this solve skipped via the
	// admissible distance lower bound instead of an exact Eq. 1 evaluation.
	LBPruned    int
	SolverNodes int
	Timings     Timings
}

// Run executes the full GECCO pipeline on the log under the constraint set.
func Run(log *eventlog.Log, set *constraints.Set, cfg Config) (*Result, error) {
	//lint:gecco-allow(ctxflow): convenience wrapper; RunContext is the cancellable variant
	return RunContext(context.Background(), log, set, cfg)
}

// RunContext is Run under a context. Cancellation (a disconnected client, a
// server shutdown) stops the pipeline mid-frontier and mid-solve and returns
// an error wrapping ctx.Err(); a context deadline composes with
// Budget.TimeLimit — whichever expires first cuts the candidate frontier,
// and only the context's own expiry turns into an error. A never-cancelled
// context leaves results byte-identical to Run.
//
// RunContext builds a fresh Session per call; callers that abstract the same
// log repeatedly should hold a Session and call Solve instead.
func RunContext(ctx context.Context, log *eventlog.Log, set *constraints.Set, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s, err := NewSession(log)
	if err != nil {
		return nil, err
	}
	// Passing the log through preserves the historical contract that an
	// infeasible one-shot run returns the caller's exact *Log — without the
	// session materialising a copy only to have it discarded.
	return s.solve(ctx, set, cfg, log)
}

// sortByFirstOccurrence orders groups by the position at which any of their
// classes first appears in the log, so that activity numbering follows the
// process flow (clrk1 before clrk2 in the running example).
func sortByFirstOccurrence(x *eventlog.Index, groups []bitset.Set) {
	first := make([]int, len(groups))
	for i := range first {
		first[i] = 1 << 30
	}
	pos := 0
	for t := 0; t < x.NumTraces(); t++ {
		for _, c := range x.Seq(t) {
			for gi, g := range groups {
				if first[gi] > pos && g.Contains(int(c)) {
					first[gi] = pos
				}
			}
			pos++
		}
	}
	type pair struct {
		f int
		g bitset.Set
	}
	pairs := make([]pair, len(groups))
	for i := range groups {
		pairs[i] = pair{first[i], groups[i]}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].f < pairs[j].f })
	for i := range pairs {
		groups[i] = pairs[i].g
	}
}

// namer isolates activity naming so it can be unit-tested.
type namer struct{}

var a namer

func (namer) names(cfg Config, x *eventlog.Index, groups []bitset.Set) []string {
	prefix := cfg.NamePrefix
	if prefix == "" {
		prefix = "Activity "
	}
	if cfg.NameByClassAttr == "" {
		return abstraction.AutoNames(x, groups, prefix)
	}
	vals := x.ClassAttrValues(cfg.NameByClassAttr)
	names := make([]string, len(groups))
	counters := make(map[string]int)
	for i, g := range groups {
		if g.Len() == 1 {
			names[i] = x.Classes[g.Min()]
			continue
		}
		distinct := make(map[string]struct{})
		g.ForEach(func(c int) bool {
			for v := range vals[c] {
				distinct[v] = struct{}{}
			}
			return true
		})
		tag := ""
		if len(distinct) == 1 {
			for v := range distinct {
				tag = v + "_"
			}
		}
		counters[tag]++
		names[i] = fmt.Sprintf("%s%s%d", tag, prefix, counters[tag])
	}
	return names
}

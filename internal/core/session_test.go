package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"gecco/internal/constraints"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

func sessionSet(t *testing.T, text string) *constraints.Set {
	t.Helper()
	set, err := constraints.ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// resultFingerprint captures every externally observable field of a Result
// that the determinism contract covers.
func resultFingerprint(r *Result) []any {
	return []any{
		r.Feasible, r.GroupClasses, r.Grouping.Names, r.Distance,
		r.NumCandidates, r.ConstraintChecks, r.Diagnostics == nil,
	}
}

// TestSessionSolveMatchesRun pins the tentpole contract: Solve on a session
// — including a session warmed by solves under *other* constraint sets and
// other modes — returns exactly what the one-shot Run path returns.
func TestSessionSolveMatchesRun(t *testing.T) {
	log := procgen.RunningExample(120, 5)
	texts := []string{
		"distinct(role) <= 1",
		"distinct(role) <= 1\n|g| <= 2",
		"|g| <= 3",
	}
	modes := []Mode{Exhaustive, DFGUnbounded, DFGBeam}

	sess, err := NewSession(log)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately interleave: every (mode, set) pair runs on the same
	// session, so later solves see a memo warmed by all earlier ones.
	for _, mode := range modes {
		for _, text := range texts {
			cfg := Config{Mode: mode}
			cold, err := Run(log, sessionSet(t, text), cfg)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := sess.Solve(context.Background(), sessionSet(t, text), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resultFingerprint(cold), resultFingerprint(warm)) {
				t.Fatalf("mode %v, set %q: warm session result diverged from one-shot run\ncold: %+v\nwarm: %+v",
					mode, text, resultFingerprint(cold), resultFingerprint(warm))
			}
		}
	}
}

// TestSessionPolicyIsolation checks that the per-policy distance calculators
// never bleed into each other: the same constraint set solved under
// SplitOnRepeat and WholeTrace on one session matches the respective
// one-shot runs.
func TestSessionPolicyIsolation(t *testing.T) {
	log := procgen.RunningExample(80, 9)
	sess, err := NewSession(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []instances.Policy{instances.SplitOnRepeat, instances.WholeTrace} {
		cfg := Config{Mode: DFGUnbounded, Policy: policy}
		cold, err := Run(log, sessionSet(t, "distinct(role) <= 1"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := sess.Solve(context.Background(), sessionSet(t, "distinct(role) <= 1"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Distance != warm.Distance || !reflect.DeepEqual(cold.GroupClasses, warm.GroupClasses) {
			t.Fatalf("policy %v: session result diverged (dist %v vs %v)", policy, warm.Distance, cold.Distance)
		}
	}
	if len(sess.calcs) != 2 {
		t.Fatalf("calcs = %d, want one per policy", len(sess.calcs))
	}
}

// TestSessionConcurrentSolves runs different constraint sets concurrently on
// one session (the serving workload) and checks each against its sequential
// reference. Run under -race via `make race`.
func TestSessionConcurrentSolves(t *testing.T) {
	log := procgen.RunningExample(100, 11)
	texts := []string{
		"distinct(role) <= 1",
		"distinct(role) <= 1\n|g| <= 2",
		"|g| <= 3",
		"|g| <= 2",
	}
	// Sequential references on fresh sessions.
	refs := make([]*Result, len(texts))
	for i, text := range texts {
		r, err := Run(log, sessionSet(t, text), Config{Mode: DFGUnbounded})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}
	sess, err := NewSession(log)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]*Result, len(texts))
	errs := make([]error, len(texts))
	for i := range texts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = sess.Solve(context.Background(), sessionSet(t, texts[i]), Config{Mode: DFGUnbounded})
		}(i)
	}
	wg.Wait()
	for i := range texts {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(resultFingerprint(refs[i]), resultFingerprint(got[i])) {
			t.Fatalf("set %q: concurrent session solve diverged", texts[i])
		}
	}
}

// TestSessionEmptyLog pins the error path NewSession inherits from Run.
func TestSessionEmptyLog(t *testing.T) {
	if _, err := NewSession(&eventlog.Log{}); err == nil {
		t.Fatal("NewSession on an empty log should fail")
	}
}

// TestSessionSolveCancelled checks that a pre-cancelled context is rejected
// before any work, like RunContext.
func TestSessionSolveCancelled(t *testing.T) {
	sess, err := NewSession(procgen.RunningExampleTable1())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Solve(ctx, sessionSet(t, "distinct(role) <= 1"), Config{}); err == nil {
		t.Fatal("Solve under a cancelled context should fail")
	}
}

// TestSessionFromIndexMatchesNewSession pins the loader-direct entry point:
// a session built on an index streamed through eventlog.Builder solves
// identically to one built from the equivalent *Log.
func TestSessionFromIndexMatchesNewSession(t *testing.T) {
	m := procgen.RunningExampleModel()
	log := m.Simulate(60, 3)
	fromLog, err := NewSession(log)
	if err != nil {
		t.Fatal(err)
	}
	fromIndex, err := NewSessionFromIndex(m.SimulateIndex(60, 3))
	if err != nil {
		t.Fatal(err)
	}
	set := sessionSet(t, "distinct(role) <= 1")
	cfg := Config{Mode: DFGUnbounded}
	a, err := fromLog.Solve(context.Background(), set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromIndex.Solve(context.Background(), set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultFingerprint(a), resultFingerprint(b)) {
		t.Fatalf("index-built session diverged: %v vs %v", resultFingerprint(b), resultFingerprint(a))
	}
	if _, err := NewSessionFromIndex(eventlog.NewIndex(&eventlog.Log{})); err == nil {
		t.Fatal("expected empty-log error")
	}
}

// TestSessionInfeasibleMaterialisesLog: the session releases the parsed log,
// so an infeasible solve returns the materialised equivalent — same traces,
// classes, and event count — and repeated infeasible solves share the one
// materialisation.
func TestSessionInfeasibleMaterialisesLog(t *testing.T) {
	log := procgen.RunningExampleTable1()
	sess, err := NewSession(log)
	if err != nil {
		t.Fatal(err)
	}
	set := sessionSet(t, "|g| <= 1\n|G| <= 3")
	res, err := sess.Solve(context.Background(), set, Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("expected infeasible")
	}
	if res.Abstracted == nil || res.Abstracted == log {
		t.Fatal("infeasible session solve must return a materialised log, not nil or the alias")
	}
	if res.Abstracted.NumEvents() != log.NumEvents() || len(res.Abstracted.Traces) != len(log.Traces) {
		t.Fatal("materialised log shape differs from the original")
	}
	res2, err := sess.Solve(context.Background(), set, Config{Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Abstracted != res.Abstracted {
		t.Fatal("repeated infeasible solves must share the memoised materialisation")
	}
}

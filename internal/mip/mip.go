// Package mip is a branch-and-bound mixed-integer programming solver built
// on the simplex solver of internal/lp. It replaces the paper's use of
// Gurobi for Step 2 of GECCO (§V-C), where the optimal grouping is the
// solution of a 0/1 weighted set-partitioning program. The solver is exact:
// it explores the branch tree best-bound-first with most-fractional
// branching and prunes on the incumbent.
package mip

import (
	"container/heap"
	"context"
	"math"
	"time"

	"gecco/internal/lp"
)

// Problem is an LP plus integrality markers.
type Problem struct {
	LP      lp.Problem
	Integer []bool // len NumVars; true marks an integer-constrained variable
}

// Options tunes the search.
type Options struct {
	MaxNodes  int           // 0 = default (1e6)
	TimeLimit time.Duration // 0 = none
	IntTol    float64       // integrality tolerance, default 1e-6
	Gap       float64       // relative optimality gap to stop at, default 0
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 1_000_000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// Status is the outcome of a MIP solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	NodeLimit // search truncated; Solution may hold the best incumbent
	TimeLimitHit
	// Cancelled means the caller's context was cancelled mid-search; the
	// Solution may still hold the best incumbent found before the cut.
	Cancelled
)

func (s Status) String() string {
	return [...]string{"optimal", "infeasible", "unbounded", "node-limit", "time-limit", "cancelled"}[s]
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	Nodes  int // branch-and-bound nodes explored
}

type node struct {
	lower []float64
	upper []float64
	bound float64 // LP relaxation objective (lower bound for minimisation)
}

type nodeQueue []*node

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() any          { old := *q; n := old[len(old)-1]; *q = old[:len(old)-1]; return n }

// Solve runs branch and bound.
func Solve(p *Problem, opts Options) Solution {
	//lint:gecco-allow(ctxflow): convenience wrapper; SolveContext is the cancellable variant
	return SolveContext(context.Background(), p, opts)
}

// SolveContext is Solve under a context: cancellation is checked once per
// branch-and-bound node (and inside each LP subsolve), aborting the search
// with Status Cancelled while keeping the best incumbent found so far. The
// context deadline composes with Options.TimeLimit — whichever expires
// first stops the search.
func SolveContext(ctx context.Context, p *Problem, opts Options) Solution {
	opts = opts.withDefaults()
	nv := p.LP.NumVars
	if len(p.Integer) != nv {
		panic("mip: Integer length mismatch")
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		//lint:gecco-allow(wallclock): opt-in Options.TimeLimit deadline; the default solve never reads the clock
		deadline = time.Now().Add(opts.TimeLimit)
	}

	baseLower := make([]float64, nv)
	baseUpper := make([]float64, nv)
	for j := 0; j < nv; j++ {
		if p.LP.Lower != nil {
			baseLower[j] = p.LP.Lower[j]
		}
		baseUpper[j] = math.Inf(1)
		if p.LP.Upper != nil {
			baseUpper[j] = p.LP.Upper[j]
		}
	}

	solveLP := func(lo, hi []float64) lp.Solution {
		sub := p.LP
		sub.Lower = lo
		sub.Upper = hi
		return lp.SolveContext(ctx, &sub)
	}

	root := solveLP(baseLower, baseUpper)
	switch root.Status {
	case lp.Infeasible:
		return Solution{Status: Infeasible}
	case lp.Unbounded:
		return Solution{Status: Unbounded}
	case lp.IterLimit:
		return Solution{Status: NodeLimit}
	case lp.Cancelled:
		return Solution{Status: Cancelled}
	}

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1)
		nodes        int
	)
	q := &nodeQueue{{lower: baseLower, upper: baseUpper, bound: root.Obj}}
	heap.Init(q)

	status := Optimal
	for q.Len() > 0 {
		if nodes >= opts.MaxNodes {
			status = NodeLimit
			break
		}
		if ctx.Err() != nil {
			status = Cancelled
			break
		}
		//lint:gecco-allow(wallclock): deadline probe behind the same opt-in TimeLimit; zero deadline short-circuits before the clock read
		if !deadline.IsZero() && time.Now().After(deadline) {
			status = TimeLimitHit
			break
		}
		n := heap.Pop(q).(*node)
		if n.bound >= incumbentObj-opts.IntTol {
			continue // dominated
		}
		nodes++
		sol := solveLP(n.lower, n.upper)
		if sol.Status == lp.Cancelled {
			status = Cancelled
			break
		}
		if sol.Status != lp.Optimal {
			continue // infeasible or degenerate subproblem
		}
		if sol.Obj >= incumbentObj-opts.IntTol {
			continue
		}
		// Find most fractional integer variable.
		branchVar, worst := -1, opts.IntTol
		for j := 0; j < nv; j++ {
			if !p.Integer[j] {
				continue
			}
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > worst {
				worst = f
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent.
			if sol.Obj < incumbentObj {
				incumbentObj = sol.Obj
				incumbent = roundIntegers(sol.X, p.Integer)
			}
			continue
		}
		floorV := math.Floor(sol.X[branchVar])
		// Down branch: x <= floor.
		downHi := clone(n.upper)
		downHi[branchVar] = floorV
		if downHi[branchVar] >= n.lower[branchVar]-opts.IntTol {
			heap.Push(q, &node{lower: n.lower, upper: downHi, bound: sol.Obj})
		}
		// Up branch: x >= floor+1.
		upLo := clone(n.lower)
		upLo[branchVar] = floorV + 1
		if upLo[branchVar] <= n.upper[branchVar]+opts.IntTol {
			heap.Push(q, &node{lower: upLo, upper: n.upper, bound: sol.Obj})
		}
	}

	if incumbent == nil {
		if status == Optimal {
			return Solution{Status: Infeasible, Nodes: nodes}
		}
		return Solution{Status: status, Nodes: nodes}
	}
	return Solution{Status: status, X: incumbent, Obj: incumbentObj, Nodes: nodes}
}

func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func roundIntegers(x []float64, isInt []bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, ii := range isInt {
		if ii {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"gecco/internal/lp"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestKnapsack(t *testing.T) {
	// max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binary. Optimum: a=1, c=1
	// (value 8)? a+b: 2+3=5 → 9. So best is a=1,b=1 → 9.
	p := &Problem{
		LP: lp.Problem{
			NumVars: 3,
			C:       []float64{-5, -4, -3}, // maximise via negated min
			A:       [][]float64{{2, 3, 1}},
			Ops:     []lp.RelOp{lp.LE},
			B:       []float64{5},
			Upper:   []float64{1, 1, 1},
		},
		Integer: []bool{true, true, true},
	}
	s := Solve(p, Options{})
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Obj, -9, 1e-6) {
		t.Fatalf("obj = %f, want -9", s.Obj)
	}
	if s.X[0] != 1 || s.X[1] != 1 || s.X[2] != 0 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x s.t. x >= 2.3, integer → 3.
	p := &Problem{
		LP: lp.Problem{
			NumVars: 1,
			C:       []float64{1},
			A:       [][]float64{{1}},
			Ops:     []lp.RelOp{lp.GE},
			B:       []float64{2.3},
		},
		Integer: []bool{true},
	}
	s := Solve(p, Options{})
	if s.Status != Optimal || s.X[0] != 3 {
		t.Fatalf("status %v x %v", s.Status, s.X)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := &Problem{
		LP: lp.Problem{
			NumVars: 1,
			C:       []float64{1},
			A:       [][]float64{{1}, {1}},
			Ops:     []lp.RelOp{lp.GE, lp.LE},
			B:       []float64{0.4, 0.6},
		},
		Integer: []bool{true},
	}
	if s := Solve(p, Options{}); s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min x + y, x integer, y continuous, x + y >= 2.5, x >= 0.7.
	// Best: x=1, y=1.5 → 2.5.
	p := &Problem{
		LP: lp.Problem{
			NumVars: 2,
			C:       []float64{1, 1},
			A:       [][]float64{{1, 1}, {1, 0}},
			Ops:     []lp.RelOp{lp.GE, lp.GE},
			B:       []float64{2.5, 0.7},
		},
		Integer: []bool{true, false},
	}
	s := Solve(p, Options{})
	// Multiple optima exist (e.g. x=1,y=1.5 and x=2,y=0.5); check the
	// objective and integrality only.
	if s.Status != Optimal || !approx(s.Obj, 2.5, 1e-6) || s.X[0] != math.Round(s.X[0]) {
		t.Fatalf("status %v x %v obj %f", s.Status, s.X, s.Obj)
	}
}

// bruteBinary enumerates all binary assignments for reference.
func bruteBinary(p *Problem) (float64, []float64, bool) {
	nv := p.LP.NumVars
	best := math.Inf(1)
	var bestX []float64
	for mask := 0; mask < 1<<nv; mask++ {
		x := make([]float64, nv)
		for j := 0; j < nv; j++ {
			if mask&(1<<j) != 0 {
				x[j] = 1
			}
		}
		ok := true
		for r, row := range p.LP.A {
			v := 0.0
			for j := range row {
				v += row[j] * x[j]
			}
			switch p.LP.Ops[r] {
			case lp.LE:
				ok = ok && v <= p.LP.B[r]+1e-9
			case lp.GE:
				ok = ok && v >= p.LP.B[r]-1e-9
			case lp.EQ:
				ok = ok && math.Abs(v-p.LP.B[r]) <= 1e-9
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		obj := 0.0
		for j := range x {
			obj += p.LP.C[j] * x[j]
		}
		if obj < best {
			best = obj
			bestX = x
		}
	}
	return best, bestX, bestX != nil
}

// Randomised binary programs cross-checked against brute force.
func TestRandomisedBinaryAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		nv := 3 + rng.Intn(6) // up to 8 binaries
		p := &Problem{
			LP: lp.Problem{
				NumVars: nv,
				C:       make([]float64, nv),
				Upper:   make([]float64, nv),
			},
			Integer: make([]bool, nv),
		}
		for j := 0; j < nv; j++ {
			p.LP.C[j] = math.Round(rng.Float64()*20-10) / 2
			p.LP.Upper[j] = 1
			p.Integer[j] = true
		}
		nRows := 1 + rng.Intn(3)
		for r := 0; r < nRows; r++ {
			row := make([]float64, nv)
			for j := range row {
				row[j] = math.Round(rng.Float64() * 3)
			}
			p.LP.A = append(p.LP.A, row)
			p.LP.Ops = append(p.LP.Ops, []lp.RelOp{lp.LE, lp.GE}[rng.Intn(2)])
			p.LP.B = append(p.LP.B, math.Round(rng.Float64()*float64(nv)))
		}
		ref, _, feasible := bruteBinary(p)
		s := Solve(p, Options{})
		if !feasible {
			if s.Status != Infeasible {
				t.Fatalf("trial %d: brute infeasible but solver says %v", trial, s.Status)
			}
			continue
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v (brute obj %f)", trial, s.Status, ref)
		}
		if !approx(s.Obj, ref, 1e-6) {
			t.Fatalf("trial %d: obj %f, brute %f", trial, s.Obj, ref)
		}
	}
}

func TestNodeLimit(t *testing.T) {
	// A deliberately fractional-heavy instance with a 1-node cap.
	nv := 10
	p := &Problem{
		LP: lp.Problem{
			NumVars: nv,
			C:       make([]float64, nv),
			Upper:   make([]float64, nv),
		},
		Integer: make([]bool, nv),
	}
	row := make([]float64, nv)
	for j := 0; j < nv; j++ {
		p.LP.C[j] = -1
		p.LP.Upper[j] = 1
		p.Integer[j] = true
		row[j] = 2
	}
	p.LP.A = [][]float64{row}
	p.LP.Ops = []lp.RelOp{lp.LE}
	p.LP.B = []float64{3} // sum 2x <= 3 → at most one var at 1 plus fraction
	s := Solve(p, Options{MaxNodes: 1})
	if s.Status != NodeLimit && s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
}

func TestSolveContextCancelled(t *testing.T) {
	p := &Problem{
		LP: lp.Problem{
			NumVars: 2,
			C:       []float64{-5, -4},
			A:       [][]float64{{2, 3}},
			Ops:     []lp.RelOp{lp.LE},
			B:       []float64{5},
			Upper:   []float64{1, 1},
		},
		Integer: []bool{true, true},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := SolveContext(ctx, p, Options{})
	if s.Status != Cancelled {
		t.Fatalf("status %v, want cancelled", s.Status)
	}
	// Live context: identical to the plain solve.
	got := SolveContext(context.Background(), p, Options{})
	want := Solve(p, Options{})
	if got.Status != want.Status || got.Obj != want.Obj {
		t.Fatalf("context solve diverged: %v/%v vs %v/%v", got.Status, got.Obj, want.Status, want.Obj)
	}
}

// Package abstraction implements Step 3 of GECCO (§V-D): rewriting the
// traces of the original log in terms of the selected grouping's activity
// instances. Two strategies from the paper are supported: retaining only the
// completion event per activity instance, and retaining start + completion
// events, which preserves interleaving at the price of longer traces.
package abstraction

import (
	"fmt"
	"sort"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
)

// Strategy selects how activity instances are rendered into the abstracted
// trace.
type Strategy int

const (
	// CompletionOnly keeps one event per activity instance, positioned at
	// the instance's last event (σ^c in the paper).
	CompletionOnly Strategy = iota
	// StartComplete keeps two events per multi-event activity instance,
	// at its first and last events, suffixed "+start"/"+complete"
	// (σ^{s+c} in the paper). Single-event instances stay single.
	StartComplete
)

// Grouping is a named exact cover of the class universe.
type Grouping struct {
	Groups []bitset.Set
	Names  []string // parallel to Groups; the high-level activity labels
}

// AutoNames derives activity labels for groups: singletons keep their class
// name; larger groups get the given prefix plus a running number, with the
// member classes appended in brackets for traceability.
func AutoNames(x *eventlog.Index, groups []bitset.Set, prefix string) []string {
	names := make([]string, len(groups))
	n := 1
	for i, g := range groups {
		if g.Len() == 1 {
			names[i] = x.Classes[g.Min()]
			continue
		}
		names[i] = fmt.Sprintf("%s%d", prefix, n)
		n++
	}
	return names
}

// Apply abstracts the log under the grouping. Every event class must be
// covered by exactly one group; Apply returns an error otherwise.
func Apply(x *eventlog.Index, grouping Grouping, strategy Strategy, policy instances.Policy) (*eventlog.Log, error) {
	if len(grouping.Groups) != len(grouping.Names) {
		return nil, fmt.Errorf("abstraction: %d groups but %d names", len(grouping.Groups), len(grouping.Names))
	}
	classGroup := make([]int, x.NumClasses())
	for c := range classGroup {
		classGroup[c] = -1
	}
	for gi, g := range grouping.Groups {
		var err error
		g.ForEach(func(c int) bool {
			if c >= len(classGroup) {
				err = fmt.Errorf("abstraction: class id %d outside universe", c)
				return false
			}
			if classGroup[c] != -1 {
				err = fmt.Errorf("abstraction: class %q covered by two groups", x.Classes[c])
				return false
			}
			classGroup[c] = gi
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	for c, gi := range classGroup {
		if gi == -1 {
			return nil, fmt.Errorf("abstraction: class %q not covered by any group", x.Classes[c])
		}
	}

	out := &eventlog.Log{Name: x.Name + " (abstracted)"}
	timeCol := x.Column(eventlog.AttrTimestamp)
	for t := 0; t < x.NumTraces(); t++ {
		base := x.TraceStart(t)
		// Collect all activity instances of all groups in this trace
		// (I_σ = union over groups of inst(σ, g)).
		type marker struct {
			pos   int // position in original trace controlling ordering
			group int
			kind  string // "", "+start", "+complete"
			src   int    // source event position for attribute carry-over
		}
		var markers []marker
		for gi, g := range grouping.Groups {
			for _, inst := range instances.OfTrace(x, t, g, policy) {
				first, last := inst.Span()
				switch {
				case strategy == CompletionOnly || first == last:
					markers = append(markers, marker{pos: last, group: gi, src: last})
				default:
					markers = append(markers, marker{pos: first, group: gi, kind: "+start", src: first})
					markers = append(markers, marker{pos: last, group: gi, kind: "+complete", src: last})
				}
			}
		}
		sort.Slice(markers, func(i, j int) bool { return markers[i].pos < markers[j].pos })
		tr := eventlog.Trace{ID: x.TraceID(t), Events: make([]eventlog.Event, 0, len(markers))}
		for _, m := range markers {
			ev := eventlog.Event{Class: grouping.Names[m.group] + m.kind}
			if timeCol != nil {
				if ts, ok := timeCol.Time(base + m.src); ok {
					ev.SetAttr(eventlog.AttrTimestamp, eventlog.Time(ts))
				}
			}
			// XES-standard lifecycle annotation alongside the suffix, so
			// exported logs interoperate with lifecycle-aware tooling.
			switch m.kind {
			case "+start":
				ev.SetAttr(eventlog.AttrLifecycle, eventlog.String("start"))
			case "+complete":
				ev.SetAttr(eventlog.AttrLifecycle, eventlog.String("complete"))
			}
			tr.Events = append(tr.Events, ev)
		}
		out.Traces = append(out.Traces, tr)
	}
	return out, nil
}

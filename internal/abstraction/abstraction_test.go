package abstraction

import (
	"strings"
	"testing"

	"gecco/internal/bitset"
	"gecco/internal/eventlog"
	"gecco/internal/instances"
	"gecco/internal/procgen"
)

func runningExampleGrouping(x *eventlog.Index) Grouping {
	mk := func(names ...string) bitset.Set {
		g, _ := x.GroupFromNames(names)
		return g
	}
	return Grouping{
		Groups: []bitset.Set{
			mk(procgen.RCP, procgen.CKC, procgen.CKT),
			mk(procgen.ACC),
			mk(procgen.REJ),
			mk(procgen.PRIO, procgen.INF, procgen.ARV),
		},
		Names: []string{"clrk1", "acc", "rej", "clrk2"},
	}
}

func variant(tr *eventlog.Trace) string { return tr.Variant() }

// §III-B: σ1 abstracts to ⟨clrk1, acc, clrk2⟩.
func TestCompletionOnlySigma1(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	out, err := Apply(x, runningExampleGrouping(x), CompletionOnly, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	if got := variant(&out.Traces[0]); got != "clrk1,acc,clrk2" {
		t.Fatalf("σ1 abstracted to %q, want clrk1,acc,clrk2", got)
	}
	// σ4 restarts once: ⟨clrk1, rej, clrk1, acc, clrk2⟩.
	if got := variant(&out.Traces[3]); got != "clrk1,rej,clrk1,acc,clrk2" {
		t.Fatalf("σ4 abstracted to %q", got)
	}
}

// §V-D: the σ5 example — interleaving hidden by completion-only, exposed by
// start+complete.
func TestStartCompleteInterleaving(t *testing.T) {
	seq := []string{procgen.RCP, procgen.CKC, procgen.PRIO, procgen.ACC, procgen.INF, procgen.ARV}
	log := &eventlog.Log{Traces: []eventlog.Trace{{ID: "sigma5"}}}
	for _, c := range seq {
		log.Traces[0].Events = append(log.Traces[0].Events, eventlog.Event{Class: c})
	}
	x := eventlog.NewIndex(log)
	g := runningExampleGrouping(x)

	co, err := Apply(x, g, CompletionOnly, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	if got := variant(&co.Traces[0]); got != "clrk1,acc,clrk2" {
		t.Fatalf("completion-only σ5 = %q", got)
	}

	sc, err := Apply(x, g, StartComplete, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	got := variant(&sc.Traces[0])
	want := "clrk1+start,clrk1+complete,clrk2+start,acc,clrk2+complete"
	if got != want {
		t.Fatalf("start+complete σ5 = %q, want %q", got, want)
	}
}

func TestApplyRejectsNonCover(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	g := runningExampleGrouping(x)
	// Drop one group: classes uncovered.
	bad := Grouping{Groups: g.Groups[:3], Names: g.Names[:3]}
	if _, err := Apply(x, bad, CompletionOnly, instances.SplitOnRepeat); err == nil {
		t.Fatal("expected error for uncovered classes")
	}
	// Overlapping groups.
	overlap := Grouping{
		Groups: append(append([]bitset.Set{}, g.Groups...), g.Groups[1]),
		Names:  append(append([]string{}, g.Names...), "dup"),
	}
	if _, err := Apply(x, overlap, CompletionOnly, instances.SplitOnRepeat); err == nil {
		t.Fatal("expected error for overlapping groups")
	}
}

func TestTimestampsCarriedOver(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	out, err := Apply(x, runningExampleGrouping(x), CompletionOnly, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range out.Traces {
		var prev eventlog.Event
		for i, ev := range tr.Events {
			ts, ok := ev.Timestamp()
			if !ok {
				t.Fatalf("abstracted event without timestamp")
			}
			if i > 0 {
				prevTS, _ := prev.Timestamp()
				if ts.Before(prevTS) {
					t.Fatal("abstracted timestamps out of order")
				}
			}
			prev = ev
		}
	}
}

func TestAutoNames(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	g := runningExampleGrouping(x)
	names := AutoNames(x, g.Groups, "Act ")
	if names[1] != procgen.ACC || names[2] != procgen.REJ {
		t.Errorf("singletons should keep class names, got %v", names)
	}
	if !strings.HasPrefix(names[0], "Act ") || !strings.HasPrefix(names[3], "Act ") {
		t.Errorf("multi-class groups should get prefixed names, got %v", names)
	}
	if names[0] == names[3] {
		t.Error("distinct groups share a name")
	}
}

// Abstraction must preserve the number of traces and never lengthen a trace
// under CompletionOnly.
func TestInvariantsOnSimulatedLog(t *testing.T) {
	log := procgen.RunningExample(250, 17)
	x := eventlog.NewIndex(log)
	g := runningExampleGrouping(x)
	out, err := Apply(x, g, CompletionOnly, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != len(log.Traces) {
		t.Fatalf("trace count changed: %d -> %d", len(log.Traces), len(out.Traces))
	}
	for i := range out.Traces {
		if len(out.Traces[i].Events) > len(log.Traces[i].Events) {
			t.Fatalf("trace %d grew under completion-only abstraction", i)
		}
		if len(log.Traces[i].Events) > 0 && len(out.Traces[i].Events) == 0 {
			t.Fatalf("trace %d vanished", i)
		}
	}
}

// Start+complete abstraction carries XES lifecycle annotations.
func TestLifecycleAnnotations(t *testing.T) {
	x := eventlog.NewIndex(procgen.RunningExampleTable1())
	out, err := Apply(x, runningExampleGrouping(x), StartComplete, instances.SplitOnRepeat)
	if err != nil {
		t.Fatal(err)
	}
	starts, completes := 0, 0
	for _, tr := range out.Traces {
		for _, ev := range tr.Events {
			if v, ok := ev.Attrs[eventlog.AttrLifecycle]; ok {
				switch v.Str {
				case "start":
					starts++
					if !strings.HasSuffix(ev.Class, "+start") {
						t.Fatalf("lifecycle/suffix mismatch on %q", ev.Class)
					}
				case "complete":
					completes++
				}
			}
		}
	}
	if starts == 0 || starts != completes {
		t.Fatalf("starts=%d completes=%d; want balanced and nonzero", starts, completes)
	}
}

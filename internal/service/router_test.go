package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"gecco/internal/procgen"
)

// testCluster is an in-process shard cluster: n services, each wrapped in a
// Router that knows the full peer list, exactly like n gecco-serve processes
// started with -peers/-advertise.
type testCluster struct {
	svcs    []*Service
	routers []*Router
	servers []*httptest.Server
	ids     []string
}

// newTestCluster boots n shards. Routers need every peer's URL at
// construction while httptest only yields a URL after the server exists, so
// the servers dispatch through a late-bound closure over the routers slice
// (filled before any request is made).
func newTestCluster(t *testing.T, n int, base Options) *testCluster {
	t.Helper()
	c := &testCluster{
		svcs:    make([]*Service, n),
		routers: make([]*Router, n),
		servers: make([]*httptest.Server, n),
		ids:     make([]string, n),
	}
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		c.ids[i] = fmt.Sprintf("shard-%d", i)
		opts := base
		opts.JobIDPrefix = fmt.Sprintf("s%d-", i)
		c.svcs[i] = New(opts)
		c.servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			c.routers[i].ServeHTTP(w, r)
		}))
		peers[i] = c.servers[i].URL
	}
	for i := 0; i < n; i++ {
		rt, err := NewRouter(c.svcs[i], ShardOptions{
			Peers:          peers,
			MemberIDs:      c.ids,
			Self:           i,
			ForwardRetries: 2,
			ForwardBackoff: 5 * time.Millisecond,
			ProbeTimeout:   time.Second,
			DownCooldown:   200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.routers[i] = rt
	}
	t.Cleanup(func() {
		for i := range c.servers {
			c.servers[i].Close()
			c.svcs[i].Close()
		}
	})
	return c
}

// ownerIndex resolves which shard index the ring places a key on.
func (c *testCluster) ownerIndex(t *testing.T, key string) int {
	t.Helper()
	owner := c.routers[0].Ring().Owner(key)
	for i, id := range c.ids {
		if id == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a cluster member", owner)
	return -1
}

func localStats(t *testing.T, srv *httptest.Server) Stats {
	t.Helper()
	var st Stats
	getJSON(t, srv.URL+"/stats?scope=local", &st)
	return st
}

// TestRouterDigestAffinity: the same log posted through different entry
// routers runs on exactly one shard — the ring owner — and the second post
// is a cache hit there, proving sessions and results share a home.
func TestRouterDigestAffinity(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	logXES := runningExampleXES(t)
	params := url.Values{"constraints": {"distinct(role) <= 1"}, "mode": {"dfg"}}
	owner := c.ownerIndex(t, logXES)
	entry := (owner + 1) % 3 // deliberately not the owner

	resp, out := postAbstract(t, c.servers[entry], logXES, params)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	if !out.Feasible {
		t.Fatalf("infeasible: %s", out.Diagnostics)
	}
	if !strings.HasPrefix(out.JobID, fmt.Sprintf("s%d-", owner)) {
		t.Fatalf("job %q did not run on ring owner shard-%d", out.JobID, owner)
	}

	// Post the identical request through a *different* router: it must land
	// on the same shard and be served from that shard's result cache.
	resp2, out2 := postAbstract(t, c.servers[(owner+2)%3], logXES, params)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if !out2.Cached {
		t.Fatal("identical request via another router missed the owner's cache")
	}

	for i := range c.svcs {
		st := localStats(t, c.servers[i])
		wantStarted := int64(0)
		if i == owner {
			wantStarted = 1
		}
		if st.Jobs.Started != wantStarted {
			t.Errorf("shard %d started %d jobs, want %d", i, st.Jobs.Started, wantStarted)
		}
	}
}

// TestRouterJSONAndRawBodiesAgree: the JSON envelope and the raw-body form
// of the same log must route to the same shard (the key is the log text, not
// the wire bytes).
func TestRouterJSONAndRawBodiesAgree(t *testing.T) {
	c := newTestCluster(t, 4, Options{})
	logXES := runningExampleXES(t)
	owner := c.ownerIndex(t, logXES)
	entry := (owner + 1) % 4

	env, err := json.Marshal(AbstractRequest{Log: logXES, Constraints: "distinct(role) <= 1"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.servers[entry].URL+"/abstract", "application/json", strings.NewReader(string(env)))
	if err != nil {
		t.Fatal(err)
	}
	var out AbstractResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	if !strings.HasPrefix(out.JobID, fmt.Sprintf("s%d-", owner)) {
		t.Fatalf("JSON-envelope job %q not on owner shard-%d", out.JobID, owner)
	}
}

// TestRouterForwardedJobPoll: an async job submitted through one router is
// pollable through any other — the shard prefix in the job ID routes the
// poll without a lookup table.
func TestRouterForwardedJobPoll(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	logXES := runningExampleXES(t)
	params := url.Values{"constraints": {"distinct(role) <= 1"}, "async": {"true"}}

	resp, out := postAbstract(t, c.servers[0], logXES, params)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	owner := c.ownerIndex(t, logXES)
	if !strings.HasPrefix(out.JobID, fmt.Sprintf("s%d-", owner)) {
		t.Fatalf("async job %q not minted by owner shard-%d", out.JobID, owner)
	}

	// Poll through every router (including ones that never saw the submit)
	// until done.
	deadline := time.Now().Add(10 * time.Second)
	for entry := 0; ; entry = (entry + 1) % 3 {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		var job AbstractResponse
		getJSON(t, c.servers[entry].URL+"/jobs/"+out.JobID, &job)
		if job.State == string(StateDone) {
			if !job.Feasible {
				t.Fatalf("job finished infeasible: %+v", job)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReadyzDrain (satellite): /healthz is liveness and stays 200 through a
// drain; /readyz is readiness and flips to 503 so routers and load
// balancers take the shard out of rotation.
func TestReadyzDrain(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	check := func(path string, wantCode int, wantStatus string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, wantCode)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body["status"] != wantStatus {
			t.Fatalf("%s: status field %q, want %q", path, body["status"], wantStatus)
		}
	}
	check("/healthz", http.StatusOK, "ok")
	check("/readyz", http.StatusOK, "ready")
	svc.StartDrain()
	check("/healthz", http.StatusOK, "ok") // liveness unaffected: do not restart a draining shard
	check("/readyz", http.StatusServiceUnavailable, "draining")
}

// TestRouterClusterStats: /stats through any router merges every shard's
// counters and carries a per-shard breakdown; ?scope=local stays local.
func TestRouterClusterStats(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	logXES := runningExampleXES(t)
	if resp, out := postAbstract(t, c.servers[0], logXES, url.Values{"constraints": {"distinct(role) <= 1"}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}

	var cs ClusterStats
	getJSON(t, c.servers[1].URL+"/stats", &cs)
	if len(cs.Shards) != 3 {
		t.Fatalf("cluster stats has %d shards, want 3: %+v", len(cs.Shards), cs)
	}
	if len(cs.Unreachable) != 0 {
		t.Fatalf("unexpected unreachable shards: %v", cs.Unreachable)
	}
	if cs.Jobs.Started != 1 {
		t.Fatalf("merged jobs.started = %d, want 1", cs.Jobs.Started)
	}
	var sum int64
	for _, st := range cs.Shards {
		sum += st.Jobs.Started
	}
	if sum != cs.Jobs.Started {
		t.Fatalf("per-shard breakdown sums to %d, merged says %d", sum, cs.Jobs.Started)
	}
	// The cluster's aggregate capacity grows linearly in members — the point
	// of scale-out.
	one := localStats(t, c.servers[0])
	if cs.Cache.Capacity != one.Cache.Capacity*3 {
		t.Fatalf("cluster cache capacity %d, want 3x single shard (%d)", cs.Cache.Capacity, one.Cache.Capacity)
	}
}

// TestRouterHealsToSuccessor: when a key's owner is unreachable, the request
// retries, marks the peer down, and lands on the ring successor — the shard
// that would own the key if the ring were rebuilt without the dead member.
func TestRouterHealsToSuccessor(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	logXES := runningExampleXES(t)
	owner := c.ownerIndex(t, logXES)
	seq := c.routers[0].Ring().Sequence(logXES)

	// Kill the owner outright: connection refused on every forward attempt.
	c.servers[owner].CloseClientConnections()
	c.servers[owner].Close()

	entry := (owner + 1) % 3
	resp, out := postAbstract(t, c.servers[entry], logXES, url.Values{"constraints": {"distinct(role) <= 1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after owner death: %+v", resp.StatusCode, out)
	}
	successor := seq[1]
	if entry == owner {
		t.Fatal("test bug: entry router is the dead owner")
	}
	var wantPrefix string
	for i, id := range c.ids {
		if id == successor {
			wantPrefix = fmt.Sprintf("s%d-", i)
		}
	}
	if !strings.HasPrefix(out.JobID, wantPrefix) {
		t.Fatalf("job %q did not heal to ring successor %s", out.JobID, successor)
	}

	// Cluster stats now reports the dead shard as unreachable instead of
	// silently shrinking the totals.
	var cs ClusterStats
	getJSON(t, c.servers[entry].URL+"/stats", &cs)
	if len(cs.Unreachable) != 1 || cs.Unreachable[0] != c.ids[owner] {
		t.Fatalf("unreachable = %v, want [%s]", cs.Unreachable, c.ids[owner])
	}
}

// TestRouterDrainSpillWarmOpen exercises the full departure protocol: a
// draining shard flips /readyz, finishes its work, spills sessions to the
// shared warm tier on Close, and the ring successor warm-opens the .gidx
// instead of re-parsing the log.
func TestRouterDrainSpillWarmOpen(t *testing.T) {
	dataDir := t.TempDir()
	c := newTestCluster(t, 3, Options{DataDir: dataDir})
	logXES := runningExampleXES(t)
	owner := c.ownerIndex(t, logXES)
	entry := (owner + 1) % 3

	if resp, out := postAbstract(t, c.servers[entry], logXES, url.Values{"constraints": {"distinct(role) <= 1"}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}

	// Depart the owner: drain (readiness off), then close (spills the live
	// session's index to dataDir) and stop serving.
	c.svcs[owner].StartDrain()
	resp, err := http.Get(c.servers[owner].URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard /readyz = %d, want 503", resp.StatusCode)
	}
	c.svcs[owner].Close()
	c.servers[owner].CloseClientConnections()
	c.servers[owner].Close()

	// Fresh constraints on the same log through a surviving router: the
	// successor owns the key now and must warm-open the spilled index.
	resp2, out2 := postAbstract(t, c.servers[entry], logXES, url.Values{"constraints": {"distinct(role) <= 2"}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d after drain: %+v", resp2.StatusCode, out2)
	}
	warmOpens := int64(0)
	for i := range c.svcs {
		if i == owner {
			continue
		}
		if st := localStats(t, c.servers[i]); st.Disk != nil {
			warmOpens += st.Disk.WarmOpens
		}
	}
	if warmOpens == 0 {
		t.Fatal("no surviving shard warm-opened the departed shard's spilled index")
	}
}

// TestRouterStreamAffinityAndProxy: a named stream posted through a
// non-owner router is proxied full-duplex to its owner; its state lives
// there (snapshot via yet another router finds it) and appends through any
// router hit the same window.
func TestRouterStreamAffinityAndProxy(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	const name = "orders"
	owner := c.ownerIndex(t, "stream:"+name)
	entry := (owner + 1) % 3

	traces := procgen.RunningExample(40, 3).Traces
	params := streamParamsWith(map[string]string{"stream": name, "window": "20", "refresh": "10"})
	_, ack, lines := postStream(t, c.servers[entry], params, ndjsonBody(t, traces[:30]))
	if !ack.Created {
		t.Fatal("first request did not create the stream")
	}
	if len(lines) != 30 {
		t.Fatalf("got %d lines, want 30", len(lines))
	}
	for i, l := range lines {
		if l.Error != "" {
			t.Fatalf("line %d: %s", i, l.Error)
		}
	}

	// The stream state must live on the ring owner, not the entry shard.
	if st := localStats(t, c.servers[owner]); st.Streams.Live != 1 {
		t.Fatalf("owner shard has %d live streams, want 1", st.Streams.Live)
	}
	if st := localStats(t, c.servers[entry]); st.Streams.Live != 0 {
		t.Fatalf("entry shard has %d live streams, want 0", st.Streams.Live)
	}

	// Append through a third router: same window (not re-created).
	_, ack2, lines2 := postStream(t, c.servers[(owner+2)%3], params, ndjsonBody(t, traces[30:]))
	if ack2.Created {
		t.Fatal("append re-created the stream on the wrong shard")
	}
	if len(lines2) != 10 {
		t.Fatalf("append got %d lines, want 10", len(lines2))
	}

	// Snapshot and close through the router as well.
	var snap map[string]any
	getJSON(t, c.servers[entry].URL+"/stream/"+name, &snap)
	if snap["traces"] == nil {
		t.Fatalf("snapshot missing trace count: %v", snap)
	}
	resp, err := http.Post(c.servers[entry].URL+"/stream/"+name+"/close", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close through router: status %d", resp.StatusCode)
	}
	if st := localStats(t, c.servers[owner]); st.Streams.Live != 0 {
		t.Fatal("close through router did not drop the owner's stream state")
	}
}

// TestRouterChaosStreamReplay is the chaos drill the ISSUE demands: kill a
// shard mid-NDJSON-stream, let the ring heal, replay the session through a
// surviving router, and require the replayed output to be byte-identical to
// a control run on a standalone server — proving a failover is invisible to
// a replaying client.
func TestRouterChaosStreamReplay(t *testing.T) {
	const name = "chaos"
	traces := procgen.RunningExample(36, 3).Traces
	params := streamParamsWith(map[string]string{"stream": name, "window": "18", "refresh": "9"})
	body := ndjsonBody(t, traces)

	// Control: the whole session against a fresh standalone server.
	ctrlSrv, _ := newTestServer(t, Options{})
	ctrlResp, err := http.Post(ctrlSrv.URL+"/stream?"+params.Encode(), "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	control, err := io.ReadAll(ctrlResp.Body)
	ctrlResp.Body.Close()
	if err != nil || ctrlResp.StatusCode != http.StatusOK {
		t.Fatalf("control run failed: status %d err %v", ctrlResp.StatusCode, err)
	}

	c := newTestCluster(t, 3, Options{})
	owner := c.ownerIndex(t, "stream:"+name)
	entry := (owner + 1) % 3

	// Open a live full-duplex stream through a non-owner router and feed it
	// half the traces, reading each result line as it comes back.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, c.servers[entry].URL+"/stream?"+params.Encode(), pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	liveResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("opening live stream: %v", err)
	}
	br := bufio.NewReader(liveResp.Body)
	if _, err := br.ReadString('\n'); err != nil { // ack line
		t.Fatalf("reading ack: %v", err)
	}
	wireLines := strings.SplitAfter(strings.TrimRight(body, "\n"), "\n")
	for i := 0; i < len(wireLines)/2; i++ {
		if _, err := pw.Write([]byte(wireLines[i])); err != nil {
			t.Fatalf("writing trace %d: %v", i, err)
		}
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("reading result %d: %v", i, err)
		}
	}

	// Kill the owner mid-stream. The in-flight proxied session dies with it;
	// the client's contract is to replay.
	c.servers[owner].CloseClientConnections()
	c.servers[owner].Close()
	pw.Close()
	io.Copy(io.Discard, liveResp.Body) // drain whatever the broken proxy relays
	liveResp.Body.Close()

	// Replay the full session through a surviving router. The ring heals the
	// stream key to the successor, which starts a fresh window; the replayed
	// output must match the control run byte for byte.
	var replay []byte
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Post(c.servers[entry].URL+"/stream?"+params.Encode(), "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatalf("replaying stream: %v", err)
		}
		replay, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK && !bytes_ContainsErrorLine(replay) {
			break
		}
		// The first replay can race the down-marking (a 502 while probes
		// exhaust); replaying again is exactly what a real client does.
		if time.Now().After(deadline) {
			t.Fatalf("replay did not succeed before deadline: status %d body %s", resp.StatusCode, replay)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if string(replay) != string(control) {
		t.Fatalf("replayed stream differs from control run\ncontrol (%d bytes):\n%s\nreplay (%d bytes):\n%s",
			len(control), control, len(replay), replay)
	}

	// And the healed home really is the successor: state lives there now.
	seq := c.routers[entry].Ring().Sequence("stream:" + name)
	var successorIdx int
	for i, id := range c.ids {
		if id == seq[1] {
			successorIdx = i
		}
	}
	if st := localStats(t, c.servers[successorIdx]); st.Streams.Live != 1 {
		t.Fatalf("successor shard-%d has %d live streams, want 1", successorIdx, st.Streams.Live)
	}
}

// bytes_ContainsErrorLine reports whether an NDJSON response carries a
// terminal error line (the HTTP status is already 200 by then).
func bytes_ContainsErrorLine(raw []byte) bool {
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		var sl StreamLine
		if json.Unmarshal([]byte(line), &sl) == nil && sl.Error != "" {
			return true
		}
	}
	return false
}

// TestRouterCoordinator: a pure coordinator (svc == nil) forwards
// everything and serves cluster stats, liveness, and readiness itself.
func TestRouterCoordinator(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	coord, err := NewRouter(nil, ShardOptions{
		Peers:          []string{c.servers[0].URL, c.servers[1].URL},
		MemberIDs:      c.ids,
		Self:           -1,
		ForwardRetries: 2,
		ForwardBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	defer front.Close()

	logXES := runningExampleXES(t)
	resp, out := postAbstract(t, front, logXES, url.Values{"constraints": {"distinct(role) <= 1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	owner := c.ownerIndex(t, logXES)
	if !strings.HasPrefix(out.JobID, fmt.Sprintf("s%d-", owner)) {
		t.Fatalf("coordinator sent job %q to the wrong shard (owner shard-%d)", out.JobID, owner)
	}

	var h map[string]string
	getJSON(t, front.URL+"/healthz", &h)
	if h["role"] != "coordinator" {
		t.Fatalf("healthz role = %q, want coordinator", h["role"])
	}
	getJSON(t, front.URL+"/readyz", &h)
	if h["status"] != "ready" {
		t.Fatalf("readyz status = %q, want ready", h["status"])
	}
	var cs ClusterStats
	getJSON(t, front.URL+"/stats", &cs)
	if len(cs.Shards) != 2 {
		t.Fatalf("coordinator cluster stats has %d shards, want 2", len(cs.Shards))
	}
	if cs.Jobs.Started != 1 {
		t.Fatalf("merged jobs.started = %d, want 1", cs.Jobs.Started)
	}
}

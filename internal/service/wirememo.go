// Wire-digest memo: the canonical LogDigest is format-independent (XES and
// CSV uploads of the same events collide, as they should), so it can only
// be computed from a *parsed* log — which makes parsing the price of every
// request, even one served entirely from the result cache. The memo closes
// that gap for the common case: it maps the SHA-256 of an upload's raw wire
// bytes to the canonical digest learned the first time those bytes were
// parsed. A byte-identical re-upload then knows its digest immediately, so
// cache hits skip the parse — and with a warm tier, a spilled session can
// be re-opened from its .gidx without the server ever re-reading the XES.
package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// wireMemoCapacity bounds the memo. Entries are two hex digests (~130
// bytes), so this covers any realistic hot set for a few tens of KiB.
const wireMemoCapacity = 1024

type wireMemo struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type wireEntry struct{ raw, digest string }

func newWireMemo() *wireMemo {
	return &wireMemo{entries: make(map[string]*list.Element), order: list.New()}
}

// wireKey hashes an upload's raw bytes together with its wire format: the
// same text parses differently as XES vs CSV, so the two must not share a
// memo entry.
func wireKey(format, text string) string {
	h := sha256.New()
	writeStr(h, format)
	writeStr(h, text)
	return hex.EncodeToString(h.Sum(nil))
}

func (m *wireMemo) get(raw string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[raw]
	if !ok {
		return "", false
	}
	m.order.MoveToFront(el)
	return el.Value.(*wireEntry).digest, true
}

func (m *wireMemo) put(raw, digest string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[raw]; ok {
		m.order.MoveToFront(el)
		el.Value.(*wireEntry).digest = digest
		return
	}
	m.entries[raw] = m.order.PushFront(&wireEntry{raw: raw, digest: digest})
	for len(m.entries) > wireMemoCapacity {
		last := m.order.Back()
		m.order.Remove(last)
		delete(m.entries, last.Value.(*wireEntry).raw)
	}
}

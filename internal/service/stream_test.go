package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"gecco/internal/eventlog"
	"gecco/internal/procgen"
)

// wireTrace renders an event-model trace as its NDJSON wire form.
func wireTrace(tr eventlog.Trace) StreamTrace {
	wt := StreamTrace{ID: tr.ID}
	for i := range tr.Events {
		ev := &tr.Events[i]
		we := StreamEvent{Class: ev.Class}
		for k, v := range ev.Attrs {
			if k == eventlog.AttrTimestamp && v.Kind == eventlog.KindTime {
				we.Time = v.Time.Format(time.RFC3339Nano)
				continue
			}
			if we.Attrs == nil {
				we.Attrs = make(map[string]any)
			}
			switch v.Kind {
			case eventlog.KindString:
				we.Attrs[k] = v.Str
			case eventlog.KindInt, eventlog.KindFloat:
				we.Attrs[k] = v.Num
			case eventlog.KindBool:
				we.Attrs[k] = v.Bool
			case eventlog.KindTime:
				we.Attrs[k] = v.Time.Format(time.RFC3339Nano)
			}
		}
		wt.Events = append(wt.Events, we)
	}
	return wt
}

func ndjsonBody(t *testing.T, traces []eventlog.Trace) string {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, tr := range traces {
		if err := enc.Encode(wireTrace(tr)); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// postStream posts an NDJSON body and splits the NDJSON response into the
// ack line and the per-trace lines.
func postStream(t *testing.T, srv *httptest.Server, params url.Values, body string) (*http.Response, streamAck, []StreamLine) {
	t.Helper()
	u := srv.URL + "/stream"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	resp, err := http.Post(u, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	var ack streamAck
	if err := json.Unmarshal([]byte(lines[0]), &ack); err != nil {
		t.Fatalf("decoding ack line %q: %v", lines[0], err)
	}
	out := make([]StreamLine, 0, len(lines)-1)
	for _, l := range lines[1:] {
		var sl StreamLine
		if err := json.Unmarshal([]byte(l), &sl); err != nil {
			t.Fatalf("decoding line %q: %v", l, err)
		}
		out = append(out, sl)
	}
	return resp, ack, out
}

func streamParamsWith(extra map[string]string) url.Values {
	p := url.Values{"constraints": {"distinct(role) <= 1"}}
	for k, v := range extra {
		p.Set(k, v)
	}
	return p
}

func TestHTTPStreamEndToEnd(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	traces := procgen.RunningExample(60, 3).Traces
	resp, ack, lines := postStream(t, srv,
		streamParamsWith(map[string]string{"window": "30", "refresh": "15"}),
		ndjsonBody(t, traces))

	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if !ack.Created || ack.Window != 30 || ack.RefreshEvery != 15 || ack.DriftThreshold != 0.25 {
		t.Fatalf("ack = %+v", ack)
	}
	if len(lines) != len(traces) {
		t.Fatalf("%d response lines for %d traces", len(lines), len(traces))
	}
	if !lines[0].Regrouped {
		t.Fatal("first arrival must trigger the initial regrouping")
	}
	shorter := 0
	for i, l := range lines {
		if l.Error != "" {
			t.Fatalf("line %d: unexpected error %q", i, l.Error)
		}
		if len(l.Events) > len(traces[i].Events) {
			t.Fatalf("line %d grew: %d > %d events", i, len(l.Events), len(traces[i].Events))
		}
		if len(l.Events) < len(traces[i].Events) {
			shorter++
		}
	}
	if shorter == 0 {
		t.Fatal("no arrival was compressed")
	}
	st := svc.Stats().Streams
	if st.Traces != int64(len(traces)) || st.Created != 1 || st.Closed != 1 || st.Live != 0 {
		t.Fatalf("anonymous stream stats = %+v", st)
	}
	if st.Regroupings == 0 {
		t.Fatal("stats report no regroupings")
	}
}

func TestHTTPStreamNamedLifecycle(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	traces := procgen.RunningExample(40, 5).Traces
	params := streamParamsWith(map[string]string{"stream": "orders", "window": "25", "refresh": "20"})

	_, ack, lines := postStream(t, srv, params, ndjsonBody(t, traces[:25]))
	if !ack.Created || ack.Stream != "orders" {
		t.Fatalf("first ack = %+v", ack)
	}
	// Append: state persists — the same parameters are pinned, created is
	// false, and counters continue from the first request.
	_, ack2, lines2 := postStream(t, srv, url.Values{"stream": {"orders"}}, ndjsonBody(t, traces[25:]))
	if ack2.Created {
		t.Fatal("append reported created")
	}
	if ack2.Window != 25 {
		t.Fatalf("append ack lost pinned parameters: %+v", ack2)
	}
	if len(lines)+len(lines2) != len(traces) {
		t.Fatalf("%d+%d lines for %d traces", len(lines), len(lines2), len(traces))
	}

	// Snapshot.
	resp, err := http.Get(srv.URL + "/stream/orders")
	if err != nil {
		t.Fatal(err)
	}
	var snap StreamSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Traces != int64(len(traces)) || !snap.GroupingOK || len(snap.GroupClasses) == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.WindowLen != 25 {
		t.Fatalf("window length %d, want 25", snap.WindowLen)
	}

	// Close drops the state; the name becomes unknown.
	cresp, err := http.Post(srv.URL+"/stream/orders/close", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("close status %d", cresp.StatusCode)
	}
	gresp, err := http.Get(srv.URL + "/stream/orders")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("closed stream still answers: %d", gresp.StatusCode)
	}
	st := svc.Stats().Streams
	if st.Live != 0 || st.Closed != 1 || st.Traces != int64(len(traces)) {
		t.Fatalf("stats after close = %+v", st)
	}
}

func TestHTTPStreamMalformedNDJSON(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	good := ndjsonBody(t, procgen.RunningExample(2, 7).Traces)
	body := good + "this is not json\n" + good // trailing lines must not run
	_, _, lines := postStream(t, srv, streamParamsWith(nil), body)
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 2 results + 1 terminal error", len(lines))
	}
	if lines[0].Error != "" || lines[1].Error != "" {
		t.Fatalf("valid lines errored: %+v", lines[:2])
	}
	if lines[2].Error == "" || !strings.Contains(lines[2].Error, "line 3") {
		t.Fatalf("terminal line = %+v", lines[2])
	}

	// Structurally invalid traces are rejected the same way.
	for _, bad := range []string{
		`{"id":"x","events":[]}`,
		`{"id":"x","events":[{"class":""}]}`,
		`{"id":"x","events":[{"class":"a","time":"yesterday"}]}`,
		`{"id":"x","events":[{"class":"a","attrs":{"nested":{"no":1}}}]}`,
	} {
		_, _, lines := postStream(t, srv, streamParamsWith(nil), bad+"\n")
		if len(lines) != 1 || lines[0].Error == "" {
			t.Fatalf("body %q: lines = %+v", bad, lines)
		}
	}
}

func TestHTTPStreamValidation(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	// Creating without constraints is a 400.
	resp, err := http.Post(srv.URL+"/stream", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d without constraints", resp.StatusCode)
	}
	// Malformed, negative, or absurdly large numbers are a 400 — never
	// silently-zero parameters, and never an eager multi-gigabyte ring
	// allocation.
	for _, window := range []string{"many", "-5", "2000000000"} {
		resp, err = http.Post(srv.URL+"/stream?"+streamParamsWith(map[string]string{"window": window}).Encode(),
			"application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d for window=%s", resp.StatusCode, window)
		}
	}

	// Disabled streaming is a 404 on every stream route.
	srvOff, _ := newTestServer(t, Options{NoStreams: true})
	for _, req := range []func() (*http.Response, error){
		func() (*http.Response, error) {
			return http.Post(srvOff.URL+"/stream?"+streamParamsWith(nil).Encode(), "", strings.NewReader(""))
		},
		func() (*http.Response, error) { return http.Get(srvOff.URL + "/stream/x") },
		func() (*http.Response, error) { return http.Post(srvOff.URL+"/stream/x/close", "", nil) },
	} {
		resp, err := req()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("disabled streaming answered %d", resp.StatusCode)
		}
	}
}

func TestHTTPStreamLRUEviction(t *testing.T) {
	srv, svc := newTestServer(t, Options{MaxStreams: 2})
	body := ndjsonBody(t, procgen.RunningExample(3, 9).Traces)
	for _, name := range []string{"a", "b", "c"} {
		postStream(t, srv, streamParamsWith(map[string]string{"stream": name}), body)
	}
	// "a" was least recently used and fell off.
	resp, err := http.Get(srv.URL + "/stream/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted stream still answers: %d", resp.StatusCode)
	}
	st := svc.Stats().Streams
	if st.Live != 2 || st.Evicted != 1 || st.Created != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Evicted streams' arrivals stay in the totals.
	if st.Traces != 9 {
		t.Fatalf("stats traces = %d, want 9", st.Traces)
	}
}

// TestHTTPStreamDeterministicBytes pins the acceptance criterion: two
// identical NDJSON sessions produce byte-identical response bodies. The
// second run's regroupings are also served from the result cache — same
// windows, same constraints — which must not change a single byte.
func TestHTTPStreamDeterministicBytes(t *testing.T) {
	srv, svc := newTestServer(t, Options{})
	traces := append(procgen.RunningExample(40, 11).Traces, procgen.LoanLog(30, 11).Traces...)
	body := ndjsonBody(t, traces)
	params := streamParamsWith(map[string]string{"window": "20", "refresh": "10"})

	read := func() string {
		resp, err := http.Post(srv.URL+"/stream?"+params.Encode(), "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	first := read()
	second := read()
	if first != second {
		t.Fatalf("identical streams produced different bytes:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if strings.Contains(first, `"error"`) {
		t.Fatalf("stream errored: %s", first)
	}
	// The replay hit the result cache for at least one regrouping window.
	if svc.Stats().Cache.Hits == 0 {
		t.Fatal("replayed stream never hit the result cache")
	}
}

func TestHTTPStreamCancellationMidStream(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST",
		srv.URL+"/stream?"+streamParamsWith(nil).Encode(), pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	line := ndjsonBody(t, procgen.RunningExample(1, 13).Traces)
	go func() { io.WriteString(pw, line) }()

	br := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ { // ack + first result
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("reading line %d: %v", i, err)
		}
	}
	cancel() // client goes away mid-stream
	pw.CloseWithError(fmt.Errorf("client cancelled"))
	if _, err := io.ReadAll(br); err == nil {
		t.Fatal("response did not terminate after cancellation")
	}

	// The server survives and serves the next request.
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after cancelled stream", h.StatusCode)
	}
}

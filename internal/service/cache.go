package service

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// CacheStats aggregates hit/miss/eviction accounting across all shards.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key   string
	value *JobResult
}

// Cache is a sharded LRU keyed by request digest (log digest + canonical
// constraint set + canonical config; see requestKey). Sharding by key hash
// keeps lock contention bounded under concurrent serving: each lookup locks
// only 1/numShards of the cache. Hit/miss/eviction counters are atomic and
// exact.
type Cache struct {
	shards    []*cacheShard
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

const defaultCacheShards = 16

// NewCache builds a cache holding up to capacity results split over
// shards; capacity <= 0 disables caching (every Get misses). Shard
// capacities sum to exactly the configured capacity (the remainder goes
// one-each to the first shards), so /stats reports what the operator set.
func NewCache(capacity int) *Cache {
	n := defaultCacheShards
	if capacity > 0 && capacity < n {
		n = 1 // tiny caches keep exact LRU order in a single shard
	}
	c := &Cache{shards: make([]*cacheShard, n)}
	for i := range c.shards {
		per := 0
		if capacity > 0 {
			per = capacity / n
			if i < capacity%n {
				per++
			}
		}
		c.shards[i] = &cacheShard{
			cap:     per,
			entries: make(map[string]*list.Element),
			order:   list.New(),
		}
	}
	return c
}

// shard picks the key's shard with an inlined FNV-1a over the key bytes —
// no hasher allocation on the per-lookup hot path.
func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Get returns the cached result for the key, bumping its recency.
func (c *Cache) Get(key string) (*JobResult, bool) {
	return c.get(key, true)
}

// getQuiet is Get without touching the hit/miss counters, for the
// service's under-lock recheck: the same logical request already counted
// its miss on the lock-free first lookup.
func (c *Cache) getQuiet(key string) (*JobResult, bool) {
	return c.get(key, false)
}

func (c *Cache) get(key string, count bool) (*JobResult, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		if count {
			c.misses.Add(1)
		}
		return nil, false
	}
	s.order.MoveToFront(el)
	if count {
		c.hits.Add(1)
	}
	return el.Value.(*cacheEntry).value, true
}

// Put inserts or refreshes a result, evicting the least recently used entry
// of the key's shard when that shard is full.
func (c *Cache) Put(key string, v *JobResult) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap <= 0 {
		return
	}
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).value = v
		s.order.MoveToFront(el)
		return
	}
	for s.order.Len() >= s.cap {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, value: v})
}

// Len reports the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	capTotal := 0
	for _, s := range c.shards {
		capTotal += s.cap
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  capTotal,
	}
}
